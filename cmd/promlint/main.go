// Command promlint runs the repository's Prometheus exposition lint
// (internal/trace.LintProm) over a metrics document: TYPE/HELP
// presence and ordering, counter naming, histogram bucket monotonicity
// and +Inf/_count agreement. The argument is a URL (fetched) or a file
// path (read); exit status 1 when the document has problems. CI uses it
// to lint live /metrics endpoints — a single daemon's or crackrouter's
// merged cluster view — without going through a Go test.
//
//	promlint http://localhost:8080/metrics
//	promlint metrics.txt
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"adaptiveindex/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: promlint <url-or-file>")
	}
	src := args[0]
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("%s: status %d", src, resp.StatusCode)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		r = f
	}
	defer r.Close()
	problems := trace.LintProm(r)
	if len(problems) == 0 {
		fmt.Fprintf(out, "promlint: %s clean\n", src)
		return nil
	}
	for _, p := range problems {
		fmt.Fprintln(out, p)
	}
	return fmt.Errorf("%d problem(s) in %s", len(problems), src)
}
