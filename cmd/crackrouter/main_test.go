package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
)

func TestFlagValidation(t *testing.T) {
	if _, err := parseFlags(nil); err == nil || !strings.Contains(err.Error(), "-nodes") {
		t.Fatalf("missing -nodes accepted: %v", err)
	}
	cfg, err := parseFlags([]string{"-nodes", "a:1, b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.nodes != "a:1, b:2" || cfg.proto != "json" {
		t.Fatalf("cfg %+v", cfg)
	}
}

// syncBuffer is a Buffer safe to read while run() is still logging.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func stripeBackend(t *testing.T, s, n int) *httptest.Server {
	t.Helper()
	specs, err := server.ParseTableSpecs("data:6000:2")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := server.BuildCatalog(specs, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cat, err = shard.Stripe(cat, s, n); err != nil {
		t.Fatal(err)
	}
	built, err := server.BuildExec(cat, server.EngineOptions{Shards: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.NewService(server.Config{
		Exec: built.Exec, DefaultPath: "auto", EventLog: trace.NewLog(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestEndToEnd boots the router binary's run() over two striped
// backends and queries through it.
func TestEndToEnd(t *testing.T) {
	b0 := stripeBackend(t, 0, 2)
	b1 := stripeBackend(t, 1, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-nodes", b0.URL + "," + b1.URL,
			"-probe-interval", "20ms",
		}, &out)
	}()

	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("router never reported its address; output:\n%s", out.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	c := api.NewClient(addr, api.ClientOptions{})
	lo, hi := int64(100), int64(2000)
	res, err := c.Query(ctx, api.QueryRequest{Op: "count", Low: &lo, High: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("count 0 through the router")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "router" || len(st.Nodes) != 2 {
		t.Fatalf("stats mode=%q nodes=%d", st.Mode, len(st.Nodes))
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v\noutput:\n%s", err, out.String())
	}
}
