// Command crackrouter is the multi-node front: a thin, stateless
// router that fans queries and updates out to N crackserve backend
// nodes, each serving one row stripe of the same generated catalog
// (crackserve -stripe s/N), and merges the per-node answers into one.
//
//	crackserve -addr :8081 -n 1000000 -stripe 0/2 -snapshot /tmp/n0.snap &
//	crackserve -addr :8082 -n 1000000 -stripe 1/2 -snapshot /tmp/n1.snap &
//	crackrouter -addr :8080 -nodes localhost:8081,localhost:8082
//
// The router speaks the same HTTP surface as a single crackserve node
// — POST /query and /update in JSON or the binary columnar protocol,
// GET /stats, /metrics, /healthz — so crackload and every other client
// work unchanged against a cluster. The striping contract is
// internal/shard's lifted over the wire: global row g lives on node
// g mod N, every read fans to all nodes, appends land on the owning
// node in global order, and -nodes with a single backend is
// byte-identical to that backend on every deterministic cost counter.
//
// Nodes are health-probed continuously and walk an up → degraded →
// down state machine. Reads retry idempotently with exponential
// backoff; losing a stripe owner mid-read fails the request fast with
// 503 and a per-node breakdown, while reads spanning nodes already
// marked down are answered partially (JSON, with "partial":true and
// the missing stripes listed). Writes to a down stripe owner are
// refused with 503 naming the node. A restarted backend (restored from
// its per-stripe snapshot) is re-admitted once its health probe passes
// and its catalog fingerprint matches the rows the router knows it
// owns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptiveindex/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crackrouter:", err)
		os.Exit(1)
	}
}

type config struct {
	addr     string
	nodes    string
	proto    string
	block    int
	sessions int
	timeout  time.Duration
	retries  int
	backoff  time.Duration
	probe    time.Duration
	downN    int
	bootWait time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crackrouter", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.nodes, "nodes", "", "comma-separated backend addresses in stripe order (node s owns global rows g with g%N==s)")
	fs.StringVar(&cfg.proto, "proto", "json", "router→backend query protocol: json or binary")
	fs.IntVar(&cfg.block, "block", 0, "binary protocol block size in rows (0: one block)")
	fs.IntVar(&cfg.sessions, "sessions", 64, "keep-alive connection pool size per backend")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-backend request timeout")
	fs.IntVar(&cfg.retries, "retries", 2, "idempotent read retries per backend request")
	fs.DurationVar(&cfg.backoff, "backoff", 25*time.Millisecond, "initial retry backoff, doubled per retry")
	fs.DurationVar(&cfg.probe, "probe-interval", 250*time.Millisecond, "health probe cadence")
	fs.IntVar(&cfg.downN, "down-after", 2, "consecutive failures that take a degraded node down")
	fs.DurationVar(&cfg.bootWait, "boot-wait", 15*time.Second, "how long to wait for the backends to come up at boot")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if strings.TrimSpace(cfg.nodes) == "" {
		return cfg, fmt.Errorf("-nodes is required (comma-separated crackserve addresses)")
	}
	return cfg, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	var nodes []string
	for _, a := range strings.Split(cfg.nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodes = append(nodes, a)
		}
	}
	rcfg := router.Config{
		Nodes: nodes, Proto: cfg.proto, Block: cfg.block,
		Sessions: cfg.sessions, Timeout: cfg.timeout,
		Retries: cfg.retries, RetryBackoff: cfg.backoff,
		ProbeInterval: cfg.probe, DownAfter: cfg.downN,
	}
	// Backends restoring a snapshot answer /healthz not-ready for a
	// while; keep trying until the whole cluster is up or the boot
	// budget runs out, so start order doesn't matter.
	var rt *router.Router
	deadline := time.Now().Add(cfg.bootWait)
	for {
		rt, err = router.New(rcfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(out, "crackrouter: %d nodes (%s) on %s, proto=%s\n",
		rt.Nodes(), strings.Join(nodes, ", "), ln.Addr(), cfg.proto)

	select {
	case <-ctx.Done():
	case err := <-errc:
		return err
	}
	fmt.Fprintln(out, "crackrouter: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		httpSrv.Close()
	}
	return shutdownErr
}
