package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"adaptiveindex/internal/experiments"
)

func TestCompareGate(t *testing.T) {
	base := Report{Format: fileFormat, Config: pinnedConfig, Metrics: map[string]uint64{
		"a_total": 1000,
		"b_total": 500,
	}}

	cases := []struct {
		name    string
		metrics map[string]uint64
		wantErr string
	}{
		{"identical", map[string]uint64{"a_total": 1000, "b_total": 500}, ""},
		{"within threshold", map[string]uint64{"a_total": 1100, "b_total": 510}, ""},
		{"improvement", map[string]uint64{"a_total": 400, "b_total": 500}, ""},
		{"regression", map[string]uint64{"a_total": 1200, "b_total": 500}, "regressed"},
		{"metric disappeared", map[string]uint64{"a_total": 1000}, "regressed"},
		{"new metric passes", map[string]uint64{"a_total": 1000, "b_total": 500, "c_total": 9}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := compare(&out, base, Report{Format: fileFormat, Config: pinnedConfig, Metrics: tc.metrics}, 0.15)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v\n%s", err, out.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}

	// Mismatched config must refuse to compare rather than pass.
	other := pinnedConfig
	other.N++
	var out bytes.Buffer
	if err := compare(&out, Report{Format: fileFormat, Config: other, Metrics: base.Metrics},
		Report{Format: fileFormat, Config: pinnedConfig, Metrics: base.Metrics}, 0.15); err == nil ||
		!strings.Contains(err.Error(), "refresh the baseline") {
		t.Fatalf("config mismatch must fail, got %v", err)
	}
}

// TestCommittedBaselineMatchesPinnedConfig guards the gate itself: the
// committed baseline must carry the pinned configuration, or every CI
// run would fail with a confusing mismatch.
func TestCommittedBaselineMatchesPinnedConfig(t *testing.T) {
	base, err := load(filepath.Join("..", "..", "BENCH_BASELINE.json"))
	if err != nil {
		t.Fatal(err)
	}
	if base.Format != fileFormat {
		t.Fatalf("baseline format %d, tool writes %d", base.Format, fileFormat)
	}
	if base.Config != pinnedConfig {
		t.Fatalf("baseline config %+v, pinned %+v — regenerate BENCH_BASELINE.json", base.Config, pinnedConfig)
	}
	if len(base.Metrics) == 0 {
		t.Fatal("baseline has no metrics")
	}
}

// TestCollectIsDeterministic is the property the whole gate stands on:
// two runs emit identical counters.
func TestCollectIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full collect passes")
	}
	cfg := experiments.Config{N: 20_000, Queries: 100, Domain: 20_000, Selectivity: 0.01, Seed: 7}
	a, ta := collect(cfg)
	b, _ := collect(cfg)
	if len(a) != len(b) {
		t.Fatalf("metric sets differ: %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		if bv, ok := b[name]; !ok || av != bv {
			t.Fatalf("metric %s not deterministic: %d vs %d", name, av, bv)
		}
	}
	// Wall-clock timings ride along but live outside the gated metric
	// set: nothing machine-dependent may share a namespace with the
	// deterministic counters.
	if len(ta) == 0 {
		t.Fatal("no section timings recorded")
	}
	for name := range ta {
		if _, clash := a[name]; clash {
			t.Fatalf("timing %s clashes with a gated metric name", name)
		}
	}
	if a["wire_selectproject_binary_bytes"] >= a["wire_selectproject_json_bytes"] {
		t.Fatalf("binary bytes (%d) must stay below JSON bytes (%d)",
			a["wire_selectproject_binary_bytes"], a["wire_selectproject_json_bytes"])
	}
}

func TestRunWritesFileAndGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full pinned-scale run")
	}
	dir := t.TempDir()
	outFile := filepath.Join(dir, "cur.json")
	var out bytes.Buffer
	if err := run([]string{"-out", outFile, "-baseline", filepath.Join("..", "..", "BENCH_BASELINE.json")}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "benchmark gate passed") {
		t.Fatalf("missing pass line:\n%s", out.String())
	}
	cur, err := load(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Config != pinnedConfig || len(cur.Metrics) == 0 {
		t.Fatalf("bad emitted report: %+v", cur)
	}
}
