// Command benchjson is the CI benchmark-regression gate. It runs a
// pinned subset of the repository's performance surface and scores it
// on the cost model's deterministic logical-work counters — values
// touched, tuples copied, merge work — rather than wall time, so the
// numbers are identical on every machine and a regression is a code
// change, never a noisy runner. The result is a flat JSON metrics
// file; given a committed baseline, the tool fails (exit 1) when any
// tracked counter regresses by more than the threshold.
//
//	benchjson -out BENCH_PR5.json
//	benchjson -out BENCH_PR5.json -baseline BENCH_BASELINE.json -threshold 0.15
//
// The tracked metrics cover the hot paths the experiments make claims
// about: selection cracking, sideways cracking, the PathAuto planner
// on a drifting select-project workload, the write path under every
// merge policy (E16's mixed read/write stream), the bytes the two
// wire encodings put on the wire for identical select-project results
// (E17), and the scatter-gather shard cluster's summed work at 1, 2
// and 4 shards (per-shard counters are deterministic, so their sum is
// too — and the one-shard total is asserted equal to the bare
// engine's), the epoch read path at readers=1, asserted
// byte-identical to the bare cracking engine (the contract under which
// the epoch machinery stays disengaged), and the crackrouter front over
// a single backend, also asserted byte-identical to the bare engine
// (the N=1 routing identity). The run configuration is
// pinned inside the tool and recorded in the JSON; comparing files
// with different configurations is an error, not a pass.
//
// Each run also records wall-clock section timings under "timings_ms".
// They are context for a human reading the file — machine-dependent by
// nature, so the gate never compares them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/experiments"
	"adaptiveindex/internal/router"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/workload"
)

// pinnedConfig is the benchmark scale. It is deliberately not a flag:
// every emitted file is comparable with every other, and the gate can
// never be dodged by running smaller.
var pinnedConfig = experiments.Config{
	N:           100_000,
	Queries:     400,
	Domain:      100_000,
	Selectivity: 0.01,
	Seed:        42,
}

// fileFormat guards against comparing files written by an
// incompatible metric set.
const fileFormat = 1

// Report is the on-disk JSON shape. Metrics are deterministic and
// gated; Timings are wall-clock milliseconds per section, recorded for
// context and never compared.
type Report struct {
	Format  int                `json:"format"`
	Config  experiments.Config `json:"config"`
	Metrics map[string]uint64  `json:"metrics"`
	Timings map[string]float64 `json:"timings_ms,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "", "write the metrics JSON to this file")
	baseline := fs.String("baseline", "", "compare against this baseline file and fail on regression")
	threshold := fs.Float64("threshold", 0.15, "allowed relative regression per metric")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold must be >= 0")
	}

	metrics, timings := collect(pinnedConfig)
	report := Report{Format: fileFormat, Config: pinnedConfig, Metrics: metrics, Timings: timings}

	names := make([]string, 0, len(report.Metrics))
	for name := range report.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "%-40s %d\n", name, report.Metrics[name])
	}
	tnames := make([]string, 0, len(report.Timings))
	for name := range report.Timings {
		tnames = append(tnames, name)
	}
	sort.Strings(tnames)
	for _, name := range tnames {
		fmt.Fprintf(out, "%-40s %.1f ms (wall, not gated)\n", name, report.Timings[name])
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	if *baseline == "" {
		return nil
	}
	base, err := load(*baseline)
	if err != nil {
		return err
	}
	return compare(out, base, report, *threshold)
}

// collect runs the pinned benchmark subset and extracts the tracked
// counters, plus per-section wall-clock timings. Every counter is
// seeded and scored on logical work, so repeated runs emit
// byte-identical metrics; the timings vary with the machine and are
// returned separately so they never enter the gate.
func collect(cfg experiments.Config) (map[string]uint64, map[string]float64) {
	m := make(map[string]uint64)
	timings := make(map[string]float64)
	timed := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		timings[name] = float64(time.Since(t0).Microseconds()) / 1000
	}

	// Static access paths on the uniform read-only workload.
	queries := workload.Queries(
		workload.NewUniform(cfg.Seed+1, 0, column.Value(cfg.Domain), cfg.Selectivity), cfg.Queries)
	for _, path := range []engine.AccessPath{engine.PathScan, engine.PathCracking, engine.PathSideways} {
		eng := benchEngine(cfg)
		project := []string{"c1"}
		if path == engine.PathScan {
			project = nil // scan totals are dominated by the scan itself
		}
		timed(path.String(), func() {
			for _, r := range queries {
				if _, err := eng.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: project, Path: path}); err != nil {
					panic(err)
				}
			}
		})
		c := eng.Cost()
		m[path.String()+"_total_work"] = c.Total()
		m[path.String()+"_recurring"] = c.Recurring()
	}

	// The PathAuto planner on the drifting select-project workload
	// (E15's shape): total work includes the explore probes, so a
	// planner regression — extra re-explores, a worse choice — shows
	// up directly.
	shiftEvery := cfg.Queries / 10
	if shiftEvery < 1 {
		shiftEvery = 1
	}
	drift := workload.Queries(
		workload.NewDriftingHotSet(cfg.Seed+15, 0, column.Value(cfg.Domain), cfg.Selectivity, 0.1, 16, 1.3, shiftEvery),
		cfg.Queries)
	eng := benchEngine(cfg)
	timed("planner_auto", func() {
		for _, r := range drift {
			if _, err := eng.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathAuto}); err != nil {
				panic(err)
			}
		}
	})
	m["planner_auto_total_work"] = eng.Cost().Total()

	// The write path: E16's mixed read/write stream per merge policy.
	var outcomes []experiments.E16Outcome
	var identical bool
	timed("updates", func() { outcomes, identical = experiments.RunE16(cfg) })
	if !identical {
		panic("benchjson: merge policies disagreed on read results")
	}
	for _, o := range outcomes {
		m["updates_"+o.Policy+"_total_work"] = o.Total
		m["updates_"+o.Policy+"_recurring"] = o.Recurring
	}

	// Tracing must be free on the deterministic counters: replay the
	// cracking stream with a span recorder and event log attached and
	// gate the absolute difference in logical work against the bare
	// stream. The committed baseline is 0 and compare() fails any
	// positive value against a zero baseline, so a tracing hook that
	// perturbs the engine's work by even one counter tick fails CI.
	timed("trace_overhead", func() {
		bare := benchEngine(cfg)
		for _, r := range queries {
			if _, err := bare.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathCracking}); err != nil {
				panic(err)
			}
		}
		traced := benchEngine(cfg)
		traced.SetEventLog(trace.NewLog(256))
		for _, r := range queries {
			rec := trace.NewRecorder()
			if _, err := traced.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathCracking, Trace: rec}); err != nil {
				panic(err)
			}
			rec.Finish()
		}
		b, tr := bare.Cost().Total(), traced.Cost().Total()
		diff := b - tr
		if tr > b {
			diff = tr - b
		}
		m["trace_overhead_work"] = diff
	})

	// Bytes on the wire: the deterministic half of E17 — identical
	// select-project results encoded as JSON and as the binary columnar
	// format. Gating both totals pins the size win: a codec change that
	// bloats the binary encoding past the threshold fails CI.
	timed("wire_encode", func() {
		jsonBytes, binBytes := experiments.WireBytes(cfg)
		m["wire_selectproject_json_bytes"] = jsonBytes
		m["wire_selectproject_binary_bytes"] = binBytes
	})

	// Scatter-gather sharding: the same cracking stream through a
	// row-striped cluster at 1, 2 and 4 shards. Per-shard counters are
	// deterministic and their sum is scheduling-independent, so the
	// totals gate cleanly; the wall timings show the concurrency but
	// never enter the gate. A one-shard cluster must be the identity —
	// its total matching the bare cracking engine's is asserted here,
	// not merely gated.
	for _, shards := range []int{1, 2, 4} {
		cl, err := shard.New(benchCatalog(cfg), shards, core.DefaultOptions())
		if err != nil {
			panic(err)
		}
		name := fmt.Sprintf("sharded_%d", shards)
		timed(name, func() {
			for _, r := range queries {
				if _, err := cl.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathCracking}); err != nil {
					panic(err)
				}
			}
		})
		m[name+"_total_work"] = cl.Cost().Total()
	}
	if m["sharded_1_total_work"] != m["cracking_total_work"] {
		panic(fmt.Sprintf("benchjson: one-shard cluster work %d diverges from the bare engine's %d",
			m["sharded_1_total_work"], m["cracking_total_work"]))
	}

	// Epoch-pinned reads: the same cracking stream through the service
	// at Readers=1 must leave the deterministic counters byte-identical
	// to the bare engine's — readers<=1 is the contract under which the
	// epoch machinery stays fully disengaged. The equality is asserted
	// here, not merely gated. A Readers=4 replay then records the epoch
	// pool's wall time and the reorganiser's final lag as timings only:
	// both depend on core count and scheduling, so they never gate.
	timed("epoch_readers_1", func() {
		m["epoch_read_total_work"] = epochReplay(cfg, 1, queries, timings)
	})
	if m["epoch_read_total_work"] != m["cracking_total_work"] {
		panic(fmt.Sprintf("benchjson: readers=1 service work %d diverges from the bare engine's %d",
			m["epoch_read_total_work"], m["cracking_total_work"]))
	}
	timed("epoch_readers_4", func() {
		epochReplay(cfg, 4, queries, timings)
	})

	// Multi-node routing: the same cracking stream through crackrouter
	// over a single in-process backend. A one-node router is the
	// identity — global ids, merge and counters untouched — so its work
	// total must be byte-identical to the bare cracking engine's. The
	// equality is asserted here, not merely gated: any routing-layer
	// change that perturbs what the backend executes fails CI.
	timed("routed_1", func() {
		m["routed_1_total_work"] = routedReplay(cfg, queries)
	})
	if m["routed_1_total_work"] != m["cracking_total_work"] {
		panic(fmt.Sprintf("benchjson: one-node router work %d diverges from the bare engine's %d",
			m["routed_1_total_work"], m["cracking_total_work"]))
	}
	return m, timings
}

// routedReplay drives the pinned cracking stream through a Router over
// one in-process backend service and returns the cluster's summed work
// total as the router's merged /stats reports it.
func routedReplay(cfg experiments.Config, queries []column.Range) uint64 {
	svc, err := server.NewService(server.Config{
		Engine:       benchEngine(cfg),
		DefaultTable: "data",
		DefaultPath:  "cracking",
	})
	if err != nil {
		panic(err)
	}
	defer svc.Close()
	backend := httptest.NewServer(svc.Handler())
	defer backend.Close()
	rt, err := router.New(router.Config{Nodes: []string{backend.URL}})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := api.NewClient(front.URL, api.ClientOptions{})
	ctx := context.Background()
	for _, r := range queries {
		q := api.QueryRequest{Op: "select", Table: "data", Column: "c0", Project: []string{"c1"}}
		if r.HasLow {
			lo := r.Low
			q.Low = &lo
			if !r.IncLow {
				f := false
				q.IncLow = &f
			}
		}
		if r.HasHigh {
			hi := r.High
			q.High = &hi
			if r.IncHigh {
				tr := true
				q.IncHigh = &tr
			}
		}
		if _, err := client.Query(ctx, q); err != nil {
			panic(err)
		}
	}
	st, err := client.Stats(ctx)
	if err != nil {
		panic(err)
	}
	return st.WorkTotal
}

// epochReplay drives the pinned cracking stream through a direct-mode
// service at the given read concurrency and returns the engine's
// deterministic work total. Above one reader it also records the
// reorganiser's final lag under "epoch_reorg_lag" in the timings map.
func epochReplay(cfg experiments.Config, readers int, queries []column.Range, timings map[string]float64) uint64 {
	svc, err := server.NewService(server.Config{
		Engine:       benchEngine(cfg),
		DefaultTable: "data",
		DefaultPath:  "cracking",
		Readers:      readers,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range queries {
		reply, err := svc.SelectQuery(server.Query{R: r, Project: []string{"c1"}})
		if err != nil {
			panic(err)
		}
		if reply.Done != nil {
			reply.Done()
		}
	}
	svc.Close()
	st := svc.Stats()
	if readers > 1 && st.Reorg != nil {
		timings["epoch_reorg_lag"] = float64(st.Reorg.LagUs) / 1000
	}
	return st.WorkTotal
}

// benchCatalog builds the same two-column catalog as benchEngine, for
// hosts that stripe it themselves.
func benchCatalog(cfg experiments.Config) *engine.Catalog {
	tab := engine.NewTable("data")
	for ci, seedOff := range []int64{0, 1} {
		if err := tab.AddColumn(fmt.Sprintf("c%d", ci), workload.DataUniform(cfg.Seed+seedOff, cfg.N, cfg.Domain)); err != nil {
			panic(err)
		}
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tab); err != nil {
		panic(err)
	}
	return cat
}

// benchEngine builds the two-column single-table engine the read
// benchmarks run against.
func benchEngine(cfg experiments.Config) *engine.Engine {
	return engine.New(benchCatalog(cfg), core.DefaultOptions())
}

func load(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// compare fails when any baseline metric regressed beyond the
// threshold or disappeared; new metrics in the current run are
// reported but never fail the gate (they get a baseline when it is
// next refreshed).
func compare(out io.Writer, base, cur Report, threshold float64) error {
	if base.Format != cur.Format {
		return fmt.Errorf("baseline format %d, current %d — refresh the baseline", base.Format, cur.Format)
	}
	if base.Config != cur.Config {
		return fmt.Errorf("baseline config %+v does not match pinned config %+v — refresh the baseline", base.Config, cur.Config)
	}
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		baseVal := base.Metrics[name]
		curVal, ok := cur.Metrics[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: metric disappeared (baseline %d)", name, baseVal))
			continue
		}
		ratio := float64(curVal) / float64(max(baseVal, 1))
		switch {
		case float64(curVal) > float64(baseVal)*(1+threshold):
			regressions = append(regressions, fmt.Sprintf("%s: %d -> %d (%.1f%% > %.0f%% allowed)",
				name, baseVal, curVal, (ratio-1)*100, threshold*100))
		case curVal != baseVal:
			fmt.Fprintf(out, "%s: %d -> %d (%.1f%%, within threshold)\n", name, baseVal, curVal, (ratio-1)*100)
		}
	}
	for name := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			fmt.Fprintf(out, "%s: new metric (%d), not gated\n", name, cur.Metrics[name])
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(out, "REGRESSION", r)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(regressions), threshold*100)
	}
	fmt.Fprintln(out, "benchmark gate passed")
	return nil
}
