package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "5000", "-queries", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStochastic(t *testing.T) {
	if err := run([]string{"-n", "5000", "-queries", "5", "-stochastic", "256"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected a flag parse error")
	}
}

func TestReplayEvents(t *testing.T) {
	// Two pages then caught-up: the replay must walk the cursor through
	// both and print every event once, in order.
	pages := map[string]string{
		"0": `{"events":[{"seq":1,"unix_micros":1,"kind":"build","table":"data","column":"c0","path":"cracking","fields":{"rows":100}},
		               {"seq":2,"unix_micros":2,"kind":"crack","table":"data","column":"c0","fields":{"pieces_after":3,"pieces_before":1}}],"last_seq":3,"dropped":0}`,
		"2": `{"events":[{"seq":3,"unix_micros":3,"kind":"plan_exploit","table":"data","column":"c0","path":"cracking","fields":{"baseline":5}}],"last_seq":3,"dropped":0}`,
		"3": `{"events":[],"last_seq":3,"dropped":0}`,
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/events" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, pages[r.URL.Query().Get("since")])
	}))
	defer ts.Close()

	var out strings.Builder
	if err := replayEvents(ts.URL, 0, false, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 replayed events, got %d:\n%s", len(lines), got)
	}
	for i, want := range []string{"build", "crack", "plan_exploit"} {
		if !strings.Contains(lines[i], want) || !strings.Contains(lines[i], fmt.Sprintf("seq=%d", i+1)) {
			t.Fatalf("line %d = %q, want kind %s in sequence order", i, lines[i], want)
		}
	}
	// Fields render sorted, so replays are byte-stable.
	if !strings.Contains(lines[1], "pieces_after=3 pieces_before=1") {
		t.Fatalf("fields not in sorted order: %q", lines[1])
	}
}

func TestRunEventsFlagValidation(t *testing.T) {
	// An unreachable daemon is an error, not a hang.
	if err := run([]string{"-events", "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable -events daemon must fail")
	}
}
