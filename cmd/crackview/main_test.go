package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "5000", "-queries", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStochastic(t *testing.T) {
	if err := run([]string{"-n", "5000", "-queries", "5", "-stochastic", "256"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected a flag parse error")
	}
}
