// Command crackview visualises how a cracker column's piece structure
// evolves: it builds a column, runs a query sequence against it, and
// prints the resulting pieces (position ranges and the pivot bounds
// that delimit them) together with the accumulated work counters.
//
// Usage:
//
//	crackview -n 1000000 -queries 25 -selectivity 0.02
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptiveindex/internal/core"
	"adaptiveindex/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crackview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crackview", flag.ContinueOnError)
	var (
		n           = fs.Int("n", 1_000_000, "number of tuples")
		queries     = fs.Int("queries", 20, "number of queries to run before printing")
		selectivity = fs.Float64("selectivity", 0.01, "query selectivity")
		seed        = fs.Int64("seed", 1, "random seed")
		stochastic  = fs.Int("stochastic", 0, "random-pivot piece-size threshold (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	vals := workload.DataUniform(*seed, *n, *n)
	cc := core.NewCrackerColumn(vals, core.Options{
		CrackInThree:         true,
		RandomPivotThreshold: *stochastic,
		Seed:                 *seed,
	})
	gen := workload.NewUniform(*seed+1, 0, int64(*n), *selectivity)
	for i := 0; i < *queries; i++ {
		q := gen.Next()
		count := cc.Count(q)
		fmt.Printf("query %3d  %-24s -> %8d rows, %3d pieces\n", i+1, q, count, cc.NumPieces())
	}

	fmt.Printf("\npiece layout after %d queries (%d tuples):\n", *queries, cc.Len())
	fmt.Printf("%-12s %-12s %-10s %-14s %-14s\n", "start", "end", "size", "lower", "upper")
	for _, p := range cc.Pieces() {
		lower, upper := "-inf", "+inf"
		if p.HasLower {
			lower = p.Lower.String()
		}
		if p.HasUpper {
			upper = p.Upper.String()
		}
		fmt.Printf("%-12d %-12d %-10d %-14s %-14s\n", p.Start, p.End, p.End-p.Start, lower, upper)
	}
	fmt.Printf("\naccumulated work: %s\n", cc.Cost())
	if err := cc.Validate(); err != nil {
		return fmt.Errorf("invariant check failed: %w", err)
	}
	fmt.Println("invariants: ok")
	return nil
}
