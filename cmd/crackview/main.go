// Command crackview visualises how a cracker column's piece structure
// evolves: it builds a column, runs a query sequence against it, and
// prints the resulting pieces (position ranges and the pivot bounds
// that delimit them) together with the accumulated work counters.
//
// With -events it instead replays a live crackserve daemon's
// reorganisation event log (/debug/events) — the same evolution, but
// observed from a running service: structure builds, crack splits,
// piece-count thresholds, merge flushes and planner decisions, in
// sequence order. -follow keeps polling for new events; -since resumes
// a replay from a cursor.
//
// Usage:
//
//	crackview -n 1000000 -queries 25 -selectivity 0.02
//	crackview -events localhost:8080
//	crackview -events localhost:8080 -follow -since 1200
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"adaptiveindex/internal/core"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crackview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crackview", flag.ContinueOnError)
	var (
		n           = fs.Int("n", 1_000_000, "number of tuples")
		queries     = fs.Int("queries", 20, "number of queries to run before printing")
		selectivity = fs.Float64("selectivity", 0.01, "query selectivity")
		seed        = fs.Int64("seed", 1, "random seed")
		stochastic  = fs.Int("stochastic", 0, "random-pivot piece-size threshold (0 = off)")
		events      = fs.String("events", "", "replay a crackserve reorganisation event log from this address instead of cracking locally")
		follow      = fs.Bool("follow", false, "with -events, keep polling for new events")
		since       = fs.Uint64("since", 0, "with -events, resume the replay after this sequence number")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *events != "" {
		base := *events
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		return replayEvents(strings.TrimRight(base, "/"), *since, *follow, os.Stdout)
	}

	vals := workload.DataUniform(*seed, *n, *n)
	cc := core.NewCrackerColumn(vals, core.Options{
		CrackInThree:         true,
		RandomPivotThreshold: *stochastic,
		Seed:                 *seed,
	})
	gen := workload.NewUniform(*seed+1, 0, int64(*n), *selectivity)
	for i := 0; i < *queries; i++ {
		q := gen.Next()
		count := cc.Count(q)
		fmt.Printf("query %3d  %-24s -> %8d rows, %3d pieces\n", i+1, q, count, cc.NumPieces())
	}

	fmt.Printf("\npiece layout after %d queries (%d tuples):\n", *queries, cc.Len())
	fmt.Printf("%-12s %-12s %-10s %-14s %-14s\n", "start", "end", "size", "lower", "upper")
	for _, p := range cc.Pieces() {
		lower, upper := "-inf", "+inf"
		if p.HasLower {
			lower = p.Lower.String()
		}
		if p.HasUpper {
			upper = p.Upper.String()
		}
		fmt.Printf("%-12d %-12d %-10d %-14s %-14s\n", p.Start, p.End, p.End-p.Start, lower, upper)
	}
	fmt.Printf("\naccumulated work: %s\n", cc.Cost())
	if err := cc.Validate(); err != nil {
		return fmt.Errorf("invariant check failed: %w", err)
	}
	fmt.Println("invariants: ok")
	return nil
}

// eventsPage mirrors the server's /debug/events response shape.
type eventsPage struct {
	Events  []trace.Event `json:"events"`
	LastSeq uint64        `json:"last_seq"`
	Dropped uint64        `json:"dropped"`
}

// replayEvents prints a daemon's reorganisation log in sequence order,
// one event per line. Without follow it stops once the cursor catches
// up with the log; with follow it keeps polling.
func replayEvents(base string, since uint64, follow bool, out io.Writer) error {
	cursor := since
	for {
		resp, err := http.Get(fmt.Sprintf("%s/debug/events?since=%d&max=256", base, cursor))
		if err != nil {
			return err
		}
		var page eventsPage
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d from %s/debug/events", resp.StatusCode, base)
		}
		if page.Dropped > 0 {
			fmt.Fprintf(out, "-- %d events evicted before the cursor caught up --\n", page.Dropped)
		}
		for _, ev := range page.Events {
			fmt.Fprintln(out, formatEvent(ev))
			cursor = ev.Seq
		}
		if len(page.Events) == 0 || cursor >= page.LastSeq {
			if !follow {
				return nil
			}
			time.Sleep(500 * time.Millisecond)
		}
	}
}

// formatEvent renders one event on one line, numeric fields in sorted
// order so a replay is byte-stable for the same log.
func formatEvent(ev trace.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%-6d %s %-16s", ev.Seq,
		time.UnixMicro(ev.UnixMicros).Format("15:04:05.000000"), ev.Kind)
	if ev.Table != "" {
		fmt.Fprintf(&b, " %s.%s", ev.Table, ev.Column)
	}
	if ev.Path != "" {
		fmt.Fprintf(&b, " path=%s", ev.Path)
	}
	keys := make([]string, 0, len(ev.Fields))
	for k := range ev.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%g", k, ev.Fields[k])
	}
	return b.String()
}
