package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func startBackend(t *testing.T, n int) (*server.Service, *httptest.Server) {
	t.Helper()
	cat, err := server.BuildCatalog([]server.TableSpec{
		{Name: "data", Rows: n, Cols: 3},
		{Name: "aux", Rows: n / 2, Cols: 2},
	}, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	built, err := server.BuildEngine(cat, server.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.NewService(server.Config{
		Engine:       built.Engine,
		DefaultTable: "data",
		BatchWindow:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// TestReplayAgainstLiveServer replays a hot-set workload over the wire
// and checks the report and the server-side accounting agree.
func TestReplayAgainstLiveServer(t *testing.T) {
	svc, ts := startBackend(t, 20_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "4",
		"-queries", "30",
		"-workload", "hotset",
		"-domain", "20000",
		"-op", "select",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"total=120", "throughput", "latency p50=", "server: tables=2", "errors 0", "planner: data.c0"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// +0 stats queries: /stats is not counted as a query.
	if st := svc.Stats(); st.Queries != 120 {
		t.Fatalf("server answered %d queries, want 120", st.Queries)
	}
}

// TestSelectProjectOverTheWire replays the selectproject shape and
// verifies the projection traffic builds sideways-capable state server
// side.
func TestSelectProjectOverTheWire(t *testing.T) {
	svc, ts := startBackend(t, 10_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "3",
		"-queries", "40",
		"-workload", "selectproject",
		"-project", "c1,c2",
		"-domain", "10000",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"workload=selectproject op=select", "total=120", "errors 0"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if st := svc.Stats(); st.Queries != 120 {
		t.Fatalf("server answered %d queries, want 120", st.Queries)
	}
}

// TestMultiTableOverTheWire drives every table the catalog lists.
func TestMultiTableOverTheWire(t *testing.T) {
	svc, ts := startBackend(t, 10_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "2",
		"-queries", "20",
		"-workload", "multitable",
		"-domain", "10000",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "errors 0") {
		t.Fatalf("queries failed:\n%s", out.String())
	}
	// Both tables must have been touched: the engine builds at least one
	// structure (or planner state) per table the sessions hit.
	st := svc.Stats()
	tables := make(map[string]bool)
	for _, plan := range st.Planner {
		tables[plan.Table] = true
	}
	if len(tables) < 2 {
		t.Fatalf("multitable replay reached %d tables, want 2 (planner: %+v)", len(tables), st.Planner)
	}
}

// TestWorkloadShapesOverTheWire exercises every named shape end to end.
func TestWorkloadShapesOverTheWire(t *testing.T) {
	_, ts := startBackend(t, 5_000)
	for _, shape := range workload.Names() {
		var out bytes.Buffer
		err := run([]string{
			"-addr", strings.TrimPrefix(ts.URL, "http://"), // exercise host:port normalisation
			"-sessions", "2",
			"-queries", "5",
			"-workload", shape,
			"-domain", "5000",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v\noutput:\n%s", shape, err, out.String())
		}
		if !strings.Contains(out.String(), "errors 0") {
			t.Fatalf("%s: queries failed:\n%s", shape, out.String())
		}
	}
}

// TestMixedWritesOverTheWire replays the mixed shape and verifies the
// write traffic reaches the engine: rows are applied server side, the
// report counts reads and writes separately, and a high write ratio
// leaves the catalog visibly grown.
func TestMixedWritesOverTheWire(t *testing.T) {
	svc, ts := startBackend(t, 10_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "3",
		"-queries", "40",
		"-workload", "updateheavy",
		"-domain", "10000",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"workload=updateheavy", "errors 0", "write latency p50=", "writes: applied"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	st := svc.Stats()
	if st.Writes == 0 {
		t.Fatal("no writes reached the server")
	}
	if st.Queries+st.Writes != 120 {
		t.Fatalf("server saw %d queries + %d writes, want 120 ops", st.Queries, st.Writes)
	}
	if ws := st.WriteState; ws.Inserts == 0 || ws.Inserts <= ws.Deletes {
		t.Fatalf("write state looks wrong: %+v", ws)
	}
	var data server.TableStats
	for _, tab := range st.Tables {
		if tab.Table == "data" {
			data = tab
		}
	}
	if data.Rows <= 10_000 {
		t.Fatalf("inserts did not grow the table: %+v", data)
	}
	if data.LiveRows != 10_000+int(st.WriteState.Inserts-st.WriteState.Deletes) {
		t.Fatalf("live rows %d inconsistent with %+v", data.LiveRows, st.WriteState)
	}
}

// TestBinaryProtocolOverTheWire replays the selectproject shape on the
// binary columnar protocol, streamed in small blocks, and verifies the
// run decodes every response, reports the wire metrics, and reuses its
// keep-alive connections.
func TestBinaryProtocolOverTheWire(t *testing.T) {
	svc, ts := startBackend(t, 10_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "3",
		"-queries", "40",
		"-workload", "selectproject",
		"-project", "c1,c2",
		"-domain", "10000",
		"-proto", "binary",
		"-block", "64",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"errors 0", "read ttfb p50=", "wire: proto=binary block=64", "bytes/query=", "conn-reuse="} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if st := svc.Stats(); st.Queries != 120 {
		t.Fatalf("server answered %d queries, want 120", st.Queries)
	}
	// 3 sessions × 40 sequential queries over a shared keep-alive pool:
	// nearly every request after the first per connection must be a
	// reuse. Parse the reported percentage and require a healthy rate.
	i := strings.Index(report, "conn-reuse=")
	var rate float64
	if _, err := fmt.Sscanf(report[i:], "conn-reuse=%f%%", &rate); err != nil {
		t.Fatalf("cannot parse reuse rate: %v\n%s", err, report)
	}
	if rate < 80 {
		t.Fatalf("connection reuse rate %.1f%%, want >= 80%% with a shared transport\n%s", rate, report)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-op", "truncate"},
		{"-workload", "tsunami", "-addr", "localhost:1"},
		{"-sessions", "0"},
		{"-workload", "selectproject"}, // needs -project
		{"-workload", "mixed", "-write-ratio", "1.5"},
		{"-proto", "carrier-pigeon"},
		{"-block", "-1"},
		{"-block", "128"}, // -block needs -proto binary
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v must fail", args)
		}
	}
}

func TestUnreachableServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-sessions", "1", "-queries", "2"}, &out)
	if err == nil {
		t.Fatal("unreachable server must fail")
	}
}

// TestTraceSampleAndInterimReports drives the new observability flags:
// every Nth read asks the server for its span tree, the run ends with
// a phase breakdown, and interim lines appear while it runs.
func TestTraceSampleAndInterimReports(t *testing.T) {
	svc, ts := startBackend(t, 20_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "4",
		"-queries", "40",
		"-workload", "hotset",
		"-domain", "20000",
		"-op", "select",
		"-trace-sample", "4",
		"-report-interval", "50ms",
		"-think", "2ms", // stretch the run past a couple of report ticks
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "trace: ") {
		t.Fatalf("no trace phase breakdown in report:\n%s", report)
	}
	// 40 queries per session at every 4th sampled = 10 per session.
	if !strings.Contains(report, "trace: 40 sampled queries") {
		t.Fatalf("wrong sample count in report:\n%s", report)
	}
	for _, phase := range []string{"queue_wait", "crack"} {
		if !strings.Contains(report, phase) {
			t.Fatalf("phase %s missing from breakdown:\n%s", phase, report)
		}
	}
	if !strings.Contains(report, "interim t=") {
		t.Fatalf("no interim report lines:\n%s", report)
	}
	if st := svc.Stats(); st.TracedQueries != 40 {
		t.Fatalf("server saw %d traced queries, want 40", st.TracedQueries)
	}
}

// TestTraceSampleBinaryProto checks the span tree also arrives over
// the binary protocol's trace frame.
func TestTraceSampleBinaryProto(t *testing.T) {
	_, ts := startBackend(t, 20_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "2",
		"-queries", "10",
		"-workload", "hotset",
		"-domain", "20000",
		"-op", "select",
		"-proto", "binary",
		"-trace-sample", "5",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace: 4 sampled queries") {
		t.Fatalf("binary-proto trace frames not aggregated:\n%s", out.String())
	}
}

func TestObservabilityFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-trace-sample", "-1"}); err == nil {
		t.Fatal("negative -trace-sample must fail")
	}
	if _, err := parseFlags([]string{"-report-interval", "-1s"}); err == nil {
		t.Fatal("negative -report-interval must fail")
	}
}

// TestShardReportAgainstShardedServer: when the server fronts a shard
// cluster, the final report carries the per-shard breakdown its /stats
// exposes.
func TestShardReportAgainstShardedServer(t *testing.T) {
	cat, err := server.BuildCatalog([]server.TableSpec{
		{Name: "data", Rows: 12_000, Cols: 3},
	}, 1, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	built, err := server.BuildExec(cat, server.EngineOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.NewService(server.Config{
		Exec:         built.Exec,
		DefaultTable: "data",
		BatchWindow:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	var out bytes.Buffer
	if err := run([]string{
		"-addr", ts.URL,
		"-sessions", "2",
		"-queries", "20",
		"-workload", "hotset",
		"-domain", "12000",
		"-op", "select",
	}, &out); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"shards: 3 [0: work=", "1: work=", "2: work="} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}
