package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func startBackend(t *testing.T, n int) (*server.Service, *httptest.Server) {
	t.Helper()
	vals := workload.DataUniform(1, n, n)
	built, err := server.BuildIndex("cracking", vals, server.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.NewService(server.Config{
		Index:       built.Index,
		Kind:        built.Kind,
		BatchWindow: 200 * time.Microsecond,
		Cracker:     built.Cracker,
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// TestReplayAgainstLiveServer replays a hot-set workload over the wire
// and checks the report and the server-side accounting agree.
func TestReplayAgainstLiveServer(t *testing.T) {
	svc, ts := startBackend(t, 20_000)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-sessions", "4",
		"-queries", "30",
		"-workload", "hotset",
		"-domain", "20000",
		"-op", "select",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"total=120", "throughput", "latency p50=", "server: kind=cracking", "errors 0"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// +0 stats queries: /stats is not counted as a query.
	if st := svc.Stats(); st.Queries != 120 {
		t.Fatalf("server answered %d queries, want 120", st.Queries)
	}
}

// TestWorkloadShapesOverTheWire exercises every named shape end to end.
func TestWorkloadShapesOverTheWire(t *testing.T) {
	_, ts := startBackend(t, 5_000)
	for _, shape := range workload.Names() {
		var out bytes.Buffer
		err := run([]string{
			"-addr", strings.TrimPrefix(ts.URL, "http://"), // exercise host:port normalisation
			"-sessions", "2",
			"-queries", "5",
			"-workload", shape,
			"-domain", "5000",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v\noutput:\n%s", shape, err, out.String())
		}
		if !strings.Contains(out.String(), "errors 0") {
			t.Fatalf("%s: queries failed:\n%s", shape, out.String())
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-op", "truncate"},
		{"-workload", "tsunami", "-addr", "localhost:1"},
		{"-sessions", "0"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v must fail", args)
		}
	}
}

func TestUnreachableServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-sessions", "1", "-queries", "2"}, &out)
	if err == nil {
		t.Fatal("unreachable server must fail")
	}
}
