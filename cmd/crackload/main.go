// Command crackload replays a workload against a crackserve daemon
// from N concurrent sessions and reports throughput and latency
// percentiles — the IDEBench-style view of an interactive exploration
// backend: many users with think time, judged by per-query latency.
//
//	crackload -addr localhost:8080 -workload hotset -sessions 16 -queries 500
//	crackload -workload selectproject -table data -column c0 -project c1,c2
//	crackload -workload multitable -op select
//
// Sessions replay internal/workload generators over the wire: hot-set
// and selectproject sessions share one pool of ranges (concurrent
// users of the same dashboard), multitable sessions round-robin across
// every table the server's /stats catalog lists, and the other shapes
// get independent per-session streams. After the run, the tool fetches
// /stats and prints the server-side view (catalog, cracked pieces,
// planner decisions, batches, shared scans) next to the client-side
// latencies.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crackload:", err)
		os.Exit(1)
	}
}

type config struct {
	base        string
	sessions    int
	perSession  int
	shape       string
	selectivity float64
	domain      int64
	seed        int64
	op          string
	think       time.Duration
	table       string
	col         string
	project     []string
	path        string
}

// shapeNames lists the workload shapes crackload accepts: every range
// shape internal/workload names, plus the table-aware shapes.
func shapeNames() []string {
	return append(workload.Names(), "selectproject", "multitable")
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crackload", flag.ContinueOnError)
	var cfg config
	var addr, project string
	fs.StringVar(&addr, "addr", "localhost:8080", "crackserve address (host:port or URL)")
	fs.IntVar(&cfg.sessions, "sessions", 8, "concurrent client sessions")
	fs.IntVar(&cfg.perSession, "queries", 200, "queries per session")
	fs.StringVar(&cfg.shape, "workload", "hotset", "workload shape ("+strings.Join(shapeNames(), ", ")+")")
	fs.Float64Var(&cfg.selectivity, "selectivity", 0.01, "query selectivity (fraction of the domain)")
	fs.Int64Var(&cfg.domain, "domain", 1_000_000, "value domain queried (match the server's -domain)")
	fs.Int64Var(&cfg.seed, "seed", 42, "workload seed")
	fs.StringVar(&cfg.op, "op", "count", "query operation: count or select")
	fs.DurationVar(&cfg.think, "think", 0, "think time between a session's queries")
	fs.StringVar(&cfg.table, "table", "", "table to query (default: the server's default table)")
	fs.StringVar(&cfg.col, "column", "", "selection column (default: the server's default column)")
	fs.StringVar(&project, "project", "", "comma-separated projection columns (selectproject shape; forces -op select)")
	fs.StringVar(&cfg.path, "path", "", "access path to request (default: the server's default path)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if project != "" {
		for _, p := range strings.Split(project, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.project = append(cfg.project, p)
			}
		}
	}
	known := false
	for _, name := range shapeNames() {
		if cfg.shape == name {
			known = true
			break
		}
	}
	if !known {
		return cfg, fmt.Errorf("unknown -workload %q (want %s)", cfg.shape, strings.Join(shapeNames(), ", "))
	}
	if cfg.shape == "selectproject" && len(cfg.project) == 0 {
		return cfg, fmt.Errorf("-workload selectproject needs -project")
	}
	if len(cfg.project) > 0 {
		cfg.op = "select"
	}
	if cfg.op != "count" && cfg.op != "select" {
		return cfg, fmt.Errorf("unknown -op %q (want count or select)", cfg.op)
	}
	if cfg.sessions < 1 || cfg.perSession < 1 {
		return cfg, fmt.Errorf("-sessions and -queries must be positive")
	}
	cfg.base = addr
	if !strings.Contains(cfg.base, "://") {
		cfg.base = "http://" + cfg.base
	}
	cfg.base = strings.TrimRight(cfg.base, "/")
	return cfg, nil
}

// sessionStreams builds one table-level generator per session.
func sessionStreams(cfg config, client *http.Client) ([]workload.TableGenerator, error) {
	target := workload.Target{Table: cfg.table, Column: cfg.col, Project: cfg.project}
	switch cfg.shape {
	case "selectproject":
		return workload.SelectProjectSessions(cfg.seed, cfg.sessions, target, 0, column.Value(cfg.domain), cfg.selectivity), nil
	case "multitable":
		// Enumerate the served catalog and hit every table.
		st, err := fetchStats(client, cfg.base)
		if err != nil {
			return nil, fmt.Errorf("multitable needs the server catalog: %w", err)
		}
		if len(st.Tables) == 0 {
			return nil, fmt.Errorf("server reports no tables")
		}
		var targets []workload.Target
		for _, tab := range st.Tables {
			tgt := workload.Target{Table: tab.Table}
			if len(tab.Columns) > 0 {
				tgt.Column = tab.Columns[0]
			}
			// Apply the projection only where every named column exists.
			if len(cfg.project) > 0 && containsAll(tab.Columns, cfg.project) {
				tgt.Project = cfg.project
			}
			targets = append(targets, tgt)
		}
		return workload.MultiTableSessions("hotset", cfg.seed, cfg.sessions, targets, 0, column.Value(cfg.domain), cfg.selectivity)
	default:
		gens, err := workload.SessionGenerators(cfg.shape, cfg.seed, cfg.sessions, 0, column.Value(cfg.domain), cfg.selectivity)
		if err != nil {
			return nil, err
		}
		out := make([]workload.TableGenerator, len(gens))
		for i, g := range gens {
			out[i] = workload.NewFixedTarget(target, g)
		}
		return out, nil
	}
}

func containsAll(have, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	gens, err := sessionStreams(cfg, client)
	if err != nil {
		return err
	}

	type sessionResult struct {
		latencies []time.Duration
		errs      int
		firstErr  error
	}
	results := make([]sessionResult, cfg.sessions)

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.sessions; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := &results[id]
			res.latencies = make([]time.Duration, 0, cfg.perSession)
			for q := 0; q < cfg.perSession; q++ {
				tq := gens[id].NextQuery()
				body, err := json.Marshal(wireQuery(cfg, tq))
				if err != nil {
					res.errs++
					continue
				}
				t0 := time.Now()
				err = postQuery(client, cfg.base, body)
				lat := time.Since(t0)
				if err != nil {
					res.errs++
					if res.firstErr == nil {
						res.firstErr = err
					}
				} else {
					res.latencies = append(res.latencies, lat)
				}
				if cfg.think > 0 {
					time.Sleep(cfg.think)
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	errs := 0
	var firstErr error
	for _, res := range results {
		all = append(all, res.latencies...)
		errs += res.errs
		if firstErr == nil {
			firstErr = res.firstErr
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("no query succeeded (first error: %v)", firstErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}

	total := cfg.sessions * cfg.perSession
	fmt.Fprintf(out, "crackload: workload=%s op=%s sessions=%d queries/session=%d total=%d\n",
		cfg.shape, cfg.op, cfg.sessions, cfg.perSession, total)
	fmt.Fprintf(out, "wall %v  throughput %.1f q/s  errors %d\n",
		wall.Round(time.Millisecond), float64(len(all))/wall.Seconds(), errs)
	if errs > 0 && firstErr != nil {
		fmt.Fprintf(out, "first error: %v\n", firstErr)
	}
	fmt.Fprintf(out, "latency p50=%v p95=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))

	if st, err := fetchStats(client, cfg.base); err == nil {
		fmt.Fprintf(out, "server: tables=%d pieces=%d mode=%s batches=%d shared-scans=%d rejected=%d p50=%dµs p99=%dµs\n",
			len(st.Tables), st.Structures.Pieces, st.Mode, st.Batches, st.SharedScans,
			st.Rejected, st.Latency.P50Us, st.Latency.P99Us)
		for _, plan := range st.Planner {
			fmt.Fprintf(out, "planner: %s.%s phase=%s chosen=%s re-explores=%d\n",
				plan.Table, plan.Column, plan.Phase, plan.Chosen, plan.ReExplores)
		}
	} else {
		fmt.Fprintf(out, "server: stats unavailable: %v\n", err)
	}
	return nil
}

// wireQuery converts one table-level query to the wire form.
func wireQuery(cfg config, tq workload.TableQuery) server.QueryRequest {
	q := server.QueryRequest{
		Op:      cfg.op,
		Table:   tq.Table,
		Column:  tq.Column,
		Project: tq.Project,
		Path:    cfg.path,
	}
	if len(tq.Project) > 0 {
		q.Op = "select"
	}
	r := tq.R
	if r.HasLow {
		lo := r.Low
		q.Low = &lo
		if !r.IncLow {
			f := false
			q.IncLow = &f
		}
	}
	if r.HasHigh {
		hi := r.High
		q.High = &hi
		if r.IncHigh {
			tr := true
			q.IncHigh = &tr
		}
	}
	return q
}

func postQuery(client *http.Client, base string, body []byte) error {
	resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		io.Copy(&msg, io.LimitReader(resp.Body, 256))
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(msg.String()))
	}
	// Drain so the connection is reused.
	io.Copy(io.Discard, resp.Body)
	return nil
}

func fetchStats(client *http.Client, base string) (server.Stats, error) {
	var st server.Stats
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
