// Command crackload replays a workload against a crackserve daemon
// from N concurrent sessions and reports throughput and latency
// percentiles — the IDEBench-style view of an interactive exploration
// backend: many users with think time, judged by per-query latency.
//
//	crackload -addr localhost:8080 -workload hotset -sessions 16 -queries 500
//	crackload -addr localhost:8080 -workload skewed -op select -think 10ms
//
// Sessions replay internal/workload generators over the wire: hot-set
// sessions share one pool of ranges (concurrent users of the same
// dashboard), the other shapes get independent per-session streams.
// After the run, the tool fetches /stats and prints the server-side
// view (batches, shared scans, crack count) next to the client-side
// latencies.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crackload:", err)
		os.Exit(1)
	}
}

type config struct {
	base        string
	sessions    int
	perSession  int
	shape       string
	selectivity float64
	domain      int64
	seed        int64
	op          string
	think       time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crackload", flag.ContinueOnError)
	var cfg config
	var addr string
	fs.StringVar(&addr, "addr", "localhost:8080", "crackserve address (host:port or URL)")
	fs.IntVar(&cfg.sessions, "sessions", 8, "concurrent client sessions")
	fs.IntVar(&cfg.perSession, "queries", 200, "queries per session")
	fs.StringVar(&cfg.shape, "workload", "hotset", "workload shape ("+strings.Join(workload.Names(), ", ")+")")
	fs.Float64Var(&cfg.selectivity, "selectivity", 0.01, "query selectivity (fraction of the domain)")
	fs.Int64Var(&cfg.domain, "domain", 1_000_000, "value domain queried (match the server's -domain)")
	fs.Int64Var(&cfg.seed, "seed", 42, "workload seed")
	fs.StringVar(&cfg.op, "op", "count", "query operation: count or select")
	fs.DurationVar(&cfg.think, "think", 0, "think time between a session's queries")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.op != "count" && cfg.op != "select" {
		return cfg, fmt.Errorf("unknown -op %q (want count or select)", cfg.op)
	}
	if cfg.sessions < 1 || cfg.perSession < 1 {
		return cfg, fmt.Errorf("-sessions and -queries must be positive")
	}
	cfg.base = addr
	if !strings.Contains(cfg.base, "://") {
		cfg.base = "http://" + cfg.base
	}
	cfg.base = strings.TrimRight(cfg.base, "/")
	return cfg, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	gens, err := workload.SessionGenerators(cfg.shape, cfg.seed, cfg.sessions, 0, column.Value(cfg.domain), cfg.selectivity)
	if err != nil {
		return err
	}

	type sessionResult struct {
		latencies []time.Duration
		errs      int
		firstErr  error
	}
	results := make([]sessionResult, cfg.sessions)
	client := &http.Client{Timeout: 30 * time.Second}

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.sessions; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := &results[id]
			res.latencies = make([]time.Duration, 0, cfg.perSession)
			for q := 0; q < cfg.perSession; q++ {
				r := gens[id].Next()
				body, err := json.Marshal(wireQuery(cfg.op, r))
				if err != nil {
					res.errs++
					continue
				}
				t0 := time.Now()
				err = postQuery(client, cfg.base, body)
				lat := time.Since(t0)
				if err != nil {
					res.errs++
					if res.firstErr == nil {
						res.firstErr = err
					}
				} else {
					res.latencies = append(res.latencies, lat)
				}
				if cfg.think > 0 {
					time.Sleep(cfg.think)
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	errs := 0
	var firstErr error
	for _, res := range results {
		all = append(all, res.latencies...)
		errs += res.errs
		if firstErr == nil {
			firstErr = res.firstErr
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("no query succeeded (first error: %v)", firstErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}

	total := cfg.sessions * cfg.perSession
	fmt.Fprintf(out, "crackload: workload=%s op=%s sessions=%d queries/session=%d total=%d\n",
		cfg.shape, cfg.op, cfg.sessions, cfg.perSession, total)
	fmt.Fprintf(out, "wall %v  throughput %.1f q/s  errors %d\n",
		wall.Round(time.Millisecond), float64(len(all))/wall.Seconds(), errs)
	if errs > 0 && firstErr != nil {
		fmt.Fprintf(out, "first error: %v\n", firstErr)
	}
	fmt.Fprintf(out, "latency p50=%v p95=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))

	if st, err := fetchStats(client, cfg.base); err == nil {
		fmt.Fprintf(out, "server: kind=%s len=%d partitions=%d cracks=%d mode=%s batches=%d shared-scans=%d rejected=%d p50=%dµs p99=%dµs\n",
			st.Index.Kind, st.Index.Len, st.Index.Partitions, st.Index.Cracks,
			st.Mode, st.Batches, st.SharedScans, st.Rejected, st.Latency.P50Us, st.Latency.P99Us)
	} else {
		fmt.Fprintf(out, "server: stats unavailable: %v\n", err)
	}
	return nil
}

// wireQuery converts an internal predicate to the wire form.
func wireQuery(op string, r column.Range) server.QueryRequest {
	q := server.QueryRequest{Op: op}
	if r.HasLow {
		lo := r.Low
		q.Low = &lo
		if !r.IncLow {
			f := false
			q.IncLow = &f
		}
	}
	if r.HasHigh {
		hi := r.High
		q.High = &hi
		if r.IncHigh {
			tr := true
			q.IncHigh = &tr
		}
	}
	return q
}

func postQuery(client *http.Client, base string, body []byte) error {
	resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		io.Copy(&msg, io.LimitReader(resp.Body, 256))
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(msg.String()))
	}
	// Drain so the connection is reused.
	io.Copy(io.Discard, resp.Body)
	return nil
}

func fetchStats(client *http.Client, base string) (server.Stats, error) {
	var st server.Stats
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
