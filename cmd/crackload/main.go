// Command crackload replays a workload against a crackserve daemon
// from N concurrent sessions and reports throughput and latency
// percentiles — the IDEBench-style view of an interactive exploration
// backend: many users with think time, judged by per-query latency.
//
//	crackload -addr localhost:8080 -workload hotset -sessions 16 -queries 500
//	crackload -workload selectproject -table data -column c0 -project c1,c2
//	crackload -workload multitable -op select
//	crackload -workload mixed -write-ratio 0.2
//	crackload -workload updateheavy
//
// Sessions replay internal/workload generators over the wire: hot-set
// and selectproject sessions share one pool of ranges (concurrent
// users of the same dashboard), multitable sessions round-robin across
// every table the server's /stats catalog lists, and the other shapes
// get independent per-session streams. The mixed and updateheavy
// shapes interleave writes (POST /update) with hot-set reads at
// -write-ratio (0.1 and 0.5 by default): inserts of random rows and
// deletes of the session's own earlier inserts — the evolving workload
// the merge policies are compared under. After the run, the tool
// fetches /stats and prints the server-side view (catalog, cracked
// pieces, planner decisions, batches, shared scans, pending updates)
// next to the client-side latencies.
//
// With -trace-sample N every Nth read per session asks the server for
// its phase span tree ("trace":true), and the run ends with a
// per-phase breakdown of where the sampled queries' time went —
// queue wait vs cracking vs materialisation vs wire encoding. With
// -report-interval D the tool prints interim throughput/p99/bytes
// lines while the run is still going, so long runs are observable
// before the final summary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crackload:", err)
		os.Exit(1)
	}
}

type config struct {
	base        string
	sessions    int
	perSession  int
	shape       string
	selectivity float64
	domain      int64
	seed        int64
	op          string
	think       time.Duration
	table       string
	col         string
	project     []string
	path        string
	writeRatio  float64
	proto       string
	block       int
	traceSample int
	reportEvery time.Duration
}

// shapeNames lists the workload shapes crackload accepts: every range
// shape internal/workload names, plus the table-aware shapes and the
// mixed read/write shapes.
func shapeNames() []string {
	return append(workload.Names(), "selectproject", "multitable", "mixed", "updateheavy")
}

// defaultWriteRatio returns the write fraction a mixed shape uses when
// -write-ratio is not given.
func defaultWriteRatio(shape string) float64 {
	if shape == "updateheavy" {
		return 0.5
	}
	return 0.1
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crackload", flag.ContinueOnError)
	var cfg config
	var addr, project string
	fs.StringVar(&addr, "addr", "localhost:8080", "crackserve address (host:port or URL)")
	fs.IntVar(&cfg.sessions, "sessions", 8, "concurrent client sessions")
	fs.IntVar(&cfg.perSession, "queries", 200, "queries per session")
	fs.StringVar(&cfg.shape, "workload", "hotset", "workload shape ("+strings.Join(shapeNames(), ", ")+")")
	fs.Float64Var(&cfg.selectivity, "selectivity", 0.01, "query selectivity (fraction of the domain)")
	fs.Int64Var(&cfg.domain, "domain", 1_000_000, "value domain queried (match the server's -domain)")
	fs.Int64Var(&cfg.seed, "seed", 42, "workload seed")
	fs.StringVar(&cfg.op, "op", "count", "query operation: count or select")
	fs.DurationVar(&cfg.think, "think", 0, "think time between a session's queries")
	fs.StringVar(&cfg.table, "table", "", "table to query (default: the server's default table)")
	fs.StringVar(&cfg.col, "column", "", "selection column (default: the server's default column)")
	fs.StringVar(&project, "project", "", "comma-separated projection columns (selectproject shape; forces -op select)")
	fs.StringVar(&cfg.path, "path", "", "access path to request (default: the server's default path)")
	// NaN is the unset sentinel: unlike a negative default it cannot be
	// confused with an invalid user value, which must be rejected.
	fs.Float64Var(&cfg.writeRatio, "write-ratio", math.NaN(), "write fraction of the mixed/updateheavy shapes (default 0.1 mixed, 0.5 updateheavy)")
	fs.StringVar(&cfg.proto, "proto", "json", "query response protocol: json or binary (the columnar wire format)")
	fs.IntVar(&cfg.block, "block", 0, "streamed block size in rows for -proto binary (0: one block)")
	fs.IntVar(&cfg.traceSample, "trace-sample", 0, "request a phase span trace on every Nth read per session (0 disables)")
	fs.DurationVar(&cfg.reportEvery, "report-interval", 0, "print interim throughput/latency lines at this interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if project != "" {
		for _, p := range strings.Split(project, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.project = append(cfg.project, p)
			}
		}
	}
	known := false
	for _, name := range shapeNames() {
		if cfg.shape == name {
			known = true
			break
		}
	}
	if !known {
		return cfg, fmt.Errorf("unknown -workload %q (want %s)", cfg.shape, strings.Join(shapeNames(), ", "))
	}
	if cfg.shape == "selectproject" && len(cfg.project) == 0 {
		return cfg, fmt.Errorf("-workload selectproject needs -project")
	}
	if math.IsNaN(cfg.writeRatio) {
		cfg.writeRatio = defaultWriteRatio(cfg.shape)
	}
	if cfg.writeRatio < 0 || cfg.writeRatio > 1 {
		return cfg, fmt.Errorf("-write-ratio must be in [0, 1]")
	}
	if len(cfg.project) > 0 {
		cfg.op = "select"
	}
	if cfg.op != "count" && cfg.op != "select" {
		return cfg, fmt.Errorf("unknown -op %q (want count or select)", cfg.op)
	}
	if cfg.proto != "json" && cfg.proto != "binary" {
		return cfg, fmt.Errorf("unknown -proto %q (want json or binary)", cfg.proto)
	}
	if cfg.block < 0 {
		return cfg, fmt.Errorf("-block must be non-negative")
	}
	if cfg.block > 0 && cfg.proto != "binary" {
		return cfg, fmt.Errorf("-block needs -proto binary")
	}
	if cfg.sessions < 1 || cfg.perSession < 1 {
		return cfg, fmt.Errorf("-sessions and -queries must be positive")
	}
	if cfg.traceSample < 0 {
		return cfg, fmt.Errorf("-trace-sample must be non-negative")
	}
	if cfg.reportEvery < 0 {
		return cfg, fmt.Errorf("-report-interval must be non-negative")
	}
	cfg.base = addr
	if !strings.Contains(cfg.base, "://") {
		cfg.base = "http://" + cfg.base
	}
	cfg.base = strings.TrimRight(cfg.base, "/")
	return cfg, nil
}

// sessionStreams builds one op-level generator per session. Pure-read
// shapes are wrapped in workload.ReadOnlyOps; the mixed shapes
// interleave writes at cfg.writeRatio.
func sessionStreams(cfg config, client *api.Client) ([]workload.OpGenerator, error) {
	target := workload.Target{Table: cfg.table, Column: cfg.col, Project: cfg.project}
	switch cfg.shape {
	case "mixed", "updateheavy":
		// Writes need the target table's width; ask the server.
		st, err := client.Stats(context.Background())
		if err != nil {
			return nil, fmt.Errorf("%s needs the server catalog: %w", cfg.shape, err)
		}
		table := cfg.table
		if table == "" {
			table = st.DefaultTable
		}
		cols := 0
		for _, tab := range st.Tables {
			if tab.Table == table {
				cols = len(tab.Columns)
			}
		}
		if cols == 0 {
			return nil, fmt.Errorf("server does not serve table %q", table)
		}
		target.Table = table
		return workload.MixedSessions(cfg.shape, "hotset", cfg.seed, cfg.sessions, target,
			cols, 0, column.Value(cfg.domain), cfg.selectivity, cfg.writeRatio, 0.5)
	case "selectproject":
		return readOnly(workload.SelectProjectSessions(cfg.seed, cfg.sessions, target, 0, column.Value(cfg.domain), cfg.selectivity)), nil
	case "multitable":
		// Enumerate the served catalog and hit every table.
		st, err := client.Stats(context.Background())
		if err != nil {
			return nil, fmt.Errorf("multitable needs the server catalog: %w", err)
		}
		if len(st.Tables) == 0 {
			return nil, fmt.Errorf("server reports no tables")
		}
		var targets []workload.Target
		for _, tab := range st.Tables {
			tgt := workload.Target{Table: tab.Table}
			if len(tab.Columns) > 0 {
				tgt.Column = tab.Columns[0]
			}
			// Apply the projection only where every named column exists.
			if len(cfg.project) > 0 && containsAll(tab.Columns, cfg.project) {
				tgt.Project = cfg.project
			}
			targets = append(targets, tgt)
		}
		streams, err := workload.MultiTableSessions("hotset", cfg.seed, cfg.sessions, targets, 0, column.Value(cfg.domain), cfg.selectivity)
		if err != nil {
			return nil, err
		}
		return readOnly(streams), nil
	default:
		gens, err := workload.SessionGenerators(cfg.shape, cfg.seed, cfg.sessions, 0, column.Value(cfg.domain), cfg.selectivity)
		if err != nil {
			return nil, err
		}
		out := make([]workload.TableGenerator, len(gens))
		for i, g := range gens {
			out[i] = workload.NewFixedTarget(target, g)
		}
		return readOnly(out), nil
	}
}

// readOnly wraps pure-read streams as op streams.
func readOnly(gens []workload.TableGenerator) []workload.OpGenerator {
	out := make([]workload.OpGenerator, len(gens))
	for i, g := range gens {
		out[i] = workload.ReadOnlyOps{G: g}
	}
	return out
}

func containsAll(have, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	client := api.NewClient(cfg.base, api.ClientOptions{
		Proto: cfg.proto, Block: cfg.block, Sessions: cfg.sessions,
	})
	gens, err := sessionStreams(cfg, client)
	if err != nil {
		return err
	}

	type sessionResult struct {
		latencies      []time.Duration
		ttfbs          []time.Duration
		writeLatencies []time.Duration
		errs           int
		firstErr       error
	}
	results := make([]sessionResult, cfg.sessions)
	var traces traceAgg
	var rep *reporter
	if cfg.reportEvery > 0 {
		rep = &reporter{}
	}

	var wg sync.WaitGroup
	start := time.Now()
	reportDone := make(chan struct{})
	reportExited := make(chan struct{})
	if rep != nil {
		go func() {
			defer close(reportExited)
			rep.loop(out, client, start, cfg.reportEvery, reportDone)
		}()
	} else {
		close(reportExited)
	}
	for g := 0; g < cfg.sessions; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := &results[id]
			res.latencies = make([]time.Duration, 0, cfg.perSession)
			// own tracks the server-assigned identifiers of this
			// session's inserts; deletes consume the oldest first.
			var own []column.RowID
			fail := func(err error) {
				res.errs++
				if res.firstErr == nil {
					res.firstErr = err
				}
			}
			for q := 0; q < cfg.perSession; q++ {
				op := gens[id].NextOp()
				switch op.Kind {
				case workload.OpRead:
					wq := wireQuery(cfg, op.Query)
					if cfg.traceSample > 0 && q%cfg.traceSample == 0 {
						wq.Trace = true
					}
					t0 := time.Now()
					qr, err := client.Query(context.Background(), wq)
					lat := time.Since(t0)
					if err != nil {
						fail(err)
					} else {
						res.latencies = append(res.latencies, lat)
						res.ttfbs = append(res.ttfbs, qr.TTFB)
						if len(qr.Trace) > 0 {
							traces.add(qr.Trace)
						}
					}
					rep.observe(lat, err != nil)
				case workload.OpInsert, workload.OpDelete:
					var u api.UpdateRequest
					var uerr error
					if op.Kind == workload.OpInsert {
						u, uerr = api.InsertOp(op.Table, [][]column.Value{op.Values})
					} else {
						if len(own) == 0 {
							// An earlier insert failed, leaving nothing
							// to delete; skip rather than 404.
							continue
						}
						u, uerr = api.DeleteOp(op.Table, []column.RowID{own[0]})
					}
					if uerr != nil {
						fail(uerr)
						continue
					}
					t0 := time.Now()
					ur, err := client.Update(context.Background(), u)
					lat := time.Since(t0)
					rep.observe(lat, err != nil)
					if err != nil {
						fail(err)
						continue
					}
					if op.Kind == workload.OpInsert {
						own = append(own, ur.Inserted...)
					} else {
						own = own[1:]
					}
					res.writeLatencies = append(res.writeLatencies, lat)
				}
				if cfg.think > 0 {
					time.Sleep(cfg.think)
				}
			}
		}(g)
	}
	wg.Wait()
	close(reportDone)
	// Join the reporter before the final report: both write to out, and
	// an interim line mid-print must not interleave with (or race) it.
	<-reportExited
	wall := time.Since(start)

	var reads, ttfbs, writes []time.Duration
	errs := 0
	var firstErr error
	for _, res := range results {
		reads = append(reads, res.latencies...)
		ttfbs = append(ttfbs, res.ttfbs...)
		writes = append(writes, res.writeLatencies...)
		errs += res.errs
		if firstErr == nil {
			firstErr = res.firstErr
		}
	}
	if len(reads)+len(writes) == 0 {
		return fmt.Errorf("no operation succeeded (first error: %v)", firstErr)
	}

	total := cfg.sessions * cfg.perSession
	fmt.Fprintf(out, "crackload: workload=%s op=%s sessions=%d ops/session=%d total=%d (reads %d, writes %d)\n",
		cfg.shape, cfg.op, cfg.sessions, cfg.perSession, total, len(reads), len(writes))
	fmt.Fprintf(out, "wall %v  throughput %.1f ops/s  errors %d\n",
		wall.Round(time.Millisecond), float64(len(reads)+len(writes))/wall.Seconds(), errs)
	if errs > 0 && firstErr != nil {
		fmt.Fprintf(out, "first error: %v\n", firstErr)
	}
	printLatencies(out, "read latency", reads)
	printLatencies(out, "read ttfb", ttfbs)
	printLatencies(out, "write latency", writes)
	traces.report(out)
	if len(reads) > 0 {
		fmt.Fprintf(out, "wire: proto=%s block=%d bytes/query=%.0f conn-reuse=%.1f%% (%d of %d requests)\n",
			cfg.proto, cfg.block, float64(client.ReadBytes())/float64(len(reads)),
			100*client.ReuseRate(), client.Reused(), client.Conns())
	}

	if st, err := client.Stats(context.Background()); err == nil {
		fmt.Fprintf(out, "server: tables=%d pieces=%d mode=%s batches=%d shared-scans=%d rejected=%d p50=%dµs p99=%dµs\n",
			len(st.Tables), st.Structures.Pieces, st.Mode, st.Batches, st.SharedScans,
			st.Rejected, st.Latency.P50Us, st.Latency.P99Us)
		if ws := st.WriteState; ws.Inserts+ws.Deletes > 0 {
			fmt.Fprintf(out, "writes: applied %d+%d, merged %d+%d, pending %d+%d, invalidations %d\n",
				ws.Inserts, ws.Deletes, ws.MergedInserts, ws.MergedDeletes,
				ws.PendingInserts, ws.PendingDeletes, ws.Invalidations)
		}
		for _, plan := range st.Planner {
			fmt.Fprintf(out, "planner: %s.%s phase=%s chosen=%s re-explores=%d\n",
				plan.Table, plan.Column, plan.Phase, plan.Chosen, plan.ReExplores)
		}
		if len(st.ShardStats) > 0 {
			parts := make([]string, 0, len(st.ShardStats))
			for _, ss := range st.ShardStats {
				parts = append(parts, fmt.Sprintf("%d: work=%d merge=%d live=%d",
					ss.Shard, ss.WorkTotal, ss.MergeWork, ss.LiveRows))
			}
			fmt.Fprintf(out, "shards: %d [%s]\n", st.Shards, strings.Join(parts, "; "))
		}
	} else {
		fmt.Fprintf(out, "server: stats unavailable: %v\n", err)
	}
	return nil
}

// traceAgg accumulates sampled span trees into a per-phase breakdown:
// how many times each phase appeared and its total duration.
type traceAgg struct {
	mu      sync.Mutex
	sampled int
	phases  map[string]*phaseTotals
}

type phaseTotals struct {
	n       int
	totalUs int64
}

func (a *traceAgg) add(spanJSON []byte) {
	var root trace.Span
	if err := json.Unmarshal(spanJSON, &root); err != nil {
		return // a malformed trace is a curiosity, not a run failure
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.phases == nil {
		a.phases = make(map[string]*phaseTotals)
	}
	a.sampled++
	var walk func(sp *trace.Span)
	walk = func(sp *trace.Span) {
		pt := a.phases[sp.Phase.String()]
		if pt == nil {
			pt = &phaseTotals{}
			a.phases[sp.Phase.String()] = pt
		}
		pt.n++
		pt.totalUs += sp.DurUs
		for _, c := range sp.Spans {
			walk(c)
		}
	}
	walk(&root)
}

// report prints the phase breakdown in the recorder's phase order, so
// the line reads as the life of a query: queue wait, batch assembly,
// crack, merge flush, materialise, wire encode.
func (a *traceAgg) report(out io.Writer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sampled == 0 {
		return
	}
	var parts []string
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		pt := a.phases[p.String()]
		if pt == nil || pt.n == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s mean=%dµs (n=%d)", p, pt.totalUs/int64(pt.n), pt.n))
	}
	fmt.Fprintf(out, "trace: %d sampled queries; %s\n", a.sampled, strings.Join(parts, ", "))
}

// reporter prints interim progress lines for long runs. A nil reporter
// is inert, so sessions call observe unconditionally.
type reporter struct {
	mu   sync.Mutex
	lats []time.Duration
	ops  uint64
	errs uint64
}

func (r *reporter) observe(lat time.Duration, failed bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ops++
	if failed {
		r.errs++
	} else {
		r.lats = append(r.lats, lat)
	}
	r.mu.Unlock()
}

// loop prints one line per interval with the interval's own ops rate
// and percentiles (not cumulative ones, so convergence is visible as
// the numbers drop run-over-run), until done closes.
func (r *reporter) loop(out io.Writer, client *api.Client, start time.Time, every time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	var lastBytes uint64
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		lats := r.lats
		ops, errs := r.ops, r.errs
		r.lats, r.ops, r.errs = nil, 0, 0
		r.mu.Unlock()
		bytes := client.ReadBytes()
		d := bytes - lastBytes
		lastBytes = bytes
		var p50, p99 time.Duration
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p50 = lats[len(lats)/2]
			i99 := int(0.99 * float64(len(lats)))
			if i99 >= len(lats) {
				i99 = len(lats) - 1
			}
			p99 = lats[i99]
		}
		fmt.Fprintf(out, "interim t=%v ops=%d (%.1f/s) errors=%d p50=%v p99=%v read-bytes=%d\n",
			time.Since(start).Round(time.Second), ops, float64(ops)/every.Seconds(), errs,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond), d)
	}
}

// printLatencies reports percentiles over one latency population.
func printLatencies(out io.Writer, label string, all []time.Duration) {
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}
	fmt.Fprintf(out, "%s p50=%v p95=%v p99=%v max=%v\n",
		label, pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
}

// wireQuery converts one table-level query to the wire form.
func wireQuery(cfg config, tq workload.TableQuery) api.QueryRequest {
	q := api.QueryRequest{
		Op:      cfg.op,
		Table:   tq.Table,
		Column:  tq.Column,
		Project: tq.Project,
		Path:    cfg.path,
	}
	if len(tq.Project) > 0 {
		q.Op = "select"
	}
	r := tq.R
	if r.HasLow {
		lo := r.Low
		q.Low = &lo
		if !r.IncLow {
			f := false
			q.IncLow = &f
		}
	}
	if r.HasHigh {
		hi := r.High
		q.High = &hi
		if r.IncHigh {
			tr := true
			q.IncHigh = &tr
		}
	}
	return q
}
