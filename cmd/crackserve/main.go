// Command crackserve is the query service daemon: it hosts a
// multi-table adaptive execution engine (internal/engine) behind an
// HTTP endpoint with shared-scan batching, a cost-driven access-path
// planner, admission control and latency histograms.
//
//	crackserve -addr :8080 -tables orders:1000000:4,events:200000:2 -snapshot /tmp/engine.snap
//	crackserve -n 1000000 -path cracking -batch-window 500us
//	crackserve -n 1000000 -shards 4
//
// With -shards N (default: one per CPU) the catalog is row-striped
// across N independent engine shards behind a scatter-gather front
// (internal/shard): every query fans out to all shards concurrently
// and the per-shard answers are merged, so each shard cracks and
// materialises ~1/N of the data. -shards 1 behaves exactly like the
// unsharded engine. The wire protocols, /stats (which gains per-shard
// breakdowns), /metrics and snapshots all work unchanged, except that
// a sharded daemon writes per-shard snapshot segments, restorable only
// at the same -shards count.
//
// With -stripe s/N the daemon serves only stripe s of the generated
// catalog (rows g with g % N == s, renumbered densely) — the building
// block of a multi-node deployment behind crackrouter, which owns the
// global row ids and fans every query across the N stripes. The
// listener answers from the first moment; until the engine is built or
// restored every request gets 503 and /healthz reports
// {"ok":true,"ready":false}, so orchestrators can tell "booting" from
// "dead".
//
// With -readers N (N > 1) reads on the auto/cracking path are answered
// by up to N concurrent workers against epoch-pinned immutable
// snapshots, never blocking on the executor; the cracking those reads
// defer is applied by a background reorganiser that publishes fresh
// epochs. Writes stay serialised. /stats reports the readers setting
// and the reorganiser's backlog and lag; /metrics exports them as
// crack_readers, crack_reorg_backlog and crack_reorg_lag_seconds.
//
// The hosted catalog is generated deterministically from -tables and
// -seed (columns c0..c{k-1} per table), so a daemon restarted with the
// same flags serves the same data. Queries name a table, a selection
// column, a range and optional projection columns; the access path
// defaults to -path ("auto": the engine's planner explores the paths
// on real queries and exploits the cheapest, re-exploring on drift).
//
// The daemon also accepts writes (POST /update): inserts and deletes
// are applied to the base tables immediately and reach the cracked
// columns through the merge policy named by -merge — "gradual" and
// "complete" buffer them and ripple-merge on the next query touching
// the affected range, "immediate" applies them on arrival. With
// -snapshot set, a graceful shutdown (SIGINT/SIGTERM) writes the
// engine's adaptive state — cracked columns, sideways maps, planner
// estimates, appended rows, tombstones and still-pending update
// buffers — through internal/persist and the next boot restores it:
// the physical design the workload paid for survives the restart
// instead of being re-learned, and unmerged writes are not lost.
//
// Observability: GET /stats is the structured snapshot, GET /metrics
// the Prometheus text exposition of the same counters, and GET
// /debug/events the reorganisation event log (crack splits, merge
// flushes, planner decisions) for cursor-based replay. Queries carrying
// "trace":true (or an X-Crack-Trace header) get their per-phase span
// tree back inline. -events sizes the event ring; -debug-addr starts a
// second listener with net/http/pprof, kept off the public address.
//
// Endpoints: POST /query, POST /update, GET /stats, GET /metrics,
// GET /debug/events, GET /healthz (see internal/server).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/updates"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crackserve:", err)
		os.Exit(1)
	}
}

// config is the parsed daemon configuration.
type config struct {
	addr        string
	tables      string
	n           int
	domain      int
	seed        int64
	path        string
	merge       string
	shards      int
	partitions  int
	workers     int
	batchWindow time.Duration
	batchMax    int
	inFlight    int
	readers     int
	stripe      string
	stripeIdx   int
	stripeOf    int
	snapshot    string
	drainWait   time.Duration
	events      int
	debugAddr   string
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crackserve", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.tables, "tables", "", "catalog spec name:rows:cols[,name:rows:cols...] (default: data:<n>:3)")
	fs.IntVar(&cfg.n, "n", 1_000_000, "rows of the default single-table catalog (ignored when -tables is set)")
	fs.IntVar(&cfg.domain, "domain", 0, "value domain of every generated column (default: the table's row count)")
	fs.Int64Var(&cfg.seed, "seed", 42, "data generation seed")
	fs.StringVar(&cfg.path, "path", "auto", "default access path ("+strings.Join(engine.PathNames(), ", ")+")")
	fs.StringVar(&cfg.merge, "merge", "gradual", "write merge policy ("+strings.Join(updates.PolicyNames(), ", ")+"), with optional per-table overrides: gradual,orders=immediate")
	fs.IntVar(&cfg.shards, "shards", 0, "engine shards behind the scatter-gather front (default: one per CPU; 1 disables sharding)")
	fs.IntVar(&cfg.partitions, "partitions", 0, "partition count for the parallel path (default: one per CPU)")
	fs.IntVar(&cfg.workers, "workers", 0, "worker bound for the parallel path (default: one per CPU)")
	fs.DurationVar(&cfg.batchWindow, "batch-window", 500*time.Microsecond, "batch coalescing window (0 disables batching)")
	fs.IntVar(&cfg.batchMax, "batch-max", 64, "max queries per batch")
	fs.IntVar(&cfg.inFlight, "inflight", 1024, "admission limit on in-flight queries")
	fs.IntVar(&cfg.readers, "readers", 1, "concurrent epoch-pinned read workers (<=1: every query on the serialised executor)")
	fs.StringVar(&cfg.stripe, "stripe", "", "serve stripe s/N of the generated catalog (e.g. 0/2), for multi-node deployments behind crackrouter")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "engine snapshot file, restored on boot and written on graceful shutdown")
	fs.DurationVar(&cfg.drainWait, "drain-wait", 5*time.Second, "graceful shutdown drain timeout")
	fs.IntVar(&cfg.events, "events", trace.DefaultLogSize, "reorganisation event ring capacity (served at /debug/events)")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "optional second listen address exposing net/http/pprof (kept off the public address)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.tables == "" {
		cfg.tables = fmt.Sprintf("data:%d:3", cfg.n)
	}
	if cfg.stripe != "" {
		if _, err := fmt.Sscanf(cfg.stripe, "%d/%d", &cfg.stripeIdx, &cfg.stripeOf); err != nil {
			return cfg, fmt.Errorf("bad -stripe %q: want s/N (e.g. 0/2)", cfg.stripe)
		}
		if cfg.stripeOf < 1 || cfg.stripeIdx < 0 || cfg.stripeIdx >= cfg.stripeOf {
			return cfg, fmt.Errorf("bad -stripe %q: want 0 <= s < N", cfg.stripe)
		}
	} else {
		cfg.stripeOf = 1
	}
	return cfg, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	return serve(ctx, cfg, ln, out)
}

// bootGate answers every request 503 until the engine is built or
// restored: /healthz reports {"ok":true,"ready":false} so orchestrators
// (and crackrouter's health probe) can tell "booting" from "dead"
// without racing the snapshot restore, everything else gets an error
// envelope.
func bootGate() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if r.URL.Path == "/healthz" {
			json.NewEncoder(w).Encode(api.Health{OK: true, Ready: false})
			return
		}
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "booting: engine not ready"})
	})
}

// serve hosts the service on the listener until ctx is cancelled, then
// shuts down gracefully: the HTTP server drains, the scheduler
// quiesces, and the engine state is snapshotted. The listener answers
// from the first moment — a boot-gate handler holds the fort (503,
// /healthz not-ready) while the engine builds or restores, then the
// real service handler is swapped in atomically.
func serve(ctx context.Context, cfg config, ln net.Listener, out io.Writer) error {
	var handler atomic.Pointer[http.Handler]
	gate := bootGate()
	handler.Store(&gate)
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fail := func(err error) error {
		httpSrv.Close()
		return err
	}

	specs, err := server.ParseTableSpecs(cfg.tables)
	if err != nil {
		return fail(err)
	}
	cat, err := server.BuildCatalog(specs, cfg.seed, cfg.domain)
	if err != nil {
		return fail(err)
	}
	if cfg.stripeOf > 1 {
		// The node keeps rows g with g % N == s, renumbered densely —
		// the same striping contract shard.Cluster applies in-process,
		// lifted across nodes. crackrouter owns the global ids.
		if cat, err = shard.Stripe(cat, cfg.stripeIdx, cfg.stripeOf); err != nil {
			return fail(err)
		}
	}
	mergeDefault, mergeTables, err := server.ParseMergeSpec(cfg.merge)
	if err != nil {
		return fail(err)
	}
	shards := cfg.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	built, err := server.BuildExec(cat, server.EngineOptions{
		Shards:        shards,
		Partitions:    cfg.partitions,
		Workers:       cfg.workers,
		Seed:          cfg.seed,
		MergePolicy:   mergeDefault,
		TablePolicies: mergeTables,
		SnapshotPath:  cfg.snapshot,
	})
	if err != nil {
		return fail(err)
	}
	// A restored snapshot's age tells operators how much adaptive
	// convergence this process inherited rather than earned.
	var snapTime time.Time
	if built.Restored {
		if fi, err := os.Stat(cfg.snapshot); err == nil {
			snapTime = fi.ModTime()
		}
	}
	svc, err := server.NewService(server.Config{
		Exec:         built.Exec,
		DefaultTable: specs[0].Name,
		DefaultPath:  cfg.path,
		BatchWindow:  cfg.batchWindow,
		MaxBatch:     cfg.batchMax,
		MaxInFlight:  cfg.inFlight,
		Readers:      cfg.readers,
		EventLog:     trace.NewLog(cfg.events),
		SnapshotTime: snapTime,
	})
	if err != nil {
		return fail(err)
	}
	ready := svc.Handler()
	handler.Store(&ready)

	// The profiler gets its own listener so it can stay firewalled away
	// from the query surface; it serves until the daemon exits.
	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			httpSrv.Close()
			svc.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: mux}
		go debugSrv.Serve(dln)
		fmt.Fprintf(out, "crackserve: pprof on %s\n", dln.Addr())
	}

	boot := "cold start"
	if built.Restored {
		boot = fmt.Sprintf("restored from %s", cfg.snapshot)
	}
	if cfg.stripeOf > 1 {
		boot += fmt.Sprintf(", stripe %d/%d", cfg.stripeIdx, cfg.stripeOf)
	}
	policies := make(map[string]string)
	for _, ti := range built.Exec.Tables() {
		policies[ti.Name] = ti.MergePolicy
	}
	var tables []string
	for _, spec := range specs {
		tables = append(tables, fmt.Sprintf("%s(%d rows, %d cols, merge=%s)",
			spec.Name, spec.Rows, spec.Cols, policies[spec.Name]))
	}
	fmt.Fprintf(out, "crackserve: %s on %s (%s)\n", svc, ln.Addr(), boot)
	fmt.Fprintf(out, "crackserve: catalog %s\n", strings.Join(tables, ", "))

	select {
	case <-ctx.Done():
	case err := <-errc:
		svc.Close()
		return err
	}

	fmt.Fprintln(out, "crackserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		httpSrv.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	svc.Close()

	if cfg.snapshot != "" {
		if err := writeSnapshot(svc, cfg.snapshot, out); err != nil {
			return err
		}
	}
	st := svc.Stats()
	fmt.Fprintf(out, "crackserve: served %d queries, %d writes (%d batches, %d shared scans, %d pending updates), p50=%dµs p99=%dµs\n",
		st.Queries, st.Writes, st.Batches, st.SharedScans,
		st.WriteState.PendingInserts+st.WriteState.PendingDeletes, st.Latency.P50Us, st.Latency.P99Us)
	return shutdownErr
}

// writeSnapshot persists the quiesced engine atomically (write to a
// temp file, then rename), so a crash mid-write never corrupts the
// previous snapshot.
func writeSnapshot(svc *server.Service, path string, out io.Writer) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = svc.SnapshotTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	fmt.Fprintf(out, "crackserve: snapshot written to %s\n", path)
	return nil
}
