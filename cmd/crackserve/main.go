// Command crackserve is the query service daemon: it hosts an adaptive
// index (any kind internal/server can build, including the partitioned
// parallel cracker) behind an HTTP endpoint with shared-scan batching,
// admission control and latency histograms.
//
//	crackserve -addr :8080 -kind cracking -n 1000000 -snapshot /tmp/col.snap
//	crackserve -kind cracking-parallel -partitions 8 -batch-window 500us
//
// The hosted column is generated deterministically from -seed, so a
// daemon restarted with the same flags serves the same data. With
// -snapshot set, a graceful shutdown (SIGINT/SIGTERM) writes the
// cracked state through internal/persist and the next boot restores it:
// the physical order and cracker index the workload paid for survive
// the restart instead of being re-learned.
//
// Endpoints: POST /query, GET /stats, GET /healthz (see
// internal/server).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crackserve:", err)
		os.Exit(1)
	}
}

// config is the parsed daemon configuration.
type config struct {
	addr        string
	kind        string
	n           int
	domain      int
	seed        int64
	partitions  int
	workers     int
	batchWindow time.Duration
	batchMax    int
	inFlight    int
	snapshot    string
	drainWait   time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crackserve", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.kind, "kind", "cracking", "index kind ("+strings.Join(server.Kinds(), ", ")+")")
	fs.IntVar(&cfg.n, "n", 1_000_000, "number of tuples in the hosted column")
	fs.IntVar(&cfg.domain, "domain", 0, "value domain (default: same as -n)")
	fs.Int64Var(&cfg.seed, "seed", 42, "data generation seed")
	fs.IntVar(&cfg.partitions, "partitions", 0, "partition count for cracking-parallel (default: one per CPU)")
	fs.IntVar(&cfg.workers, "workers", 0, "worker bound for cracking-parallel (default: one per CPU)")
	fs.DurationVar(&cfg.batchWindow, "batch-window", 500*time.Microsecond, "batch coalescing window (0 disables batching)")
	fs.IntVar(&cfg.batchMax, "batch-max", 64, "max queries per batch")
	fs.IntVar(&cfg.inFlight, "inflight", 1024, "admission limit on in-flight queries")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "snapshot file, restored on boot and written on graceful shutdown (cracking and cracking-stochastic kinds)")
	fs.DurationVar(&cfg.drainWait, "drain-wait", 5*time.Second, "graceful shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.domain <= 0 {
		cfg.domain = cfg.n
	}
	return cfg, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	return serve(ctx, cfg, ln, out)
}

// serve hosts the service on the listener until ctx is cancelled, then
// shuts down gracefully: the HTTP server drains, the scheduler
// quiesces, and the cracked state is snapshotted.
func serve(ctx context.Context, cfg config, ln net.Listener, out io.Writer) error {
	vals := workload.DataUniform(cfg.seed, cfg.n, cfg.domain)
	built, err := server.BuildIndex(cfg.kind, vals, server.BuildOptions{
		Partitions:   cfg.partitions,
		Workers:      cfg.workers,
		Seed:         cfg.seed,
		SnapshotPath: cfg.snapshot,
	})
	if err != nil {
		ln.Close()
		return err
	}
	svc := server.NewService(server.Config{
		Index:           built.Index,
		Kind:            built.Kind,
		BatchWindow:     cfg.batchWindow,
		MaxBatch:        cfg.batchMax,
		MaxInFlight:     cfg.inFlight,
		ConcurrencySafe: built.ConcurrencySafe,
		Cracker:         built.Cracker,
	})

	httpSrv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	boot := "cold start"
	if built.Restored {
		boot = fmt.Sprintf("restored from %s", cfg.snapshot)
	}
	fmt.Fprintf(out, "crackserve: %s on %s (%s, %d tuples)\n", svc, ln.Addr(), boot, cfg.n)
	if cfg.snapshot != "" && built.Cracker == nil {
		fmt.Fprintf(out, "crackserve: warning: kind %q has no snapshot support, -snapshot %s will be ignored\n",
			cfg.kind, cfg.snapshot)
	}

	select {
	case <-ctx.Done():
	case err := <-errc:
		svc.Close()
		return err
	}

	fmt.Fprintln(out, "crackserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		httpSrv.Close()
	}
	svc.Close()

	if cfg.snapshot != "" {
		if err := writeSnapshot(svc, cfg.snapshot, out); err != nil {
			return err
		}
	}
	st := svc.Stats()
	fmt.Fprintf(out, "crackserve: served %d queries (%d batches, %d shared scans), p50=%dµs p99=%dµs\n",
		st.Queries, st.Batches, st.SharedScans, st.Latency.P50Us, st.Latency.P99Us)
	return shutdownErr
}

// writeSnapshot persists the quiesced index atomically (write to a
// temp file, then rename), so a crash mid-write never corrupts the
// previous snapshot.
func writeSnapshot(svc *server.Service, path string, out io.Writer) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	ok, err := svc.SnapshotTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	if !ok {
		os.Remove(tmp)
		fmt.Fprintln(out, "crackserve: index kind has no snapshot support, skipping")
		return nil
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	fmt.Fprintf(out, "crackserve: snapshot written to %s\n", path)
	return nil
}
