package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptiveindex/internal/server"
)

// syncBuffer is a Buffer safe to read while the serve goroutine is
// still logging to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe boots serve() on an ephemeral port and waits until it
// answers /healthz. It returns the base URL, a cancel that triggers
// graceful shutdown, and a channel carrying serve's return value.
func startServe(t *testing.T, cfg config) (string, context.CancelFunc, chan error, *syncBuffer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ln, &out) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url, cancel, done, &out
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStats(t *testing.T, url string) server.Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestKillRestartCycle is the daemon-level restart contract: a graceful
// shutdown snapshots the cracked state, and a rebooted daemon restores
// it — same answers, same pieces, no re-learning.
func TestKillRestartCycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "col.snapshot")
	cfg := config{
		kind:        "cracking",
		n:           50_000,
		domain:      50_000,
		seed:        7,
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		snapshot:    snap,
		drainWait:   5 * time.Second,
	}

	url, cancel, done, out := startServe(t, cfg)

	// Crack the column over the wire.
	counts := make(map[string]int)
	for i := 0; i < 60; i++ {
		lo := (i * 700) % 49000
		body := fmt.Sprintf(`{"op":"count","low":%d,"high":%d}`, lo, lo+500)
		resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		counts[body] = qr.Count
	}
	before := getStats(t, url)
	if before.Index.Cracks == 0 {
		t.Fatal("no cracks after a query stream")
	}

	// Graceful shutdown must write the snapshot.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v\noutput:\n%s", err, out)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Fatalf("missing snapshot log line:\n%s", out)
	}

	// Reboot from the snapshot.
	url2, cancel2, done2, out2 := startServe(t, cfg)
	defer func() {
		cancel2()
		<-done2
	}()
	logDeadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out2.String(), "restored from") {
		if time.Now().After(logDeadline) {
			t.Fatalf("reboot did not restore:\n%s", out2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	after := getStats(t, url2)
	if after.Index.Cracks != before.Index.Cracks {
		t.Fatalf("restored %d cracks, want %d", after.Index.Cracks, before.Index.Cracks)
	}
	// Replaying the same queries must return identical counts and must
	// not crack further (the state was restored, not re-learned).
	for body, want := range counts {
		resp, err := http.Post(url2+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if qr.Count != want {
			t.Fatalf("after restart, %s returned %d, want %d", body, qr.Count, want)
		}
	}
	if final := getStats(t, url2); final.Index.Cracks != before.Index.Cracks {
		t.Fatalf("replay cracked further after restore: %d -> %d", before.Index.Cracks, final.Index.Cracks)
	}
}

// TestServeParallelKind smoke-tests the partitioned kind end to end.
func TestServeParallelKind(t *testing.T) {
	cfg := config{
		kind:        "cracking-parallel",
		n:           20_000,
		domain:      20_000,
		seed:        3,
		partitions:  4,
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		drainWait:   time.Second,
	}
	url, cancel, done, _ := startServe(t, cfg)
	defer func() {
		cancel()
		<-done
	}()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(`{"op":"select","low":100,"high":300}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.Count == 0 || len(qr.Rows) != qr.Count {
		t.Fatalf("bad response: %+v", qr)
	}
	if st := getStats(t, url); st.Index.Partitions != 4 {
		t.Fatalf("partitions=%d, want 4", st.Index.Partitions)
	}
}

// TestFlagParsing exercises run()'s flag surface without binding a
// real listener for the error cases.
func TestFlagParsing(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag must fail")
	}
	cfg, err := parseFlags([]string{"-n", "1000", "-kind", "cracking"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.domain != 1000 {
		t.Fatalf("domain must default to n, got %d", cfg.domain)
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-kind", "no-such-kind", "-n", "10"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown kind must fail")
	}
}
