package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/trace"
)

// syncBuffer is a Buffer safe to read while the serve goroutine is
// still logging to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe boots serve() on an ephemeral port and waits until it
// answers /healthz. It returns the base URL, a cancel that triggers
// graceful shutdown, and a channel carrying serve's return value.
func startServe(t *testing.T, cfg config) (string, context.CancelFunc, chan error, *syncBuffer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ln, &out) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url, cancel, done, &out
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStats(t *testing.T, url string) server.Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postJSON(t *testing.T, url, body string) server.QueryResponse {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("%s: status %d: %s", body, resp.StatusCode, buf.String())
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

// TestKillRestartCycle is the daemon-level restart contract against a
// multi-table catalog: a graceful shutdown snapshots the engine's
// adaptive state (cracked columns, sideways maps, planner estimates),
// and a rebooted daemon restores it — same answers, same pieces, no
// re-learning.
func TestKillRestartCycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "engine.snapshot")
	cfg := config{
		tables:      "orders:50000:3,events:20000:2",
		seed:        7,
		shards:      1,
		path:        "auto",
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		snapshot:    snap,
		drainWait:   5 * time.Second,
	}

	url, cancel, done, out := startServe(t, cfg)

	// Crack both tables over the wire: select-project exploration on
	// orders (the planner routes it), plain counts on events.
	bodies := make([]string, 0, 90)
	for i := 0; i < 60; i++ {
		lo := (i * 700) % 49000
		bodies = append(bodies, fmt.Sprintf(
			`{"op":"select","table":"orders","column":"c0","low":%d,"high":%d,"project":["c1"]}`, lo, lo+500))
	}
	for i := 0; i < 30; i++ {
		lo := (i * 600) % 19000
		bodies = append(bodies, fmt.Sprintf(
			`{"op":"count","table":"events","column":"c0","low":%d,"high":%d}`, lo, lo+300))
	}
	counts := make(map[string]int)
	for _, body := range bodies {
		counts[body] = postJSON(t, url, body).Count
	}
	before := getStats(t, url)
	if before.Structures.CrackerPieces+before.Structures.MapPieces == 0 {
		t.Fatalf("no persistable pieces after a query stream: %+v", before.Structures)
	}
	if len(before.Planner) == 0 {
		t.Fatal("auto traffic left no planner state")
	}

	// Graceful shutdown must write the snapshot.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v\noutput:\n%s", err, out)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Fatalf("missing snapshot log line:\n%s", out)
	}

	// Reboot from the snapshot.
	url2, cancel2, done2, out2 := startServe(t, cfg)
	defer func() {
		cancel2()
		<-done2
	}()
	logDeadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out2.String(), "restored from") {
		if time.Now().After(logDeadline) {
			t.Fatalf("reboot did not restore:\n%s", out2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	after := getStats(t, url2)
	if after.Structures.CrackerPieces != before.Structures.CrackerPieces ||
		after.Structures.MapPieces != before.Structures.MapPieces {
		t.Fatalf("restored structures %+v, want %+v", after.Structures, before.Structures)
	}
	if len(after.Planner) != len(before.Planner) {
		t.Fatalf("restored %d planner states, want %d", len(after.Planner), len(before.Planner))
	}
	for i := range before.Planner {
		if after.Planner[i].Chosen != before.Planner[i].Chosen || after.Planner[i].Phase != before.Planner[i].Phase {
			t.Fatalf("planner state %d not restored: %+v vs %+v", i, after.Planner[i], before.Planner[i])
		}
	}
	// Replay the same queries twice: identical counts both times, and
	// the second replay must add no cracks. (The first replay may add a
	// few — queries that probed the non-chosen path during the original
	// explore phase now route to the restored planner's choice, whose
	// structure finishes absorbing their bounds.)
	for round := 0; round < 2; round++ {
		for body, want := range counts {
			if got := postJSON(t, url2, body).Count; got != want {
				t.Fatalf("after restart (round %d), %s returned %d, want %d", round, body, got, want)
			}
		}
	}
	mid := getStats(t, url2)
	for body, want := range counts {
		if got := postJSON(t, url2, body).Count; got != want {
			t.Fatalf("final replay, %s returned %d, want %d", body, got, want)
		}
	}
	final := getStats(t, url2)
	if final.Structures.CrackerPieces != mid.Structures.CrackerPieces ||
		final.Structures.MapPieces != mid.Structures.MapPieces {
		t.Fatalf("replay did not converge after restore: %+v -> %+v", mid.Structures, final.Structures)
	}
}

func postUpdate(t *testing.T, url, body string) server.UpdateResponse {
	t.Helper()
	resp, err := http.Post(url+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("%s: status %d: %s", body, resp.StatusCode, buf.String())
	}
	var ur server.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	return ur
}

// TestKillRestartRoundTripsPendingUpdates is the write-path restart
// contract: updates buffered under the gradual merge policy — never
// touched by a query, so still unmerged at shutdown — survive the
// snapshot/restore cycle and merge correctly when a query finally
// touches them on the rebooted daemon.
func TestKillRestartRoundTripsPendingUpdates(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "engine.snapshot")
	cfg := config{
		tables:      "orders:20000:2",
		seed:        5,
		shards:      1,
		path:        "auto",
		merge:       "gradual",
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		snapshot:    snap,
		drainWait:   5 * time.Second,
	}
	url, cancel, done, out := startServe(t, cfg)

	// Crack the low half so the cracked columns exist, then write:
	// sentinel inserts far above the 20000-value domain stay pending
	// (no query touches that range before shutdown).
	for i := 0; i < 20; i++ {
		lo := (i * 700) % 9000
		postJSON(t, url, fmt.Sprintf(`{"op":"count","table":"orders","column":"c0","low":%d,"high":%d}`, lo, lo+300))
	}
	ins := postUpdate(t, url, `{"op":"insert","table":"orders","rows":[[30001,1],[30002,2],[30003,3]]}`)
	if len(ins.Inserted) != 3 {
		t.Fatalf("insert reply: %+v", ins)
	}
	if ins.PendingInserts == 0 {
		t.Fatalf("gradual policy must buffer inserts, got %+v", ins)
	}
	del := postUpdate(t, url, fmt.Sprintf(`{"ops":[{"op":"delete","table":"orders","rows":[0,1]},{"op":"insert","table":"orders","rows":[[30004,4]]}]}`))
	if del.Deleted != 2 || len(del.Inserted) != 1 {
		t.Fatalf("batched ops reply: %+v", del)
	}
	before := getStats(t, url)
	if before.WriteState.PendingInserts != 4 {
		t.Fatalf("want 4 pending inserts before shutdown, got %+v", before.WriteState)
	}
	if before.Writes != 2 {
		t.Fatalf("want 2 write requests counted, got %d", before.Writes)
	}
	wantLive := before.Tables[0].LiveRows

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v\noutput:\n%s", err, out)
	}

	url2, cancel2, done2, out2 := startServe(t, cfg)
	defer func() {
		cancel2()
		<-done2
	}()
	logDeadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out2.String(), "restored from") {
		if time.Now().After(logDeadline) {
			t.Fatalf("reboot did not restore:\n%s", out2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	after := getStats(t, url2)
	if after.WriteState.PendingInserts != 4 || after.WriteState.PendingDeletes != before.WriteState.PendingDeletes {
		t.Fatalf("pending updates did not round-trip: %+v, want %+v", after.WriteState, before.WriteState)
	}
	if after.Tables[0].LiveRows != wantLive {
		t.Fatalf("live rows after restart = %d, want %d", after.Tables[0].LiveRows, wantLive)
	}

	// A query touching the sentinel range must merge and return every
	// pending insert; the deleted base rows stay gone.
	qr := postJSON(t, url2, `{"op":"select","table":"orders","column":"c0","low":30000,"high":30100,"path":"cracking"}`)
	if qr.Count != 4 {
		t.Fatalf("sentinel query returned %d rows, want 4", qr.Count)
	}
	merged := getStats(t, url2)
	if merged.WriteState.PendingInserts != 0 {
		t.Fatalf("sentinel query left pending inserts: %+v", merged.WriteState)
	}
	if merged.WriteState.MergedInserts < 4 {
		t.Fatalf("merged-insert counter = %d, want >= 4", merged.WriteState.MergedInserts)
	}
	if got := postJSON(t, url2, `{"op":"count","table":"orders","column":"c0","low":0,"high":40000,"path":"scan"}`); got.Count != wantLive {
		t.Fatalf("full scan sees %d live rows, want %d", got.Count, wantLive)
	}
}

// TestServeSelectProjectAndPaths smoke-tests the wire surface end to
// end: select-project against a named table, explicit paths, and the
// stats catalog.
func TestServeSelectProjectAndPaths(t *testing.T) {
	cfg := config{
		tables:      "data:20000:3",
		seed:        3,
		shards:      1,
		path:        "auto",
		partitions:  4,
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		drainWait:   time.Second,
	}
	url, cancel, done, _ := startServe(t, cfg)
	defer func() {
		cancel()
		<-done
	}()
	qr := postJSON(t, url, `{"op":"select","low":100,"high":500,"project":["c1","c2"]}`)
	if qr.Count == 0 || len(qr.Rows) != qr.Count {
		t.Fatalf("bad response: %+v", qr)
	}
	if len(qr.Columns["c1"]) != qr.Count || len(qr.Columns["c2"]) != qr.Count {
		t.Fatalf("projections missing: %+v", qr.Columns)
	}
	if qr.Path == "" || qr.Path == "auto" {
		t.Fatalf("response must name the executed path, got %q", qr.Path)
	}
	for _, path := range []string{"scan", "cracking", "sideways", "parallel"} {
		qr2 := postJSON(t, url, fmt.Sprintf(`{"op":"count","low":100,"high":500,"path":%q}`, path))
		if qr2.Count != qr.Count {
			t.Fatalf("path %s: count %d, want %d", path, qr2.Count, qr.Count)
		}
		if qr2.Path != path {
			t.Fatalf("path %s executed as %q", path, qr2.Path)
		}
	}
	st := getStats(t, url)
	if len(st.Tables) != 1 || st.Tables[0].Table != "data" || len(st.Tables[0].Columns) != 3 {
		t.Fatalf("unexpected catalog: %+v", st.Tables)
	}
	if st.Structures.Parallels == 0 {
		t.Fatal("explicit parallel path built no partitioned structure")
	}
}

// TestFlagParsing exercises run()'s flag surface without binding a
// real listener for the error cases.
func TestFlagParsing(t *testing.T) {
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag must fail")
	}
	cfg, err := parseFlags([]string{"-n", "1000"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tables != "data:1000:3" {
		t.Fatalf("tables must default from -n, got %q", cfg.tables)
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-tables", "bad-spec"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad table spec must fail")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-n", "10", "-path", "no-such-path"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown path must fail")
	}
}

// TestServeObservabilitySurface is the live-daemon observability
// contract: a booted crackserve answers traced queries with a span
// tree, serves a lint-clean Prometheus exposition at /metrics —
// epoch-read and reorganiser families included, since the daemon runs
// with -readers 4 — replays its reorganisation log at /debug/events,
// and runs pprof on the -debug-addr listener only.
func TestServeObservabilitySurface(t *testing.T) {
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := dln.Addr().String()
	dln.Close()
	cfg := config{
		tables:      "data:20000:3",
		seed:        5,
		shards:      1,
		path:        "auto",
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		readers:     4,
		drainWait:   time.Second,
		events:      256,
		debugAddr:   debugAddr,
	}
	url, cancel, done, _ := startServe(t, cfg)
	defer func() {
		cancel()
		<-done
	}()
	for i := 0; i < 12; i++ {
		postJSON(t, url, fmt.Sprintf(`{"op":"select","low":%d,"high":%d}`, i*300, i*300+400))
	}
	qr := postJSON(t, url, `{"op":"select","low":100,"high":800,"trace":true}`)
	if len(qr.Trace) == 0 {
		t.Fatal("traced query returned no span tree")
	}
	var root trace.Span
	if err := json.Unmarshal(qr.Trace, &root); err != nil {
		t.Fatalf("span tree does not decode: %v", err)
	}
	if root.ChildDurUs() > root.DurUs {
		t.Fatalf("phase durations %dus exceed the query total %dus", root.ChildDurUs(), root.DurUs)
	}

	// The exposition must be ingestible: promtool-style lint, zero errors
	// — with the epoch-read machinery on, that covers the reorganiser
	// families too.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metricsBuf bytes.Buffer
	metricsBuf.ReadFrom(resp.Body)
	resp.Body.Close()
	exposition := metricsBuf.String()
	errs := trace.LintProm(strings.NewReader(exposition))
	if len(errs) != 0 {
		t.Fatalf("/metrics lint errors: %v", errs)
	}
	for _, family := range []string{
		"crack_readers 4",
		"crack_reorg_backlog",
		"crack_epochs_retired_total",
		"crack_epochs_published_total",
		"crack_reorg_applied_total",
		"crack_reorg_lag_seconds",
		"crack_epoch_reads_total",
	} {
		if !strings.Contains(exposition, family) {
			t.Fatalf("/metrics is missing %q with -readers 4", family)
		}
	}

	// The event log replays the reorganisation the workload caused. The
	// cracking happens on the background reorganiser now, so poll until
	// it has caught up with the readers' intents.
	var page struct {
		Events []trace.Event `json:"events"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(url + "/debug/events?since=0")
		if err != nil {
			t.Fatal(err)
		}
		page.Events = nil
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Events) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no reorganisation events after an auto-path workload")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// pprof lives on the debug listener, not the public one.
	resp, err = http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
	resp, err = http.Get(url + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof must not be served on the public address")
	}
}

// TestShardedKillRestartRoundTrip is the sharded daemon's restart
// contract over real HTTP: a -shards 3 daemon answers exactly like the
// striped cluster it hosts, a graceful shutdown writes per-shard
// snapshot segments — pending updates included — and a reboot at the
// same shard count restores all of it. A reboot at a different shard
// count must refuse the snapshot and say which -shards to use.
func TestShardedKillRestartRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cluster.snapshot")
	cfg := config{
		tables:      "orders:30000:3,events:10000:2",
		seed:        9,
		shards:      3,
		path:        "auto",
		merge:       "gradual",
		batchWindow: 200 * time.Microsecond,
		batchMax:    64,
		inFlight:    128,
		snapshot:    snap,
		drainWait:   5 * time.Second,
	}
	url, cancel, done, out := startServe(t, cfg)

	st := getStats(t, url)
	if st.Shards != 3 || len(st.ShardStats) != 3 {
		t.Fatalf("sharded daemon reports shards=%d with %d shard stats, want 3", st.Shards, len(st.ShardStats))
	}

	// Crack both tables, then leave sentinel writes pending: inserts far
	// above the value domain plus tombstones on rows 0..2, which stripe
	// onto the three different shards.
	bodies := make([]string, 0, 60)
	for i := 0; i < 40; i++ {
		lo := (i * 650) % 28000
		bodies = append(bodies, fmt.Sprintf(
			`{"op":"select","table":"orders","column":"c0","low":%d,"high":%d,"project":["c1"]}`, lo, lo+400))
	}
	for i := 0; i < 20; i++ {
		lo := (i * 450) % 9000
		bodies = append(bodies, fmt.Sprintf(
			`{"op":"count","table":"events","column":"c1","low":%d,"high":%d}`, lo, lo+250))
	}
	// First pass cracks the columns (writes only buffer against cracked
	// columns); the writes then stay pending until merged.
	for _, body := range bodies {
		postJSON(t, url, body)
	}
	ins := postUpdate(t, url, `{"op":"insert","table":"orders","rows":[[90001,1,1],[90002,2,2],[90003,3,3],[90004,4,4]]}`)
	if len(ins.Inserted) != 4 || ins.PendingInserts == 0 {
		t.Fatalf("insert reply: %+v", ins)
	}
	if del := postUpdate(t, url, `{"op":"delete","table":"orders","rows":[0,1,2]}`); del.Deleted != 3 {
		t.Fatalf("delete reply: %+v", del)
	}
	// The query stream may merge the tombstones where it touches their
	// ranges; the sentinel inserts sit far above every queried range and
	// must still be pending at shutdown.
	counts := make(map[string]int)
	for _, body := range bodies {
		counts[body] = postJSON(t, url, body).Count
	}
	before := getStats(t, url)
	if before.WriteState.PendingInserts != 4 {
		t.Fatalf("want 4 pending inserts before shutdown, got %+v", before.WriteState)
	}
	pending := 0
	for _, ss := range before.ShardStats {
		pending += ss.PendingInserts + ss.PendingDeletes
	}
	if pending != before.WriteState.PendingInserts+before.WriteState.PendingDeletes {
		t.Fatalf("per-shard pending (%d) does not sum to the cluster's (%+v)", pending, before.WriteState)
	}
	wantLive := before.Tables[0].LiveRows

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Fatalf("missing snapshot log line:\n%s", out)
	}

	// Reboot at the same shard count: everything restores. No deferred
	// shutdown — the test ends this daemon explicitly below (a second
	// receive from done2 would deadlock).
	url2, cancel2, done2, out2 := startServe(t, cfg)
	logDeadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out2.String(), "restored from") {
		if time.Now().After(logDeadline) {
			t.Fatalf("reboot did not restore:\n%s", out2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	after := getStats(t, url2)
	if after.Shards != 3 {
		t.Fatalf("rebooted daemon reports %d shards, want 3", after.Shards)
	}
	// Cracked columns round-trip exactly. Map sets of the written orders
	// table are deliberately not persisted (see engine snapshot docs), so
	// only the unwritten events table's survive — one set per shard.
	if after.Structures.CrackerPieces != before.Structures.CrackerPieces ||
		after.Structures.Crackers != before.Structures.Crackers {
		t.Fatalf("restored structures %+v, want crackers of %+v", after.Structures, before.Structures)
	}
	if after.Structures.MapSets == 0 {
		t.Fatalf("no map sets survived the restart: %+v", after.Structures)
	}
	if after.WriteState.PendingInserts != 4 || after.WriteState.PendingDeletes != before.WriteState.PendingDeletes {
		t.Fatalf("pending updates did not round-trip: %+v, want %+v", after.WriteState, before.WriteState)
	}
	if after.Tables[0].LiveRows != wantLive {
		t.Fatalf("live rows after restart = %d, want %d", after.Tables[0].LiveRows, wantLive)
	}
	for body, want := range counts {
		if got := postJSON(t, url2, body).Count; got != want {
			t.Fatalf("after restart, %s returned %d, want %d", body, got, want)
		}
	}
	// A query into the sentinel range merges the restored pending
	// inserts on their owning shards.
	if qr := postJSON(t, url2, `{"op":"select","table":"orders","column":"c0","low":90000,"high":90100,"path":"cracking"}`); qr.Count != 4 {
		t.Fatalf("sentinel query returned %d rows, want 4", qr.Count)
	}
	if merged := getStats(t, url2); merged.WriteState.PendingInserts != 0 {
		t.Fatalf("sentinel query left pending inserts: %+v", merged.WriteState)
	}

	// Shut down again (rewrites the snapshot), then try the wrong shard
	// count: the boot must fail fast, telling the operator which count
	// the snapshot was written at.
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second shutdown returned %v\noutput:\n%s", err, out2)
	}
	wrong := cfg
	wrong.shards = 2
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	bootErr := serve(ctx, wrong, ln, &bytes.Buffer{})
	if bootErr == nil || !strings.Contains(bootErr.Error(), "-shards 3") {
		t.Fatalf("booting a 3-shard snapshot with -shards 2 must fail naming -shards 3, got: %v", bootErr)
	}
}

// TestBootGate pins the readiness contract: until the engine is ready,
// /healthz answers 503 with {"ok":true,"ready":false} (booting, not
// dead) and the data plane answers 503 error envelopes — so health
// probes and kill/restart orchestration never race the boot.
func TestBootGate(t *testing.T) {
	h := bootGate()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("booting /healthz status %d, want 503", rr.Code)
	}
	var hb api.Health
	if err := json.NewDecoder(rr.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if !hb.OK || hb.Ready {
		t.Fatalf("booting /healthz body %+v, want ok=true ready=false", hb)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{}`)))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("booting /query status %d, want 503", rr.Code)
	}
	var eb api.ErrorResponse
	if err := json.NewDecoder(rr.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("booting /query body not an error envelope: %v %+v", err, eb)
	}
}

// TestStripeFlag validates -stripe parsing.
func TestStripeFlag(t *testing.T) {
	cfg, err := parseFlags([]string{"-stripe", "1/2", "-n", "1000"})
	if err != nil || cfg.stripeIdx != 1 || cfg.stripeOf != 2 {
		t.Fatalf("1/2 parsed to %d/%d, err %v", cfg.stripeIdx, cfg.stripeOf, err)
	}
	if cfg, err = parseFlags([]string{"-n", "1000"}); err != nil || cfg.stripeOf != 1 {
		t.Fatalf("default stripeOf %d, err %v", cfg.stripeOf, err)
	}
	for _, bad := range []string{"2/2", "-1/2", "0/0", "x", "1-2"} {
		if _, err := parseFlags([]string{"-stripe", bad}); err == nil {
			t.Fatalf("-stripe %q accepted", bad)
		}
	}
}

// TestStripedPairServes boots two daemons over complementary stripes of
// one catalog and checks each serves its half: the row populations are
// the ceil/floor split and their per-stripe counts sum to the whole.
func TestStripedPairServes(t *testing.T) {
	base := config{
		tables:      "data:10001:2",
		seed:        3,
		shards:      1,
		path:        "auto",
		batchWindow: 0,
		batchMax:    64,
		inFlight:    128,
		drainWait:   2 * time.Second,
		events:      16,
	}
	n0, n1 := base, base
	n0.stripeIdx, n0.stripeOf = 0, 2
	n1.stripeIdx, n1.stripeOf = 1, 2
	url0, cancel0, done0, _ := startServe(t, n0)
	defer func() { cancel0(); <-done0 }()
	url1, cancel1, done1, _ := startServe(t, n1)
	defer func() { cancel1(); <-done1 }()

	st0, st1 := getStats(t, url0), getStats(t, url1)
	if st0.Tables[0].Rows != 5001 || st1.Tables[0].Rows != 5000 {
		t.Fatalf("stripe rows %d + %d, want 5001 + 5000", st0.Tables[0].Rows, st1.Tables[0].Rows)
	}
	// Each stripe holds a slice of every value range; the two counts
	// must sum to what one daemon over the whole catalog reports.
	whole := base
	urlW, cancelW, doneW, _ := startServe(t, whole)
	defer func() { cancelW(); <-doneW }()
	q := `{"op":"count","low":100,"high":4000}`
	c0 := postJSON(t, url0, q).Count
	c1 := postJSON(t, url1, q).Count
	cw := postJSON(t, urlW, q).Count
	if c0+c1 != cw {
		t.Fatalf("stripe counts %d + %d != whole %d", c0, c1, cw)
	}
	if c0 == 0 || c1 == 0 {
		t.Fatalf("a stripe answered empty (%d, %d): not a value-range slice", c0, c1)
	}
}
