// Command aibench runs the reproduction's experiment suite (E1..E18,
// see DESIGN.md and EXPERIMENTS.md) and prints the comparison tables
// and per-query curves each experiment produces.
//
// Usage:
//
//	aibench -list
//	aibench -exp E1
//	aibench -exp E14
//	aibench -exp all -n 10000000 -queries 1000
//
// The defaults run every experiment at one million tuples, which keeps
// the whole suite within a few minutes; -n 10000000 reproduces the
// scale the surveyed papers use.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adaptiveindex/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aibench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("aibench", flag.ContinueOnError)
	var (
		exp         = fs.String("exp", "all", "experiment id (E1..E16) or 'all'")
		list        = fs.Bool("list", false, "list available experiments and exit")
		n           = fs.Int("n", 1_000_000, "number of tuples")
		queries     = fs.Int("queries", 1000, "number of queries")
		domain      = fs.Int("domain", 0, "value domain (default: same as -n)")
		selectivity = fs.Float64("selectivity", 0.01, "query selectivity (fraction of the domain)")
		seed        = fs.Int64("seed", 42, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, def := range experiments.All() {
			fmt.Fprintf(out, "%-5s %s\n", def.ID, def.Title)
		}
		return nil
	}

	cfg := experiments.Config{
		N:           *n,
		Queries:     *queries,
		Domain:      *domain,
		Selectivity: *selectivity,
		Seed:        *seed,
	}

	var defs []experiments.Definition
	if strings.EqualFold(*exp, "all") {
		defs = experiments.All()
	} else {
		def, ok := experiments.Lookup(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		defs = []experiments.Definition{def}
	}

	for i, def := range defs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "=== %s: %s ===\n", def.ID, def.Title)
		res := def.Run(cfg)
		fmt.Fprintln(out, res.Text)
	}
	return nil
}
