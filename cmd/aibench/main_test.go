package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureFile creates a temporary file to capture the CLI's output.
func captureFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestListFlag(t *testing.T) {
	f := captureFile(t)
	if err := run([]string{"-list"}, f); err != nil {
		t.Fatal(err)
	}
	out := readBack(t, f)
	for _, id := range []string{"E1", "E5", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	f := captureFile(t)
	err := run([]string{"-exp", "E1", "-n", "20000", "-queries", "60", "-domain", "20000"}, f)
	if err != nil {
		t.Fatal(err)
	}
	out := readBack(t, f)
	if !strings.Contains(out, "E1") || !strings.Contains(out, "cracking") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	f := captureFile(t)
	if err := run([]string{"-exp", "E99"}, f); err == nil {
		t.Fatal("expected an error for an unknown experiment")
	}
}

func TestBadFlag(t *testing.T) {
	f := captureFile(t)
	if err := run([]string{"-definitely-not-a-flag"}, f); err == nil {
		t.Fatal("expected a flag parse error")
	}
}
