package adaptiveindex

import (
	"sync"
	"testing"
)

func TestConcurrentPublicAPI(t *testing.T) {
	vals, _ := GenerateData(DataUniform, 9, 20000, 50000)
	c := NewConcurrent(vals)
	if c.Name() == "" || c.Len() != 20000 {
		t.Fatal("accessors wrong")
	}

	// Concurrent readers over a bounded predicate set.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for q := 0; q < 100; q++ {
				lo := Value(((q + offset) % 40) * 1000)
				r := NewRange(lo, lo+800)
				rows := c.Select(r)
				for _, row := range rows {
					if !r.Contains(vals[row]) {
						t.Errorf("row %d does not satisfy %s", row, r)
						return
					}
				}
			}
		}(g * 7)
	}
	wg.Wait()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SharedQueries() == 0 || c.ExclusiveQueries() == 0 {
		t.Fatalf("expected both latch paths to be used: shared=%d exclusive=%d",
			c.SharedQueries(), c.ExclusiveQueries())
	}
	if c.Stats().Total() == 0 {
		t.Fatal("no work recorded")
	}

	// Updates through the public facade.
	c.Insert(1_000_000, 123)
	if got := c.Count(Point(123)); got == 0 {
		t.Fatal("inserted value not visible")
	}
	if err := c.Delete(1_000_000, 123); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(1_000_000, 123); err == nil {
		t.Fatal("double delete must fail")
	}
	// Results must still match the oracle afterwards.
	r := NewRange(10000, 12000)
	if got, want := c.Count(r), len(scanOracle(vals, r)); got != want {
		t.Fatalf("Count = %d want %d", got, want)
	}
}
