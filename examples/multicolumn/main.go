// Multicolumn: sideways cracking for select-project queries. An orders
// table is filtered on amount while projecting customer, status,
// region and priority; sideways cracking drags the projected columns
// along with every crack, so tuple reconstruction stays sequential.
//
// Run with:
//
//	go run ./examples/multicolumn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptiveindex"
)

func main() {
	const nRows = 500_000
	rng := rand.New(rand.NewSource(11))

	amount := make([]adaptiveindex.Value, nRows)
	customer := make([]adaptiveindex.Value, nRows)
	status := make([]adaptiveindex.Value, nRows)
	region := make([]adaptiveindex.Value, nRows)
	priority := make([]adaptiveindex.Value, nRows)
	for i := 0; i < nRows; i++ {
		amount[i] = adaptiveindex.Value(rng.Intn(1_000_000))
		customer[i] = adaptiveindex.Value(rng.Intn(50_000))
		status[i] = adaptiveindex.Value(rng.Intn(5))
		region[i] = adaptiveindex.Value(rng.Intn(40))
		priority[i] = adaptiveindex.Value(rng.Intn(3))
	}

	orders, err := adaptiveindex.NewMultiColumn("amount", amount, map[string][]adaptiveindex.Value{
		"customer": customer,
		"status":   status,
		"region":   region,
		"priority": priority,
	}, 0 /* no map budget */)
	if err != nil {
		log.Fatal(err)
	}

	// "Which customers placed orders between 100,000 and 120,000, and
	// what status are they in?" — repeated for shifting amount bands.
	for q := 0; q < 10; q++ {
		lo := adaptiveindex.Value(100_000 + q*50_000)
		res, err := orders.SelectProject(adaptiveindex.NewRange(lo, lo+20_000), "customer", "status")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("band [%7d, %7d): %6d orders, first hit: customer=%v status=%v\n",
			lo, lo+20_000, len(res.Rows), first(res.Columns["customer"]), first(res.Columns["status"]))
	}

	fmt.Printf("\nmaterialised cracker maps (only attributes actually projected): %v\n", orders.MaterializedMaps())
	fmt.Printf("accumulated work: %s\n", orders.Stats())

	// A wider projection later materialises the remaining maps on
	// demand and aligns them with the crack history accumulated so far.
	res, err := orders.SelectProject(adaptiveindex.NewRange(0, 50_000), "customer", "status", "region", "priority")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wide projection over [0, 50000): %d orders, %d attributes\n", len(res.Rows), len(res.Columns))
	fmt.Printf("maps after the wide projection: %v\n", orders.MaterializedMaps())
}

func first(vals []adaptiveindex.Value) interface{} {
	if len(vals) == 0 {
		return "-"
	}
	return vals[0]
}
