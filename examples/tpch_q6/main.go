// TPC-H Q6 style: the tutorial motivates sideways cracking with complex
// analytical queries such as TPC-H. This example models Q6 — a revenue
// aggregate over lineitem filtered by ship date, discount and quantity —
// over a synthetic lineitem table. The selection on ship date is served
// by sideways cracking, which drags the discount, quantity and price
// columns along, so repeated "same quarter, different discount band"
// queries become cheap as the analyst iterates.
//
// Run with:
//
//	go run ./examples/tpch_q6
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptiveindex"
)

const (
	nLineitems = 1_000_000
	daysInYear = 365
	years      = 7 // ship dates span 1992-1998, as in TPC-H
)

func main() {
	rng := rand.New(rand.NewSource(1992))

	shipdate := make([]adaptiveindex.Value, nLineitems) // days since 1992-01-01
	discount := make([]adaptiveindex.Value, nLineitems) // percent, 0..10
	quantity := make([]adaptiveindex.Value, nLineitems) // 1..50
	price := make([]adaptiveindex.Value, nLineitems)    // cents
	for i := 0; i < nLineitems; i++ {
		shipdate[i] = adaptiveindex.Value(rng.Intn(years * daysInYear))
		discount[i] = adaptiveindex.Value(rng.Intn(11))
		quantity[i] = adaptiveindex.Value(1 + rng.Intn(50))
		price[i] = adaptiveindex.Value(90_000 + rng.Intn(10_000))
	}

	lineitem, err := adaptiveindex.NewMultiColumn("l_shipdate", shipdate, map[string][]adaptiveindex.Value{
		"l_discount":      discount,
		"l_quantity":      quantity,
		"l_extendedprice": price,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("year  discount-band   qualifying   revenue(cents)   work-this-query")
	prevWork := uint64(0)
	for q := 0; q < 21; q++ {
		year := q % years
		band := adaptiveindex.Value(1 + (q/years)*3) // the analyst retries with new discount bands
		from := adaptiveindex.Value(year * daysInYear)
		res, err := lineitem.SelectProject(
			adaptiveindex.NewRange(from, from+daysInYear),
			"l_discount", "l_quantity", "l_extendedprice",
		)
		if err != nil {
			log.Fatal(err)
		}
		var revenue adaptiveindex.Value
		matched := 0
		for i := range res.Rows {
			d := res.Columns["l_discount"][i]
			if d < band || d > band+2 {
				continue
			}
			if res.Columns["l_quantity"][i] >= 24 {
				continue
			}
			revenue += res.Columns["l_extendedprice"][i] * d / 100
			matched++
		}
		work := lineitem.Stats().Total()
		fmt.Printf("%4d  [%2d%%,%2d%%]     %10d %16d %18d\n",
			1992+year, band, band+2, matched, revenue, work-prevWork)
		prevWork = work
	}

	fmt.Println("\nThe first query over each ship-date year pays for cracking the maps;")
	fmt.Println("revisiting a year with a different discount band touches only the")
	fmt.Println("already-contiguous region, so its cost collapses.")
	fmt.Printf("materialised cracker maps: %v\n", lineitem.MaterializedMaps())
}
