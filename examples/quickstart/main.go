// Quickstart: create a cracked column, query it, and watch the index
// build itself as a side effect of the queries.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adaptiveindex"
)

func main() {
	// One million uniformly distributed integers — an unindexed column
	// as it would arrive from a bulk load.
	values, err := adaptiveindex.GenerateData(adaptiveindex.DataUniform, 1, 1_000_000, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// A cracked column: every range selection physically reorganises
	// the data it had to look at, so the column gets faster to query
	// the more it is queried.
	index, err := adaptiveindex.New(adaptiveindex.KindCracking, values, nil)
	if err != nil {
		log.Fatal(err)
	}

	queries, err := adaptiveindex.GenerateQueries(adaptiveindex.WorkloadSpec{
		Kind:        adaptiveindex.WorkloadUniform,
		Seed:        2,
		DomainLow:   0,
		DomainHigh:  1_000_000,
		Selectivity: 0.01, // each query asks for 1% of the domain
	}, 200)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query    result-rows    work-this-query")
	prev := uint64(0)
	for i, q := range queries {
		n := index.Count(q)
		total := index.Stats().Total()
		if i < 5 || (i+1)%50 == 0 {
			fmt.Printf("%5d %14d %18d\n", i+1, n, total-prev)
		}
		prev = total
	}

	fmt.Printf("\nThe first query cost roughly one scan; by query %d each query touches\n", len(queries))
	fmt.Printf("only the pieces relevant to its range. Total work so far: %d units.\n", index.Stats().Total())
}
