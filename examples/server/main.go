// Example server starts an in-process query service over a multi-table
// adaptive engine, fires a skewed hot-set select-project workload at it
// from several concurrent sessions, and prints the /stats snapshot —
// the quickest way to see shared-scan batching, the access-path
// planner, and the latency histogram working.
//
//	go run ./examples/server
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func main() {
	const (
		n        = 500_000
		sessions = 8
		queries  = 300
	)
	// Two generated tables; "orders" is the default target.
	cat, err := server.BuildCatalog([]server.TableSpec{
		{Name: "orders", Rows: n, Cols: 3},
		{Name: "events", Rows: n / 4, Cols: 2},
	}, 42, n)
	if err != nil {
		log.Fatal(err)
	}
	built, err := server.BuildEngine(cat, server.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := server.NewService(server.Config{
		Engine:       built.Engine,
		DefaultTable: "orders",
		BatchWindow:  500 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Println("started", svc)

	// Eight sessions exploring the same dashboard: one shared hot-set
	// pool of select-project queries, independent draw sequences. The
	// access path is left to the planner (PathAuto).
	target := workload.Target{Table: "orders", Column: "c0", Project: []string{"c1"}}
	gens := workload.SelectProjectSessions(7, sessions, target, 0, n, 0.01)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(gen workload.TableGenerator) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				tq := gen.NextQuery()
				if _, err := svc.SelectQuery(server.Query{
					Table: tq.Table, Column: tq.Column, R: tq.R, Project: tq.Project,
				}); err != nil {
					log.Fatal(err)
				}
			}
		}(gens[g])
	}
	wg.Wait()
	wall := time.Since(start)
	fmt.Printf("replayed %d select-project queries from %d sessions in %v (%.0f q/s)\n\n",
		sessions*queries, sessions, wall.Round(time.Millisecond),
		float64(sessions*queries)/wall.Seconds())

	// A couple of handcrafted queries showing the full surface.
	reply, err := svc.SelectQuery(server.Query{R: column.NewRange(1000, 1200), Project: []string{"c1", "c2"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select c1,c2 from orders where c0 in [1000,1200) -> %d rows via %s\n", reply.Count, reply.Path)
	count, err := svc.CountQuery(server.Query{Table: "events", R: column.NewRange(5000, 9000)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count events where c0 in [5000,9000) -> %d\n\n", count)

	// The same snapshot GET /stats serves, pretty-printed.
	stats, err := json.MarshalIndent(svc.Stats(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(stats))
}
