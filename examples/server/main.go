// Example server starts an in-process query service over a partitioned
// parallel cracker, fires a skewed hot-set workload at it from several
// concurrent sessions, and prints the /stats snapshot — the quickest
// way to see shared-scan batching and the latency histogram working.
//
//	go run ./examples/server
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

func main() {
	const (
		n        = 500_000
		sessions = 8
		queries  = 300
	)
	vals := workload.DataUniform(42, n, n)
	built, err := server.BuildIndex("cracking-parallel", vals, server.BuildOptions{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	svc := server.NewService(server.Config{
		Index:           built.Index,
		Kind:            built.Kind,
		BatchWindow:     500 * time.Microsecond,
		ConcurrencySafe: built.ConcurrencySafe,
	})
	defer svc.Close()
	fmt.Println("started", svc)

	// Eight sessions exploring the same dashboard: one shared hot-set
	// pool, independent draw sequences.
	gens, err := workload.SessionGenerators("hotset", 7, sessions, 0, n, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(gen workload.Generator) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				if _, err := svc.Count(gen.Next()); err != nil {
					log.Fatal(err)
				}
			}
		}(gens[g])
	}
	wg.Wait()
	wall := time.Since(start)
	fmt.Printf("replayed %d queries from %d sessions in %v (%.0f q/s)\n\n",
		sessions*queries, sessions, wall.Round(time.Millisecond),
		float64(sessions*queries)/wall.Seconds())

	// A single handcrafted query showing the full surface.
	rows, err := svc.Select(column.NewRange(1000, 1200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select [1000,1200) -> %d rows\n\n", len(rows))

	// The same snapshot GET /stats serves, pretty-printed.
	stats, err := json.MarshalIndent(svc.Stats(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(stats))
}
