// Parallel cracking: a concurrent query storm against a partitioned
// cracked column.
//
// Under plain cracking every reader is a writer — a SELECT physically
// reorganises the column — so concurrent queries serialise behind one
// exclusive latch. KindParallel splits the column into value-range
// partitions, each with a private cracker index and latch: queries over
// different key ranges crack different partitions at the same time, and
// a partition entirely covered by a predicate is answered without any
// reorganisation at all.
//
// Run with:
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"adaptiveindex"
)

func main() {
	// One million uniformly distributed integers, as from a bulk load.
	values, err := adaptiveindex.GenerateData(adaptiveindex.DataUniform, 1, 1_000_000, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// A partitioned parallel cracked column with 8 value-range
	// partitions. NewParallel exposes per-partition observability; the
	// same structure is available as New(KindParallel, ...).
	index := adaptiveindex.NewParallel(values, &adaptiveindex.Options{Partitions: 8})

	// Eight goroutines, each querying its own region of the key space —
	// the access pattern of concurrent interactive exploration. Because
	// the regions are disjoint, every goroutine cracks different
	// partitions and they rarely contend.
	const (
		goroutines = 8
		perG       = 500
	)
	queries := make([][]adaptiveindex.Range, goroutines)
	for g := range queries {
		region := adaptiveindex.WorkloadSpec{
			Kind:        adaptiveindex.WorkloadUniform,
			Seed:        int64(g + 2),
			DomainLow:   adaptiveindex.Value(g * 125_000),
			DomainHigh:  adaptiveindex.Value((g + 1) * 125_000),
			Selectivity: 0.01,
		}
		queries[g], err = adaptiveindex.GenerateQueries(region, perG)
		if err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	var total int64
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(qs []adaptiveindex.Range) {
			defer wg.Done()
			rows := 0
			for _, q := range qs {
				rows += index.Count(q)
			}
			mu.Lock()
			total += int64(rows)
			mu.Unlock()
		}(queries[g])
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("%d goroutines executed %d queries in %s (%d qualifying tuples)\n\n",
		goroutines, goroutines*perG, wall.Round(time.Millisecond), total)

	// The storm's latch behaviour: probes that only read ran under the
	// shared latch; probes that cracked took a per-partition exclusive
	// latch. As the partitions converge, the shared share grows.
	fmt.Printf("partition probes: shared=%d exclusive=%d\n\n",
		index.SharedQueries(), index.ExclusiveQueries())

	fmt.Println("partition   tuples   pieces   shared   exclusive   value range")
	for i, st := range index.PartitionStats() {
		lo, hi := "-inf", "+inf"
		if st.HasLower {
			lo = fmt.Sprint(st.Lower)
		}
		if st.HasUpper {
			hi = fmt.Sprint(st.Upper)
		}
		fmt.Printf("%9d %8d %8d %8d %11d   [%s, %s)\n",
			i, st.Len, st.Pieces, st.SharedHits, st.ExclusiveHits, lo, hi)
	}

	if err := index.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll partitioning and cracking invariants hold.")
}
