// Updates: cracking under a trickle of insertions and deletions. New
// orders keep arriving and old ones are archived while analysts query
// the column; pending updates are merged adaptively, only when and
// where queries need them.
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptiveindex"
)

func main() {
	const (
		nRows  = 1_000_000
		domain = 1_000_000
	)
	values, err := adaptiveindex.GenerateData(adaptiveindex.DataUniform, 21, nRows, domain)
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []adaptiveindex.MergePolicy{
		adaptiveindex.MergeGradually,
		adaptiveindex.MergeCompletely,
		adaptiveindex.MergeImmediately,
	} {
		col := adaptiveindex.NewUpdatable(values, policy)
		rng := rand.New(rand.NewSource(22))
		live := make([]adaptiveindex.RowID, 0, 4096)

		var maxQuery uint64
		prev := col.Stats().Total()
		for q := 0; q < 300; q++ {
			// Ten new orders arrive and two old ones are archived
			// between queries.
			for i := 0; i < 10; i++ {
				live = append(live, col.Insert(adaptiveindex.Value(rng.Intn(domain))))
			}
			for i := 0; i < 2 && len(live) > 0; i++ {
				k := rng.Intn(len(live))
				if err := col.Delete(live[k]); err != nil {
					log.Fatal(err)
				}
				live = append(live[:k], live[k+1:]...)
			}
			lo := adaptiveindex.Value(rng.Intn(domain))
			col.Count(adaptiveindex.NewRange(lo, lo+10_000))
			total := col.Stats().Total()
			if d := total - prev; d > maxQuery && q > 0 {
				maxQuery = d
			}
			prev = total
		}
		fmt.Printf("%-34s total-work=%12d  worst-query=%10d  pending: %d inserts / %d deletes\n",
			col.Name(), col.Stats().Total(), maxQuery, col.PendingInsertions(), col.PendingDeletions())
	}

	fmt.Println("\nGradual merging spreads the update cost over many queries; complete")
	fmt.Println("merging concentrates it in occasional spikes; immediate application is")
	fmt.Println("the non-adaptive reference point.")
}
