// Analytics: the dynamic-workload scenario that motivates adaptive
// indexing. An analyst explores a sales table with ad-hoc range
// predicates whose focus shifts over time; we compare how much work a
// plain scan, an up-front full index, online indexing and database
// cracking spend over the same query stream.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"adaptiveindex"
)

func main() {
	const (
		nRows  = 2_000_000
		domain = 10_000_000 // "revenue in cents"
	)
	values, err := adaptiveindex.GenerateData(adaptiveindex.DataUniform, 7, nRows, domain)
	if err != nil {
		log.Fatal(err)
	}

	// The analyst's exploration: queries cluster on one revenue band
	// for a while, then jump to another band.
	queries, err := adaptiveindex.GenerateQueries(adaptiveindex.WorkloadSpec{
		Kind:        adaptiveindex.WorkloadShifting,
		Seed:        8,
		DomainLow:   0,
		DomainHigh:  domain,
		Selectivity: 0.005,
		ShiftEvery:  100,
	}, 500)
	if err != nil {
		log.Fatal(err)
	}

	kinds := []adaptiveindex.Kind{
		adaptiveindex.KindScan,
		adaptiveindex.KindFullSortEager,
		adaptiveindex.KindOnline,
		adaptiveindex.KindCracking,
		adaptiveindex.KindAdaptiveMerging,
	}
	var indexes []adaptiveindex.Index
	for _, k := range kinds {
		ix, err := adaptiveindex.New(k, values, nil)
		if err != nil {
			log.Fatal(err)
		}
		indexes = append(indexes, ix)
	}

	rows := adaptiveindex.Compare(indexes, queries)
	fmt.Println("strategy                       first-query        total-work    tail-per-query")
	for _, r := range rows {
		fmt.Printf("%-28s %14d %17d %17d\n", r.IndexName, r.FirstQueryCost, r.TotalWork, r.TailPerQuery)
	}
	fmt.Println("\nThe adaptive strategies pay almost nothing up front and keep adapting")
	fmt.Println("when the analyst's focus moves; the eager full index paid for ranges")
	fmt.Println("that were never queried.")
}
