package adaptiveindex

import (
	"time"

	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/index"
)

// QueryStat records one query's outcome during an experiment run.
type QueryStat struct {
	// Seq is the zero-based position of the query.
	Seq int
	// Query is the executed predicate.
	Query Range
	// Result is the number of qualifying tuples.
	Result int
	// Work is the logical work this query performed.
	Work Stats
	// Wall is the wall-clock duration of the query.
	Wall time.Duration
}

// Series is the per-query record of one index over one workload, plus
// the derived metrics of the adaptive-indexing benchmark.
type Series struct {
	IndexName string
	Stats     []QueryStat

	inner bench.Series
}

// Summary condenses a Series into one comparison row.
type Summary struct {
	// IndexName identifies the access path.
	IndexName string
	// FirstQueryCost is the work charged to the first query (TPCTC
	// metric 1: initialization cost).
	FirstQueryCost uint64
	// TotalWork is the work summed over the whole sequence.
	TotalWork uint64
	// TailPerQuery is the average work of the final tenth of the
	// sequence (the converged per-query cost).
	TailPerQuery uint64
	// MaxQueryCost is the most expensive single query.
	MaxQueryCost uint64
	// Convergence is the query index after which per-query work stays
	// at or below the threshold passed to Summarize (-1: never; TPCTC
	// metric 2).
	Convergence int
	// TotalWall is the summed wall-clock time.
	TotalWall time.Duration
}

// Run drives the index through the query sequence, recording per-query
// work and wall time.
func Run(ix Index, queries []Range) Series {
	runner := benchIndexFor(ix)
	internalQueries := make([]column.Range, len(queries))
	for i, q := range queries {
		internalQueries[i] = q.internal()
	}
	s := bench.Run(runner, internalQueries)
	out := Series{IndexName: s.IndexName, inner: s, Stats: make([]QueryStat, len(s.Stats))}
	for i, st := range s.Stats {
		out.Stats[i] = QueryStat{
			Seq:    st.Seq,
			Query:  fromInternalRange(st.Query),
			Result: st.Result,
			Work:   statsFrom(st.Work),
			Wall:   st.Wall,
		}
	}
	return out
}

// PerQueryTotals returns the scalar work of every query in order.
func (s Series) PerQueryTotals() []uint64 { return s.inner.PerQueryTotals() }

// CumulativeTotals returns the running sum of scalar work.
func (s Series) CumulativeTotals() []uint64 { return s.inner.CumulativeTotals() }

// FirstQueryCost is TPCTC metric 1: the work charged to the first
// query.
func (s Series) FirstQueryCost() uint64 { return s.inner.FirstQueryCost() }

// Convergence is TPCTC metric 2: the query index after which every
// remaining query's work stays at or below threshold (-1 if never).
func (s Series) Convergence(threshold uint64) int { return s.inner.Convergence(threshold) }

// BreakEven returns the query index at which this series' cumulative
// work permanently drops to or below the other series' (-1 if never).
func (s Series) BreakEven(other Series) int { return s.inner.BreakEven(other.inner) }

// Summarize condenses the series into one comparison row, using
// convergenceThreshold as the per-query work level that counts as "no
// further adaptation overhead".
func (s Series) Summarize(convergenceThreshold uint64) Summary {
	sum := s.inner.Summarize(convergenceThreshold)
	return Summary{
		IndexName:      sum.IndexName,
		FirstQueryCost: sum.FirstQuery,
		TotalWork:      sum.TotalWork,
		TailPerQuery:   sum.TailPerQuery,
		MaxQueryCost:   sum.MaxQuery,
		Convergence:    sum.Convergence,
		TotalWall:      sum.TotalWall,
	}
}

// Compare runs every index over (a fresh copy of) the same query
// sequence and returns one summary row per index, using the last
// index's tail cost as the convergence threshold reference. Indexes
// adapt as they run, so each index sees the identical sequence.
func Compare(indexes []Index, queries []Range) []Summary {
	series := make([]Series, len(indexes))
	for i, ix := range indexes {
		series[i] = Run(ix, queries)
	}
	// Reference: the cheapest tail across all runs, times a small
	// factor, is the "no further overhead" level.
	var threshold uint64
	for _, s := range series {
		t := s.inner.TailAverage(max(1, len(queries)/10))
		if threshold == 0 || (t > 0 && t < threshold) {
			threshold = t
		}
	}
	threshold *= 2
	out := make([]Summary, len(series))
	for i, s := range series {
		out[i] = s.Summarize(threshold)
	}
	return out
}

// benchIndexFor resolves the internal index the harness should drive.
// Every Index built by this package carries its internal/index
// implementation and is driven directly; a foreign Index implementation
// is bridged generically through the public surface.
func benchIndexFor(ix Index) bench.Index {
	if backed, ok := ix.(interface{ internalIndex() index.Interface }); ok {
		return backed.internalIndex()
	}
	return publicBridge{ix: ix}
}

// publicBridge adapts a third-party Index implementation to the
// harness. It exists only for indexes not created by this package.
type publicBridge struct {
	ix Index
}

func (b publicBridge) Name() string { return b.ix.Name() }

func (b publicBridge) Count(r column.Range) int {
	return b.ix.Count(fromInternalRange(r))
}

func (b publicBridge) Cost() cost.Counters { return b.ix.Stats().counters() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
