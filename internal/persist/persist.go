// Package persist provides snapshot and restore for adaptive state,
// addressing the "disk based processing" and "long term maintenance of
// structures" open topics the tutorial lists: the knowledge a workload
// has invested into adaptive structures (physical order, cracker
// indexes, sideways maps, planner estimates) survives a restart instead
// of being re-learned from scratch.
//
// Three payload kinds share one container format:
//
//   - cracker: a single cracked column — its (value, rowid) pairs in
//     current physical order plus every cracker-index boundary
//     (Save/Load, the library-level surface).
//   - engine: a whole execution engine's adaptive state — every cracked
//     selection column, every sideways map set, and the PathAuto
//     planner's learned per-path costs (SaveEngine/RestoreEngine, what
//     a single-engine crackserve writes on graceful shutdown).
//   - cluster: a shard-per-core cluster's state — one engine state per
//     shard, in shard order, each covering that shard's row stripe
//     (SaveCluster/RestoreCluster, what a sharded crackserve writes).
//
// The container is encoding/gob behind a fixed-layout header: an 8-byte
// magic string and a big-endian uint32 format version, checked before
// any gob decoding, so a snapshot written by an incompatible layout (or
// a file that is not a snapshot at all) is rejected with a clear error
// instead of whatever struct-shape-dependent failure gob would produce.
// Format version 5 added cluster payloads (per-shard engine segments).
// Version 4 (single-engine write state), version 3 (read-only engine
// payload), version 2 (single-column only) and version 1 (bare gob)
// files are rejected — regenerate them via crackserve.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/crackeridx"
	"adaptiveindex/internal/engine"
)

// snapshot is the on-disk envelope. Fields are exported for gob;
// exactly one payload pointer is set, named by Kind.
type snapshot struct {
	FormatVersion int
	Kind          string
	Cracker       *crackerPayload
	Engine        *engine.State
	Cluster       *clusterPayload
}

// clusterPayload is the shard-cluster payload: one engine state per
// shard, in shard order. Shards is recorded redundantly so a truncated
// or hand-edited States slice is detectable.
type clusterPayload struct {
	Shards int
	States []engine.State
}

// crackerPayload is the single-column payload.
type crackerPayload struct {
	Values     []column.Value
	Rows       []column.RowID
	Boundaries []boundary
}

type boundary struct {
	Value     column.Value
	Inclusive bool
	Pos       int
}

// Payload kinds.
const (
	kindCracker = "cracker"
	kindEngine  = "engine"
	kindCluster = "cluster"
)

// formatVersion guards against reading snapshots written by an
// incompatible layout. Version 5 added cluster payloads (per-shard
// engine segments); version 4 (single-engine write state), version 3
// (read-only engine payload), version 2 (single-column, no kind) and
// version 1 (bare gob, no header) files predate it.
const formatVersion = 5

// magic identifies a snapshot file. It is checked — together with the
// header version — before any gob decoding.
var magic = [8]byte{'A', 'D', 'I', 'X', 'S', 'N', 'A', 'P'}

// writeHeader emits the fixed-layout snapshot header.
func writeHeader(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.BigEndian, uint32(formatVersion))
}

// readHeader validates the magic and returns the header version.
func readHeader(r io.Reader) (uint32, error) {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return 0, fmt.Errorf("persist: reading snapshot header: %w", err)
	}
	if !bytes.Equal(got[:], magic[:]) {
		return 0, fmt.Errorf("persist: not a snapshot file (bad magic %q)", got)
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return 0, fmt.Errorf("persist: reading snapshot version: %w", err)
	}
	return version, nil
}

// decode reads and validates the envelope after the header.
func decode(r io.Reader, wantKind string) (snapshot, error) {
	version, err := readHeader(r)
	if err != nil {
		return snapshot{}, err
	}
	if version >= 2 && version < formatVersion {
		return snapshot{}, fmt.Errorf("persist: snapshot format version %d is no longer readable (this build writes version %d); delete the file and regenerate it via crackserve", version, formatVersion)
	}
	if version != formatVersion {
		return snapshot{}, fmt.Errorf("persist: unsupported snapshot format version %d (this build reads version %d)", version, formatVersion)
	}
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("persist: decode: %w", err)
	}
	if snap.FormatVersion != formatVersion {
		return snapshot{}, fmt.Errorf("persist: snapshot payload version %d contradicts header version %d", snap.FormatVersion, formatVersion)
	}
	if snap.Kind != wantKind {
		return snapshot{}, fmt.Errorf("persist: snapshot holds a %q payload, want %q", snap.Kind, wantKind)
	}
	return snap, nil
}

// Save writes a snapshot of the cracker column to w.
func Save(w io.Writer, cc *core.CrackerColumn) error {
	if err := writeHeader(w); err != nil {
		return fmt.Errorf("persist: writing header: %w", err)
	}
	pairs := cc.Pairs()
	payload := &crackerPayload{
		Values: make([]column.Value, len(pairs)),
		Rows:   make([]column.RowID, len(pairs)),
	}
	for i, p := range pairs {
		payload.Values[i] = p.Val
		payload.Rows[i] = p.Row
	}
	for _, b := range cc.Index().Boundaries() {
		payload.Boundaries = append(payload.Boundaries, boundary{Value: b.Value, Inclusive: b.Inclusive, Pos: b.Pos})
	}
	snap := snapshot{FormatVersion: formatVersion, Kind: kindCracker, Cracker: payload}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// Load reads a cracker-column snapshot from r and rebuilds the column
// with the given options. The header is verified before the payload is
// decoded, and the restored column is validated before it is returned.
func Load(r io.Reader, opts core.Options) (*core.CrackerColumn, error) {
	snap, err := decode(r, kindCracker)
	if err != nil {
		return nil, err
	}
	payload := snap.Cracker
	if payload == nil {
		return nil, fmt.Errorf("persist: corrupt snapshot: cracker payload missing")
	}
	if len(payload.Values) != len(payload.Rows) {
		return nil, fmt.Errorf("persist: corrupt snapshot: %d values but %d rows", len(payload.Values), len(payload.Rows))
	}
	pairs := make(column.Pairs, len(payload.Values))
	for i := range payload.Values {
		pairs[i] = column.Pair{Val: payload.Values[i], Row: payload.Rows[i]}
	}
	cc := core.NewCrackerColumnFromPairs(pairs, opts)
	for _, b := range payload.Boundaries {
		if b.Pos < 0 || b.Pos > len(pairs) {
			return nil, fmt.Errorf("persist: corrupt snapshot: boundary position %d outside [0,%d]", b.Pos, len(pairs))
		}
		cc.Index().Insert(crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive}, b.Pos)
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("persist: snapshot violates cracking invariants: %w", err)
	}
	return cc, nil
}

// SaveEngine writes a snapshot of the engine's adaptive state (cracked
// columns, sideways map sets, planner estimates) to w. Base table data
// is not included; RestoreEngine expects an engine over the same
// catalog data.
func SaveEngine(w io.Writer, e *engine.Engine) error {
	if err := writeHeader(w); err != nil {
		return fmt.Errorf("persist: writing header: %w", err)
	}
	state := e.Snapshot()
	snap := snapshot{FormatVersion: formatVersion, Kind: kindEngine, Engine: &state}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// RestoreEngine reads an engine snapshot from r and applies it to e,
// which must be a fresh engine over a catalog holding the same data the
// snapshot was taken over. Every restored structure is validated
// against the catalog.
func RestoreEngine(r io.Reader, e *engine.Engine) error {
	snap, err := decode(r, kindEngine)
	if err != nil {
		return err
	}
	if snap.Engine == nil {
		return fmt.Errorf("persist: corrupt snapshot: engine payload missing")
	}
	return e.Restore(*snap.Engine)
}

// SaveCluster writes a shard cluster's adaptive state — one engine
// state per shard, in shard order — to w. Base table data is not
// included; RestoreCluster expects a cluster striped over the same
// catalog data with the same shard count.
func SaveCluster(w io.Writer, states []engine.State) error {
	if len(states) == 0 {
		return fmt.Errorf("persist: cluster snapshot needs at least one shard state")
	}
	if err := writeHeader(w); err != nil {
		return fmt.Errorf("persist: writing header: %w", err)
	}
	payload := &clusterPayload{Shards: len(states), States: states}
	snap := snapshot{FormatVersion: formatVersion, Kind: kindCluster, Cluster: payload}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// RestoreCluster reads a cluster snapshot from r and returns the
// per-shard engine states in shard order. The caller applies each
// state to the matching shard of a freshly striped cluster.
func RestoreCluster(r io.Reader) ([]engine.State, error) {
	snap, err := decode(r, kindCluster)
	if err != nil {
		return nil, err
	}
	payload := snap.Cluster
	if payload == nil {
		return nil, fmt.Errorf("persist: corrupt snapshot: cluster payload missing")
	}
	if payload.Shards != len(payload.States) || payload.Shards == 0 {
		return nil, fmt.Errorf("persist: corrupt snapshot: cluster claims %d shards but holds %d states", payload.Shards, len(payload.States))
	}
	return payload.States, nil
}

// SaveClusterFile writes a cluster snapshot to the named file,
// creating or truncating it.
func SaveClusterFile(path string, states []engine.State) error {
	return saveToFile(path, func(w io.Writer) error { return SaveCluster(w, states) })
}

// RestoreClusterFile reads a cluster snapshot from the named file.
func RestoreClusterFile(path string) ([]engine.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return RestoreCluster(f)
}

// SaveFile writes a cracker snapshot to the named file, creating or
// truncating it.
func SaveFile(path string, cc *core.CrackerColumn) error {
	return saveToFile(path, func(w io.Writer) error { return Save(w, cc) })
}

// LoadFile reads a cracker snapshot from the named file.
func LoadFile(path string, opts core.Options) (*core.CrackerColumn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return Load(f, opts)
}

// SaveEngineFile writes an engine snapshot to the named file, creating
// or truncating it.
func SaveEngineFile(path string, e *engine.Engine) error {
	return saveToFile(path, func(w io.Writer) error { return SaveEngine(w, e) })
}

// RestoreEngineFile reads an engine snapshot from the named file and
// applies it to e.
func RestoreEngineFile(path string, e *engine.Engine) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return RestoreEngine(f, e)
}

func saveToFile(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
