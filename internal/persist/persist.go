// Package persist provides snapshot and restore for cracker columns,
// addressing the "disk based processing" and "long term maintenance of
// structures" open topics the tutorial lists: the knowledge a workload
// has invested into a cracked column (its physical order and its
// cracker index) survives a restart instead of being re-learned from
// scratch.
//
// A snapshot stores the (value, rowid) pairs in their current physical
// order together with every boundary of the cracker index, using
// encoding/gob behind a fixed-layout header. Restoring rebuilds a
// CrackerColumn that answers the next query exactly as the original
// would have.
//
// The header — an 8-byte magic string and a big-endian uint32 format
// version — is checked before any gob decoding, so a snapshot written
// by an incompatible layout (or a file that is not a snapshot at all)
// is rejected with a clear error instead of whatever
// struct-shape-dependent failure gob would produce.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/crackeridx"
)

// snapshot is the on-disk representation. Fields are exported for gob.
type snapshot struct {
	FormatVersion int
	Values        []column.Value
	Rows          []column.RowID
	Boundaries    []boundary
}

type boundary struct {
	Value     column.Value
	Inclusive bool
	Pos       int
}

// formatVersion guards against reading snapshots written by an
// incompatible future layout. Version 2 introduced the fixed-layout
// header; version 1 files (bare gob) predate it and are rejected at the
// magic check.
const formatVersion = 2

// magic identifies a snapshot file. It is checked — together with the
// header version — before any gob decoding.
var magic = [8]byte{'A', 'D', 'I', 'X', 'S', 'N', 'A', 'P'}

// writeHeader emits the fixed-layout snapshot header.
func writeHeader(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.BigEndian, uint32(formatVersion))
}

// readHeader validates the magic and returns the header version.
func readHeader(r io.Reader) (uint32, error) {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return 0, fmt.Errorf("persist: reading snapshot header: %w", err)
	}
	if !bytes.Equal(got[:], magic[:]) {
		return 0, fmt.Errorf("persist: not a snapshot file (bad magic %q)", got)
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return 0, fmt.Errorf("persist: reading snapshot version: %w", err)
	}
	return version, nil
}

// Save writes a snapshot of the cracker column to w.
func Save(w io.Writer, cc *core.CrackerColumn) error {
	if err := writeHeader(w); err != nil {
		return fmt.Errorf("persist: writing header: %w", err)
	}
	pairs := cc.Pairs()
	snap := snapshot{
		FormatVersion: formatVersion,
		Values:        make([]column.Value, len(pairs)),
		Rows:          make([]column.RowID, len(pairs)),
	}
	for i, p := range pairs {
		snap.Values[i] = p.Val
		snap.Rows[i] = p.Row
	}
	for _, b := range cc.Index().Boundaries() {
		snap.Boundaries = append(snap.Boundaries, boundary{Value: b.Value, Inclusive: b.Inclusive, Pos: b.Pos})
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot from r and rebuilds the cracker column with the
// given options. The format version is verified before the payload is
// decoded, and the restored column is validated before it is returned.
func Load(r io.Reader, opts core.Options) (*core.CrackerColumn, error) {
	version, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("persist: unsupported snapshot format version %d (this build reads version %d)", version, formatVersion)
	}
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decode: %w", err)
	}
	if snap.FormatVersion != formatVersion {
		return nil, fmt.Errorf("persist: snapshot payload version %d contradicts header version %d", snap.FormatVersion, formatVersion)
	}
	if len(snap.Values) != len(snap.Rows) {
		return nil, fmt.Errorf("persist: corrupt snapshot: %d values but %d rows", len(snap.Values), len(snap.Rows))
	}
	pairs := make(column.Pairs, len(snap.Values))
	for i := range snap.Values {
		pairs[i] = column.Pair{Val: snap.Values[i], Row: snap.Rows[i]}
	}
	cc := core.NewCrackerColumnFromPairs(pairs, opts)
	for _, b := range snap.Boundaries {
		if b.Pos < 0 || b.Pos > len(pairs) {
			return nil, fmt.Errorf("persist: corrupt snapshot: boundary position %d outside [0,%d]", b.Pos, len(pairs))
		}
		cc.Index().Insert(crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive}, b.Pos)
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("persist: snapshot violates cracking invariants: %w", err)
	}
	return cc, nil
}

// SaveFile writes a snapshot to the named file, creating or truncating
// it.
func SaveFile(path string, cc *core.CrackerColumn) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := Save(f, cc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from the named file.
func LoadFile(path string, opts core.Options) (*core.CrackerColumn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return Load(f, opts)
}
