package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/workload"
)

func crackedColumn(t *testing.T, n, queries int) (*core.CrackerColumn, []column.Value) {
	t.Helper()
	vals := workload.DataUniform(1, n, n)
	cc := core.NewCrackerColumn(vals, core.DefaultOptions())
	gen := workload.NewUniform(2, 0, column.Value(n), 0.02)
	for i := 0; i < queries; i++ {
		cc.Count(gen.Next())
	}
	return cc, vals
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cc, vals := crackedColumn(t, 20000, 50)
	var buf bytes.Buffer
	if err := Save(&buf, cc); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != cc.Len() {
		t.Fatalf("restored %d tuples, want %d", restored.Len(), cc.Len())
	}
	if restored.NumPieces() != cc.NumPieces() {
		t.Fatalf("restored %d pieces, want %d", restored.NumPieces(), cc.NumPieces())
	}
	// The restored column must answer queries identically to a scan and
	// to the original.
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(20000))
		r := column.NewRange(lo, lo+500)
		want := 0
		for _, v := range vals {
			if r.Contains(v) {
				want++
			}
		}
		if got := restored.Count(r); got != want {
			t.Fatalf("query %s: got %d want %d", r, got, want)
		}
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoredColumnRetainsConvergence(t *testing.T) {
	cc, _ := crackedColumn(t, 100000, 300)
	var buf bytes.Buffer
	if err := Save(&buf, cc); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh column pays ~a scan for its first query; the restored one
	// must not, because it keeps the boundaries the workload paid for.
	fresh := core.NewCrackerColumn(workload.DataUniform(1, 100000, 100000), core.DefaultOptions())
	r := column.NewRange(40000, 41000)

	beforeFresh := fresh.Cost().Total()
	fresh.Count(r)
	freshCost := fresh.Cost().Total() - beforeFresh

	beforeRestored := restored.Cost().Total()
	restored.Count(r)
	restoredCost := restored.Cost().Total() - beforeRestored

	if restoredCost*10 > freshCost {
		t.Fatalf("restored column should answer far cheaper than a fresh one: %d vs %d", restoredCost, freshCost)
	}
}

func TestSaveLoadFile(t *testing.T) {
	cc, _ := crackedColumn(t, 5000, 20)
	path := filepath.Join(t.TempDir(), "col.snapshot")
	if err := SaveFile(path, cc); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != cc.Len() {
		t.Fatalf("restored %d tuples, want %d", restored.Len(), cc.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing"), core.DefaultOptions()); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, err := Load(strings.NewReader("this is not a snapshot"), core.DefaultOptions())
	if err == nil {
		t.Fatal("garbage input must fail to decode")
	}
	// The rejection must come from the magic check, before gob ever
	// sees the data, and must say so clearly.
	if !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("garbage must be rejected at the magic check, got: %v", err)
	}
}

func TestLoadRejectsTruncatedHeader(t *testing.T) {
	for _, partial := range []string{"", "ADIX", "ADIXSNAP", "ADIXSNAP\x00"} {
		if _, err := Load(strings.NewReader(partial), core.DefaultOptions()); err == nil {
			t.Fatalf("truncated header %q must be rejected", partial)
		}
	}
}

func TestLoadRejectsMismatchedFormatVersion(t *testing.T) {
	// A well-formed header carrying a future version must be rejected
	// with a clear error before any payload decoding — the payload here
	// is garbage that gob would choke on unintelligibly.
	var buf bytes.Buffer
	buf.Write(magic[:])
	if err := binary.Write(&buf, binary.BigEndian, uint32(99)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("future payload gob cannot parse")
	_, err := Load(&buf, core.DefaultOptions())
	if err == nil {
		t.Fatal("wrong format version must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "version 99") || !strings.Contains(msg, "version 2") {
		t.Fatalf("version error must name both versions, got: %v", err)
	}
}

func TestLoadRejectsBareGobSnapshots(t *testing.T) {
	// Version-1 files were bare gob with no header; they must fail at
	// the magic check rather than half-decode.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshot{FormatVersion: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, core.DefaultOptions()); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bare gob snapshot must fail the magic check, got: %v", err)
	}
}

func TestLoadRejectsHeaderPayloadVersionContradiction(t *testing.T) {
	// A header claiming the current version over a payload recording a
	// different one is corruption, not a version skew.
	var buf bytes.Buffer
	if err := writeHeader(&buf); err != nil {
		t.Fatal(err)
	}
	payload := snapshot{FormatVersion: 1, Values: []column.Value{1}, Rows: []column.RowID{0}}
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, core.DefaultOptions()); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("payload/header version contradiction must be rejected, got: %v", err)
	}
}

func encodeSnapshot(t *testing.T, snap snapshot) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	base := snapshot{
		FormatVersion: formatVersion,
		Values:        []column.Value{1, 2, 3},
		Rows:          []column.RowID{0, 1, 2},
	}

	mismatched := base
	mismatched.Rows = []column.RowID{0}
	if _, err := Load(encodeSnapshot(t, mismatched), core.DefaultOptions()); err == nil {
		t.Fatal("mismatched value/row lengths must be rejected")
	}

	badBoundaryPos := base
	badBoundaryPos.Boundaries = []boundary{{Value: 2, Pos: 99}}
	if _, err := Load(encodeSnapshot(t, badBoundaryPos), core.DefaultOptions()); err == nil {
		t.Fatal("out-of-range boundary positions must be rejected")
	}

	// A boundary whose position contradicts the stored physical order
	// must be caught by the cracking-invariant validation.
	badInvariant := base
	badInvariant.Values = []column.Value{9, 1, 5} // value 9 sits left of the "<2" split below
	badInvariant.Boundaries = []boundary{{Value: 2, Pos: 2}}
	if _, err := Load(encodeSnapshot(t, badInvariant), core.DefaultOptions()); err == nil {
		t.Fatal("snapshots violating cracking invariants must be rejected")
	}

	// The untampered base snapshot loads fine.
	if _, err := Load(encodeSnapshot(t, base), core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}
