package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/updates"
	"adaptiveindex/internal/workload"
)

func crackedColumn(t *testing.T, n, queries int) (*core.CrackerColumn, []column.Value) {
	t.Helper()
	vals := workload.DataUniform(1, n, n)
	cc := core.NewCrackerColumn(vals, core.DefaultOptions())
	gen := workload.NewUniform(2, 0, column.Value(n), 0.02)
	for i := 0; i < queries; i++ {
		cc.Count(gen.Next())
	}
	return cc, vals
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cc, vals := crackedColumn(t, 20000, 50)
	var buf bytes.Buffer
	if err := Save(&buf, cc); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != cc.Len() {
		t.Fatalf("restored %d tuples, want %d", restored.Len(), cc.Len())
	}
	if restored.NumPieces() != cc.NumPieces() {
		t.Fatalf("restored %d pieces, want %d", restored.NumPieces(), cc.NumPieces())
	}
	// The restored column must answer queries identically to a scan and
	// to the original.
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(20000))
		r := column.NewRange(lo, lo+500)
		want := 0
		for _, v := range vals {
			if r.Contains(v) {
				want++
			}
		}
		if got := restored.Count(r); got != want {
			t.Fatalf("query %s: got %d want %d", r, got, want)
		}
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoredColumnRetainsConvergence(t *testing.T) {
	cc, _ := crackedColumn(t, 100000, 300)
	var buf bytes.Buffer
	if err := Save(&buf, cc); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh column pays ~a scan for its first query; the restored one
	// must not, because it keeps the boundaries the workload paid for.
	fresh := core.NewCrackerColumn(workload.DataUniform(1, 100000, 100000), core.DefaultOptions())
	r := column.NewRange(40000, 41000)

	beforeFresh := fresh.Cost().Total()
	fresh.Count(r)
	freshCost := fresh.Cost().Total() - beforeFresh

	beforeRestored := restored.Cost().Total()
	restored.Count(r)
	restoredCost := restored.Cost().Total() - beforeRestored

	if restoredCost*10 > freshCost {
		t.Fatalf("restored column should answer far cheaper than a fresh one: %d vs %d", restoredCost, freshCost)
	}
}

func TestSaveLoadFile(t *testing.T) {
	cc, _ := crackedColumn(t, 5000, 20)
	path := filepath.Join(t.TempDir(), "col.snapshot")
	if err := SaveFile(path, cc); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != cc.Len() {
		t.Fatalf("restored %d tuples, want %d", restored.Len(), cc.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing"), core.DefaultOptions()); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, err := Load(strings.NewReader("this is not a snapshot"), core.DefaultOptions())
	if err == nil {
		t.Fatal("garbage input must fail to decode")
	}
	// The rejection must come from the magic check, before gob ever
	// sees the data, and must say so clearly.
	if !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("garbage must be rejected at the magic check, got: %v", err)
	}
}

func TestLoadRejectsTruncatedHeader(t *testing.T) {
	for _, partial := range []string{"", "ADIX", "ADIXSNAP", "ADIXSNAP\x00"} {
		if _, err := Load(strings.NewReader(partial), core.DefaultOptions()); err == nil {
			t.Fatalf("truncated header %q must be rejected", partial)
		}
	}
}

func TestLoadRejectsMismatchedFormatVersion(t *testing.T) {
	// A well-formed header carrying a future version must be rejected
	// with a clear error before any payload decoding — the payload here
	// is garbage that gob would choke on unintelligibly.
	var buf bytes.Buffer
	buf.Write(magic[:])
	if err := binary.Write(&buf, binary.BigEndian, uint32(99)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("future payload gob cannot parse")
	_, err := Load(&buf, core.DefaultOptions())
	if err == nil {
		t.Fatal("wrong format version must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "version 99") || !strings.Contains(msg, "version 5") {
		t.Fatalf("version error must name both versions, got: %v", err)
	}
}

func TestLoadRejectsV4WithRegenerateHint(t *testing.T) {
	// Version-4 files (single-engine snapshots predating cluster
	// payloads) are no longer readable; as with v2/v3, the error must
	// tell the operator what to do about it.
	var buf bytes.Buffer
	buf.Write(magic[:])
	if err := binary.Write(&buf, binary.BigEndian, uint32(4)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("old v4 gob payload")
	err := RestoreEngine(bytes.NewReader(buf.Bytes()), engine.New(engine.NewCatalog(), core.DefaultOptions()))
	if err == nil {
		t.Fatal("v4 snapshot must be rejected")
	}
	if !strings.Contains(err.Error(), "version 4") || !strings.Contains(err.Error(), "regenerate") ||
		!strings.Contains(err.Error(), "crackserve") {
		t.Fatalf("v4 rejection must tell the operator to regenerate via crackserve, got: %v", err)
	}
}

func TestLoadRejectsV3WithRegenerateHint(t *testing.T) {
	// Version-3 files (read-only engine payloads, no write state) are
	// no longer readable; as with v2, the error must tell the operator
	// what to do about it.
	var buf bytes.Buffer
	buf.Write(magic[:])
	if err := binary.Write(&buf, binary.BigEndian, uint32(3)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("old v3 gob payload")
	err := RestoreEngine(bytes.NewReader(buf.Bytes()), engine.New(engine.NewCatalog(), core.DefaultOptions()))
	if err == nil {
		t.Fatal("v3 snapshot must be rejected")
	}
	if !strings.Contains(err.Error(), "version 3") || !strings.Contains(err.Error(), "regenerate") ||
		!strings.Contains(err.Error(), "crackserve") {
		t.Fatalf("v3 rejection must tell the operator to regenerate via crackserve, got: %v", err)
	}
}

func TestLoadRejectsV2WithRegenerateHint(t *testing.T) {
	// Version-2 files (single-column snapshots without a payload kind)
	// are no longer readable; the error must tell the operator what to
	// do about it, not just that decoding failed.
	var buf bytes.Buffer
	buf.Write(magic[:])
	if err := binary.Write(&buf, binary.BigEndian, uint32(2)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("old v2 gob payload")
	for _, load := range []func() error{
		func() error { _, err := Load(bytes.NewReader(buf.Bytes()), core.DefaultOptions()); return err },
		func() error {
			return RestoreEngine(bytes.NewReader(buf.Bytes()), engine.New(engine.NewCatalog(), core.DefaultOptions()))
		},
	} {
		err := load()
		if err == nil {
			t.Fatal("v2 snapshot must be rejected")
		}
		if !strings.Contains(err.Error(), "version 2") || !strings.Contains(err.Error(), "regenerate") ||
			!strings.Contains(err.Error(), "crackserve") {
			t.Fatalf("v2 rejection must tell the operator to regenerate via crackserve, got: %v", err)
		}
	}
}

func TestLoadRejectsBareGobSnapshots(t *testing.T) {
	// Version-1 files were bare gob with no header; they must fail at
	// the magic check rather than half-decode.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshot{FormatVersion: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, core.DefaultOptions()); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bare gob snapshot must fail the magic check, got: %v", err)
	}
}

func encodeSnapshot(t *testing.T, snap snapshot) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestLoadRejectsHeaderPayloadVersionContradiction(t *testing.T) {
	// A header claiming the current version over a payload recording a
	// different one is corruption, not a version skew.
	payload := snapshot{
		FormatVersion: 1,
		Kind:          kindCracker,
		Cracker:       &crackerPayload{Values: []column.Value{1}, Rows: []column.RowID{0}},
	}
	if _, err := Load(encodeSnapshot(t, payload), core.DefaultOptions()); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("payload/header version contradiction must be rejected, got: %v", err)
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	base := snapshot{
		FormatVersion: formatVersion,
		Kind:          kindCracker,
		Cracker: &crackerPayload{
			Values: []column.Value{1, 2, 3},
			Rows:   []column.RowID{0, 1, 2},
		},
	}
	clone := func() snapshot {
		snap := base
		payload := *base.Cracker
		snap.Cracker = &payload
		return snap
	}

	mismatched := clone()
	mismatched.Cracker.Rows = []column.RowID{0}
	if _, err := Load(encodeSnapshot(t, mismatched), core.DefaultOptions()); err == nil {
		t.Fatal("mismatched value/row lengths must be rejected")
	}

	badBoundaryPos := clone()
	badBoundaryPos.Cracker.Boundaries = []boundary{{Value: 2, Pos: 99}}
	if _, err := Load(encodeSnapshot(t, badBoundaryPos), core.DefaultOptions()); err == nil {
		t.Fatal("out-of-range boundary positions must be rejected")
	}

	// A boundary whose position contradicts the stored physical order
	// must be caught by the cracking-invariant validation.
	badInvariant := clone()
	badInvariant.Cracker.Values = []column.Value{9, 1, 5} // value 9 sits left of the "<2" split below
	badInvariant.Cracker.Boundaries = []boundary{{Value: 2, Pos: 2}}
	if _, err := Load(encodeSnapshot(t, badInvariant), core.DefaultOptions()); err == nil {
		t.Fatal("snapshots violating cracking invariants must be rejected")
	}

	missingPayload := snapshot{FormatVersion: formatVersion, Kind: kindCracker}
	if _, err := Load(encodeSnapshot(t, missingPayload), core.DefaultOptions()); err == nil {
		t.Fatal("missing payloads must be rejected")
	}

	// The untampered base snapshot loads fine.
	if _, err := Load(encodeSnapshot(t, base), core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

// testCatalog builds a deterministic two-table catalog.
func testCatalog(t *testing.T, seed int64, n int) *engine.Catalog {
	t.Helper()
	cat := engine.NewCatalog()
	for ti, name := range []string{"orders", "events"} {
		tab := engine.NewTable(name)
		for ci, col := range []string{"c0", "c1", "c2"} {
			vals := workload.DataUniform(seed+int64(ti*10+ci), n, n)
			if err := tab.AddColumn(col, vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := cat.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestEngineSnapshotRoundTrip is the v3 contract: cracked columns,
// materialised sideways maps and planner state all survive a
// save/restore cycle, the restored engine answers identically, and
// replaying the converged workload does not crack further.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	const n = 20000
	cat := testCatalog(t, 1, n)
	eng := engine.New(cat, core.DefaultOptions())

	queries := workload.Queries(workload.NewUniform(5, 0, n, 0.02), 120)
	answers := make([]int, len(queries))
	for i, r := range queries {
		// Mix auto-routed select-project traffic (builds maps, feeds the
		// planner) with explicit cracking selections on a second table.
		res, err := eng.Run(engine.Query{Table: "orders", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathAuto})
		if err != nil {
			t.Fatal(err)
		}
		answers[i] = len(res.Rows)
		if _, err := eng.Run(engine.Query{Table: "events", Column: "c0", R: r, Path: engine.PathCracking}); err != nil {
			t.Fatal(err)
		}
	}
	beforeStructs := eng.Structures()
	beforePlans := eng.PlanStats()
	if beforeStructs.CrackerPieces == 0 || beforeStructs.MapPieces == 0 {
		t.Fatalf("workload built no persistable pieces: %+v", beforeStructs)
	}

	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatal(err)
	}

	restored := engine.New(testCatalog(t, 1, n), core.DefaultOptions())
	if err := RestoreEngine(&buf, restored); err != nil {
		t.Fatal(err)
	}
	afterStructs := restored.Structures()
	if afterStructs.Crackers != beforeStructs.Crackers || afterStructs.MapSets != beforeStructs.MapSets {
		t.Fatalf("restored structures %+v, want %+v", afterStructs, beforeStructs)
	}
	// Parallel structures are rebuilt on demand, not persisted; the
	// cracker and map pieces must round-trip exactly.
	if afterStructs.CrackerPieces != beforeStructs.CrackerPieces || afterStructs.MapPieces != beforeStructs.MapPieces {
		t.Fatalf("restored pieces %+v, want %+v", afterStructs, beforeStructs)
	}
	afterPlans := restored.PlanStats()
	if len(afterPlans) != len(beforePlans) {
		t.Fatalf("restored %d planner states, want %d", len(afterPlans), len(beforePlans))
	}
	for i := range beforePlans {
		if afterPlans[i].Phase != beforePlans[i].Phase || afterPlans[i].Chosen != beforePlans[i].Chosen {
			t.Fatalf("planner state %d: restored %s/%s, want %s/%s", i,
				afterPlans[i].Phase, afterPlans[i].Chosen, beforePlans[i].Phase, beforePlans[i].Chosen)
		}
	}

	// Replay the workload twice: identical answers, and the second
	// replay must add no cracks. (The first may add a few — queries that
	// probed the non-chosen path during the original explore phase now
	// route to the restored planner's choice, whose structure finishes
	// absorbing their bounds.)
	replay := func() {
		for i, r := range queries {
			res, err := restored.Run(engine.Query{Table: "orders", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathAuto})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != answers[i] {
				t.Fatalf("query %d: restored engine returned %d rows, want %d", i, len(res.Rows), answers[i])
			}
		}
	}
	replay()
	mid := restored.Structures()
	replay()
	final := restored.Structures()
	if final.CrackerPieces != mid.CrackerPieces || final.MapPieces != mid.MapPieces {
		t.Fatalf("replay did not converge after restore: %+v -> %+v", mid, final)
	}
}

// TestEngineSnapshotRoundTripsPendingWrites is the v4 contract: rows
// appended and tombstoned through the write path, and pending
// (unmerged) update buffers, all survive a save/restore cycle — the
// restored engine answers identically and still holds the updates as
// pending, merging them only when a query touches them.
func TestEngineSnapshotRoundTripsPendingWrites(t *testing.T) {
	const n = 10000
	eng := engine.New(testCatalog(t, 1, n), core.DefaultOptions())
	eng.SetMergePolicy(updates.MergeGradually)

	// Crack a little, then write: the inserts land far outside the
	// cracked ranges so they stay pending at snapshot time.
	for _, r := range workload.Queries(workload.NewUniform(3, 0, n/2, 0.02), 40) {
		if _, err := eng.Run(engine.Query{Table: "orders", Column: "c0", R: r, Path: engine.PathCracking}); err != nil {
			t.Fatal(err)
		}
	}
	// A first insert batch is merged by a touching query before the
	// snapshot, so the merged-update counters are non-zero and must
	// round-trip too; the sentinel batch stays pending.
	const merged = column.Value(n + 500)
	for i := 0; i < 3; i++ {
		if _, err := eng.InsertRow("orders", []column.Value{merged, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(engine.Query{Table: "orders", Column: "c0", R: column.NewRange(merged, merged+1), Path: engine.PathCracking}); err != nil {
		t.Fatal(err)
	}
	const sentinel = column.Value(n + 1000)
	var inserted []column.RowID
	for i := 0; i < 7; i++ {
		row, err := eng.InsertRow("orders", []column.Value{sentinel, column.Value(i), column.Value(i)})
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, row)
	}
	for row := column.RowID(0); row < 5; row++ {
		if err := eng.DeleteRow("orders", row); err != nil {
			t.Fatal(err)
		}
	}
	ws := eng.WriteStats()
	if ws.PendingInserts == 0 {
		t.Fatalf("inserts were not buffered: %+v", ws)
	}
	if ws.MergedInserts != 3 {
		t.Fatalf("first batch was not merged before the snapshot: %+v", ws)
	}

	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatal(err)
	}
	restored := engine.New(testCatalog(t, 1, n), core.DefaultOptions())
	restored.SetMergePolicy(updates.MergeGradually)
	if err := RestoreEngine(&buf, restored); err != nil {
		t.Fatal(err)
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
	rws := restored.WriteStats()
	if rws.PendingInserts != ws.PendingInserts || rws.PendingDeletes != ws.PendingDeletes {
		t.Fatalf("pending buffers did not round-trip: restored %+v, want %+v", rws, ws)
	}
	if rws.Inserts != ws.Inserts || rws.Deletes != ws.Deletes {
		t.Fatalf("write counters did not round-trip: restored %+v, want %+v", rws, ws)
	}
	if rws.MergedInserts != ws.MergedInserts || rws.MergedDeletes != ws.MergedDeletes {
		t.Fatalf("merged-update counters did not round-trip: restored %+v, want %+v", rws, ws)
	}

	// A query touching the sentinel range merges the pending inserts
	// and returns the appended rows.
	res, err := restored.Run(engine.Query{Table: "orders", Column: "c0", R: column.NewRange(sentinel, sentinel+1), Path: engine.PathCracking})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(inserted) {
		t.Fatalf("restored engine returned %d sentinel rows, want %d", len(res.Rows), len(inserted))
	}
	after := restored.WriteStats()
	if after.MergedInserts != ws.MergedInserts+uint64(len(inserted)) {
		t.Fatalf("sentinel query merged %d inserts, want %d more than %d", after.MergedInserts, len(inserted), ws.MergedInserts)
	}
	// The deleted base rows stay invisible on every path. The scanned
	// range [0, n) holds only base rows: the merged and sentinel
	// inserts all carry values above n.
	const wantBase = n - 5
	for _, path := range []engine.AccessPath{engine.PathScan, engine.PathCracking} {
		res, err := restored.Run(engine.Query{Table: "orders", Column: "c0", R: column.NewRange(0, column.Value(n)), Path: path})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != wantBase {
			t.Fatalf("%s: full-range count %d, want %d live base rows", path, res.Count, wantBase)
		}
	}
}

// TestRestoredColumnKeepsSnapshotPolicy: the per-cracker merge policy
// rides in the snapshot and survives a restore into an engine left at
// a different default. Complete-policy behaviour is observable: one
// query touching any pending update drains the whole buffer.
func TestRestoredColumnKeepsSnapshotPolicy(t *testing.T) {
	const n = 5000
	eng := engine.New(testCatalog(t, 1, n), core.DefaultOptions())
	eng.SetMergePolicy(updates.MergeCompletely)
	if _, err := eng.Run(engine.Query{Table: "orders", Column: "c0", R: column.NewRange(0, 100), Path: engine.PathCracking}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// Two sentinel clusters far apart: under complete merging, one
		// query touching either cluster merges both.
		if _, err := eng.InsertRow("orders", []column.Value{column.Value(n + 1000 + i*2000), 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatal(err)
	}
	restored := engine.New(testCatalog(t, 1, n), core.DefaultOptions()) // default: gradual
	if err := RestoreEngine(&buf, restored); err != nil {
		t.Fatal(err)
	}
	if restored.WriteStats().PendingInserts != 4 {
		t.Fatalf("pending buffers did not round-trip: %+v", restored.WriteStats())
	}
	if _, err := restored.Run(engine.Query{Table: "orders", Column: "c0", R: column.NewRange(column.Value(n+1000), column.Value(n+1001)), Path: engine.PathCracking}); err != nil {
		t.Fatal(err)
	}
	if got := restored.WriteStats().PendingInserts; got != 0 {
		t.Fatalf("restored column behaved gradually (pending=%d after a touching query), want the snapshot's complete policy", got)
	}
}

func TestRestoreEngineRejectsMismatchedCatalog(t *testing.T) {
	const n = 5000
	eng := engine.New(testCatalog(t, 1, n), core.DefaultOptions())
	for _, r := range workload.Queries(workload.NewUniform(3, 0, n, 0.02), 30) {
		if _, err := eng.Run(engine.Query{Table: "orders", Column: "c0", R: r, Path: engine.PathCracking}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, eng); err != nil {
		t.Fatal(err)
	}
	// Different seed: same schema, different data. The cracked order in
	// the snapshot does not belong to this catalog.
	other := engine.New(testCatalog(t, 99, n), core.DefaultOptions())
	if err := RestoreEngine(&buf, other); err == nil {
		t.Fatal("restoring a snapshot over different data must fail validation")
	}
}

func TestEngineSnapshotFileRoundTrip(t *testing.T) {
	const n = 3000
	cat := testCatalog(t, 2, n)
	eng := engine.New(cat, core.DefaultOptions())
	for _, r := range workload.Queries(workload.NewUniform(4, 0, n, 0.02), 20) {
		if _, err := eng.Run(engine.Query{Table: "orders", Column: "c0", R: r, Path: engine.PathAuto}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "engine.snapshot")
	if err := SaveEngineFile(path, eng); err != nil {
		t.Fatal(err)
	}
	restored := engine.New(testCatalog(t, 2, n), core.DefaultOptions())
	if err := RestoreEngineFile(path, restored); err != nil {
		t.Fatal(err)
	}
	got, want := restored.Structures(), eng.Structures()
	if got.Crackers != want.Crackers || got.MapSets != want.MapSets ||
		got.CrackerPieces != want.CrackerPieces || got.MapPieces != want.MapPieces {
		t.Fatalf("restored structures %+v, want %+v", got, want)
	}
	if err := RestoreEngineFile(filepath.Join(t.TempDir(), "missing"), restored); err == nil {
		t.Fatal("restoring a missing file must fail")
	}
}

// TestClusterSnapshotRoundTrip is the v5 contract: a cluster snapshot
// carries one engine state per shard, in shard order, and each state
// restores into a fresh engine over the matching stripe.
func TestClusterSnapshotRoundTrip(t *testing.T) {
	const n = 4000
	// Two independent engines over different data stand in for two
	// shards; the cluster container does not care how the stripes were
	// cut, only that states round-trip in order.
	engines := make([]*engine.Engine, 2)
	var states []engine.State
	for s := range engines {
		engines[s] = engine.New(testCatalog(t, int64(10+s), n), core.DefaultOptions())
		for _, r := range workload.Queries(workload.NewUniform(int64(20+s), 0, n, 0.02), 30) {
			if _, err := engines[s].Run(engine.Query{Table: "orders", Column: "c0", R: r, Path: engine.PathCracking}); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, engines[s].Snapshot())
	}

	path := filepath.Join(t.TempDir(), "cluster.snapshot")
	if err := SaveClusterFile(path, states); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreClusterFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(states) {
		t.Fatalf("restored %d shard states, want %d", len(restored), len(states))
	}
	for s := range restored {
		fresh := engine.New(testCatalog(t, int64(10+s), n), core.DefaultOptions())
		if err := fresh.Restore(restored[s]); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		got, want := fresh.Structures(), engines[s].Structures()
		if got.CrackerPieces != want.CrackerPieces {
			t.Fatalf("shard %d restored %d cracker pieces, want %d", s, got.CrackerPieces, want.CrackerPieces)
		}
	}

	// The cluster kind is not interchangeable with the engine kind.
	if err := RestoreEngineFile(path, engine.New(testCatalog(t, 10, n), core.DefaultOptions())); err == nil ||
		!strings.Contains(err.Error(), `"cluster"`) {
		t.Fatalf("engine restore from a cluster snapshot must name the kind mismatch, got: %v", err)
	}

	// An empty cluster is not a snapshot.
	if err := SaveCluster(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("saving an empty cluster must fail")
	}

	// A payload whose shard count contradicts its states is corrupt.
	lying := snapshot{FormatVersion: formatVersion, Kind: kindCluster,
		Cluster: &clusterPayload{Shards: 3, States: restored}}
	if _, err := RestoreCluster(encodeSnapshot(t, lying)); err == nil ||
		!strings.Contains(err.Error(), "3 shards") {
		t.Fatalf("shard-count mismatch must be rejected, got: %v", err)
	}
}
