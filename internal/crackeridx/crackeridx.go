// Package crackeridx implements the cracker index: a balanced binary
// search tree that records the piece boundaries a cracked column has
// accumulated so far.
//
// Database cracking physically reorganises a copy of the column (the
// cracker column) while answering range selections. Every reorganisation
// step introduces a boundary: a position p and a pivot value v such that
// all values stored before p are smaller than (or at most, for inclusive
// boundaries) v, and all values at or after p are at least (or greater
// than) v. The cracker index stores these boundaries so that future
// queries can narrow their work to the one or two pieces that still
// contain unsorted data for their predicate. The original prototype in
// MonetDB uses an AVL tree; this package does the same.
package crackeridx

import (
	"fmt"
	"sort"

	"adaptiveindex/internal/column"
)

// Bound identifies a boundary pivot. Inclusive distinguishes the
// boundary "values <= Value are to the left" (true) from
// "values < Value are to the left" (false). For the same Value the
// exclusive boundary orders before the inclusive one, because the
// position of the "< v" split can never exceed the position of the
// "<= v" split.
type Bound struct {
	Value     column.Value
	Inclusive bool
}

// Compare orders bounds as described above: by value, then exclusive
// before inclusive. It returns -1, 0 or +1.
func (b Bound) Compare(other Bound) int {
	switch {
	case b.Value < other.Value:
		return -1
	case b.Value > other.Value:
		return 1
	case b.Inclusive == other.Inclusive:
		return 0
	case !b.Inclusive:
		return -1
	default:
		return 1
	}
}

// String renders the bound as "<v" or "<=v".
func (b Bound) String() string {
	if b.Inclusive {
		return fmt.Sprintf("<=%d", b.Value)
	}
	return fmt.Sprintf("<%d", b.Value)
}

// Boundary is a bound together with the array position it splits the
// cracker column at.
type Boundary struct {
	Bound
	Pos int
}

// Piece describes a maximal contiguous region of the cracker column
// whose internal order is still unknown. Lower/Upper carry the bounds
// established by the neighbouring boundaries; HasLower/HasUpper are
// false for the first and last piece respectively.
type Piece struct {
	Start, End         int
	Lower, Upper       Bound
	HasLower, HasUpper bool
}

type node struct {
	bound       Bound
	pos         int
	left, right *node
	height      int
}

// Index is the cracker index. The zero value is an empty index ready
// for use. Index is not safe for concurrent use.
type Index struct {
	root *node
	size int
}

// New returns an empty cracker index.
func New() *Index { return &Index{} }

// Len returns the number of boundaries recorded.
func (ix *Index) Len() int { return ix.size }

// Lookup returns the position recorded for the exact bound b.
func (ix *Index) Lookup(b Bound) (int, bool) {
	n := ix.root
	for n != nil {
		switch c := b.Compare(n.bound); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.pos, true
		}
	}
	return 0, false
}

// Insert records that bound b splits the column at position pos. If the
// bound already exists its position is overwritten.
func (ix *Index) Insert(b Bound, pos int) {
	ix.root = ix.insert(ix.root, b, pos)
}

func (ix *Index) insert(n *node, b Bound, pos int) *node {
	if n == nil {
		ix.size++
		return &node{bound: b, pos: pos, height: 1}
	}
	switch c := b.Compare(n.bound); {
	case c < 0:
		n.left = ix.insert(n.left, b, pos)
	case c > 0:
		n.right = ix.insert(n.right, b, pos)
	default:
		n.pos = pos
		return n
	}
	return rebalance(n)
}

// Delete removes the boundary for bound b if present and reports
// whether it was removed. It is used by update policies that merge
// pieces back together.
func (ix *Index) Delete(b Bound) bool {
	var deleted bool
	ix.root, deleted = ix.delete(ix.root, b)
	if deleted {
		ix.size--
	}
	return deleted
}

func (ix *Index) delete(n *node, b Bound) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch c := b.Compare(n.bound); {
	case c < 0:
		n.left, deleted = ix.delete(n.left, b)
	case c > 0:
		n.right, deleted = ix.delete(n.right, b)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.bound, n.pos = succ.bound, succ.pos
		n.right, _ = ix.delete(n.right, succ.bound)
	}
	if !deleted {
		return n, false
	}
	return rebalance(n), true
}

// PieceFor returns the contiguous region of the column (given its total
// length n) that must be inspected to establish bound b. If the bound is
// already recorded, exact is true and exactPos holds its position; the
// caller does not need to reorganise anything. Otherwise [start, end)
// delimits the piece that has to be cracked, and lower/upper describe
// the boundaries that enclose it (if any).
func (ix *Index) PieceFor(b Bound, n int) (piece Piece, exactPos int, exact bool) {
	piece = Piece{Start: 0, End: n}
	cur := ix.root
	for cur != nil {
		switch c := b.Compare(cur.bound); {
		case c == 0:
			return piece, cur.pos, true
		case c < 0:
			piece.End = cur.pos
			piece.Upper = cur.bound
			piece.HasUpper = true
			cur = cur.left
		default:
			piece.Start = cur.pos
			piece.Lower = cur.bound
			piece.HasLower = true
			cur = cur.right
		}
	}
	return piece, 0, false
}

// Boundaries returns all boundaries in increasing bound order.
func (ix *Index) Boundaries() []Boundary {
	out := make([]Boundary, 0, ix.size)
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, Boundary{Bound: n.bound, Pos: n.pos})
		walk(n.right)
	}
	walk(ix.root)
	return out
}

// Pieces returns the pieces the column of length n is currently divided
// into, in storage order. Zero-length pieces (two boundaries at the
// same position) are skipped.
func (ix *Index) Pieces(n int) []Piece {
	bs := ix.Boundaries()
	pieces := make([]Piece, 0, len(bs)+1)
	start := 0
	var lower Bound
	hasLower := false
	for _, b := range bs {
		if b.Pos > start {
			pieces = append(pieces, Piece{
				Start: start, End: b.Pos,
				Lower: lower, HasLower: hasLower,
				Upper: b.Bound, HasUpper: true,
			})
		}
		start = b.Pos
		lower = b.Bound
		hasLower = true
	}
	if start < n || len(pieces) == 0 {
		pieces = append(pieces, Piece{
			Start: start, End: n,
			Lower: lower, HasLower: hasLower,
		})
	}
	return pieces
}

// ShiftPositions adds delta to the position of every boundary whose
// position is greater than or equal to fromPos. Update policies use it
// when tuples are inserted into or removed from the middle of the
// cracker column.
func (ix *Index) ShiftPositions(fromPos, delta int) {
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		if n.pos >= fromPos {
			n.pos += delta
		}
		walk(n.right)
	}
	walk(ix.root)
}

// ShiftPositionsFromBound adds delta to the position of every boundary
// whose bound orders at or after b. Ripple insertion uses it: when a
// tuple is placed at the end of its piece, only the boundaries the new
// value lies to the left of may move, even if other boundaries share
// the same array position (zero-length pieces).
func (ix *Index) ShiftPositionsFromBound(b Bound, delta int) {
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		if n.bound.Compare(b) >= 0 {
			n.pos += delta
		}
		walk(n.right)
	}
	walk(ix.root)
}

// CollapseRange records the physical removal of the tuples stored in
// positions [start, end): boundaries inside the removed region collapse
// onto start and boundaries beyond it shift left by the removed width.
// Hybrid adaptive indexes use it when they migrate a cracked piece out
// of an initial partition into the final partition.
func (ix *Index) CollapseRange(start, end int) {
	if end <= start {
		return
	}
	width := end - start
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		switch {
		case n.pos > end:
			n.pos -= width
		case n.pos > start:
			n.pos = start
		}
		walk(n.right)
	}
	walk(ix.root)
}

// Clear removes all boundaries.
func (ix *Index) Clear() {
	ix.root = nil
	ix.size = 0
}

// Validate checks the structural invariants of the index against a
// column of length n: binary-search-tree ordering of the bounds, AVL
// balance, and monotonically non-decreasing positions in bound order
// within [0, n]. It returns an error describing the first violation.
// Tests and the crackview tool use it.
func (ix *Index) Validate(n int) error {
	if err := validateNode(ix.root, nil, nil); err != nil {
		return err
	}
	bs := ix.Boundaries()
	prevPos := 0
	for i, b := range bs {
		if b.Pos < 0 || b.Pos > n {
			return fmt.Errorf("boundary %s has position %d outside [0,%d]", b.Bound, b.Pos, n)
		}
		if b.Pos < prevPos {
			return fmt.Errorf("boundary %s at position %d precedes previous boundary position %d", b.Bound, b.Pos, prevPos)
		}
		prevPos = b.Pos
		if i > 0 && bs[i-1].Bound.Compare(b.Bound) >= 0 {
			return fmt.Errorf("boundaries out of order: %s then %s", bs[i-1].Bound, b.Bound)
		}
	}
	return nil
}

func validateNode(n *node, min, max *Bound) error {
	if n == nil {
		return nil
	}
	if min != nil && n.bound.Compare(*min) <= 0 {
		return fmt.Errorf("BST violation: %s not greater than %s", n.bound, *min)
	}
	if max != nil && n.bound.Compare(*max) >= 0 {
		return fmt.Errorf("BST violation: %s not less than %s", n.bound, *max)
	}
	lh, rh := height(n.left), height(n.right)
	if diff := lh - rh; diff < -1 || diff > 1 {
		return fmt.Errorf("AVL violation at %s: left height %d right height %d", n.bound, lh, rh)
	}
	if n.height != 1+maxInt(lh, rh) {
		return fmt.Errorf("stale height at %s", n.bound)
	}
	if err := validateNode(n.left, min, &n.bound); err != nil {
		return err
	}
	return validateNode(n.right, &n.bound, max)
}

// SortedPositions returns the boundary positions in bound order. It is
// a convenience for tests and tools.
func (ix *Index) SortedPositions() []int {
	bs := ix.Boundaries()
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = b.Pos
	}
	if !sort.IntsAreSorted(out) {
		// Positions are expected to be sorted whenever the index is
		// consistent; keep the raw order so Validate can report it.
		return out
	}
	return out
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func updateHeight(n *node) {
	n.height = 1 + maxInt(height(n.left), height(n.right))
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	updateHeight(y)
	updateHeight(x)
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	updateHeight(x)
	updateHeight(y)
	return y
}

func rebalance(n *node) *node {
	updateHeight(n)
	balance := height(n.left) - height(n.right)
	switch {
	case balance > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case balance < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}
