package crackeridx

import (
	"math/rand"
	"testing"

	"adaptiveindex/internal/column"
)

func TestBoundCompare(t *testing.T) {
	cases := []struct {
		a, b Bound
		want int
	}{
		{Bound{10, false}, Bound{20, false}, -1},
		{Bound{20, false}, Bound{10, false}, 1},
		{Bound{10, false}, Bound{10, false}, 0},
		{Bound{10, true}, Bound{10, true}, 0},
		{Bound{10, false}, Bound{10, true}, -1},
		{Bound{10, true}, Bound{10, false}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBoundString(t *testing.T) {
	if s := (Bound{5, false}).String(); s != "<5" {
		t.Fatalf("got %q", s)
	}
	if s := (Bound{5, true}).String(); s != "<=5" {
		t.Fatalf("got %q", s)
	}
}

func TestInsertLookup(t *testing.T) {
	ix := New()
	if _, ok := ix.Lookup(Bound{5, false}); ok {
		t.Fatal("lookup on empty index must fail")
	}
	ix.Insert(Bound{5, false}, 100)
	ix.Insert(Bound{10, false}, 200)
	ix.Insert(Bound{10, true}, 250)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	pos, ok := ix.Lookup(Bound{10, false})
	if !ok || pos != 200 {
		t.Fatalf("Lookup = %d,%v", pos, ok)
	}
	// Overwrite.
	ix.Insert(Bound{10, false}, 222)
	pos, _ = ix.Lookup(Bound{10, false})
	if pos != 222 {
		t.Fatalf("overwrite failed, pos = %d", pos)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len after overwrite = %d, want 3", ix.Len())
	}
	if err := ix.Validate(1000); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	ix := New()
	for i := 0; i < 20; i++ {
		ix.Insert(Bound{Value: column.Value(i)}, i*10)
	}
	if !ix.Delete(Bound{Value: 7}) {
		t.Fatal("Delete of existing bound must return true")
	}
	if ix.Delete(Bound{Value: 7}) {
		t.Fatal("Delete of absent bound must return false")
	}
	if _, ok := ix.Lookup(Bound{Value: 7}); ok {
		t.Fatal("deleted bound still present")
	}
	if ix.Len() != 19 {
		t.Fatalf("Len = %d, want 19", ix.Len())
	}
	if err := ix.Validate(1000); err != nil {
		t.Fatal(err)
	}
	// Delete everything.
	for i := 0; i < 20; i++ {
		ix.Delete(Bound{Value: column.Value(i)})
	}
	if ix.Len() != 0 {
		t.Fatalf("Len after deleting all = %d", ix.Len())
	}
}

func TestPieceForEmptyIndex(t *testing.T) {
	ix := New()
	piece, _, exact := ix.PieceFor(Bound{Value: 50}, 1000)
	if exact {
		t.Fatal("empty index cannot have an exact boundary")
	}
	if piece.Start != 0 || piece.End != 1000 || piece.HasLower || piece.HasUpper {
		t.Fatalf("piece = %+v, want whole column", piece)
	}
}

func TestPieceForNarrowing(t *testing.T) {
	ix := New()
	ix.Insert(Bound{Value: 10}, 100)
	ix.Insert(Bound{Value: 50}, 400)
	ix.Insert(Bound{Value: 90}, 800)

	piece, _, exact := ix.PieceFor(Bound{Value: 30}, 1000)
	if exact {
		t.Fatal("bound 30 should not be exact")
	}
	if piece.Start != 100 || piece.End != 400 {
		t.Fatalf("piece = [%d,%d), want [100,400)", piece.Start, piece.End)
	}
	if !piece.HasLower || piece.Lower.Value != 10 || !piece.HasUpper || piece.Upper.Value != 50 {
		t.Fatalf("piece bounds wrong: %+v", piece)
	}

	// Exact hit.
	_, pos, exact := ix.PieceFor(Bound{Value: 50}, 1000)
	if !exact || pos != 400 {
		t.Fatalf("exact lookup failed: %d %v", pos, exact)
	}

	// Below all boundaries.
	piece, _, _ = ix.PieceFor(Bound{Value: 5}, 1000)
	if piece.Start != 0 || piece.End != 100 {
		t.Fatalf("piece = [%d,%d), want [0,100)", piece.Start, piece.End)
	}
	// Above all boundaries.
	piece, _, _ = ix.PieceFor(Bound{Value: 95}, 1000)
	if piece.Start != 800 || piece.End != 1000 {
		t.Fatalf("piece = [%d,%d), want [800,1000)", piece.Start, piece.End)
	}
}

func TestPieces(t *testing.T) {
	ix := New()
	// Empty index: one piece covering everything.
	ps := ix.Pieces(100)
	if len(ps) != 1 || ps[0].Start != 0 || ps[0].End != 100 {
		t.Fatalf("pieces of empty index = %+v", ps)
	}

	ix.Insert(Bound{Value: 10}, 30)
	ix.Insert(Bound{Value: 20}, 60)
	ps = ix.Pieces(100)
	if len(ps) != 3 {
		t.Fatalf("expected 3 pieces, got %+v", ps)
	}
	wantStarts := []int{0, 30, 60}
	wantEnds := []int{30, 60, 100}
	for i, p := range ps {
		if p.Start != wantStarts[i] || p.End != wantEnds[i] {
			t.Fatalf("piece %d = [%d,%d), want [%d,%d)", i, p.Start, p.End, wantStarts[i], wantEnds[i])
		}
	}
	if ps[0].HasLower || !ps[0].HasUpper {
		t.Fatalf("first piece bounds wrong: %+v", ps[0])
	}
	if !ps[2].HasLower || ps[2].HasUpper {
		t.Fatalf("last piece bounds wrong: %+v", ps[2])
	}

	// A boundary at position 0 and at n must not create empty pieces.
	ix2 := New()
	ix2.Insert(Bound{Value: 1}, 0)
	ix2.Insert(Bound{Value: 99}, 100)
	ps = ix2.Pieces(100)
	if len(ps) != 1 {
		t.Fatalf("expected 1 piece, got %+v", ps)
	}
}

func TestShiftPositions(t *testing.T) {
	ix := New()
	ix.Insert(Bound{Value: 10}, 100)
	ix.Insert(Bound{Value: 20}, 200)
	ix.Insert(Bound{Value: 30}, 300)
	ix.ShiftPositions(200, 5)
	if pos, _ := ix.Lookup(Bound{Value: 10}); pos != 100 {
		t.Fatalf("boundary below fromPos must not shift, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 20}); pos != 205 {
		t.Fatalf("boundary at fromPos must shift, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 30}); pos != 305 {
		t.Fatalf("boundary above fromPos must shift, got %d", pos)
	}
}

func TestShiftPositionsFromBound(t *testing.T) {
	ix := New()
	// Two boundaries sharing the same position (an empty piece between
	// them) plus one further out.
	ix.Insert(Bound{Value: 10}, 100)
	ix.Insert(Bound{Value: 20}, 100)
	ix.Insert(Bound{Value: 30}, 200)
	// Shifting from bound <20 must leave <10 alone even though it sits
	// at the same position.
	ix.ShiftPositionsFromBound(Bound{Value: 20}, 1)
	if pos, _ := ix.Lookup(Bound{Value: 10}); pos != 100 {
		t.Fatalf("bound <10 must not move, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 20}); pos != 101 {
		t.Fatalf("bound <20 must move, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 30}); pos != 201 {
		t.Fatalf("bound <30 must move, got %d", pos)
	}
	if err := ix.Validate(1000); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseRange(t *testing.T) {
	ix := New()
	ix.Insert(Bound{Value: 10}, 100)
	ix.Insert(Bound{Value: 20}, 150)
	ix.Insert(Bound{Value: 30}, 200)
	ix.Insert(Bound{Value: 40}, 300)
	// Remove positions [100, 200): the boundary at 150 collapses to
	// 100, the one at 200 stays logically at the cut (shifts to 100),
	// and the one at 300 shifts left by 100.
	ix.CollapseRange(100, 200)
	if pos, _ := ix.Lookup(Bound{Value: 10}); pos != 100 {
		t.Fatalf("boundary at start must not move, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 20}); pos != 100 {
		t.Fatalf("boundary inside removed range must collapse to start, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 30}); pos != 100 {
		t.Fatalf("boundary at end must shift to start, got %d", pos)
	}
	if pos, _ := ix.Lookup(Bound{Value: 40}); pos != 200 {
		t.Fatalf("boundary beyond removed range must shift left, got %d", pos)
	}
	if err := ix.Validate(1000); err != nil {
		t.Fatal(err)
	}
	// Degenerate collapse is a no-op.
	ix.CollapseRange(500, 500)
	if pos, _ := ix.Lookup(Bound{Value: 40}); pos != 200 {
		t.Fatalf("no-op collapse moved a boundary to %d", pos)
	}
}

func TestClear(t *testing.T) {
	ix := New()
	ix.Insert(Bound{Value: 1}, 1)
	ix.Clear()
	if ix.Len() != 0 {
		t.Fatal("Clear must empty the index")
	}
	if _, ok := ix.Lookup(Bound{Value: 1}); ok {
		t.Fatal("Clear must drop boundaries")
	}
}

func TestValidateDetectsBadPositions(t *testing.T) {
	ix := New()
	ix.Insert(Bound{Value: 10}, 500)
	ix.Insert(Bound{Value: 20}, 100) // positions decrease in bound order
	if err := ix.Validate(1000); err == nil {
		t.Fatal("Validate must flag non-monotonic positions")
	}
	ix2 := New()
	ix2.Insert(Bound{Value: 10}, 5000)
	if err := ix2.Validate(1000); err == nil {
		t.Fatal("Validate must flag out-of-range positions")
	}
}

// Random insert/delete/lookup torture test against a reference map,
// also checking AVL balance throughout.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ix := New()
	ref := make(map[Bound]int)
	for step := 0; step < 5000; step++ {
		v := column.Value(rng.Intn(200))
		b := Bound{Value: v, Inclusive: rng.Intn(2) == 0}
		switch rng.Intn(3) {
		case 0:
			pos := rng.Intn(100000)
			ix.Insert(b, pos)
			ref[b] = pos
		case 1:
			got := ix.Delete(b)
			_, want := ref[b]
			if got != want {
				t.Fatalf("step %d: Delete(%s) = %v, want %v", step, b, got, want)
			}
			delete(ref, b)
		default:
			pos, ok := ix.Lookup(b)
			wantPos, wantOK := ref[b]
			if ok != wantOK || (ok && pos != wantPos) {
				t.Fatalf("step %d: Lookup(%s) = %d,%v want %d,%v", step, b, pos, ok, wantPos, wantOK)
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, ix.Len(), len(ref))
		}
	}
	if err := validateNode(ix.root, nil, nil); err != nil {
		t.Fatal(err)
	}
	bs := ix.Boundaries()
	if len(bs) != len(ref) {
		t.Fatalf("Boundaries returned %d entries, want %d", len(bs), len(ref))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Bound.Compare(bs[i].Bound) >= 0 {
			t.Fatal("Boundaries not sorted")
		}
	}
}

func TestSortedPositions(t *testing.T) {
	ix := New()
	ix.Insert(Bound{Value: 10}, 100)
	ix.Insert(Bound{Value: 5}, 50)
	ix.Insert(Bound{Value: 20}, 200)
	got := ix.SortedPositions()
	want := []int{50, 100, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
