// Package hybrid implements the hybrid adaptive indexing algorithms of
// Idreos, Manegold, Kuno and Graefe (PVLDB 2011) — "merging what's
// cracked, cracking what's merged" — which the tutorial presents as the
// design space between database cracking and adaptive merging.
//
// A hybrid index splits the column into initial partitions on the first
// query and migrates the qualifying key range of every query from the
// partitions into a final partition. The initial partitions and the
// final partition can each be organised with a lightweight method
// (cracking), a heavyweight method (full sorting) or a middle ground
// (radix-style range clustering). The classic named variants are:
//
//	HCC  crack the partitions, crack the final partition
//	HCS  crack the partitions, sort the final partition
//	HSS  sort the partitions, sort the final partition
//	HRS  radix-cluster the partitions, sort the final partition
//	HRC  radix-cluster the partitions, crack the final partition
//
// Sorting the partitions makes the first query expensive but converges
// almost immediately (adaptive merging behaviour); cracking them keeps
// the first query close to a scan but needs more queries to converge
// (database cracking behaviour). The hybrids interpolate, which is
// exactly the trade-off experiment E4 reproduces.
//
// The final "cracked" partition is represented as one chunk per merged
// key range (the chunk layout is the piece structure a final cracker
// index would maintain); sorted finals use the shared B+ tree.
package hybrid

import (
	"fmt"
	"sort"

	"adaptiveindex/internal/btree"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/crackeridx"
	"adaptiveindex/internal/index"
)

// PartitionStrategy selects how the initial partitions organise
// themselves when they are first touched.
type PartitionStrategy uint8

// Partition strategies.
const (
	PartitionCrack PartitionStrategy = iota
	PartitionSort
	PartitionRadix
)

// String returns the one-letter code used in the hybrid names.
func (s PartitionStrategy) String() string {
	switch s {
	case PartitionCrack:
		return "crack"
	case PartitionSort:
		return "sort"
	case PartitionRadix:
		return "radix"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", uint8(s))
	}
}

// FinalStrategy selects how the final partition is organised.
type FinalStrategy uint8

// Final strategies.
const (
	FinalCrack FinalStrategy = iota
	FinalSort
)

// String returns the strategy name.
func (s FinalStrategy) String() string {
	switch s {
	case FinalCrack:
		return "crack"
	case FinalSort:
		return "sort"
	default:
		return fmt.Sprintf("FinalStrategy(%d)", uint8(s))
	}
}

// Options configures a hybrid index.
type Options struct {
	// PartitionSize is the number of tuples per initial partition.
	PartitionSize int
	// Initial selects the organisation of the initial partitions.
	Initial PartitionStrategy
	// Final selects the organisation of the final partition.
	Final FinalStrategy
	// RadixBuckets is the number of range clusters used by
	// PartitionRadix (default 16).
	RadixBuckets int
	// Fanout is the fanout of the final B+ tree when Final is
	// FinalSort.
	Fanout int
}

func (o Options) withDefaults() Options {
	if o.PartitionSize <= 0 {
		o.PartitionSize = 1 << 16
	}
	if o.RadixBuckets <= 1 {
		o.RadixBuckets = 16
	}
	if o.Fanout <= 0 {
		o.Fanout = btree.DefaultFanout
	}
	return o
}

// Index is a hybrid adaptive index over one column. It is not safe for
// concurrent use.
type Index struct {
	base        []column.Value
	opts        Options
	parts       []organizer
	finalTree   *btree.Tree // Final == FinalSort
	finalChunks []*chunk    // Final == FinalCrack
	initialized bool
	c           cost.Counters
}

var _ index.Interface = (*Index)(nil)

// New creates a hybrid index with the given options. Nothing is built
// until the first query.
func New(vals []column.Value, opts Options) *Index {
	o := opts.withDefaults()
	ix := &Index{base: vals, opts: o}
	if o.Final == FinalSort {
		ix.finalTree = btree.New(o.Fanout)
	}
	return ix
}

// NewHCC returns the hybrid crack-crack index.
func NewHCC(vals []column.Value, partitionSize int) *Index {
	return New(vals, Options{PartitionSize: partitionSize, Initial: PartitionCrack, Final: FinalCrack})
}

// NewHCS returns the hybrid crack-sort index.
func NewHCS(vals []column.Value, partitionSize int) *Index {
	return New(vals, Options{PartitionSize: partitionSize, Initial: PartitionCrack, Final: FinalSort})
}

// NewHSS returns the hybrid sort-sort index.
func NewHSS(vals []column.Value, partitionSize int) *Index {
	return New(vals, Options{PartitionSize: partitionSize, Initial: PartitionSort, Final: FinalSort})
}

// NewHRS returns the hybrid radix-sort index.
func NewHRS(vals []column.Value, partitionSize int) *Index {
	return New(vals, Options{PartitionSize: partitionSize, Initial: PartitionRadix, Final: FinalSort})
}

// NewHRC returns the hybrid radix-crack index.
func NewHRC(vals []column.Value, partitionSize int) *Index {
	return New(vals, Options{PartitionSize: partitionSize, Initial: PartitionRadix, Final: FinalCrack})
}

// Name identifies the hybrid variant, e.g. "hybrid-crack-sort".
func (ix *Index) Name() string {
	return "hybrid-" + ix.opts.Initial.String() + "-" + ix.opts.Final.String()
}

// Len returns the number of tuples indexed.
func (ix *Index) Len() int { return len(ix.base) }

// Cost returns the cumulative logical work including the final B+
// tree's work.
func (ix *Index) Cost() cost.Counters {
	c := ix.c
	if ix.finalTree != nil {
		c.Add(ix.finalTree.Cost())
	}
	return c
}

// RemainingInPartitions returns the number of tuples that have not yet
// migrated to the final partition.
func (ix *Index) RemainingInPartitions() int {
	n := 0
	for _, p := range ix.parts {
		n += p.remaining()
	}
	return n
}

// Converged reports whether all tuples live in the final partition.
func (ix *Index) Converged() bool {
	return ix.initialized && ix.RemainingInPartitions() == 0
}

// initialize splits the base column into partitions; charged to the
// first query.
func (ix *Index) initialize() {
	n := len(ix.base)
	size := ix.opts.PartitionSize
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		pairs := make(column.Pairs, 0, end-start)
		for i := start; i < end; i++ {
			pairs = append(pairs, column.Pair{Val: ix.base[i], Row: column.RowID(i)})
		}
		ix.c.ValuesTouched += uint64(end - start)
		ix.c.TuplesCopied += uint64(end - start)
		switch ix.opts.Initial {
		case PartitionSort:
			ix.c.Comparisons += uint64(nLogN(end - start))
			pairs.SortByValue()
			ix.parts = append(ix.parts, &sortPartition{pairs: pairs, c: &ix.c})
		case PartitionRadix:
			ix.parts = append(ix.parts, newRadixPartition(pairs, ix.opts.RadixBuckets, &ix.c))
		default:
			ix.parts = append(ix.parts, &crackPartition{pairs: pairs, idx: crackeridx.New(), c: &ix.c})
		}
	}
	if n == 0 {
		// Keep the invariant that an initialized index has at least an
		// empty partition list; nothing else to do.
		ix.parts = []organizer{}
	}
	ix.initialized = true
}

func nLogN(n int) int {
	if n <= 1 {
		return 0
	}
	cmp := 0
	for m := n; m > 1; m >>= 1 {
		cmp += n
	}
	return cmp
}

// Select answers the range predicate, migrating every qualifying tuple
// that still lives in an initial partition into the final partition,
// and returns the row identifiers of all qualifying tuples.
func (ix *Index) Select(pred column.Range) column.IDList {
	if pred.Empty() {
		return nil
	}
	if !ix.initialized {
		ix.initialize()
	}
	out := ix.selectFinal(pred)
	var moved column.Pairs
	for _, p := range ix.parts {
		moved = append(moved, p.extract(pred)...)
	}
	if len(moved) > 0 {
		for _, p := range moved {
			out = append(out, p.Row)
		}
		ix.c.TuplesCopied += uint64(len(moved))
		ix.mergeIntoFinal(moved)
	}
	return out
}

// Count answers the predicate and returns the number of qualifying
// tuples; migration still happens.
func (ix *Index) Count(pred column.Range) int { return len(ix.Select(pred)) }

// selectFinal returns the qualifying rows already present in the final
// partition.
func (ix *Index) selectFinal(pred column.Range) column.IDList {
	if ix.opts.Final == FinalSort {
		return ix.finalTree.Select(pred)
	}
	var out column.IDList
	for _, ch := range ix.finalChunks {
		if !ch.overlaps(pred) {
			ix.c.Comparisons += 2
			continue
		}
		for _, p := range ch.pairs {
			ix.c.ValuesTouched++
			ix.c.Comparisons++
			if pred.Contains(p.Val) {
				out = append(out, p.Row)
				ix.c.TuplesCopied++
			}
		}
	}
	return out
}

// mergeIntoFinal moves the extracted pairs into the final partition.
func (ix *Index) mergeIntoFinal(moved column.Pairs) {
	if ix.opts.Final == FinalSort {
		for _, p := range moved {
			ix.finalTree.Insert(p.Val, p.Row)
		}
		return
	}
	ch := &chunk{pairs: moved}
	ch.min, ch.max = moved[0].Val, moved[0].Val
	for _, p := range moved[1:] {
		if p.Val < ch.min {
			ch.min = p.Val
		}
		if p.Val > ch.max {
			ch.max = p.Val
		}
	}
	ix.c.ValuesTouched += uint64(len(moved))
	ix.finalChunks = append(ix.finalChunks, ch)
}

// chunk is one merged key range of the final "cracked" partition.
type chunk struct {
	min, max column.Value
	pairs    column.Pairs
}

func (ch *chunk) overlaps(pred column.Range) bool {
	if pred.HasHigh {
		if pred.IncHigh {
			if ch.min > pred.High {
				return false
			}
		} else if ch.min >= pred.High {
			return false
		}
	}
	if pred.HasLow {
		if pred.IncLow {
			if ch.max < pred.Low {
				return false
			}
		} else if ch.max <= pred.Low {
			return false
		}
	}
	return true
}

// Validate checks that no tuple is lost or duplicated between the
// partitions and the final partition and that per-partition invariants
// hold.
func (ix *Index) Validate() error {
	if ix.finalTree != nil {
		if err := ix.finalTree.Validate(); err != nil {
			return err
		}
	}
	if !ix.initialized {
		return nil
	}
	seen := make(map[column.RowID]bool, len(ix.base))
	count := 0
	add := func(p column.Pair) error {
		if seen[p.Row] {
			return fmt.Errorf("hybrid: row %d appears twice", p.Row)
		}
		seen[p.Row] = true
		count++
		return nil
	}
	for _, part := range ix.parts {
		if err := part.validate(); err != nil {
			return err
		}
		for _, p := range part.contents() {
			if err := add(p); err != nil {
				return err
			}
		}
	}
	if ix.finalTree != nil {
		var walkErr error
		ix.finalTree.Ascend(func(p column.Pair) bool {
			walkErr = add(p)
			return walkErr == nil
		})
		if walkErr != nil {
			return walkErr
		}
	}
	for _, ch := range ix.finalChunks {
		for _, p := range ch.pairs {
			if p.Val < ch.min || p.Val > ch.max {
				return fmt.Errorf("hybrid: chunk value %d outside [%d,%d]", p.Val, ch.min, ch.max)
			}
			if err := add(p); err != nil {
				return err
			}
		}
	}
	if count != len(ix.base) {
		return fmt.Errorf("hybrid: %d tuples reachable, want %d", count, len(ix.base))
	}
	return nil
}

// organizer is an initial partition that can hand over the tuples
// matching a predicate.
type organizer interface {
	// extract removes and returns all pairs satisfying pred.
	extract(pred column.Range) column.Pairs
	// remaining returns the number of pairs still held.
	remaining() int
	// contents returns the pairs still held (for validation).
	contents() column.Pairs
	// validate checks internal invariants.
	validate() error
}

// crackPartition organises itself lazily with crack-in-two, the
// cheapest possible preparation.
type crackPartition struct {
	pairs column.Pairs
	idx   *crackeridx.Index
	c     *cost.Counters
}

func (p *crackPartition) remaining() int         { return len(p.pairs) }
func (p *crackPartition) contents() column.Pairs { return p.pairs }
func (p *crackPartition) validate() error        { return p.idx.Validate(len(p.pairs)) }

func (p *crackPartition) establish(b crackeridx.Bound) int {
	piece, pos, exact := p.idx.PieceFor(b, len(p.pairs))
	if exact {
		return pos
	}
	pos = core.CrackInTwo(p.pairs, piece.Start, piece.End, b, p.c)
	p.idx.Insert(b, pos)
	return pos
}

func (p *crackPartition) extract(pred column.Range) column.Pairs {
	if len(p.pairs) == 0 {
		return nil
	}
	start, end := 0, len(p.pairs)
	switch {
	case pred.HasLow && pred.HasHigh:
		bLow, bHigh := core.LowerBound(pred), core.UpperBound(pred)
		pieceLow, _, exactLow := p.idx.PieceFor(bLow, len(p.pairs))
		pieceHigh, _, exactHigh := p.idx.PieceFor(bHigh, len(p.pairs))
		if !exactLow && !exactHigh && pieceLow == pieceHigh && bLow.Compare(bHigh) < 0 {
			// Both bounds land in the same untouched piece: one-pass
			// crack-in-three, the cheapest possible preparation.
			start, end = core.CrackInThree(p.pairs, pieceLow.Start, pieceLow.End, bLow, bHigh, p.c)
			p.idx.Insert(bLow, start)
			p.idx.Insert(bHigh, end)
		} else {
			start = p.establish(bLow)
			end = p.establish(bHigh)
		}
	case pred.HasLow:
		start = p.establish(core.LowerBound(pred))
	case pred.HasHigh:
		end = p.establish(core.UpperBound(pred))
	}
	if end <= start {
		return nil
	}
	out := append(column.Pairs(nil), p.pairs[start:end]...)
	p.c.TuplesCopied += uint64(len(out))
	p.pairs = append(p.pairs[:start], p.pairs[end:]...)
	p.idx.CollapseRange(start, end)
	return out
}

// sortPartition is fully sorted when it is created (by initialize);
// extraction is a binary search plus a contiguous removal.
type sortPartition struct {
	pairs column.Pairs
	c     *cost.Counters
}

func (p *sortPartition) remaining() int         { return len(p.pairs) }
func (p *sortPartition) contents() column.Pairs { return p.pairs }

func (p *sortPartition) validate() error {
	if !p.pairs.IsSortedByValue() {
		return fmt.Errorf("hybrid: sort partition not sorted")
	}
	return nil
}

func (p *sortPartition) extract(pred column.Range) column.Pairs {
	n := len(p.pairs)
	if n == 0 {
		return nil
	}
	lo, hi := 0, n
	if pred.HasLow {
		lo = sort.Search(n, func(i int) bool {
			p.c.Comparisons++
			if pred.IncLow {
				return p.pairs[i].Val >= pred.Low
			}
			return p.pairs[i].Val > pred.Low
		})
	}
	if pred.HasHigh {
		hi = sort.Search(n, func(i int) bool {
			p.c.Comparisons++
			if pred.IncHigh {
				return p.pairs[i].Val > pred.High
			}
			return p.pairs[i].Val >= pred.High
		})
	}
	if hi <= lo {
		return nil
	}
	out := append(column.Pairs(nil), p.pairs[lo:hi]...)
	p.c.TuplesCopied += uint64(len(out))
	p.pairs = append(p.pairs[:lo], p.pairs[hi:]...)
	return out
}

// radixPartition clusters its pairs into equal-width value buckets when
// it is created; extraction scans only the buckets that overlap the
// predicate.
type radixPartition struct {
	buckets []column.Pairs
	lows    []column.Value // inclusive lower edge of each bucket
	width   column.Value
	count   int
	c       *cost.Counters
}

func newRadixPartition(pairs column.Pairs, nBuckets int, c *cost.Counters) *radixPartition {
	p := &radixPartition{c: c}
	if len(pairs) == 0 {
		p.buckets = make([]column.Pairs, 1)
		p.lows = []column.Value{0}
		p.width = 1
		return p
	}
	min, max := pairs[0].Val, pairs[0].Val
	for _, pr := range pairs[1:] {
		if pr.Val < min {
			min = pr.Val
		}
		if pr.Val > max {
			max = pr.Val
		}
	}
	span := max - min + 1
	width := span / column.Value(nBuckets)
	if width < 1 {
		width = 1
	}
	nb := int((span + width - 1) / width)
	if nb < 1 {
		nb = 1
	}
	p.buckets = make([]column.Pairs, nb)
	p.lows = make([]column.Value, nb)
	p.width = width
	for i := range p.lows {
		p.lows[i] = min + column.Value(i)*width
	}
	for _, pr := range pairs {
		b := int((pr.Val - min) / width)
		if b >= nb {
			b = nb - 1
		}
		p.buckets[b] = append(p.buckets[b], pr)
		c.ValuesTouched++
		c.TuplesCopied++
	}
	p.count = len(pairs)
	return p
}

func (p *radixPartition) remaining() int { return p.count }

func (p *radixPartition) contents() column.Pairs {
	var out column.Pairs
	for _, b := range p.buckets {
		out = append(out, b...)
	}
	return out
}

func (p *radixPartition) validate() error {
	total := 0
	for i, b := range p.buckets {
		lo := p.lows[i]
		hi := lo + p.width
		for _, pr := range b {
			if pr.Val < lo || pr.Val >= hi {
				// The last bucket absorbs the remainder of the domain.
				if i != len(p.buckets)-1 || pr.Val < lo {
					return fmt.Errorf("hybrid: radix bucket %d holds out-of-range value %d", i, pr.Val)
				}
			}
		}
		total += len(b)
	}
	if total != p.count {
		return fmt.Errorf("hybrid: radix partition count %d but %d entries in buckets", p.count, total)
	}
	return nil
}

// bucketOverlaps reports whether bucket i can contain values matching
// pred.
func (p *radixPartition) bucketOverlaps(i int, pred column.Range) bool {
	lo := p.lows[i]
	var hi column.Value
	if i == len(p.buckets)-1 {
		hi = 1<<62 - 1
	} else {
		hi = lo + p.width - 1
	}
	if pred.HasLow {
		if pred.IncLow {
			if hi < pred.Low {
				return false
			}
		} else if hi <= pred.Low {
			return false
		}
	}
	if pred.HasHigh {
		if pred.IncHigh {
			if lo > pred.High {
				return false
			}
		} else if lo >= pred.High {
			return false
		}
	}
	return true
}

func (p *radixPartition) extract(pred column.Range) column.Pairs {
	if p.count == 0 {
		return nil
	}
	var out column.Pairs
	for i := range p.buckets {
		p.c.Comparisons += 2
		if !p.bucketOverlaps(i, pred) {
			continue
		}
		kept := p.buckets[i][:0]
		for _, pr := range p.buckets[i] {
			p.c.ValuesTouched++
			p.c.Comparisons++
			if pred.Contains(pr.Val) {
				out = append(out, pr)
				p.c.TuplesCopied++
			} else {
				kept = append(kept, pr)
			}
		}
		p.buckets[i] = kept
	}
	p.count -= len(out)
	return out
}
