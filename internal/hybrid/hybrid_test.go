package hybrid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
)

func scanOracle(vals []column.Value, r column.Range) column.IDList {
	var out column.IDList
	for i, v := range vals {
		if r.Contains(v) {
			out = append(out, column.RowID(i))
		}
	}
	return out
}

func randomValues(rng *rand.Rand, n, domain int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return vals
}

func allVariants(vals []column.Value, partSize int) map[string]*Index {
	return map[string]*Index{
		"HCC": NewHCC(vals, partSize),
		"HCS": NewHCS(vals, partSize),
		"HSS": NewHSS(vals, partSize),
		"HRS": NewHRS(vals, partSize),
		"HRC": NewHRC(vals, partSize),
	}
}

func TestAllVariantsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := randomValues(rng, 4000, 1000)
	queries := []column.Range{
		column.NewRange(100, 200),
		column.NewRange(100, 200), // repeat: served from final partition
		column.ClosedRange(500, 510),
		column.Point(777),
		column.AtLeast(950),
		column.LessThan(30),
		{},
		column.NewRange(5000, 6000),
	}
	for q := 0; q < 80; q++ {
		lo := column.Value(rng.Intn(1050) - 25)
		queries = append(queries, column.NewRange(lo, lo+column.Value(rng.Intn(150))))
	}
	for name, ix := range allVariants(vals, 512) {
		t.Run(name, func(t *testing.T) {
			for i, r := range queries {
				got := ix.Select(r)
				want := scanOracle(vals, r)
				if !got.Equal(want) {
					t.Fatalf("%s query %d %s: got %d rows want %d", name, i, r, len(got), len(want))
				}
				if err := ix.Validate(); err != nil {
					t.Fatalf("%s query %d: %v", name, i, err)
				}
			}
		})
	}
}

func TestNames(t *testing.T) {
	vals := []column.Value{1}
	want := map[string]string{
		"hybrid-crack-crack": NewHCC(vals, 8).Name(),
		"hybrid-crack-sort":  NewHCS(vals, 8).Name(),
		"hybrid-sort-sort":   NewHSS(vals, 8).Name(),
		"hybrid-radix-sort":  NewHRS(vals, 8).Name(),
		"hybrid-radix-crack": NewHRC(vals, 8).Name(),
	}
	for expected, got := range want {
		if got != expected {
			t.Errorf("Name mismatch: got %q want %q", got, expected)
		}
	}
	if PartitionCrack.String() != "crack" || PartitionSort.String() != "sort" || PartitionRadix.String() != "radix" {
		t.Error("PartitionStrategy.String wrong")
	}
	if FinalCrack.String() != "crack" || FinalSort.String() != "sort" {
		t.Error("FinalStrategy.String wrong")
	}
}

func TestLazyInitialization(t *testing.T) {
	vals := randomValues(rand.New(rand.NewSource(2)), 1000, 100)
	ix := NewHCS(vals, 128)
	if !ix.Cost().IsZero() {
		t.Fatal("no work may happen before the first query")
	}
	if got := ix.Select(column.NewRange(50, 50)); len(got) != 0 {
		t.Fatalf("empty predicate returned %v", got)
	}
	if !ix.Cost().IsZero() {
		t.Fatal("an empty predicate must not initialize the index")
	}
	ix.Count(column.NewRange(10, 20))
	if ix.Cost().IsZero() {
		t.Fatal("the first real query must be charged")
	}
}

func TestFirstQueryCostOrdering(t *testing.T) {
	// The defining trade-off: sorting the initial partitions costs more
	// on the first query than radix clustering, which costs more than
	// cracking them.
	rng := rand.New(rand.NewSource(3))
	vals := randomValues(rng, 50000, 1000000)
	r := column.NewRange(1000, 5000)

	hcc := NewHCC(vals, 4096)
	hss := NewHSS(vals, 4096)
	hrs := NewHRS(vals, 4096)
	hcc.Count(r)
	hss.Count(r)
	hrs.Count(r)

	ccCost, ssCost, rsCost := hcc.Cost().Total(), hss.Cost().Total(), hrs.Cost().Total()
	if ccCost >= ssCost {
		t.Fatalf("expected first-query cost HCC < HSS, got %d vs %d", ccCost, ssCost)
	}
	if rsCost >= ssCost {
		t.Fatalf("expected first-query cost HRS < HSS, got %d vs %d", rsCost, ssCost)
	}
	// Sorting every partition must cost well over 1.5x the lightweight
	// preparations, not marginally more.
	if ssCost < ccCost*3/2 {
		t.Fatalf("sort-initial first query should be substantially more expensive: HCC %d, HSS %d", ccCost, ssCost)
	}
}

func TestConvergenceAfterCoveringQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 8000
	vals := randomValues(rng, n, n)
	for name, ix := range allVariants(vals, 1024) {
		k := 16
		width := n / k
		for i := 0; i < k; i++ {
			lo := column.Value(i * width)
			ix.Count(column.NewRange(lo, lo+column.Value(width)))
		}
		ix.Count(column.Range{}) // sweep up anything at the domain edge
		if !ix.Converged() {
			t.Fatalf("%s: not converged, %d tuples remain in partitions", name, ix.RemainingInPartitions())
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRepeatQueryCheapAfterMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randomValues(rng, 50000, 100000)
	for name, ix := range allVariants(vals, 4096) {
		r := column.NewRange(2000, 4000)
		before := ix.Cost().Total()
		ix.Count(r)
		first := ix.Cost().Total() - before

		before = ix.Cost().Total()
		ix.Count(r)
		second := ix.Cost().Total() - before
		if second*5 > first {
			t.Fatalf("%s: repeat query not cheaper: first %d, repeat %d", name, first, second)
		}
	}
}

func TestRemainingDecreasesMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := randomValues(rng, 5000, 5000)
	ix := NewHCC(vals, 512)
	prev := len(vals)
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(5000))
		ix.Count(column.NewRange(lo, lo+200))
		rem := ix.RemainingInPartitions()
		if rem > prev {
			t.Fatalf("remaining grew: %d -> %d", prev, rem)
		}
		prev = rem
	}
}

func TestEmptyColumn(t *testing.T) {
	for name, ix := range allVariants(nil, 64) {
		if got := ix.Select(column.NewRange(0, 10)); len(got) != 0 {
			t.Fatalf("%s: empty column returned %v", name, got)
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDuplicateHeavyColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]column.Value, 3000)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(3))
	}
	for name, ix := range allVariants(vals, 256) {
		for q := 0; q < 30; q++ {
			lo := column.Value(rng.Intn(4) - 1)
			r := column.ClosedRange(lo, lo+column.Value(rng.Intn(3)))
			if got, want := ix.Select(r), scanOracle(vals, r); !got.Equal(want) {
				t.Fatalf("%s query %s: got %d want %d", name, r, len(got), len(want))
			}
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.PartitionSize <= 0 || o.RadixBuckets <= 1 || o.Fanout <= 0 {
		t.Fatalf("withDefaults left bad fields: %+v", o)
	}
	ix := New([]column.Value{5, 2, 9}, Options{})
	if got := ix.Select(column.ClosedRange(2, 5)); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

// Property: every hybrid variant is scan-equivalent on arbitrary small
// inputs and query sequences.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(raw []int16, seq []uint8, variant uint8) bool {
		vals := make([]column.Value, len(raw))
		for i, v := range raw {
			vals[i] = column.Value(v % 100)
		}
		var ix *Index
		switch variant % 5 {
		case 0:
			ix = NewHCC(vals, 32)
		case 1:
			ix = NewHCS(vals, 32)
		case 2:
			ix = NewHSS(vals, 32)
		case 3:
			ix = NewHRS(vals, 32)
		default:
			ix = NewHRC(vals, 32)
		}
		for _, q := range seq {
			lo := column.Value(int(q%100) - 50)
			r := column.NewRange(lo, lo+13)
			if !ix.Select(r).Equal(scanOracle(vals, r)) {
				return false
			}
			if ix.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
