// Aggregations over cracked ranges.
//
// Analytical queries rarely stop at a selection; they aggregate over
// it. Because cracking leaves every queried range contiguous, range
// aggregates become tight loops over one memory region, and they adapt
// exactly like selections do: the first aggregate over a range pays for
// the cracking, later ones only read the piece.

package core

import "adaptiveindex/internal/column"

// Sum answers SUM(value) over the tuples matching r, cracking as a side
// effect. The boolean is false when no tuple qualifies.
func (cc *CrackerColumn) Sum(r column.Range) (column.Value, bool) {
	start, end := cc.SelectPositions(r)
	if end <= start {
		return 0, false
	}
	var sum column.Value
	for i := start; i < end; i++ {
		sum += cc.pairs[i].Val
	}
	cc.c.ValuesTouched += uint64(end - start)
	return sum, true
}

// Min answers MIN(value) over the tuples matching r, cracking as a side
// effect. The boolean is false when no tuple qualifies.
func (cc *CrackerColumn) Min(r column.Range) (column.Value, bool) {
	start, end := cc.SelectPositions(r)
	if end <= start {
		return 0, false
	}
	min := cc.pairs[start].Val
	for i := start + 1; i < end; i++ {
		if v := cc.pairs[i].Val; v < min {
			min = v
		}
	}
	cc.c.ValuesTouched += uint64(end - start)
	cc.c.Comparisons += uint64(end - start - 1)
	return min, true
}

// Max answers MAX(value) over the tuples matching r, cracking as a side
// effect. The boolean is false when no tuple qualifies.
func (cc *CrackerColumn) Max(r column.Range) (column.Value, bool) {
	start, end := cc.SelectPositions(r)
	if end <= start {
		return 0, false
	}
	max := cc.pairs[start].Val
	for i := start + 1; i < end; i++ {
		if v := cc.pairs[i].Val; v > max {
			max = v
		}
	}
	cc.c.ValuesTouched += uint64(end - start)
	cc.c.Comparisons += uint64(end - start - 1)
	return max, true
}
