// Immutable piece-catalog snapshots of a cracker column.
//
// Epoch-pinned reads (internal/engine's epoch manager) need a view of
// a cracked column that never moves underneath a reader: the live
// CrackerColumn reorganises itself on every query, so concurrent
// readers must instead pin a ColSnapshot — a copy-on-crack list of the
// column's pieces taken between reorganisations. Pieces whose span was
// untouched since the previous snapshot are shared structurally with
// it (the copied slice is immutable once published), so steady-state
// publication cost is proportional to the data that actually moved,
// not the column size.

package core

import (
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/crackeridx"
)

// SnapPiece is one piece of a column snapshot: an immutable copy of
// the (value, rowid) pairs that occupied positions [Start, End) of the
// cracker column at snapshot time, plus the piece's bounding pivots
// from the cracker index. The Pairs slice never aliases the live
// column and must not be mutated after the snapshot is published.
type SnapPiece struct {
	Start, End int
	Pairs      column.Pairs
	Lower      crackeridx.Bound
	Upper      crackeridx.Bound
	HasLower   bool
	HasUpper   bool
}

// ColSnapshot is an immutable piece-catalog view of a cracker column.
// Any number of goroutines may Select/Count against it concurrently;
// it is never mutated after Snapshot returns it.
type ColSnapshot struct {
	// Pieces lists the column's pieces in position order; their spans
	// tile [0, Len) exactly.
	Pieces []SnapPiece
	// Len is the column length at snapshot time.
	Len int
	// Version is the column's reorganisation version at snapshot time.
	Version uint64
}

// Snapshot captures the column's current piece catalog. prev, when
// non-nil, must be the snapshot returned by the most recent Snapshot
// call on this column: pieces whose (Start, End) span is unchanged and
// was not dirtied since then reuse prev's already-copied slices
// instead of copying again. Snapshot deliberately charges nothing to
// the cost counters — publication is bookkeeping, not query work — so
// taking snapshots never perturbs the deterministic counter stream.
func (cc *CrackerColumn) Snapshot(prev *ColSnapshot) *ColSnapshot {
	n := len(cc.pairs)
	pieces := cc.index.Pieces(n)
	snap := &ColSnapshot{Pieces: make([]SnapPiece, len(pieces)), Len: n, Version: cc.version}
	var reuse map[[2]int]*SnapPiece
	if prev != nil {
		reuse = make(map[[2]int]*SnapPiece, len(prev.Pieces))
		for i := range prev.Pieces {
			p := &prev.Pieces[i]
			reuse[[2]int{p.Start, p.End}] = p
		}
	}
	dirtyLo, dirtyHi := cc.dirtyLo, cc.dirtyHi
	for i, p := range pieces {
		sp := SnapPiece{
			Start: p.Start, End: p.End,
			Lower: p.Lower, Upper: p.Upper,
			HasLower: p.HasLower, HasUpper: p.HasUpper,
		}
		overlapsDirty := dirtyHi > dirtyLo && p.Start < dirtyHi && dirtyLo < p.End
		if old, ok := reuse[[2]int{p.Start, p.End}]; ok && !overlapsDirty {
			sp.Pairs = old.Pairs
		} else {
			cp := make(column.Pairs, p.End-p.Start)
			copy(cp, cc.pairs[p.Start:p.End])
			sp.Pairs = cp
		}
		snap.Pieces[i] = sp
	}
	cc.dirtyLo, cc.dirtyHi = 0, 0
	return snap
}

// classify places one piece relative to a non-empty range predicate:
// -1 when no piece value can qualify, +1 when every piece value
// qualifies, 0 when the piece straddles a range bound and must be
// filtered value by value.
func classifyPiece(p *SnapPiece, r column.Range) int {
	if r.HasLow {
		lowB := lowerBoundOf(r)
		// All piece values left of Upper; Upper <= lowB means all are
		// left of the range's lower bound too — nothing qualifies.
		if p.HasUpper && p.Upper.Compare(lowB) <= 0 {
			return -1
		}
	}
	if r.HasHigh {
		highB := upperBoundOf(r)
		// No piece value is left of Lower; highB <= Lower means no
		// value is left of the range's upper bound — nothing qualifies.
		if p.HasLower && highB.Compare(p.Lower) <= 0 {
			return -1
		}
	}
	lowOK := !r.HasLow || (p.HasLower && lowerBoundOf(r).Compare(p.Lower) <= 0)
	highOK := !r.HasHigh || (p.HasUpper && p.Upper.Compare(upperBoundOf(r)) <= 0)
	if lowOK && highOK {
		return 1
	}
	return 0
}

// Count answers the range predicate against the snapshot: the number
// of qualifying tuples, plus whether the read crossed a piece boundary
// the live column has not cracked yet (a crack intent the caller
// should hand to the reorganiser). Work is recorded in c, which is the
// reader's own counter set — snapshot reads never touch the engine's
// deterministic counters.
func (s *ColSnapshot) Count(r column.Range, c *cost.Counters) (count int, needsReorg bool) {
	if r.Empty() {
		return 0, false
	}
	for i := range s.Pieces {
		p := &s.Pieces[i]
		switch classifyPiece(p, r) {
		case 1:
			count += len(p.Pairs)
		case 0:
			needsReorg = true
			for _, pr := range p.Pairs {
				c.ValuesTouched++
				c.Comparisons++
				if r.Contains(pr.Val) {
					count++
				}
			}
		}
	}
	return count, needsReorg
}

// Select answers the range predicate against the snapshot: the row
// identifiers of qualifying tuples in snapshot position order, plus
// the same crack-intent signal as Count. The returned IDList is
// freshly allocated and never aliases snapshot storage.
func (s *ColSnapshot) Select(r column.Range, c *cost.Counters) (rows column.IDList, needsReorg bool) {
	if r.Empty() {
		return nil, false
	}
	for i := range s.Pieces {
		p := &s.Pieces[i]
		switch classifyPiece(p, r) {
		case 1:
			at := len(rows)
			rows = append(rows, make(column.IDList, len(p.Pairs))...)
			MaterializeRows(rows[at:], p.Pairs)
			c.TuplesCopied += uint64(len(p.Pairs))
		case 0:
			needsReorg = true
			for _, pr := range p.Pairs {
				c.ValuesTouched++
				c.Comparisons++
				if r.Contains(pr.Val) {
					rows = append(rows, pr.Row)
					c.TuplesCopied++
				}
			}
		}
	}
	return rows, needsReorg
}
