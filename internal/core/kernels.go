package core

import (
	"math"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
)

// This file holds the data-plane kernels: tight loops over dense value
// arrays with no interface calls, no per-element branches on the
// predicate outcome, and bulk result materialisation. The cost model
// cannot see the difference between these and the naive loops — they
// charge identical logical work — but the wall-clock difference is what
// the wire-speed data plane is built on (see the benchmarks alongside).

// ClosedBounds normalises a range predicate to the closed interval
// [lo, hi] over the full Value domain, so a scan kernel needs exactly
// two comparisons per value and no per-element flag checks. It reports
// ok=false when no value can satisfy the predicate.
func ClosedBounds(r column.Range) (lo, hi column.Value, ok bool) {
	lo, hi = math.MinInt64, math.MaxInt64
	if r.HasLow {
		lo = r.Low
		if !r.IncLow {
			if lo == math.MaxInt64 {
				return 0, 0, false
			}
			lo++
		}
	}
	if r.HasHigh {
		hi = r.High
		if !r.IncHigh {
			if hi == math.MinInt64 {
				return 0, 0, false
			}
			hi--
		}
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// b2u converts a bool to 0/1 without a data-dependent branch: the
// compiler lowers this pattern to SETcc/CSEL, so the selection loops
// below never mispredict on the predicate outcome.
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// ScanCount counts the values of vals satisfying r in one branchless
// pass. It charges the same logical work as the naive scan loop: one
// value touch and one predicate evaluation per element.
func ScanCount(vals []column.Value, r column.Range, c *cost.Counters) int {
	c.ValuesTouched += uint64(len(vals))
	c.Comparisons += uint64(len(vals))
	lo, hi, ok := ClosedBounds(r)
	if !ok {
		return 0
	}
	n := uint32(0)
	for _, v := range vals {
		n += b2u(v >= lo) & b2u(v <= hi)
	}
	return int(n)
}

// ScanSelect returns the row identifiers of the values of vals
// satisfying r, in storage order, in one branchless pass: every slot is
// written unconditionally and the output cursor advances by the
// predicate outcome, so the loop body is straight-line code regardless
// of selectivity. It charges one value touch and one predicate
// evaluation per element plus one copied tuple per qualifying row —
// identical to the naive scan-and-append loop.
func ScanSelect(vals []column.Value, r column.Range, c *cost.Counters) column.IDList {
	c.ValuesTouched += uint64(len(vals))
	c.Comparisons += uint64(len(vals))
	lo, hi, ok := ClosedBounds(r)
	if !ok {
		return nil
	}
	out := make(column.IDList, len(vals))
	k := uint32(0)
	for i, v := range vals {
		out[k] = column.RowID(i)
		k += b2u(v >= lo) & b2u(v <= hi)
	}
	out = out[:k:k]
	c.TuplesCopied += uint64(k)
	if k == 0 {
		return nil
	}
	return out
}

// GatherValues fetches vals[row] for every row into dst (late tuple
// reconstruction). dst must be at least as long as rows. The loop body
// is a pure gather — the caller charges the cost model in bulk, so no
// per-element counter updates pollute the hot path.
func GatherValues(dst []column.Value, vals []column.Value, rows column.IDList) {
	dst = dst[:len(rows)]
	for i, row := range rows {
		dst[i] = vals[row]
	}
}

// MaterializeRows bulk-copies the row identifiers of pairs into dst,
// which must be at least as long. It replaces the per-pair append loop
// in result materialisation: the destination is pre-sized once, so the
// loop does nothing but strided loads and sequential stores.
func MaterializeRows(dst column.IDList, pairs column.Pairs) {
	dst = dst[:len(pairs)]
	for i := range pairs {
		dst[i] = pairs[i].Row
	}
}
