package core

import (
	"math/rand"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
)

// The kernel benchmarks compare the data-plane loops against the naive
// forms they replaced, on a 1M-value column at ~10% selectivity — the
// shape where branch misprediction and append bookkeeping dominate.

func benchVals(n int) []column.Value {
	rng := rand.New(rand.NewSource(9))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(1_000_000))
	}
	return vals
}

func BenchmarkScanSelectBranchy(b *testing.B) {
	vals := benchVals(1_000_000)
	r := column.NewRange(400_000, 500_000)
	var c cost.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = naiveScanSelect(vals, r, &c)
	}
}

func BenchmarkScanSelectBranchless(b *testing.B) {
	vals := benchVals(1_000_000)
	r := column.NewRange(400_000, 500_000)
	var c cost.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScanSelect(vals, r, &c)
	}
}

func BenchmarkScanCountBranchy(b *testing.B) {
	vals := benchVals(1_000_000)
	r := column.NewRange(400_000, 500_000)
	var c cost.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, v := range vals {
			c.ValuesTouched++
			c.Comparisons++
			if r.Contains(v) {
				n++
			}
		}
		_ = n
	}
}

func BenchmarkScanCountBranchless(b *testing.B) {
	vals := benchVals(1_000_000)
	r := column.NewRange(400_000, 500_000)
	var c cost.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScanCount(vals, r, &c)
	}
}

func BenchmarkMaterializeAppend(b *testing.B) {
	pairs := column.PairsFromValues(benchVals(1_000_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make(column.IDList, 0, len(pairs))
		for j := range pairs {
			out = append(out, pairs[j].Row)
		}
		_ = out
	}
}

func BenchmarkMaterializeBulkCopy(b *testing.B) {
	pairs := column.PairsFromValues(benchVals(1_000_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make(column.IDList, len(pairs))
		MaterializeRows(out, pairs)
		_ = out
	}
}
