package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
)

// scanOracle returns the row ids a full scan would return for r.
func scanOracle(vals []column.Value, r column.Range) column.IDList {
	var out column.IDList
	for i, v := range vals {
		if r.Contains(v) {
			out = append(out, column.RowID(i))
		}
	}
	return out
}

func randomValues(rng *rand.Rand, n, domain int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return vals
}

func allOptionVariants() map[string]Options {
	return map[string]Options{
		"crack-in-two only":  {CrackInThree: false},
		"crack-in-three":     {CrackInThree: true},
		"stochastic pivots":  {CrackInThree: true, RandomPivotThreshold: 64},
		"stochastic two-way": {CrackInThree: false, RandomPivotThreshold: 16},
	}
}

func TestSelectMatchesScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			vals := randomValues(rng, 2000, 500)
			cc := NewCrackerColumn(vals, opts)
			for q := 0; q < 200; q++ {
				lo := column.Value(rng.Intn(520) - 10)
				hi := lo + column.Value(rng.Intn(120))
				r := column.NewRange(lo, hi)
				got := cc.Select(r)
				want := scanOracle(vals, r)
				if !got.Equal(want) {
					t.Fatalf("query %d %s: got %d rows, want %d rows", q, r, len(got), len(want))
				}
				if err := cc.Validate(); err != nil {
					t.Fatalf("query %d: invariant violated: %v", q, err)
				}
			}
		})
	}
}

func TestSelectOneSidedAndSpecialRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vals := randomValues(rng, 1000, 100)
	cc := NewCrackerColumn(vals, DefaultOptions())

	cases := []column.Range{
		column.AtLeast(50),
		column.LessThan(20),
		column.Point(33),
		column.ClosedRange(10, 10),
		column.NewRange(40, 40),     // empty half-open range
		column.NewRange(90, 10),     // inverted, empty
		{},                          // unbounded
		column.ClosedRange(-5, 300), // covers everything
		column.NewRange(99, 100),
	}
	for _, r := range cases {
		got := cc.Select(r)
		want := scanOracle(vals, r)
		if !got.Equal(want) {
			t.Fatalf("range %s: got %d rows, want %d rows", r, len(got), len(want))
		}
		if err := cc.Validate(); err != nil {
			t.Fatalf("range %s: %v", r, err)
		}
	}
}

func TestExclusiveLowInclusiveHighBounds(t *testing.T) {
	vals := []column.Value{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cc := NewCrackerColumn(vals, DefaultOptions())
	r := column.Range{Low: 3, High: 7, HasLow: true, HasHigh: true, IncLow: false, IncHigh: true}
	got := cc.Select(r)
	want := scanOracle(vals, r) // values 4,5,6,7
	if !got.Equal(want) || len(got) != 4 {
		t.Fatalf("got %v want %v", got, want)
	}
	// Degenerate (x, x] is empty.
	rEmpty := column.Range{Low: 3, High: 3, HasLow: true, HasHigh: true, IncLow: false, IncHigh: true}
	if res := cc.Select(rEmpty); len(res) != 0 {
		t.Fatalf("expected empty result, got %v", res)
	}
}

func TestCrackingPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := randomValues(rng, 3000, 200)
	before := column.PairsFromValues(vals).ValueMultiset()
	cc := NewCrackerColumn(vals, DefaultOptions())
	for q := 0; q < 300; q++ {
		lo := column.Value(rng.Intn(200))
		cc.Select(column.NewRange(lo, lo+10))
	}
	after := cc.Pairs().ValueMultiset()
	if len(before) != len(after) {
		t.Fatalf("multiset key count changed: %d -> %d", len(before), len(after))
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatalf("multiset changed for value %d: %d -> %d", k, n, after[k])
		}
	}
	// Row ids must remain a permutation of 0..n-1.
	seen := make(map[column.RowID]bool, len(vals))
	for _, p := range cc.Pairs() {
		if seen[p.Row] {
			t.Fatalf("duplicate rowid %d after cracking", p.Row)
		}
		seen[p.Row] = true
	}
	if len(seen) != len(vals) {
		t.Fatalf("lost rowids: %d of %d", len(seen), len(vals))
	}
}

func TestPerQueryWorkDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	vals := randomValues(rng, 100000, 1000000)
	cc := NewCrackerColumn(vals, DefaultOptions())

	firstDelta := uint64(0)
	var lateDeltas []uint64
	for q := 0; q < 200; q++ {
		lo := column.Value(rng.Intn(1000000))
		before := cc.Cost().Total()
		cc.Count(column.NewRange(lo, lo+10000))
		delta := cc.Cost().Total() - before
		if q == 0 {
			firstDelta = delta
		}
		if q >= 190 {
			lateDeltas = append(lateDeltas, delta)
		}
	}
	var lateAvg uint64
	for _, d := range lateDeltas {
		lateAvg += d
	}
	lateAvg /= uint64(len(lateDeltas))
	if lateAvg*5 > firstDelta {
		t.Fatalf("cracking did not converge: first query work %d, late average %d", firstDelta, lateAvg)
	}
}

func TestNumPiecesGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := randomValues(rng, 5000, 100000)
	cc := NewCrackerColumn(vals, DefaultOptions())
	if cc.NumPieces() != 1 {
		t.Fatalf("fresh column must have one piece, got %d", cc.NumPieces())
	}
	prev := 1
	for q := 0; q < 20; q++ {
		lo := column.Value(rng.Intn(100000))
		cc.Count(column.NewRange(lo, lo+500))
		if cc.NumPieces() < prev {
			t.Fatalf("piece count decreased: %d -> %d", prev, cc.NumPieces())
		}
		prev = cc.NumPieces()
	}
	if prev < 5 {
		t.Fatalf("expected piece count to grow, got %d", prev)
	}
}

func TestStochasticPivotsBoundLargestPiece(t *testing.T) {
	// A strictly sequential workload is cracking's worst case: without
	// random pivots every query leaves one huge untouched piece.
	n := 20000
	vals := make([]column.Value, n)
	rng := rand.New(rand.NewSource(12))
	for i := range vals {
		vals[i] = column.Value(rng.Intn(n))
	}
	threshold := 512
	cc := NewCrackerColumn(vals, Options{CrackInThree: true, RandomPivotThreshold: threshold})
	for lo := 0; lo < n; lo += n / 50 {
		cc.Count(column.NewRange(column.Value(lo), column.Value(lo+100)))
	}
	// After the workload, no piece that a query bound landed in should
	// remain enormous; specifically the largest piece must be well
	// below the untouched-remainder size a plain cracker would leave.
	largest := 0
	for _, p := range cc.Pieces() {
		if p.End-p.Start > largest {
			largest = p.End - p.Start
		}
	}
	if largest > n/4 {
		t.Fatalf("stochastic cracking left a piece of %d tuples (n=%d)", largest, n)
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCountAgainstSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := randomValues(rng, 1000, 300)
	cc := NewCrackerColumn(vals, DefaultOptions())
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(300))
		r := column.NewRange(lo, lo+25)
		if got, want := cc.Count(r), len(scanOracle(vals, r)); got != want {
			t.Fatalf("Count(%s) = %d, want %d", r, got, want)
		}
	}
}

func TestGet(t *testing.T) {
	vals := []column.Value{5, 6, 7}
	cc := NewCrackerColumn(vals, DefaultOptions())
	cc.Select(column.NewRange(6, 7))
	v, err := cc.Get(2)
	if err != nil || v != 7 {
		t.Fatalf("Get(2) = %d, %v", v, err)
	}
	if _, err := cc.Get(99); err != ErrNotFound {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestSelectPositionsContiguity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	vals := randomValues(rng, 2000, 1000)
	cc := NewCrackerColumn(vals, DefaultOptions())
	for q := 0; q < 100; q++ {
		lo := column.Value(rng.Intn(1000))
		r := column.NewRange(lo, lo+37)
		start, end := cc.SelectPositions(r)
		if start > end {
			t.Fatalf("start %d > end %d", start, end)
		}
		// Every position inside [start,end) must satisfy the predicate,
		// every position outside must not.
		for i, p := range cc.Pairs() {
			in := i >= start && i < end
			if in != r.Contains(p.Val) {
				t.Fatalf("query %s: position %d value %d inside=%v contains=%v",
					r, i, p.Val, in, r.Contains(p.Val))
			}
		}
	}
}

func TestNewCrackerColumnFromPairs(t *testing.T) {
	pairs := column.Pairs{{Val: 5, Row: 100}, {Val: 1, Row: 200}, {Val: 9, Row: 300}}
	cc := NewCrackerColumnFromPairs(pairs.Clone(), DefaultOptions())
	got := cc.Select(column.ClosedRange(1, 5))
	want := column.IDList{100, 200}
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestEmptyColumn(t *testing.T) {
	cc := NewCrackerColumn(nil, DefaultOptions())
	if got := cc.Select(column.NewRange(1, 10)); len(got) != 0 {
		t.Fatalf("expected empty result on empty column, got %v", got)
	}
	if cc.NumPieces() != 1 {
		t.Fatalf("empty column pieces = %d", cc.NumPieces())
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateHeavyColumn(t *testing.T) {
	// Columns with very few distinct values stress the boundary logic
	// because many pivots coincide.
	vals := make([]column.Value, 5000)
	rng := rand.New(rand.NewSource(15))
	for i := range vals {
		vals[i] = column.Value(rng.Intn(3))
	}
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			cc := NewCrackerColumn(vals, opts)
			for q := 0; q < 50; q++ {
				lo := column.Value(rng.Intn(4) - 1)
				hi := lo + column.Value(rng.Intn(3))
				r := column.ClosedRange(lo, hi)
				if got, want := cc.Select(r), scanOracle(vals, r); !got.Equal(want) {
					t.Fatalf("query %s: got %d want %d", r, len(got), len(want))
				}
			}
			if err := cc.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property-based oracle check with testing/quick: for arbitrary small
// columns and predicates, cracking returns exactly the scan result.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(raw []int16, loRaw, width uint8, seq []uint8) bool {
		vals := make([]column.Value, len(raw))
		for i, v := range raw {
			vals[i] = column.Value(v % 64)
		}
		cc := NewCrackerColumn(vals, DefaultOptions())
		// Run a short query sequence so cracking state accumulates,
		// checking every answer against the oracle.
		queries := append([]uint8{loRaw}, seq...)
		for _, q := range queries {
			lo := column.Value(int(q%64) - 32)
			r := column.NewRange(lo, lo+column.Value(width%16))
			if !cc.Select(r).Equal(scanOracle(vals, r)) {
				return false
			}
			if cc.Validate() != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCrackInThreeVersusTwoEquivalence(t *testing.T) {
	// Both variants must produce identical result sets and both must
	// satisfy the invariants; crack-in-three should not do more swaps.
	rng := rand.New(rand.NewSource(16))
	vals := randomValues(rng, 10000, 100000)
	two := NewCrackerColumn(vals, Options{CrackInThree: false})
	three := NewCrackerColumn(vals, Options{CrackInThree: true})
	for q := 0; q < 100; q++ {
		lo := column.Value(rng.Intn(100000))
		r := column.NewRange(lo, lo+1000)
		a, b := two.Select(r), three.Select(r)
		if !a.Equal(b) {
			t.Fatalf("query %d: crack-in-two and crack-in-three disagree (%d vs %d rows)", q, len(a), len(b))
		}
	}
	if err := two.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := three.Validate(); err != nil {
		t.Fatal(err)
	}
}
