package core

import (
	"math/rand"
	"testing"

	"adaptiveindex/internal/column"
)

func aggregateOracle(vals []column.Value, r column.Range) (sum, min, max column.Value, any bool) {
	for _, v := range vals {
		if !r.Contains(v) {
			continue
		}
		if !any {
			min, max = v, v
			any = true
		} else {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		sum += v
	}
	return sum, min, max, any
}

func TestAggregatesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vals := randomValues(rng, 3000, 1000)
	cc := NewCrackerColumn(vals, DefaultOptions())
	queries := []column.Range{
		column.NewRange(100, 200),
		column.ClosedRange(0, 999),
		column.Point(500),
		column.AtLeast(950),
		column.LessThan(25),
		{},
		column.NewRange(2000, 3000), // nothing qualifies
	}
	for q := 0; q < 80; q++ {
		lo := column.Value(rng.Intn(1000))
		queries = append(queries, column.NewRange(lo, lo+column.Value(rng.Intn(100))))
	}
	for _, r := range queries {
		wantSum, wantMin, wantMax, wantAny := aggregateOracle(vals, r)
		sum, okSum := cc.Sum(r)
		min, okMin := cc.Min(r)
		max, okMax := cc.Max(r)
		if okSum != wantAny || okMin != wantAny || okMax != wantAny {
			t.Fatalf("range %s: presence flags sum=%v min=%v max=%v want %v", r, okSum, okMin, okMax, wantAny)
		}
		if !wantAny {
			continue
		}
		if sum != wantSum || min != wantMin || max != wantMax {
			t.Fatalf("range %s: got sum=%d min=%d max=%d, want %d/%d/%d", r, sum, min, max, wantSum, wantMin, wantMax)
		}
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatesAdapt(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := randomValues(rng, 200000, 1000000)
	cc := NewCrackerColumn(vals, DefaultOptions())
	r := column.NewRange(100000, 120000)

	before := cc.Cost().Total()
	cc.Sum(r)
	first := cc.Cost().Total() - before

	before = cc.Cost().Total()
	cc.Sum(r)
	repeat := cc.Cost().Total() - before
	if repeat*5 > first {
		t.Fatalf("repeat aggregate should be much cheaper: first %d, repeat %d", first, repeat)
	}
}

func TestAggregatesOnEmptyColumn(t *testing.T) {
	cc := NewCrackerColumn(nil, DefaultOptions())
	if _, ok := cc.Sum(column.NewRange(0, 10)); ok {
		t.Fatal("Sum on empty column must report !ok")
	}
	if _, ok := cc.Min(column.Range{}); ok {
		t.Fatal("Min on empty column must report !ok")
	}
	if _, ok := cc.Max(column.AtLeast(0)); ok {
		t.Fatal("Max on empty column must report !ok")
	}
}
