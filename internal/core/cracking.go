// Package core implements database cracking, the primary contribution
// surveyed by the tutorial "Adaptive Indexing in Modern Database
// Kernels" (EDBT 2012).
//
// A CrackerColumn is an adaptively reorganised copy of a base column.
// Every range selection answered against it physically partitions the
// data it had to look at, so that all qualifying values end up in a
// contiguous region. The boundaries produced this way are remembered in
// a cracker index (package crackeridx); subsequent queries restrict
// their work to the pieces that are still unordered with respect to
// their predicates. The first query pays roughly one scan; the more a
// key range is queried, the closer lookups get to binary search over a
// fully sorted column — index creation happens as a side effect of
// query processing, exactly as the tutorial's "every query is treated
// as an advice of how data should be stored" rule prescribes.
//
// The package implements crack-in-two, crack-in-three, random-pivot
// (stochastic) cracking to bound worst-case piece sizes, and a
// configurable piece-size limit, which together cover the "selection
// cracking" and "improving convergence speed" material of the tutorial.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/crackeridx"
	"adaptiveindex/internal/index"
)

// Options configures a CrackerColumn.
type Options struct {
	// CrackInThree enables the single-pass three-way partition when
	// both bounds of a range predicate fall into the same piece.
	// When disabled, two consecutive crack-in-two passes are used.
	CrackInThree bool
	// RandomPivotThreshold, when positive, keeps cracking a piece at
	// randomly chosen pivots until the piece containing the query
	// bound is no larger than the threshold, before the final crack at
	// the query bound itself. This is the stochastic-cracking style
	// defence against skewed (e.g. sequential) workloads that the
	// tutorial discusses under convergence improvements. Zero disables
	// it.
	RandomPivotThreshold int
	// Seed seeds the random pivot generator; the default (0) uses a
	// fixed seed so runs are reproducible.
	Seed int64
}

// DefaultOptions returns the configuration used by the canonical
// experiments: crack-in-three enabled, no stochastic pivots.
func DefaultOptions() Options {
	return Options{CrackInThree: true}
}

// CrackerColumn is a cracked copy of a base column together with its
// cracker index. It is not safe for concurrent use; packages concurrent
// and partition add latching on top.
type CrackerColumn struct {
	pairs column.Pairs
	index *crackeridx.Index
	opts  Options
	rng   *rand.Rand
	c     cost.Counters

	// version counts physical reorganisations (cracks and ripples)
	// since construction. dirtyLo/dirtyHi bound the position range
	// whose contents may have moved since the last Snapshot call;
	// dirtyHi <= dirtyLo means clean. Together they let Snapshot
	// reuse the previous epoch's copied pieces for untouched spans.
	version uint64
	dirtyLo int
	dirtyHi int
}

var _ index.Interface = (*CrackerColumn)(nil)

// NewCrackerColumn builds the cracker column for the given base values.
// Position i of the base column becomes the pair (vals[i], i); the
// copy itself is counted as touched values, mirroring the one-off cost
// of creating the cracker copy on first use in MonetDB.
func NewCrackerColumn(vals []column.Value, opts Options) *CrackerColumn {
	cc := &CrackerColumn{
		pairs: column.PairsFromValues(vals),
		index: crackeridx.New(),
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed + 1)),
	}
	cc.c.ValuesTouched += uint64(len(vals))
	cc.c.TuplesCopied += uint64(len(vals))
	return cc
}

// NewCrackerColumnFromPairs builds a cracker column over existing
// (value, rowid) pairs. Hybrid indexes and sideways cracking use this
// to crack partitions that are not full base columns.
func NewCrackerColumnFromPairs(pairs column.Pairs, opts Options) *CrackerColumn {
	return &CrackerColumn{
		pairs: pairs,
		index: crackeridx.New(),
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed + 1)),
	}
}

// Name identifies the index kind to the benchmark harness.
func (cc *CrackerColumn) Name() string { return "cracking" }

// Len returns the number of tuples in the column.
func (cc *CrackerColumn) Len() int { return len(cc.pairs) }

// Cost returns the cumulative logical work performed so far.
func (cc *CrackerColumn) Cost() cost.Counters { return cc.c }

// NumPieces returns the number of pieces the column is currently
// divided into.
func (cc *CrackerColumn) NumPieces() int { return len(cc.index.Pieces(len(cc.pairs))) }

// Pieces exposes the current piece layout for inspection and tools.
func (cc *CrackerColumn) Pieces() []crackeridx.Piece { return cc.index.Pieces(len(cc.pairs)) }

// Index exposes the cracker index (read-only use intended).
func (cc *CrackerColumn) Index() *crackeridx.Index { return cc.index }

// Pairs exposes the current physical order of the cracker column.
// Mutating the returned slice corrupts the index; it is exported for
// inspection, tests and tools only.
func (cc *CrackerColumn) Pairs() column.Pairs { return cc.pairs }

// crackInTwo partitions pairs[lo:hi) so that all values on the left
// side of bound b precede all others, and returns the split position.
func (cc *CrackerColumn) crackInTwo(lo, hi int, b crackeridx.Bound) int {
	cc.markDirty(lo, hi)
	return CrackInTwo(cc.pairs, lo, hi, b, &cc.c)
}

// markDirty records that positions [lo, hi) may be physically
// reorganised, widening the pending dirty range and bumping the
// column's reorganisation version. Snapshot consumes and resets it.
func (cc *CrackerColumn) markDirty(lo, hi int) {
	cc.version++
	if hi <= lo {
		return
	}
	if cc.dirtyHi <= cc.dirtyLo {
		cc.dirtyLo, cc.dirtyHi = lo, hi
		return
	}
	if lo < cc.dirtyLo {
		cc.dirtyLo = lo
	}
	if hi > cc.dirtyHi {
		cc.dirtyHi = hi
	}
}

// Version returns the column's reorganisation version: it increases on
// every crack and every ripple insert/delete, and is stable otherwise.
// Epoch publication uses it as a cheap change fingerprint.
func (cc *CrackerColumn) Version() uint64 { return cc.version }

// CrackInTwo partitions pairs[lo:hi) in place so that every value on
// the left side of bound b precedes every other value, returning the
// split position. Work is recorded in c. It is exported so that other
// adaptive index implementations (the hybrid algorithms, sideways
// cracking) can reuse the exact reorganisation primitive the cracker
// column uses.
func CrackInTwo(pairs column.Pairs, lo, hi int, b crackeridx.Bound, c *cost.Counters) int {
	leftOf := func(v column.Value) bool {
		c.Comparisons++
		c.ValuesTouched++
		if b.Inclusive {
			return v <= b.Value
		}
		return v < b.Value
	}
	i, j := lo, hi-1
	for i <= j {
		for i <= j && leftOf(pairs[i].Val) {
			i++
		}
		for i <= j && !leftOf(pairs[j].Val) {
			j--
		}
		if i < j {
			pairs[i], pairs[j] = pairs[j], pairs[i]
			c.Swaps++
			i++
			j--
		}
	}
	return i
}

// CrackInThree partitions pairs[lo:hi) in place into three regions in
// one pass: values left of bLow, values between the bounds, and values
// not left of bHigh. It returns the two split positions (p1, p2) such
// that the middle region is [p1, p2). Work is recorded in c. Like
// CrackInTwo it is exported for reuse by the hybrid algorithms.
func CrackInThree(pairs column.Pairs, lo, hi int, bLow, bHigh crackeridx.Bound, c *cost.Counters) (int, int) {
	leftOf := func(v column.Value, b crackeridx.Bound) bool {
		c.Comparisons++
		c.ValuesTouched++
		if b.Inclusive {
			return v <= b.Value
		}
		return v < b.Value
	}
	a, b, cEnd := lo, lo, hi
	for b < cEnd {
		v := pairs[b].Val
		switch {
		case leftOf(v, bLow):
			if a != b {
				pairs[a], pairs[b] = pairs[b], pairs[a]
				c.Swaps++
			}
			a++
			b++
		case !leftOf(v, bHigh):
			cEnd--
			pairs[b], pairs[cEnd] = pairs[cEnd], pairs[b]
			c.Swaps++
		default:
			b++
		}
	}
	return a, b
}

// LowerBound converts the lower end of a range predicate into the
// cracker-index bound whose split position is the first qualifying
// tuple. It is only meaningful when r.HasLow is true.
func LowerBound(r column.Range) crackeridx.Bound { return lowerBoundOf(r) }

// UpperBound converts the upper end of a range predicate into the
// cracker-index bound whose split position is one past the last
// qualifying tuple. It is only meaningful when r.HasHigh is true.
func UpperBound(r column.Range) crackeridx.Bound { return upperBoundOf(r) }

// crackInThree partitions pairs[lo:hi) into three regions in one pass:
// values left of bLow, values between the bounds, and values not left
// of bHigh. It returns the two split positions (p1, p2) such that the
// middle region is [p1, p2). bLow must not order after bHigh.
func (cc *CrackerColumn) crackInThree(lo, hi int, bLow, bHigh crackeridx.Bound) (int, int) {
	cc.markDirty(lo, hi)
	return CrackInThree(cc.pairs, lo, hi, bLow, bHigh, &cc.c)
}

// lowerBoundOf converts the lower end of a range predicate into the
// cracker-index bound whose split position is the first qualifying
// tuple.
func lowerBoundOf(r column.Range) crackeridx.Bound {
	return crackeridx.Bound{Value: r.Low, Inclusive: !r.IncLow}
}

// upperBoundOf converts the upper end of a range predicate into the
// cracker-index bound whose split position is one past the last
// qualifying tuple.
func upperBoundOf(r column.Range) crackeridx.Bound {
	return crackeridx.Bound{Value: r.High, Inclusive: r.IncHigh}
}

// establish makes sure bound b is a recorded boundary and returns its
// position, cracking whatever piece still covers it.
func (cc *CrackerColumn) establish(b crackeridx.Bound) int {
	n := len(cc.pairs)
	piece, pos, exact := cc.index.PieceFor(b, n)
	if exact {
		return pos
	}
	if cc.opts.RandomPivotThreshold > 0 {
		cc.shrinkPieceWithRandomPivots(piece, b)
		// The random pivots changed the piece layout; re-derive the
		// piece that still covers b (it may even be exact now).
		piece, pos, exact = cc.index.PieceFor(b, n)
		if exact {
			return pos
		}
	}
	pos = cc.crackInTwo(piece.Start, piece.End, b)
	cc.index.Insert(b, pos)
	return pos
}

// shrinkPieceWithRandomPivots repeatedly cracks the piece containing
// bound b at randomly selected pivot values until the piece is no
// larger than the configured threshold, then returns the (smaller)
// piece that still contains b.
func (cc *CrackerColumn) shrinkPieceWithRandomPivots(piece crackeridx.Piece, b crackeridx.Bound) crackeridx.Piece {
	threshold := cc.opts.RandomPivotThreshold
	for piece.End-piece.Start > threshold {
		span := piece.End - piece.Start
		pivotPair := cc.pairs[piece.Start+cc.rng.Intn(span)]
		pivot := crackeridx.Bound{Value: pivotPair.Val, Inclusive: false}
		if _, exists := cc.index.Lookup(pivot); exists {
			// The random pivot already is a boundary; splitting again
			// would not reduce the piece. Fall back to the midpoint
			// element to guarantee progress when duplicates abound.
			pivot = crackeridx.Bound{Value: cc.pairs[piece.Start+span/2].Val, Inclusive: true}
			if _, exists := cc.index.Lookup(pivot); exists {
				break
			}
		}
		pos := cc.crackInTwo(piece.Start, piece.End, pivot)
		if pos == piece.Start || pos == piece.End {
			// Degenerate split (all duplicates); record it and stop to
			// avoid spinning.
			cc.index.Insert(pivot, pos)
			break
		}
		cc.index.Insert(pivot, pos)
		// Continue with whichever half still contains b.
		if b.Compare(pivot) < 0 {
			piece.End = pos
			piece.Upper, piece.HasUpper = pivot, true
		} else if b.Compare(pivot) > 0 {
			piece.Start = pos
			piece.Lower, piece.HasLower = pivot, true
		} else {
			break
		}
	}
	return piece
}

// SelectPositions answers the range predicate r, reorganising the
// column as a side effect, and returns the contiguous position interval
// [start, end) of the cracker column that now holds exactly the
// qualifying tuples.
func (cc *CrackerColumn) SelectPositions(r column.Range) (start, end int) {
	n := len(cc.pairs)
	if r.Empty() {
		return 0, 0
	}
	switch {
	case !r.HasLow && !r.HasHigh:
		return 0, n
	case !r.HasLow:
		return 0, cc.establish(upperBoundOf(r))
	case !r.HasHigh:
		return cc.establish(lowerBoundOf(r)), n
	}

	bLow, bHigh := lowerBoundOf(r), upperBoundOf(r)
	if bLow.Compare(bHigh) > 0 {
		// e.g. (x, x] with IncLow=false, IncHigh=true on the same
		// value: nothing can qualify.
		return 0, 0
	}
	if bLow.Compare(bHigh) == 0 {
		p := cc.establish(bLow)
		return p, p
	}

	if cc.opts.CrackInThree {
		pieceLow, posLow, exactLow := cc.index.PieceFor(bLow, n)
		pieceHigh, posHigh, exactHigh := cc.index.PieceFor(bHigh, n)
		if !exactLow && !exactHigh && pieceLow.Start == pieceHigh.Start && pieceLow.End == pieceHigh.End {
			p1, p2 := cc.crackInThree(pieceLow.Start, pieceLow.End, bLow, bHigh)
			cc.index.Insert(bLow, p1)
			cc.index.Insert(bHigh, p2)
			return p1, p2
		}
		if exactLow && exactHigh {
			return posLow, posHigh
		}
	}
	start = cc.establish(bLow)
	end = cc.establish(bHigh)
	if end < start {
		// Can only happen for pathological predicates (empty ranges
		// already handled); clamp defensively.
		end = start
	}
	return start, end
}

// Select answers the range predicate r and returns the row identifiers
// of the qualifying tuples. The copy of the identifiers into the result
// is counted as TuplesCopied. Materialisation is a bulk copy over the
// contiguous qualifying region, not a per-pair append (see
// MaterializeRows).
func (cc *CrackerColumn) Select(r column.Range) column.IDList {
	start, end := cc.SelectPositions(r)
	if start == end {
		return nil
	}
	out := make(column.IDList, end-start)
	MaterializeRows(out, cc.pairs[start:end])
	cc.c.TuplesCopied += uint64(end - start)
	return out
}

// Count answers the range predicate r and returns only the number of
// qualifying tuples, avoiding result materialisation. Aggregation-style
// queries in the benchmark use it.
func (cc *CrackerColumn) Count(r column.Range) int {
	start, end := cc.SelectPositions(r)
	return end - start
}

// Validate checks the cracking invariants: the cracker index is
// structurally sound, and every piece only contains values compatible
// with its bounding pivots. Tests and the crackview tool call it after
// query sequences.
func (cc *CrackerColumn) Validate() error {
	n := len(cc.pairs)
	if err := cc.index.Validate(n); err != nil {
		return err
	}
	for _, piece := range cc.index.Pieces(n) {
		for i := piece.Start; i < piece.End; i++ {
			v := cc.pairs[i].Val
			if piece.HasLower && satisfiesLeft(v, piece.Lower) {
				return fmt.Errorf("position %d value %d violates lower bound %s of piece [%d,%d)",
					i, v, piece.Lower, piece.Start, piece.End)
			}
			if piece.HasUpper && !satisfiesLeft(v, piece.Upper) {
				return fmt.Errorf("position %d value %d violates upper bound %s of piece [%d,%d)",
					i, v, piece.Upper, piece.Start, piece.End)
			}
		}
	}
	return nil
}

// satisfiesLeft reports whether v belongs to the left side of bound b,
// without counting cost (used only by Validate).
func satisfiesLeft(v column.Value, b crackeridx.Bound) bool {
	if b.Inclusive {
		return v <= b.Value
	}
	return v < b.Value
}

// ErrNotFound is returned by Get when a row identifier does not exist.
var ErrNotFound = errors.New("core: row not found")

// Get returns the value currently stored for the given row identifier.
// It is a linear probe and exists for tests and tuple-reconstruction
// demonstrations; real reconstruction goes through package sideways.
func (cc *CrackerColumn) Get(row column.RowID) (column.Value, error) {
	for _, p := range cc.pairs {
		if p.Row == row {
			return p.Val, nil
		}
	}
	return 0, ErrNotFound
}
