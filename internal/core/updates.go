// Ripple insertion and deletion for cracker columns.
//
// "Updating a cracked database" (Idreos, Kersten, Manegold, SIGMOD
// 2007) keeps updates adaptive as well: pending insertions and
// deletions are buffered next to the cracker column and merged into it
// on demand, while queries run. The low-level mechanism that makes a
// single merge cheap is the ripple: because every piece of a cracked
// column is internally unordered, making room for (or closing the gap
// left by) one tuple only requires moving one tuple per affected piece
// — the first or last tuple of each piece hops to the piece's other
// end — instead of shifting everything. The methods in this file
// implement that mechanism; the merge policies that decide when to call
// them live in package updates.

package core

import (
	"fmt"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/crackeridx"
)

// insertRegion determines where value val belongs in the cracked
// layout. It returns the distinct boundary positions in
// [insertionPoint, limit) that have to ripple to make room, together
// with the first boundary the value lies to the left of (shiftFrom);
// hasShift is false when the value belongs after every boundary. limit
// is the current column length.
func (cc *CrackerColumn) insertRegion(val column.Value, limit int) (ripplePositions []int, shiftFrom crackeridx.Bound, hasShift bool) {
	bs := cc.index.Boundaries()
	// Find the first boundary whose bound val satisfies (falls left
	// of). Everything before it val lies to the right of; therefore the
	// tuple belongs immediately before that boundary's position.
	k := len(bs)
	for i, b := range bs {
		cc.c.Comparisons++
		if satisfiesLeft(val, b.Bound) {
			k = i
			break
		}
	}
	if k == len(bs) {
		return nil, crackeridx.Bound{}, false
	}
	insertPos := bs[k].Pos
	prev := -1
	for _, b := range bs[k:] {
		if b.Pos >= limit {
			break
		}
		if b.Pos != prev && b.Pos >= insertPos {
			ripplePositions = append(ripplePositions, b.Pos)
			prev = b.Pos
		}
	}
	return ripplePositions, bs[k].Bound, true
}

// RippleInsert inserts the pair into the cracker column, placing it in
// the piece its value belongs to and rippling one tuple per subsequent
// piece to keep every piece contiguous. All cracker-index invariants
// are preserved.
func (cc *CrackerColumn) RippleInsert(p column.Pair) {
	n := len(cc.pairs)
	ripple, shiftFrom, hasShift := cc.insertRegion(p.Val, n)
	cc.pairs = append(cc.pairs, column.Pair{})
	hole := n
	// Ripple backwards: every piece that starts at a boundary position
	// after the insertion point donates its first tuple to its own end.
	// The final hole position equals the insertion point: the first
	// rippled boundary position, or the end of the column when the
	// value belongs after every boundary.
	for i := len(ripple) - 1; i >= 0; i-- {
		pos := ripple[i]
		if pos != hole {
			cc.pairs[hole] = cc.pairs[pos]
			cc.c.Swaps++
		}
		hole = pos
	}
	cc.pairs[hole] = p
	cc.c.TuplesCopied++
	cc.c.ValuesTouched++
	// Every position from the insertion point to the (grown) end may
	// have changed: the hole rippled through each subsequent piece.
	cc.markDirty(hole, len(cc.pairs))
	// Only the boundaries the new value lies to the left of move one
	// slot up; boundaries that merely share the insertion position but
	// order before the value's piece must stay put.
	if hasShift {
		cc.index.ShiftPositionsFromBound(shiftFrom, 1)
	}
}

// deleteRegion determines the piece [start, end) that holds values
// equal to val and the distinct boundary positions in (end, limit) that
// delimit the pieces which have to ripple to close the gap.
func (cc *CrackerColumn) deleteRegion(val column.Value, limit int) (start, end int, rippleEnds []int) {
	bs := cc.index.Boundaries()
	start, end = 0, limit
	k := len(bs)
	for i, b := range bs {
		cc.c.Comparisons++
		if satisfiesLeft(val, b.Bound) {
			k = i
			break
		}
	}
	if k < len(bs) {
		end = bs[k].Pos
	}
	if k > 0 {
		start = bs[k-1].Pos
	}
	// The pieces after [start, end) are delimited by the distinct
	// boundary positions in (end, limit); each contributes the position
	// one past its last tuple.
	prev := end
	for _, b := range bs[k:] {
		if b.Pos <= prev || b.Pos >= limit {
			continue
		}
		rippleEnds = append(rippleEnds, b.Pos)
		prev = b.Pos
	}
	if end < limit {
		rippleEnds = append(rippleEnds, limit)
	}
	return start, end, rippleEnds
}

// RippleDelete removes the tuple with the given row identifier, whose
// value must be val, from the cracker column, rippling one tuple per
// subsequent piece to close the gap. It returns ErrNotFound if no such
// tuple exists in the piece val belongs to.
func (cc *CrackerColumn) RippleDelete(row column.RowID, val column.Value) error {
	n := len(cc.pairs)
	if n == 0 {
		return fmt.Errorf("%w: row %d value %d", ErrNotFound, row, val)
	}
	start, end, rippleEnds := cc.deleteRegion(val, n)
	pos := -1
	for i := start; i < end; i++ {
		cc.c.ValuesTouched++
		if cc.pairs[i].Row == row && cc.pairs[i].Val == val {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("%w: row %d value %d", ErrNotFound, row, val)
	}
	// Close the gap inside the piece with its own last tuple, then let
	// every subsequent piece donate its last tuple to the piece before
	// it.
	hole := end - 1
	if pos != hole {
		cc.pairs[pos] = cc.pairs[hole]
		cc.c.Swaps++
	}
	for _, pieceEnd := range rippleEnds {
		last := pieceEnd - 1
		if last != hole {
			cc.pairs[hole] = cc.pairs[last]
			cc.c.Swaps++
		}
		hole = last
	}
	cc.pairs = cc.pairs[:n-1]
	// Every boundary at or after the end of the emptied slot's piece
	// moves one slot down.
	cc.index.ShiftPositions(end, -1)
	// Positions from the deleted slot to the (pre-shrink) end rippled.
	cc.markDirty(pos, n)
	return nil
}
