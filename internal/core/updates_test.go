package core

import (
	"errors"
	"math/rand"
	"testing"

	"adaptiveindex/internal/column"
)

func TestRippleInsertIntoFreshColumn(t *testing.T) {
	cc := NewCrackerColumn([]column.Value{5, 1, 9}, DefaultOptions())
	cc.RippleInsert(column.Pair{Val: 7, Row: 100})
	if cc.Len() != 4 {
		t.Fatalf("Len = %d", cc.Len())
	}
	got := cc.Select(column.Point(7))
	if !got.Equal(column.IDList{100}) {
		t.Fatalf("got %v", got)
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRippleInsertPreservesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := randomValues(rng, 2000, 1000)
	cc := NewCrackerColumn(vals, DefaultOptions())
	// Crack the column with a few queries first.
	for q := 0; q < 30; q++ {
		lo := column.Value(rng.Intn(1000))
		cc.Count(column.NewRange(lo, lo+50))
	}
	// Insert values all over the domain, validating as we go.
	expect := append([]column.Value(nil), vals...)
	nextRow := column.RowID(len(vals))
	for i := 0; i < 500; i++ {
		v := column.Value(rng.Intn(1100) - 50)
		cc.RippleInsert(column.Pair{Val: v, Row: nextRow})
		expect = append(expect, v)
		nextRow++
		if i%100 == 0 {
			if err := cc.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	if cc.Len() != len(expect) {
		t.Fatalf("Len = %d, want %d", cc.Len(), len(expect))
	}
	// Every query must see the inserted values.
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(1100) - 50)
		r := column.NewRange(lo, lo+77)
		want := 0
		for _, v := range expect {
			if r.Contains(v) {
				want++
			}
		}
		if got := cc.Count(r); got != want {
			t.Fatalf("query %s: got %d want %d", r, got, want)
		}
	}
}

func TestRippleInsertBoundaryValues(t *testing.T) {
	cc := NewCrackerColumn([]column.Value{1, 2, 3, 4, 5, 6, 7, 8}, DefaultOptions())
	cc.Count(column.NewRange(3, 6)) // establishes boundaries <3 and <6
	// Insert values exactly at the boundary pivots.
	cc.RippleInsert(column.Pair{Val: 3, Row: 100})
	cc.RippleInsert(column.Pair{Val: 6, Row: 101})
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cc.Count(column.NewRange(3, 6)); got != 4 {
		t.Fatalf("Count[3,6) = %d, want 4 (3,4,5 plus inserted 3)", got)
	}
	if got := cc.Count(column.Point(6)); got != 2 {
		t.Fatalf("Count(=6) = %d, want 2", got)
	}
}

func TestRippleDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	vals := randomValues(rng, 1500, 400)
	cc := NewCrackerColumn(vals, DefaultOptions())
	for q := 0; q < 20; q++ {
		lo := column.Value(rng.Intn(400))
		cc.Count(column.NewRange(lo, lo+30))
	}
	alive := make(map[column.RowID]column.Value, len(vals))
	for i, v := range vals {
		alive[column.RowID(i)] = v
	}
	// Delete a third of the rows in random order.
	rows := make([]column.RowID, 0, len(alive))
	for r := range alive {
		rows = append(rows, r)
	}
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	for _, row := range rows[:500] {
		if err := cc.RippleDelete(row, alive[row]); err != nil {
			t.Fatalf("delete row %d: %v", row, err)
		}
		delete(alive, row)
	}
	if cc.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", cc.Len(), len(alive))
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(400))
		r := column.NewRange(lo, lo+45)
		want := 0
		for _, v := range alive {
			if r.Contains(v) {
				want++
			}
		}
		if got := cc.Count(r); got != want {
			t.Fatalf("query %s: got %d want %d", r, got, want)
		}
	}
}

func TestRippleDeleteNotFound(t *testing.T) {
	cc := NewCrackerColumn([]column.Value{1, 2, 3}, DefaultOptions())
	cc.Count(column.NewRange(1, 3))
	if err := cc.RippleDelete(99, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	// Wrong value for an existing row must also fail (the tuple is not
	// in the piece the wrong value maps to).
	if err := cc.RippleDelete(0, 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound for mismatched value, got %v", err)
	}
	empty := NewCrackerColumn(nil, DefaultOptions())
	if err := empty.RippleDelete(0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound on empty column, got %v", err)
	}
}

func TestRippleInsertDeleteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vals := randomValues(rng, 800, 300)
	cc := NewCrackerColumn(vals, DefaultOptions())
	for q := 0; q < 15; q++ {
		lo := column.Value(rng.Intn(300))
		cc.Count(column.NewRange(lo, lo+25))
	}
	// Insert then delete the same tuples; the query answers must end up
	// identical to the original column's.
	inserted := make(column.Pairs, 0, 200)
	for i := 0; i < 200; i++ {
		p := column.Pair{Val: column.Value(rng.Intn(300)), Row: column.RowID(10000 + i)}
		cc.RippleInsert(p)
		inserted = append(inserted, p)
	}
	for _, p := range inserted {
		if err := cc.RippleDelete(p.Row, p.Val); err != nil {
			t.Fatalf("delete %v: %v", p, err)
		}
	}
	if cc.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", cc.Len(), len(vals))
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 30; q++ {
		lo := column.Value(rng.Intn(300))
		r := column.NewRange(lo, lo+40)
		if got, want := cc.Count(r), len(scanOracle(vals, r)); got != want {
			t.Fatalf("query %s: got %d want %d", r, got, want)
		}
	}
}

func TestRippleCheaperThanRebuild(t *testing.T) {
	// A ripple insert must cost on the order of the number of pieces,
	// not the number of tuples.
	rng := rand.New(rand.NewSource(24))
	n := 100000
	vals := randomValues(rng, n, n)
	cc := NewCrackerColumn(vals, DefaultOptions())
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(n))
		cc.Count(column.NewRange(lo, lo+1000))
	}
	before := cc.Cost().Total()
	cc.RippleInsert(column.Pair{Val: column.Value(n / 2), Row: column.RowID(n + 1)})
	delta := cc.Cost().Total() - before
	if delta > uint64(n/100) {
		t.Fatalf("ripple insert cost %d is too close to a rebuild of %d tuples", delta, n)
	}
}
