package core

import (
	"math"
	"math/rand"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
)

// naiveScanSelect is the reference branchy loop the kernels replace.
func naiveScanSelect(vals []column.Value, r column.Range, c *cost.Counters) column.IDList {
	var out column.IDList
	for i, v := range vals {
		c.ValuesTouched++
		c.Comparisons++
		if r.Contains(v) {
			out = append(out, column.RowID(i))
			c.TuplesCopied++
		}
	}
	return out
}

func kernelRanges() []column.Range {
	return []column.Range{
		column.NewRange(10, 50),
		column.ClosedRange(10, 50),
		column.Range{Low: 10, HasLow: true, IncLow: false, High: 50, HasHigh: true, IncHigh: true},
		column.AtLeast(90),
		column.LessThan(5),
		column.Point(42),
		{},                         // unbounded
		column.NewRange(50, 50),    // empty half-open
		column.ClosedRange(60, 10), // inverted
		column.Range{Low: math.MaxInt64, HasLow: true, IncLow: false, HasHigh: false},
		column.Range{High: math.MinInt64, HasHigh: true, IncHigh: false, HasLow: false},
	}
}

func TestScanKernelsMatchNaiveLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]column.Value, 10_000)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(100))
	}
	vals[0], vals[1] = math.MinInt64, math.MaxInt64
	for _, r := range kernelRanges() {
		var cNaive, cKernel cost.Counters
		want := naiveScanSelect(vals, r, &cNaive)
		got := ScanSelect(vals, r, &cKernel)
		if !got.Equal(want) {
			t.Fatalf("range %s: kernel returned %d rows, naive %d", r, len(got), len(want))
		}
		// Order must be storage order, like the naive loop.
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range %s: row order diverges at %d: %d vs %d", r, i, got[i], want[i])
			}
		}
		if cKernel != cNaive {
			t.Fatalf("range %s: kernel counters %+v, naive %+v", r, cKernel, cNaive)
		}
		var cc cost.Counters
		if n := ScanCount(vals, r, &cc); n != len(want) {
			t.Fatalf("range %s: ScanCount = %d, want %d", r, n, len(want))
		}
	}
}

func TestClosedBoundsEdges(t *testing.T) {
	if _, _, ok := ClosedBounds(column.Range{Low: math.MaxInt64, HasLow: true, IncLow: false}); ok {
		t.Error("(MaxInt64, +inf) must be empty")
	}
	if _, _, ok := ClosedBounds(column.Range{High: math.MinInt64, HasHigh: true, IncHigh: false}); ok {
		t.Error("(-inf, MinInt64) must be empty")
	}
	lo, hi, ok := ClosedBounds(column.Range{})
	if !ok || lo != math.MinInt64 || hi != math.MaxInt64 {
		t.Errorf("unbounded range = [%d, %d] ok=%v", lo, hi, ok)
	}
}

func TestMaterializeRowsMatchesAppend(t *testing.T) {
	pairs := column.PairsFromValues([]column.Value{5, 3, 9, 1, 7})
	dst := make(column.IDList, len(pairs))
	MaterializeRows(dst, pairs)
	for i, p := range pairs {
		if dst[i] != p.Row {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], p.Row)
		}
	}
}

func TestGatherValues(t *testing.T) {
	vals := []column.Value{10, 20, 30, 40}
	rows := column.IDList{3, 0, 2}
	dst := make([]column.Value, len(rows))
	GatherValues(dst, vals, rows)
	want := []column.Value{40, 10, 30}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}
