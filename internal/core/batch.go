package core

import (
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/index"
)

var (
	_ index.Batcher       = (*CrackerColumn)(nil)
	_ index.SelectBatcher = (*CrackerColumn)(nil)
)

// CountBatch answers a batch of range predicates as one shared cracking
// pass: the predicates execute in recursive-median order
// (index.BatchOrder), so the batch subdivides the column geometrically
// — O(n·log k) for k queries — even when the batch's arrival order is
// the ascending sequence that costs plain per-query dispatch O(k·n).
// Results are positional.
func (cc *CrackerColumn) CountBatch(rs []column.Range) []int {
	out := make([]int, len(rs))
	for _, i := range index.BatchOrder(rs) {
		start, end := cc.SelectPositions(rs[i])
		out[i] = end - start
	}
	return out
}

// SelectBatch is CountBatch with materialised selection vectors.
func (cc *CrackerColumn) SelectBatch(rs []column.Range) []column.IDList {
	out := make([]column.IDList, len(rs))
	for _, i := range index.BatchOrder(rs) {
		out[i] = cc.Select(rs[i])
	}
	return out
}
