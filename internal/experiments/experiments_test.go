package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// tiny returns a configuration small enough to run every experiment in
// well under a second.
func tiny() Config {
	return Config{N: 20000, Queries: 100, Domain: 20000, Selectivity: 0.01, Seed: 7}
}

func TestAllDefinitionsRun(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run(def.ID, func(t *testing.T) {
			res := def.Run(tiny())
			if res.ID != def.ID {
				t.Fatalf("result ID %q, want %q", res.ID, def.ID)
			}
			if res.Text == "" {
				t.Fatal("empty report text")
			}
			if len(res.Summaries) == 0 {
				t.Fatal("no summary rows")
			}
			for _, s := range res.Summaries {
				if s.IndexName == "" {
					t.Fatal("summary row without a name")
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E4"); !ok {
		t.Fatal("E4 must exist")
	}
	if _, ok := Lookup("e4"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("E99 must not exist")
	}
	if len(All()) != 21 {
		t.Fatalf("expected 21 experiments, got %d", len(All()))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N <= 0 || c.Queries <= 0 || c.Domain <= 0 || c.Selectivity <= 0 || c.Seed == 0 {
		t.Fatalf("withDefaults left zero fields: %+v", c)
	}
	d := DefaultConfig()
	if d.N != 1_000_000 || d.Queries != 1000 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	// Domain defaults to N when unset.
	c2 := Config{N: 123}.withDefaults()
	if c2.Domain != 123 {
		t.Fatalf("Domain default = %d, want 123", c2.Domain)
	}
}

// The headline shape claims of the reproduction, checked at small
// scale so they run as part of the normal test suite.
func TestE1Shape(t *testing.T) {
	res := E1PerQueryCurve(tiny())
	var scan, full, crack uint64
	var crackFirst, fullFirst uint64
	for _, s := range res.Summaries {
		switch s.IndexName {
		case "scan":
			scan = s.TotalWork
		case "fullsort":
			full = s.TotalWork
			fullFirst = s.FirstQuery
		case "cracking":
			crack = s.TotalWork
			crackFirst = s.FirstQuery
		}
	}
	if crack >= scan {
		t.Fatalf("cracking total work (%d) must beat scanning (%d)", crack, scan)
	}
	if crackFirst >= fullFirst {
		t.Fatalf("cracking first query (%d) must be cheaper than full index build (%d)", crackFirst, fullFirst)
	}
	if full == 0 {
		t.Fatal("full index run missing")
	}
}

func TestE3Ordering(t *testing.T) {
	res := E3FirstQuery(tiny())
	first := map[string]uint64{}
	for _, s := range res.Summaries {
		first[s.IndexName] = s.FirstQuery
	}
	if first["scan"] >= first["fullsort"] {
		t.Fatalf("scan first query (%d) must be cheaper than lazy full sort (%d)", first["scan"], first["fullsort"])
	}
	if first["cracking"] >= first["fullsort"] {
		t.Fatalf("cracking first query (%d) must be cheaper than lazy full sort (%d)", first["cracking"], first["fullsort"])
	}
	if first["fullsort-eager"] >= first["cracking"] {
		t.Fatalf("the eagerly built index must have a near-zero first query, got %d", first["fullsort-eager"])
	}
	if first["adaptivemerge"] <= first["cracking"] {
		t.Fatalf("adaptive merging's first query (%d) must cost more than cracking's (%d)",
			first["adaptivemerge"], first["cracking"])
	}
}

func TestE8AdaptiveReactsToShift(t *testing.T) {
	res := E8OnlineOffline(tiny())
	totals := map[string]uint64{}
	for _, s := range res.Summaries {
		totals[s.IndexName] = s.TotalWork
	}
	if totals["cracking"] >= totals["scan"] {
		t.Fatalf("adaptive indexing (%d) must beat scanning (%d) across the workload change",
			totals["cracking"], totals["scan"])
	}
	if !strings.Contains(res.Text, "workload change") {
		t.Fatal("report text should mention the workload change")
	}
}

// TestE15PlannerTracksBest is the acceptance gate for the access-path
// planner: on the drifting hot-set select-project workload, PathAuto
// must beat the worst static path by a wide margin (it pays a handful
// of probes, never a full run of scans) and track the best static path
// closely (the explore phase is the only overhead). The experiment
// reports ~15-20% over best at default scale; the assertion leaves
// room for seed variance.
func TestE15PlannerTracksBest(t *testing.T) {
	res := E15Planner(Config{N: 100_000, Queries: 600, Domain: 100_000, Selectivity: 0.01, Seed: 7})
	totals := map[string]uint64{}
	for _, s := range res.Summaries {
		totals[s.IndexName] = s.TotalWork
	}
	auto := totals["auto"]
	if auto == 0 {
		t.Fatalf("auto run missing: %+v", totals)
	}
	best, worst := uint64(0), uint64(0)
	for _, name := range []string{"scan", "cracking", "sideways", "parallel"} {
		if totals[name] == 0 {
			t.Fatalf("static path %s missing: %+v", name, totals)
		}
		if best == 0 || totals[name] < best {
			best = totals[name]
		}
		if totals[name] > worst {
			worst = totals[name]
		}
	}
	if auto*4 > worst {
		t.Fatalf("planner must beat the worst static path by a wide margin: auto %d, worst %d", auto, worst)
	}
	if auto*10 > best*13 {
		t.Fatalf("planner must track within ~20%% of the best static path (allowing variance): auto %d, best %d (%.2fx)",
			auto, best, float64(auto)/float64(best))
	}
}

// TestE16 is the acceptance gate for the engine write path: on the
// drifting mixed read/write workload, every merge policy must return
// identical rows for every read (the policies move merge work in
// time, never change answers), and MergeGradually must beat
// MergeImmediately on total recurring cost — the drifting focus means
// most buffered updates are never touched by a query, so the ripple
// work the immediate policy pays on every write is largely wasted.
func TestE16(t *testing.T) {
	outcomes, identical := RunE16(Config{N: 100_000, Queries: 800, Domain: 100_000, Selectivity: 0.01, Seed: 7})
	if !identical {
		t.Fatal("merge policies disagreed on read results")
	}
	byPolicy := map[string]E16Outcome{}
	for _, o := range outcomes {
		byPolicy[o.Policy] = o
	}
	grad, ok := byPolicy["gradual"]
	if !ok {
		t.Fatalf("gradual outcome missing: %+v", outcomes)
	}
	imm, ok := byPolicy["immediate"]
	if !ok {
		t.Fatalf("immediate outcome missing: %+v", outcomes)
	}
	if grad.Inserts == 0 || grad.Deletes == 0 {
		t.Fatalf("stream carried no writes: %+v", grad)
	}
	if grad.Recurring >= imm.Recurring {
		t.Fatalf("gradual merging must beat immediate on recurring cost: %d vs %d", grad.Recurring, imm.Recurring)
	}
	// Laziness must be visible: the gradual run ends with updates still
	// buffered, the immediate run never buffers.
	if grad.PendingIns+grad.PendingDel == 0 {
		t.Fatalf("gradual run left no pending updates: %+v", grad)
	}
	if imm.PendingIns+imm.PendingDel != 0 {
		t.Fatalf("immediate run left pending updates: %+v", imm)
	}
	if imm.MergedIns != uint64(imm.Inserts) {
		t.Fatalf("immediate run merged %d of %d inserts", imm.MergedIns, imm.Inserts)
	}
}

func TestE12ReportsPageTouches(t *testing.T) {
	res := E12MergeIO(tiny())
	if !strings.Contains(res.Text, "page") {
		t.Fatal("E12 must report page touches")
	}
	// Smaller runs mean more runs and therefore more probe page
	// touches; just assert all configurations produced rows.
	if len(res.Summaries) < 4 {
		t.Fatalf("expected at least 4 rows, got %d", len(res.Summaries))
	}
}

// TestE17BinaryBytesDominateJSON pins the deterministic half of E17's
// claim: for identical select-project results, the binary columnar
// encoding must put strictly fewer bytes on the wire than JSON.
func TestE17BinaryBytesDominateJSON(t *testing.T) {
	jsonBytes, binBytes := WireBytes(tiny())
	if jsonBytes == 0 || binBytes == 0 {
		t.Fatalf("empty byte totals: json %d, binary %d", jsonBytes, binBytes)
	}
	if binBytes >= jsonBytes {
		t.Fatalf("binary encoding (%d bytes) must beat JSON (%d bytes)", binBytes, jsonBytes)
	}
	// The totals are deterministic: a second run must reproduce them.
	j2, b2 := WireBytes(tiny())
	if j2 != jsonBytes || b2 != binBytes {
		t.Fatalf("byte totals not deterministic: (%d,%d) then (%d,%d)", jsonBytes, binBytes, j2, b2)
	}
}

// TestE18TracingIsFreeOnCounters pins the deterministic half of E18's
// claim: attaching a span recorder and event log to every query must
// leave the engine's logical work counters exactly unchanged. The
// wall-clock half (sampled tracing costs low single-digit percent) is
// reported by E18TracingOverhead and machine-dependent, so it is not
// asserted here; benchjson gates this invariant in CI as
// trace_overhead_work = 0.
func TestE18TracingIsFreeOnCounters(t *testing.T) {
	bare, traced := E18WorkParity(tiny())
	if bare == 0 {
		t.Fatal("bare run produced no work")
	}
	if traced != bare {
		t.Fatalf("tracing perturbed the counters: bare %d, traced %d", bare, traced)
	}
}

// TestE19ShardWorkDeterministic pins the deterministic half of E19's
// claim: re-running a cell reproduces the exact summed work counter
// (the sum over shards is scheduling-independent), and striping the
// same stream over more shards leaves the logical work in the same
// ballpark — the scaling comes from parallelism, not from touching
// fewer tuples.
func TestE19ShardWorkDeterministic(t *testing.T) {
	out := RunE19(tiny())
	if len(out) != 8 {
		t.Fatalf("expected 8 cells (2 shapes x 4 shard counts), got %d", len(out))
	}
	again := RunE19(tiny())
	for i := range out {
		if out[i].Work != again[i].Work {
			t.Fatalf("%s/shards=%d work not deterministic: %d then %d",
				out[i].Shape, out[i].Shards, out[i].Work, again[i].Work)
		}
		if out[i].Ops == 0 || out[i].Work == 0 {
			t.Fatalf("%s/shards=%d produced no work", out[i].Shape, out[i].Shards)
		}
	}
}

// TestE19FourShardsBeatOneShard enforces the scaling acceptance
// criterion on multi-core hosts: at 4 shards the multitable replay
// must beat the single-shard replay on throughput. On a single-core
// machine the scatter-gather fan-out has nothing to run on, so the
// assertion is skipped there; CI runs this on multi-core runners.
func TestE19FourShardsBeatOneShard(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: shard fan-out cannot scale on one core; CI enforces this on multi-core runners", procs)
	}
	cfg := tiny()
	cfg.N = 60000
	cfg.Queries = 240
	best := map[int]float64{}
	// Best-of-two throughput per shard count to absorb scheduler noise.
	for run := 0; run < 2; run++ {
		for _, o := range RunE19(cfg) {
			if o.Shape != "multitable" {
				continue
			}
			if tp := o.Throughput(); tp > best[o.Shards] {
				best[o.Shards] = tp
			}
		}
	}
	if best[4] <= best[1] {
		t.Fatalf("4-shard multitable throughput %.0f ops/s does not beat 1-shard %.0f ops/s on %d procs",
			best[4], best[1], procs)
	}
}

// TestE20ReadersScaleThroughput enforces the epoch-read scaling
// acceptance criterion on multi-core hosts: at 4 readers the hot-set
// select-project replay must deliver at least twice the single-reader
// (serialised executor) throughput on one shard. On fewer than 4 procs
// the reader pool cannot scale, so the assertion is skipped there; CI
// runs this on multi-core runners.
func TestE20ReadersScaleThroughput(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("GOMAXPROCS=%d: the epoch reader pool cannot scale below 4 procs; CI enforces this on multi-core runners", procs)
	}
	cfg := tiny()
	cfg.N = 60000
	// A long stream, so steady-state reads dominate the one-off
	// convergence phase (which the serialised baseline finishes faster:
	// it cracks inline, the epoch pool waits on the reorganiser).
	cfg.Queries = 2000
	best := map[int]float64{}
	// Best-of-two throughput per reader count to absorb scheduler noise.
	for run := 0; run < 2; run++ {
		for _, o := range RunE20(cfg) {
			if tp := o.Throughput(); tp > best[o.Readers] {
				best[o.Readers] = tp
			}
		}
	}
	if best[4] < 2*best[1] {
		t.Fatalf("4-reader throughput %.0f q/s is under 2x the 1-reader %.0f q/s on %d procs",
			best[4], best[1], procs)
	}
}

// TestE20EpochMachineryEngages pins the sweep's structure: the
// readers=1 cell must never touch the epoch path (its counter stream is
// the byte-identical baseline benchjson gates) and every cell above it
// must answer all queries as epoch reads with the background
// reorganiser doing the cracking.
func TestE20EpochMachineryEngages(t *testing.T) {
	out := RunE20(tiny())
	if len(out) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(out))
	}
	for _, o := range out {
		if o.Ops == 0 {
			t.Fatalf("readers=%d replayed nothing", o.Readers)
		}
		if o.Readers == 1 {
			if o.EpochReads != 0 || o.EpochReadWork != 0 {
				t.Fatalf("readers=1 must stay on the serialised executor, saw %d epoch reads", o.EpochReads)
			}
			if o.EngineWork == 0 {
				t.Fatal("readers=1 produced no engine work")
			}
			continue
		}
		if o.EpochReads != uint64(o.Ops) {
			t.Fatalf("readers=%d: %d of %d queries were epoch reads", o.Readers, o.EpochReads, o.Ops)
		}
		if o.IntentsApplied == 0 {
			t.Fatalf("readers=%d: the background reorganiser never cracked", o.Readers)
		}
	}
}

// TestE21FailoverTimeline pins the structural contract of the routed
// failover measurement: the router detects a killed backend (reads go
// partial once the probe takes it down) and re-admits it after revival
// (reads whole again), both within the experiment's bounded loops.
func TestE21FailoverTimeline(t *testing.T) {
	fo := RunE21Failover(tiny())
	if fo.Detect <= 0 {
		t.Fatalf("detection time %v, want > 0", fo.Detect)
	}
	if fo.Readmit <= 0 {
		t.Fatalf("re-admission time %v, want > 0", fo.Readmit)
	}
}

// TestE21RoutedWorkDeterministic replays the same single-session
// stream (sequential: with one closed loop the interleaving is fixed)
// through a routed two-node cluster twice; the merged cluster work
// must agree run to run (the counters are logical, never wall-clock).
func TestE21RoutedWorkDeterministic(t *testing.T) {
	cfg := tiny()
	streams := e19Streams(cfg, "multitable", 1, 40)
	a := e21Replay(cfg, "multitable", 2, streams)
	b := e21Replay(cfg, "multitable", 2, streams)
	if a.Work == 0 || a.Work != b.Work {
		t.Fatalf("routed work not deterministic: %d vs %d", a.Work, b.Work)
	}
}
