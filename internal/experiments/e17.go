package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/wire"
	"adaptiveindex/internal/workload"
)

// twoColumnEngine builds the one-table, two-column catalog the
// select-project wire experiments run against: c0 is the selection
// column, c1 the dragged-along projection.
func twoColumnEngine(cfg Config) *engine.Engine {
	tab := engine.NewTable("data")
	for ci, seedOff := range []int64{0, 1} {
		if err := tab.AddColumn(fmt.Sprintf("c%d", ci), workload.DataUniform(cfg.Seed+seedOff, cfg.N, cfg.Domain)); err != nil {
			panic(err)
		}
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tab); err != nil {
		panic(err)
	}
	return engine.New(cat, core.DefaultOptions())
}

// WireBytes replays a pinned select-project stream on a fresh engine
// and returns the total response-body bytes the JSON and the binary
// columnar encodings put on the wire for identical results. Both sides
// encode the same engine results with a pinned latency field, so the
// totals are deterministic given cfg — benchjson records them as gated
// regression metrics.
func WireBytes(cfg Config) (jsonBytes, binaryBytes uint64) {
	cfg = cfg.withDefaults()
	eng := twoColumnEngine(cfg)
	queries := workload.Queries(
		workload.NewUniform(cfg.Seed+17, 0, column.Value(cfg.Domain), cfg.Selectivity), cfg.Queries)
	for _, r := range queries {
		res, err := eng.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathCracking})
		if err != nil {
			panic(err)
		}
		jb, err := json.Marshal(server.QueryResponse{
			Count:   res.Count,
			Rows:    res.Rows,
			Columns: res.Columns,
			Path:    res.Path.String(),
		})
		if err != nil {
			panic(err)
		}
		// +1 for the newline json.Encoder appends on the real wire.
		jsonBytes += uint64(len(jb)) + 1
		var buf bytes.Buffer
		h := wire.Header{Count: res.Count, Path: res.Path.String(), Columns: []string{"c1"}}
		if err := wire.Encode(&buf, h, res.Rows, [][]column.Value{res.Columns["c1"]}, 0, 0); err != nil {
			panic(err)
		}
		binaryBytes += uint64(buf.Len())
	}
	return jsonBytes, binaryBytes
}

// e17Proto is one protocol variant under test.
type e17Proto struct {
	name   string
	accept string // Accept header; empty keeps the JSON path
}

// E17WireProtocol evaluates the binary columnar wire format against
// the JSON response path over real HTTP: the same shared-pool hot-set
// select-project workload is replayed at several session counts on
// JSON, whole-result binary, and block-streamed binary responses, all
// over one tuned keep-alive transport. Reported per cell: wall-clock
// throughput, client-observed p50/p99, and response bytes per query.
// Serialisation and transport costs are invisible to logical work
// counters — the engine does identical cracking either way (the
// differential tests pin that) — so this experiment, like E13 and E14,
// reports wall time; the bytes column is the deterministic part.
func E17WireProtocol(cfg Config) Result {
	cfg = cfg.withDefaults()

	protos := []e17Proto{
		{"json", ""},
		{"binary", wire.AcceptValue(0)},
		{"binary+stream", wire.AcceptValue(4096)},
	}
	sessionCounts := []int{1, 8, 32}

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E17: wire protocols, hot-set select-project workload (selectivity %.3f)\n", cfg.Selectivity)
	fmt.Fprintf(&b, "%-22s %10s %12s %10s %10s %12s\n",
		"configuration", "wall", "queries/s", "p50", "p99", "bytes/query")

	for _, sessions := range sessionCounts {
		perSession := cfg.Queries / sessions
		if perSession < 1 {
			perSession = 1
		}
		gens, err := workload.SessionGenerators("hotset", cfg.Seed+8, sessions, 0, column.Value(cfg.Domain), cfg.Selectivity)
		if err != nil {
			b.WriteString("error: " + err.Error() + "\n")
			continue
		}
		streams := make([][]column.Range, sessions)
		for g := range streams {
			streams[g] = workload.Queries(gens[g], perSession)
		}
		for _, proto := range protos {
			// A fresh engine per cell: every protocol pays the same
			// cracking curve from cold, so wall times are comparable.
			eng := twoColumnEngine(cfg)
			svc, err := server.NewService(server.Config{Engine: eng, DefaultTable: "data", DefaultPath: "cracking", BatchWindow: 200 * time.Microsecond})
			if err != nil {
				b.WriteString("error: " + err.Error() + "\n")
				continue
			}
			ts := httptest.NewServer(svc.Handler())
			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns:        2 * sessions,
				MaxIdleConnsPerHost: 2 * sessions,
			}}

			lats := make([][]time.Duration, sessions)
			bytesPerSession := make([]uint64, sessions)
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < sessions; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for _, r := range streams[id] {
						t0 := time.Now()
						n, err := e17Query(client, ts.URL, r, proto.accept)
						if err != nil {
							return
						}
						lats[id] = append(lats[id], time.Since(t0))
						bytesPerSession[id] += n
					}
				}(g)
			}
			wg.Wait()
			wall := time.Since(start)
			ts.Close()
			svc.Close()

			var all []time.Duration
			var totalBytes uint64
			for g := range lats {
				all = append(all, lats[g]...)
				totalBytes += bytesPerSession[g]
			}
			name := fmt.Sprintf("%s/s=%d", proto.name, sessions)
			if len(all) == 0 {
				fmt.Fprintf(&b, "%-22s all queries failed\n", name)
				continue
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pct := func(p float64) time.Duration {
				i := int(p * float64(len(all)))
				if i >= len(all) {
					i = len(all) - 1
				}
				return all[i]
			}
			fmt.Fprintf(&b, "%-22s %10s %12.0f %10s %10s %12.0f\n",
				name, wall.Round(time.Microsecond), float64(len(all))/wall.Seconds(),
				pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
				float64(totalBytes)/float64(len(all)))
			rows = append(rows, bench.Summary{
				IndexName: name,
				TotalWork: eng.Cost().Total(),
				TotalWall: wall,
			})
		}
	}

	jsonBytes, binBytes := WireBytes(Config{N: cfg.N, Queries: min(cfg.Queries, 200), Domain: cfg.Domain, Selectivity: cfg.Selectivity, Seed: cfg.Seed})
	fmt.Fprintf(&b, "\ndeterministic encode totals (%d select-project results): json %d bytes, binary %d bytes (%.1fx smaller)\n",
		min(cfg.Queries, 200), jsonBytes, binBytes, float64(jsonBytes)/float64(max(binBytes, 1)))
	b.WriteString("bytes/query: response-body bytes the client consumed; identical engine\nwork either way — only serialisation and transport differ.\n")
	return Result{ID: "E17", Title: "Binary columnar wire format vs JSON", Summaries: rows, Text: b.String()}
}

// e17Query issues one select-project query and fully consumes the
// response on the negotiated protocol, returning the body size.
func e17Query(client *http.Client, base string, r column.Range, accept string) (uint64, error) {
	q := server.QueryRequest{Op: "select", Table: "data", Column: "c0", Project: []string{"c1"}}
	if r.HasLow {
		lo := r.Low
		q.Low = &lo
	}
	if r.HasHigh {
		hi := r.High
		q.High = &hi
	}
	body, err := json.Marshal(q)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	cr := &countReader{r: resp.Body}
	if resp.Header.Get("Content-Type") == wire.ContentType {
		_, err = wire.Decode(cr)
	} else {
		var qr server.QueryResponse
		err = json.NewDecoder(cr).Decode(&qr)
	}
	if err != nil {
		return uint64(cr.n), err
	}
	io.Copy(io.Discard, cr)
	return uint64(cr.n), nil
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
