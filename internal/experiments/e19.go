package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/workload"
)

// E19Outcome is one (workload shape, shard count) cell of the shard
// scaling sweep.
type E19Outcome struct {
	Shape  string
	Shards int
	// Ops is the number of replayed operations (reads plus writes).
	Ops  int
	Wall time.Duration
	P50  time.Duration
	P99  time.Duration
	// Work is the cluster's summed logical work after the replay —
	// deterministic per cell, so the sweep's efficiency story (total
	// tuples touched barely moves while wall time drops) is checkable.
	Work uint64
}

// Throughput is the cell's operations per second.
func (o E19Outcome) Throughput() float64 {
	if o.Wall <= 0 {
		return 0
	}
	return float64(o.Ops) / o.Wall.Seconds()
}

// e19Catalog builds the two-table catalog the scaling sweep stripes:
// orders (3 columns) and events (2 columns), both uniform.
func e19Catalog(cfg Config) *engine.Catalog {
	cat := engine.NewCatalog()
	for ti, spec := range []struct {
		name string
		rows int
		cols int
	}{{"orders", cfg.N, 3}, {"events", cfg.N/2 + 1, 2}} {
		t := engine.NewTable(spec.name)
		for ci := 0; ci < spec.cols; ci++ {
			vals := workload.DataUniform(cfg.Seed+int64(ti*10+ci), spec.rows, cfg.Domain)
			if err := t.AddColumn(fmt.Sprintf("c%d", ci), vals); err != nil {
				panic(err)
			}
		}
		if err := cat.Register(t); err != nil {
			panic(err)
		}
	}
	return cat
}

// e19Streams drains the per-session op streams for one workload shape.
// Generation happens up front so it never sits inside a timed replay.
func e19Streams(cfg Config, shape string, sessions, perSession int) [][]workload.TableOp {
	hi := column.Value(cfg.Domain)
	streams := make([][]workload.TableOp, sessions)
	switch shape {
	case "multitable":
		targets := []workload.Target{
			{Table: "orders", Column: "c0", Project: []string{"c1"}},
			{Table: "events", Column: "c0"},
		}
		gens, err := workload.MultiTableSessions("hotset", cfg.Seed+19, sessions, targets, 0, hi, cfg.Selectivity)
		if err != nil {
			panic(err)
		}
		for s, g := range gens {
			ops := make([]workload.TableOp, perSession)
			for i := range ops {
				ops[i] = workload.TableOp{Kind: workload.OpRead, Query: g.NextQuery()}
			}
			streams[s] = ops
		}
	case "mixed":
		target := workload.Target{Table: "orders", Column: "c0", Project: []string{"c1"}}
		gens, err := workload.MixedSessions("mixed", "hotset", cfg.Seed+23, sessions, target, 3, 0, hi, cfg.Selectivity, 0.1, 0.3)
		if err != nil {
			panic(err)
		}
		for s, g := range gens {
			ops := make([]workload.TableOp, perSession)
			for i := range ops {
				ops[i] = g.NextOp()
			}
			streams[s] = ops
		}
	default:
		panic("e19: unknown shape " + shape)
	}
	return streams
}

// e19Replay runs one cell: a fresh cluster at the given shard count
// replays the interleaved session streams through the cluster's single
// caller — exactly how the service's executor drives it — and reports
// wall time and per-op latency. Reads fan out to every shard
// concurrently; writes route to the owning shard; deletes tombstone
// the replayer's own earlier inserts, oldest first, as the mixed
// generator specifies.
func e19Replay(cfg Config, shape string, shards int, streams [][]workload.TableOp) E19Outcome {
	cl, err := shard.New(e19Catalog(cfg), shards, core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	type fifo struct{ rows []column.RowID }
	owned := make([]fifo, len(streams))
	var lats []time.Duration
	ops := 0
	start := time.Now()
	for i := 0; ; i++ {
		ran := false
		for s := range streams {
			if i >= len(streams[s]) {
				continue
			}
			ran = true
			op := streams[s][i]
			t0 := time.Now()
			switch op.Kind {
			case workload.OpRead:
				q := engine.Query{
					Table:   op.Query.Table,
					Column:  op.Query.Column,
					R:       op.Query.R,
					Project: op.Query.Project,
					Path:    engine.PathCracking,
				}
				if _, err := cl.Run(q); err != nil {
					panic(err)
				}
			case workload.OpInsert:
				row, err := cl.InsertRow(op.Table, op.Values)
				if err != nil {
					panic(err)
				}
				owned[s].rows = append(owned[s].rows, row)
			case workload.OpDelete:
				if len(owned[s].rows) == 0 {
					continue
				}
				row := owned[s].rows[0]
				owned[s].rows = owned[s].rows[1:]
				if err := cl.DeleteRow(op.Table, row); err != nil {
					panic(err)
				}
			}
			lats = append(lats, time.Since(t0))
			ops++
		}
		if !ran {
			break
		}
	}
	wall := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return E19Outcome{
		Shape:  shape,
		Shards: shards,
		Ops:    ops,
		Wall:   wall,
		P50:    pct(0.50),
		P99:    pct(0.99),
		Work:   cl.Cost().Total(),
	}
}

// RunE19 sweeps shard counts 1, 2, 4 and 8 over the multitable
// (read-only, two tables) and mixed (reads plus 10% writes) session
// workloads, replaying identical streams per shape so the cells differ
// only in sharding.
func RunE19(cfg Config) []E19Outcome {
	cfg = cfg.withDefaults()
	const sessions = 8
	perSession := cfg.Queries / sessions
	if perSession < 1 {
		perSession = 1
	}
	var out []E19Outcome
	for _, shape := range []string{"multitable", "mixed"} {
		streams := e19Streams(cfg, shape, sessions, perSession)
		for _, shards := range []int{1, 2, 4, 8} {
			out = append(out, e19Replay(cfg, shape, shards, streams))
		}
	}
	return out
}

// E19ShardScaling evaluates the shard-per-core scatter-gather engine:
// the same session streams replayed through row-striped clusters of 1,
// 2, 4 and 8 shards. Every read fans out to all shards and each shard
// cracks a 1/N stripe concurrently, so on a multi-core host wall time
// and tail latency drop with the shard count while the summed logical
// work stays nearly flat — the speedup is parallelism, not less work.
// On a single-core host the fan-out has nothing to run on and the
// sweep degenerates to goroutine overhead; the wall columns are
// machine-dependent by nature (the deterministic work column is what
// benchjson gates).
func E19ShardScaling(cfg Config) Result {
	cfg = cfg.withDefaults()
	outcomes := RunE19(cfg)

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E19: shard-per-core scatter-gather scaling (8 sessions, selectivity %.3f)\n", cfg.Selectivity)
	fmt.Fprintf(&b, "%-20s %8s %10s %12s %10s %10s %14s\n",
		"configuration", "ops", "wall", "ops/s", "p50", "p99", "summed work")
	base := make(map[string]E19Outcome)
	for _, o := range outcomes {
		name := fmt.Sprintf("%s/shards=%d", o.Shape, o.Shards)
		fmt.Fprintf(&b, "%-20s %8d %10s %12.0f %10s %10s %14d\n",
			name, o.Ops, o.Wall.Round(time.Microsecond), o.Throughput(),
			o.P50.Round(time.Microsecond), o.P99.Round(time.Microsecond), o.Work)
		if o.Shards == 1 {
			base[o.Shape] = o
		} else if b1, ok := base[o.Shape]; ok && o.Wall > 0 {
			// Speedup lines keep the report honest about the host.
			fmt.Fprintf(&b, "%-20s speedup %.2fx vs 1 shard\n", "", b1.Wall.Seconds()/o.Wall.Seconds())
		}
		rows = append(rows, bench.Summary{IndexName: name, TotalWork: o.Work, TotalWall: o.Wall})
	}
	b.WriteString("reads fan out to every shard (row stripes cannot be pruned); writes route to\nthe owning shard. Wall columns are machine-dependent; work is deterministic.\n")
	return Result{ID: "E19", Title: "Shard-per-core scatter-gather scaling", Summaries: rows, Text: b.String()}
}
