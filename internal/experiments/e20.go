package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/workload"
)

// E20Outcome is one readers cell of the epoch-read scaling sweep: the
// same hot-set select-project streams replayed at a fixed shard count
// while only the epoch read concurrency varies.
type E20Outcome struct {
	Readers int
	// Ops is the number of replayed queries.
	Ops  int
	Wall time.Duration
	P50  time.Duration
	P99  time.Duration
	// EngineWork is the executor-side deterministic work after the
	// replay (cracking at readers=1; background reorganisation above).
	EngineWork uint64
	// EpochReads and EpochReadWork tally the reads answered off the
	// pinned epochs and their summed logical work (zero at readers=1,
	// where every query runs on the serialised executor).
	EpochReads    uint64
	EpochReadWork uint64
	// IntentsApplied counts the crack intents the background
	// reorganiser executed; LagUs is its final lag behind the readers.
	IntentsApplied uint64
	LagUs          uint64
}

// Throughput is the cell's queries per second.
func (o E20Outcome) Throughput() float64 {
	if o.Wall <= 0 {
		return 0
	}
	return float64(o.Ops) / o.Wall.Seconds()
}

// e20Replay runs one cell: a fresh single-shard engine behind a
// direct-mode service, hammered by the session goroutines concurrently.
// At readers=1 the service latch serialises every query (the
// pre-existing executor discipline); at readers=N up to N queries run
// concurrently against epoch-pinned snapshots while the background
// reorganiser cracks off the query path.
func e20Replay(cfg Config, readers int, streams [][]column.Range) E20Outcome {
	eng := twoColumnEngine(cfg)
	svc, err := server.NewService(server.Config{
		Engine:       eng,
		DefaultTable: "data",
		DefaultPath:  "cracking",
		BatchWindow:  0, // direct dispatch: the contrast is latch vs epoch pool
		Readers:      readers,
	})
	if err != nil {
		panic(err)
	}
	lats := make([][]time.Duration, len(streams))
	done := make(chan int, len(streams))
	start := time.Now()
	for g := range streams {
		go func(id int) {
			for _, r := range streams[id] {
				t0 := time.Now()
				reply, err := svc.SelectQuery(server.Query{R: r, Project: []string{"c1"}})
				if err != nil {
					panic(err)
				}
				if reply.Done != nil {
					reply.Done()
				}
				lats[id] = append(lats[id], time.Since(t0))
			}
			done <- id
		}(g)
	}
	for range streams {
		<-done
	}
	wall := time.Since(start)
	// Close first: it drains the intent queue, so the stats snapshot
	// reflects the fully converged reorganiser, not a mid-drain instant.
	svc.Close()
	st := svc.Stats()

	var all []time.Duration
	for g := range lats {
		all = append(all, lats[g]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}
	o := E20Outcome{
		Readers:    readers,
		Ops:        len(all),
		Wall:       wall,
		P50:        pct(0.50),
		P99:        pct(0.99),
		EngineWork: st.WorkTotal,
	}
	if st.Reorg != nil {
		o.EpochReads = st.Reorg.Epoch.Reads
		o.EpochReadWork = st.Reorg.Epoch.ReadWork
		o.IntentsApplied = st.Reorg.Epoch.IntentsApplied
		o.LagUs = st.Reorg.LagUs
	}
	return o
}

// RunE20 sweeps epoch read concurrency 1, 2, 4 and 8 over identical
// hot-set select-project session streams on a single-shard engine, so
// the cells differ only in reader parallelism.
func RunE20(cfg Config) []E20Outcome {
	cfg = cfg.withDefaults()
	const sessions = 8
	perSession := cfg.Queries / sessions
	if perSession < 1 {
		perSession = 1
	}
	gens, err := workload.SessionGenerators("hotset", cfg.Seed+20, sessions, 0, column.Value(cfg.Domain), cfg.Selectivity)
	if err != nil {
		panic(err)
	}
	streams := make([][]column.Range, sessions)
	for g := range streams {
		streams[g] = workload.Queries(gens[g], perSession)
	}
	var out []E20Outcome
	for _, readers := range []int{1, 2, 4, 8} {
		out = append(out, e20Replay(cfg, readers, streams))
	}
	return out
}

// E20ReaderScaling evaluates epoch-pinned snapshot reads: the same
// hot-set select-project streams replayed on one engine shard while
// the read concurrency sweeps 1, 2, 4 and 8. At readers=1 every query
// crosses the serialised executor and cracks inline; above that, reads
// pin immutable epoch snapshots and run concurrently while a background
// reorganiser consumes their crack intents, so on a multi-core host
// throughput rises and tail latency falls without a single reader ever
// blocking on reorganisation. On a single-core host the reader pool has
// nothing to run on and the sweep degenerates to scheduling overhead;
// wall columns are machine-dependent by nature (benchjson gates the
// deterministic readers=1 counter stream instead).
func E20ReaderScaling(cfg Config) Result {
	cfg = cfg.withDefaults()
	outcomes := RunE20(cfg)

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E20: epoch-pinned reader scaling, 1 shard (8 sessions, hot-set select-project, selectivity %.3f)\n", cfg.Selectivity)
	fmt.Fprintf(&b, "%-12s %8s %10s %12s %10s %10s %13s %13s %9s\n",
		"readers", "ops", "wall", "queries/s", "p50", "p99", "engine work", "epoch work", "intents")
	var base E20Outcome
	for _, o := range outcomes {
		name := fmt.Sprintf("readers=%d", o.Readers)
		fmt.Fprintf(&b, "%-12s %8d %10s %12.0f %10s %10s %13d %13d %9d\n",
			name, o.Ops, o.Wall.Round(time.Microsecond), o.Throughput(),
			o.P50.Round(time.Microsecond), o.P99.Round(time.Microsecond),
			o.EngineWork, o.EpochReadWork, o.IntentsApplied)
		if o.Readers == 1 {
			base = o
		} else if base.Wall > 0 && o.Wall > 0 {
			fmt.Fprintf(&b, "%-12s speedup %.2fx vs 1 reader (reorg lag %s)\n", "",
				base.Wall.Seconds()/o.Wall.Seconds(), time.Duration(o.LagUs)*time.Microsecond)
		}
		rows = append(rows, bench.Summary{IndexName: name, TotalWork: o.EngineWork + o.EpochReadWork, TotalWall: o.Wall})
	}
	b.WriteString("readers=1 is the serialised executor (cracking on the query path); above that,\nreads pin epochs and cracking runs on the background reorganiser. Wall columns\nare machine-dependent; the readers=1 counter stream is what benchjson gates.\n")
	return Result{ID: "E20", Title: "Epoch-pinned reader scaling", Summaries: rows, Text: b.String()}
}
