// Package experiments defines the reproduction's experiment suite
// E1..E21 (see DESIGN.md §2 and EXPERIMENTS.md). Every experiment
// builds its data, workload and competing access paths from the other
// internal packages, runs them through the bench harness, and returns a
// structured result plus a formatted text report. The cmd/aibench CLI
// and the repository-level benchmarks both call into this package so
// the experiment definitions exist exactly once.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/adaptivemerge"
	"adaptiveindex/internal/baseline"
	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/concurrent"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/hybrid"
	"adaptiveindex/internal/index"
	"adaptiveindex/internal/partition"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/updates"
	"adaptiveindex/internal/workload"
)

// Config scales an experiment run. The defaults keep every experiment
// in the low seconds on a laptop; the CLI exposes flags to run at the
// paper's original scale (tens of millions of tuples).
type Config struct {
	// N is the column size (number of tuples).
	N int
	// Queries is the length of the query sequence.
	Queries int
	// Domain is the value domain [0, Domain).
	Domain int
	// Selectivity is the fraction of the domain covered by each range
	// query.
	Selectivity float64
	// Seed drives all data and workload generation.
	Seed int64
}

// DefaultConfig returns the configuration used by `go test -bench` and
// by the CLI when no flags are given.
func DefaultConfig() Config {
	return Config{N: 1_000_000, Queries: 1000, Domain: 1_000_000, Selectivity: 0.01, Seed: 42}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.N <= 0 {
		c.N = d.N
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.Domain <= 0 {
		c.Domain = c.N
	}
	if c.Selectivity <= 0 {
		c.Selectivity = d.Selectivity
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title describes the experiment.
	Title string
	// Summaries holds one comparison row per access path (or per
	// configuration, for sweeps).
	Summaries []bench.Summary
	// Text is the formatted report the CLI prints.
	Text string
}

// Definition couples an experiment with its metadata.
type Definition struct {
	ID    string
	Title string
	Run   func(Config) Result
}

// All returns every experiment definition in suite order.
func All() []Definition {
	return []Definition{
		{"E1", "Per-query response: scan vs full index vs cracking", E1PerQueryCurve},
		{"E2", "Cumulative cost and break-even vs full index (TPCTC metric 2)", E2Convergence},
		{"E3", "First-query initialization cost across strategies (TPCTC metric 1)", E3FirstQuery},
		{"E4", "Cracking vs adaptive merging vs hybrids", E4Hybrids},
		{"E5", "Cracking under updates: merge policies", E5Updates},
		{"E6", "Sideways cracking vs late tuple reconstruction", E6Sideways},
		{"E7", "Workload skew and shifting focus", E7Skew},
		{"E8", "Offline vs online vs soft vs adaptive under workload change", E8OnlineOffline},
		{"E9", "Selectivity sweep", E9Selectivity},
		{"E10", "Data-size scaling", E10Scaling},
		{"E11", "Crack strategy ablation", E11Ablation},
		{"E12", "Adaptive merging I/O model: page touches", E12MergeIO},
		{"E13", "Partitioned parallel cracking: sharded vs global latch", E13Parallel},
		{"E14", "Query service: throughput/latency vs batch window and sessions", E14Server},
		{"E15", "Access-path planner vs static paths on a drifting workload", E15Planner},
		{"E16", "Merge policies under a drifting mixed read/write workload", E16UpdatePolicies},
		{"E17", "Binary columnar wire format vs JSON responses", E17WireProtocol},
		{"E18", "Tracing overhead: sampled spans vs off", E18TracingOverhead},
		{"E19", "Scatter-gather shard scaling: throughput vs shard count", E19ShardScaling},
		{"E20", "Epoch-pinned reader scaling: throughput vs read concurrency", E20ReaderScaling},
		{"E21", "Multi-node routed scatter-gather: throughput vs backend nodes", E21RoutedScaling},
	}
}

// Lookup returns the definition for the given experiment id.
func Lookup(id string) (Definition, bool) {
	for _, d := range All() {
		if strings.EqualFold(d.ID, id) {
			return d, true
		}
	}
	return Definition{}, false
}

// uniformQueries builds the standard uniform random-range workload.
func uniformQueries(cfg Config) []column.Range {
	return workload.Queries(workload.NewUniform(cfg.Seed+1, 0, column.Value(cfg.Domain), cfg.Selectivity), cfg.Queries)
}

func data(cfg Config) []column.Value {
	return workload.DataUniform(cfg.Seed, cfg.N, cfg.Domain)
}

// standardPaths builds the canonical competitors over a fresh copy of
// the configuration's data set.
func standardPaths(cfg Config, vals []column.Value) map[string]bench.Index {
	return map[string]bench.Index{
		"scan":           baseline.NewFullScan(vals),
		"fullsort":       baseline.NewFullSortIndex(vals, false),
		"fullsort-eager": index.Rename(baseline.NewFullSortIndex(vals, true), "fullsort-eager"),
		"online":         baseline.NewOnlineIndex(vals, 10),
		"softindex":      baseline.NewSoftIndex(vals, 10),
		"cracking":       core.NewCrackerColumn(vals, core.DefaultOptions()),
		"cracking-stochastic": index.Rename(core.NewCrackerColumn(vals, core.Options{
			CrackInThree: true, RandomPivotThreshold: 1 << 14,
		}), "cracking-stochastic"),
		// Partition count pinned so logical-work numbers stay
		// machine-independent (the default tracks GOMAXPROCS).
		"cracking-parallel":  partition.New(vals, partition.Options{Partitions: 4, Core: core.DefaultOptions()}),
		"adaptivemerge":      adaptivemerge.New(vals, adaptivemerge.DefaultOptions()),
		"hybrid-crack-crack": hybrid.NewHCC(vals, 1<<16),
		"hybrid-crack-sort":  hybrid.NewHCS(vals, 1<<16),
		"hybrid-sort-sort":   hybrid.NewHSS(vals, 1<<16),
		"hybrid-radix-sort":  hybrid.NewHRS(vals, 1<<16),
	}
}

// convergenceThreshold derives the "no further adaptation overhead"
// level from a converged full index run.
func convergenceThreshold(full bench.Series) uint64 {
	t := full.TailAverage(50) * 2
	if t == 0 {
		t = 1
	}
	return t
}

// E1PerQueryCurve reproduces the canonical cracking figure: per-query
// cost of scan, full-sort index and cracking over a uniform workload.
func E1PerQueryCurve(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	queries := uniformQueries(cfg)

	crack := bench.RunNamed(core.NewCrackerColumn(vals, core.DefaultOptions()), "uniform", queries)
	scan := bench.RunNamed(baseline.NewFullScan(vals), "uniform", queries)
	full := bench.RunNamed(baseline.NewFullSortIndex(vals, false), "uniform", queries)

	threshold := convergenceThreshold(full)
	rows := []bench.Summary{
		scan.Summarize(threshold),
		full.Summarize(threshold),
		crack.Summarize(threshold),
	}
	var b strings.Builder
	b.WriteString(bench.FormatTable("E1: per-query response time (work units)", rows))
	b.WriteString("\n")
	b.WriteString(bench.FormatCurve(crack, 40))
	b.WriteString(bench.FormatCurve(scan, 10))
	b.WriteString(bench.FormatCurve(full, 10))
	return Result{ID: "E1", Title: "Per-query response: scan vs full index vs cracking", Summaries: rows, Text: b.String()}
}

// E2Convergence reproduces the cumulative-cost and break-even analysis
// of the adaptive indexing benchmark.
func E2Convergence(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	queries := uniformQueries(cfg)

	crack := bench.RunNamed(core.NewCrackerColumn(vals, core.DefaultOptions()), "uniform", queries)
	scan := bench.RunNamed(baseline.NewFullScan(vals), "uniform", queries)
	full := bench.RunNamed(baseline.NewFullSortIndex(vals, false), "uniform", queries)
	am := bench.RunNamed(adaptivemerge.New(vals, adaptivemerge.DefaultOptions()), "uniform", queries)

	threshold := convergenceThreshold(full)
	rows := []bench.Summary{
		scan.Summarize(threshold), full.Summarize(threshold),
		crack.Summarize(threshold), am.Summarize(threshold),
	}
	var b strings.Builder
	b.WriteString(bench.FormatTable("E2: convergence and cumulative cost", rows))
	fmt.Fprintf(&b, "\nbreak-even of cracking vs full index (query #): %d\n", crack.BreakEven(full))
	fmt.Fprintf(&b, "break-even of cracking vs scan (query #): %d\n", crack.BreakEven(scan))
	fmt.Fprintf(&b, "break-even of adaptive merging vs full index (query #): %d\n", am.BreakEven(full))
	fmt.Fprintf(&b, "convergence threshold (work units/query): %d\n", threshold)
	return Result{ID: "E2", Title: "Cumulative cost and break-even", Summaries: rows, Text: b.String()}
}

// E3FirstQuery reports TPCTC metric 1 for every strategy.
func E3FirstQuery(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	// Only a handful of queries are needed; the metric is about the
	// first one.
	short := cfg
	short.Queries = 10
	queries := uniformQueries(short)

	paths := standardPaths(cfg, vals)
	names := make([]string, 0, len(paths))
	for name := range paths {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]bench.Summary, 0, len(paths))
	for _, name := range names {
		s := bench.RunNamed(paths[name], "uniform", queries)
		rows = append(rows, s.Summarize(1))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].FirstQuery < rows[j].FirstQuery })
	var b strings.Builder
	b.WriteString("E3: initialization cost incurred by the first query (TPCTC metric 1)\n")
	fmt.Fprintf(&b, "%-28s %16s\n", "index", "first-query work")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %16d\n", r.IndexName, r.FirstQuery)
	}
	return Result{ID: "E3", Title: "First-query initialization cost", Summaries: rows, Text: b.String()}
}

// E4Hybrids compares cracking, adaptive merging and the hybrid family
// on uniform and skewed workloads.
func E4Hybrids(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	workloads := map[string][]column.Range{
		"uniform": uniformQueries(cfg),
		"skewed":  workload.Queries(workload.NewSkewed(cfg.Seed+2, 0, column.Value(cfg.Domain), cfg.Selectivity, 1.4), cfg.Queries),
	}
	var rows []bench.Summary
	var b strings.Builder
	for _, wname := range []string{"uniform", "skewed"} {
		queries := workloads[wname]
		full := bench.RunNamed(baseline.NewFullSortIndex(vals, false), wname, queries)
		threshold := convergenceThreshold(full)
		competitors := []bench.Index{
			core.NewCrackerColumn(vals, core.DefaultOptions()),
			adaptivemerge.New(vals, adaptivemerge.DefaultOptions()),
			hybrid.NewHCC(vals, 1<<16),
			hybrid.NewHCS(vals, 1<<16),
			hybrid.NewHSS(vals, 1<<16),
			hybrid.NewHRS(vals, 1<<16),
		}
		wrows := []bench.Summary{full.Summarize(threshold)}
		for _, ix := range competitors {
			s := bench.RunNamed(ix, wname, queries)
			wrows = append(wrows, s.Summarize(threshold))
		}
		for i := range wrows {
			wrows[i].IndexName = wname + "/" + wrows[i].IndexName
		}
		rows = append(rows, wrows...)
		b.WriteString(bench.FormatTable("E4 ("+wname+"): cracking vs adaptive merging vs hybrids", wrows))
		b.WriteString("\n")
	}
	return Result{ID: "E4", Title: "Cracking vs adaptive merging vs hybrids", Summaries: rows, Text: b.String()}
}

// E5Updates measures cracking under interleaved updates for the three
// merge policies. The column is first converged with an update-free
// warm-up (as in the SIGMOD 2007 evaluation), so the recorded numbers
// isolate the update-handling cost rather than the initial cracking.
func E5Updates(cfg Config) Result {
	cfg = cfg.withDefaults()
	warmup := uniformQueries(cfg)
	measured := workload.Queries(workload.NewUniform(cfg.Seed+9, 0, column.Value(cfg.Domain), cfg.Selectivity), cfg.Queries)
	updatesPerQuery := 10

	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E5: cracking under updates (10 inserts per query, after an update-free warm-up)\n")
	fmt.Fprintf(&b, "%-32s %14s %18s %14s\n", "policy", "total-work", "worst-query", "tail/query")
	for _, policy := range []updates.MergePolicy{updates.MergeGradually, updates.MergeCompletely, updates.MergeImmediately} {
		vals := data(cfg)
		u := updates.New(vals, core.DefaultOptions(), policy)
		for _, q := range warmup {
			u.Count(q)
		}
		ins := workload.NewUniform(cfg.Seed+3, 0, column.Value(cfg.Domain), 0.000001)
		// Interleave updates with the query stream via a wrapper index.
		ix := &updatingIndex{col: u, gen: ins, perQuery: updatesPerQuery}
		s := bench.RunNamed(ix, "uniform+updates", measured)
		sum := s.Summarize(1)
		rows = append(rows, sum)
		worst, _ := s.MaxQueryCost()
		fmt.Fprintf(&b, "%-32s %14d %18d %14d\n", u.Name(), sum.TotalWork, worst, s.TailAverage(cfg.Queries/10))
	}
	return Result{ID: "E5", Title: "Cracking under updates", Summaries: rows, Text: b.String()}
}

// updatingIndex interleaves a fixed number of insertions before every
// query so the bench harness can drive an update workload.
type updatingIndex struct {
	col      *updates.Column
	gen      workload.Generator
	perQuery int
}

func (u *updatingIndex) Name() string { return u.col.Name() }

func (u *updatingIndex) Count(r column.Range) int {
	for i := 0; i < u.perQuery; i++ {
		u.col.Insert(u.gen.Next().Low)
	}
	return u.col.Count(r)
}

func (u *updatingIndex) Cost() cost.Counters { return u.col.Cost() }

// E6Sideways measures multi-attribute select-project queries: scan,
// cracking with late tuple reconstruction, and sideways cracking.
func E6Sideways(cfg Config) Result {
	cfg = cfg.withDefaults()
	n := cfg.N
	rngData := workload.DataUniform(cfg.Seed, n, cfg.Domain)
	colB := workload.DataUniform(cfg.Seed+10, n, 1000)
	colC := workload.DataUniform(cfg.Seed+11, n, 1_000_000)
	colD := workload.DataSorted(n)

	queries := uniformQueries(cfg)
	project := []string{"b", "c", "d"}

	build := func() (*engine.Engine, error) {
		tab := engine.NewTable("t")
		if err := tab.AddColumn("a", rngData); err != nil {
			return nil, err
		}
		if err := tab.AddColumn("b", colB); err != nil {
			return nil, err
		}
		if err := tab.AddColumn("c", colC); err != nil {
			return nil, err
		}
		if err := tab.AddColumn("d", colD); err != nil {
			return nil, err
		}
		cat := engine.NewCatalog()
		if err := cat.Register(tab); err != nil {
			return nil, err
		}
		return engine.New(cat, core.DefaultOptions()), nil
	}

	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E6: select on a, project b,c,d (work units)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "path", "first-query", "total-work", "tail/query")
	for _, path := range []engine.AccessPath{engine.PathScan, engine.PathCracking, engine.PathSideways} {
		eng, err := build()
		if err != nil {
			b.WriteString("error: " + err.Error() + "\n")
			continue
		}
		ix := &engineIndex{eng: eng, path: path, project: project}
		s := bench.RunNamed(ix, "uniform", queries)
		sum := s.Summarize(1)
		sum.IndexName = path.String()
		rows = append(rows, sum)
		fmt.Fprintf(&b, "%-12s %14d %14d %14d\n", path, sum.FirstQuery, sum.TotalWork, s.TailAverage(cfg.Queries/10))
	}
	return Result{ID: "E6", Title: "Sideways cracking vs late tuple reconstruction", Summaries: rows, Text: b.String()}
}

// engineIndex adapts an engine select-project plan to the bench
// harness.
type engineIndex struct {
	eng     *engine.Engine
	path    engine.AccessPath
	project []string
}

func (e *engineIndex) Name() string { return "engine-" + e.path.String() }

func (e *engineIndex) Count(r column.Range) int {
	res, err := e.eng.SelectProject("t", "a", r, e.project, e.path)
	if err != nil {
		return -1
	}
	return len(res.Rows)
}

func (e *engineIndex) Cost() cost.Counters { return e.eng.Cost() }

// E7Skew compares cracking's work under uniform, skewed and shifting
// workloads: with skew only the hot ranges are optimised, so total work
// drops.
func E7Skew(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	gens := map[string]workload.Generator{
		"uniform":  workload.NewUniform(cfg.Seed+1, 0, column.Value(cfg.Domain), cfg.Selectivity),
		"skewed":   workload.NewSkewed(cfg.Seed+2, 0, column.Value(cfg.Domain), cfg.Selectivity, 1.5),
		"shifting": workload.NewShifting(cfg.Seed+3, 0, column.Value(cfg.Domain), cfg.Selectivity, 0.1, cfg.Queries/5),
	}
	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E7: cracking under different workload shapes\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %12s\n", "workload", "total-work", "tail/query", "pieces")
	for _, name := range []string{"uniform", "skewed", "shifting"} {
		queries := workload.Queries(gens[name], cfg.Queries)
		cc := core.NewCrackerColumn(vals, core.DefaultOptions())
		s := bench.RunNamed(cc, name, queries)
		sum := s.Summarize(1)
		sum.IndexName = name
		rows = append(rows, sum)
		fmt.Fprintf(&b, "%-12s %14d %14d %12d\n", name, sum.TotalWork, s.TailAverage(cfg.Queries/10), cc.NumPieces())
	}
	return Result{ID: "E7", Title: "Workload skew and shifting focus", Summaries: rows, Text: b.String()}
}

// E8OnlineOffline reproduces the motivating scenario: the workload's
// focus changes halfway through; offline indexing paid everything up
// front, online indexing reacts late and pays a spike, adaptive
// indexing reacts immediately.
func E8OnlineOffline(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	// First half focuses on the lower quarter of the domain, second
	// half on the upper quarter.
	half := cfg.Queries / 2
	lowFocus := workload.Queries(workload.NewUniform(cfg.Seed+4, 0, column.Value(cfg.Domain/4), cfg.Selectivity), half)
	highFocus := workload.Queries(workload.NewUniform(cfg.Seed+5, column.Value(3*cfg.Domain/4), column.Value(cfg.Domain), cfg.Selectivity), cfg.Queries-half)
	queries := append(append([]column.Range{}, lowFocus...), highFocus...)

	paths := []bench.Index{
		index.Rename(baseline.NewFullSortIndex(vals, true), "fullsort-eager"),
		baseline.NewOnlineIndex(vals, 50),
		baseline.NewSoftIndex(vals, 50),
		core.NewCrackerColumn(vals, core.DefaultOptions()),
		baseline.NewFullScan(vals),
	}
	var rows []bench.Summary
	for _, ix := range paths {
		s := bench.RunNamed(ix, "shifting-focus", queries)
		rows = append(rows, s.Summarize(1))
	}
	text := bench.FormatTable("E8: offline vs online vs soft vs adaptive under a workload change", rows)
	return Result{ID: "E8", Title: "Offline vs online vs adaptive", Summaries: rows, Text: text}
}

// E9Selectivity sweeps query selectivity and reports converged
// per-query cost for scan, full index and cracking.
func E9Selectivity(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	selectivities := []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5}
	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E9: tail per-query work by selectivity\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "selectivity", "scan", "fullsort", "cracking")
	for _, sel := range selectivities {
		queries := workload.Queries(workload.NewUniform(cfg.Seed+6, 0, column.Value(cfg.Domain), sel), cfg.Queries/2)
		scan := bench.RunNamed(baseline.NewFullScan(vals), "uniform", queries)
		full := bench.RunNamed(baseline.NewFullSortIndex(vals, false), "uniform", queries)
		crack := bench.RunNamed(core.NewCrackerColumn(vals, core.DefaultOptions()), "uniform", queries)
		window := len(queries) / 10
		fmt.Fprintf(&b, "%-12.5f %14d %14d %14d\n", sel, scan.TailAverage(window), full.TailAverage(window), crack.TailAverage(window))
		sum := crack.Summarize(convergenceThreshold(full))
		sum.IndexName = fmt.Sprintf("cracking@sel=%.5f", sel)
		rows = append(rows, sum)
	}
	return Result{ID: "E9", Title: "Selectivity sweep", Summaries: rows, Text: b.String()}
}

// E10Scaling sweeps the data size and reports first-query cost and
// total work for scan, full index and cracking.
func E10Scaling(cfg Config) Result {
	cfg = cfg.withDefaults()
	sizes := []int{cfg.N / 100, cfg.N / 10, cfg.N}
	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E10: scaling with data size\n")
	fmt.Fprintf(&b, "%-12s %-12s %16s %16s\n", "tuples", "index", "first-query", "total-work")
	for _, n := range sizes {
		sub := cfg
		sub.N = n
		sub.Domain = n
		vals := data(sub)
		queries := uniformQueries(sub)
		for name, ix := range map[string]bench.Index{
			"scan":     baseline.NewFullScan(vals),
			"fullsort": baseline.NewFullSortIndex(vals, false),
			"cracking": core.NewCrackerColumn(vals, core.DefaultOptions()),
		} {
			s := bench.RunNamed(ix, "uniform", queries)
			sum := s.Summarize(1)
			sum.IndexName = fmt.Sprintf("%s@n=%d", name, n)
			rows = append(rows, sum)
			fmt.Fprintf(&b, "%-12d %-12s %16d %16d\n", n, name, sum.FirstQuery, sum.TotalWork)
		}
	}
	return Result{ID: "E10", Title: "Data-size scaling", Summaries: rows, Text: b.String()}
}

// E11Ablation compares the cracking strategy variants: crack-in-two
// only, crack-in-three, and stochastic pivots with two thresholds,
// under both a uniform and a sequential workload.
func E11Ablation(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"crack-in-two", core.Options{CrackInThree: false}},
		{"crack-in-three", core.Options{CrackInThree: true}},
		{"stochastic-64k", core.Options{CrackInThree: true, RandomPivotThreshold: 1 << 16}},
		{"stochastic-4k", core.Options{CrackInThree: true, RandomPivotThreshold: 1 << 12}},
	}
	workloads := map[string]workload.Generator{
		"uniform":    workload.NewUniform(cfg.Seed+7, 0, column.Value(cfg.Domain), cfg.Selectivity),
		"sequential": workload.NewSequential(0, column.Value(cfg.Domain), cfg.Selectivity),
	}
	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E11: crack strategy ablation\n")
	fmt.Fprintf(&b, "%-12s %-18s %14s %14s %14s\n", "workload", "variant", "first-query", "total-work", "tail/query")
	for _, wname := range []string{"uniform", "sequential"} {
		queries := workload.Queries(workloads[wname], cfg.Queries)
		for _, v := range variants {
			cc := core.NewCrackerColumn(vals, v.opts)
			s := bench.RunNamed(cc, wname, queries)
			sum := s.Summarize(1)
			sum.IndexName = wname + "/" + v.name
			rows = append(rows, sum)
			fmt.Fprintf(&b, "%-12s %-18s %14d %14d %14d\n", wname, v.name, sum.FirstQuery, sum.TotalWork, s.TailAverage(cfg.Queries/10))
		}
	}
	return Result{ID: "E11", Title: "Crack strategy ablation", Summaries: rows, Text: b.String()}
}

// E12MergeIO reports the page-touch counts of adaptive merging for a
// sweep of run sizes, against cracking (which has no I/O model and is
// listed for reference).
func E12MergeIO(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	queries := uniformQueries(cfg)
	runSizes := []int{1 << 14, 1 << 16, 1 << 18}
	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E12: adaptive merging I/O model (page touches, page = 1024 entries)\n")
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "configuration", "page-touches", "total-work", "converge@")
	for _, rs := range runSizes {
		ix := adaptivemerge.New(vals, adaptivemerge.Options{RunSize: rs, PageSize: 1 << 10})
		s := bench.RunNamed(ix, "uniform", queries)
		total := s.TotalWork()
		sum := s.Summarize(1)
		sum.IndexName = fmt.Sprintf("adaptivemerge/run=%d", rs)
		rows = append(rows, sum)
		conv := "-"
		if ix.Converged() {
			conv = "yes"
		}
		fmt.Fprintf(&b, "%-24s %14d %14d %14s\n", sum.IndexName, total.PageTouches, sum.TotalWork, conv)
	}
	cc := core.NewCrackerColumn(vals, core.DefaultOptions())
	s := bench.RunNamed(cc, "uniform", queries)
	sum := s.Summarize(1)
	sum.IndexName = "cracking (no I/O model)"
	rows = append(rows, sum)
	fmt.Fprintf(&b, "%-24s %14d %14d %14s\n", sum.IndexName, s.TotalWork().PageTouches, sum.TotalWork, "-")
	return Result{ID: "E12", Title: "Adaptive merging I/O model", Summaries: rows, Text: b.String()}
}

// E13Parallel evaluates partitioned parallel cracking. Part one drives
// the partitioned index through the standard sequential harness to show
// its logical work stays in the same regime as plain cracking (the
// partitioning pass replaces the cracker-copy pass). Part two replays
// the identical query sequence from several goroutines at once and
// compares wall-clock time against the global-latch concurrent cracker
// of package concurrent — the contention the per-partition latches
// remove.
func E13Parallel(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)
	queries := uniformQueries(cfg)

	// Part 1: sequential logical work, cracking vs partition counts.
	full := bench.RunNamed(baseline.NewFullSortIndex(vals, false), "uniform", queries)
	threshold := convergenceThreshold(full)
	rows := []bench.Summary{full.Summarize(threshold)}
	competitors := []bench.Index{
		core.NewCrackerColumn(vals, core.DefaultOptions()),
	}
	for _, p := range []int{2, 4, 8} {
		competitors = append(competitors, index.Rename(
			partition.New(vals, partition.Options{Partitions: p, Core: core.DefaultOptions()}),
			fmt.Sprintf("cracking-parallel(p=%d)", p)))
	}
	for _, ix := range competitors {
		s := bench.RunNamed(ix, "uniform", queries)
		rows = append(rows, s.Summarize(threshold))
	}
	var b strings.Builder
	b.WriteString(bench.FormatTable("E13: partitioned parallel cracking — sequential logical work", rows))

	// Part 2: concurrent replay wall clock, global latch vs partitioned
	// latches.
	goroutines := 8
	storm := func(count func(column.Range) int) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(offset int) {
				defer wg.Done()
				for i := 0; i < len(queries); i += goroutines {
					count(queries[(i+offset)%len(queries)])
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}
	globalLatch := concurrent.New(vals, core.DefaultOptions())
	sharded := partition.New(vals, partition.Options{Partitions: goroutines, Core: core.DefaultOptions()})
	globalWall := storm(globalLatch.Count)
	shardedWall := storm(sharded.Count)
	fmt.Fprintf(&b, "\nconcurrent replay (%d goroutines, %d queries):\n", goroutines, len(queries))
	fmt.Fprintf(&b, "%-32s %14s\n", "access path", "wall")
	fmt.Fprintf(&b, "%-32s %14s\n", globalLatch.Name()+" (global latch)", globalWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-32s %14s\n",
		fmt.Sprintf("%s (p=%d)", sharded.Name(), sharded.NumPartitions()), shardedWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "partition probes: shared=%d exclusive=%d\n", sharded.SharedQueries(), sharded.ExclusiveQueries())
	return Result{ID: "E13", Title: "Partitioned parallel cracking", Summaries: rows, Text: b.String()}
}

// E14Server evaluates the query service layer: the same hot-set
// workload (concurrent sessions drawing from one shared pool of ranges,
// the IDEBench-style interactive exploration shape) is replayed through
// the service at several session counts, with per-query dispatch versus
// shared-scan batching at two window lengths. Reported per cell:
// wall-clock throughput, client-observed latency percentiles, and the
// fraction of queries answered from a scan shared with an identical
// predicate in the same batch. Latch contention and redundant
// materialisation are invisible to logical work counters, so this
// experiment, like E13's part two, reports wall time.
func E14Server(cfg Config) Result {
	cfg = cfg.withDefaults()
	vals := data(cfg)

	sessionCounts := []int{1, 8, 32}
	windows := []time.Duration{0, 200 * time.Microsecond, time.Millisecond}

	var rows []bench.Summary
	var b strings.Builder
	b.WriteString("E14: query service, hot-set workload (selectivity " +
		fmt.Sprintf("%.3f", cfg.Selectivity) + ", op=select)\n")
	fmt.Fprintf(&b, "%-24s %10s %12s %10s %10s %10s %12s\n",
		"configuration", "wall", "queries/s", "p50", "p95", "p99", "shared-frac")
	for _, sessions := range sessionCounts {
		perSession := cfg.Queries / sessions
		if perSession < 1 {
			perSession = 1
		}
		gens, err := workload.SessionGenerators("hotset", cfg.Seed+8, sessions, 0, column.Value(cfg.Domain), cfg.Selectivity)
		if err != nil {
			b.WriteString("error: " + err.Error() + "\n")
			continue
		}
		streams := make([][]column.Range, sessions)
		for g := range streams {
			streams[g] = workload.Queries(gens[g], perSession)
		}
		for _, window := range windows {
			eng := singleColumnEngine(vals)
			svc, err := server.NewService(server.Config{Engine: eng, DefaultPath: "cracking", BatchWindow: window})
			if err != nil {
				b.WriteString("error: " + err.Error() + "\n")
				continue
			}
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < sessions; g++ {
				wg.Add(1)
				go func(stream []column.Range) {
					defer wg.Done()
					for _, r := range stream {
						if _, err := svc.Select(r); err != nil {
							return
						}
					}
				}(streams[g])
			}
			wg.Wait()
			wall := time.Since(start)
			st := svc.Stats()
			svc.Close()

			name := fmt.Sprintf("s=%d/direct", sessions)
			if window > 0 {
				name = fmt.Sprintf("s=%d/batched(%s)", sessions, window)
			}
			total := sessions * perSession
			sharedFrac := 0.0
			if st.Queries > 0 {
				sharedFrac = float64(st.SharedScans) / float64(st.Queries)
			}
			fmt.Fprintf(&b, "%-24s %10s %12.0f %8dµs %8dµs %8dµs %12.3f\n",
				name, wall.Round(time.Microsecond), float64(total)/wall.Seconds(),
				st.Latency.P50Us, st.Latency.P95Us, st.Latency.P99Us, sharedFrac)
			rows = append(rows, bench.Summary{
				IndexName: name,
				TotalWork: eng.Cost().Total(),
				TotalWall: wall,
			})
		}
	}
	b.WriteString("\nshared-frac: fraction of queries answered from a scan shared with an\nidentical predicate coalesced into the same batch.\n")
	return Result{ID: "E14", Title: "Query service: shared-scan batching", Summaries: rows, Text: b.String()}
}

// singleColumnEngine wraps a bare value vector in a one-table,
// one-column catalog, the shape E14's single-predicate streams need.
func singleColumnEngine(vals []column.Value) *engine.Engine {
	tab := engine.NewTable("data")
	if err := tab.AddColumn("c0", vals); err != nil {
		panic(err)
	}
	cat := engine.NewCatalog()
	if err := cat.Register(tab); err != nil {
		panic(err)
	}
	return engine.New(cat, core.DefaultOptions())
}

// E15Planner evaluates the cost-driven access-path planner (PathAuto)
// against every static path on a drifting hot-set select-project
// workload: a pool of hot predicates is re-issued heavily and the pool
// jumps to a new sub-domain every Queries/10 queries (the IDEBench
// shape — a dashboard's filters re-issued as the analyst's focus
// drifts), and every query projects one attribute, so the scan,
// cracking, sideways and parallel paths genuinely differ in cost. The
// planner must beat the worst static path by a wide margin and track
// close to the best one, paying only a short explore phase — the
// kernel, not the caller, picks the physical design.
func E15Planner(cfg Config) Result {
	cfg = cfg.withDefaults()
	shiftEvery := cfg.Queries / 10
	if shiftEvery < 1 {
		shiftEvery = 1
	}
	queries := workload.Queries(
		workload.NewDriftingHotSet(cfg.Seed+15, 0, column.Value(cfg.Domain), cfg.Selectivity, 0.1, 16, 1.3, shiftEvery),
		cfg.Queries)
	project := []string{"c1"}

	makeEngine := func() *engine.Engine {
		tab := engine.NewTable("data")
		for ci, seedOff := range []int64{0, 1, 2} {
			vals := workload.DataUniform(cfg.Seed+seedOff, cfg.N, cfg.Domain)
			if err := tab.AddColumn(fmt.Sprintf("c%d", ci), vals); err != nil {
				panic(err)
			}
		}
		cat := engine.NewCatalog()
		if err := cat.Register(tab); err != nil {
			panic(err)
		}
		return engine.New(cat, core.DefaultOptions())
	}

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E15: planner vs static paths, drifting select-project workload\n")
	fmt.Fprintf(&b, "(%d queries, focus shifts every %d, selectivity %.3f, project %v)\n\n",
		cfg.Queries, shiftEvery, cfg.Selectivity, project)
	fmt.Fprintf(&b, "%-12s %14s %12s %10s\n", "path", "total-work", "work/query", "wall")

	totals := make(map[string]uint64)
	for _, path := range []engine.AccessPath{
		engine.PathScan, engine.PathCracking, engine.PathSideways, engine.PathParallel, engine.PathAuto,
	} {
		eng := makeEngine()
		start := time.Now()
		for _, r := range queries {
			if _, err := eng.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: project, Path: path}); err != nil {
				b.WriteString("error: " + err.Error() + "\n")
				break
			}
		}
		wall := time.Since(start)
		total := eng.Cost().Total()
		totals[path.String()] = total
		rows = append(rows, bench.Summary{IndexName: path.String(), TotalWork: total, TotalWall: wall})
		fmt.Fprintf(&b, "%-12s %14d %12d %10s\n",
			path.String(), total, total/uint64(len(queries)), wall.Round(time.Microsecond))
		if path == engine.PathAuto {
			for _, plan := range eng.PlanStats() {
				fmt.Fprintf(&b, "\nplanner %s.%s: phase=%s chosen=%s re-explores=%d\n",
					plan.Table, plan.Column, plan.Phase, plan.Chosen, plan.ReExplores)
				for _, p := range plan.Paths {
					fmt.Fprintf(&b, "  %-10s queries=%-6d avg-work=%-12.0f ewma=%.0f\n",
						p.Path, p.Queries, p.AvgWork, p.EWMA)
				}
			}
		}
	}

	best, worst := uint64(0), uint64(0)
	for _, name := range []string{"scan", "cracking", "sideways", "parallel"} {
		t := totals[name]
		if best == 0 || t < best {
			best = t
		}
		if t > worst {
			worst = t
		}
	}
	if auto := totals["auto"]; best > 0 && auto > 0 {
		fmt.Fprintf(&b, "\nauto/best = %.2fx, auto/worst = %.3fx (best static %d, worst static %d)\n",
			float64(auto)/float64(best), float64(auto)/float64(worst), best, worst)
	}
	return Result{ID: "E15", Title: "Access-path planner vs static paths", Summaries: rows, Text: b.String()}
}

// E16Outcome captures the comparable totals of one merge-policy run of
// the mixed-workload experiment.
type E16Outcome struct {
	Policy string
	// Total and Recurring are the engine's logical-work totals after
	// the full op stream; Recurring includes the merge work the policy
	// caused (cost.Counters.MergeWork), which is what separates the
	// policies — materialisation is identical across them.
	Total     uint64
	Recurring uint64
	MergeWork uint64
	// MergedIns/MergedDel count updates that reached the cracked
	// layout; PendingIns/PendingDel is the buffered depth left at the
	// end — work the lazy policies never had to pay.
	MergedIns, MergedDel    uint64
	PendingIns, PendingDel  int
	Reads, Inserts, Deletes int
	Wall                    time.Duration
}

// RunE16 replays one deterministic interleaved read/write stream
// against an engine per merge policy and reports per-policy outcomes
// plus whether every policy returned identical rows for every read.
func RunE16(cfg Config) ([]E16Outcome, bool) {
	cfg = cfg.withDefaults()
	shiftEvery := cfg.Queries / 10
	if shiftEvery < 1 {
		shiftEvery = 1
	}
	// One op stream, drained up front so every policy replays
	// literally the same interleaving: drifting hot-set reads (the
	// analyst's moving focus) mixed with inserts of random rows and
	// deletes of the stream's own earlier inserts.
	reads := workload.NewFixedTarget(
		workload.Target{Table: "data", Column: "c0"},
		workload.NewDriftingHotSet(cfg.Seed+16, 0, column.Value(cfg.Domain), cfg.Selectivity, 0.1, 16, 1.3, shiftEvery))
	gen := workload.NewMixedOps("e16", cfg.Seed+17, reads, "data", 2, 0, column.Value(cfg.Domain), 0.25, 0.4)
	ops := make([]workload.TableOp, cfg.Queries)
	for i := range ops {
		ops[i] = gen.NextOp()
	}

	policies := []updates.MergePolicy{updates.MergeGradually, updates.MergeCompletely, updates.MergeImmediately}
	outcomes := make([]E16Outcome, 0, len(policies))
	var signatures [][]uint64
	identical := true
	for _, policy := range policies {
		tab := engine.NewTable("data")
		for ci, seedOff := range []int64{0, 1} {
			if err := tab.AddColumn(fmt.Sprintf("c%d", ci), workload.DataUniform(cfg.Seed+seedOff, cfg.N, cfg.Domain)); err != nil {
				panic(err)
			}
		}
		cat := engine.NewCatalog()
		if err := cat.Register(tab); err != nil {
			panic(err)
		}
		eng := engine.New(cat, core.DefaultOptions())
		eng.SetMergePolicy(policy)

		var own []column.RowID
		var sig []uint64
		out := E16Outcome{Policy: policy.String()}
		start := time.Now()
		for _, op := range ops {
			switch op.Kind {
			case workload.OpRead:
				res, err := eng.Run(engine.Query{Table: "data", Column: "c0", R: op.Query.R, Path: engine.PathCracking})
				if err != nil {
					panic(err)
				}
				sig = append(sig, rowSignature(res.Rows))
				out.Reads++
			case workload.OpInsert:
				row, err := eng.InsertRow("data", op.Values)
				if err != nil {
					panic(err)
				}
				own = append(own, row)
				out.Inserts++
			case workload.OpDelete:
				if err := eng.DeleteRow("data", own[0]); err != nil {
					panic(err)
				}
				own = own[1:]
				out.Deletes++
			}
		}
		out.Wall = time.Since(start)
		c := eng.Cost()
		out.Total, out.Recurring, out.MergeWork = c.Total(), c.Recurring(), c.MergeWork
		ws := eng.WriteStats()
		out.MergedIns, out.MergedDel = ws.MergedInserts, ws.MergedDeletes
		out.PendingIns, out.PendingDel = ws.PendingInserts, ws.PendingDeletes
		outcomes = append(outcomes, out)
		signatures = append(signatures, sig)
	}
	for _, sig := range signatures[1:] {
		if len(sig) != len(signatures[0]) {
			identical = false
			break
		}
		for i := range sig {
			if sig[i] != signatures[0][i] {
				identical = false
				break
			}
		}
	}
	return outcomes, identical
}

// rowSignature hashes a result's row identifiers order-independently
// (FNV-1a over the sorted list), so policies that return the same rows
// in different physical order still compare equal.
func rowSignature(rows column.IDList) uint64 {
	sorted := append(column.IDList(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, row := range sorted {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(row >> shift))
			h *= prime64
		}
	}
	return h
}

// E16UpdatePolicies pits the three merge policies of internal/updates
// against each other on a drifting mixed read/write workload through
// the engine's write path (experimentally the IDEBench argument:
// interactive systems must be judged under evolving workloads, not
// static read-only ones). Every policy must return identical rows for
// every read — the policies move work in time, never change answers —
// and the lazy policies must beat MergeImmediately on recurring cost:
// a drifting focus means most buffered updates are never touched by a
// query, so the ripple work the immediate policy pays up front is
// simply never spent.
func E16UpdatePolicies(cfg Config) Result {
	cfg = cfg.withDefaults()
	outcomes, identical := RunE16(cfg)

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E16: merge policies, drifting mixed read/write workload\n")
	fmt.Fprintf(&b, "(%d ops: %d reads / %d inserts / %d deletes, selectivity %.3f)\n\n",
		cfg.Queries, outcomes[0].Reads, outcomes[0].Inserts, outcomes[0].Deletes, cfg.Selectivity)
	fmt.Fprintf(&b, "%-10s %14s %14s %12s %10s %10s %10s\n",
		"policy", "total-work", "recurring", "merge-work", "merged", "pending", "wall")
	for _, o := range outcomes {
		rows = append(rows, bench.Summary{IndexName: o.Policy, TotalWork: o.Total, TotalWall: o.Wall})
		fmt.Fprintf(&b, "%-10s %14d %14d %12d %10d %10d %10s\n",
			o.Policy, o.Total, o.Recurring, o.MergeWork,
			o.MergedIns+o.MergedDel, o.PendingIns+o.PendingDel, o.Wall.Round(time.Microsecond))
	}
	if identical {
		b.WriteString("\nall policies returned identical rows for every read\n")
	} else {
		b.WriteString("\nERROR: policies disagreed on read results\n")
	}
	var grad, imm E16Outcome
	for _, o := range outcomes {
		switch o.Policy {
		case updates.MergeGradually.String():
			grad = o
		case updates.MergeImmediately.String():
			imm = o
		}
	}
	if imm.Recurring > 0 {
		fmt.Fprintf(&b, "gradual/immediate recurring = %.3fx (%d vs %d)\n",
			float64(grad.Recurring)/float64(imm.Recurring), grad.Recurring, imm.Recurring)
	}
	return Result{ID: "E16", Title: "Merge policies under mixed workloads", Summaries: rows, Text: b.String()}
}
