package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/workload"
)

// e18Mode is one tracing configuration under test: every sample-th
// query carries the trace flag (0 = tracing off, 1 = every query).
type e18Mode struct {
	name   string
	sample int
}

// E18TracingOverhead prices the observability layer: the hot-set
// select-project workload is replayed over HTTP at 8 concurrent
// sessions with tracing off, sampled (1 in 16 queries carries
// X-Crack-Trace), and on every query. A traced query pays for span
// timestamps, counter snapshots around each phase, and the span tree
// serialised into the response; an untraced query must pay nothing.
// Reported per cell: wall-clock throughput, client-observed p50/p99,
// traced-query count, and the engine's total logical work. Across the
// concurrent cells that work varies a little with scheduling — batch
// composition changes the cracking order — so the hard tracing-is-free
// claim is pinned on a single-threaded replay instead: E18WorkParity
// runs the same stream bare and fully traced and the totals must be
// equal (cmd/benchjson gates the difference as trace_overhead_work =
// 0). The wall-clock claim is the soft half: sampled tracing should
// cost low single-digit percent.
func E18TracingOverhead(cfg Config) Result {
	cfg = cfg.withDefaults()
	const sessions = 8

	modes := []e18Mode{
		{"off", 0},
		{"sampled/16", 16},
		{"every-query", 1},
	}

	perSession := cfg.Queries / sessions
	if perSession < 1 {
		perSession = 1
	}

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E18: tracing overhead, hot-set select-project workload (selectivity %.3f, %d sessions)\n",
		cfg.Selectivity, sessions)
	fmt.Fprintf(&b, "%-14s %10s %12s %10s %10s %8s %14s\n",
		"tracing", "wall", "queries/s", "p50", "p99", "traced", "total-work")

	var baseWall time.Duration
	for _, mode := range modes {
		gens, err := workload.SessionGenerators("hotset", cfg.Seed+8, sessions, 0, column.Value(cfg.Domain), cfg.Selectivity)
		if err != nil {
			b.WriteString("error: " + err.Error() + "\n")
			continue
		}
		streams := make([][]column.Range, sessions)
		for g := range streams {
			streams[g] = workload.Queries(gens[g], perSession)
		}

		// A fresh engine per cell: every mode pays the same cracking
		// curve from cold, so wall times are comparable.
		eng := twoColumnEngine(cfg)
		svc, err := server.NewService(server.Config{
			Engine:       eng,
			DefaultTable: "data",
			DefaultPath:  "cracking",
			BatchWindow:  200 * time.Microsecond,
			EventLog:     trace.NewLog(trace.DefaultLogSize),
		})
		if err != nil {
			b.WriteString("error: " + err.Error() + "\n")
			continue
		}
		ts := httptest.NewServer(svc.Handler())
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        2 * sessions,
			MaxIdleConnsPerHost: 2 * sessions,
		}}

		lats := make([][]time.Duration, sessions)
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < sessions; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for i, r := range streams[id] {
					traced := mode.sample > 0 && i%mode.sample == 0
					t0 := time.Now()
					if err := e18Query(client, ts.URL, r, traced); err != nil {
						return
					}
					lats[id] = append(lats[id], time.Since(t0))
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(start)
		st := svc.Stats()
		ts.Close()
		svc.Close()

		var all []time.Duration
		for g := range lats {
			all = append(all, lats[g]...)
		}
		if len(all) == 0 {
			fmt.Fprintf(&b, "%-14s all queries failed\n", mode.name)
			continue
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(all)))
			if i >= len(all) {
				i = len(all) - 1
			}
			return all[i]
		}
		work := eng.Cost().Total()
		if mode.sample == 0 {
			baseWall = wall
		}
		overhead := ""
		if mode.sample != 0 && baseWall > 0 {
			overhead = fmt.Sprintf("  (%+.1f%% wall vs off)", (float64(wall)/float64(baseWall)-1)*100)
		}
		fmt.Fprintf(&b, "%-14s %10s %12.0f %10s %10s %8d %14d%s\n",
			mode.name, wall.Round(time.Microsecond), float64(len(all))/wall.Seconds(),
			pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
			st.TracedQueries, work, overhead)
		rows = append(rows, bench.Summary{
			IndexName: "trace=" + mode.name,
			TotalWork: work,
			TotalWall: wall,
		})
	}

	bare, traced := E18WorkParity(Config{N: cfg.N, Queries: min(cfg.Queries, 200), Domain: cfg.Domain, Selectivity: cfg.Selectivity, Seed: cfg.Seed})
	fmt.Fprintf(&b, "\ndeterministic parity (single-threaded replay, every query traced):\nbare %d vs traced %d logical work units", bare, traced)
	if bare == traced {
		b.WriteString(" — identical: tracing reads the\ncost counters and never perturbs them (gated as trace_overhead_work in CI).\n")
	} else {
		b.WriteString(" — MISMATCH: tracing perturbed the engine.\n")
	}
	b.WriteString("total-work in the concurrent cells varies with batch composition\n(scheduling), independent of tracing — compare wall and percentiles there.\n")
	return Result{ID: "E18", Title: "Tracing overhead: sampled spans vs off", Summaries: rows, Text: b.String()}
}

// e18Query issues one select-project query, optionally traced, and
// fully consumes the response. For traced queries it decodes and
// discards the span tree, the way a real sampling client would.
func e18Query(client *http.Client, base string, r column.Range, traced bool) error {
	q := server.QueryRequest{Op: "select", Table: "data", Column: "c0", Project: []string{"c1"}, Trace: traced}
	if r.HasLow {
		lo := r.Low
		q.Low = &lo
	}
	if r.HasHigh {
		hi := r.High
		q.High = &hi
	}
	body, err := json.Marshal(q)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return err
	}
	if traced {
		if len(qr.Trace) == 0 {
			return fmt.Errorf("traced query returned no trace")
		}
		var sp trace.Span
		if err := json.Unmarshal(qr.Trace, &sp); err != nil {
			return fmt.Errorf("trace decode: %w", err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// E18WorkParity replays a pinned select-project stream on two fresh
// engines — one bare, one with a recorder and event log attached to
// every query — and returns both total-work counters. They must be
// equal: the observability layer observes the cost model, it does not
// participate in it. benchjson gates the difference at zero.
func E18WorkParity(cfg Config) (bare, traced uint64) {
	cfg = cfg.withDefaults()
	queries := workload.Queries(
		workload.NewUniform(cfg.Seed+1, 0, column.Value(cfg.Domain), cfg.Selectivity), cfg.Queries)

	bareEng := twoColumnEngine(cfg)
	for _, r := range queries {
		if _, err := bareEng.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathCracking}); err != nil {
			panic(err)
		}
	}
	tracedEng := twoColumnEngine(cfg)
	tracedEng.SetEventLog(trace.NewLog(trace.DefaultLogSize))
	for _, r := range queries {
		rec := trace.NewRecorder()
		if _, err := tracedEng.Run(engine.Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: engine.PathCracking, Trace: rec}); err != nil {
			panic(err)
		}
		rec.Finish()
	}
	return bareEng.Cost().Total(), tracedEng.Cost().Total()
}
