package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/bench"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/router"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/workload"
)

// E21Outcome is one (workload shape, node count) cell of the
// multi-node routed scaling sweep: the same session streams as E19,
// but replayed over HTTP through crackrouter against N striped
// crackserve backends instead of through an in-process shard cluster.
type E21Outcome struct {
	Shape string
	Nodes int
	// Ops is the number of replayed operations (reads plus writes).
	Ops  int
	Wall time.Duration
	P50  time.Duration
	P99  time.Duration
	// Work is the cluster's summed logical work reported by the
	// router's merged /stats — deterministic per cell, and at one node
	// identical to serving the same stream directly.
	Work uint64
}

// Throughput is the cell's operations per second.
func (o E21Outcome) Throughput() float64 {
	if o.Wall <= 0 {
		return 0
	}
	return float64(o.Ops) / o.Wall.Seconds()
}

// e21Node boots one striped backend: the full E19 two-table catalog is
// generated, reduced to stripe s of n, and served by a real service
// over loopback HTTP — exactly what `crackserve -stripe s/n` does.
func e21Node(cfg Config, s, n int) (*httptest.Server, func()) {
	cat := e19Catalog(cfg)
	if n > 1 {
		var err error
		if cat, err = shard.Stripe(cat, s, n); err != nil {
			panic(err)
		}
	}
	built, err := server.BuildExec(cat, server.EngineOptions{Shards: 1, Seed: cfg.Seed})
	if err != nil {
		panic(err)
	}
	svc, err := server.NewService(server.Config{
		Exec: built.Exec, DefaultPath: "cracking", EventLog: trace.NewLog(16),
	})
	if err != nil {
		panic(err)
	}
	srv := httptest.NewServer(svc.Handler())
	return srv, func() { srv.Close(); svc.Close() }
}

// e21Cluster boots n striped backends plus a router over them and
// returns a client speaking the versioned wire API to the router.
func e21Cluster(cfg Config, n int, rcfg router.Config) (*api.Client, func()) {
	var closers []func()
	nodes := make([]string, n)
	for s := 0; s < n; s++ {
		srv, cl := e21Node(cfg, s, n)
		closers = append(closers, cl)
		nodes[s] = srv.URL
	}
	rcfg.Nodes = nodes
	rt, err := router.New(rcfg)
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(rt.Handler())
	closers = append(closers, func() { front.Close(); rt.Close() })
	c := api.NewClient(front.URL, api.ClientOptions{Proto: rcfg.Proto})
	return c, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

// e21Replay runs one cell: the session streams replayed through the
// router by one closed-loop goroutine per session — the service-layer
// shape E14 and E20 use, and the only one where striping across
// processes can pay: each in-flight query fans out and lets every
// node crack its stripe while the others crack theirs. Reads fan out
// to every node, writes route to the owning stripe. Reported per
// cell: wall time, per-op latency, and the cluster's summed logical
// work from the router's merged /stats. With one session the replay
// is sequential and the work column is exactly reproducible; with
// concurrent sessions the interleaving (and so the crack order) is
// scheduling-dependent, which moves the work total by well under a
// percent — the wall columns are machine-dependent either way.
func e21Replay(cfg Config, shape string, n int, streams [][]workload.TableOp) E21Outcome {
	// Binary columnar on both hops: the multitable shape projects ~1%%
	// of a million rows per query, and double JSON (backend->router,
	// router->client) would bury the backends' scan time under encode
	// tax.
	client, shutdown := e21Cluster(cfg, n, router.Config{Proto: "binary"})
	defer shutdown()
	ctx := context.Background()

	sessLats := make([][]time.Duration, len(streams))
	var wg sync.WaitGroup
	start := time.Now()
	for s := range streams {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var owned []column.RowID
			for _, op := range streams[s] {
				t0 := time.Now()
				switch op.Kind {
				case workload.OpRead:
					q := api.QueryRequest{
						Op: "count", Table: op.Query.Table, Column: op.Query.Column,
						Project: op.Query.Project,
					}
					if len(q.Project) > 0 {
						q.Op = "select"
					}
					if op.Query.R.HasLow {
						lo := int64(op.Query.R.Low)
						q.Low = &lo
					}
					if op.Query.R.HasHigh {
						hi := int64(op.Query.R.High)
						q.High = &hi
					}
					if _, err := client.Query(ctx, q); err != nil {
						panic(err)
					}
				case workload.OpInsert:
					req, err := api.InsertOp(op.Table, [][]column.Value{op.Values})
					if err != nil {
						panic(err)
					}
					ur, err := client.Update(ctx, req)
					if err != nil {
						panic(err)
					}
					owned = append(owned, ur.Inserted...)
				case workload.OpDelete:
					if len(owned) == 0 {
						continue
					}
					row := owned[0]
					owned = owned[1:]
					req, err := api.DeleteOp(op.Table, []column.RowID{row})
					if err != nil {
						panic(err)
					}
					if _, err := client.Update(ctx, req); err != nil {
						panic(err)
					}
				}
				sessLats[s] = append(sessLats[s], time.Since(t0))
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	st, err := client.Stats(ctx)
	if err != nil {
		panic(err)
	}
	var lats []time.Duration
	for _, l := range sessLats {
		lats = append(lats, l...)
	}
	ops := len(lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return E21Outcome{
		Shape: shape, Nodes: n, Ops: ops, Wall: wall,
		P50: pct(0.50), P99: pct(0.99), Work: st.WorkTotal,
	}
}

// RunE21 sweeps backend node counts 1, 2 and 4 over the multitable and
// mixed session workloads, replaying identical streams per shape so
// the cells differ only in how many processes the rows are striped
// across.
func RunE21(cfg Config) []E21Outcome {
	cfg = cfg.withDefaults()
	const sessions = 8
	perSession := cfg.Queries / sessions
	if perSession < 1 {
		perSession = 1
	}
	var out []E21Outcome
	for _, shape := range []string{"multitable", "mixed"} {
		streams := e19Streams(cfg, shape, sessions, perSession)
		for _, n := range []int{1, 2, 4} {
			out = append(out, e21Replay(cfg, shape, n, streams))
		}
	}
	return out
}

// E21Failover is the measured failover timeline of a two-node routed
// cluster: how long after a backend dies the router takes it down
// (reads go partial), and how long after its restart the health probe
// plus fingerprint check take to re-admit it (reads whole again).
type E21Failover struct {
	// Detect is kill → first partial answer; Readmit is revive →
	// first whole answer. Both are bounded by the probe cadence.
	Detect   time.Duration
	Readmit  time.Duration
	Partials int
}

// RunE21Failover kills node 1 of a two-node cluster mid-workload and
// times detection and re-admission. The backend "dies" by answering
// 503 to everything (what a load balancer or a crashed process looks
// like from the router's side) and "restarts" by serving again with
// its adaptive state intact, so the catalog fingerprint matches and
// the router lets it back in.
func RunE21Failover(cfg Config) E21Failover {
	cfg = cfg.withDefaults()
	const probe = 10 * time.Millisecond
	var alive atomic.Bool
	alive.Store(true)

	cat := e19Catalog(cfg)
	nodes := make([]string, 2)
	var closers []func()
	for s := 0; s < 2; s++ {
		striped, err := shard.Stripe(cat, s, 2)
		if err != nil {
			panic(err)
		}
		built, err := server.BuildExec(striped, server.EngineOptions{Shards: 1, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		svc, err := server.NewService(server.Config{
			Exec: built.Exec, DefaultPath: "cracking", EventLog: trace.NewLog(16),
		})
		if err != nil {
			panic(err)
		}
		h := svc.Handler()
		s := s
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if s == 1 && !alive.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"node down"}`)
				return
			}
			h.ServeHTTP(w, r)
		}))
		closers = append(closers, func() { srv.Close(); svc.Close() })
		nodes[s] = srv.URL
	}
	rt, err := router.New(router.Config{
		Nodes: nodes, ProbeInterval: probe, RetryBackoff: time.Millisecond,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer func() {
		front.Close()
		rt.Close()
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	client := api.NewClient(front.URL, api.ClientOptions{})
	ctx := context.Background()
	lo, hi := int64(0), int64(cfg.Domain/100)
	read := func() (*api.QueryResult, error) {
		return client.Query(ctx, api.QueryRequest{Op: "count", Table: "orders", Column: "c0", Low: &lo, High: &hi})
	}
	for i := 0; i < 20; i++ {
		if _, err := read(); err != nil {
			panic(err) // both stripes serve: the warm-up must be clean
		}
	}

	// Between the kill and the probe taking the node down, reads
	// fail fast with the per-node breakdown — the designed window, part
	// of the measured detection time alongside the partial answers that
	// follow once the node is marked down.
	var out E21Failover
	alive.Store(false)
	killed := time.Now()
	for {
		if res, err := read(); err == nil && res.Partial {
			out.Detect = time.Since(killed)
			break
		}
		time.Sleep(probe / 2)
	}
	alive.Store(true)
	revived := time.Now()
	for {
		res, err := read()
		if err == nil && !res.Partial {
			out.Readmit = time.Since(revived)
			break
		}
		out.Partials++
		time.Sleep(probe / 2)
	}
	return out
}

// E21RoutedScaling evaluates the multi-node scatter-gather front: the
// E19 session streams replayed over HTTP through crackrouter against
// 1, 2 and 4 striped backends, plus a measured failover timeline on a
// two-node cluster. Like E19, the wall columns are machine-dependent
// (every hop is a loopback HTTP round trip, so per-op latency carries
// a wire tax the in-process cluster never pays) while the summed work
// column is deterministic — at one node it is identical to serving the
// stream directly, which is what cmd/benchjson gates as
// routed_1_total_work.
func E21RoutedScaling(cfg Config) Result {
	cfg = cfg.withDefaults()
	outcomes := RunE21(cfg)

	var rows []bench.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "E21: multi-node routed scatter-gather scaling (8 sessions, selectivity %.3f)\n", cfg.Selectivity)
	fmt.Fprintf(&b, "%-20s %8s %10s %12s %10s %10s %14s\n",
		"configuration", "ops", "wall", "ops/s", "p50", "p99", "summed work")
	base := make(map[string]E21Outcome)
	for _, o := range outcomes {
		name := fmt.Sprintf("%s/nodes=%d", o.Shape, o.Nodes)
		fmt.Fprintf(&b, "%-20s %8d %10s %12.0f %10s %10s %14d\n",
			name, o.Ops, o.Wall.Round(time.Microsecond), o.Throughput(),
			o.P50.Round(time.Microsecond), o.P99.Round(time.Microsecond), o.Work)
		if o.Nodes == 1 {
			base[o.Shape] = o
		} else if b1, ok := base[o.Shape]; ok && o.Wall > 0 {
			fmt.Fprintf(&b, "%-20s speedup %.2fx vs 1 node\n", "", b1.Wall.Seconds()/o.Wall.Seconds())
		}
		rows = append(rows, bench.Summary{IndexName: name, TotalWork: o.Work, TotalWall: o.Wall})
	}

	fo := RunE21Failover(cfg)
	fmt.Fprintf(&b, "\nfailover timeline (2 nodes, 10ms probe): kill->partial %s, revive->re-admitted %s (%d partial answers in between)\n",
		fo.Detect.Round(time.Millisecond), fo.Readmit.Round(time.Millisecond), fo.Partials)
	b.WriteString("reads fan out to every node over HTTP; writes route to the owning stripe.\nWall columns are machine-dependent; work is deterministic and at nodes=1\nidentical to direct serving (benchjson gates routed_1_total_work).\n")
	return Result{ID: "E21", Title: "Multi-node routed scatter-gather scaling", Summaries: rows, Text: b.String()}
}
