package api

import (
	"strings"
	"testing"

	"adaptiveindex/internal/column"
)

func TestDecodeQueryVersioning(t *testing.T) {
	// Absent version means v1.
	q, err := DecodeQuery(strings.NewReader(`{"op":"count","low":1,"high":5}`))
	if err != nil {
		t.Fatalf("unversioned request rejected: %v", err)
	}
	if q.Op != "count" || q.Low == nil || *q.Low != 1 {
		t.Fatalf("decoded %+v", q)
	}
	// Explicit v1 is accepted.
	if _, err := DecodeQuery(strings.NewReader(`{"v":1,"op":"count"}`)); err != nil {
		t.Fatalf("v1 request rejected: %v", err)
	}
	// A future version is rejected with an error naming what we speak.
	_, err = DecodeQuery(strings.NewReader(`{"v":2,"op":"count"}`))
	if err == nil {
		t.Fatal("v2 request accepted")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Fatalf("version error %q does not name the supported version", err)
	}
}

func TestDecodeQueryUnknownField(t *testing.T) {
	_, err := DecodeQuery(strings.NewReader(`{"op":"count","nonsense":true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("error %q does not name the unknown field", err)
	}
}

func TestDecodeUpdateVersioning(t *testing.T) {
	u, err := DecodeUpdate(strings.NewReader(`{"op":"insert","rows":[[1,2]]}`))
	if err != nil {
		t.Fatalf("unversioned update rejected: %v", err)
	}
	ops, err := u.WriteOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || len(ops[0].Insert) != 1 {
		t.Fatalf("ops %+v", ops)
	}
	if _, err := DecodeUpdate(strings.NewReader(`{"v":9,"op":"insert","rows":[[1]]}`)); err == nil {
		t.Fatal("v9 update accepted")
	}
	if _, err := DecodeUpdate(strings.NewReader(`{"op":"insert","rows":[[1]],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWriteOpsValidation(t *testing.T) {
	u, _ := DecodeUpdate(strings.NewReader(`{"op":"upsert","rows":[[1]]}`))
	if _, err := u.WriteOps(); err == nil || !strings.Contains(err.Error(), "upsert") {
		t.Fatalf("unknown op error %v", err)
	}
}

func TestCatalogFingerprint(t *testing.T) {
	base := []TableStats{
		{Table: "orders", Columns: []string{"c0", "c1"}, Rows: 100, LiveRows: 90},
		{Table: "events", Columns: []string{"c0"}, Rows: 50, LiveRows: 50},
	}
	fp := CatalogFingerprint(base)
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	if got := CatalogFingerprint(base); got != fp {
		t.Fatalf("fingerprint not deterministic: %s vs %s", got, fp)
	}
	// Any change to the population must move the fingerprint.
	mut := []TableStats{base[0], {Table: "events", Columns: []string{"c0"}, Rows: 51, LiveRows: 51}}
	if CatalogFingerprint(mut) == fp {
		t.Fatal("fingerprint blind to row count")
	}
	mut = []TableStats{base[0], {Table: "events", Columns: []string{"c0"}, Rows: 50, LiveRows: 49}}
	if CatalogFingerprint(mut) == fp {
		t.Fatal("fingerprint blind to live rows")
	}
	mut = []TableStats{base[0], {Table: "events2", Columns: []string{"c0"}, Rows: 50, LiveRows: 50}}
	if CatalogFingerprint(mut) == fp {
		t.Fatal("fingerprint blind to table name")
	}
}

func TestInsertDeleteOpBuilders(t *testing.T) {
	u, err := InsertOp("orders", [][]column.Value{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := u.WriteOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Table != "orders" || len(ops[0].Insert) != 1 {
		t.Fatalf("ops %+v", ops)
	}
	u, err = DeleteOp("orders", []column.RowID{7})
	if err != nil {
		t.Fatal(err)
	}
	ops, err = u.WriteOps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || len(ops[0].Delete) != 1 || ops[0].Delete[0] != 7 {
		t.Fatalf("ops %+v", ops)
	}
}
