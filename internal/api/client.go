package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"strings"
	"sync/atomic"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/wire"
)

// Client is the one HTTP-consumer code path for the crack service:
// one http.Client over one shared keep-alive transport for any number
// of concurrent sessions, with JSON/binary protocol negotiation,
// trace opt-in, per-request connection accounting (how often
// keep-alive actually reused a connection) and response-byte counts.
// crackload and the multi-node router both speak through it.
//
// A Client is safe for concurrent use.
type Client struct {
	hc    *http.Client
	base  string
	proto string
	block int

	conns     atomic.Uint64 // connections obtained for requests
	reused    atomic.Uint64 // ...of which were keep-alive reuses
	readBytes atomic.Uint64 // response-body bytes of read queries
}

// ClientOptions tunes a Client. The zero value is a JSON client for
// one session with a 30s request timeout.
type ClientOptions struct {
	// Proto is "json" (default) or "binary" (the columnar wire format).
	Proto string
	// Block is the streamed block size in rows for the binary protocol
	// (0: one block).
	Block int
	// Sessions sizes the keep-alive pool: every session keeps its
	// connection alive between queries, so the idle pool must be at
	// least as deep as the session count or idle connections get closed
	// under the client's feet (the transport default of 2 silently
	// serialises high session counts through fresh connections).
	Sessions int
	// Timeout bounds each request end to end (default 30s; contexts
	// passed to the methods bound individual requests tighter).
	Timeout time.Duration
}

// NewClient returns a client for the daemon at addr (host:port or
// URL).
func NewClient(addr string, opts ClientOptions) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if opts.Proto == "" {
		opts.Proto = "json"
	}
	if opts.Sessions < 1 {
		opts.Sessions = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	tr := &http.Transport{
		MaxIdleConns:        2 * opts.Sessions,
		MaxIdleConnsPerHost: 2 * opts.Sessions,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{
		hc:    &http.Client{Transport: tr, Timeout: opts.Timeout},
		base:  base,
		proto: opts.Proto,
		block: opts.Block,
	}
}

// Base returns the normalised base URL the client talks to.
func (c *Client) Base() string { return c.base }

// Proto returns the negotiated query protocol ("json" or "binary").
func (c *Client) Proto() string { return c.proto }

// Conns, Reused and ReadBytes expose the connection accounting:
// connections obtained, keep-alive reuses among them, and response-body
// bytes of read queries.
func (c *Client) Conns() uint64     { return c.conns.Load() }
func (c *Client) Reused() uint64    { return c.reused.Load() }
func (c *Client) ReadBytes() uint64 { return c.readBytes.Load() }

// ReuseRate returns the fraction of requests answered over a reused
// connection.
func (c *Client) ReuseRate() float64 {
	if n := c.conns.Load(); n > 0 {
		return float64(c.reused.Load()) / float64(n)
	}
	return 0
}

// StatusError is a non-2xx response: the status code, the decoded
// error envelope (when the body was one), and for failed updates the
// applied prefix — ops apply in order and the failed request's applied
// prefix stays applied, so the error must carry it.
type StatusError struct {
	Status   int
	Resp     ErrorResponse
	Inserted []column.RowID
	Deleted  int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.Status, e.Resp.Error)
}

// statusError decodes one non-2xx response body.
func statusError(status int, body io.Reader) *StatusError {
	raw, _ := io.ReadAll(io.LimitReader(body, 64<<10))
	e := &StatusError{Status: status}
	var env struct {
		ErrorResponse
		Inserted []column.RowID `json:"inserted"`
		Deleted  int            `json:"deleted"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		e.Resp = env.ErrorResponse
		e.Inserted = env.Inserted
		e.Deleted = env.Deleted
	} else {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		e.Resp.Error = strings.TrimSpace(string(raw))
	}
	return e
}

// QueryResult is one decoded query answer, protocol-independent.
type QueryResult struct {
	Count     int
	Rows      column.IDList
	Columns   map[string][]column.Value
	Path      string
	LatencyUs int64
	// Partial and MissingNodes mark a router answer assembled without
	// every stripe (JSON protocol only; see QueryResponse).
	Partial      bool
	MissingNodes []int
	// Trace is the raw JSON span tree when the query asked for one.
	Trace json.RawMessage
	// TTFB is the time from request start to the first response byte;
	// Bytes is the consumed response-body size.
	TTFB  time.Duration
	Bytes int64
}

// do issues one traced request; ttfb, when non-nil, receives the time
// from t0 to the first response byte.
func (c *Client) do(req *http.Request, t0 time.Time, ttfb *time.Duration) (*http.Response, error) {
	ct := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			c.conns.Add(1)
			if info.Reused {
				c.reused.Add(1)
			}
		},
	}
	if ttfb != nil {
		ct.GotFirstResponseByte = func() { *ttfb = time.Since(t0) }
	}
	return c.hc.Do(req.WithContext(httptrace.WithClientTrace(req.Context(), ct)))
}

// countingReader counts the bytes a decoder pulls through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// Query posts one read query on the client's protocol, fully consuming
// and decoding the response (a client that discards bodies undersells
// the decode cost the binary protocol exists to remove).
func (c *Client) Query(ctx context.Context, q QueryRequest) (*QueryResult, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.proto == "binary" {
		req.Header.Set("Accept", wire.AcceptValue(c.block))
	}
	out := &QueryResult{}
	t0 := time.Now()
	resp, err := c.do(req, t0, &out.TTFB)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, resp.Body)
	}
	cr := &countingReader{r: resp.Body}
	// Errors and partial router answers come back as JSON whatever the
	// client negotiated, so dispatch on the response content type.
	if c.proto == "binary" && resp.Header.Get("Content-Type") == wire.ContentType {
		res, err := wire.Decode(cr)
		if err != nil {
			return nil, fmt.Errorf("decoding binary response: %w", err)
		}
		out.Count = res.Count
		out.Rows = res.Rows
		out.Columns = res.Columns
		out.Path = res.Path
		out.LatencyUs = int64(res.LatencyUs)
		out.Trace = res.Trace
	} else {
		var qr QueryResponse
		if err := json.NewDecoder(cr).Decode(&qr); err != nil {
			return nil, fmt.Errorf("decoding json response: %w", err)
		}
		out.Count = qr.Count
		out.Rows = qr.Rows
		out.Columns = qr.Columns
		out.Path = qr.Path
		out.LatencyUs = qr.LatencyUs
		out.Partial = qr.Partial
		out.MissingNodes = qr.MissingNodes
		out.Trace = qr.Trace
	}
	// Drain any trailing bytes so the connection is reused.
	io.Copy(io.Discard, cr)
	out.Bytes = cr.n
	c.readBytes.Add(uint64(cr.n))
	return out, nil
}

// Update posts one write request and decodes the reply. A non-2xx
// answer is returned as a *StatusError carrying the applied prefix.
func (c *Client) Update(ctx context.Context, u UpdateRequest) (UpdateResponse, error) {
	var ur UpdateResponse
	body, err := json.Marshal(u)
	if err != nil {
		return ur, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/update", bytes.NewReader(body))
	if err != nil {
		return ur, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, time.Now(), nil)
	if err != nil {
		return ur, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ur, statusError(resp.StatusCode, resp.Body)
	}
	err = json.NewDecoder(resp.Body).Decode(&ur)
	return ur, err
}

// InsertOp builds a single-op insert request.
func InsertOp(table string, rows [][]column.Value) (UpdateRequest, error) {
	raw, err := json.Marshal(rows)
	if err != nil {
		return UpdateRequest{}, err
	}
	return UpdateRequest{UpdateOp: UpdateOp{Op: "insert", Table: table, Rows: raw}}, nil
}

// DeleteOp builds a single-op delete request.
func DeleteOp(table string, ids []column.RowID) (UpdateRequest, error) {
	raw, err := json.Marshal(ids)
	if err != nil {
		return UpdateRequest{}, err
	}
	return UpdateRequest{UpdateOp: UpdateOp{Op: "delete", Table: table, Rows: raw}}, nil
}

// getJSON fetches one GET endpoint into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req, time.Now(), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp.StatusCode, resp.Body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Stats fetches the service's /stats snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.getJSON(ctx, "/stats", &st)
	return st, err
}

// Health probes /healthz. The health body is decoded whatever the
// status — a booting daemon answers 503 with Ready false — so err is
// non-nil only when the probe could not reach or parse the endpoint.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.do(req, time.Now(), nil)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("status %d: %v", resp.StatusCode, err)
	}
	return h, nil
}

// Fingerprint fetches the node's catalog fingerprint.
func (c *Client) Fingerprint(ctx context.Context) (string, error) {
	var fr FingerprintResponse
	err := c.getJSON(ctx, "/fingerprint", &fr)
	return fr.Fingerprint, err
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.do(req, time.Now(), nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", statusError(resp.StatusCode, resp.Body)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
