// Package api is the shared wire contract of the crack service: the
// JSON request/response shapes spoken on /query, /update, /stats,
// /healthz and /fingerprint, an explicit schema version, and the typed
// client every in-repo HTTP consumer uses.
//
// The shapes used to live as private structs in internal/server's HTTP
// layer, re-declared ad hoc by crackload; a third consumer — the
// multi-node router — made that untenable. They live here now, consumed
// by the server (which aliases them), by crackload, and by
// internal/router, so there is exactly one definition of the wire
// surface and exactly one HTTP-consumer code path (Client).
//
// Versioning: every request may carry "v"; absent means v1. Servers
// reject unknown versions and unknown fields with a clear error naming
// the supported version, so schema drift fails loudly at the edge
// instead of being silently ignored.
package api

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/engine"
)

// SchemaVersion is the wire schema this package speaks. Requests carry
// it in "v"; absent means version 1 (the shape predates the field).
const SchemaVersion = 1

// checkVersion rejects any explicit version this package does not
// speak. Zero means the field was absent, i.e. v1.
func checkVersion(v int) error {
	if v != 0 && v != SchemaVersion {
		return fmt.Errorf("unsupported schema version %d (this server speaks v%d)", v, SchemaVersion)
	}
	return nil
}

// QueryRequest is the wire form of one query.
//
//	POST /query {"op":"count","table":"orders","column":"c0","low":10,"high":20}
//	POST /query {"op":"select","table":"orders","column":"c0","low":10,"high":20,
//	             "project":["c1","c2"],"path":"auto"}
//
// Omitted bounds are unbounded; incLow defaults to true and incHigh to
// false, so {low, high} is the canonical half-open interval [low, high).
// Omitted table, column and path fall back to the service defaults
// (the daemon's first table, its first column, and "auto").
type QueryRequest struct {
	// V is the wire schema version; absent (0) means v1.
	V int `json:"v,omitempty"`
	// Op is "count" (default) or "select".
	Op      string `json:"op,omitempty"`
	Table   string `json:"table,omitempty"`
	Column  string `json:"column,omitempty"`
	Low     *int64 `json:"low,omitempty"`
	High    *int64 `json:"high,omitempty"`
	IncLow  *bool  `json:"incLow,omitempty"`
	IncHigh *bool  `json:"incHigh,omitempty"`
	// Project names the columns to return alongside the qualifying
	// rows (select only).
	Project []string `json:"project,omitempty"`
	// Path selects the access path ("scan", "cracking", "sideways",
	// "parallel", "auto"); empty means the service default.
	Path string `json:"path,omitempty"`
	// Trace asks for the query's phase span tree in the response (the
	// X-Crack-Trace header does the same without touching the body).
	Trace bool `json:"trace,omitempty"`
}

// Range converts the wire form to the internal predicate.
func (q QueryRequest) Range() column.Range {
	r := column.Range{IncLow: true}
	if q.Low != nil {
		r.HasLow, r.Low = true, *q.Low
	}
	if q.High != nil {
		r.HasHigh, r.High = true, *q.High
	}
	if q.IncLow != nil {
		r.IncLow = *q.IncLow
	}
	if q.IncHigh != nil {
		r.IncHigh = *q.IncHigh
	}
	return r
}

// DecodeQuery parses one QueryRequest strictly: unknown fields and
// unknown schema versions are rejected.
func DecodeQuery(r io.Reader) (QueryRequest, error) {
	var q QueryRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return q, err
	}
	return q, checkVersion(q.V)
}

// QueryResponse is the wire form of a query result.
type QueryResponse struct {
	Count int `json:"count"`
	// Rows carries the qualifying row identifiers for select queries.
	Rows []column.RowID `json:"rows,omitempty"`
	// Columns holds the projected values, positionally aligned with
	// Rows, for select-project queries.
	Columns map[string][]column.Value `json:"columns,omitempty"`
	// Path is the access path that executed the query (the planner's
	// choice when the request said "auto").
	Path string `json:"path"`
	// LatencyUs is the server-side latency of this query, queueing
	// included.
	LatencyUs int64 `json:"latency_us"`
	// Partial marks a router answer assembled without every stripe:
	// nodes already marked down are skipped and named in MissingNodes.
	// Counts and rows then cover only the surviving stripes.
	Partial      bool  `json:"partial,omitempty"`
	MissingNodes []int `json:"missing_nodes,omitempty"`
	// Trace is the phase span tree for traced queries (see
	// trace.Span); absent unless the request asked for it.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ErrorResponse is the wire form of a failure.
type ErrorResponse struct {
	Error string `json:"error"`
	// Nodes carries the per-backend breakdown when a router request
	// failed against a multi-node cluster.
	Nodes []NodeError `json:"nodes,omitempty"`
}

// NodeError describes one backend node's part in a failed router
// request.
type NodeError struct {
	Node  int    `json:"node"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// UpdateOp is the wire form of one mutation.
//
//	{"op":"insert","table":"orders","rows":[[7,8,9],[1,2,3]]}
//	{"op":"delete","table":"orders","rows":[17,42]}
//
// For "insert", rows holds one array of values per inserted row (one
// value per table column, in column order); a single-column table may
// give bare numbers instead of one-element arrays. For "delete", rows
// holds row identifiers. An omitted table falls back to the service
// default.
type UpdateOp struct {
	// Op is "insert" or "delete".
	Op    string          `json:"op"`
	Table string          `json:"table,omitempty"`
	Rows  json.RawMessage `json:"rows"`
}

// UpdateRequest is the wire form of one write request: a single
// mutation, or a batch of them via ops (applied in order).
//
//	POST /update {"op":"insert","table":"orders","rows":[[7,8,9]]}
//	POST /update {"ops":[{"op":"insert","rows":[[7,8,9]]},
//	              {"op":"delete","rows":[3]}]}
type UpdateRequest struct {
	// V is the wire schema version; absent (0) means v1.
	V int `json:"v,omitempty"`
	UpdateOp
	Ops []UpdateOp `json:"ops,omitempty"`
}

// DecodeUpdate parses one UpdateRequest strictly: unknown fields and
// unknown schema versions are rejected.
func DecodeUpdate(r io.Reader) (UpdateRequest, error) {
	var u UpdateRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		return u, err
	}
	return u, checkVersion(u.V)
}

// UpdateResponse is the wire form of a write result.
type UpdateResponse struct {
	// Inserted holds the row identifiers assigned to inserted rows, in
	// submission order.
	Inserted []column.RowID `json:"inserted,omitempty"`
	// Deleted is the number of deleted rows.
	Deleted int `json:"deleted"`
	// PendingInserts and PendingDeletes echo the engine-wide buffered
	// update depth after this request.
	PendingInserts int `json:"pending_inserts"`
	PendingDeletes int `json:"pending_deletes"`
	// LatencyUs is the server-side latency of this request, queueing
	// included.
	LatencyUs int64 `json:"latency_us"`
}

// WriteOp is one resolved mutation: an insert of whole rows or a
// delete of row identifiers against one table.
type WriteOp struct {
	Table  string
	Insert [][]column.Value
	Delete []column.RowID
}

// WriteOps converts the wire form to resolved write ops. With "ops",
// a top-level "table" is the default for every op that does not name
// its own.
func (u UpdateRequest) WriteOps() ([]WriteOp, error) {
	ops := u.Ops
	if len(ops) == 0 {
		ops = []UpdateOp{u.UpdateOp}
	} else if u.Op != "" || len(u.Rows) > 0 {
		return nil, fmt.Errorf("give either a single op or \"ops\", not both")
	}
	out := make([]WriteOp, 0, len(ops))
	for _, op := range ops {
		if op.Table == "" {
			op.Table = u.Table
		}
		w := WriteOp{Table: op.Table}
		switch op.Op {
		case "insert":
			rows, err := DecodeInsertRows(op.Rows)
			if err != nil {
				return nil, err
			}
			w.Insert = rows
		case "delete":
			if err := json.Unmarshal(op.Rows, &w.Delete); err != nil {
				return nil, fmt.Errorf("delete rows must be row identifiers: %v", err)
			}
		default:
			return nil, fmt.Errorf("unknown op %q (want insert or delete)", op.Op)
		}
		out = append(out, w)
	}
	return out, nil
}

// DecodeInsertRows accepts rows as arrays of values (one per column)
// or, for single-column tables, bare numbers.
func DecodeInsertRows(raw json.RawMessage) ([][]column.Value, error) {
	var rows [][]column.Value
	if err := json.Unmarshal(raw, &rows); err == nil {
		return rows, nil
	}
	var flat []column.Value
	if err := json.Unmarshal(raw, &flat); err != nil {
		return nil, fmt.Errorf("insert rows must be arrays of column values (or bare values for a one-column table)")
	}
	rows = make([][]column.Value, len(flat))
	for i, v := range flat {
		rows[i] = []column.Value{v}
	}
	return rows, nil
}

// Health is the wire form of /healthz. OK means the process is alive;
// Ready means the engine is restored and serving (a booting daemon
// answers 503 with Ready false until its snapshot restore completes).
type Health struct {
	OK    bool `json:"ok"`
	Ready bool `json:"ready"`
}

// FingerprintResponse is the wire form of /fingerprint: a stable hash
// of the node's catalog shape and row population, used by the router to
// verify that a restarted backend restored the same stripe it owned
// before it died.
type FingerprintResponse struct {
	Fingerprint string `json:"fingerprint"`
}

// CatalogFingerprint hashes a catalog summary — table names, column
// names, row-slot and live-row counts — into a stable hex string. Two
// nodes fingerprint equal iff they host the same schema with the same
// row population, which is exactly the re-admission condition for a
// restarted stripe owner: its v5 snapshot restored the rows it owned.
func CatalogFingerprint(tables []TableStats) string {
	h := fnv.New64a()
	for _, t := range tables {
		io.WriteString(h, t.Table)
		h.Write([]byte{0})
		for _, c := range t.Columns {
			io.WriteString(h, c)
			h.Write([]byte{0})
		}
		io.WriteString(h, strconv.Itoa(t.Rows))
		h.Write([]byte{0})
		io.WriteString(h, strconv.Itoa(t.LiveRows))
		h.Write([]byte{0xff})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// TableStats describes one catalog table. Rows counts row slots
// (tombstones included — it is one past the largest row identifier);
// LiveRows counts live tuples. MergePolicy names when buffered writes
// merge into the table's cracked columns.
type TableStats struct {
	Table       string   `json:"table"`
	Rows        int      `json:"rows"`
	LiveRows    int      `json:"live_rows"`
	Columns     []string `json:"columns"`
	MergePolicy string   `json:"merge_policy"`
}

// LatencyStats summarises a latency distribution, in microseconds.
type LatencyStats struct {
	Count   uint64 `json:"count"`
	MeanUs  uint64 `json:"mean_us"`
	P50Us   uint64 `json:"p50_us"`
	P95Us   uint64 `json:"p95_us"`
	P99Us   uint64 `json:"p99_us"`
	MaxUs   uint64 `json:"max_us"`
	TotalUs uint64 `json:"total_us"`
}

// PhaseStats is the latency summary of one execution phase, aggregated
// over traced queries.
type PhaseStats struct {
	Phase   string       `json:"phase"`
	Latency LatencyStats `json:"latency"`
}

// ProcessStats is process-level health: scheduler pressure and memory
// behaviour that no query counter exposes.
type ProcessStats struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	GCPauseTotalUs uint64 `json:"gc_pause_total_us"`
	NumGC          uint32 `json:"num_gc"`
	// SnapshotAgeSeconds is how old the restored snapshot is (zero when
	// the engine started cold) — a proxy for how much adaptive
	// convergence was inherited rather than earned by this process.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
}

// EventLogStats describes the reorganisation event ring served at
// /debug/events. LastSeq is also the total number of events ever
// appended, so its rate is the reorganisation rate.
type EventLogStats struct {
	LastSeq  uint64 `json:"last_seq"`
	Capacity int    `json:"capacity"`
}

// NodeStats is one backend's row in a router's cluster /stats view.
type NodeStats struct {
	Node        int    `json:"node"`
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Queries     uint64 `json:"queries"`
	Errors      uint64 `json:"errors"`
	WorkTotal   uint64 `json:"work_total"`
	Rows        int    `json:"rows"`
	LiveRows    int    `json:"live_rows"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Stats is the service's observable state, served by /stats. A
// crackserve node reports its own engine; a crackrouter reports the
// merged cluster view in the same shape (tables, structures, work and
// write state summed across stripes) plus a per-node breakdown in
// Nodes, so /stats consumers work unchanged against either.
type Stats struct {
	// Tables lists the hosted catalog; Structures counts the adaptive
	// structures (and cracked pieces) the workload has built so far;
	// Planner is the per-column PathAuto state; WorkTotal is the
	// engine's cumulative logical work.
	Tables     []TableStats          `json:"tables"`
	Structures engine.StructureStats `json:"structures"`
	Planner    []engine.PlanStats    `json:"planner"`
	WorkTotal  uint64                `json:"work_total"`

	// WriteState is the engine's write-path state: applied and merged
	// update counts plus the current pending-buffer depth.
	WriteState engine.WriteStats `json:"write_state"`

	// DefaultTable, DefaultColumn and DefaultPath echo what queries get
	// when they omit the fields.
	DefaultTable  string `json:"default_table"`
	DefaultColumn string `json:"default_column"`
	DefaultPath   string `json:"default_path"`

	// Mode is "batched", "direct", or "router"; BatchWindowUs and
	// MaxBatch echo the scheduler configuration.
	Mode          string `json:"mode"`
	BatchWindowUs int64  `json:"batch_window_us"`
	MaxBatch      int    `json:"max_batch"`

	// Queries is the number of answered queries; Writes the number of
	// applied write requests; Rejected counts admissions refused at the
	// in-flight limit.
	Queries  uint64 `json:"queries"`
	Writes   uint64 `json:"writes"`
	Rejected uint64 `json:"rejected"`
	// Batches is the number of executed batches; SharedScans counts
	// queries answered by an execution shared with an identical query
	// in the same batch; MaxBatchSeen is the largest batch executed so
	// far.
	Batches      uint64 `json:"batches"`
	SharedScans  uint64 `json:"shared_scans"`
	MaxBatchSeen int64  `json:"max_batch_seen"`
	// EncodeFailures counts responses (JSON or binary) whose encode or
	// write back to the client failed; those clients saw a truncated or
	// empty body, not the result.
	EncodeFailures uint64 `json:"encode_failures"`

	// InFlight and MaxInFlight describe the admission state.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`

	Latency LatencyStats `json:"latency"`

	// TracedQueries counts queries that asked for span tracing; Phases
	// aggregates their per-phase durations (phases never observed are
	// omitted).
	TracedQueries uint64       `json:"traced_queries"`
	Phases        []PhaseStats `json:"phases,omitempty"`

	// Shards is the number of engine shards answering each query (1 for
	// a single-engine service); ShardStats breaks the adaptive state
	// down per shard when the service fronts a cluster.
	Shards     int                `json:"shards"`
	ShardStats []engine.ShardStat `json:"shard_stats,omitempty"`

	// Readers is the epoch read concurrency (0 or 1: every query on the
	// serialised executor); Reorg describes the epoch read machinery
	// when Readers > 1.
	Readers int         `json:"readers"`
	Reorg   *ReorgStats `json:"reorg,omitempty"`

	// Nodes breaks a router's cluster view down per backend node;
	// absent on a crackserve node's own stats.
	Nodes []NodeStats `json:"nodes,omitempty"`

	Process  ProcessStats  `json:"process"`
	EventLog EventLogStats `json:"event_log"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReorgStats describes the epoch read machinery behind Readers > 1:
// the epoch lifecycle counters, the crack-intent queue, and the
// reorganiser's lag behind the readers.
type ReorgStats struct {
	// Epoch is the executor's epoch lifecycle state (publications,
	// retirements, applied intents, epoch reads and their summed work).
	Epoch engine.EpochStats `json:"epoch"`
	// Backlog is the current depth of the crack-intent queue;
	// IntentsQueued and IntentsDropped count enqueues and queue-full
	// drops over the service's lifetime.
	Backlog        int    `json:"backlog"`
	IntentsQueued  uint64 `json:"intents_queued"`
	IntentsDropped uint64 `json:"intents_dropped"`
	// LagUs is the queue delay of the most recently applied intent, in
	// microseconds — how far the reorganiser runs behind the readers.
	LagUs uint64 `json:"lag_us"`
}
