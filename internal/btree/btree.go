// Package btree implements an in-memory B+ tree over (value, rowid)
// pairs.
//
// The tree plays two roles in this reproduction. It is the "full index"
// baseline the adaptive techniques are compared against (a completely
// built index with binary-search-like lookups, the end state adaptive
// indexing converges towards), and it is the final, fully optimised
// index that adaptive merging incrementally assembles its merged key
// ranges into. Duplicates are allowed; range selections return the row
// identifiers of all qualifying entries.
package btree

import (
	"fmt"
	"sort"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/index"
)

// DefaultFanout is the maximum number of entries per node used when the
// caller does not specify one.
const DefaultFanout = 64

// Tree is an in-memory B+ tree. The zero value is not usable; create
// trees with New or BulkLoad. Tree is not safe for concurrent use.
type Tree struct {
	root   nodeRef
	fanout int
	size   int
	c      cost.Counters
}

var _ index.Interface = (*Tree)(nil)

// nodeRef is either a *leaf or an *inner.
type nodeRef interface{ isNode() }

type leaf struct {
	entries []column.Pair // sorted by (Val, Row)
	next    *leaf
}

type inner struct {
	// keys[i] is the smallest key reachable through children[i+1];
	// len(children) == len(keys)+1.
	keys     []column.Value
	children []nodeRef
}

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// New returns an empty tree with the given fanout (entries per node).
// Fanouts below 4 are raised to 4.
func New(fanout int) *Tree {
	if fanout < 4 {
		fanout = 4
	}
	return &Tree{root: &leaf{}, fanout: fanout}
}

// BulkLoad builds a tree from the given pairs in one pass. The pairs
// are sorted by value first (counted as the build cost), which mirrors
// the up-front cost of offline index creation.
func BulkLoad(pairs column.Pairs, fanout int) *Tree {
	t := New(fanout)
	sorted := pairs.Clone()
	// Account for the sort: n log n comparisons and n copied tuples is
	// the canonical cost of building the full index up front.
	n := len(sorted)
	t.c.TuplesCopied += uint64(n)
	t.c.ValuesTouched += uint64(n)
	t.c.Comparisons += uint64(sortCostEstimate(n))
	sorted.SortByValue()
	t.loadSorted(sorted)
	return t
}

// BulkLoadSorted builds a tree from pairs that are already sorted by
// value. Only the copy cost is charged. Adaptive merging uses it when
// it moves already-sorted key ranges into its final index.
func BulkLoadSorted(pairs column.Pairs, fanout int) *Tree {
	t := New(fanout)
	t.c.TuplesCopied += uint64(len(pairs))
	t.loadSorted(pairs.Clone())
	return t
}

func sortCostEstimate(n int) int {
	if n <= 1 {
		return 0
	}
	cmp := 0
	for m := n; m > 1; m >>= 1 {
		cmp += n
	}
	return cmp
}

func (t *Tree) loadSorted(sorted column.Pairs) {
	t.size = len(sorted)
	if len(sorted) == 0 {
		t.root = &leaf{}
		return
	}
	// Build the leaf level.
	var leaves []*leaf
	for start := 0; start < len(sorted); start += t.fanout {
		end := start + t.fanout
		if end > len(sorted) {
			end = len(sorted)
		}
		l := &leaf{entries: append([]column.Pair(nil), sorted[start:end]...)}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = l
		}
		leaves = append(leaves, l)
	}
	// Build internal levels bottom-up.
	level := make([]nodeRef, len(leaves))
	lowKeys := make([]column.Value, len(leaves))
	for i, l := range leaves {
		level[i] = l
		lowKeys[i] = l.entries[0].Val
	}
	for len(level) > 1 {
		var nextLevel []nodeRef
		var nextLow []column.Value
		for start := 0; start < len(level); start += t.fanout {
			end := start + t.fanout
			if end > len(level) {
				end = len(level)
			}
			in := &inner{
				children: append([]nodeRef(nil), level[start:end]...),
				keys:     append([]column.Value(nil), lowKeys[start+1:end]...),
			}
			nextLevel = append(nextLevel, in)
			nextLow = append(nextLow, lowKeys[start])
		}
		level, lowKeys = nextLevel, nextLow
	}
	t.root = level[0]
}

// Name identifies the index kind to the benchmark harness.
func (t *Tree) Name() string { return "btree" }

// Len returns the number of entries stored.
func (t *Tree) Len() int { return t.size }

// Cost returns the cumulative logical work performed so far.
func (t *Tree) Cost() cost.Counters { return t.c }

// Insert adds one entry. Splits propagate upwards as needed.
func (t *Tree) Insert(val column.Value, row column.RowID) {
	t.size++
	t.c.ValuesTouched++
	newChild, splitKey := t.insert(t.root, column.Pair{Val: val, Row: row})
	if newChild != nil {
		t.root = &inner{keys: []column.Value{splitKey}, children: []nodeRef{t.root, newChild}}
	}
}

func (t *Tree) insert(n nodeRef, p column.Pair) (nodeRef, column.Value) {
	switch node := n.(type) {
	case *leaf:
		idx := sort.Search(len(node.entries), func(i int) bool {
			t.c.Comparisons++
			e := node.entries[i]
			if e.Val != p.Val {
				return e.Val > p.Val
			}
			return e.Row >= p.Row
		})
		node.entries = append(node.entries, column.Pair{})
		copy(node.entries[idx+1:], node.entries[idx:])
		node.entries[idx] = p
		t.c.TuplesCopied++
		if len(node.entries) <= t.fanout {
			return nil, 0
		}
		mid := len(node.entries) / 2
		right := &leaf{entries: append([]column.Pair(nil), node.entries[mid:]...), next: node.next}
		node.entries = node.entries[:mid]
		node.next = right
		return right, right.entries[0].Val
	case *inner:
		childIdx := sort.Search(len(node.keys), func(i int) bool {
			t.c.Comparisons++
			return node.keys[i] > p.Val
		})
		newChild, splitKey := t.insert(node.children[childIdx], p)
		if newChild == nil {
			return nil, 0
		}
		node.keys = append(node.keys, 0)
		copy(node.keys[childIdx+1:], node.keys[childIdx:])
		node.keys[childIdx] = splitKey
		node.children = append(node.children, nil)
		copy(node.children[childIdx+2:], node.children[childIdx+1:])
		node.children[childIdx+1] = newChild
		if len(node.children) <= t.fanout {
			return nil, 0
		}
		midKey := len(node.keys) / 2
		splitUp := node.keys[midKey]
		right := &inner{
			keys:     append([]column.Value(nil), node.keys[midKey+1:]...),
			children: append([]nodeRef(nil), node.children[midKey+1:]...),
		}
		node.keys = node.keys[:midKey]
		node.children = node.children[:midKey+1]
		return right, splitUp
	default:
		panic(fmt.Sprintf("btree: unknown node type %T", n))
	}
}

// firstLeafFor descends to the leftmost leaf that may contain an entry
// with value v. Because duplicates may straddle node boundaries (a leaf
// may end with the same value its right sibling starts with), the
// descent takes the first child whose separator is >= v; the range scan
// then skips any leading entries below the predicate's lower bound.
func (t *Tree) firstLeafFor(v column.Value) *leaf {
	n := t.root
	for {
		switch node := n.(type) {
		case *leaf:
			return node
		case *inner:
			idx := sort.Search(len(node.keys), func(i int) bool {
				t.c.Comparisons++
				return node.keys[i] >= v
			})
			n = node.children[idx]
		}
	}
}

// firstLeaf returns the leftmost leaf.
func (t *Tree) firstLeaf() *leaf {
	n := t.root
	for {
		switch node := n.(type) {
		case *leaf:
			return node
		case *inner:
			n = node.children[0]
		}
	}
}

// Select returns the row identifiers of all entries whose value
// satisfies the range predicate r.
func (t *Tree) Select(r column.Range) column.IDList {
	var out column.IDList
	var l *leaf
	if r.HasLow {
		l = t.firstLeafFor(r.Low)
	} else {
		l = t.firstLeaf()
	}
	for ; l != nil; l = l.next {
		for _, e := range l.entries {
			t.c.Comparisons++
			t.c.ValuesTouched++
			if r.HasHigh {
				if r.IncHigh {
					if e.Val > r.High {
						return out
					}
				} else if e.Val >= r.High {
					return out
				}
			}
			if r.Contains(e.Val) {
				out = append(out, e.Row)
				t.c.TuplesCopied++
			}
		}
	}
	return out
}

// Count returns the number of entries matching r without materialising
// the row identifiers.
func (t *Tree) Count(r column.Range) int {
	count := 0
	var l *leaf
	if r.HasLow {
		l = t.firstLeafFor(r.Low)
	} else {
		l = t.firstLeaf()
	}
	for ; l != nil; l = l.next {
		for _, e := range l.entries {
			t.c.Comparisons++
			if r.HasHigh {
				if r.IncHigh {
					if e.Val > r.High {
						return count
					}
				} else if e.Val >= r.High {
					return count
				}
			}
			if r.Contains(e.Val) {
				count++
			}
		}
	}
	return count
}

// Ascend calls fn for every entry in value order until fn returns
// false.
func (t *Tree) Ascend(fn func(column.Pair) bool) {
	for l := t.firstLeaf(); l != nil; l = l.next {
		for _, e := range l.entries {
			if !fn(e) {
				return
			}
		}
	}
}

// Entries returns all entries in value order. Intended for tests and
// tools.
func (t *Tree) Entries() column.Pairs {
	out := make(column.Pairs, 0, t.size)
	t.Ascend(func(p column.Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Height returns the number of levels in the tree (1 for a single
// leaf).
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}

// Validate checks the structural invariants: entries sorted within and
// across leaves, separator keys consistent with subtrees, and the entry
// count matching Len.
func (t *Tree) Validate() error {
	entries := t.Entries()
	if len(entries) != t.size {
		return fmt.Errorf("btree: size %d but %d entries reachable", t.size, len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Val < entries[i-1].Val {
			return fmt.Errorf("btree: entries out of order at %d (%d after %d)", i, entries[i].Val, entries[i-1].Val)
		}
	}
	return t.validateNode(t.root, nil, nil)
}

func (t *Tree) validateNode(n nodeRef, min, max *column.Value) error {
	switch node := n.(type) {
	case *leaf:
		for _, e := range node.entries {
			if min != nil && e.Val < *min {
				return fmt.Errorf("btree: leaf entry %d below separator %d", e.Val, *min)
			}
			if max != nil && e.Val > *max {
				return fmt.Errorf("btree: leaf entry %d above separator %d", e.Val, *max)
			}
		}
		return nil
	case *inner:
		if len(node.children) != len(node.keys)+1 {
			return fmt.Errorf("btree: inner node has %d children and %d keys", len(node.children), len(node.keys))
		}
		for i := 1; i < len(node.keys); i++ {
			if node.keys[i] < node.keys[i-1] {
				return fmt.Errorf("btree: separator keys out of order")
			}
		}
		for i, child := range node.children {
			childMin, childMax := min, max
			if i > 0 {
				childMin = &node.keys[i-1]
			}
			if i < len(node.keys) {
				childMax = &node.keys[i]
			}
			if err := t.validateNode(child, childMin, childMax); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("btree: unknown node type %T", n)
	}
}
