package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
)

func scanOracle(pairs column.Pairs, r column.Range) column.IDList {
	var out column.IDList
	for _, p := range pairs {
		if r.Contains(p.Val) {
			out = append(out, p.Row)
		}
	}
	return out
}

func randomPairs(rng *rand.Rand, n, domain int) column.Pairs {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return column.PairsFromValues(vals)
}

func TestBulkLoadAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 63, 64, 65, 1000, 5000} {
		pairs := randomPairs(rng, n, 200)
		tr := BulkLoad(pairs, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		entries := tr.Entries()
		if !entries.IsSortedByValue() {
			t.Fatalf("n=%d: entries not sorted", n)
		}
	}
}

func TestBulkLoadSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pairs := randomPairs(rng, 500, 100)
	sorted := pairs.Clone()
	sorted.SortByValue()
	tr := BulkLoadSorted(sorted, 8)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// BulkLoadSorted must not charge sort comparisons.
	if tr.Cost().Comparisons != 0 {
		t.Fatalf("BulkLoadSorted charged %d comparisons", tr.Cost().Comparisons)
	}
}

func TestSelectMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pairs := randomPairs(rng, 3000, 500)
	tr := BulkLoad(pairs, 32)
	queries := []column.Range{
		column.NewRange(10, 50),
		column.ClosedRange(100, 100),
		column.Point(250),
		column.AtLeast(450),
		column.LessThan(20),
		{},
		column.NewRange(600, 700), // outside domain
		column.ClosedRange(-10, 1000),
	}
	for q := 0; q < 100; q++ {
		lo := column.Value(rng.Intn(520) - 10)
		queries = append(queries, column.NewRange(lo, lo+column.Value(rng.Intn(80))))
	}
	for _, r := range queries {
		got := tr.Select(r)
		want := scanOracle(pairs, r)
		if !got.Equal(want) {
			t.Fatalf("range %s: got %d rows want %d", r, len(got), len(want))
		}
		if c := tr.Count(r); c != len(want) {
			t.Fatalf("range %s: Count = %d want %d", r, c, len(want))
		}
	}
}

func TestInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := New(8)
	var pairs column.Pairs
	for i := 0; i < 2000; i++ {
		v := column.Value(rng.Intn(300))
		tr.Insert(v, column.RowID(i))
		pairs = append(pairs, column.Pair{Val: v, Row: column.RowID(i)})
		if i%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for q := 0; q < 50; q++ {
		lo := column.Value(rng.Intn(300))
		r := column.NewRange(lo, lo+20)
		if got, want := tr.Select(r), scanOracle(pairs, r); !got.Equal(want) {
			t.Fatalf("range %s: got %d rows want %d", r, len(got), len(want))
		}
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := randomPairs(rng, 1000, 100)
	tr := BulkLoad(pairs, 8)
	all := pairs.Clone()
	for i := 0; i < 500; i++ {
		v := column.Value(rng.Intn(100))
		row := column.RowID(1000 + i)
		tr.Insert(v, row)
		all = append(all, column.Pair{Val: v, Row: row})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	r := column.ClosedRange(20, 60)
	if got, want := tr.Select(r), scanOracle(all, r); !got.Equal(want) {
		t.Fatalf("got %d rows want %d", len(got), len(want))
	}
}

func TestDuplicatesAcrossLeaves(t *testing.T) {
	// Force a single value to span many leaves.
	vals := make([]column.Value, 300)
	for i := range vals {
		vals[i] = 7
	}
	vals = append(vals, 1, 2, 3, 9, 10)
	pairs := column.PairsFromValues(vals)
	tr := BulkLoad(pairs, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.Select(column.Point(7))
	if len(got) != 300 {
		t.Fatalf("Point(7) returned %d rows, want 300", len(got))
	}
	got = tr.Select(column.NewRange(7, 8))
	if len(got) != 300 {
		t.Fatalf("[7,8) returned %d rows, want 300", len(got))
	}
}

func TestHeightAndFanoutClamp(t *testing.T) {
	tr := New(1) // clamped to 4
	for i := 0; i < 100; i++ {
		tr.Insert(column.Value(i), column.RowID(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a tree of height >= 3 with fanout 4 and 100 entries, got %d", tr.Height())
	}
	single := New(64)
	if single.Height() != 1 {
		t.Fatalf("empty tree height = %d", single.Height())
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := BulkLoad(column.PairsFromValues([]column.Value{5, 3, 1, 4, 2}), 4)
	var seen []column.Value
	tr.Ascend(func(p column.Pair) bool {
		seen = append(seen, p.Val)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Fatalf("Ascend early stop wrong: %v", seen)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := New(16)
	if got := tr.Select(column.NewRange(0, 100)); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	if tr.Count(column.AtLeast(0)) != 0 {
		t.Fatal("empty tree count != 0")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: a bulk-loaded tree's ordered entries are exactly the sorted
// input, and range selects agree with the scan oracle.
func TestQuickBulkLoadRoundTrip(t *testing.T) {
	f := func(raw []int16, lo int16, width uint8) bool {
		vals := make([]column.Value, len(raw))
		for i, v := range raw {
			vals[i] = column.Value(v)
		}
		pairs := column.PairsFromValues(vals)
		tr := BulkLoad(pairs, 8)
		if tr.Validate() != nil {
			return false
		}
		want := pairs.Clone()
		want.SortByValue()
		got := tr.Entries()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Val != want[i].Val {
				return false
			}
		}
		r := column.NewRange(column.Value(lo), column.Value(lo)+column.Value(width))
		return tr.Select(r).Equal(scanOracle(pairs, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadCostCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pairs := randomPairs(rng, 4096, 10000)
	tr := BulkLoad(pairs, 64)
	c := tr.Cost()
	if c.Comparisons == 0 || c.TuplesCopied == 0 {
		t.Fatalf("BulkLoad must charge build cost, got %s", c)
	}
	// The build cost must be super-linear-ish: at least n comparisons.
	if c.Comparisons < uint64(len(pairs)) {
		t.Fatalf("BulkLoad charged only %d comparisons for %d entries", c.Comparisons, len(pairs))
	}
}
