package engine

import "sort"

// TableInfo is the observable summary of one catalog table: the row
// slots it holds (tombstones included — Rows is one past the largest
// row identifier), its live tuple count, its column names in schema
// order, and the name of the merge policy its buffered writes drain
// under. It is the schema surface the service layer reads, so hosts
// that are not a single *Engine — a shard cluster fronting several —
// can describe their catalog without exposing *Table handles whose
// row counts would only cover one stripe.
type TableInfo struct {
	Name        string   `json:"name"`
	Rows        int      `json:"rows"`
	LiveRows    int      `json:"live_rows"`
	Columns     []string `json:"columns"`
	MergePolicy string   `json:"merge_policy"`
}

// Tables summarises every catalog table, sorted by name.
func (e *Engine) Tables() []TableInfo {
	names := e.cat.Tables()
	sort.Strings(names)
	infos := make([]TableInfo, 0, len(names))
	for _, name := range names {
		t, err := e.cat.Table(name)
		if err != nil {
			continue
		}
		infos = append(infos, TableInfo{
			Name:        name,
			Rows:        t.NumRows(),
			LiveRows:    t.LiveRows(),
			Columns:     t.Columns(),
			MergePolicy: e.MergePolicyFor(name).String(),
		})
	}
	return infos
}

// ShardStat is one engine shard's share of a cluster's state: the row
// slots and live tuples of its stripe, its cumulative logical work and
// the slice of it caused by write merging, and its buffered update
// depth. A cluster of row-striped shards sends every query to every
// shard, so a skewed WorkTotal or LiveRows column is the signal that
// the stripes — or the write stream — are unbalanced.
type ShardStat struct {
	Shard          int    `json:"shard"`
	Rows           int    `json:"rows"`
	LiveRows       int    `json:"live_rows"`
	WorkTotal      uint64 `json:"work_total"`
	MergeWork      uint64 `json:"merge_work"`
	PendingInserts int    `json:"pending_inserts"`
	PendingDeletes int    `json:"pending_deletes"`
}
