// Engine state snapshot and restore.
//
// An engine's value is the physical reorganisation its workload has
// paid for: cracked selection columns, materialised and aligned
// sideways maps, and the planner's learned per-path cost estimates.
// Snapshot captures exactly that state — BASE table data is NOT
// included; it is the daemon's job to rebuild the same catalog
// (deterministic generation, or reloading the same files) before
// restoring. What a generator cannot rebuild is carried by the
// snapshot: rows appended through the write path, tombstones, and the
// per-column pending update buffers with their merge-policy name, so a
// restart round-trips unmerged writes instead of losing them. Restore
// validates every structure against the catalog it is applied to, so a
// snapshot taken over different data is rejected instead of serving
// wrong answers.
//
// Partitioned parallel crackers are deliberately not captured: their
// state (quantile pivots plus per-partition crackers) is rebuilt in one
// partitioning pass on first use, which costs about as much as
// restoring it would. Sideways map sets of written tables are not
// captured either — every write invalidates them, so persisting one
// would only save work when the daemon shut down after a quiet reading
// spell; they rebuild lazily, like the parallel crackers.
package engine

import (
	"fmt"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/sideways"
	"adaptiveindex/internal/updates"

	"adaptiveindex/internal/crackeridx"
)

// BoundarySnap is one cracker-index boundary in portable form.
type BoundarySnap struct {
	Value     column.Value
	Inclusive bool
	Pos       int
}

// BoundSnap is one crack-history bound in portable form.
type BoundSnap struct {
	Value     column.Value
	Inclusive bool
}

// CrackerSnap is the state of one cracked selection column: the merged
// (value, rowid) pairs in current physical order, every boundary, the
// merge policy, and the pending update buffers that have not been
// merged yet.
type CrackerSnap struct {
	Values     []column.Value
	Rows       []column.RowID
	Boundaries []BoundarySnap

	Policy      string
	PendInsVals []column.Value
	PendInsRows []column.RowID
	PendDelVals []column.Value
	PendDelRows []column.RowID
	MergedIns   uint64
	MergedDel   uint64
}

// TableSnap is the write state of one table: the rows appended through
// the write path (one value per column, keyed by column name, in
// append order) and the tombstoned row identifiers. BaseRows pins the
// snapshot to a catalog of the same generated size.
type TableSnap struct {
	BaseRows int
	Appended map[string][]column.Value
	Deleted  []column.RowID
}

// MapSnap is the state of one sideways cracker map.
type MapSnap struct {
	Attr         string
	Heads, Tails []column.Value
	Rows         []column.RowID
	Boundaries   []BoundarySnap
	Aligned      int
}

// MapSetSnap is the state of one sideways map set.
type MapSetSnap struct {
	History []BoundSnap
	Maps    []MapSnap
}

// PathSnap is the planner's accumulated observation of one path.
type PathSnap struct {
	Path    string
	Queries uint64
	Work    uint64
	WallNs  int64
	First   float64
	EWMA    float64
	Seen    bool
	Warm    bool
	Probes  int
}

// PlanSnap is the planner state for one (table, column).
type PlanSnap struct {
	Phase      string
	Passes     int
	Chosen     string
	Baseline   float64
	DriftRun   int
	ReExplores int
	Paths      []PathSnap
}

// State is everything Snapshot captures. It is a plain data structure
// (gob- and json-friendly) so internal/persist can serialise it without
// reaching into engine internals.
type State struct {
	Tables   map[string]TableSnap
	Crackers map[TableColumn]CrackerSnap
	MapSets  map[TableColumn]MapSetSnap
	Plans    map[TableColumn]PlanSnap
	Writes   WriteCounters
}

// Snapshot captures the engine's adaptive state.
func (e *Engine) Snapshot() State {
	st := State{
		Tables:   make(map[string]TableSnap),
		Crackers: make(map[TableColumn]CrackerSnap, len(e.crackers)),
		MapSets:  make(map[TableColumn]MapSetSnap, len(e.mapsets)),
		Plans:    make(map[TableColumn]PlanSnap, len(e.planner.states)),
		Writes:   e.writes,
	}
	for _, name := range e.cat.Tables() {
		t, _ := e.cat.Table(name)
		if !t.Written() {
			continue
		}
		ts := TableSnap{
			BaseRows: t.BaseRows(),
			Appended: make(map[string][]column.Value, len(t.order)),
			Deleted:  t.DeletedRows(),
		}
		for _, col := range t.order {
			vals := t.cols[col]
			ts.Appended[col] = append([]column.Value(nil), vals[t.BaseRows():]...)
		}
		st.Tables[name] = ts
	}
	for tc, uc := range e.crackers {
		cc := uc.Cracker()
		pairs := cc.Pairs()
		cs := CrackerSnap{
			Values:    make([]column.Value, len(pairs)),
			Rows:      make([]column.RowID, len(pairs)),
			Policy:    uc.Policy().String(),
			MergedIns: uc.MergedInserts(),
			MergedDel: uc.MergedDeletions(),
		}
		for i, p := range pairs {
			cs.Values[i], cs.Rows[i] = p.Val, p.Row
		}
		for _, b := range cc.Index().Boundaries() {
			cs.Boundaries = append(cs.Boundaries, BoundarySnap{Value: b.Value, Inclusive: b.Inclusive, Pos: b.Pos})
		}
		ins, del := uc.PendingPairs()
		for _, p := range ins {
			cs.PendInsVals = append(cs.PendInsVals, p.Val)
			cs.PendInsRows = append(cs.PendInsRows, p.Row)
		}
		for _, p := range del {
			cs.PendDelVals = append(cs.PendDelVals, p.Val)
			cs.PendDelRows = append(cs.PendDelRows, p.Row)
		}
		st.Crackers[tc] = cs
	}
	for tc, ms := range e.mapsets {
		if t, err := e.cat.Table(tc.Table); err == nil && t.Written() {
			// A written table's map set holds live-filtered tuples;
			// restore rebuilds it lazily instead (see package comment).
			continue
		}
		d := ms.Dump()
		mss := MapSetSnap{History: make([]BoundSnap, 0, len(d.History))}
		for _, b := range d.History {
			mss.History = append(mss.History, BoundSnap{Value: b.Value, Inclusive: b.Inclusive})
		}
		for _, md := range d.Maps {
			m := MapSnap{Attr: md.Attr, Heads: md.Heads, Tails: md.Tails, Rows: md.Rows, Aligned: md.Aligned}
			for _, b := range md.Boundaries {
				m.Boundaries = append(m.Boundaries, BoundarySnap{Value: b.Value, Inclusive: b.Inclusive, Pos: b.Pos})
			}
			mss.Maps = append(mss.Maps, m)
		}
		st.MapSets[tc] = mss
	}
	for tc, ps := range e.planner.states {
		snap := PlanSnap{
			Phase:      ps.phase.String(),
			Passes:     ps.passes,
			Chosen:     ps.chosen.String(),
			Baseline:   ps.baseline,
			DriftRun:   ps.driftRun,
			ReExplores: ps.reExplores,
		}
		for path := AccessPath(0); path < numStaticPaths; path++ {
			obs := ps.paths[path]
			snap.Paths = append(snap.Paths, PathSnap{
				Path:    path.String(),
				Queries: obs.queries,
				Work:    obs.work,
				WallNs:  obs.wall.Nanoseconds(),
				First:   obs.first,
				EWMA:    obs.ewma,
				Seen:    obs.seen,
				Warm:    obs.warm,
				Probes:  obs.probes,
			})
		}
		st.Plans[tc] = snap
	}
	return st
}

// Restore applies a snapshot to a fresh engine whose catalog holds the
// same generated base data the snapshot was taken over. Table write
// state (appended rows, tombstones) is re-applied first, then every
// restored structure is validated against the resulting catalog. On
// error the adaptive structures are left untouched, but table write
// state may already be applied — callers treat a failed restore as
// fatal and rebuild the catalog from scratch.
func (e *Engine) Restore(st State) error {
	for name, ts := range st.Tables {
		if err := e.restoreTable(name, ts); err != nil {
			return err
		}
	}
	crackers := make(map[TableColumn]*updates.Column, len(st.Crackers))
	for tc, cs := range st.Crackers {
		uc, err := e.restoreCracker(tc, cs)
		if err != nil {
			return err
		}
		crackers[tc] = uc
	}
	mapsets := make(map[TableColumn]*sideways.MapSet, len(st.MapSets))
	for tc, mss := range st.MapSets {
		if t, err := e.cat.Table(tc.Table); err == nil && t.Written() {
			return fmt.Errorf("engine: snapshot map set %s: table has write state; map sets of written tables are not restorable", tc)
		}
		ms, err := e.restoreMapSet(tc, mss)
		if err != nil {
			return err
		}
		mapsets[tc] = ms
	}
	plans := make(map[TableColumn]*planState, len(st.Plans))
	for tc, snap := range st.Plans {
		ps, err := e.restorePlan(tc, snap)
		if err != nil {
			return err
		}
		plans[tc] = ps
	}
	for tc, uc := range crackers {
		e.crackers[tc] = uc
	}
	for tc, ms := range mapsets {
		e.mapsets[tc] = ms
	}
	for tc, ps := range plans {
		e.planner.states[tc] = ps
	}
	e.writes = st.Writes
	return nil
}

// restoreTable re-applies a table's write history: appended rows in
// append order, then tombstones.
func (e *Engine) restoreTable(name string, ts TableSnap) error {
	t, err := e.cat.Table(name)
	if err != nil {
		return fmt.Errorf("engine: snapshot table %q: %w", name, err)
	}
	if t.Written() {
		return fmt.Errorf("engine: snapshot table %q: catalog table already has write state", name)
	}
	if t.NumRows() != ts.BaseRows {
		return fmt.Errorf("engine: snapshot table %q has %d base rows, catalog has %d (snapshot taken over different data?)",
			name, ts.BaseRows, t.NumRows())
	}
	appended := -1
	for _, col := range t.order {
		vals, ok := ts.Appended[col]
		if !ok {
			return fmt.Errorf("engine: snapshot table %q: no appended values for column %q", name, col)
		}
		if appended < 0 {
			appended = len(vals)
		} else if len(vals) != appended {
			return fmt.Errorf("engine: snapshot table %q: column %q has %d appended values, want %d",
				name, col, len(vals), appended)
		}
	}
	row := make([]column.Value, len(t.order))
	for i := 0; i < appended; i++ {
		for ci, col := range t.order {
			row[ci] = ts.Appended[col][i]
		}
		if _, err := t.AppendRow(row); err != nil {
			return fmt.Errorf("engine: snapshot table %q: %w", name, err)
		}
	}
	for _, dead := range ts.Deleted {
		if err := t.DeleteRow(dead); err != nil {
			return fmt.Errorf("engine: snapshot table %q: %w", name, err)
		}
	}
	return nil
}

func (e *Engine) restoreCracker(tc TableColumn, cs CrackerSnap) (*updates.Column, error) {
	t, err := e.cat.Table(tc.Table)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s: %w", tc, err)
	}
	base, err := t.Column(tc.Column)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s: %w", tc, err)
	}
	if len(cs.Values) != len(cs.Rows) {
		return nil, fmt.Errorf("engine: snapshot cracker %s holds %d values but %d rows", tc, len(cs.Values), len(cs.Rows))
	}
	// pin validates a snapshotted (value, rowid) pair against the base
	// column: a cracker snapshot is internally consistent by
	// construction, so the cracking invariants alone cannot detect a
	// snapshot taken over different data.
	pin := func(what string, row column.RowID, val column.Value) error {
		if int(row) >= len(base) {
			return fmt.Errorf("engine: snapshot cracker %s: %s row %d outside table", tc, what, row)
		}
		if base[row] != val {
			return fmt.Errorf("engine: snapshot cracker %s: %s row %d holds %d, catalog has %d (snapshot taken over different data?)",
				tc, what, row, val, base[row])
		}
		return nil
	}
	pairs := make(column.Pairs, len(cs.Values))
	for i := range cs.Values {
		if err := pin("merged", cs.Rows[i], cs.Values[i]); err != nil {
			return nil, err
		}
		pairs[i] = column.Pair{Val: cs.Values[i], Row: cs.Rows[i]}
	}
	// The snapshot's policy is the restored column's policy; an empty
	// name (a hand-built State) falls back to the engine configuration.
	// Daemon flags still win: server.BuildEngine re-applies them after
	// the restore.
	policy := e.MergePolicyFor(tc.Table)
	if cs.Policy != "" {
		var err error
		if policy, err = updates.ParsePolicy(cs.Policy); err != nil {
			return nil, fmt.Errorf("engine: snapshot cracker %s: %w", tc, err)
		}
	}
	uc := updates.NewFromPairs(pairs, e.opts, policy, column.RowID(t.NumRows()))
	cc := uc.Cracker()
	for _, b := range cs.Boundaries {
		if b.Pos < 0 || b.Pos > len(pairs) {
			return nil, fmt.Errorf("engine: snapshot cracker %s: boundary position %d outside [0,%d]",
				tc, b.Pos, len(pairs))
		}
		cc.Index().Insert(crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive}, b.Pos)
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s violates cracking invariants: %w", tc, err)
	}
	if len(cs.PendInsVals) != len(cs.PendInsRows) || len(cs.PendDelVals) != len(cs.PendDelRows) {
		return nil, fmt.Errorf("engine: snapshot cracker %s: pending buffer lengths disagree", tc)
	}
	ins := make(column.Pairs, len(cs.PendInsVals))
	for i := range cs.PendInsVals {
		row, val := cs.PendInsRows[i], cs.PendInsVals[i]
		if err := pin("pending-insert", row, val); err != nil {
			return nil, err
		}
		if !t.Live(row) {
			return nil, fmt.Errorf("engine: snapshot cracker %s: pending insert for dead row %d", tc, row)
		}
		ins[i] = column.Pair{Val: val, Row: row}
	}
	del := make(column.Pairs, len(cs.PendDelVals))
	for i := range cs.PendDelVals {
		row, val := cs.PendDelRows[i], cs.PendDelVals[i]
		if err := pin("pending-delete", row, val); err != nil {
			return nil, err
		}
		if t.Live(row) {
			return nil, fmt.Errorf("engine: snapshot cracker %s: pending delete for live row %d", tc, row)
		}
		del[i] = column.Pair{Val: val, Row: row}
	}
	if err := uc.RestorePending(ins, del); err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s: %w", tc, err)
	}
	uc.RestoreMergedCounts(cs.MergedIns, cs.MergedDel)
	if uc.Len() != t.LiveRows() {
		return nil, fmt.Errorf("engine: snapshot cracker %s covers %d live rows, table has %d (snapshot taken over different data?)",
			tc, uc.Len(), t.LiveRows())
	}
	return uc, nil
}

func (e *Engine) restoreMapSet(tc TableColumn, mss MapSetSnap) (*sideways.MapSet, error) {
	t, err := e.cat.Table(tc.Table)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot map set %s: %w", tc, err)
	}
	head, err := t.Column(tc.Column)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot map set %s: %w", tc, err)
	}
	tails := make(map[string][]column.Value, len(t.order)-1)
	for _, other := range t.order {
		if other == tc.Column {
			continue
		}
		tails[other], _ = t.Column(other)
	}
	d := sideways.Dump{History: make([]crackeridx.Bound, 0, len(mss.History))}
	for _, b := range mss.History {
		d.History = append(d.History, crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive})
	}
	for _, m := range mss.Maps {
		md := sideways.MapDump{Attr: m.Attr, Heads: m.Heads, Tails: m.Tails, Rows: m.Rows, Aligned: m.Aligned}
		for _, b := range m.Boundaries {
			md.Boundaries = append(md.Boundaries, crackeridx.Boundary{
				Bound: crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive},
				Pos:   b.Pos,
			})
		}
		d.Maps = append(d.Maps, md)
	}
	ms, err := sideways.RestoreMapSet(tc.Column, head, tails, sideways.DefaultOptions(), d)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot map set %s: %w", tc, err)
	}
	return ms, nil
}

func (e *Engine) restorePlan(tc TableColumn, snap PlanSnap) (*planState, error) {
	t, err := e.cat.Table(tc.Table)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot plan %s: %w", tc, err)
	}
	if _, err := t.Column(tc.Column); err != nil {
		return nil, fmt.Errorf("engine: snapshot plan %s: %w", tc, err)
	}
	chosen, err := ParsePath(snap.Chosen)
	if err != nil || chosen >= numStaticPaths {
		return nil, fmt.Errorf("engine: snapshot plan %s: bad chosen path %q", tc, snap.Chosen)
	}
	ps := &planState{
		passes:     snap.Passes,
		candidates: e.candidatesFor(t),
		scanCost:   scanWork(t.NumRows()),
		chosen:     chosen,
		baseline:   snap.Baseline,
		driftRun:   snap.DriftRun,
		reExplores: snap.ReExplores,
	}
	switch snap.Phase {
	case phaseExplore.String():
		ps.phase = phaseExplore
	case phaseExploit.String():
		ps.phase = phaseExploit
	default:
		return nil, fmt.Errorf("engine: snapshot plan %s: bad phase %q", tc, snap.Phase)
	}
	for _, p := range snap.Paths {
		path, err := ParsePath(p.Path)
		if err != nil || path >= numStaticPaths {
			return nil, fmt.Errorf("engine: snapshot plan %s: bad path %q", tc, p.Path)
		}
		ps.paths[path] = pathObs{
			queries: p.Queries,
			work:    p.Work,
			wall:    time.Duration(p.WallNs),
			first:   p.First,
			ewma:    p.EWMA,
			seen:    p.Seen,
			warm:    p.Warm,
			probes:  p.Probes,
		}
	}
	return ps, nil
}
