// Engine state snapshot and restore.
//
// An engine's value is the physical reorganisation its workload has
// paid for: cracked selection columns, materialised and aligned
// sideways maps, and the planner's learned per-path cost estimates.
// Snapshot captures exactly that state — base table data is NOT
// included; it is the daemon's job to rebuild the same catalog
// (deterministic generation, or reloading the same files) before
// restoring. Restore validates every structure against the catalog it
// is applied to, so a snapshot taken over different data is rejected
// instead of serving wrong answers.
//
// Partitioned parallel crackers are deliberately not captured: their
// state (quantile pivots plus per-partition crackers) is rebuilt in one
// partitioning pass on first use, which costs about as much as
// restoring it would.
package engine

import (
	"fmt"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/crackeridx"
	"adaptiveindex/internal/sideways"
)

// BoundarySnap is one cracker-index boundary in portable form.
type BoundarySnap struct {
	Value     column.Value
	Inclusive bool
	Pos       int
}

// BoundSnap is one crack-history bound in portable form.
type BoundSnap struct {
	Value     column.Value
	Inclusive bool
}

// CrackerSnap is the state of one cracked selection column: the
// (value, rowid) pairs in current physical order plus every boundary.
type CrackerSnap struct {
	Values     []column.Value
	Rows       []column.RowID
	Boundaries []BoundarySnap
}

// MapSnap is the state of one sideways cracker map.
type MapSnap struct {
	Attr         string
	Heads, Tails []column.Value
	Rows         []column.RowID
	Boundaries   []BoundarySnap
	Aligned      int
}

// MapSetSnap is the state of one sideways map set.
type MapSetSnap struct {
	History []BoundSnap
	Maps    []MapSnap
}

// PathSnap is the planner's accumulated observation of one path.
type PathSnap struct {
	Path    string
	Queries uint64
	Work    uint64
	WallNs  int64
	First   float64
	EWMA    float64
	Seen    bool
	Warm    bool
	Probes  int
}

// PlanSnap is the planner state for one (table, column).
type PlanSnap struct {
	Phase      string
	Passes     int
	Chosen     string
	Baseline   float64
	DriftRun   int
	ReExplores int
	Paths      []PathSnap
}

// State is everything Snapshot captures. It is a plain data structure
// (gob- and json-friendly) so internal/persist can serialise it without
// reaching into engine internals.
type State struct {
	Crackers map[TableColumn]CrackerSnap
	MapSets  map[TableColumn]MapSetSnap
	Plans    map[TableColumn]PlanSnap
}

// Snapshot captures the engine's adaptive state.
func (e *Engine) Snapshot() State {
	st := State{
		Crackers: make(map[TableColumn]CrackerSnap, len(e.crackers)),
		MapSets:  make(map[TableColumn]MapSetSnap, len(e.mapsets)),
		Plans:    make(map[TableColumn]PlanSnap, len(e.planner.states)),
	}
	for tc, cc := range e.crackers {
		pairs := cc.Pairs()
		cs := CrackerSnap{
			Values: make([]column.Value, len(pairs)),
			Rows:   make([]column.RowID, len(pairs)),
		}
		for i, p := range pairs {
			cs.Values[i], cs.Rows[i] = p.Val, p.Row
		}
		for _, b := range cc.Index().Boundaries() {
			cs.Boundaries = append(cs.Boundaries, BoundarySnap{Value: b.Value, Inclusive: b.Inclusive, Pos: b.Pos})
		}
		st.Crackers[tc] = cs
	}
	for tc, ms := range e.mapsets {
		d := ms.Dump()
		mss := MapSetSnap{History: make([]BoundSnap, 0, len(d.History))}
		for _, b := range d.History {
			mss.History = append(mss.History, BoundSnap{Value: b.Value, Inclusive: b.Inclusive})
		}
		for _, md := range d.Maps {
			m := MapSnap{Attr: md.Attr, Heads: md.Heads, Tails: md.Tails, Rows: md.Rows, Aligned: md.Aligned}
			for _, b := range md.Boundaries {
				m.Boundaries = append(m.Boundaries, BoundarySnap{Value: b.Value, Inclusive: b.Inclusive, Pos: b.Pos})
			}
			mss.Maps = append(mss.Maps, m)
		}
		st.MapSets[tc] = mss
	}
	for tc, ps := range e.planner.states {
		snap := PlanSnap{
			Phase:      ps.phase.String(),
			Passes:     ps.passes,
			Chosen:     ps.chosen.String(),
			Baseline:   ps.baseline,
			DriftRun:   ps.driftRun,
			ReExplores: ps.reExplores,
		}
		for path := AccessPath(0); path < numStaticPaths; path++ {
			obs := ps.paths[path]
			snap.Paths = append(snap.Paths, PathSnap{
				Path:    path.String(),
				Queries: obs.queries,
				Work:    obs.work,
				WallNs:  obs.wall.Nanoseconds(),
				First:   obs.first,
				EWMA:    obs.ewma,
				Seen:    obs.seen,
				Warm:    obs.warm,
				Probes:  obs.probes,
			})
		}
		st.Plans[tc] = snap
	}
	return st
}

// Restore applies a snapshot to a fresh engine whose catalog holds the
// same data the snapshot was taken over. Every restored structure is
// validated; on error the engine is left untouched.
func (e *Engine) Restore(st State) error {
	crackers := make(map[TableColumn]*core.CrackerColumn, len(st.Crackers))
	for tc, cs := range st.Crackers {
		cc, err := e.restoreCracker(tc, cs)
		if err != nil {
			return err
		}
		crackers[tc] = cc
	}
	mapsets := make(map[TableColumn]*sideways.MapSet, len(st.MapSets))
	for tc, mss := range st.MapSets {
		ms, err := e.restoreMapSet(tc, mss)
		if err != nil {
			return err
		}
		mapsets[tc] = ms
	}
	plans := make(map[TableColumn]*planState, len(st.Plans))
	for tc, snap := range st.Plans {
		ps, err := e.restorePlan(tc, snap)
		if err != nil {
			return err
		}
		plans[tc] = ps
	}
	for tc, cc := range crackers {
		e.crackers[tc] = cc
	}
	for tc, ms := range mapsets {
		e.mapsets[tc] = ms
	}
	for tc, ps := range plans {
		e.planner.states[tc] = ps
	}
	return nil
}

func (e *Engine) restoreCracker(tc TableColumn, cs CrackerSnap) (*core.CrackerColumn, error) {
	t, err := e.cat.Table(tc.Table)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s: %w", tc, err)
	}
	base, err := t.Column(tc.Column)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s: %w", tc, err)
	}
	if len(cs.Values) != t.NumRows() || len(cs.Rows) != t.NumRows() {
		return nil, fmt.Errorf("engine: snapshot cracker %s holds %d values, table has %d rows",
			tc, len(cs.Values), t.NumRows())
	}
	pairs := make(column.Pairs, len(cs.Values))
	for i := range cs.Values {
		// A cracker snapshot is internally consistent by construction, so
		// the cracking invariants alone cannot detect a snapshot taken
		// over different data; pin every pair to the base column.
		row := cs.Rows[i]
		if int(row) < 0 || int(row) >= len(base) {
			return nil, fmt.Errorf("engine: snapshot cracker %s: row %d outside table", tc, row)
		}
		if base[row] != cs.Values[i] {
			return nil, fmt.Errorf("engine: snapshot cracker %s: row %d holds %d, catalog has %d (snapshot taken over different data?)",
				tc, row, cs.Values[i], base[row])
		}
		pairs[i] = column.Pair{Val: cs.Values[i], Row: cs.Rows[i]}
	}
	cc := core.NewCrackerColumnFromPairs(pairs, e.opts)
	for _, b := range cs.Boundaries {
		if b.Pos < 0 || b.Pos > len(pairs) {
			return nil, fmt.Errorf("engine: snapshot cracker %s: boundary position %d outside [0,%d]",
				tc, b.Pos, len(pairs))
		}
		cc.Index().Insert(crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive}, b.Pos)
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("engine: snapshot cracker %s violates cracking invariants: %w", tc, err)
	}
	return cc, nil
}

func (e *Engine) restoreMapSet(tc TableColumn, mss MapSetSnap) (*sideways.MapSet, error) {
	t, err := e.cat.Table(tc.Table)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot map set %s: %w", tc, err)
	}
	head, err := t.Column(tc.Column)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot map set %s: %w", tc, err)
	}
	tails := make(map[string][]column.Value, len(t.order)-1)
	for _, other := range t.order {
		if other == tc.Column {
			continue
		}
		tails[other], _ = t.Column(other)
	}
	d := sideways.Dump{History: make([]crackeridx.Bound, 0, len(mss.History))}
	for _, b := range mss.History {
		d.History = append(d.History, crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive})
	}
	for _, m := range mss.Maps {
		md := sideways.MapDump{Attr: m.Attr, Heads: m.Heads, Tails: m.Tails, Rows: m.Rows, Aligned: m.Aligned}
		for _, b := range m.Boundaries {
			md.Boundaries = append(md.Boundaries, crackeridx.Boundary{
				Bound: crackeridx.Bound{Value: b.Value, Inclusive: b.Inclusive},
				Pos:   b.Pos,
			})
		}
		d.Maps = append(d.Maps, md)
	}
	ms, err := sideways.RestoreMapSet(tc.Column, head, tails, sideways.DefaultOptions(), d)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot map set %s: %w", tc, err)
	}
	return ms, nil
}

func (e *Engine) restorePlan(tc TableColumn, snap PlanSnap) (*planState, error) {
	t, err := e.cat.Table(tc.Table)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot plan %s: %w", tc, err)
	}
	if _, err := t.Column(tc.Column); err != nil {
		return nil, fmt.Errorf("engine: snapshot plan %s: %w", tc, err)
	}
	chosen, err := ParsePath(snap.Chosen)
	if err != nil || chosen >= numStaticPaths {
		return nil, fmt.Errorf("engine: snapshot plan %s: bad chosen path %q", tc, snap.Chosen)
	}
	ps := &planState{
		passes:     snap.Passes,
		candidates: e.candidatesFor(t),
		scanCost:   scanWork(t.NumRows()),
		chosen:     chosen,
		baseline:   snap.Baseline,
		driftRun:   snap.DriftRun,
		reExplores: snap.ReExplores,
	}
	switch snap.Phase {
	case phaseExplore.String():
		ps.phase = phaseExplore
	case phaseExploit.String():
		ps.phase = phaseExploit
	default:
		return nil, fmt.Errorf("engine: snapshot plan %s: bad phase %q", tc, snap.Phase)
	}
	for _, p := range snap.Paths {
		path, err := ParsePath(p.Path)
		if err != nil || path >= numStaticPaths {
			return nil, fmt.Errorf("engine: snapshot plan %s: bad path %q", tc, p.Path)
		}
		ps.paths[path] = pathObs{
			queries: p.Queries,
			work:    p.Work,
			wall:    time.Duration(p.WallNs),
			first:   p.First,
			ewma:    p.EWMA,
			seen:    p.Seen,
			warm:    p.Warm,
			probes:  p.Probes,
		}
	}
	return ps, nil
}
