package engine

import "adaptiveindex/internal/column"

// Blocks yields the result's rows and the projected columns named in
// project, in fixed-size windows of blockRows rows. blockRows <= 0
// yields the whole result as a single block. The slices passed to fn
// are views into the result's backing arrays — no copying happens
// here — so fn must not retain or mutate them past its return. A
// caller streaming an epoch-pinned result must hold its epoch pin
// (EpochInfo.Release) until iteration completes, even though epoch
// reads materialise rows and projections into fresh arrays: the pin
// is the contract that keeps future zero-copy results safe too. An
// empty result yields no blocks. Iteration stops at the first error
// fn returns.
func (r *Result) Blocks(project []string, blockRows int, fn func(rows column.IDList, cols [][]column.Value) error) error {
	cols := make([][]column.Value, len(project))
	for i, name := range project {
		cols[i] = r.Columns[name]
	}
	n := len(r.Rows)
	if n == 0 {
		return nil
	}
	if blockRows <= 0 || blockRows > n {
		blockRows = n
	}
	sub := make([][]column.Value, len(cols))
	for start := 0; start < n; start += blockRows {
		end := start + blockRows
		if end > n {
			end = n
		}
		for i, vec := range cols {
			sub[i] = vec[start:end]
		}
		if err := fn(r.Rows[start:end], sub); err != nil {
			return err
		}
	}
	return nil
}
