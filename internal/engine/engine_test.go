package engine

import (
	"errors"
	"math/rand"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/workload"
)

func buildCatalog(t *testing.T, n int, seed int64) (*Catalog, *Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tab := NewTable("orders")
	a := make([]column.Value, n)
	b := make([]column.Value, n)
	c := make([]column.Value, n)
	d := make([]column.Value, n)
	for i := 0; i < n; i++ {
		a[i] = column.Value(rng.Intn(10000))
		b[i] = column.Value(rng.Intn(100))
		c[i] = column.Value(rng.Intn(1000000))
		d[i] = column.Value(i)
	}
	for name, vals := range map[string][]column.Value{"amount": a, "status": b, "customer": c, "id": d} {
		if err := tab.AddColumn(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	return cat, tab
}

func TestTableAndCatalogErrors(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn("a", []column.Value{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("a", []column.Value{1, 2, 3}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate column: %v", err)
	}
	if err := tab.AddColumn("b", []column.Value{1}); !errors.Is(err, ErrColumnLength) {
		t.Fatalf("length mismatch: %v", err)
	}
	if _, err := tab.Column("missing"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown column: %v", err)
	}
	if tab.NumRows() != 3 || tab.Name() != "t" || len(tab.Columns()) != 1 {
		t.Fatal("table accessors wrong")
	}

	cat := NewCatalog()
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(tab); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate table: %v", err)
	}
	if _, err := cat.Table("missing"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("unknown table: %v", err)
	}
	if len(cat.Tables()) != 1 {
		t.Fatal("catalog listing wrong")
	}
}

func TestAccessPathString(t *testing.T) {
	if PathScan.String() != "scan" || PathCracking.String() != "cracking" ||
		PathSideways.String() != "sideways" || PathParallel.String() != "parallel" {
		t.Fatal("access path names wrong")
	}
}

func TestSelectRowsAllPathsAgree(t *testing.T) {
	cat, tab := buildCatalog(t, 5000, 1)
	eng := New(cat, core.DefaultOptions())
	amounts, _ := tab.Column("amount")
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 60; q++ {
		lo := column.Value(rng.Intn(10000))
		r := column.NewRange(lo, lo+column.Value(rng.Intn(500)))
		want := column.IDList{}
		for i, v := range amounts {
			if r.Contains(v) {
				want = append(want, column.RowID(i))
			}
		}
		for _, path := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel} {
			got, err := eng.SelectRows("orders", "amount", r, path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s query %s: got %d rows want %d", path, r, len(got), len(want))
			}
		}
	}
	if err := eng.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectProjectAllPathsAgree(t *testing.T) {
	cat, tab := buildCatalog(t, 3000, 3)
	eng := New(cat, core.DefaultOptions())
	amounts, _ := tab.Column("amount")
	status, _ := tab.Column("status")
	customer, _ := tab.Column("customer")
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 40; q++ {
		lo := column.Value(rng.Intn(10000))
		r := column.NewRange(lo, lo+300)
		for _, path := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel} {
			res, err := eng.SelectProject("orders", "amount", r, []string{"status", "customer"}, path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if len(res.Columns["status"]) != len(res.Rows) || len(res.Columns["customer"]) != len(res.Rows) {
				t.Fatalf("%s: projection length mismatch", path)
			}
			for i, row := range res.Rows {
				if !r.Contains(amounts[row]) {
					t.Fatalf("%s: row %d does not satisfy %s", path, row, r)
				}
				if res.Columns["status"][i] != status[row] || res.Columns["customer"][i] != customer[row] {
					t.Fatalf("%s: misaligned projection for row %d", path, row)
				}
			}
		}
	}
	if err := eng.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectErrors(t *testing.T) {
	cat, _ := buildCatalog(t, 100, 5)
	eng := New(cat, core.DefaultOptions())
	if _, err := eng.SelectRows("missing", "amount", column.NewRange(0, 1), PathScan); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("unknown table: %v", err)
	}
	for _, path := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel} {
		if _, err := eng.SelectRows("orders", "missing", column.NewRange(0, 1), path); !errors.Is(err, ErrUnknownColumn) {
			t.Fatalf("%s unknown column: %v", path, err)
		}
	}
	if _, err := eng.SelectProject("orders", "amount", column.NewRange(0, 1), []string{"missing"}, PathScan); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown projection column: %v", err)
	}
	if _, err := eng.SelectProject("nope", "amount", column.NewRange(0, 1), nil, PathScan); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("unknown table in select-project: %v", err)
	}
}

func TestJoinCount(t *testing.T) {
	cat := NewCatalog()
	t1 := NewTable("left")
	if err := t1.AddColumn("k", []column.Value{1, 2, 2, 3}); err != nil {
		t.Fatal(err)
	}
	t2 := NewTable("right")
	if err := t2.AddColumn("k", []column.Value{2, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(t1); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(t2); err != nil {
		t.Fatal(err)
	}
	eng := New(cat, core.DefaultOptions())
	got, err := eng.JoinCount("left", "k", "right", "k")
	if err != nil {
		t.Fatal(err)
	}
	// Matches: value 2 -> 2x2 = 4 pairs, value 3 -> 1 pair.
	if got != 5 {
		t.Fatalf("JoinCount = %d, want 5", got)
	}
	if _, err := eng.JoinCount("left", "k", "right", "missing"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("join error handling: %v", err)
	}
	if _, err := eng.JoinCount("left", "missing", "right", "k"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("join error handling: %v", err)
	}
	if _, err := eng.JoinCount("nope", "k", "right", "k"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("join error handling: %v", err)
	}
}

func TestSidewaysBeatsCrackingForWideProjections(t *testing.T) {
	// E6's shape: with several projected attributes and a converged
	// workload, sideways cracking does less work per query than
	// cracking plus late tuple reconstruction, because reconstruction
	// after cracking is random access per projected attribute.
	n := 50000
	cat, _ := buildCatalog(t, n, 6)
	queries := workload.Queries(workload.NewUniform(7, 0, 10000, 0.02), 200)
	project := []string{"status", "customer", "id"}

	crackEng := New(cat, core.DefaultOptions())
	sideEng := New(cat, core.DefaultOptions())
	for _, r := range queries {
		if _, err := crackEng.SelectProject("orders", "amount", r, project, PathCracking); err != nil {
			t.Fatal(err)
		}
		if _, err := sideEng.SelectProject("orders", "amount", r, project, PathSideways); err != nil {
			t.Fatal(err)
		}
	}
	// Compare the work of the last 50 queries: by then both strategies
	// have converged and the reconstruction difference dominates.
	crackTail := crackEng.Cost()
	sideTail := sideEng.Cost()
	crackEng2 := crackTail
	_ = crackEng2
	// Run 50 more queries and measure the delta.
	more := workload.Queries(workload.NewUniform(8, 0, 10000, 0.02), 50)
	crackBefore, sideBefore := crackEng.Cost().Total(), sideEng.Cost().Total()
	for _, r := range more {
		if _, err := crackEng.SelectProject("orders", "amount", r, project, PathCracking); err != nil {
			t.Fatal(err)
		}
		if _, err := sideEng.SelectProject("orders", "amount", r, project, PathSideways); err != nil {
			t.Fatal(err)
		}
	}
	crackDelta := crackEng.Cost().Total() - crackBefore
	sideDelta := sideEng.Cost().Total() - sideBefore
	if sideDelta >= crackDelta {
		t.Fatalf("sideways (%d) should beat cracking+reconstruction (%d) on converged wide projections",
			sideDelta, crackDelta)
	}
	_ = sideTail
}

func TestEngineCostAccumulates(t *testing.T) {
	cat, _ := buildCatalog(t, 1000, 9)
	eng := New(cat, core.DefaultOptions())
	if !eng.Cost().IsZero() {
		t.Fatal("fresh engine must have zero cost")
	}
	if _, err := eng.SelectRows("orders", "amount", column.NewRange(0, 5000), PathScan); err != nil {
		t.Fatal(err)
	}
	afterScan := eng.Cost().Total()
	if afterScan == 0 {
		t.Fatal("scan must be charged")
	}
	if _, err := eng.SelectRows("orders", "amount", column.NewRange(0, 5000), PathCracking); err != nil {
		t.Fatal(err)
	}
	if eng.Cost().Total() <= afterScan {
		t.Fatal("cracking must be charged on top")
	}
}

func TestEngineParallelPartitionsKnob(t *testing.T) {
	cat, tab := buildCatalog(t, 5000, 11)
	eng := New(cat, core.DefaultOptions())
	eng.SetParallelPartitions(3)
	amounts, _ := tab.Column("amount")
	r := column.NewRange(1000, 4000)
	want := column.IDList{}
	for i, v := range amounts {
		if r.Contains(v) {
			want = append(want, column.RowID(i))
		}
	}
	got, err := eng.SelectRows("orders", "amount", r, PathParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	px := eng.parallels[key("orders", "amount")]
	if px == nil {
		t.Fatal("parallel structure not built")
	}
	if px.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d, want 3", px.NumPartitions())
	}
	afterParallel := eng.Cost().Total()
	if afterParallel == 0 {
		t.Fatal("parallel path must be charged")
	}
	if err := eng.Validate(); err != nil {
		t.Fatal(err)
	}
}
