package engine

import (
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/updates"
	"adaptiveindex/internal/workload"
)

// traceTestEngine builds a two-column engine over deterministic data.
func traceTestEngine(t *testing.T, n int) *Engine {
	t.Helper()
	tab := NewTable("data")
	for ci, off := range []int64{0, 1} {
		if err := tab.AddColumn([]string{"c0", "c1"}[ci], workload.DataUniform(7+off, n, 10_000)); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	return New(cat, core.DefaultOptions())
}

func TestRunTracedSpansCarryCostDeltas(t *testing.T) {
	e := traceTestEngine(t, 4000)
	rec := trace.NewRecorder()
	before := e.Cost()
	res, err := e.Run(Query{Table: "data", Column: "c0", R: column.NewRange(100, 600),
		Project: []string{"c1"}, Path: PathCracking, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	delta := e.Cost().Sub(before)
	root := rec.Finish()

	var crack, mat *trace.Span
	for _, s := range root.Spans {
		switch s.Phase {
		case trace.PhaseCrack:
			crack = s
		case trace.PhaseMaterialise:
			mat = s
		}
	}
	if crack == nil || mat == nil {
		t.Fatalf("missing phases in %+v", root.Spans)
	}
	// The spans partition the engine work: their totals must sum to the
	// engine's cost movement for the query.
	sum := root.SumWork()
	if sum.Total != delta.Total() {
		t.Fatalf("span work %d != engine delta %d", sum.Total, delta.Total())
	}
	if mat.Work.Recurring == 0 || res.Count == 0 {
		t.Fatalf("materialise span recorded no recurring work (count=%d)", res.Count)
	}
	if root.ChildDurUs() > root.DurUs {
		t.Fatalf("child durations %dus exceed root %dus", root.ChildDurUs(), root.DurUs)
	}
	// Tracing must leave no residue on the engine.
	if e.rec != nil {
		t.Fatal("recorder still attached after Run")
	}
}

func TestRunTracedMergeFlushNested(t *testing.T) {
	e := traceTestEngine(t, 2000)
	// Build the cracker, then buffer writes so the next read flushes.
	if _, err := e.Run(Query{Table: "data", Column: "c0", R: column.NewRange(0, 9999), Path: PathCracking}); err != nil {
		t.Fatal(err)
	}
	e.SetMergePolicy(updates.MergeGradually)
	for v := column.Value(200); v < 220; v++ {
		if _, err := e.InsertRow("data", []column.Value{v, v}); err != nil {
			t.Fatal(err)
		}
	}
	rec := trace.NewRecorder()
	if _, err := e.Run(Query{Table: "data", Column: "c0", R: column.NewRange(0, 9999),
		Path: PathCracking, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	root := rec.Finish()
	var flush *trace.Span
	for _, s := range root.Spans {
		if s.Phase == trace.PhaseCrack {
			for _, c := range s.Spans {
				if c.Phase == trace.PhaseMergeFlush {
					flush = c
				}
			}
		}
	}
	if flush == nil {
		t.Fatalf("no merge_flush span nested under crack: %+v", root.Spans)
	}
	if flush.Work.MergeWork == 0 {
		t.Fatalf("merge_flush span carries no merge work: %+v", flush.Work)
	}
}

func TestEventLogRecordsReorganisation(t *testing.T) {
	e := traceTestEngine(t, 4000)
	log := trace.NewLog(256)
	e.SetEventLog(log)

	// Drive enough distinct predicates through the planner to build
	// structures, crack them past thresholds, and close an explore round.
	qs := workload.Queries(workload.NewUniform(11, 0, 10_000, 0.02), 60)
	for _, r := range qs {
		if _, err := e.Run(Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: PathAuto}); err != nil {
			t.Fatal(err)
		}
	}
	events, dropped := log.Since(0, 0)
	if dropped != 0 || len(events) == 0 {
		t.Fatalf("events=%d dropped=%d", len(events), dropped)
	}
	seen := map[string]int{}
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("events out of sequence order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		seen[ev.Kind]++
	}
	for _, kind := range []string{"plan_explore", "plan_exploit", "build", "crack", "pieces_threshold"} {
		if seen[kind] == 0 {
			t.Errorf("no %q event recorded (saw %v)", kind, seen)
		}
	}
	// The exploit decision must carry comparable per-path scores.
	for _, ev := range events {
		if ev.Kind == "plan_exploit" {
			if ev.Path == "" || len(ev.Fields) < 2 {
				t.Fatalf("plan_exploit event lacks scores: %+v", ev)
			}
		}
	}
}

func TestEventLogRecordsMergeFlush(t *testing.T) {
	e := traceTestEngine(t, 2000)
	log := trace.NewLog(64)
	e.SetEventLog(log)
	if _, err := e.Run(Query{Table: "data", Column: "c0", R: column.NewRange(0, 9999), Path: PathCracking}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertRow("data", []column.Value{500, 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Query{Table: "data", Column: "c0", R: column.NewRange(0, 9999), Path: PathCracking}); err != nil {
		t.Fatal(err)
	}
	events, _ := log.Since(0, 0)
	found := false
	for _, ev := range events {
		if ev.Kind == "merge_flush" && ev.Fields["merged_inserts"] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no merge_flush event after a buffered insert was read back: %+v", events)
	}
}

// TestTracingIsFreeWhenOn verifies the acceptance-critical invariant
// from the other side: an identical query stream with tracing and
// events attached moves the deterministic cost counters exactly as the
// bare stream does.
func TestTracingNeverMovesCostCounters(t *testing.T) {
	run := func(observed bool) uint64 {
		e := traceTestEngine(t, 3000)
		if observed {
			e.SetEventLog(trace.NewLog(128))
		}
		qs := workload.Queries(workload.NewUniform(13, 0, 10_000, 0.01), 40)
		for _, r := range qs {
			q := Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: PathAuto}
			if observed {
				q.Trace = trace.NewRecorder()
			}
			if _, err := e.Run(q); err != nil {
				t.Fatal(err)
			}
		}
		return e.Cost().Total()
	}
	bare, observed := run(false), run(true)
	if bare != observed {
		t.Fatalf("tracing moved the cost counters: %d (off) vs %d (on)", bare, observed)
	}
}
