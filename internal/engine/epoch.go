// Epoch-pinned snapshot reads.
//
// The engine proper is single-caller: any read may crack, so one
// goroutine must own it. Epochs decouple reads from that constraint.
// The owning goroutine (the service's reorganiser/executor) calls
// PublishEpoch between reorganisations to capture an immutable view —
// a copy-on-crack piece catalog per cracked column (core.ColSnapshot),
// row-sorted pending-update buffers, and length-frozen base-array
// views per table — published atomically behind an atomic.Pointer.
// Any number of reader goroutines then Pin the current epoch and
// Select/Count/project against it without locks; reads that cross an
// uncracked piece boundary (or see pending updates) report a crack
// intent, which the caller hands back to the owner as deferred
// reorganisation (ApplyIntent). Old epochs are retired when their pin
// count returns to zero.
//
// Determinism: publication charges nothing to the cost counters, and
// reader work is accumulated in separate atomic tallies — the engine's
// deterministic counter stream is exactly what it would be if the same
// reorganisations ran through Run directly.

package engine

import (
	"fmt"
	"sync/atomic"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/trace"
)

// epochColumn is one cracked column's immutable epoch view: the piece
// catalog of the merged tuples plus the pending buffers a reader must
// patch in (inserts appended, deletions filtered via delSet).
type epochColumn struct {
	snap    *core.ColSnapshot
	pendIns column.Pairs
	pendDel column.Pairs
	delSet  map[column.RowID]bool
	// ccVer/bufVer fingerprint the live column state this view was
	// taken from; publication reuses the view while they are unchanged.
	ccVer  uint64
	bufVer uint64
}

// epochTable is one table's immutable epoch view: length-frozen slice
// headers of the base column arrays (appends beyond nrows never touch
// indexes below it, and a reallocating append leaves the old array
// behind — both safe to read concurrently), plus a copied tombstone
// set.
type epochTable struct {
	nrows     int
	cols      map[string][]column.Value
	dead      map[column.RowID]bool
	deadCount int
	fp        uint64 // Table.writeEpochs at capture
}

// Epoch is one published immutable view of the whole engine. Readers
// pin it (incrementing pins), run any number of queries against it,
// and release it; the publisher holds one reference until the next
// epoch replaces it. When the pin count of a superseded epoch reaches
// zero it is retired (counted once; memory is the garbage collector's
// problem).
type Epoch struct {
	// Seq is the publication sequence number, strictly increasing.
	Seq    uint64
	cols   map[TableColumn]*epochColumn
	tables map[string]*epochTable

	pins    atomic.Int64
	retired atomic.Bool
}

// release drops one pin. A superseded epoch whose pins reach zero is
// retired exactly once (the CAS guards against a racing reader that
// pinned a stale pointer and resurrected the count; such a reader
// still sees a consistent immutable view, just a slightly old one).
func (ep *Epoch) release(e *Engine) {
	if ep.pins.Add(-1) == 0 && e.epoch.Load() != ep && ep.retired.CompareAndSwap(false, true) {
		e.epochRetired.Add(1)
	}
}

// Intent is one deferred reorganisation request: a reader observed
// that answering R against table.column crossed an uncracked piece
// boundary or unmerged pending updates. Applying it runs the crack
// (and whatever merge flush the policy owes) on the engine owner's
// goroutine.
type Intent struct {
	Table  string
	Column string
	R      column.Range
}

// EpochInfo describes one epoch read: the epoch it pinned, whether the
// read wants a reorganisation pass, and the release the caller must
// invoke exactly once when it has finished consuming the result
// (including streaming it — the result's projections are fresh copies,
// but holding the pin until the last byte keeps the contract simple
// and future-proofs zero-copy responses).
type EpochInfo struct {
	Seq        uint64
	NeedsReorg bool
	Release    func()
}

// EpochStats is a point-in-time summary of the epoch machinery.
type EpochStats struct {
	// Seq is the current epoch's sequence number (0 before the first
	// publication).
	Seq uint64 `json:"seq"`
	// Published and Retired count epoch lifecycle transitions.
	Published uint64 `json:"published"`
	Retired   uint64 `json:"retired"`
	// IntentsApplied counts reorganiser-applied crack intents.
	IntentsApplied uint64 `json:"intents_applied"`
	// Reads counts epoch-pinned reads; ReadWork is their summed
	// logical work (kept apart from the engine's deterministic
	// counters).
	Reads    uint64 `json:"reads"`
	ReadWork uint64 `json:"read_work"`
	// Pins is the current epoch's live pin count, publisher reference
	// included.
	Pins int64 `json:"pins"`
}

// epochChanged reports whether any engine state visible to readers
// moved since the given epoch was captured.
func (e *Engine) epochChanged(cur *Epoch) bool {
	if len(e.crackers) != len(cur.cols) || len(e.cat.tables) != len(cur.tables) {
		return true
	}
	for k, uc := range e.crackers {
		old, ok := cur.cols[k]
		if !ok {
			return true
		}
		ccVer, bufVer := uc.Versions()
		if old.ccVer != ccVer || old.bufVer != bufVer {
			return true
		}
	}
	for name, t := range e.cat.tables {
		old, ok := cur.tables[name]
		if !ok || old.fp != t.writeEpochs || len(old.cols) != len(t.cols) {
			return true
		}
	}
	return false
}

// PublishEpoch captures the engine's current state as the next epoch
// and makes it the one readers pin. It must be called from the
// goroutine that owns the engine (the same single-caller discipline as
// Run). When nothing changed since the current epoch it returns that
// epoch untouched — no sequence bump, no copying. Publication never
// charges the deterministic cost counters.
func (e *Engine) PublishEpoch() *Epoch {
	cur := e.epoch.Load()
	if cur != nil && !e.epochChanged(cur) {
		return cur
	}
	e.epochSeq++
	next := &Epoch{
		Seq:    e.epochSeq,
		cols:   make(map[TableColumn]*epochColumn, len(e.crackers)),
		tables: make(map[string]*epochTable, len(e.cat.tables)),
	}
	next.pins.Store(1) // the publisher's reference
	for k, uc := range e.crackers {
		ccVer, bufVer := uc.Versions()
		var old *epochColumn
		if cur != nil {
			old = cur.cols[k]
		}
		if old != nil && old.ccVer == ccVer && old.bufVer == bufVer {
			next.cols[k] = old
			continue
		}
		var prev *core.ColSnapshot
		if old != nil {
			prev = old.snap
		}
		snap, pendIns, pendDel := uc.Snapshot(prev)
		ec := &epochColumn{snap: snap, pendIns: pendIns, pendDel: pendDel, ccVer: ccVer, bufVer: bufVer}
		if len(pendDel) > 0 {
			ec.delSet = make(map[column.RowID]bool, len(pendDel))
			for _, p := range pendDel {
				ec.delSet[p.Row] = true
			}
		}
		next.cols[k] = ec
	}
	for name, t := range e.cat.tables {
		var old *epochTable
		if cur != nil {
			old = cur.tables[name]
		}
		if old != nil && old.fp == t.writeEpochs && len(old.cols) == len(t.cols) {
			next.tables[name] = old
			continue
		}
		et := &epochTable{
			nrows:     t.nrows,
			cols:      make(map[string][]column.Value, len(t.cols)),
			deadCount: t.deadCount,
			fp:        t.writeEpochs,
		}
		for cn, vals := range t.cols {
			et.cols[cn] = vals[:t.nrows:t.nrows]
		}
		if t.deadCount > 0 {
			et.dead = make(map[column.RowID]bool, len(t.deadRows))
			for row := range t.deadRows {
				et.dead[row] = true
			}
		}
		next.tables[name] = et
	}
	e.epoch.Store(next)
	e.epochPublished.Add(1)
	if cur != nil {
		cur.release(e)
	}
	return next
}

// pinCurrent pins and returns the current epoch (nil before the first
// PublishEpoch). Safe from any goroutine.
func (e *Engine) pinCurrent() *Epoch {
	ep := e.epoch.Load()
	if ep == nil {
		return nil
	}
	ep.pins.Add(1)
	return ep
}

// EpochRead answers one read-only query against the current epoch
// without touching the live engine: any number of goroutines may call
// it concurrently with each other and with the owning goroutine's
// reorganisation (writes, ApplyIntent, PublishEpoch). The query's work
// is recorded in the epoch read tallies, never in the deterministic
// counters. On success the caller must invoke info.Release exactly
// once after it has finished with the result.
func (e *Engine) EpochRead(q Query) (*Result, EpochInfo, error) {
	if q.CountOnly && len(q.Project) > 0 {
		return nil, EpochInfo{}, fmt.Errorf("engine: a count-only query cannot project (%v)", q.Project)
	}
	ep := e.pinCurrent()
	if ep == nil {
		return nil, EpochInfo{}, fmt.Errorf("engine: no epoch published")
	}
	release := func() { ep.release(e) }
	et, ok := ep.tables[q.Table]
	if !ok {
		release()
		return nil, EpochInfo{}, fmt.Errorf("%w: %q", ErrUnknownTable, q.Table)
	}
	if _, ok := et.cols[q.Column]; !ok {
		release()
		return nil, EpochInfo{}, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, q.Column)
	}
	for _, attr := range q.Project {
		if _, ok := et.cols[attr]; !ok {
			release()
			return nil, EpochInfo{}, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, attr)
		}
	}

	var c cost.Counters
	if q.Trace != nil {
		q.Trace.Begin(trace.PhaseEpochPin)
	}
	res, needsReorg := e.epochAnswer(ep, et, q, &c)
	if q.Trace != nil {
		q.Trace.End(trace.WorkOf(c))
	}
	e.epochReads.Add(1)
	e.epochReadWork.Add(c.Total())
	return res, EpochInfo{Seq: ep.Seq, NeedsReorg: needsReorg, Release: release}, nil
}

// epochAnswer computes the query result against the pinned epoch,
// charging work to the reader-local counters.
func (e *Engine) epochAnswer(ep *Epoch, et *epochTable, q Query, c *cost.Counters) (*Result, bool) {
	needsReorg := false
	res := &Result{Path: PathCracking}
	ec := ep.cols[key(q.Table, q.Column)]
	switch {
	case ec == nil:
		// No cracked snapshot for this column yet: answer from the
		// table view and ask the reorganiser to build the cracker.
		res.Path = PathScan
		needsReorg = true
		vals := et.cols[q.Column]
		if q.CountOnly {
			n := 0
			for i, v := range vals {
				c.ValuesTouched++
				if et.deadCount > 0 && et.dead[column.RowID(i)] {
					continue
				}
				c.Comparisons++
				if q.R.Contains(v) {
					n++
				}
			}
			res.Count = n
		} else {
			var rows column.IDList
			for i, v := range vals {
				c.ValuesTouched++
				if et.deadCount > 0 && et.dead[column.RowID(i)] {
					continue
				}
				c.Comparisons++
				if q.R.Contains(v) {
					rows = append(rows, column.RowID(i))
					c.TuplesCopied++
				}
			}
			res.Rows = rows
			res.Count = len(rows)
		}
	case q.CountOnly:
		n, boundary := ec.snap.Count(q.R, c)
		needsReorg = boundary
		for _, p := range ec.pendDel {
			c.Comparisons++
			if q.R.Contains(p.Val) {
				n--
			}
		}
		for _, p := range ec.pendIns {
			c.Comparisons++
			if q.R.Contains(p.Val) {
				n++
			}
		}
		if len(ec.pendIns)+len(ec.pendDel) > 0 {
			needsReorg = true
		}
		res.Count = n
	default:
		rows, boundary := ec.snap.Select(q.R, c)
		needsReorg = boundary
		if len(ec.delSet) > 0 {
			kept := rows[:0]
			for _, row := range rows {
				if !ec.delSet[row] {
					kept = append(kept, row)
				}
			}
			rows = kept
		}
		for _, p := range ec.pendIns {
			c.Comparisons++
			if q.R.Contains(p.Val) {
				rows = append(rows, p.Row)
				c.TuplesCopied++
			}
		}
		if len(ec.pendIns)+len(ec.pendDel) > 0 {
			needsReorg = true
		}
		res.Rows = rows
		res.Count = len(rows)
	}
	if len(q.Project) > 0 && !q.CountOnly {
		res.Columns = make(map[string][]column.Value, len(q.Project))
		for _, attr := range q.Project {
			vals := et.cols[attr]
			out := make([]column.Value, len(res.Rows))
			core.GatherValues(out, vals, res.Rows)
			if res.Path == PathCracking {
				c.RandomTouches += uint64(len(res.Rows))
			} else {
				c.ValuesTouched += uint64(len(res.Rows))
			}
			c.TuplesCopied += uint64(len(res.Rows))
			res.Columns[attr] = out
		}
	}
	return res, needsReorg
}

// ApplyIntent runs one deferred crack on the owning goroutine: the
// intent's predicate executes as a count-only cracking query (creating
// the cracker column on first touch, cracking the boundary pieces, and
// flushing whatever pending updates the merge policy owes), and the
// non-recurring share of the work it caused is re-attributed to
// MergeWork — reorganisation moved off the query path is priced like
// merge work, which the planner's recurring component already models.
func (e *Engine) ApplyIntent(in Intent) error {
	before := e.Cost()
	if _, err := e.Run(Query{Table: in.Table, Column: in.Column, R: in.R, CountOnly: true, Path: PathCracking}); err != nil {
		return err
	}
	delta := e.Cost().Sub(before)
	if t, r := delta.Total(), delta.Recurring(); t > r {
		e.c.MergeWork += t - r
	}
	e.intentsApplied.Add(1)
	return nil
}

// EpochStats reports the epoch machinery's counters. Safe from any
// goroutine.
func (e *Engine) EpochStats() EpochStats {
	st := EpochStats{
		Published:      e.epochPublished.Load(),
		Retired:        e.epochRetired.Load(),
		IntentsApplied: e.intentsApplied.Load(),
		Reads:          e.epochReads.Load(),
		ReadWork:       e.epochReadWork.Load(),
	}
	if ep := e.epoch.Load(); ep != nil {
		st.Seq = ep.Seq
		st.Pins = ep.pins.Load()
	}
	return st
}
