package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/updates"
	"adaptiveindex/internal/workload"
)

// testCatalog builds a deterministic two-column table.
func testCatalog(t *testing.T, name string, n int, seed int64) *Catalog {
	t.Helper()
	tab := NewTable(name)
	for ci := 0; ci < 2; ci++ {
		if err := tab.AddColumn(fmt.Sprintf("c%d", ci), workload.DataUniform(seed+int64(ci), n, n)); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestInsertDeleteVisibleToAllPaths(t *testing.T) {
	const n = 2000
	for _, policy := range []updates.MergePolicy{updates.MergeGradually, updates.MergeCompletely, updates.MergeImmediately} {
		t.Run(policy.String(), func(t *testing.T) {
			eng := New(testCatalog(t, "data", n, 7), core.DefaultOptions())
			eng.SetMergePolicy(policy)

			// Touch every path once so existing structures must absorb
			// the writes rather than being built after them.
			warm := column.NewRange(100, 200)
			for _, path := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel} {
				if _, err := eng.Run(Query{Table: "data", Column: "c0", R: warm, Path: path}); err != nil {
					t.Fatal(err)
				}
			}

			// Insert rows with a sentinel value far outside the domain,
			// delete every base row holding value 0.
			const sentinel = column.Value(n + 500)
			var inserted []column.RowID
			for i := 0; i < 5; i++ {
				row, err := eng.InsertRow("data", []column.Value{sentinel, column.Value(i)})
				if err != nil {
					t.Fatal(err)
				}
				inserted = append(inserted, row)
			}
			tab, _ := eng.Catalog().Table("data")
			c0, _ := tab.Column("c0")
			deleted := 0
			for i, v := range c0[:n] {
				if v < 20 {
					if err := eng.DeleteRow("data", column.RowID(i)); err != nil {
						t.Fatal(err)
					}
					deleted++
				}
			}
			if deleted == 0 {
				t.Fatal("test needs at least one deleted row")
			}

			wantSentinels := toSet(inserted)
			for _, path := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel} {
				res, err := eng.Run(Query{Table: "data", Column: "c0", R: column.NewRange(sentinel, sentinel+1), Project: []string{"c1"}, Path: path})
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if got := toSet(res.Rows); !sameSet(got, wantSentinels) {
					t.Errorf("%s: sentinel rows = %v, want %v", path, res.Rows, inserted)
				}
				low, err := eng.Run(Query{Table: "data", Column: "c0", R: column.NewRange(0, 20), Path: path})
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if low.Count != 0 {
					t.Errorf("%s: %d deleted rows still visible", path, low.Count)
				}
			}
			if err := eng.Validate(); err != nil {
				t.Fatal(err)
			}
			ws := eng.WriteStats()
			if ws.Inserts != 5 || ws.Deletes != uint64(deleted) {
				t.Errorf("WriteStats = %+v, want 5 inserts, %d deletes", ws, deleted)
			}
		})
	}
}

// TestJoinCountFiltersTombstones pins the join against the write
// path: tombstoned rows must not contribute matches on either side.
func TestJoinCountFiltersTombstones(t *testing.T) {
	left := NewTable("left")
	if err := left.AddColumn("k", []column.Value{1, 2, 2, 3}); err != nil {
		t.Fatal(err)
	}
	right := NewTable("right")
	if err := right.AddColumn("k", []column.Value{2, 3, 3}); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	for _, tab := range []*Table{left, right} {
		if err := cat.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	eng := New(cat, core.DefaultOptions())
	n, err := eng.JoinCount("left", "k", "right", "k")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // 2x1 + 1x... rows: k=2 matches 2*1, k=3 matches 1*2
		t.Fatalf("baseline join count = %d, want 4", n)
	}
	// Delete one k=2 row on the left and one k=3 row on the right.
	if err := eng.DeleteRow("left", 1); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeleteRow("right", 1); err != nil {
		t.Fatal(err)
	}
	n, err = eng.JoinCount("left", "k", "right", "k")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // k=2: 1*1, k=3: 1*1
		t.Fatalf("join count after deletes = %d, want 2", n)
	}
	// An inserted row joins immediately.
	if _, err := eng.InsertRow("right", []column.Value{2}); err != nil {
		t.Fatal(err)
	}
	n, err = eng.JoinCount("left", "k", "right", "k")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("join count after insert = %d, want 3", n)
	}
}

func TestDeleteErrors(t *testing.T) {
	eng := New(testCatalog(t, "data", 100, 3), core.DefaultOptions())
	if err := eng.DeleteRow("data", 5); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeleteRow("data", 5); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("double delete: got %v, want ErrRowNotFound", err)
	}
	if err := eng.DeleteRow("data", 10_000); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("out-of-range delete: got %v, want ErrRowNotFound", err)
	}
	if _, err := eng.InsertRow("data", []column.Value{1}); !errors.Is(err, ErrRowArity) {
		t.Errorf("short insert: got %v, want ErrRowArity", err)
	}
	if _, err := eng.InsertRow("nope", []column.Value{1, 2}); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("unknown table: got %v, want ErrUnknownTable", err)
	}
}

// TestDifferentialUnderInterleavedWrites replays one interleaved
// insert/delete/select stream against an engine per access path (auto
// included) and asserts every path returns identical rows and
// projections after every read — the cross-path correctness contract
// the write path must preserve.
func TestDifferentialUnderInterleavedWrites(t *testing.T) {
	const n = 1500
	const steps = 400
	paths := []AccessPath{PathScan, PathCracking, PathSideways, PathParallel, PathAuto}
	engines := make([]*Engine, len(paths))
	for i := range paths {
		engines[i] = New(testCatalog(t, "data", n, 11), core.DefaultOptions())
	}

	rng := rand.New(rand.NewSource(99))
	reads := workload.NewDriftingHotSet(5, 0, n, 0.05, 0.3, 8, 1.3, 40)
	var own []column.RowID // rows inserted by the stream, still live
	for step := 0; step < steps; step++ {
		switch x := rng.Float64(); {
		case x < 0.15:
			vals := []column.Value{column.Value(rng.Intn(n)), column.Value(rng.Intn(n))}
			var row column.RowID
			for i, eng := range engines {
				r, err := eng.InsertRow("data", vals)
				if err != nil {
					t.Fatalf("step %d insert (%s): %v", step, paths[i], err)
				}
				if i == 0 {
					row = r
				} else if r != row {
					t.Fatalf("step %d: engines disagree on inserted row id (%d vs %d)", step, r, row)
				}
			}
			own = append(own, row)
		case x < 0.25 && len(own) > 0:
			row := own[0]
			own = own[1:]
			for i, eng := range engines {
				if err := eng.DeleteRow("data", row); err != nil {
					t.Fatalf("step %d delete (%s): %v", step, paths[i], err)
				}
			}
		default:
			r := reads.Next()
			var want column.IDList
			var wantProj []column.Value
			for i, eng := range engines {
				res, err := eng.Run(Query{Table: "data", Column: "c0", R: r, Project: []string{"c1"}, Path: paths[i]})
				if err != nil {
					t.Fatalf("step %d read (%s): %v", step, paths[i], err)
				}
				rows := append(column.IDList(nil), res.Rows...)
				proj := append([]column.Value(nil), res.Columns["c1"]...)
				sortRowsWithProj(rows, proj)
				if i == 0 {
					want, wantProj = rows, proj
					continue
				}
				if !equalIDs(rows, want) {
					t.Fatalf("step %d range %v: %s rows differ from %s (%d vs %d rows)",
						step, r, paths[i], paths[0], len(rows), len(want))
				}
				if !equalVals(proj, wantProj) {
					t.Fatalf("step %d range %v: %s projections differ from %s", step, r, paths[i], paths[0])
				}
			}
		}
	}
	for i, eng := range engines {
		if err := eng.Validate(); err != nil {
			t.Fatalf("%s: %v", paths[i], err)
		}
	}
}

func toSet(rows column.IDList) map[column.RowID]bool {
	s := make(map[column.RowID]bool, len(rows))
	for _, r := range rows {
		s[r] = true
	}
	return s
}

func sameSet(a, b map[column.RowID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}

func sortRowsWithProj(rows column.IDList, proj []column.Value) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return rows[idx[i]] < rows[idx[j]] })
	r2 := make(column.IDList, len(rows))
	p2 := make([]column.Value, len(proj))
	for i, k := range idx {
		r2[i] = rows[k]
		if k < len(proj) {
			p2[i] = proj[k]
		}
	}
	copy(rows, r2)
	copy(proj, p2)
}

func equalIDs(a, b column.IDList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalVals(a, b []column.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
