// The engine's write surface.
//
// "Updating a cracked database" (SIGMOD 2007) keeps updates adaptive:
// instead of reorganising the cracked columns on every write, pending
// insertions and deletions are buffered and ripple-merged only when —
// and only to the extent that — a query actually touches the affected
// key range. This file lifts that mechanism from the single-column
// library (internal/updates) to the multi-table engine:
//
//   - The base table applies every write immediately (append-only
//     arrays plus tombstones), so all access paths read their own
//     writes: a scan filters tombstones, projections keep indexing by
//     stable row identifier.
//   - Each cracked selection column is an updates.Column; the table's
//     merge policy (gradual, complete, immediate) decides when its
//     pending buffers drain into the cracked layout.
//   - Sideways map sets and partitioned parallel crackers have no
//     incremental update story, so a write invalidates them; they
//     rebuild lazily from the live tuples, and the rebuild — like a
//     ripple merge — is charged as recurring merge work to the path
//     that pays it, which is how the PathAuto planner learns that
//     those paths are expensive under a sustained write stream.
package engine

import (
	"fmt"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/updates"
)

// WriteCounters counts the writes an engine has applied.
type WriteCounters struct {
	// Inserts and Deletes count applied row operations.
	Inserts uint64 `json:"inserts"`
	Deletes uint64 `json:"deletes"`
	// Invalidations counts adaptive structures (sideways map sets,
	// parallel crackers) dropped by writes.
	Invalidations uint64 `json:"invalidations"`
}

// WriteStats is the observable write-path state of the engine.
type WriteStats struct {
	WriteCounters
	// PendingInserts and PendingDeletes are the current buffered depth
	// summed over every cracked selection column.
	PendingInserts int `json:"pending_inserts"`
	PendingDeletes int `json:"pending_deletes"`
	// MergedInserts and MergedDeletes count updates that have reached
	// the cracked layouts (immediately applied ones included).
	MergedInserts uint64 `json:"merged_inserts"`
	MergedDeletes uint64 `json:"merged_deletes"`
}

// SetMergePolicy sets the default merge policy for every table without
// an explicit override, updating existing cracked columns. It should
// be called before the engine serves writes; switching with pending
// buffers is safe (the buffers drain under the new policy).
func (e *Engine) SetMergePolicy(p updates.MergePolicy) {
	e.defaultPolicy = p
	for k, uc := range e.crackers {
		if _, overridden := e.tablePolicies[k.Table]; !overridden {
			uc.SetPolicy(p)
		}
	}
}

// SetTableMergePolicy overrides the merge policy for one table,
// updating its existing cracked columns.
func (e *Engine) SetTableMergePolicy(table string, p updates.MergePolicy) error {
	if _, err := e.cat.Table(table); err != nil {
		return err
	}
	e.tablePolicies[table] = p
	for k, uc := range e.crackers {
		if k.Table == table {
			uc.SetPolicy(p)
		}
	}
	return nil
}

// MergePolicyFor returns the merge policy writes to the table follow.
func (e *Engine) MergePolicyFor(table string) updates.MergePolicy {
	if p, ok := e.tablePolicies[table]; ok {
		return p
	}
	return e.defaultPolicy
}

// InsertRow appends one tuple — one value per column, in the table's
// column creation order — and returns its row identifier. The base
// table sees the row immediately; cracked selection columns buffer or
// apply it per the table's merge policy; sideways and parallel
// structures over the table are invalidated.
func (e *Engine) InsertRow(table string, vals []column.Value) (column.RowID, error) {
	t, err := e.cat.Table(table)
	if err != nil {
		return 0, err
	}
	row, err := t.AppendRow(vals)
	if err != nil {
		return 0, err
	}
	for ci, col := range t.order {
		if uc, ok := e.crackers[key(table, col)]; ok {
			if err := uc.InsertAt(row, vals[ci]); err != nil {
				return 0, fmt.Errorf("engine: insert into %s.%s: %w", table, col, err)
			}
		}
	}
	e.invalidateDerived(t)
	e.writes.Inserts++
	return row, nil
}

// DeleteRow tombstones the tuple with the given row identifier. It
// returns ErrRowNotFound when the row does not exist or was already
// deleted.
func (e *Engine) DeleteRow(table string, row column.RowID) error {
	t, err := e.cat.Table(table)
	if err != nil {
		return err
	}
	if err := t.DeleteRow(row); err != nil {
		return err
	}
	for _, col := range t.order {
		if uc, ok := e.crackers[key(table, col)]; ok {
			if err := uc.Delete(row); err != nil {
				// The cracked column holds every live row of the table,
				// so a miss here is an invariant violation, not a user
				// error.
				return fmt.Errorf("engine: delete from %s.%s: %w", table, col, err)
			}
		}
	}
	e.invalidateDerived(t)
	e.writes.Deletes++
	return nil
}

// invalidateDerived drops the sideways and parallel structures of a
// written table. They rebuild lazily from the live tuples; the rebuild
// is charged as merge work (see mapsetFor, parallelFor). The dropped
// structure's accumulated cost is folded into the engine's own
// counters first — cumulative cost must never move backwards, or the
// planner's per-query deltas would underflow.
func (e *Engine) invalidateDerived(t *Table) {
	for _, col := range t.order {
		k := key(t.name, col)
		if ms, ok := e.mapsets[k]; ok {
			e.c.Add(ms.Cost())
			delete(e.mapsets, k)
			e.staleSideways[k] = true
			e.writes.Invalidations++
		}
		if px, ok := e.parallels[k]; ok {
			e.c.Add(px.Cost())
			delete(e.parallels, k)
			e.staleParallel[k] = true
			e.writes.Invalidations++
		}
	}
}

// WriteStats reports the engine's write-path state.
func (e *Engine) WriteStats() WriteStats {
	s := WriteStats{WriteCounters: e.writes}
	for _, uc := range e.crackers {
		s.PendingInserts += uc.PendingInsertions()
		s.PendingDeletes += uc.PendingDeletions()
		s.MergedInserts += uc.MergedInserts()
		s.MergedDeletes += uc.MergedDeletions()
	}
	return s
}
