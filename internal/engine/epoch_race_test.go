package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
)

// TestEpochReadsRaceWithReorganiser is the epoch machinery's
// concurrency contract, meant to run under -race: N reader goroutines
// hammer one column with epoch-pinned reads while the owner goroutine
// interleaves writes, crack-intent application (crack splits and merge
// flushes) and epoch publication. Every read must observe exactly the
// visible row set of the epoch it pinned: the owner records the
// expected count for a fixed probe range before each publication, and
// readers check whatever epoch they land on against that record.
// Random-range reads are checked intrinsically — the projected
// selection values must all fall inside the predicate.
func TestEpochReadsRaceWithReorganiser(t *testing.T) {
	const (
		n       = 20000
		domain  = 10000
		readers = 4
		rounds  = 60
	)
	rng := rand.New(rand.NewSource(11))
	tab := NewTable("orders")
	amounts := make([]column.Value, n)
	ids := make([]column.Value, n)
	for i := 0; i < n; i++ {
		amounts[i] = column.Value(rng.Intn(domain))
		ids[i] = column.Value(i)
	}
	if err := tab.AddColumn("amount", amounts); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("id", ids); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	eng := New(cat, core.DefaultOptions())

	// truth is the owner's source of record: live row -> amount.
	probe := column.NewRange(2000, 4000)
	truth := make(map[column.RowID]column.Value, n)
	for i, v := range amounts {
		truth[column.RowID(i)] = v
	}
	countTruth := func() int {
		c := 0
		for _, v := range truth {
			if probe.Contains(v) {
				c++
			}
		}
		return c
	}

	// expected maps epoch seq -> visible probe count; each entry is
	// stored before its epoch is published and never overwritten.
	var expected sync.Map
	ep := eng.PublishEpoch()
	expected.Store(ep.Seq, countTruth())
	lastSeq := ep.Seq

	intents := make(chan Intent, 256)
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if i%2 == 0 {
					// Fixed probe: the count must be exactly the pinned
					// epoch's visible row count.
					res, info, err := eng.EpochRead(Query{Table: "orders", Column: "amount", R: probe, CountOnly: true})
					if err != nil {
						fail("reader %d: %v", g, err)
						return
					}
					want, ok := expected.Load(info.Seq)
					if !ok {
						info.Release()
						fail("reader %d: epoch %d has no expected count", g, info.Seq)
						return
					}
					if res.Count != want.(int) {
						info.Release()
						fail("reader %d: epoch %d: count %d, want %d", g, info.Seq, res.Count, want.(int))
						return
					}
					if info.NeedsReorg {
						select {
						case intents <- Intent{Table: "orders", Column: "amount", R: probe}:
						default:
						}
					}
					info.Release()
				} else {
					// Random range with projection: every projected value
					// must satisfy the predicate, and count must match the
					// row list.
					lo := column.Value(rng.Intn(domain))
					r := column.NewRange(lo, lo+column.Value(1+rng.Intn(500)))
					res, info, err := eng.EpochRead(Query{Table: "orders", Column: "amount", R: r, Project: []string{"amount"}})
					if err != nil {
						fail("reader %d: %v", g, err)
						return
					}
					if res.Count != len(res.Rows) || len(res.Columns["amount"]) != len(res.Rows) {
						info.Release()
						fail("reader %d: count %d, %d rows, %d projected", g, res.Count, len(res.Rows), len(res.Columns["amount"]))
						return
					}
					for _, v := range res.Columns["amount"] {
						if !r.Contains(v) {
							info.Release()
							fail("reader %d: projected value %d outside %s", g, v, r)
							return
						}
					}
					if info.NeedsReorg {
						select {
						case intents <- Intent{Table: "orders", Column: "amount", R: r}:
						default:
						}
					}
					info.Release()
				}
			}
		}(g)
	}

	// The owner goroutine: writes, reorganisation, publication.
	ownerRng := rand.New(rand.NewSource(7))
	live := make([]column.RowID, 0, n)
	for row := range truth {
		live = append(live, row)
	}
	for round := 0; round < rounds; round++ {
		for k := 0; k < 4; k++ {
			v := column.Value(ownerRng.Intn(domain))
			row, err := eng.InsertRow("orders", []column.Value{v, column.Value(n + round*4 + k)})
			if err != nil {
				t.Fatal(err)
			}
			truth[row] = v
			live = append(live, row)
		}
		if len(live) > 0 && round%3 == 0 {
			i := ownerRng.Intn(len(live))
			row := live[i]
			if err := eng.DeleteRow("orders", row); err != nil {
				t.Fatal(err)
			}
			delete(truth, row)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	drain:
		for {
			select {
			case in := <-intents:
				if err := eng.ApplyIntent(in); err != nil {
					t.Fatal(err)
				}
			default:
				break drain
			}
		}
		count := countTruth()
		expected.Store(lastSeq+1, count)
		ep := eng.PublishEpoch()
		if ep.Seq != lastSeq && ep.Seq != lastSeq+1 {
			t.Fatalf("publish jumped from seq %d to %d", lastSeq, ep.Seq)
		}
		if want, _ := expected.Load(ep.Seq); want.(int) != count {
			t.Fatalf("epoch %d expected count %v, owner computed %d", ep.Seq, want, count)
		}
		lastSeq = ep.Seq
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Convergence: apply everything still queued, publish, and the final
	// epoch must agree with the owner's truth.
	for {
		select {
		case in := <-intents:
			if err := eng.ApplyIntent(in); err != nil {
				t.Fatal(err)
			}
			continue
		default:
		}
		break
	}
	eng.PublishEpoch()
	res, info, err := eng.EpochRead(Query{Table: "orders", Column: "amount", R: probe, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	info.Release()
	if res.Count != countTruth() {
		t.Fatalf("final epoch count %d, truth %d", res.Count, countTruth())
	}
	if err := eng.Validate(); err != nil {
		t.Fatal(err)
	}
	st := eng.EpochStats()
	if st.Published == 0 || st.Reads == 0 {
		t.Fatalf("epoch stats not recording: %+v", st)
	}
	if st.IntentsApplied == 0 {
		t.Fatal("no crack intents were applied; the stress never reorganised")
	}
}
