// Package engine is a miniature column-store execution layer, standing
// in for the MonetDB kernel the surveyed techniques were built into
// (see DESIGN.md, substitutions).
//
// It provides tables of fixed-width columns, a catalog, and the query
// operators the tutorial's examples need: range selection, projection
// with tuple reconstruction, and an equi-join. The point of the package
// is the integration it demonstrates — adaptive indexing lives inside
// the select operator, so physical reorganisation happens as a side
// effect of ordinary query execution. Each query chooses an access
// path:
//
//   - PathScan:     scan the selection column, reconstruct by rowid.
//   - PathCracking: crack the selection column (package core), then
//     perform late tuple reconstruction by rowid — fast selection but
//     random-access projection.
//   - PathSideways: sideways cracking (package sideways) — selection
//     and projection both become sequential after a few queries.
//   - PathParallel: partitioned parallel cracking (package partition) —
//     the selection column is sharded by value range and queries fan
//     out across the partitions they overlap.
package engine

import (
	"errors"
	"fmt"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/partition"
	"adaptiveindex/internal/sideways"
)

// Errors returned by the engine and catalog.
var (
	// ErrUnknownTable is returned when a query names a table that is
	// not registered in the catalog.
	ErrUnknownTable = errors.New("engine: unknown table")
	// ErrUnknownColumn is returned when a query names a column that
	// does not exist in its table.
	ErrUnknownColumn = errors.New("engine: unknown column")
	// ErrColumnLength is returned when a column is added whose length
	// does not match the table's existing columns.
	ErrColumnLength = errors.New("engine: column length mismatch")
	// ErrDuplicate is returned when a table or column is registered
	// twice.
	ErrDuplicate = errors.New("engine: duplicate name")
)

// Table is a named collection of equally long columns.
type Table struct {
	name  string
	cols  map[string][]column.Value
	order []string
	nrows int
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, cols: make(map[string][]column.Value)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return t.nrows }

// Columns returns the column names in creation order.
func (t *Table) Columns() []string { return append([]string(nil), t.order...) }

// AddColumn adds a column. All columns of a table must have the same
// length; the first column fixes it.
func (t *Table) AddColumn(name string, vals []column.Value) error {
	if _, exists := t.cols[name]; exists {
		return fmt.Errorf("%w: column %q in table %q", ErrDuplicate, name, t.name)
	}
	if len(t.order) > 0 && len(vals) != t.nrows {
		return fmt.Errorf("%w: column %q has %d values, table %q has %d rows",
			ErrColumnLength, name, len(vals), t.name, t.nrows)
	}
	t.cols[name] = vals
	t.order = append(t.order, name)
	t.nrows = len(vals)
	return nil
}

// Column returns the raw values of a column.
func (t *Table) Column(name string) ([]column.Value, error) {
	vals, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, t.name, name)
	}
	return vals, nil
}

// Catalog is a registry of tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Register adds a table to the catalog.
func (c *Catalog) Register(t *Table) error {
	if _, exists := c.tables[t.name]; exists {
		return fmt.Errorf("%w: table %q", ErrDuplicate, t.name)
	}
	c.tables[t.name] = t
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	return t, nil
}

// Tables returns the registered table names.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	return out
}

// AccessPath selects how a selection (and its projection) is executed.
type AccessPath uint8

// Access paths.
const (
	PathScan AccessPath = iota
	PathCracking
	PathSideways
	PathParallel
)

// String returns the access-path name.
func (p AccessPath) String() string {
	switch p {
	case PathScan:
		return "scan"
	case PathCracking:
		return "cracking"
	case PathSideways:
		return "sideways"
	case PathParallel:
		return "parallel"
	default:
		return fmt.Sprintf("AccessPath(%d)", uint8(p))
	}
}

// Result is the output of a select-project query: the qualifying row
// identifiers and, positionally aligned with them, the projected
// columns.
type Result struct {
	Rows    column.IDList
	Columns map[string][]column.Value
}

// Engine executes queries against a catalog, maintaining adaptive
// index state (cracker columns and sideways map sets) per column as a
// side effect of the queries it runs. It is not safe for concurrent
// use.
type Engine struct {
	cat        *Catalog
	crackers   map[string]*core.CrackerColumn
	mapsets    map[string]*sideways.MapSet
	parallels  map[string]*partition.Index
	opts       core.Options
	partitions int
	c          cost.Counters
}

// New creates an engine over the catalog using the given cracking
// options for every adaptive structure it builds.
func New(cat *Catalog, opts core.Options) *Engine {
	return &Engine{
		cat:       cat,
		crackers:  make(map[string]*core.CrackerColumn),
		mapsets:   make(map[string]*sideways.MapSet),
		parallels: make(map[string]*partition.Index),
		opts:      opts,
	}
}

// SetParallelPartitions overrides the shard count used by PathParallel
// structures built afterwards. Values <= 0 restore the default (one
// partition per available CPU).
func (e *Engine) SetParallelPartitions(p int) { e.partitions = p }

// Cost returns the cumulative logical work of the engine and every
// adaptive structure it maintains.
func (e *Engine) Cost() cost.Counters {
	c := e.c
	for _, cc := range e.crackers {
		c.Add(cc.Cost())
	}
	for _, ms := range e.mapsets {
		c.Add(ms.Cost())
	}
	for _, px := range e.parallels {
		c.Add(px.Cost())
	}
	return c
}

func key(table, col string) string { return table + "." + col }

// crackerFor returns (creating on demand) the cracker column for
// table.col.
func (e *Engine) crackerFor(t *Table, col string) (*core.CrackerColumn, error) {
	k := key(t.name, col)
	if cc, ok := e.crackers[k]; ok {
		return cc, nil
	}
	vals, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	cc := core.NewCrackerColumn(vals, e.opts)
	e.crackers[k] = cc
	return cc, nil
}

// parallelFor returns (creating on demand) the partitioned parallel
// cracker for table.col.
func (e *Engine) parallelFor(t *Table, col string) (*partition.Index, error) {
	k := key(t.name, col)
	if px, ok := e.parallels[k]; ok {
		return px, nil
	}
	vals, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	px := partition.New(vals, partition.Options{Partitions: e.partitions, Core: e.opts})
	e.parallels[k] = px
	return px, nil
}

// mapsetFor returns (creating on demand) the sideways map set with
// table.col as its selection attribute.
func (e *Engine) mapsetFor(t *Table, col string) (*sideways.MapSet, error) {
	k := key(t.name, col)
	if ms, ok := e.mapsets[k]; ok {
		return ms, nil
	}
	head, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	tails := make(map[string][]column.Value, len(t.order)-1)
	for _, other := range t.order {
		if other == col {
			continue
		}
		tails[other], _ = t.Column(other)
	}
	ms, err := sideways.NewMapSet(col, head, tails, sideways.DefaultOptions())
	if err != nil {
		return nil, err
	}
	e.mapsets[k] = ms
	return ms, nil
}

// SelectRows returns the row identifiers of tuples in table whose
// column attr satisfies r, using the requested access path.
func (e *Engine) SelectRows(table, attr string, r column.Range, path AccessPath) (column.IDList, error) {
	t, err := e.cat.Table(table)
	if err != nil {
		return nil, err
	}
	switch path {
	case PathCracking:
		cc, err := e.crackerFor(t, attr)
		if err != nil {
			return nil, err
		}
		return cc.Select(r), nil
	case PathSideways:
		ms, err := e.mapsetFor(t, attr)
		if err != nil {
			return nil, err
		}
		return ms.SelectRows(r)
	case PathParallel:
		px, err := e.parallelFor(t, attr)
		if err != nil {
			return nil, err
		}
		return px.Select(r), nil
	default:
		vals, err := t.Column(attr)
		if err != nil {
			return nil, err
		}
		var out column.IDList
		for i, v := range vals {
			e.c.ValuesTouched++
			e.c.Comparisons++
			if r.Contains(v) {
				out = append(out, column.RowID(i))
				e.c.TuplesCopied++
			}
		}
		return out, nil
	}
}

// SelectProject answers "SELECT projectAttrs FROM table WHERE whereAttr
// IN r" using the requested access path, returning projections aligned
// with the returned row identifiers.
func (e *Engine) SelectProject(table, whereAttr string, r column.Range, projectAttrs []string, path AccessPath) (*Result, error) {
	t, err := e.cat.Table(table)
	if err != nil {
		return nil, err
	}
	// Validate projection attributes up front for every path.
	for _, attr := range projectAttrs {
		if _, err := t.Column(attr); err != nil {
			return nil, err
		}
	}
	if path == PathSideways {
		ms, err := e.mapsetFor(t, whereAttr)
		if err != nil {
			return nil, err
		}
		rows, values, err := ms.SelectProjectMulti(r, projectAttrs)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: rows, Columns: values}, nil
	}
	rows, err := e.SelectRows(table, whereAttr, r, path)
	if err != nil {
		return nil, err
	}
	// Late tuple reconstruction: fetch every projected attribute by row
	// identifier. After cracking — partitioned or not — the rows come
	// back in cracked (i.e. essentially random) order, which is exactly
	// the random-access pattern sideways cracking is designed to avoid;
	// a scan returns rows in storage order, so its reconstruction stays
	// sequential.
	randomOrder := path == PathCracking || path == PathParallel
	res := &Result{Rows: rows, Columns: make(map[string][]column.Value, len(projectAttrs))}
	for _, attr := range projectAttrs {
		vals, _ := t.Column(attr)
		out := make([]column.Value, len(rows))
		for i, row := range rows {
			out[i] = vals[row]
			if randomOrder {
				e.c.RandomTouches++
			} else {
				e.c.ValuesTouched++
			}
			e.c.TuplesCopied++
		}
		res.Columns[attr] = out
	}
	return res, nil
}

// JoinCount returns the number of matching pairs of the equi-join
// t1.a1 = t2.a2, executed as a hash join (build on the smaller input).
// It exists to exercise multi-table plans on top of the substrate; the
// adaptive part of this repository is selection-centric, as in the
// tutorial.
func (e *Engine) JoinCount(table1, attr1, table2, attr2 string) (int, error) {
	t1, err := e.cat.Table(table1)
	if err != nil {
		return 0, err
	}
	t2, err := e.cat.Table(table2)
	if err != nil {
		return 0, err
	}
	v1, err := t1.Column(attr1)
	if err != nil {
		return 0, err
	}
	v2, err := t2.Column(attr2)
	if err != nil {
		return 0, err
	}
	build, probe := v1, v2
	if len(v2) < len(v1) {
		build, probe = v2, v1
	}
	ht := make(map[column.Value]int, len(build))
	for _, v := range build {
		ht[v]++
		e.c.ValuesTouched++
	}
	matches := 0
	for _, v := range probe {
		e.c.ValuesTouched++
		e.c.Comparisons++
		matches += ht[v]
	}
	return matches, nil
}

// Validate checks every adaptive structure the engine has built.
func (e *Engine) Validate() error {
	for k, cc := range e.crackers {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("cracker %s: %w", k, err)
		}
	}
	for k, ms := range e.mapsets {
		if err := ms.Validate(); err != nil {
			return fmt.Errorf("mapset %s: %w", k, err)
		}
	}
	for k, px := range e.parallels {
		if err := px.Validate(); err != nil {
			return fmt.Errorf("parallel %s: %w", k, err)
		}
	}
	return nil
}
