// Package engine is a miniature column-store execution layer, standing
// in for the MonetDB kernel the surveyed techniques were built into
// (see DESIGN.md, substitutions).
//
// It provides tables of fixed-width columns, a catalog, and the query
// operators the tutorial's examples need: range selection, projection
// with tuple reconstruction, and an equi-join. The point of the package
// is the integration it demonstrates — adaptive indexing lives inside
// the select operator, so physical reorganisation happens as a side
// effect of ordinary query execution. Each query chooses an access
// path:
//
//   - PathScan:     scan the selection column, reconstruct by rowid.
//   - PathCracking: crack the selection column (package core), then
//     perform late tuple reconstruction by rowid — fast selection but
//     random-access projection.
//   - PathSideways: sideways cracking (package sideways) — selection
//     and projection both become sequential after a few queries.
//   - PathParallel: partitioned parallel cracking (package partition) —
//     the selection column is sharded by value range and queries fan
//     out across the partitions they overlap.
//   - PathAuto:     the engine picks — a per-(table, column) planner
//     tracks the observed cost of each path (logical work counters
//     plus wall time) and routes queries to the cheapest one,
//     re-exploring when the chosen path's cost drifts up (see
//     planner.go). Run is the entry point that resolves it.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/partition"
	"adaptiveindex/internal/sideways"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/updates"
)

// Errors returned by the engine and catalog.
var (
	// ErrUnknownTable is returned when a query names a table that is
	// not registered in the catalog.
	ErrUnknownTable = errors.New("engine: unknown table")
	// ErrUnknownColumn is returned when a query names a column that
	// does not exist in its table.
	ErrUnknownColumn = errors.New("engine: unknown column")
	// ErrColumnLength is returned when a column is added whose length
	// does not match the table's existing columns.
	ErrColumnLength = errors.New("engine: column length mismatch")
	// ErrDuplicate is returned when a table or column is registered
	// twice.
	ErrDuplicate = errors.New("engine: duplicate name")
	// ErrUnknownPath is returned by ParsePath for an unrecognised
	// access-path name.
	ErrUnknownPath = errors.New("engine: unknown access path")
	// ErrRowArity is returned when an inserted row does not provide
	// exactly one value per table column.
	ErrRowArity = errors.New("engine: row arity mismatch")
)

// ErrRowNotFound is returned when a deleted row does not exist or was
// already deleted. It is the updates-layer error, re-exported so
// callers can match it without importing internal/updates.
var ErrRowNotFound = updates.ErrRowNotFound

// Table is a named collection of equally long columns. Tables are
// append-only at the storage level: inserted rows extend every column
// array (so row identifiers stay positional), and deleted rows are
// tombstoned rather than compacted (so surviving identifiers never
// move). Queries must filter tombstones; projections index the arrays
// by identifier as before.
type Table struct {
	name  string
	cols  map[string][]column.Value
	order []string
	nrows int

	// baseRows is the number of rows the table held when it was
	// registered — the part a deterministic catalog generator can
	// rebuild. Rows at and beyond baseRows were appended through the
	// write path and must be carried by snapshots.
	baseRows    int
	baseFrozen  bool
	deadRows    map[column.RowID]bool
	deadCount   int
	writeEpochs uint64
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, cols: make(map[string][]column.Value)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of row slots, live and tombstoned: the
// length of every column array, and one past the largest row
// identifier.
func (t *Table) NumRows() int { return t.nrows }

// LiveRows returns the number of live (not tombstoned) tuples.
func (t *Table) LiveRows() int { return t.nrows - t.deadCount }

// BaseRows returns the number of rows present before the first append.
func (t *Table) BaseRows() int {
	if !t.baseFrozen {
		return t.nrows
	}
	return t.baseRows
}

// Written reports whether the table has seen any insert or delete.
func (t *Table) Written() bool { return t.writeEpochs > 0 }

// Live reports whether the row identifier names a live tuple.
func (t *Table) Live(row column.RowID) bool {
	return int(row) < t.nrows && !t.deadRows[row]
}

// AppendRow appends one tuple — one value per column, in column
// creation order — and returns its row identifier.
func (t *Table) AppendRow(vals []column.Value) (column.RowID, error) {
	if len(vals) != len(t.order) {
		return 0, fmt.Errorf("%w: row has %d values, table %q has %d columns",
			ErrRowArity, len(vals), t.name, len(t.order))
	}
	if !t.baseFrozen {
		t.baseRows = t.nrows
		t.baseFrozen = true
	}
	row := column.RowID(t.nrows)
	for i, name := range t.order {
		t.cols[name] = append(t.cols[name], vals[i])
	}
	t.nrows++
	t.writeEpochs++
	return row, nil
}

// DeleteRow tombstones the tuple with the given row identifier. It
// returns ErrRowNotFound when the row does not exist or was already
// deleted.
func (t *Table) DeleteRow(row column.RowID) error {
	if !t.Live(row) {
		return fmt.Errorf("%w: %q row %d", ErrRowNotFound, t.name, row)
	}
	if !t.baseFrozen {
		t.baseRows = t.nrows
		t.baseFrozen = true
	}
	if t.deadRows == nil {
		t.deadRows = make(map[column.RowID]bool)
	}
	t.deadRows[row] = true
	t.deadCount++
	t.writeEpochs++
	return nil
}

// DeletedRows returns the tombstoned row identifiers in ascending
// order.
func (t *Table) DeletedRows() []column.RowID {
	out := make([]column.RowID, 0, len(t.deadRows))
	for row := range t.deadRows {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// livePairs returns the (value, rowid) pairs of the column's live
// tuples, in row order — the layout adaptive structures are (re)built
// from on a written table.
func (t *Table) livePairs(col string) (column.Pairs, error) {
	vals, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	pairs := make(column.Pairs, 0, t.LiveRows())
	for i, v := range vals {
		if t.deadCount > 0 && t.deadRows[column.RowID(i)] {
			continue
		}
		pairs = append(pairs, column.Pair{Val: v, Row: column.RowID(i)})
	}
	return pairs, nil
}

// Columns returns the column names in creation order.
func (t *Table) Columns() []string { return append([]string(nil), t.order...) }

// AddColumn adds a column. All columns of a table must have the same
// length; the first column fixes it.
func (t *Table) AddColumn(name string, vals []column.Value) error {
	if _, exists := t.cols[name]; exists {
		return fmt.Errorf("%w: column %q in table %q", ErrDuplicate, name, t.name)
	}
	if len(t.order) > 0 && len(vals) != t.nrows {
		return fmt.Errorf("%w: column %q has %d values, table %q has %d rows",
			ErrColumnLength, name, len(vals), t.name, t.nrows)
	}
	t.cols[name] = vals
	t.order = append(t.order, name)
	t.nrows = len(vals)
	return nil
}

// Column returns the raw values of a column.
func (t *Table) Column(name string) ([]column.Value, error) {
	vals, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, t.name, name)
	}
	return vals, nil
}

// Catalog is a registry of tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Register adds a table to the catalog.
func (c *Catalog) Register(t *Table) error {
	if _, exists := c.tables[t.name]; exists {
		return fmt.Errorf("%w: table %q", ErrDuplicate, t.name)
	}
	c.tables[t.name] = t
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	return t, nil
}

// Tables returns the registered table names.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	return out
}

// AccessPath selects how a selection (and its projection) is executed.
type AccessPath uint8

// Access paths. The first four are the static paths; PathAuto delegates
// the choice to the engine's planner and is only valid through Run.
const (
	PathScan AccessPath = iota
	PathCracking
	PathSideways
	PathParallel
	PathAuto
)

// numStaticPaths is the number of concrete access paths the planner
// tracks; PathAuto is a routing directive, not an executable path.
const numStaticPaths = 4

// String returns the access-path name.
func (p AccessPath) String() string {
	switch p {
	case PathScan:
		return "scan"
	case PathCracking:
		return "cracking"
	case PathSideways:
		return "sideways"
	case PathParallel:
		return "parallel"
	case PathAuto:
		return "auto"
	default:
		return fmt.Sprintf("AccessPath(%d)", uint8(p))
	}
}

// PathNames lists the access-path names ParsePath accepts, in path
// order, for flag help texts and error messages.
func PathNames() []string {
	return []string{"scan", "cracking", "sideways", "parallel", "auto"}
}

// ParsePath converts an access-path name (as produced by String) back
// to the path. The empty string parses as PathAuto, so wire formats can
// omit the field.
func ParsePath(s string) (AccessPath, error) {
	switch strings.ToLower(s) {
	case "scan":
		return PathScan, nil
	case "cracking":
		return PathCracking, nil
	case "sideways":
		return PathSideways, nil
	case "parallel":
		return PathParallel, nil
	case "", "auto":
		return PathAuto, nil
	default:
		return PathAuto, fmt.Errorf("%w %q (have %s)", ErrUnknownPath, s, strings.Join(PathNames(), ", "))
	}
}

// Result is the output of one query. Count is always set; Rows and
// Columns are nil for count-only queries (nothing is materialised for
// them). Path records which access path actually executed the query
// (for PathAuto, the planner's choice).
type Result struct {
	Count   int
	Rows    column.IDList
	Columns map[string][]column.Value
	Path    AccessPath
}

// TableColumn identifies one selection column of the catalog; it keys
// every per-column adaptive structure and planner state.
type TableColumn struct {
	Table  string
	Column string
}

// String renders the key as "table.column".
func (tc TableColumn) String() string { return tc.Table + "." + tc.Column }

// Engine executes queries against a catalog, maintaining adaptive
// index state (cracker columns and sideways map sets) per column as a
// side effect of the queries it runs. It also accepts writes: inserts
// and deletes flow through InsertRow/DeleteRow, are applied to the
// base table immediately (so every path reads its own writes), and
// reach the cracked selection columns through the merge policies of
// internal/updates — buffered and ripple-merged when a query actually
// touches the affected range. It is not safe for concurrent use.
type Engine struct {
	cat        *Catalog
	crackers   map[TableColumn]*updates.Column
	mapsets    map[TableColumn]*sideways.MapSet
	parallels  map[TableColumn]*partition.Index
	opts       core.Options
	partitions int
	workers    int
	planner    *planner

	// defaultPolicy and tablePolicies decide when buffered writes are
	// merged into each table's cracked columns (see SetMergePolicy).
	defaultPolicy updates.MergePolicy
	tablePolicies map[string]updates.MergePolicy

	// staleSideways and staleParallel mark structures dropped by a
	// write: their next rebuild is charged as merge work, because under
	// a sustained write stream the rebuild is re-paid, not amortised.
	staleSideways map[TableColumn]bool
	staleParallel map[TableColumn]bool

	writes WriteCounters
	c      cost.Counters

	// rec is the span recorder of the query currently executing (nil
	// when the query is untraced); events, when set, receives the
	// structured reorganisation events. Neither ever mutates the cost
	// counters.
	rec    *trace.Recorder
	events *trace.Log

	// Epoch machinery (see epoch.go). epoch is the atomically
	// published immutable view readers pin; epochSeq is owned by the
	// publishing goroutine; the remaining tallies are written by
	// concurrent readers and so stay atomic.
	epoch          atomic.Pointer[Epoch]
	epochSeq       uint64
	epochPublished atomic.Uint64
	epochRetired   atomic.Uint64
	intentsApplied atomic.Uint64
	epochReads     atomic.Uint64
	epochReadWork  atomic.Uint64
}

// New creates an engine over the catalog using the given cracking
// options for every adaptive structure it builds. Writes default to
// MergeGradually; see SetMergePolicy.
func New(cat *Catalog, opts core.Options) *Engine {
	return &Engine{
		cat:           cat,
		crackers:      make(map[TableColumn]*updates.Column),
		mapsets:       make(map[TableColumn]*sideways.MapSet),
		parallels:     make(map[TableColumn]*partition.Index),
		opts:          opts,
		planner:       newPlanner(DefaultPlannerOptions()),
		defaultPolicy: updates.MergeGradually,
		tablePolicies: make(map[string]updates.MergePolicy),
		staleSideways: make(map[TableColumn]bool),
		staleParallel: make(map[TableColumn]bool),
	}
}

// Catalog returns the catalog the engine executes against.
func (e *Engine) Catalog() *Catalog { return e.cat }

// SetParallelPartitions overrides the shard count used by PathParallel
// structures built afterwards. Values <= 0 restore the default (one
// partition per available CPU).
func (e *Engine) SetParallelPartitions(p int) { e.partitions = p }

// SetParallelWorkers overrides the per-query worker bound used by
// PathParallel structures built afterwards. Values <= 0 restore the
// default (one worker per available CPU).
func (e *Engine) SetParallelWorkers(w int) { e.workers = w }

// SetPlannerOptions replaces the PathAuto planner configuration. It
// resets any routing state accumulated so far, so it should be called
// before the engine serves queries.
func (e *Engine) SetPlannerOptions(opts PlannerOptions) {
	e.planner = newPlanner(opts)
	e.planner.events = e.events
}

// SetEventLog attaches the reorganisation event log. Structure builds,
// crack splits, merge flushes and planner decisions are appended to it
// as they happen; a nil log (the default) disables event emission
// entirely.
func (e *Engine) SetEventLog(l *trace.Log) {
	e.events = l
	e.planner.events = l
}

// emit appends a reorganisation event when a log is attached.
func (e *Engine) emit(ev trace.Event) {
	if e.events != nil {
		e.events.Append(ev)
	}
}

// beginSpan opens a phase span when the current query is traced,
// returning the cost snapshot endSpan needs. The two-value contract
// keeps every call site a one-liner with no recorder nil-checks.
func (e *Engine) beginSpan(p trace.Phase) (cost.Counters, bool) {
	if e.rec == nil {
		return cost.Counters{}, false
	}
	before := e.Cost()
	e.rec.Begin(p)
	return before, true
}

// endSpan closes the span beginSpan opened, attaching the engine-wide
// cost delta the phase caused.
func (e *Engine) endSpan(before cost.Counters, ok bool) {
	if !ok {
		return
	}
	e.rec.End(trace.WorkOf(e.Cost().Sub(before)))
}

// Cost returns the cumulative logical work of the engine and every
// adaptive structure it maintains.
func (e *Engine) Cost() cost.Counters {
	c := e.c
	for _, cc := range e.crackers {
		c.Add(cc.Cost())
	}
	for _, ms := range e.mapsets {
		c.Add(ms.Cost())
	}
	for _, px := range e.parallels {
		c.Add(px.Cost())
	}
	return c
}

func key(table, col string) TableColumn { return TableColumn{Table: table, Column: col} }

// crackerFor returns (creating on demand) the updatable cracker column
// for table.col. A column created on a written table starts from the
// live tuples; later writes reach existing columns through
// InsertRow/DeleteRow.
func (e *Engine) crackerFor(t *Table, col string) (*updates.Column, error) {
	k := key(t.name, col)
	if uc, ok := e.crackers[k]; ok {
		return uc, nil
	}
	pairs, err := t.livePairs(col)
	if err != nil {
		return nil, err
	}
	uc := updates.NewFromPairs(pairs, e.opts, e.MergePolicyFor(t.name), column.RowID(t.NumRows()))
	e.crackers[k] = uc
	e.emit(trace.Event{Kind: "build", Table: t.name, Column: col, Path: PathCracking.String(),
		Fields: map[string]float64{"rows": float64(len(pairs))}})
	return uc, nil
}

// parallelFor returns (creating on demand) the partitioned parallel
// cracker for table.col. A rebuild after write invalidation is charged
// as merge work: the write stream, not the reader, caused it.
func (e *Engine) parallelFor(t *Table, col string) (*partition.Index, error) {
	k := key(t.name, col)
	if px, ok := e.parallels[k]; ok {
		return px, nil
	}
	pairs, err := t.livePairs(col)
	if err != nil {
		return nil, err
	}
	px := partition.NewFromPairs(pairs, partition.Options{Partitions: e.partitions, Workers: e.workers, Core: e.opts})
	kind := "build"
	if e.staleParallel[k] {
		delete(e.staleParallel, k)
		built := px.Cost()
		e.c.MergeWork += built.Total() - built.Recurring()
		kind = "rebuild"
	}
	e.parallels[k] = px
	e.emit(trace.Event{Kind: kind, Table: t.name, Column: col, Path: PathParallel.String(),
		Fields: map[string]float64{"rows": float64(len(pairs)), "partitions": float64(len(px.PartitionStats()))}})
	return px, nil
}

// mapsetFor returns (creating on demand) the sideways map set with
// table.col as its selection attribute. On a written table the set is
// built over the live tuples with explicit row identifiers; a rebuild
// after write invalidation is charged as merge work.
func (e *Engine) mapsetFor(t *Table, col string) (*sideways.MapSet, error) {
	k := key(t.name, col)
	if ms, ok := e.mapsets[k]; ok {
		return ms, nil
	}
	head, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	var ms *sideways.MapSet
	if t.Written() {
		headPairs, err := t.livePairs(col)
		if err != nil {
			return nil, err
		}
		liveHead := make([]column.Value, len(headPairs))
		rows := make([]column.RowID, len(headPairs))
		for i, p := range headPairs {
			liveHead[i], rows[i] = p.Val, p.Row
		}
		tails := make(map[string][]column.Value, len(t.order)-1)
		for _, other := range t.order {
			if other == col {
				continue
			}
			all, _ := t.Column(other)
			tail := make([]column.Value, len(rows))
			for i, row := range rows {
				tail[i] = all[row]
			}
			tails[other] = tail
		}
		ms, err = sideways.NewMapSetRows(col, liveHead, tails, rows, sideways.DefaultOptions())
		if err != nil {
			return nil, err
		}
	} else {
		tails := make(map[string][]column.Value, len(t.order)-1)
		for _, other := range t.order {
			if other == col {
				continue
			}
			tails[other], _ = t.Column(other)
		}
		ms, err = sideways.NewMapSet(col, head, tails, sideways.DefaultOptions())
		if err != nil {
			return nil, err
		}
	}
	kind := "build"
	if e.staleSideways[k] {
		delete(e.staleSideways, k)
		// Building the set itself is lazy (maps materialise per
		// projection attribute), so the rebuild charge here is the
		// live-tuple gather; the per-map rebuild cost lands in the
		// set's own counters as its maps re-materialise and is pulled
		// into merge work by the queries that pay it.
		e.c.MergeWork += uint64(t.LiveRows())
		kind = "rebuild"
	}
	e.mapsets[k] = ms
	e.emit(trace.Event{Kind: kind, Table: t.name, Column: col, Path: PathSideways.String(),
		Fields: map[string]float64{"rows": float64(t.LiveRows())}})
	return ms, nil
}

// SelectRows returns the row identifiers of tuples in table whose
// column attr satisfies r, using the requested access path.
func (e *Engine) SelectRows(table, attr string, r column.Range, path AccessPath) (column.IDList, error) {
	t, err := e.cat.Table(table)
	if err != nil {
		return nil, err
	}
	switch path {
	case PathCracking:
		uc, err := e.crackerFor(t, attr)
		if err != nil {
			return nil, err
		}
		if e.rec != nil {
			uc.SetTracer(e.rec)
			defer uc.SetTracer(nil)
		}
		return uc.Select(r), nil
	case PathSideways:
		ms, err := e.mapsetFor(t, attr)
		if err != nil {
			return nil, err
		}
		return ms.SelectRows(r)
	case PathParallel:
		px, err := e.parallelFor(t, attr)
		if err != nil {
			return nil, err
		}
		return px.Select(r), nil
	case PathScan:
		vals, err := t.Column(attr)
		if err != nil {
			return nil, err
		}
		if t.deadCount == 0 {
			// Tombstone-free tables take the branchless kernel; it
			// charges exactly the work the loop below would.
			return core.ScanSelect(vals, r, &e.c), nil
		}
		var out column.IDList
		for i, v := range vals {
			e.c.ValuesTouched++
			if t.deadRows[column.RowID(i)] {
				continue
			}
			e.c.Comparisons++
			if r.Contains(v) {
				out = append(out, column.RowID(i))
				e.c.TuplesCopied++
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("engine: access path %s cannot execute directly (use Run for PathAuto)", path)
	}
}

// CountRows returns the number of tuples in table whose column attr
// satisfies r, using the requested access path. Nothing is
// materialised: every path answers from positions (or, for a scan, a
// counting pass), so counting charges no recurring copy work.
func (e *Engine) CountRows(table, attr string, r column.Range, path AccessPath) (int, error) {
	t, err := e.cat.Table(table)
	if err != nil {
		return 0, err
	}
	switch path {
	case PathCracking:
		uc, err := e.crackerFor(t, attr)
		if err != nil {
			return 0, err
		}
		if e.rec != nil {
			uc.SetTracer(e.rec)
			defer uc.SetTracer(nil)
		}
		return uc.Count(r), nil
	case PathSideways:
		ms, err := e.mapsetFor(t, attr)
		if err != nil {
			return 0, err
		}
		return ms.CountRows(r)
	case PathParallel:
		px, err := e.parallelFor(t, attr)
		if err != nil {
			return 0, err
		}
		return px.Count(r), nil
	case PathScan:
		vals, err := t.Column(attr)
		if err != nil {
			return 0, err
		}
		if t.deadCount == 0 {
			return core.ScanCount(vals, r, &e.c), nil
		}
		n := 0
		for i, v := range vals {
			e.c.ValuesTouched++
			if t.deadRows[column.RowID(i)] {
				continue
			}
			e.c.Comparisons++
			if r.Contains(v) {
				n++
			}
		}
		return n, nil
	default:
		return 0, fmt.Errorf("engine: access path %s cannot execute directly (use Run for PathAuto)", path)
	}
}

// SelectProject answers "SELECT projectAttrs FROM table WHERE whereAttr
// IN r" using the requested access path, returning projections aligned
// with the returned row identifiers.
func (e *Engine) SelectProject(table, whereAttr string, r column.Range, projectAttrs []string, path AccessPath) (*Result, error) {
	t, err := e.cat.Table(table)
	if err != nil {
		return nil, err
	}
	// Validate projection attributes up front for every path.
	for _, attr := range projectAttrs {
		if _, err := t.Column(attr); err != nil {
			return nil, err
		}
	}
	if path == PathSideways {
		ms, err := e.mapsetFor(t, whereAttr)
		if err != nil {
			return nil, err
		}
		// Sideways cracking fuses selection and projection into one
		// operator, so the whole execution is one crack span: there is
		// no separable materialise phase to time.
		sb, sok := e.beginSpan(trace.PhaseCrack)
		rows, values, err := ms.SelectProjectMulti(r, projectAttrs)
		e.endSpan(sb, sok)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: rows, Columns: values}, nil
	}
	sb, sok := e.beginSpan(trace.PhaseCrack)
	rows, err := e.SelectRows(table, whereAttr, r, path)
	e.endSpan(sb, sok)
	if err != nil {
		return nil, err
	}
	// Late tuple reconstruction: fetch every projected attribute by row
	// identifier. After cracking — partitioned or not — the rows come
	// back in cracked (i.e. essentially random) order, which is exactly
	// the random-access pattern sideways cracking is designed to avoid;
	// a scan returns rows in storage order, so its reconstruction stays
	// sequential.
	randomOrder := path == PathCracking || path == PathParallel
	res := &Result{Rows: rows, Columns: make(map[string][]column.Value, len(projectAttrs))}
	mb, mok := e.beginSpan(trace.PhaseMaterialise)
	defer e.endSpan(mb, mok)
	for _, attr := range projectAttrs {
		vals, _ := t.Column(attr)
		out := make([]column.Value, len(rows))
		core.GatherValues(out, vals, rows)
		if randomOrder {
			e.c.RandomTouches += uint64(len(rows))
		} else {
			e.c.ValuesTouched += uint64(len(rows))
		}
		e.c.TuplesCopied += uint64(len(rows))
		res.Columns[attr] = out
	}
	return res, nil
}

// Query is one request against the catalog: "SELECT Project FROM
// Table WHERE Column IN R", executed by Path. An empty Project list
// returns row identifiers only; CountOnly asks for the qualifying
// count without materialising anything (and excludes Project). PathAuto
// (the zero-valued Path is PathScan, so callers must say PathAuto
// explicitly) lets the per-column planner choose.
type Query struct {
	Table     string
	Column    string
	R         column.Range
	Project   []string
	CountOnly bool
	Path      AccessPath
	// Trace, when non-nil, receives the query's phase spans (crack,
	// nested merge_flush, materialise). It observes execution without
	// altering it: no cost counter moves because of tracing.
	Trace *trace.Recorder
}

// candidatesFor returns the adaptive access paths the planner races
// for a column of t. Only paths with distinct logical-work profiles
// are raced: sideways cracking needs at least one projection attribute
// to drag along, so single-column tables exclude it, and the parallel
// path is never raced — it runs the same cracking algorithm sharded,
// so its logical work is the cracker's (the experiments confirm
// identical totals) and racing it would double the explore catch-up
// cost to learn a duplicate number. Parallel stays reachable
// explicitly, where its value — wall-clock concurrency, which logical
// counters cannot see — belongs to the caller's deployment, not the
// cost model.
func (e *Engine) candidatesFor(t *Table) []AccessPath {
	if len(t.order) > 1 {
		return []AccessPath{PathCracking, PathSideways}
	}
	return []AccessPath{PathCracking}
}

// scanWork is the analytic cost model for PathScan on a table of n
// rows: every value is touched and compared once. The planner uses it
// to score the scan path without spending real queries on full scans.
func scanWork(n int) float64 { return float64(2 * n) }

// Run executes one query, resolving PathAuto through the planner and
// feeding the planner the observed cost (logical work delta plus wall
// time) of whatever path ran — explicit paths included, so experiment
// traffic sharpens the planner's estimates for free.
func (e *Engine) Run(q Query) (*Result, error) {
	t, err := e.cat.Table(q.Table)
	if err != nil {
		return nil, err
	}
	if _, err := t.Column(q.Column); err != nil {
		return nil, err
	}
	if q.CountOnly && len(q.Project) > 0 {
		return nil, fmt.Errorf("engine: a count-only query cannot project (%v)", q.Project)
	}
	tc := key(q.Table, q.Column)
	candidates := e.candidatesFor(t)
	scanCost := scanWork(t.NumRows())

	path := q.Path
	routed := false
	if path == PathAuto {
		path = e.planner.route(tc, candidates, scanCost)
		routed = true
	}

	e.rec = q.Trace
	defer func() { e.rec = nil }()
	var piecesBefore int
	var insBefore, delBefore uint64
	if e.events != nil {
		piecesBefore = e.piecesFor(tc, path)
		insBefore, delBefore, _ = e.mergedFor(tc)
	}

	before := e.Cost()
	start := time.Now()
	var res *Result
	switch {
	case q.CountOnly:
		sb, sok := e.beginSpan(trace.PhaseCrack)
		var n int
		n, err = e.CountRows(q.Table, q.Column, q.R, path)
		e.endSpan(sb, sok)
		res = &Result{Count: n}
	case len(q.Project) > 0:
		// SelectProject opens its own crack and materialise spans; the
		// sideways path's fused operator is a single crack span.
		res, err = e.SelectProject(q.Table, q.Column, q.R, q.Project, path)
		if err == nil {
			res.Count = len(res.Rows)
		}
	default:
		sb, sok := e.beginSpan(trace.PhaseCrack)
		var rows column.IDList
		rows, err = e.SelectRows(q.Table, q.Column, q.R, path)
		e.endSpan(sb, sok)
		res = &Result{Count: len(rows), Rows: rows}
	}
	if err != nil {
		return nil, err
	}
	delta := e.Cost().Sub(before)
	e.planner.observe(tc, candidates, scanCost, path, routed, delta, time.Since(start))
	res.Path = path
	if e.events != nil {
		e.emitReorgEvents(tc, path, piecesBefore, insBefore, delBefore)
	}
	return res, nil
}

// piecesFor returns the cracked-piece count of the adaptive structure
// the path would use on tc, or 0 when it has not been built.
func (e *Engine) piecesFor(tc TableColumn, path AccessPath) int {
	switch path {
	case PathCracking:
		if uc, ok := e.crackers[tc]; ok {
			return uc.Cracker().NumPieces()
		}
	case PathSideways:
		if ms, ok := e.mapsets[tc]; ok {
			return ms.NumPieces()
		}
	case PathParallel:
		if px, ok := e.parallels[tc]; ok {
			n := 0
			for _, p := range px.PartitionStats() {
				n += p.Pieces
			}
			return n
		}
	}
	return 0
}

// mergedFor returns the cracker column's merged-update counters and
// pending backlog for tc (zeroes when no cracker exists yet).
func (e *Engine) mergedFor(tc TableColumn) (ins, del uint64, pending int) {
	if uc, ok := e.crackers[tc]; ok {
		return uc.MergedInserts(), uc.MergedDeletions(), uc.PendingInsertions() + uc.PendingDeletions()
	}
	return 0, 0, 0
}

// emitReorgEvents compares the structure's piece count and the cracker
// column's merged-update counters across one query and emits the
// corresponding crack, pieces_threshold and merge_flush events. It runs
// only when an event log is attached.
func (e *Engine) emitReorgEvents(tc TableColumn, path AccessPath, piecesBefore int, insBefore, delBefore uint64) {
	piecesAfter := e.piecesFor(tc, path)
	if piecesAfter > piecesBefore {
		e.emit(trace.Event{Kind: "crack", Table: tc.Table, Column: tc.Column, Path: path.String(),
			Fields: map[string]float64{
				"pieces_before": float64(piecesBefore),
				"pieces_after":  float64(piecesAfter),
			}})
		// Power-of-two milestones from 16 up: the piece count crossing
		// one is the structure visibly converging.
		for th := 16; th <= piecesAfter; th *= 2 {
			if piecesBefore < th {
				e.emit(trace.Event{Kind: "pieces_threshold", Table: tc.Table, Column: tc.Column, Path: path.String(),
					Fields: map[string]float64{"threshold": float64(th), "pieces": float64(piecesAfter)}})
			}
		}
	}
	if path == PathCracking {
		ins, del, pending := e.mergedFor(tc)
		if ins > insBefore || del > delBefore {
			e.emit(trace.Event{Kind: "merge_flush", Table: tc.Table, Column: tc.Column, Path: path.String(),
				Fields: map[string]float64{
					"merged_inserts":    float64(ins - insBefore),
					"merged_deletions":  float64(del - delBefore),
					"pending_remaining": float64(pending),
				}})
		}
	}
}

// StructureStats summarises the adaptive structures the engine has
// built so far.
type StructureStats struct {
	// Crackers, MapSets and Parallels count the per-column structures
	// of each kind.
	Crackers  int `json:"crackers"`
	MapSets   int `json:"map_sets"`
	Parallels int `json:"parallels"`
	// CrackerPieces, MapPieces and ParallelPieces break the cracked
	// pieces down by structure kind; Pieces is their total. Snapshots
	// persist cracker and map pieces but not parallel ones (those are
	// rebuilt in one partitioning pass).
	CrackerPieces  int `json:"cracker_pieces"`
	MapPieces      int `json:"map_pieces"`
	ParallelPieces int `json:"parallel_pieces"`
	Pieces         int `json:"pieces"`
}

// Structures reports the engine's adaptive-structure inventory.
func (e *Engine) Structures() StructureStats {
	s := StructureStats{
		Crackers:  len(e.crackers),
		MapSets:   len(e.mapsets),
		Parallels: len(e.parallels),
	}
	for _, uc := range e.crackers {
		s.CrackerPieces += uc.Cracker().NumPieces()
	}
	for _, ms := range e.mapsets {
		s.MapPieces += ms.NumPieces()
	}
	for _, px := range e.parallels {
		for _, p := range px.PartitionStats() {
			s.ParallelPieces += p.Pieces
		}
	}
	s.Pieces = s.CrackerPieces + s.MapPieces + s.ParallelPieces
	return s
}

// JoinCount returns the number of matching pairs of the equi-join
// t1.a1 = t2.a2, executed as a hash join (build on the smaller input).
// It exists to exercise multi-table plans on top of the substrate; the
// adaptive part of this repository is selection-centric, as in the
// tutorial.
func (e *Engine) JoinCount(table1, attr1, table2, attr2 string) (int, error) {
	t1, err := e.cat.Table(table1)
	if err != nil {
		return 0, err
	}
	t2, err := e.cat.Table(table2)
	if err != nil {
		return 0, err
	}
	v1, err := t1.Column(attr1)
	if err != nil {
		return 0, err
	}
	v2, err := t2.Column(attr2)
	if err != nil {
		return 0, err
	}
	// Build on the side with fewer LIVE tuples: raw lengths count
	// tombstoned slots, which neither side hashes or probes.
	build, probe := v1, v2
	buildT, probeT := t1, t2
	if t2.LiveRows() < t1.LiveRows() {
		build, probe = v2, v1
		buildT, probeT = t2, t1
	}
	// Both sides filter tombstones: the arrays keep deleted values (row
	// identifiers must stay stable), so a join over the raw columns
	// would count dead tuples.
	ht := make(map[column.Value]int, len(build))
	for i, v := range build {
		e.c.ValuesTouched++
		if buildT.deadCount > 0 && buildT.deadRows[column.RowID(i)] {
			continue
		}
		ht[v]++
	}
	matches := 0
	for i, v := range probe {
		e.c.ValuesTouched++
		if probeT.deadCount > 0 && probeT.deadRows[column.RowID(i)] {
			continue
		}
		e.c.Comparisons++
		matches += ht[v]
	}
	return matches, nil
}

// Validate checks every adaptive structure the engine has built.
func (e *Engine) Validate() error {
	for k, uc := range e.crackers {
		if err := uc.Validate(); err != nil {
			return fmt.Errorf("cracker %s: %w", k, err)
		}
	}
	for k, ms := range e.mapsets {
		if err := ms.Validate(); err != nil {
			return fmt.Errorf("mapset %s: %w", k, err)
		}
	}
	for k, px := range e.parallels {
		if err := px.Validate(); err != nil {
			return fmt.Errorf("parallel %s: %w", k, err)
		}
	}
	return nil
}
