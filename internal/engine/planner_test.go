package engine

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/workload"
)

// randomCatalog builds a catalog with a random number of tables and
// columns, deterministic for a seed.
func randomCatalog(t *testing.T, rng *rand.Rand) *Catalog {
	t.Helper()
	cat := NewCatalog()
	tables := 1 + rng.Intn(2)
	for ti := 0; ti < tables; ti++ {
		name := []string{"orders", "events"}[ti]
		tab := NewTable(name)
		n := 2000 + rng.Intn(4000)
		cols := 1 + rng.Intn(3)
		for ci := 0; ci < cols; ci++ {
			vals := workload.DataUniform(rng.Int63(), n, 10000)
			if err := tab.AddColumn([]string{"c0", "c1", "c2"}[ci], vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := cat.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestRunDifferentialAllPaths is the differential guard against
// planner-introduced wrong answers: for random catalogs and random
// workloads, every access path — and PathAuto, whatever it routes to —
// must return exactly the same row set and the same projected value
// for every row.
func TestRunDifferentialAllPaths(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cat := randomCatalog(t, rng)
		// One engine per path so adaptive state never mixes; auto gets
		// its own too.
		engines := map[AccessPath]*Engine{}
		for _, p := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel, PathAuto} {
			engines[p] = New(cat, core.DefaultOptions())
		}
		names := cat.Tables()
		sort.Strings(names)
		for q := 0; q < 80; q++ {
			table := names[rng.Intn(len(names))]
			tab, err := cat.Table(table)
			if err != nil {
				t.Fatal(err)
			}
			cols := tab.Columns()
			colName := cols[rng.Intn(len(cols))]
			var project []string
			for _, c := range cols {
				if c != colName && rng.Intn(2) == 0 {
					project = append(project, c)
				}
			}
			lo := column.Value(rng.Intn(10000))
			r := column.NewRange(lo, lo+column.Value(1+rng.Intn(800)))

			type keyed struct {
				rows map[column.RowID]bool
				vals map[string]map[column.RowID]column.Value
			}
			results := map[AccessPath]keyed{}
			for _, p := range []AccessPath{PathScan, PathCracking, PathParallel, PathAuto, PathSideways} {
				path := p
				if path == PathSideways && len(cols) == 1 {
					continue // sideways needs a projection attribute to exist
				}
				res, err := engines[p].Run(Query{Table: table, Column: colName, R: r, Project: project, Path: path})
				if err != nil {
					t.Fatalf("seed %d query %d path %s: %v", seed, q, p, err)
				}
				k := keyed{rows: map[column.RowID]bool{}, vals: map[string]map[column.RowID]column.Value{}}
				for _, attr := range project {
					k.vals[attr] = map[column.RowID]column.Value{}
				}
				for i, row := range res.Rows {
					if k.rows[row] {
						t.Fatalf("seed %d query %d path %s: duplicate row %d", seed, q, p, row)
					}
					k.rows[row] = true
					for _, attr := range project {
						k.vals[attr][row] = res.Columns[attr][i]
					}
				}
				results[p] = k
			}
			ref := results[PathScan]
			for p, got := range results {
				if len(got.rows) != len(ref.rows) {
					t.Fatalf("seed %d query %d: %s returned %d rows, scan %d", seed, q, p, len(got.rows), len(ref.rows))
				}
				for row := range ref.rows {
					if !got.rows[row] {
						t.Fatalf("seed %d query %d: %s missing row %d", seed, q, p, row)
					}
				}
				for attr, want := range ref.vals {
					for row, v := range want {
						if got.vals[attr][row] != v {
							t.Fatalf("seed %d query %d: %s projects %s[%d]=%d, scan %d",
								seed, q, p, attr, row, got.vals[attr][row], v)
						}
					}
				}
			}
		}
		for p, eng := range engines {
			if err := eng.Validate(); err != nil {
				t.Fatalf("seed %d, %s engine: %v", seed, p, err)
			}
		}
	}
}

// TestPlannerExploresThenExploitsSideways: on a hot-set select-project
// workload, the planner must finish exploring and settle on sideways
// cracking — the path whose recurring (materialisation) cost is lowest
// when projections repeat.
func TestPlannerExploresThenExploitsSideways(t *testing.T) {
	const n = 30_000
	cat, _ := buildCatalog(t, n, 3)
	eng := New(cat, core.DefaultOptions())
	gen := workload.NewHotSet(5, 0, 10000, 0.02, 16, 1.3)
	for q := 0; q < 100; q++ {
		if _, err := eng.Run(Query{Table: "orders", Column: "amount", R: gen.Next(), Project: []string{"status", "customer"}, Path: PathAuto}); err != nil {
			t.Fatal(err)
		}
	}
	plans := eng.PlanStats()
	if len(plans) != 1 {
		t.Fatalf("got %d planner states", len(plans))
	}
	plan := plans[0]
	if plan.Phase != "exploit" {
		t.Fatalf("planner still %q after 100 queries", plan.Phase)
	}
	if plan.Chosen != "sideways" {
		t.Fatalf("planner chose %q for a repeated select-project workload, want sideways", plan.Chosen)
	}
}

// TestPlannerChoosesCrackingWithoutProjections: with no projections in
// play, cracking's recurring cost (one copy per qualifying row) is the
// lowest and the planner must find it.
func TestPlannerChoosesCrackingWithoutProjections(t *testing.T) {
	const n = 30_000
	cat, _ := buildCatalog(t, n, 4)
	eng := New(cat, core.DefaultOptions())
	gen := workload.NewHotSet(6, 0, 10000, 0.02, 16, 1.3)
	for q := 0; q < 100; q++ {
		if _, err := eng.Run(Query{Table: "orders", Column: "amount", R: gen.Next(), Path: PathAuto}); err != nil {
			t.Fatal(err)
		}
	}
	plan := eng.PlanStats()[0]
	if plan.Phase != "exploit" || plan.Chosen != "cracking" {
		t.Fatalf("planner %s/%s for a selection-only workload, want exploit/cracking", plan.Phase, plan.Chosen)
	}
}

// TestPlannerDriftReExplores feeds the planner synthetic observations:
// a settled choice whose recurring cost then rises sustainedly must
// re-open exploration; transient spikes must not.
func TestPlannerDriftReExplores(t *testing.T) {
	opts := DefaultPlannerOptions()
	p := newPlanner(opts)
	tc := TableColumn{Table: "t", Column: "c"}
	candidates := []AccessPath{PathCracking, PathSideways}
	const scanCost = 200_000

	obs := func(path AccessPath, copied uint64) {
		p.observe(tc, candidates, scanCost, path, true, cost.Counters{TuplesCopied: copied, ValuesTouched: copied}, time.Microsecond)
	}
	// Explore round: route until the planner decides.
	for i := 0; i < opts.ExplorePasses*len(candidates); i++ {
		path := p.route(tc, candidates, scanCost)
		if path == PathCracking {
			obs(path, 1000)
		} else {
			obs(path, 3000)
		}
	}
	if got := p.route(tc, candidates, scanCost); got != PathCracking {
		t.Fatalf("planner chose %s, want cracking (cheapest recurring)", got)
	}
	st := p.states[tc]
	if st.phase != phaseExploit {
		t.Fatalf("phase %s, want exploit", st.phase)
	}

	// A transient spike shorter than the drift window must not trigger.
	for i := 0; i < opts.DriftWindow-1; i++ {
		obs(PathCracking, 1000*uint64(opts.DriftFactor)*4)
	}
	obs(PathCracking, 1000) // back to normal: run resets
	if st.phase != phaseExploit || st.reExplores != 0 {
		t.Fatalf("transient spike re-explored: phase=%s reExplores=%d", st.phase, st.reExplores)
	}

	// A sustained rise must re-open exploration.
	for i := 0; i < opts.DriftWindow; i++ {
		if got := p.route(tc, candidates, scanCost); got != PathCracking {
			t.Fatalf("planner switched to %s before drift was detected", got)
		}
		obs(PathCracking, 1000*uint64(opts.DriftFactor)*4)
	}
	if st.phase != phaseExplore {
		t.Fatalf("sustained drift did not re-open exploration (phase=%s)", st.phase)
	}
	if st.reExplores != 1 {
		t.Fatalf("reExplores=%d, want 1", st.reExplores)
	}
	// The re-explore round is cheap (ReExplorePasses per candidate) and
	// must settle on the now-cheapest path.
	for i := 0; i < opts.ReExplorePasses*len(candidates); i++ {
		path := p.route(tc, candidates, scanCost)
		if path == PathCracking {
			obs(path, 20000)
		} else {
			obs(path, 3000)
		}
	}
	if got := p.route(tc, candidates, scanCost); got != PathSideways {
		t.Fatalf("after drift, planner chose %s, want sideways", got)
	}
}

// TestParsePath covers the name round-trip and the error sentinel.
func TestParsePath(t *testing.T) {
	for _, p := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel, PathAuto} {
		got, err := ParsePath(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePath(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePath(""); err != nil || got != PathAuto {
		t.Fatalf("empty path must parse as auto, got %v, %v", got, err)
	}
	if _, err := ParsePath("btree"); err == nil {
		t.Fatal("unknown path must fail")
	}
	if len(PathNames()) != int(numStaticPaths)+1 {
		t.Fatalf("PathNames lists %d names", len(PathNames()))
	}
}

// TestRunRejectsAutoOutsideRun: the static entry points must refuse
// PathAuto instead of silently scanning.
func TestRunRejectsAutoOutsideRun(t *testing.T) {
	cat, _ := buildCatalog(t, 100, 7)
	eng := New(cat, core.DefaultOptions())
	if _, err := eng.SelectRows("orders", "amount", column.NewRange(0, 10), PathAuto); err == nil {
		t.Fatal("SelectRows must reject PathAuto")
	}
	if _, err := eng.SelectProject("orders", "amount", column.NewRange(0, 10), []string{"status"}, PathAuto); err == nil {
		t.Fatal("SelectProject must reject PathAuto")
	}
}

// TestSingleColumnTableExcludesSideways: a single-column table has no
// projection attribute to drag along, so the planner must never route
// to sideways there.
func TestSingleColumnTableExcludesSideways(t *testing.T) {
	cat := NewCatalog()
	tab := NewTable("solo")
	if err := tab.AddColumn("c0", workload.DataUniform(1, 5000, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(tab); err != nil {
		t.Fatal(err)
	}
	eng := New(cat, core.DefaultOptions())
	gen := workload.NewUniform(2, 0, 5000, 0.02)
	for q := 0; q < 60; q++ {
		res, err := eng.Run(Query{Table: "solo", Column: "c0", R: gen.Next(), Path: PathAuto})
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == PathSideways {
			t.Fatal("planner routed a single-column table to sideways")
		}
	}
	if eng.Structures().MapSets != 0 {
		t.Fatal("a map set was built for a single-column table")
	}
}

// TestCountOnlyMatchesSelectWithoutMaterialising: counts agree with
// select lengths on every path, and a converged repeated count charges
// no recurring copy work (the old service-level regression: counting
// by materialising a discarded row vector).
func TestCountOnlyMatchesSelectWithoutMaterialising(t *testing.T) {
	cat, _ := buildCatalog(t, 10_000, 13)
	eng := New(cat, core.DefaultOptions())
	rng := rand.New(rand.NewSource(14))
	for q := 0; q < 30; q++ {
		lo := column.Value(rng.Intn(10000))
		r := column.NewRange(lo, lo+400)
		for _, path := range []AccessPath{PathScan, PathCracking, PathSideways, PathParallel, PathAuto} {
			sel, err := eng.Run(Query{Table: "orders", Column: "amount", R: r, Path: path})
			if err != nil {
				t.Fatal(err)
			}
			cnt, err := eng.Run(Query{Table: "orders", Column: "amount", R: r, CountOnly: true, Path: path})
			if err != nil {
				t.Fatal(err)
			}
			if cnt.Rows != nil || cnt.Columns != nil {
				t.Fatalf("%s: count-only query materialised", path)
			}
			if cnt.Count != sel.Count || sel.Count != len(sel.Rows) {
				t.Fatalf("%s query %s: count %d, select %d", path, r, cnt.Count, sel.Count)
			}
		}
	}
	// A repeated count on a converged cracker must copy nothing.
	r := column.NewRange(100, 500)
	if _, err := eng.Run(Query{Table: "orders", Column: "amount", R: r, CountOnly: true, Path: PathCracking}); err != nil {
		t.Fatal(err)
	}
	before := eng.Cost()
	if _, err := eng.Run(Query{Table: "orders", Column: "amount", R: r, CountOnly: true, Path: PathCracking}); err != nil {
		t.Fatal(err)
	}
	if delta := eng.Cost().Sub(before); delta.TuplesCopied != 0 || delta.RandomTouches != 0 {
		t.Fatalf("converged count charged recurring work: %+v", delta)
	}
	// Count-only with a projection is a contradiction, not a silent
	// discard.
	if _, err := eng.Run(Query{Table: "orders", Column: "amount", R: r, CountOnly: true, Project: []string{"status"}}); err == nil {
		t.Fatal("count-only with projection must fail")
	}
}
