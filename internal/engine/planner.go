// The access-path planner behind PathAuto.
//
// The tutorial's thesis is that the kernel, not the DBA, should pick
// and refine the physical design as queries arrive. The engine's four
// access paths span that spectrum — plain scans, selection cracking,
// sideways cracking, partitioned parallel cracking — and which one is
// cheapest depends on the workload: projection width, predicate
// overlap, how long the current focus lasts. The planner learns the
// answer per (table, column) from the queries themselves:
//
//   - Explore: the first queries are routed across the adaptive
//     candidate paths, interleaved so every path's observation window
//     covers the same slice of the stream, a few real queries each.
//     Nothing is executed twice; exploration spends ordinary queries,
//     and the structures those probes build are kept. The scan path is
//     scored analytically (2n logical work per query, exactly what the
//     scan operator charges) instead of burning real scans on probes.
//   - Exploit: the cheapest path by smoothed per-query RECURRING work
//     (cost.Counters.Recurring — materialisation that every repetition
//     of a query shape re-pays, as opposed to reorganisation that is
//     invested once and amortises) wins and receives all subsequent
//     traffic. Scoring on the recurring component is what makes short
//     races decisive: the paths differ structurally in how they
//     materialise results (sideways copies sequentially, cracking
//     reconstructs by random access), and that difference shows from
//     the first probes, while transient cracking costs — an order of
//     magnitude larger on fresh predicates — would bury it.
//   - Drift: during exploitation the planner keeps scoring the chosen
//     path. Recurring cost barely moves when the workload's focus
//     shifts (a re-crack is reorganisation), so drift detection fires
//     on genuine shape changes — wider predicates, heavier
//     projections, sustained for a window of queries — and re-opens
//     exploration, which is cheap the second time around because the
//     structures already exist.
//
// Scores are logical work counters rather than wall time: the counters
// are deterministic, already weight random access 4×, and are the
// currency every comparison in this repository uses. Wall time is
// recorded alongside for observability.
package engine

import (
	"math"
	"sort"
	"time"

	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/trace"
)

// PlannerOptions tunes the PathAuto planner.
type PlannerOptions struct {
	// ExplorePasses is how many real queries each adaptive candidate
	// path receives in the initial explore round (default 8). A path's
	// first probe pays its one-time structure construction and is
	// excluded from the steady-state estimate, so at least two probes
	// are needed before a path can be preferred over the analytic scan
	// score; the later probes let the estimate settle towards the
	// converged per-query cost, which is what exploitation will pay.
	ExplorePasses int
	// ReExplorePasses is the per-path probe budget of a drift-triggered
	// re-exploration (default 1; the structures are warm, one query is
	// enough to refresh an estimate).
	ReExplorePasses int
	// DriftFactor is how many times the decision-time baseline a
	// query's cost must exceed to count towards drift (default 4).
	DriftFactor float64
	// DriftWindow is how many consecutive drifting queries re-open
	// exploration (default 8). Transient re-crack spikes after a focus
	// shift last one or two queries and never reach it.
	DriftWindow int
	// Alpha is the EWMA smoothing factor for per-path cost estimates
	// (default 0.3; higher weighs recent queries more).
	Alpha float64
}

// DefaultPlannerOptions returns the canonical planner configuration.
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{
		ExplorePasses:   8,
		ReExplorePasses: 1,
		DriftFactor:     4,
		DriftWindow:     8,
		Alpha:           0.3,
	}
}

func (o PlannerOptions) withDefaults() PlannerOptions {
	d := DefaultPlannerOptions()
	if o.ExplorePasses <= 0 {
		o.ExplorePasses = d.ExplorePasses
	}
	if o.ReExplorePasses <= 0 {
		o.ReExplorePasses = d.ReExplorePasses
	}
	if o.DriftFactor <= 1 {
		o.DriftFactor = d.DriftFactor
	}
	if o.DriftWindow <= 0 {
		o.DriftWindow = d.DriftWindow
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = d.Alpha
	}
	return o
}

// planPhase is the planner's mode for one (table, column).
type planPhase uint8

const (
	phaseExplore planPhase = iota
	phaseExploit
)

func (p planPhase) String() string {
	if p == phaseExplore {
		return "explore"
	}
	return "exploit"
}

// pathObs accumulates what the planner has seen of one access path.
type pathObs struct {
	queries uint64
	work    uint64
	wall    time.Duration
	// first is the cost of the path's first query, which for adaptive
	// paths includes the one-time structure construction; ewma smooths
	// every later query — the steady-state marginal cost exploitation
	// would actually pay. warm reports that ewma is seeded.
	first  float64
	ewma   float64
	seen   bool
	warm   bool
	probes int
}

// planState is the planner's state for one (table, column).
type planState struct {
	phase      planPhase
	passes     int
	candidates []AccessPath
	scanCost   float64
	paths      [numStaticPaths]pathObs
	chosen     AccessPath
	baseline   float64
	driftRun   int
	reExplores int
}

// planner holds per-column routing state for PathAuto.
type planner struct {
	opts   PlannerOptions
	states map[TableColumn]*planState
	// events, when set, receives the planner's explore/exploit/
	// re-explore decisions (with per-path scores) as structured events.
	events *trace.Log
}

func newPlanner(opts PlannerOptions) *planner {
	return &planner{opts: opts.withDefaults(), states: make(map[TableColumn]*planState)}
}

func (p *planner) stateFor(tc TableColumn, candidates []AccessPath, scanCost float64) *planState {
	st, ok := p.states[tc]
	if !ok {
		st = &planState{
			phase:      phaseExplore,
			passes:     p.opts.ExplorePasses,
			candidates: candidates,
			chosen:     PathScan,
		}
		p.states[tc] = st
		if p.events != nil {
			p.events.Append(trace.Event{Kind: "plan_explore", Table: tc.Table, Column: tc.Column,
				Fields: map[string]float64{
					"passes":     float64(p.opts.ExplorePasses),
					"candidates": float64(len(candidates)),
				}})
		}
	}
	st.scanCost = scanCost
	return st
}

// score is the planner's current per-query cost estimate for a path:
// the smoothed marginal cost when enough observations exist, the
// construction-laden first observation when that is all there is, the
// analytic scan model for an unprobed scan, and +Inf for unprobed
// adaptive paths.
func (st *planState) score(path AccessPath) float64 {
	obs := st.paths[path]
	if obs.warm {
		return obs.ewma
	}
	if obs.seen {
		return obs.first
	}
	if path == PathScan {
		return st.scanCost
	}
	return math.Inf(1)
}

// route picks the access path for one PathAuto query.
func (p *planner) route(tc TableColumn, candidates []AccessPath, scanCost float64) AccessPath {
	st := p.stateFor(tc, candidates, scanCost)
	if st.phase == phaseExplore {
		// Interleave: always probe the candidate with the fewest probes,
		// so every candidate's observation window covers the same slice
		// of the query stream. Sequential windows would score candidates
		// on different predicates — on a skewed stream, whichever path
		// happened to probe during a burst of fresh predicates would
		// look expensive through no fault of its own.
		probe, fewest := PathAuto, st.passes
		for _, c := range st.candidates {
			if st.paths[c].probes < fewest {
				probe, fewest = c, st.paths[c].probes
			}
		}
		if probe != PathAuto {
			return probe
		}
		st.decide()
		p.emitDecision(tc, st)
	}
	return st.chosen
}

// emitDecision records a closed explore round: the chosen path and the
// score of every path the decision weighed.
func (p *planner) emitDecision(tc TableColumn, st *planState) {
	if p.events == nil {
		return
	}
	fields := map[string]float64{"baseline": st.baseline}
	for _, c := range append([]AccessPath{PathScan}, st.candidates...) {
		if s := st.score(c); !math.IsInf(s, 1) {
			fields["score_"+c.String()] = s
		}
	}
	p.events.Append(trace.Event{Kind: "plan_exploit", Table: tc.Table, Column: tc.Column,
		Path: st.chosen.String(), Fields: fields})
}

// tieMargin is how decisively a candidate must beat the incumbent best
// to displace it: its score must be below 90% of the incumbent's.
// Candidates are ordered lightest structure first (scan, then cracking,
// then sideways), so near-ties — a selection-only workload, where every
// adaptive path copies the same qualifying rows — resolve to the
// structurally cheaper path instead of following estimate noise.
const tieMargin = 0.9

// decide closes an explore round: the cheapest path by current score
// wins, and its score becomes the drift baseline.
func (st *planState) decide() {
	best, bestScore := PathScan, st.score(PathScan)
	for _, c := range st.candidates {
		if s := st.score(c); s < tieMargin*bestScore {
			best, bestScore = c, s
		}
	}
	st.chosen = best
	st.baseline = bestScore
	st.phase = phaseExploit
	st.driftRun = 0
}

// reExplore re-opens exploration after sustained drift.
func (st *planState) reExplore(passes int) {
	st.phase = phaseExplore
	st.passes = passes
	st.driftRun = 0
	st.reExplores++
	for i := range st.paths {
		st.paths[i].probes = 0
	}
}

// observe records the measured cost of one executed query. delta is
// the engine's cost-counter delta for exactly this query. routed
// reports whether the planner itself chose the path (PathAuto); only
// routed queries advance explore probes and drift detection, but every
// observation — explicit-path experiments included — refines the
// per-path estimate.
//
// Estimates smooth the RECURRING component of the work (see
// cost.Counters.Recurring): materialisation is re-paid on every
// repetition of a query shape, while reorganisation (cracking pieces,
// building maps) is a one-time investment that decays — and, being an
// order of magnitude larger on fresh predicates, would otherwise bury
// the signal that separates the paths. For a scan the whole query is
// recurring, so its estimate uses the full work delta.
func (p *planner) observe(tc TableColumn, candidates []AccessPath, scanCost float64, path AccessPath, routed bool, delta cost.Counters, wall time.Duration) {
	if path >= numStaticPaths {
		return
	}
	st := p.stateFor(tc, candidates, scanCost)
	obs := &st.paths[path]
	obs.queries++
	obs.work += delta.Total()
	obs.wall += wall
	w := float64(delta.Recurring())
	if path == PathScan {
		w = float64(delta.Total())
	}
	switch {
	case !obs.seen:
		obs.seen = true
		obs.first = w
		if path == PathScan {
			// A scan has no construction step; its first query already
			// is the marginal cost.
			obs.ewma = w
			obs.warm = true
		}
	case !obs.warm:
		obs.ewma = w
		obs.warm = true
	default:
		obs.ewma = p.opts.Alpha*w + (1-p.opts.Alpha)*obs.ewma
	}
	if !routed {
		return
	}
	switch st.phase {
	case phaseExplore:
		obs.probes++
	case phaseExploit:
		if path != st.chosen {
			return
		}
		// Sustained drift: the chosen path's recurring cost runs several
		// times its decision-time baseline, query after query. Recurring
		// cost barely moves when the focus shifts (a re-crack is
		// reorganisation, not materialisation), so this fires on genuine
		// shape changes — wider predicates, heavier projections — not on
		// transient spikes.
		if w > p.opts.DriftFactor*math.Max(st.baseline, 1) {
			st.driftRun++
		} else {
			st.driftRun = 0
		}
		if st.driftRun >= p.opts.DriftWindow {
			st.reExplore(p.opts.ReExplorePasses)
			if p.events != nil {
				p.events.Append(trace.Event{Kind: "plan_reexplore", Table: tc.Table, Column: tc.Column,
					Path: path.String(), Fields: map[string]float64{
						"re_explores": float64(st.reExplores),
						"passes":      float64(p.opts.ReExplorePasses),
						"last_work":   w,
						"baseline":    st.baseline,
					}})
			}
		}
	}
}

// PlanPathStats is the observable per-path state of one column's
// planner.
type PlanPathStats struct {
	Path    string  `json:"path"`
	Queries uint64  `json:"queries"`
	AvgWork float64 `json:"avg_work"`
	EWMA    float64 `json:"ewma_work"`
	WallUs  int64   `json:"wall_us"`
	Probes  int     `json:"probes"`
}

// PlanStats is the observable planner state for one (table, column).
type PlanStats struct {
	Table      string          `json:"table"`
	Column     string          `json:"column"`
	Phase      string          `json:"phase"`
	Chosen     string          `json:"chosen"`
	Baseline   float64         `json:"baseline_work"`
	ReExplores int             `json:"re_explores"`
	Paths      []PlanPathStats `json:"paths"`
}

// PlanStats returns the planner's per-column state, sorted by table
// then column, for /stats and reports.
func (e *Engine) PlanStats() []PlanStats {
	out := make([]PlanStats, 0, len(e.planner.states))
	for tc, st := range e.planner.states {
		ps := PlanStats{
			Table:      tc.Table,
			Column:     tc.Column,
			Phase:      st.phase.String(),
			Chosen:     st.chosen.String(),
			Baseline:   st.baseline,
			ReExplores: st.reExplores,
		}
		for path := AccessPath(0); path < numStaticPaths; path++ {
			obs := st.paths[path]
			if !obs.seen {
				continue
			}
			ps.Paths = append(ps.Paths, PlanPathStats{
				Path:    path.String(),
				Queries: obs.queries,
				AvgWork: float64(obs.work) / float64(obs.queries),
				EWMA:    obs.ewma,
				WallUs:  obs.wall.Microseconds(),
				Probes:  obs.probes,
			})
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}
