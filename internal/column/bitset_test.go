package column

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(100)
	if b.Count() != 0 {
		t.Fatalf("empty bitset count = %d", b.Count())
	}
	b.Add(0)
	b.Add(63)
	b.Add(64)
	b.Add(99)
	if got := b.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	for _, r := range []RowID{0, 63, 64, 99} {
		if !b.Contains(r) {
			t.Errorf("missing row %d", r)
		}
	}
	if b.Contains(1) || b.Contains(65) || b.Contains(1000) {
		t.Error("bitset contains rows never added")
	}
	want := IDList{0, 63, 64, 99}
	if got := b.IDs(); !got.Equal(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
}

func TestBitsetGrowsBeyondCapacity(t *testing.T) {
	b := NewBitset(1)
	b.Add(5000)
	if !b.Contains(5000) || b.Count() != 1 {
		t.Fatalf("grow lost row 5000: count=%d", b.Count())
	}
}

func TestBitsetRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2000)
		ids := make(IDList, 0, n)
		seen := map[RowID]bool{}
		for i := 0; i < n; i++ {
			r := RowID(rng.Intn(10_000))
			if !seen[r] {
				seen[r] = true
				ids = append(ids, r)
			}
		}
		b := BitsetFromIDs(ids)
		if b.Count() != len(ids) {
			t.Fatalf("count = %d, want %d", b.Count(), len(ids))
		}
		if got := b.IDs(); !got.Equal(ids) {
			t.Fatalf("round trip lost rows: got %d want %d", len(got), len(ids))
		}
	}
}

func TestBitsetOrMatchesSliceMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]IDList, 4)
	var all IDList
	seen := map[RowID]bool{}
	for i := range parts {
		for j := 0; j < 500; j++ {
			r := RowID(rng.Intn(5000))
			if !seen[r] {
				seen[r] = true
				parts[i] = append(parts[i], r)
				all = append(all, r)
			}
		}
	}
	merged := NewBitset(5000)
	for _, p := range parts {
		other := BitsetFromIDs(p)
		merged.Or(other)
	}
	if got := merged.IDs(); !got.Equal(all) {
		t.Fatalf("bitset union = %d rows, want %d", len(got), len(all))
	}
}

// Benchmarks: bitset vs slice-backed merge of k partial ID lists — the
// shape partitioned selects and the wire boundary see. The slice merge
// is a single append pass (what index.MergeIDLists does); the bitset
// merge pays AddAll per part plus one materialisation.
func benchParts(k, perPart int) []IDList {
	rng := rand.New(rand.NewSource(3))
	parts := make([]IDList, k)
	for i := range parts {
		parts[i] = make(IDList, perPart)
		for j := range parts[i] {
			parts[i][j] = RowID(rng.Intn(k * perPart * 2))
		}
	}
	return parts
}

func BenchmarkIDListMergeSlice(b *testing.B) {
	parts := benchParts(8, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		out := make(IDList, 0, total)
		for _, p := range parts {
			out = append(out, p...)
		}
		_ = out
	}
}

func BenchmarkIDListMergeBitset(b *testing.B) {
	parts := benchParts(8, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := NewBitset(8 * 16384 * 2)
		for _, p := range parts {
			bs.AddAll(p)
		}
		_ = bs.IDs()
	}
}
