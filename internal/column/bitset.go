package column

import "math/bits"

// Bitset is a bitset-backed selection vector: bit r is set when row r
// qualifies. For large or merged results it replaces the slice-backed
// IDList — membership updates are branch-free single-word operations,
// unions are word-wide ORs instead of appends, and the representation
// is dense enough (one bit per row slot) that a selective result over a
// million-row table fits in a few cache lines per 512 rows.
//
// A Bitset loses the arrival order of its rows: iteration is always in
// ascending row order. Callers that need result order aligned with
// projected columns must keep the IDList form; the wire boundary
// converts between the two only for row-only results.
type Bitset struct {
	words []uint64
}

// bitsetWords returns the number of 64-bit words needed for n row slots.
func bitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns an empty bitset with capacity for row slots
// [0, n). Adding larger rows grows it automatically.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, bitsetWords(n))}
}

// BitsetFromIDs builds a bitset holding exactly the given rows.
func BitsetFromIDs(ids IDList) *Bitset {
	maxRow := RowID(0)
	for _, r := range ids {
		if r > maxRow {
			maxRow = r
		}
	}
	b := NewBitset(int(maxRow) + 1)
	for _, r := range ids {
		b.Add(r)
	}
	return b
}

// grow extends the word array to cover row r.
func (b *Bitset) grow(r RowID) {
	need := bitsetWords(int(r) + 1)
	if need <= len(b.words) {
		return
	}
	words := make([]uint64, need)
	copy(words, b.words)
	b.words = words
}

// Add marks row r as qualifying.
func (b *Bitset) Add(r RowID) {
	if int(r)>>6 >= len(b.words) {
		b.grow(r)
	}
	b.words[r>>6] |= 1 << (r & 63)
}

// Contains reports whether row r qualifies.
func (b *Bitset) Contains(r RowID) bool {
	w := int(r) >> 6
	return w < len(b.words) && b.words[w]&(1<<(r&63)) != 0
}

// Count returns the number of qualifying rows (population count).
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or merges other into b (set union), growing b as needed.
func (b *Bitset) Or(other *Bitset) {
	if len(other.words) > len(b.words) {
		words := make([]uint64, len(other.words))
		copy(words, b.words)
		b.words = words
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AddAll marks every row in ids as qualifying.
func (b *Bitset) AddAll(ids IDList) {
	for _, r := range ids {
		b.Add(r)
	}
}

// Words exposes the raw word array (bit r of word r/64 is row r). The
// wire codec serialises it directly; trailing zero words are the
// caller's concern.
func (b *Bitset) Words() []uint64 { return b.words }

// BitsetFromWords wraps a raw word array (as produced by Words) in a
// Bitset. The slice is not copied.
func BitsetFromWords(words []uint64) *Bitset { return &Bitset{words: words} }

// IDs materialises the qualifying rows as an IDList, in ascending row
// order. Iteration strips one set bit per step, so sparse results cost
// one TrailingZeros per row, not one test per row slot.
func (b *Bitset) IDs() IDList {
	out := make(IDList, 0, b.Count())
	for wi, w := range b.words {
		base := RowID(wi * 64)
		for w != 0 {
			out = append(out, base+RowID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}
