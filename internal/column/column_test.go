package column

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(4)
	if v.Len() != 0 {
		t.Fatalf("new vector length = %d, want 0", v.Len())
	}
	id := v.Append(42)
	if id != 0 {
		t.Fatalf("first append rowid = %d, want 0", id)
	}
	v.AppendAll(7, -3, 42)
	if v.Len() != 4 {
		t.Fatalf("len = %d, want 4", v.Len())
	}
	if v.Get(2) != -3 {
		t.Fatalf("Get(2) = %d, want -3", v.Get(2))
	}
	v.Set(2, 100)
	if v.Get(2) != 100 {
		t.Fatalf("after Set, Get(2) = %d, want 100", v.Get(2))
	}
	min, ok := v.Min()
	if !ok || min != 7 {
		t.Fatalf("Min = %d,%v want 7,true", min, ok)
	}
	max, ok := v.Max()
	if !ok || max != 100 {
		t.Fatalf("Max = %d,%v want 100,true", max, ok)
	}
}

func TestVectorEmptyMinMax(t *testing.T) {
	v := NewVector(0)
	if _, ok := v.Min(); ok {
		t.Fatal("Min on empty vector must report !ok")
	}
	if _, ok := v.Max(); ok {
		t.Fatal("Max on empty vector must report !ok")
	}
}

func TestVectorClone(t *testing.T) {
	v := FromValues([]Value{1, 2, 3})
	c := v.Clone()
	c.Set(0, 99)
	if v.Get(0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestVectorIsSorted(t *testing.T) {
	if !FromValues([]Value{1, 2, 2, 3}).IsSorted() {
		t.Fatal("sorted vector reported unsorted")
	}
	if FromValues([]Value{3, 1}).IsSorted() {
		t.Fatal("unsorted vector reported sorted")
	}
	if !FromValues(nil).IsSorted() {
		t.Fatal("empty vector should count as sorted")
	}
}

func TestPairsFromVector(t *testing.T) {
	v := FromValues([]Value{10, 20, 30})
	p := PairsFromVector(v)
	if len(p) != 3 {
		t.Fatalf("len = %d, want 3", len(p))
	}
	for i, pr := range p {
		if pr.Row != RowID(i) || pr.Val != v.Get(i) {
			t.Fatalf("pair %d = %+v, want {%d %d}", i, pr, v.Get(i), i)
		}
	}
}

func TestPairsSortByValue(t *testing.T) {
	p := PairsFromValues([]Value{5, 1, 3, 1})
	p.SortByValue()
	if !p.IsSortedByValue() {
		t.Fatalf("not sorted: %+v", p)
	}
	// Ties broken by RowID: the two 1s must keep rows 1 then 3.
	if p[0].Row != 1 || p[1].Row != 3 {
		t.Fatalf("tie-break by rowid violated: %+v", p)
	}
}

func TestPairsCloneAndAccessors(t *testing.T) {
	p := PairsFromValues([]Value{4, 2})
	c := p.Clone()
	c[0].Val = 99
	if p[0].Val != 4 {
		t.Fatal("Clone must not share storage")
	}
	vals := p.Values()
	rows := p.Rows()
	if vals[0] != 4 || vals[1] != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Fatalf("accessors wrong: vals=%v rows=%v", vals, rows)
	}
}

func TestValueMultiset(t *testing.T) {
	p := PairsFromValues([]Value{1, 2, 2, 3, 3, 3})
	m := p.ValueMultiset()
	if m[1] != 1 || m[2] != 2 || m[3] != 3 {
		t.Fatalf("multiset wrong: %v", m)
	}
}

func TestRangeContains(t *testing.T) {
	cases := []struct {
		name string
		r    Range
		val  Value
		want bool
	}{
		{"halfopen includes low", NewRange(10, 20), 10, true},
		{"halfopen excludes high", NewRange(10, 20), 20, false},
		{"halfopen inside", NewRange(10, 20), 15, true},
		{"halfopen below", NewRange(10, 20), 9, false},
		{"closed includes high", ClosedRange(10, 20), 20, true},
		{"point matches", Point(7), 7, true},
		{"point rejects", Point(7), 8, false},
		{"atleast", AtLeast(5), 5, true},
		{"atleast below", AtLeast(5), 4, false},
		{"lessthan", LessThan(5), 4, true},
		{"lessthan at bound", LessThan(5), 5, false},
		{"unbounded", Range{}, -999, true},
	}
	for _, c := range cases {
		if got := c.r.Contains(c.val); got != c.want {
			t.Errorf("%s: %s Contains(%d) = %v, want %v", c.name, c.r, c.val, got, c.want)
		}
	}
}

func TestRangeEmpty(t *testing.T) {
	if NewRange(10, 10).Empty() != true {
		t.Fatal("[10,10) must be empty")
	}
	if ClosedRange(10, 10).Empty() {
		t.Fatal("[10,10] must not be empty")
	}
	if NewRange(10, 20).Empty() {
		t.Fatal("[10,20) must not be empty")
	}
	if !NewRange(20, 10).Empty() {
		t.Fatal("[20,10) must be empty")
	}
	if AtLeast(3).Empty() {
		t.Fatal("one-sided ranges are never empty")
	}
}

func TestRangeString(t *testing.T) {
	if s := NewRange(1, 5).String(); s != "[1, 5)" {
		t.Fatalf("String = %q", s)
	}
	if s := (Range{}).String(); s != "(-inf, +inf)" {
		t.Fatalf("String = %q", s)
	}
	if s := ClosedRange(1, 5).String(); s != "[1, 5]" {
		t.Fatalf("String = %q", s)
	}
}

func TestIDListEqual(t *testing.T) {
	a := IDList{3, 1, 2}
	b := IDList{1, 2, 3}
	if !a.Equal(b) {
		t.Fatal("same sets must be equal regardless of order")
	}
	if a.Equal(IDList{1, 2}) {
		t.Fatal("different lengths must not be equal")
	}
	if a.Equal(IDList{1, 2, 4}) {
		t.Fatal("different members must not be equal")
	}
	if !(IDList{}).Equal(IDList{}) {
		t.Fatal("empty sets are equal")
	}
}

// Property: Contains on a half-open range agrees with the arithmetic
// definition low <= v < high.
func TestRangeContainsProperty(t *testing.T) {
	f := func(low, high, v int32) bool {
		r := NewRange(Value(low), Value(high))
		want := Value(v) >= Value(low) && Value(v) < Value(high)
		return r.Contains(Value(v)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting pairs preserves the value multiset.
func TestPairsSortPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = Value(rng.Intn(50))
		}
		p := PairsFromValues(vals)
		before := p.ValueMultiset()
		p.SortByValue()
		after := p.ValueMultiset()
		if len(before) != len(after) {
			t.Fatal("multiset size changed by sort")
		}
		for k, v := range before {
			if after[k] != v {
				t.Fatalf("multiset changed for key %d: %d -> %d", k, v, after[k])
			}
		}
	}
}
