// Package column provides the column-store storage primitives the
// adaptive indexing techniques in this repository are built on.
//
// Database cracking (Idreos et al., CIDR 2007) relies on a handful of
// column-store properties: attribute values are stored in fixed-width
// dense arrays, tuples are identified by positional row identifiers,
// and tuple reconstruction happens late, by joining positionally on
// those identifiers. This package supplies exactly those building
// blocks: typed value vectors, (value, rowid) pairs used by cracker
// columns and sorted runs, range predicates, and selection vectors.
package column

import (
	"fmt"
	"sort"
)

// Value is the attribute value type used throughout the repository.
// The surveyed systems crack fixed-width integer or decimal columns;
// a 64-bit signed integer covers both without loss of generality.
type Value = int64

// RowID identifies a tuple by its position in the base table. MonetDB
// calls these OIDs; they are dense and start at zero.
type RowID = uint32

// Vector is a fixed-width dense array of attribute values — the
// storage layout of one column.
type Vector struct {
	vals []Value
}

// NewVector returns an empty vector with capacity for n values.
func NewVector(n int) *Vector {
	return &Vector{vals: make([]Value, 0, n)}
}

// FromValues wraps the given slice in a Vector. The slice is not
// copied; callers that need isolation should pass a copy.
func FromValues(vals []Value) *Vector {
	return &Vector{vals: vals}
}

// Len returns the number of values stored.
func (v *Vector) Len() int { return len(v.vals) }

// Get returns the value at position i.
func (v *Vector) Get(i int) Value { return v.vals[i] }

// Set overwrites the value at position i.
func (v *Vector) Set(i int, val Value) { v.vals[i] = val }

// Append adds a value at the end of the vector and returns its RowID.
func (v *Vector) Append(val Value) RowID {
	v.vals = append(v.vals, val)
	return RowID(len(v.vals) - 1)
}

// AppendAll adds all values in order.
func (v *Vector) AppendAll(vals ...Value) {
	v.vals = append(v.vals, vals...)
}

// Values exposes the underlying slice. Mutating it mutates the vector.
func (v *Vector) Values() []Value { return v.vals }

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	out := make([]Value, len(v.vals))
	copy(out, v.vals)
	return &Vector{vals: out}
}

// Min returns the smallest value and false if the vector is empty.
func (v *Vector) Min() (Value, bool) {
	if len(v.vals) == 0 {
		return 0, false
	}
	m := v.vals[0]
	for _, x := range v.vals[1:] {
		if x < m {
			m = x
		}
	}
	return m, true
}

// Max returns the largest value and false if the vector is empty.
func (v *Vector) Max() (Value, bool) {
	if len(v.vals) == 0 {
		return 0, false
	}
	m := v.vals[0]
	for _, x := range v.vals[1:] {
		if x > m {
			m = x
		}
	}
	return m, true
}

// IsSorted reports whether the vector is in non-decreasing order.
func (v *Vector) IsSorted() bool {
	return sort.SliceIsSorted(v.vals, func(i, j int) bool { return v.vals[i] < v.vals[j] })
}

// Pair couples an attribute value with the RowID of the tuple it came
// from. Cracker columns, sorted runs and hybrid partitions all store
// pairs so that physical reorganisation never loses track of the
// original tuple.
type Pair struct {
	Val Value
	Row RowID
}

// Pairs is a reorganisable sequence of (value, rowid) pairs.
type Pairs []Pair

// PairsFromVector materialises the (value, rowid) representation of a
// column: position i becomes the pair (v[i], i).
func PairsFromVector(v *Vector) Pairs {
	out := make(Pairs, v.Len())
	for i, val := range v.Values() {
		out[i] = Pair{Val: val, Row: RowID(i)}
	}
	return out
}

// PairsFromValues is a convenience constructor used heavily in tests.
func PairsFromValues(vals []Value) Pairs {
	out := make(Pairs, len(vals))
	for i, val := range vals {
		out[i] = Pair{Val: val, Row: RowID(i)}
	}
	return out
}

// Clone returns a deep copy.
func (p Pairs) Clone() Pairs {
	out := make(Pairs, len(p))
	copy(out, p)
	return out
}

// Values returns just the values, in storage order.
func (p Pairs) Values() []Value {
	out := make([]Value, len(p))
	for i, pr := range p {
		out[i] = pr.Val
	}
	return out
}

// Rows returns just the row identifiers, in storage order.
func (p Pairs) Rows() []RowID {
	out := make([]RowID, len(p))
	for i, pr := range p {
		out[i] = pr.Row
	}
	return out
}

// SortByValue sorts the pairs by value (ties broken by RowID so the
// order is deterministic).
func (p Pairs) SortByValue() {
	sort.Slice(p, func(i, j int) bool {
		if p[i].Val != p[j].Val {
			return p[i].Val < p[j].Val
		}
		return p[i].Row < p[j].Row
	})
}

// IsSortedByValue reports whether the pairs are in non-decreasing value
// order.
func (p Pairs) IsSortedByValue() bool {
	return sort.SliceIsSorted(p, func(i, j int) bool { return p[i].Val < p[j].Val })
}

// ValueMultiset returns a histogram of the values, used by tests to
// assert that physical reorganisation is a permutation.
func (p Pairs) ValueMultiset() map[Value]int {
	m := make(map[Value]int, len(p))
	for _, pr := range p {
		m[pr.Val]++
	}
	return m
}

// Range is an interval predicate over attribute values. Both bounds
// are optional; the zero value (no bounds) matches every value.
type Range struct {
	Low, High       Value
	HasLow, HasHigh bool
	IncLow, IncHigh bool
}

// NewRange builds the half-open interval [low, high) that the cracking
// papers use as their canonical predicate.
func NewRange(low, high Value) Range {
	return Range{Low: low, High: high, HasLow: true, HasHigh: true, IncLow: true, IncHigh: false}
}

// ClosedRange builds the closed interval [low, high].
func ClosedRange(low, high Value) Range {
	return Range{Low: low, High: high, HasLow: true, HasHigh: true, IncLow: true, IncHigh: true}
}

// AtLeast builds the one-sided predicate v >= low.
func AtLeast(low Value) Range {
	return Range{Low: low, HasLow: true, IncLow: true}
}

// LessThan builds the one-sided predicate v < high.
func LessThan(high Value) Range {
	return Range{High: high, HasHigh: true}
}

// Point builds the equality predicate v == x as the closed range [x, x].
func Point(x Value) Range { return ClosedRange(x, x) }

// Contains reports whether val satisfies the predicate.
func (r Range) Contains(val Value) bool {
	if r.HasLow {
		if r.IncLow {
			if val < r.Low {
				return false
			}
		} else if val <= r.Low {
			return false
		}
	}
	if r.HasHigh {
		if r.IncHigh {
			if val > r.High {
				return false
			}
		} else if val >= r.High {
			return false
		}
	}
	return true
}

// Empty reports whether no value can satisfy the predicate.
func (r Range) Empty() bool {
	if !r.HasLow || !r.HasHigh {
		return false
	}
	if r.Low < r.High {
		return false
	}
	if r.Low > r.High {
		return true
	}
	// Low == High: only the closed-closed combination admits the point.
	return !(r.IncLow && r.IncHigh)
}

// String renders the predicate in interval notation.
func (r Range) String() string {
	lo, hi := "(-inf", "+inf)"
	if r.HasLow {
		b := "("
		if r.IncLow {
			b = "["
		}
		lo = fmt.Sprintf("%s%d", b, r.Low)
	}
	if r.HasHigh {
		b := ")"
		if r.IncHigh {
			b = "]"
		}
		hi = fmt.Sprintf("%d%s", r.High, b)
	}
	return lo + ", " + hi
}

// IDList is a selection vector: the row identifiers of qualifying
// tuples, in no particular order.
type IDList []RowID

// Sorted returns a sorted copy, used when comparing result sets.
func (ids IDList) Sorted() IDList {
	out := make(IDList, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two selection vectors contain the same row
// identifiers, regardless of order.
func (ids IDList) Equal(other IDList) bool {
	if len(ids) != len(other) {
		return false
	}
	a, b := ids.Sorted(), other.Sorted()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
