package partition

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/index"
	"adaptiveindex/internal/workload"
)

// oracle is the sorted-reference result: row identifiers of values
// matching r, computed by brute force.
func oracle(vals []column.Value, r column.Range) column.IDList {
	var out column.IDList
	for i, v := range vals {
		if r.Contains(v) {
			out = append(out, column.RowID(i))
		}
	}
	return out
}

func uniformValues(seed int64, n, domain int) []column.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]column.Value, n)
	for i := range out {
		out[i] = column.Value(rng.Intn(domain))
	}
	return out
}

// testQueries builds a mixed predicate set exercising every bound
// combination: two-sided, one-sided, point, unbounded and empty.
func testQueries(seed int64, n, domain int) []column.Range {
	rng := rand.New(rand.NewSource(seed))
	queries := []column.Range{
		{}, // match-all
		column.Point(column.Value(domain / 2)),
		column.AtLeast(column.Value(domain - domain/10)),
		column.LessThan(column.Value(domain / 10)),
		column.NewRange(column.Value(domain), column.Value(2*domain)), // beyond the data
		column.ClosedRange(5, 5),
		column.NewRange(7, 7), // empty
	}
	maxWidth := domain / 20
	if maxWidth < 1 {
		maxWidth = 1
	}
	for i := 0; i < n; i++ {
		lo := column.Value(rng.Intn(domain))
		width := column.Value(rng.Intn(maxWidth) + 1)
		queries = append(queries, column.NewRange(lo, lo+width))
	}
	return queries
}

func TestSelectMatchesOracleAcrossPartitionCounts(t *testing.T) {
	vals := uniformValues(1, 20000, 50000)
	queries := testQueries(2, 150, 50000)
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		ix := New(vals, Options{Partitions: p, Workers: 4, Core: core.DefaultOptions()})
		if got := ix.NumPartitions(); got > p {
			t.Fatalf("p=%d: got %d partitions", p, got)
		}
		for qi, q := range queries {
			got := ix.Select(q)
			want := oracle(vals, q)
			if !got.Equal(want) {
				t.Fatalf("p=%d query %d %s: got %d rows, want %d", p, qi, q, len(got), len(want))
			}
			if n := ix.Count(q); n != len(want) {
				t.Fatalf("p=%d query %d %s: Count = %d, want %d", p, qi, q, n, len(want))
			}
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if ix.Cost().IsZero() {
			t.Fatalf("p=%d: no work recorded", p)
		}
	}
}

// TestParallelAgreesWithSingleCracker drives a partitioned index and a
// plain cracker column through the identical workload and requires
// identical results on every query — the contract KindParallel makes
// with KindCracking.
func TestParallelAgreesWithSingleCracker(t *testing.T) {
	vals := uniformValues(3, 30000, 30000)
	ix := New(vals, Options{Partitions: 8, Workers: 4, Core: core.DefaultOptions()})
	cc := core.NewCrackerColumn(vals, core.DefaultOptions())
	queries := workload.Queries(workload.NewUniform(4, 0, 30000, 0.02), 400)
	for qi, q := range queries {
		got, want := ix.Select(q), cc.Select(q)
		if !got.Equal(want) {
			t.Fatalf("query %d %s: parallel %d rows, cracking %d rows", qi, q, len(got), len(want))
		}
	}
}

func TestSkewedDataStillPartitions(t *testing.T) {
	// Zipf-skewed data: quantile pivots must keep partitions populated
	// and results correct.
	vals := workload.DataZipf(5, 20000, 40000, 1.3)
	ix := New(vals, Options{Partitions: 8, Workers: 4, Core: core.DefaultOptions()})
	for _, q := range testQueries(6, 100, 40000) {
		if got, want := ix.Select(q), oracle(vals, q); !got.Equal(want) {
			t.Fatalf("query %s: got %d rows, want %d", q, len(got), len(want))
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	// Few distinct values: pivot deduplication must collapse partitions
	// without losing tuples.
	vals := workload.DataDuplicates(7, 5000, 3)
	ix := New(vals, Options{Partitions: 8, Workers: 2, Core: core.DefaultOptions()})
	if ix.NumPartitions() > 3 {
		t.Fatalf("3 distinct values cannot support %d partitions", ix.NumPartitions())
	}
	for _, q := range testQueries(8, 60, 3) {
		if got, want := ix.Select(q), oracle(vals, q); !got.Equal(want) {
			t.Fatalf("query %s: got %d rows, want %d", q, len(got), len(want))
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndTinyColumns(t *testing.T) {
	empty := New(nil, DefaultOptions())
	if empty.Len() != 0 || empty.Count(column.Range{}) != 0 || empty.Select(column.Range{}) != nil {
		t.Fatal("empty column must answer zero rows")
	}
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	tiny := New([]column.Value{9}, Options{Partitions: 16})
	if got := tiny.Select(column.Point(9)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestPartitionStatsAndBoundaryCracking(t *testing.T) {
	vals := uniformValues(9, 40000, 40000)
	ix := New(vals, Options{Partitions: 4, Workers: 4, Core: core.DefaultOptions()})
	stats := ix.PartitionStats()
	if len(stats) != 4 {
		t.Fatalf("got %d partitions", len(stats))
	}
	if stats[0].HasLower || !stats[0].HasUpper || stats[len(stats)-1].HasUpper {
		t.Fatal("edge partitions must be open-ended")
	}
	total := 0
	for _, st := range stats {
		total += st.Len
	}
	if total != len(vals) {
		t.Fatalf("partition lengths sum to %d, want %d", total, len(vals))
	}

	// A wide predicate whose bounds fall strictly inside the two edge
	// partitions covers the interior partitions entirely: they must
	// answer it on the shared path without cracking, while only the two
	// boundary partitions crack.
	wide := column.NewRange(stats[0].Upper/2, stats[3].Lower+1000)
	ix.Count(wide)
	after := ix.PartitionStats()
	for i := 1; i < 3; i++ {
		if after[i].Pieces != 1 {
			t.Fatalf("interior partition %d cracked (pieces=%d) for a covering predicate", i, after[i].Pieces)
		}
		if after[i].SharedHits != 1 || after[i].ExclusiveHits != 0 {
			t.Fatalf("interior partition %d: shared=%d exclusive=%d", i, after[i].SharedHits, after[i].ExclusiveHits)
		}
	}
	for _, i := range []int{0, 3} {
		if after[i].ExclusiveHits != 1 {
			t.Fatalf("boundary partition %d: exclusive=%d, want 1", i, after[i].ExclusiveHits)
		}
	}

	// Repeating the same predicate takes the shared path everywhere:
	// the bounds are recorded boundaries now.
	ix.Count(wide)
	final := ix.PartitionStats()
	for i, st := range final {
		if st.ExclusiveHits != after[i].ExclusiveHits {
			t.Fatalf("partition %d cracked again on a repeated predicate", i)
		}
		if st.SharedHits != after[i].SharedHits+1 {
			t.Fatalf("partition %d: shared hits %d -> %d", i, after[i].SharedHits, st.SharedHits)
		}
	}
}

func TestQueryOutsidePartitionTouchesNothing(t *testing.T) {
	vals := uniformValues(11, 10000, 10000)
	ix := New(vals, Options{Partitions: 4, Workers: 4, Core: core.DefaultOptions()})
	stats := ix.PartitionStats()
	// A predicate strictly inside partition 0 must not probe the rest.
	r := column.NewRange(0, stats[0].Upper/2)
	ix.Count(r)
	after := ix.PartitionStats()
	for i := 1; i < len(after); i++ {
		if after[i].SharedHits != 0 || after[i].ExclusiveHits != 0 {
			t.Fatalf("partition %d was probed for %s", i, r)
		}
	}
	if after[0].SharedHits+after[0].ExclusiveHits == 0 {
		t.Fatal("partition 0 was not probed")
	}
}

// TestQuickOracle property-tests arbitrary value sets and predicates
// against the sorted-reference oracle.
func TestQuickOracle(t *testing.T) {
	f := func(raw []int16, lo int16, width uint8, p uint8) bool {
		vals := make([]column.Value, len(raw))
		for i, v := range raw {
			vals[i] = column.Value(v)
		}
		ix := New(vals, Options{Partitions: int(p%8) + 1, Workers: 3, Core: core.DefaultOptions()})
		r := column.ClosedRange(column.Value(lo), column.Value(lo)+column.Value(width))
		if !ix.Select(r).Equal(oracle(vals, r)) {
			return false
		}
		return ix.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRenameKeepsBehaviour(t *testing.T) {
	vals := uniformValues(13, 1000, 1000)
	var ix index.Interface = New(vals, Options{Partitions: 2})
	renamed := index.Rename(ix, "p2")
	if renamed.Name() != "p2" {
		t.Fatalf("Name = %q", renamed.Name())
	}
	r := column.NewRange(100, 200)
	if renamed.Count(r) != len(oracle(vals, r)) {
		t.Fatal("renamed index answers differently")
	}
}

func TestMergeIDLists(t *testing.T) {
	if index.MergeIDLists(nil) != nil {
		t.Fatal("empty merge must be nil")
	}
	got := index.MergeIDLists([]column.IDList{{3, 1}, nil, {2}})
	want := column.IDList{1, 2, 3}
	sorted := got.Sorted()
	if len(sorted) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

// sortedCopy is a helper for the stress test's oracle.
func sortedCopy(vals []column.Value) []column.Value {
	out := append([]column.Value(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// countOracle counts matches against a pre-sorted copy with binary
// searches, so the stress test's verification stays cheap.
func countOracle(sorted []column.Value, r column.Range) int {
	lo := 0
	if r.HasLow {
		b := r.Low
		if !r.IncLow {
			b++
		}
		lo = sort.Search(len(sorted), func(i int) bool { return sorted[i] >= b })
	}
	hi := len(sorted)
	if r.HasHigh {
		b := r.High
		if r.IncHigh {
			b++
		}
		hi = sort.Search(len(sorted), func(i int) bool { return sorted[i] >= b })
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
