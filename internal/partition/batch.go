package partition

import (
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/index"
)

var (
	_ index.Batcher       = (*Index)(nil)
	_ index.SelectBatcher = (*Index)(nil)
)

// CountBatch answers a batch of predicates in recursive-median order
// (index.BatchOrder). Each predicate still fans out across the
// partitions it overlaps, but the ordered execution gives the
// per-partition crackers the same geometric-subdivision guarantee plain
// cracking gets from the batch entry point, so an adversarially ordered
// batch cannot degenerate into repeated large-piece scans.
func (ix *Index) CountBatch(rs []column.Range) []int {
	out := make([]int, len(rs))
	for _, i := range index.BatchOrder(rs) {
		out[i] = ix.Count(rs[i])
	}
	return out
}

// SelectBatch is CountBatch with materialised selection vectors.
func (ix *Index) SelectBatch(rs []column.Range) []column.IDList {
	out := make([]column.IDList, len(rs))
	for _, i := range index.BatchOrder(rs) {
		out[i] = ix.Select(rs[i])
	}
	return out
}
