package partition

import (
	"math/rand"
	"sync"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
)

// TestConcurrentStorm drives many goroutines of mixed Select/Count
// traffic at one partitioned index and verifies every single result
// against the sorted-reference oracle. Run with -race (CI does): it is
// the primary check that per-partition latching publishes cracks
// safely.
func TestConcurrentStorm(t *testing.T) {
	const (
		n          = 60000
		domain     = 60000
		goroutines = 8
		perG       = 300
	)
	vals := uniformValues(21, n, domain)
	sorted := sortedCopy(vals)
	ix := New(vals, Options{Partitions: 8, Workers: 4, Core: core.DefaultOptions()})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < perG; q++ {
				lo := column.Value(rng.Intn(domain))
				r := column.NewRange(lo, lo+column.Value(rng.Intn(domain/20)+1))
				want := countOracle(sorted, r)
				if q%3 == 0 {
					if got := ix.Count(r); got != want {
						t.Errorf("Count(%s) = %d, want %d", r, got, want)
						return
					}
				} else {
					rows := ix.Select(r)
					if len(rows) != want {
						t.Errorf("Select(%s) returned %d rows, want %d", r, len(rows), want)
						return
					}
					for _, row := range rows {
						if !r.Contains(vals[row]) {
							t.Errorf("Select(%s) returned row %d value %d outside the range", r, row, vals[row])
							return
						}
					}
				}
			}
		}(int64(g) * 101)
	}
	wg.Wait()

	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.SharedQueries() == 0 || ix.ExclusiveQueries() == 0 {
		t.Fatalf("expected both latch paths under a storm: shared=%d exclusive=%d",
			ix.SharedQueries(), ix.ExclusiveQueries())
	}
}

// TestContentionConvergesToSharedPath replays a bounded predicate set
// concurrently and checks the per-partition counters: once every bound
// of the set is a recorded boundary, further rounds must take only the
// shared path — the concurrency behaviour mirrors the convergence
// behaviour, now per partition.
func TestContentionConvergesToSharedPath(t *testing.T) {
	const domain = 40000
	vals := uniformValues(22, 40000, domain)
	ix := New(vals, Options{Partitions: 4, Workers: 4, Core: core.DefaultOptions()})

	queries := make([]column.Range, 40)
	for i := range queries {
		lo := column.Value(i * (domain / len(queries)))
		queries[i] = column.NewRange(lo, lo+500)
	}

	storm := func() {
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(offset int) {
				defer wg.Done()
				for q := 0; q < len(queries); q++ {
					ix.Count(queries[(q+offset)%len(queries)])
				}
			}(g * 5)
		}
		wg.Wait()
	}

	storm()
	mid := ix.PartitionStats()
	var exclusiveAfterWarmup uint64
	for _, st := range mid {
		exclusiveAfterWarmup += st.ExclusiveHits
	}
	if exclusiveAfterWarmup == 0 {
		t.Fatal("warm-up storm should have cracked")
	}

	// Every bound is now a boundary in its partition: replaying the set
	// must not take a single exclusive latch anywhere.
	storm()
	final := ix.PartitionStats()
	for i, st := range final {
		if st.ExclusiveHits != mid[i].ExclusiveHits {
			t.Fatalf("partition %d took the exclusive latch after convergence: %d -> %d",
				i, mid[i].ExclusiveHits, st.ExclusiveHits)
		}
		if st.SharedHits <= mid[i].SharedHits {
			t.Fatalf("partition %d saw no shared traffic in the replay", i)
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointRangesCrackInParallel pins goroutines to
// disjoint key regions, the scenario partitioning exists for: each
// region's cracking must stay inside its own partitions.
func TestConcurrentDisjointRangesCrackInParallel(t *testing.T) {
	const domain = 32000
	vals := uniformValues(23, 32000, domain)
	sorted := sortedCopy(vals)
	ix := New(vals, Options{Partitions: 4, Workers: 4, Core: core.DefaultOptions()})
	stats := ix.PartitionStats()

	var wg sync.WaitGroup
	for g := 0; g < len(stats); g++ {
		// Region g: strictly inside partition g's value interval.
		lo, hi := column.Value(0), stats[0].Upper
		if g > 0 {
			lo = stats[g].Lower
		}
		if g < len(stats)-1 {
			hi = stats[g].Upper
		} else {
			hi = domain
		}
		wg.Add(1)
		go func(seed int64, lo, hi column.Value) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			span := int(hi - lo)
			if span < 2 {
				return
			}
			for q := 0; q < 200; q++ {
				a := lo + column.Value(rng.Intn(span))
				b := a + column.Value(rng.Intn(span/4+1))
				if b >= hi {
					b = hi - 1
				}
				if b <= a {
					continue
				}
				r := column.NewRange(a, b)
				if got, want := ix.Count(r), countOracle(sorted, r); got != want {
					t.Errorf("Count(%s) = %d, want %d", r, got, want)
					return
				}
			}
		}(int64(g)*31+7, lo, hi)
	}
	wg.Wait()
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}
