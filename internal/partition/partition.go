// Package partition implements partitioned parallel cracking: a
// value-range sharded cracker column that turns the single global latch
// of package concurrent into per-partition contention.
//
// The tutorial names multi-core parallelism as an open frontier of
// adaptive indexing: under cracking every reader is a writer, so a
// single cracker column serialises all reorganising queries behind one
// exclusive latch. This package partitions the physical reorganisation
// itself. At build time the base column is split into P value-disjoint
// partitions at sampled quantile pivots; each partition owns a private
// cracker column (package core) and a private read/write latch. A range
// selection fans out, through a bounded worker pool, to exactly the
// partitions its predicate overlaps:
//
//   - interior partitions are fully covered by the predicate and are
//     answered by a pure read (no cracking, shared latch only);
//   - the two boundary partitions crack on the clamped predicate bound,
//     taking only their own exclusive latch;
//   - partitions outside the predicate are not touched at all.
//
// Queries over disjoint key ranges therefore crack concurrently, and
// even a single query parallelises its scan work across partitions —
// the two scaling behaviours a global latch forbids. As with package
// concurrent, convergence makes contention disappear: once a bound is a
// recorded boundary, boundary partitions take the shared path too.
package partition

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/crackeridx"
	"adaptiveindex/internal/index"
)

// Options configures a partitioned parallel cracker.
type Options struct {
	// Partitions is the number of value-range shards. Values <= 0
	// select one shard per available CPU.
	Partitions int
	// Workers bounds how many partitions one query probes concurrently.
	// Values <= 0 select the number of available CPUs.
	Workers int
	// Core configures the cracker column inside every partition.
	Core core.Options
}

// DefaultOptions returns the canonical configuration: one partition and
// one worker per CPU (resolved eagerly from runtime.GOMAXPROCS, so the
// returned Options spell out the counts a zero value would get), with
// crack-in-three inside the partitions.
func DefaultOptions() Options {
	procs := runtime.GOMAXPROCS(0)
	return Options{Partitions: procs, Workers: procs, Core: core.DefaultOptions()}
}

func (o Options) withDefaults(n int) Options {
	if o.Partitions <= 0 {
		o.Partitions = runtime.GOMAXPROCS(0)
	}
	if o.Partitions > n && n > 0 {
		o.Partitions = n
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// shard is one value-range partition: a private cracker column guarded
// by a private latch. The value interval a shard owns is delimited by
// cracker bounds so that inclusive/exclusive predicate edges compare
// exactly: the shard holds every value not left of lower and left of
// upper.
type shard struct {
	mu sync.RWMutex
	cc *core.CrackerColumn

	lower, upper       crackeridx.Bound
	hasLower, hasUpper bool

	// Shared-path reads must not mutate the cracker column's counters,
	// so result materialisation is tracked with an atomic and folded in
	// by Cost. Only the copy is charged, matching core.CrackerColumn's
	// Select accounting so KindParallel and KindCracking report
	// comparable work for identical workloads.
	readCopied atomic.Uint64

	// sharedHits / exclusiveHits record which latch path each probe of
	// this partition took, for observability and the convergence tests.
	sharedHits    atomic.Uint64
	exclusiveHits atomic.Uint64
}

// Index is a partitioned parallel cracker column. It is safe for use by
// multiple goroutines at once.
type Index struct {
	shards  []*shard
	n       int
	workers int

	// build is the one-off partitioning cost (sampling, pivot search,
	// tuple distribution), charged like the cracker-copy cost of a
	// plain cracker column.
	build cost.Counters
}

var _ index.Interface = (*Index)(nil)

// New builds a partitioned parallel cracker over the base values.
// Position i of the base column becomes the pair (vals[i], i), exactly
// as in package core, so row identifiers are global across partitions.
func New(vals []column.Value, opts Options) *Index {
	return NewFromPairs(column.PairsFromValues(vals), opts)
}

// NewFromPairs builds a partitioned parallel cracker over an explicit
// (value, rowid) layout. Unlike New, row identifiers need not be dense
// or start at zero — the form an engine uses to rebuild the index over
// the live rows of a table that has seen inserts and deletes.
func NewFromPairs(pairs column.Pairs, opts Options) *Index {
	n := len(pairs)
	opts = opts.withDefaults(n)
	ix := &Index{n: n, workers: opts.Workers}

	pivots := quantilePivotsPairs(pairs, opts.Partitions, &ix.build)
	buckets := distribute(pairs, pivots, &ix.build)

	ix.shards = make([]*shard, len(buckets))
	for i, pairs := range buckets {
		s := &shard{cc: core.NewCrackerColumnFromPairs(pairs, opts.Core)}
		if i > 0 {
			s.lower, s.hasLower = boundAt(pivots[i-1]), true
		}
		if i < len(pivots) {
			s.upper, s.hasUpper = boundAt(pivots[i]), true
		}
		ix.shards[i] = s
	}
	return ix
}

// boundAt returns the exclusive cracker bound "values < v", the pivot
// form used to delimit partitions.
func boundAt(v column.Value) crackeridx.Bound {
	return crackeridx.Bound{Value: v, Inclusive: false}
}

// quantilePivotsPairs derives up to p-1 distinct partition pivots from
// a deterministic stride sample of the pair values, so partitions are
// approximately equally populated even under skew. Fewer pivots are
// returned when the data has too few distinct values.
func quantilePivotsPairs(pairs column.Pairs, p int, c *cost.Counters) []column.Value {
	if p <= 1 || len(pairs) == 0 {
		return nil
	}
	sampleSize := 256 * p
	if sampleSize > len(pairs) {
		sampleSize = len(pairs)
	}
	stride := len(pairs) / sampleSize
	if stride < 1 {
		stride = 1
	}
	sample := make([]column.Value, 0, sampleSize)
	for i := 0; i < len(pairs) && len(sample) < sampleSize; i += stride {
		sample = append(sample, pairs[i].Val)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	c.ValuesTouched += uint64(len(sample))
	c.Comparisons += uint64(len(sample)) // sort work, counted linearly like the sampling scan

	pivots := make([]column.Value, 0, p-1)
	for i := 1; i < p; i++ {
		v := sample[i*len(sample)/p]
		// Skip duplicate pivots, and pivots at the sample minimum: the
		// partition "values < min" would be empty.
		if v > sample[0] && (len(pivots) == 0 || v > pivots[len(pivots)-1]) {
			pivots = append(pivots, v)
		}
	}
	return pivots
}

// distribute routes every (value, rowid) pair to its partition with a
// binary search over the pivots, in one sequential pass.
func distribute(pairs column.Pairs, pivots []column.Value, c *cost.Counters) []column.Pairs {
	buckets := make([]column.Pairs, len(pivots)+1)
	if len(pivots) == 0 {
		buckets[0] = pairs
		c.ValuesTouched += uint64(len(pairs))
		c.TuplesCopied += uint64(len(pairs))
		return buckets
	}
	for _, p := range pairs {
		// First pivot > v; values equal to a pivot go right of it,
		// matching the exclusive "values < pivot" partition bound.
		b := sort.Search(len(pivots), func(j int) bool { return pivots[j] > p.Val })
		buckets[b] = append(buckets[b], p)
		c.Comparisons += uint64(1)
		c.ValuesTouched++
		c.TuplesCopied++
	}
	return buckets
}

// Name identifies the access path in reports.
func (ix *Index) Name() string { return "cracking-parallel" }

// Len returns the number of tuples.
func (ix *Index) Len() int { return ix.n }

// NumPartitions returns the number of value-range shards. It can be
// lower than the configured partition count when the data has few
// distinct values.
func (ix *Index) NumPartitions() int { return len(ix.shards) }

// SharedQueries returns how many partition probes ran entirely under a
// shared latch (no reorganisation needed).
func (ix *Index) SharedQueries() uint64 {
	var t uint64
	for _, s := range ix.shards {
		t += s.sharedHits.Load()
	}
	return t
}

// ExclusiveQueries returns how many partition probes had to take their
// partition's exclusive latch to crack.
func (ix *Index) ExclusiveQueries() uint64 {
	var t uint64
	for _, s := range ix.shards {
		t += s.exclusiveHits.Load()
	}
	return t
}

// Cost returns the cumulative logical work: the build cost, every
// partition's cracking work, and the shared-path read work.
func (ix *Index) Cost() cost.Counters {
	c := ix.build
	for _, s := range ix.shards {
		s.mu.RLock()
		c.Add(s.cc.Cost())
		s.mu.RUnlock()
		c.TuplesCopied += s.readCopied.Load()
	}
	return c
}

// PartitionStat describes one partition's current state.
type PartitionStat struct {
	// Len is the number of tuples the partition holds.
	Len int
	// Pieces is the partition's current cracker piece count.
	Pieces int
	// SharedHits and ExclusiveHits count the latch paths probes of this
	// partition took.
	SharedHits, ExclusiveHits uint64
	// Lower and Upper delimit the partition's value interval
	// [Lower, Upper); HasLower/HasUpper are false at the domain edges.
	Lower, Upper       column.Value
	HasLower, HasUpper bool
}

// PartitionStats returns one row per partition, in value order.
func (ix *Index) PartitionStats() []PartitionStat {
	out := make([]PartitionStat, len(ix.shards))
	for i, s := range ix.shards {
		s.mu.RLock()
		out[i] = PartitionStat{
			Len:           s.cc.Len(),
			Pieces:        s.cc.NumPieces(),
			SharedHits:    s.sharedHits.Load(),
			ExclusiveHits: s.exclusiveHits.Load(),
			Lower:         s.lower.Value,
			Upper:         s.upper.Value,
			HasLower:      s.hasLower,
			HasUpper:      s.hasUpper,
		}
		s.mu.RUnlock()
	}
	return out
}

// probe is one partition's share of a query: the shard and the
// predicate clamped to the bounds the shard still has to enforce.
type probe struct {
	s *shard
	r column.Range
}

// plan computes which partitions the predicate overlaps and clamps the
// predicate per partition: a bound that already covers the whole
// partition is dropped, so only the partitions containing the bound
// values ever crack.
func (ix *Index) plan(r column.Range) []probe {
	var bLow, bHigh crackeridx.Bound
	if r.HasLow {
		bLow = core.LowerBound(r)
	}
	if r.HasHigh {
		bHigh = core.UpperBound(r)
	}
	probes := make([]probe, 0, len(ix.shards))
	for _, s := range ix.shards {
		// Entirely right of the qualifying interval: every qualifying
		// value is left of the shard's lower bound.
		if r.HasHigh && s.hasLower && bHigh.Compare(s.lower) <= 0 {
			continue
		}
		// Entirely left: every shard value is left of the first
		// qualifying value.
		if r.HasLow && s.hasUpper && s.upper.Compare(bLow) <= 0 {
			continue
		}
		// Drop a bound the shard's own pivots already enforce, so only
		// the partitions containing a bound value ever crack.
		rs := r
		if r.HasLow && s.hasLower && bLow.Compare(s.lower) <= 0 {
			rs.HasLow = false
		}
		if r.HasHigh && s.hasUpper && s.upper.Compare(bHigh) <= 0 {
			rs.HasHigh = false
		}
		probes = append(probes, probe{s: s, r: rs})
	}
	return probes
}

// run executes one partition probe, taking only that partition's latch.
// It returns the qualifying row identifiers when collect is true, and
// always returns the qualifying tuple count.
func (p probe) run(collect bool) (column.IDList, int) {
	s := p.s
	// Fully covered partition: pure read, shared latch, no cracking.
	if !p.r.HasLow && !p.r.HasHigh {
		s.mu.RLock()
		n := s.cc.Len()
		var out column.IDList
		if collect {
			out = s.collect(0, n)
		}
		s.mu.RUnlock()
		s.sharedHits.Add(1)
		return out, n
	}

	// Fast path: both remaining bounds are already recorded boundaries.
	s.mu.RLock()
	if start, end, ok := s.positions(p.r); ok {
		var out column.IDList
		if collect {
			out = s.collect(start, end)
		}
		s.mu.RUnlock()
		s.sharedHits.Add(1)
		return out, end - start
	}
	s.mu.RUnlock()

	// Slow path: crack under this partition's exclusive latch. Another
	// goroutine may have cracked the same bounds between the latches;
	// SelectPositions handles that (exact boundaries are looked up).
	s.mu.Lock()
	start, end := s.cc.SelectPositions(p.r)
	var out column.IDList
	if collect {
		out = s.collect(start, end)
	}
	s.mu.Unlock()
	s.exclusiveHits.Add(1)
	return out, end - start
}

// positions resolves the predicate's position interval using only
// boundaries that already exist. Must be called with at least the
// shared latch held.
func (s *shard) positions(r column.Range) (int, int, bool) {
	start, end := 0, s.cc.Len()
	if r.HasLow {
		pos, ok := s.cc.Index().Lookup(core.LowerBound(r))
		if !ok {
			return 0, 0, false
		}
		start = pos
	}
	if r.HasHigh {
		pos, ok := s.cc.Index().Lookup(core.UpperBound(r))
		if !ok {
			return 0, 0, false
		}
		end = pos
	}
	if end < start {
		end = start
	}
	return start, end, true
}

// collect copies the row identifiers of the position interval. Must be
// called with at least the shared latch held.
func (s *shard) collect(start, end int) column.IDList {
	pairs := s.cc.Pairs()
	out := make(column.IDList, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, pairs[i].Row)
	}
	s.readCopied.Add(uint64(end - start))
	return out
}

// fanOut runs the probes across the bounded worker pool, filling
// results (when collecting) and counts positionally.
func (ix *Index) fanOut(probes []probe, collect bool) ([]column.IDList, []int) {
	var results []column.IDList
	if collect {
		results = make([]column.IDList, len(probes))
	}
	counts := make([]int, len(probes))
	if len(probes) == 1 {
		// A single-partition query runs inline: no goroutine, no latch
		// beyond the partition's own.
		results0, n := probes[0].run(collect)
		if collect {
			results[0] = results0
		}
		counts[0] = n
		return results, counts
	}
	workers := ix.workers
	if workers > len(probes) {
		workers = len(probes)
	}
	// The calling goroutine is one of the workers, so a query spawns
	// workers-1 goroutines and probes are claimed through an atomic
	// counter — no channel rendezvous on the hot path.
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(probes) {
				return
			}
			out, n := probes[i].run(collect)
			if collect {
				results[i] = out
			}
			counts[i] = n
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	drain()
	wg.Wait()
	return results, counts
}

// Select returns the row identifiers of qualifying tuples, cracking the
// overlapped partitions in parallel as a side effect.
func (ix *Index) Select(r column.Range) column.IDList {
	if r.Empty() {
		return nil
	}
	probes := ix.plan(r)
	if len(probes) == 0 {
		return nil
	}
	results, _ := ix.fanOut(probes, true)
	return index.MergeIDLists(results)
}

// Count returns the number of qualifying tuples without materialising
// their row identifiers.
func (ix *Index) Count(r column.Range) int {
	if r.Empty() {
		return 0
	}
	probes := ix.plan(r)
	if len(probes) == 0 {
		return 0
	}
	_, counts := ix.fanOut(probes, false)
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// Validate checks the partitioning invariants: partition lengths sum to
// the column length, every partition's values respect its pivot bounds,
// and every partition's cracker column is internally consistent.
func (ix *Index) Validate() error {
	total := 0
	for i, s := range ix.shards {
		s.mu.RLock()
		err := s.cc.Validate()
		if err == nil {
			for _, p := range s.cc.Pairs() {
				if s.hasLower && leftOf(p.Val, s.lower) {
					err = fmt.Errorf("partition %d: value %d below lower pivot %s", i, p.Val, s.lower)
					break
				}
				if s.hasUpper && !leftOf(p.Val, s.upper) {
					err = fmt.Errorf("partition %d: value %d at or above upper pivot %s", i, p.Val, s.upper)
					break
				}
			}
		}
		total += s.cc.Len()
		s.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	if total != ix.n {
		return fmt.Errorf("partition lengths sum to %d, column has %d tuples", total, ix.n)
	}
	return nil
}

// leftOf reports whether v is on the left side of bound b.
func leftOf(v column.Value, b crackeridx.Bound) bool {
	if b.Inclusive {
		return v <= b.Value
	}
	return v < b.Value
}
