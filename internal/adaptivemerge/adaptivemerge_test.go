package adaptivemerge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
)

func scanOracle(vals []column.Value, r column.Range) column.IDList {
	var out column.IDList
	for i, v := range vals {
		if r.Contains(v) {
			out = append(out, column.RowID(i))
		}
	}
	return out
}

func randomValues(rng *rand.Rand, n, domain int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return vals
}

func smallOptions() Options {
	return Options{RunSize: 256, PageSize: 64, Fanout: 16}
}

func TestSelectMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := randomValues(rng, 5000, 1000)
	ix := New(vals, smallOptions())
	queries := []column.Range{
		column.NewRange(100, 200),
		column.NewRange(100, 200), // repeat: served from final index
		column.ClosedRange(500, 510),
		column.Point(777),
		column.AtLeast(950),
		column.LessThan(30),
		{},
		column.NewRange(2000, 3000), // outside domain
	}
	for q := 0; q < 100; q++ {
		lo := column.Value(rng.Intn(1050) - 25)
		queries = append(queries, column.NewRange(lo, lo+column.Value(rng.Intn(150))))
	}
	for i, r := range queries {
		got := ix.Select(r)
		want := scanOracle(vals, r)
		if !got.Equal(want) {
			t.Fatalf("query %d %s: got %d rows want %d", i, r, len(got), len(want))
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func TestLazyInitialization(t *testing.T) {
	vals := randomValues(rand.New(rand.NewSource(2)), 1000, 100)
	ix := New(vals, smallOptions())
	if !ix.Cost().IsZero() {
		t.Fatal("no work may happen before the first query")
	}
	if ix.NumRuns() != 0 {
		t.Fatal("runs must not exist before the first query")
	}
	ix.Count(column.NewRange(10, 20))
	if ix.NumRuns() == 0 && ix.RemainingInRuns() > 0 {
		t.Fatal("runs must exist after the first query")
	}
	if ix.Cost().IsZero() {
		t.Fatal("first query must be charged")
	}
}

func TestEmptyRangeDoesNotInitialize(t *testing.T) {
	vals := []column.Value{1, 2, 3}
	ix := New(vals, smallOptions())
	if got := ix.Select(column.NewRange(5, 5)); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
	if !ix.Cost().IsZero() {
		t.Fatal("an empty predicate must not trigger initialization")
	}
}

func TestMergeProgressAndConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	vals := randomValues(rng, n, n)
	ix := New(vals, smallOptions())

	ix.Count(column.NewRange(0, 100))
	remainingAfterFirst := ix.RemainingInRuns()
	if remainingAfterFirst >= n {
		t.Fatalf("first query must merge something: remaining %d of %d", remainingAfterFirst, n)
	}

	// Queries over disjoint ranges keep draining the runs.
	prev := remainingAfterFirst
	for lo := 100; lo < n; lo += 100 {
		ix.Count(column.NewRange(column.Value(lo), column.Value(lo+100)))
		if ix.RemainingInRuns() > prev {
			t.Fatalf("remaining entries grew: %d -> %d", prev, ix.RemainingInRuns())
		}
		prev = ix.RemainingInRuns()
	}
	// After covering the whole domain the index must be converged.
	ix.Count(column.Range{})
	if !ix.Converged() {
		t.Fatalf("index not converged, %d entries left in runs", ix.RemainingInRuns())
	}
	if ix.FinalIndex().Len() != n {
		t.Fatalf("final index holds %d entries, want %d", ix.FinalIndex().Len(), n)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatQueryIsCheapAfterMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := randomValues(rng, 50000, 100000)
	ix := New(vals, DefaultOptions())
	r := column.NewRange(1000, 3000)

	before := ix.Cost().Total()
	ix.Count(r)
	firstCost := ix.Cost().Total() - before

	before = ix.Cost().Total()
	ix.Count(r)
	secondCost := ix.Cost().Total() - before

	if secondCost*10 > firstCost {
		t.Fatalf("repeat query should be much cheaper: first %d, repeat %d", firstCost, secondCost)
	}
}

func TestConvergenceFasterThanQueryCount(t *testing.T) {
	// Adaptive merging's defining property: a key range is fully
	// optimised after it has been queried once. Querying k disjoint
	// ranges covering the domain converges the index in k queries.
	rng := rand.New(rand.NewSource(5))
	n := 10000
	vals := randomValues(rng, n, n)
	ix := New(vals, Options{RunSize: 1024, PageSize: 128, Fanout: 16})
	k := 20
	width := n / k
	for i := 0; i < k; i++ {
		lo := column.Value(i * width)
		ix.Count(column.NewRange(lo, lo+column.Value(width)))
	}
	// Everything in [0, n) has been queried; only values >= n*? none.
	if !ix.Converged() {
		t.Fatalf("expected convergence after %d covering queries, %d entries remain", k, ix.RemainingInRuns())
	}
}

func TestPageTouchCharging(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := randomValues(rng, 8192, 8192)
	ix := New(vals, Options{RunSize: 1024, PageSize: 256, Fanout: 16})
	ix.Count(column.NewRange(0, 500))
	c := ix.Cost()
	if c.PageTouches == 0 {
		t.Fatal("page touches must be charged under the I/O model")
	}
	// Initialization alone reads and writes all pages: >= 2*n/pagesize.
	if c.PageTouches < uint64(2*len(vals)/256) {
		t.Fatalf("expected at least %d page touches, got %d", 2*len(vals)/256, c.PageTouches)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.RunSize <= 0 || o.PageSize <= 0 || o.Fanout <= 0 {
		t.Fatalf("withDefaults left zero fields: %+v", o)
	}
	ix := New([]column.Value{3, 1, 2}, Options{})
	got := ix.Select(column.ClosedRange(1, 2))
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicateHeavyColumn(t *testing.T) {
	vals := make([]column.Value, 3000)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = column.Value(rng.Intn(4))
	}
	ix := New(vals, smallOptions())
	for q := 0; q < 30; q++ {
		lo := column.Value(rng.Intn(5) - 1)
		r := column.ClosedRange(lo, lo+column.Value(rng.Intn(3)))
		if got, want := ix.Select(r), scanOracle(vals, r); !got.Equal(want) {
			t.Fatalf("query %s: got %d want %d", r, len(got), len(want))
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: for arbitrary small columns and query sequences, adaptive
// merging returns scan-identical results and never loses entries.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(raw []int16, seq []uint8) bool {
		vals := make([]column.Value, len(raw))
		for i, v := range raw {
			vals[i] = column.Value(v % 128)
		}
		ix := New(vals, Options{RunSize: 32, PageSize: 8, Fanout: 4})
		for _, q := range seq {
			lo := column.Value(int(q%128) - 64)
			r := column.NewRange(lo, lo+16)
			if !ix.Select(r).Equal(scanOracle(vals, r)) {
				return false
			}
			if ix.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
