// Package adaptivemerge implements adaptive merging (Graefe & Kuno,
// EDBT 2010 / SMDB 2010), the second family of adaptive indexing
// techniques the tutorial covers.
//
// Where database cracking reorganises data as little as possible per
// query, adaptive merging reacts more actively: the first query
// partitions the column into sorted runs (each run sorted completely,
// as a side effect of the scan the query performs anyway), and every
// subsequent query merges the key range it asks for out of the runs
// into a final, fully optimised index. A key range that has been
// queried once is afterwards served entirely from the final index; once
// all data has migrated, the structure is a complete index and the
// adaptation overhead disappears. This gives a higher first-query cost
// than cracking but far faster convergence — the trade-off the hybrid
// algorithms in package hybrid then explore.
//
// Because adaptive merging was designed with disk-based (block-access)
// storage in mind, the implementation layers a simple I/O model on top
// of the in-memory run storage: every run or index access is charged
// PageTouches according to the configured page size, so the benches can
// reproduce the disk-oriented shape of the original evaluation without
// actual disk hardware (see DESIGN.md, substitutions).
package adaptivemerge

import (
	"sort"

	"adaptiveindex/internal/btree"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/index"
)

// Options configures an adaptive merging index.
type Options struct {
	// RunSize is the number of entries per initial sorted run,
	// standing in for the memory available to the run generator.
	RunSize int
	// PageSize is the number of entries per logical page for the I/O
	// cost model.
	PageSize int
	// Fanout is the fanout of the final B+ tree.
	Fanout int
}

// DefaultOptions returns the configuration used by the canonical
// experiments.
func DefaultOptions() Options {
	return Options{RunSize: 1 << 16, PageSize: 1 << 10, Fanout: btree.DefaultFanout}
}

func (o Options) withDefaults() Options {
	if o.RunSize <= 0 {
		o.RunSize = 1 << 16
	}
	if o.PageSize <= 0 {
		o.PageSize = 1 << 10
	}
	if o.Fanout <= 0 {
		o.Fanout = btree.DefaultFanout
	}
	return o
}

type run struct {
	pairs column.Pairs // sorted by value; entries not yet merged out
}

// Index is an adaptive merging index over one column. It is not safe
// for concurrent use.
type Index struct {
	base        []column.Value
	runs        []*run
	final       *btree.Tree
	opts        Options
	initialized bool
	c           cost.Counters
}

// New creates an adaptive merging index over the base values. Nothing
// is built until the first query arrives, matching the "as a side
// effect of query execution" rule.
func New(vals []column.Value, opts Options) *Index {
	o := opts.withDefaults()
	return &Index{base: vals, opts: o, final: btree.New(o.Fanout)}
}

// Name identifies the index kind to the benchmark harness.
func (ix *Index) Name() string { return "adaptivemerge" }

var _ index.Interface = (*Index)(nil)

// Len returns the number of tuples indexed.
func (ix *Index) Len() int { return len(ix.base) }

// Cost returns the cumulative logical work, including the work done
// inside the final B+ tree.
func (ix *Index) Cost() cost.Counters {
	c := ix.c
	c.Add(ix.final.Cost())
	return c
}

// NumRuns returns the number of runs that still hold unmerged entries.
func (ix *Index) NumRuns() int {
	n := 0
	for _, r := range ix.runs {
		if len(r.pairs) > 0 {
			n++
		}
	}
	return n
}

// RemainingInRuns returns the number of entries not yet merged into the
// final index.
func (ix *Index) RemainingInRuns() int {
	n := 0
	for _, r := range ix.runs {
		n += len(r.pairs)
	}
	return n
}

// Converged reports whether all entries have migrated into the final
// index, i.e. the adaptation overhead has disappeared.
func (ix *Index) Converged() bool {
	return ix.initialized && ix.RemainingInRuns() == 0
}

// FinalIndex exposes the final B+ tree for inspection.
func (ix *Index) FinalIndex() *btree.Tree { return ix.final }

// pages converts an entry count into logical page touches.
func (ix *Index) pages(entries int) uint64 {
	if entries <= 0 {
		return 0
	}
	return uint64((entries + ix.opts.PageSize - 1) / ix.opts.PageSize)
}

// initialize creates the sorted runs from the base column. It is
// invoked by the first query and charged to it.
func (ix *Index) initialize() {
	n := len(ix.base)
	ix.runs = make([]*run, 0, (n+ix.opts.RunSize-1)/ix.opts.RunSize)
	for start := 0; start < n; start += ix.opts.RunSize {
		end := start + ix.opts.RunSize
		if end > n {
			end = n
		}
		r := &run{pairs: make(column.Pairs, 0, end-start)}
		for i := start; i < end; i++ {
			r.pairs = append(r.pairs, column.Pair{Val: ix.base[i], Row: column.RowID(i)})
		}
		ix.c.ValuesTouched += uint64(end - start)
		ix.c.TuplesCopied += uint64(end - start)
		ix.c.Comparisons += uint64(nLogN(end - start))
		r.pairs.SortByValue()
		ix.runs = append(ix.runs, r)
	}
	// Read the base once and write every run once.
	ix.c.PageTouches += 2 * ix.pages(n)
	ix.initialized = true
}

// nLogN is the charged comparison count for sorting n elements.
func nLogN(n int) int {
	if n <= 1 {
		return 0
	}
	cmp := 0
	for m := n; m > 1; m >>= 1 {
		cmp += n
	}
	return cmp
}

// runBounds locates the contiguous span of entries in the sorted run
// that satisfy the predicate.
func (ix *Index) runBounds(r *run, pred column.Range) (int, int) {
	n := len(r.pairs)
	lo, hi := 0, n
	if pred.HasLow {
		lo = sort.Search(n, func(i int) bool {
			ix.c.Comparisons++
			if pred.IncLow {
				return r.pairs[i].Val >= pred.Low
			}
			return r.pairs[i].Val > pred.Low
		})
	}
	if pred.HasHigh {
		hi = sort.Search(n, func(i int) bool {
			ix.c.Comparisons++
			if pred.IncHigh {
				return r.pairs[i].Val > pred.High
			}
			return r.pairs[i].Val >= pred.High
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Select answers the range predicate, merging every qualifying entry
// that still lives in a run into the final index as a side effect, and
// returns the row identifiers of all qualifying tuples.
func (ix *Index) Select(pred column.Range) column.IDList {
	if pred.Empty() {
		return nil
	}
	if !ix.initialized {
		ix.initialize()
	}
	// Entries already merged are served by the final index.
	out := ix.final.Select(pred)
	ix.c.PageTouches += uint64(ix.final.Height()) + ix.pages(len(out))

	// Merge the queried key range out of every run that still has it.
	for _, r := range ix.runs {
		if len(r.pairs) == 0 {
			continue
		}
		lo, hi := ix.runBounds(r, pred)
		// Probing a run costs one page for the binary-search descent
		// even when nothing qualifies.
		ix.c.PageTouches++
		if hi == lo {
			continue
		}
		span := hi - lo
		ix.c.PageTouches += 2 * ix.pages(span) // read from run, write to final
		for i := lo; i < hi; i++ {
			p := r.pairs[i]
			out = append(out, p.Row)
			ix.final.Insert(p.Val, p.Row)
		}
		ix.c.TuplesCopied += uint64(span)
		ix.c.ValuesTouched += uint64(span)
		// Remove the merged span from the run.
		r.pairs = append(r.pairs[:lo], r.pairs[hi:]...)
	}
	return out
}

// Count answers the predicate and returns only the number of
// qualifying tuples. The merging side effect still happens: adaptive
// merging always reorganises what it reads.
func (ix *Index) Count(pred column.Range) int {
	return len(ix.Select(pred))
}

// Validate checks the structural invariants: runs sorted, no entry lost
// or duplicated between runs and the final index, and the final index
// itself consistent.
func (ix *Index) Validate() error {
	if err := ix.final.Validate(); err != nil {
		return err
	}
	if !ix.initialized {
		return nil
	}
	seen := make(map[column.RowID]bool, len(ix.base))
	count := 0
	add := func(p column.Pair) error {
		if seen[p.Row] {
			return &duplicateRowError{row: p.Row}
		}
		seen[p.Row] = true
		count++
		return nil
	}
	for _, r := range ix.runs {
		if !r.pairs.IsSortedByValue() {
			return &unsortedRunError{}
		}
		for _, p := range r.pairs {
			if err := add(p); err != nil {
				return err
			}
		}
	}
	var walkErr error
	ix.final.Ascend(func(p column.Pair) bool {
		if err := add(p); err != nil {
			walkErr = err
			return false
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	if count != len(ix.base) {
		return &entryCountError{got: count, want: len(ix.base)}
	}
	return nil
}

type duplicateRowError struct{ row column.RowID }

func (e *duplicateRowError) Error() string {
	return "adaptivemerge: row appears in more than one place"
}

type unsortedRunError struct{}

func (e *unsortedRunError) Error() string { return "adaptivemerge: run not sorted" }

type entryCountError struct{ got, want int }

func (e *entryCountError) Error() string { return "adaptivemerge: entry count mismatch" }
