// Package baseline implements the non-adaptive access paths the
// adaptive indexing techniques are compared against throughout the
// tutorial: plain scans, a fully sorted index, offline ("a priori")
// index creation, online indexing in the monitor-and-tune style, and
// soft indexes.
//
// All baselines expose the same Select/Count/Cost surface as the
// adaptive indexes, so the benchmark harness can run any of them over
// the same workloads interchangeably.
package baseline

import (
	"sort"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/index"
)

// Every baseline satisfies the canonical index contract.
var (
	_ index.Interface = (*FullScan)(nil)
	_ index.Interface = (*FullSortIndex)(nil)
	_ index.Interface = (*OnlineIndex)(nil)
	_ index.Interface = (*SoftIndex)(nil)
)

// FullScan answers every query with a complete scan of the column. It
// never builds any auxiliary structure, so it pays nothing up front and
// never gets faster — the lower bound on initialization cost and the
// upper bound on per-query cost.
type FullScan struct {
	vals []column.Value
	c    cost.Counters
}

// NewFullScan wraps the base column values. The slice is not copied.
func NewFullScan(vals []column.Value) *FullScan {
	return &FullScan{vals: vals}
}

// Name identifies the access path to the benchmark harness.
func (s *FullScan) Name() string { return "scan" }

// Len returns the number of tuples.
func (s *FullScan) Len() int { return len(s.vals) }

// Cost returns the cumulative logical work.
func (s *FullScan) Cost() cost.Counters { return s.c }

// Select returns the row identifiers of qualifying tuples.
func (s *FullScan) Select(r column.Range) column.IDList {
	var out column.IDList
	for i, v := range s.vals {
		s.c.ValuesTouched++
		s.c.Comparisons++
		if r.Contains(v) {
			out = append(out, column.RowID(i))
			s.c.TuplesCopied++
		}
	}
	return out
}

// Count returns the number of qualifying tuples.
func (s *FullScan) Count(r column.Range) int {
	n := 0
	for _, v := range s.vals {
		s.c.ValuesTouched++
		s.c.Comparisons++
		if r.Contains(v) {
			n++
		}
	}
	return n
}

// FullSortIndex is the "full index" end state: a copy of the column
// sorted by value, probed with binary search. Construction cost (the
// sort) is charged when the index is built. With BuildUpFront the sort
// happens at creation time (offline indexing); otherwise it is deferred
// to the first query, matching the TPCTC benchmark's definition of
// initialization cost incurred by the first query.
type FullSortIndex struct {
	base   []column.Value
	sorted column.Pairs
	built  bool
	c      cost.Counters
}

// NewFullSortIndex creates the index over the base values. If
// buildUpFront is true the sort is performed (and charged) immediately.
func NewFullSortIndex(vals []column.Value, buildUpFront bool) *FullSortIndex {
	ix := &FullSortIndex{base: vals}
	if buildUpFront {
		ix.build()
	}
	return ix
}

// Name identifies the access path to the benchmark harness.
func (ix *FullSortIndex) Name() string { return "fullsort" }

// Len returns the number of tuples.
func (ix *FullSortIndex) Len() int { return len(ix.base) }

// Cost returns the cumulative logical work.
func (ix *FullSortIndex) Cost() cost.Counters { return ix.c }

// Built reports whether the sorted copy exists yet.
func (ix *FullSortIndex) Built() bool { return ix.built }

func (ix *FullSortIndex) build() {
	ix.sorted = column.PairsFromValues(ix.base)
	n := len(ix.sorted)
	ix.c.TuplesCopied += uint64(n)
	ix.c.ValuesTouched += uint64(n)
	ix.c.Comparisons += uint64(nLogN(n))
	ix.sorted.SortByValue()
	ix.built = true
}

// nLogN is the charged comparison count for sorting n elements.
func nLogN(n int) int {
	if n <= 1 {
		return 0
	}
	cmp := 0
	for m := n; m > 1; m >>= 1 {
		cmp += n
	}
	return cmp
}

// bounds returns the position interval [lo, hi) of the sorted copy
// matching the predicate, using binary search.
func (ix *FullSortIndex) bounds(r column.Range) (int, int) {
	n := len(ix.sorted)
	lo, hi := 0, n
	if r.HasLow {
		lo = sort.Search(n, func(i int) bool {
			ix.c.Comparisons++
			if r.IncLow {
				return ix.sorted[i].Val >= r.Low
			}
			return ix.sorted[i].Val > r.Low
		})
	}
	if r.HasHigh {
		hi = sort.Search(n, func(i int) bool {
			ix.c.Comparisons++
			if r.IncHigh {
				return ix.sorted[i].Val > r.High
			}
			return ix.sorted[i].Val >= r.High
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Select returns the row identifiers of qualifying tuples, building the
// sorted copy first if it does not exist yet.
func (ix *FullSortIndex) Select(r column.Range) column.IDList {
	if !ix.built {
		ix.build()
	}
	lo, hi := ix.bounds(r)
	out := make(column.IDList, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, ix.sorted[i].Row)
	}
	ix.c.TuplesCopied += uint64(hi - lo)
	return out
}

// Count returns the number of qualifying tuples.
func (ix *FullSortIndex) Count(r column.Range) int {
	if !ix.built {
		ix.build()
	}
	lo, hi := ix.bounds(r)
	return hi - lo
}

// OnlineIndex models monitor-and-tune online indexing (COLT-style, and
// the "online analysis" part of the tutorial): every query is answered
// by a scan while a workload monitor counts accesses; once the count
// passes the trigger threshold the system builds a full index — paying
// the whole build inside that query — and uses it from then on.
type OnlineIndex struct {
	scan      *FullScan
	full      *FullSortIndex
	trigger   int
	queries   int
	triggered bool
}

// NewOnlineIndex creates an online-indexing access path that builds its
// full index after trigger queries have been observed. A trigger of 1
// builds on the first query; a trigger of 0 behaves like 1.
func NewOnlineIndex(vals []column.Value, trigger int) *OnlineIndex {
	if trigger < 1 {
		trigger = 1
	}
	return &OnlineIndex{
		scan:    NewFullScan(vals),
		full:    NewFullSortIndex(vals, false),
		trigger: trigger,
	}
}

// Name identifies the access path to the benchmark harness.
func (o *OnlineIndex) Name() string { return "online" }

// Len returns the number of tuples.
func (o *OnlineIndex) Len() int { return o.scan.Len() }

// Cost returns the combined work of the scanning phase and the index.
func (o *OnlineIndex) Cost() cost.Counters {
	c := o.scan.Cost()
	c.Add(o.full.Cost())
	return c
}

// Triggered reports whether the index build has happened.
func (o *OnlineIndex) Triggered() bool { return o.triggered }

// observe advances the workload monitor and reports whether the
// current query is the one that triggers the index build.
func (o *OnlineIndex) observe() bool {
	o.queries++
	if !o.triggered && o.queries >= o.trigger {
		o.triggered = true
		return true
	}
	return false
}

// Select answers the predicate, switching to the full index once the
// monitor threshold has been reached. The triggering query is still
// answered by a scan and additionally pays the full index build — the
// "additional load that interferes with query execution" the tutorial
// attributes to online indexing.
func (o *OnlineIndex) Select(r column.Range) column.IDList {
	if o.triggered {
		return o.full.Select(r)
	}
	buildNow := o.observe()
	out := o.scan.Select(r)
	if buildNow {
		o.full.build()
	}
	return out
}

// Count answers the predicate without materialising row identifiers.
func (o *OnlineIndex) Count(r column.Range) int {
	if o.triggered {
		return o.full.Count(r)
	}
	buildNow := o.observe()
	n := o.scan.Count(r)
	if buildNow {
		o.full.build()
	}
	return n
}

// SoftIndex models the soft-indexes approach (Lühring et al., SMDB
// 2007) as the tutorial contrasts it with adaptive indexing: index
// recommendation happens during query processing, and when the build is
// triggered it piggy-backs on the scan the triggering query performs
// anyway — the scanned data is fed straight into index creation, so
// only the sort (not an extra scan) is charged on top. The resulting
// index is built to completion in one step, unlike cracking.
type SoftIndex struct {
	vals      []column.Value
	sorted    column.Pairs
	trigger   int
	queries   int
	triggered bool
	c         cost.Counters
}

// NewSoftIndex creates a soft-index access path that materialises its
// index during the trigger-th query.
func NewSoftIndex(vals []column.Value, trigger int) *SoftIndex {
	if trigger < 1 {
		trigger = 1
	}
	return &SoftIndex{vals: vals, trigger: trigger}
}

// Name identifies the access path to the benchmark harness.
func (s *SoftIndex) Name() string { return "softindex" }

// Len returns the number of tuples.
func (s *SoftIndex) Len() int { return len(s.vals) }

// Cost returns the cumulative logical work.
func (s *SoftIndex) Cost() cost.Counters { return s.c }

// Triggered reports whether the index has been materialised.
func (s *SoftIndex) Triggered() bool { return s.triggered }

// Select answers the predicate. Before the trigger it scans; on the
// triggering query it scans, feeds the scan into index creation and
// charges the sort; afterwards it probes the sorted copy.
func (s *SoftIndex) Select(r column.Range) column.IDList {
	s.queries++
	if s.triggered {
		return s.probe(r)
	}
	var out column.IDList
	for i, v := range s.vals {
		s.c.ValuesTouched++
		s.c.Comparisons++
		if r.Contains(v) {
			out = append(out, column.RowID(i))
			s.c.TuplesCopied++
		}
	}
	if s.queries >= s.trigger {
		// Piggy-back: the data was just scanned, so only the sort and
		// the copy into the index are charged.
		s.sorted = column.PairsFromValues(s.vals)
		s.c.TuplesCopied += uint64(len(s.vals))
		s.c.Comparisons += uint64(nLogN(len(s.vals)))
		s.sorted.SortByValue()
		s.triggered = true
	}
	return out
}

// Count answers the predicate without materialising row identifiers.
func (s *SoftIndex) Count(r column.Range) int {
	return len(s.Select(r))
}

func (s *SoftIndex) probe(r column.Range) column.IDList {
	n := len(s.sorted)
	lo, hi := 0, n
	if r.HasLow {
		lo = sort.Search(n, func(i int) bool {
			s.c.Comparisons++
			if r.IncLow {
				return s.sorted[i].Val >= r.Low
			}
			return s.sorted[i].Val > r.Low
		})
	}
	if r.HasHigh {
		hi = sort.Search(n, func(i int) bool {
			s.c.Comparisons++
			if r.IncHigh {
				return s.sorted[i].Val > r.High
			}
			return s.sorted[i].Val >= r.High
		})
	}
	if hi < lo {
		hi = lo
	}
	out := make(column.IDList, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, s.sorted[i].Row)
	}
	s.c.TuplesCopied += uint64(hi - lo)
	return out
}
