package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
)

func scanOracle(vals []column.Value, r column.Range) column.IDList {
	var out column.IDList
	for i, v := range vals {
		if r.Contains(v) {
			out = append(out, column.RowID(i))
		}
	}
	return out
}

func randomValues(rng *rand.Rand, n, domain int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return vals
}

// selector is the common query surface of every baseline.
type selector interface {
	Name() string
	Select(column.Range) column.IDList
	Count(column.Range) int
}

func TestAllBaselinesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := randomValues(rng, 3000, 400)
	paths := []selector{
		NewFullScan(vals),
		NewFullSortIndex(vals, false),
		NewFullSortIndex(vals, true),
		NewOnlineIndex(vals, 10),
		NewSoftIndex(vals, 10),
	}
	queries := []column.Range{
		column.NewRange(10, 60),
		column.ClosedRange(100, 150),
		column.Point(42),
		column.AtLeast(380),
		column.LessThan(5),
		{},
		column.NewRange(500, 600),
	}
	for q := 0; q < 60; q++ {
		lo := column.Value(rng.Intn(420) - 10)
		queries = append(queries, column.NewRange(lo, lo+column.Value(rng.Intn(60))))
	}
	for _, p := range paths {
		for i, r := range queries {
			want := scanOracle(vals, r)
			if got := p.Select(r); !got.Equal(want) {
				t.Fatalf("%s query %d %s: got %d rows want %d", p.Name(), i, r, len(got), len(want))
			}
		}
	}
	// Count paths (fresh instances so trigger counting starts over).
	paths = []selector{
		NewFullScan(vals),
		NewFullSortIndex(vals, true),
		NewOnlineIndex(vals, 3),
		NewSoftIndex(vals, 3),
	}
	for _, p := range paths {
		for _, r := range queries[:20] {
			if got, want := p.Count(r), len(scanOracle(vals, r)); got != want {
				t.Fatalf("%s Count(%s) = %d want %d", p.Name(), r, got, want)
			}
		}
	}
}

func TestFullScanCostGrowsLinearly(t *testing.T) {
	vals := randomValues(rand.New(rand.NewSource(2)), 1000, 100)
	s := NewFullScan(vals)
	s.Count(column.NewRange(0, 50))
	after1 := s.Cost().Total()
	s.Count(column.NewRange(0, 50))
	after2 := s.Cost().Total()
	if after2-after1 < after1/2 {
		t.Fatalf("scan cost must not amortise: %d then %d", after1, after2-after1)
	}
}

func TestFullSortLazyBuild(t *testing.T) {
	vals := randomValues(rand.New(rand.NewSource(3)), 2000, 1000)
	lazy := NewFullSortIndex(vals, false)
	if lazy.Built() {
		t.Fatal("lazy index must not be built at construction")
	}
	if !lazy.Cost().IsZero() {
		t.Fatal("lazy index must not charge cost before first query")
	}
	before := lazy.Cost().Total()
	lazy.Count(column.NewRange(0, 10))
	firstQueryCost := lazy.Cost().Total() - before
	lazy.Count(column.NewRange(0, 10))
	secondQueryCost := lazy.Cost().Total() - before - firstQueryCost
	if !lazy.Built() {
		t.Fatal("index must be built after first query")
	}
	if firstQueryCost < uint64(len(vals)) {
		t.Fatalf("first query must carry the build cost, got %d", firstQueryCost)
	}
	if secondQueryCost*100 > firstQueryCost {
		t.Fatalf("later queries must be much cheaper: first %d, second %d", firstQueryCost, secondQueryCost)
	}

	eager := NewFullSortIndex(vals, true)
	if !eager.Built() {
		t.Fatal("eager index must be built at construction")
	}
	if eager.Cost().Comparisons == 0 {
		t.Fatal("eager build must charge sort comparisons")
	}
}

func TestOnlineIndexTrigger(t *testing.T) {
	vals := randomValues(rand.New(rand.NewSource(4)), 5000, 1000)
	o := NewOnlineIndex(vals, 5)
	var perQuery []uint64
	for q := 0; q < 10; q++ {
		before := o.Cost().Total()
		o.Count(column.NewRange(100, 200))
		perQuery = append(perQuery, o.Cost().Total()-before)
		if q < 4 && o.Triggered() {
			t.Fatalf("online index triggered too early at query %d", q)
		}
	}
	if !o.Triggered() {
		t.Fatal("online index never triggered")
	}
	// The triggering query (index 4) must be the most expensive one:
	// it pays scan + full build.
	maxIdx := 0
	for i, c := range perQuery {
		if c > perQuery[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != 4 {
		t.Fatalf("expected query 5 (index 4) to carry the build spike, costs: %v", perQuery)
	}
	// Post-trigger queries must be much cheaper than pre-trigger scans.
	if perQuery[9]*10 > perQuery[0] {
		t.Fatalf("post-trigger queries should be cheap: %v", perQuery)
	}
}

func TestOnlineIndexTriggerClamp(t *testing.T) {
	vals := []column.Value{3, 1, 2}
	o := NewOnlineIndex(vals, 0)
	o.Count(column.Point(1))
	if !o.Triggered() {
		t.Fatal("trigger 0 must behave like trigger 1")
	}
}

func TestSoftIndexPiggyBack(t *testing.T) {
	vals := randomValues(rand.New(rand.NewSource(5)), 5000, 1000)
	soft := NewSoftIndex(vals, 3)
	online := NewOnlineIndex(vals, 3)
	r := column.NewRange(100, 300)
	for q := 0; q < 3; q++ {
		soft.Select(r)
		online.Select(r)
	}
	if !soft.Triggered() {
		t.Fatal("soft index must have triggered")
	}
	// Soft index piggy-backs on the triggering scan, so its total work
	// after the trigger must be lower than monitor-and-tune online
	// indexing, which re-reads the data to build.
	if soft.Cost().Total() >= online.Cost().Total() {
		t.Fatalf("soft index (%d) should be cheaper than online indexing (%d)",
			soft.Cost().Total(), online.Cost().Total())
	}
	// And it must still answer correctly afterwards.
	want := scanOracle(vals, r)
	if got := soft.Select(r); !got.Equal(want) {
		t.Fatalf("post-trigger soft index wrong: %d vs %d rows", len(got), len(want))
	}
}

func TestLenAccessors(t *testing.T) {
	vals := []column.Value{1, 2, 3, 4}
	if NewFullScan(vals).Len() != 4 || NewFullSortIndex(vals, false).Len() != 4 ||
		NewOnlineIndex(vals, 2).Len() != 4 || NewSoftIndex(vals, 2).Len() != 4 {
		t.Fatal("Len accessors disagree")
	}
}

// Property: the sorted index and the scan agree on arbitrary inputs.
func TestQuickSortIndexEquivalence(t *testing.T) {
	f := func(raw []int16, lo int16, width uint8) bool {
		vals := make([]column.Value, len(raw))
		for i, v := range raw {
			vals[i] = column.Value(v)
		}
		r := column.ClosedRange(column.Value(lo), column.Value(lo)+column.Value(width))
		ix := NewFullSortIndex(vals, true)
		return ix.Select(r).Equal(scanOracle(vals, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
