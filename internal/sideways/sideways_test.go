package sideways

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptiveindex/internal/column"
)

// table is a small multi-column test fixture.
type table struct {
	a, b, c, d []column.Value
}

func makeTable(rng *rand.Rand, n, domain int) *table {
	t := &table{
		a: make([]column.Value, n),
		b: make([]column.Value, n),
		c: make([]column.Value, n),
		d: make([]column.Value, n),
	}
	for i := 0; i < n; i++ {
		t.a[i] = column.Value(rng.Intn(domain))
		t.b[i] = column.Value(rng.Intn(domain))
		t.c[i] = column.Value(rng.Intn(1000))
		t.d[i] = column.Value(i)
	}
	return t
}

func (t *table) tails() map[string][]column.Value {
	return map[string][]column.Value{"b": t.b, "c": t.c, "d": t.d}
}

// oracle computes the expected rows and projected values for a
// predicate on A.
func (t *table) oracle(r column.Range, attr string) (column.IDList, map[column.RowID]column.Value) {
	var tail []column.Value
	switch attr {
	case "a":
		tail = t.a
	case "b":
		tail = t.b
	case "c":
		tail = t.c
	case "d":
		tail = t.d
	}
	rows := column.IDList{}
	vals := make(map[column.RowID]column.Value)
	for i, v := range t.a {
		if r.Contains(v) {
			rows = append(rows, column.RowID(i))
			vals[column.RowID(i)] = tail[i]
		}
	}
	return rows, vals
}

func newSet(t *testing.T, tab *table, opts Options) *MapSet {
	t.Helper()
	ms, err := NewMapSet("a", tab.a, tab.tails(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func checkProjection(t *testing.T, tab *table, r column.Range, attr string, proj Projection) {
	t.Helper()
	wantRows, wantVals := tab.oracle(r, attr)
	if !proj.Rows.Equal(wantRows) {
		t.Fatalf("attr %s range %s: got %d rows want %d", attr, r, len(proj.Rows), len(wantRows))
	}
	if len(proj.Values) != len(proj.Rows) {
		t.Fatalf("attr %s: %d values for %d rows", attr, len(proj.Values), len(proj.Rows))
	}
	for i, row := range proj.Rows {
		if proj.Values[i] != wantVals[row] {
			t.Fatalf("attr %s row %d: value %d want %d", attr, row, proj.Values[i], wantVals[row])
		}
	}
}

func TestSelectProjectMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := makeTable(rng, 3000, 500)
	ms := newSet(t, tab, DefaultOptions())
	attrs := []string{"b", "c", "d"}
	for q := 0; q < 200; q++ {
		lo := column.Value(rng.Intn(520) - 10)
		r := column.NewRange(lo, lo+column.Value(rng.Intn(80)))
		attr := attrs[rng.Intn(len(attrs))]
		proj, err := ms.SelectProject(r, attr)
		if err != nil {
			t.Fatal(err)
		}
		checkProjection(t, tab, r, attr, proj)
		if q%40 == 0 {
			if err := ms.Validate(); err != nil {
				t.Fatalf("query %d: %v", q, err)
			}
		}
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSelectProjectHeadAttribute projects the selection attribute
// itself: no dedicated map exists for the head, so the set must answer
// from the head values any map carries, interleaved with ordinary tail
// projections that crack the maps between calls.
func TestSelectProjectHeadAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := makeTable(rng, 2000, 400)
	ms := newSet(t, tab, DefaultOptions())
	attrs := []string{"a", "b", "a", "c", "a", "d"}
	for q := 0; q < 120; q++ {
		lo := column.Value(rng.Intn(420) - 10)
		r := column.NewRange(lo, lo+column.Value(rng.Intn(60)))
		attr := attrs[q%len(attrs)]
		proj, err := ms.SelectProject(r, attr)
		if err != nil {
			t.Fatalf("attr %s: %v", attr, err)
		}
		checkProjection(t, tab, r, attr, proj)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	// Multi-projection including the head stays positionally aligned.
	rows, values, err := ms.SelectProjectMulti(column.NewRange(50, 90), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if values["a"][i] != tab.a[row] || values["b"][i] != tab.b[row] {
			t.Fatalf("row %d misaligned head/tail projection", row)
		}
	}
}

func TestSelectProjectSpecialRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := makeTable(rng, 500, 100)
	ms := newSet(t, tab, DefaultOptions())
	for _, r := range []column.Range{
		{},
		column.Point(50),
		column.AtLeast(90),
		column.LessThan(10),
		column.NewRange(40, 40),
		column.ClosedRange(-10, 300),
	} {
		proj, err := ms.SelectProject(r, "b")
		if err != nil {
			t.Fatal(err)
		}
		checkProjection(t, tab, r, "b", proj)
	}
}

func TestPartialMaterialization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := makeTable(rng, 1000, 200)
	ms := newSet(t, tab, DefaultOptions())
	if len(ms.MaterializedMaps()) != 0 {
		t.Fatal("no maps may exist before any query")
	}
	if _, err := ms.SelectProject(column.NewRange(10, 20), "b"); err != nil {
		t.Fatal(err)
	}
	if got := ms.MaterializedMaps(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("materialised maps = %v", got)
	}
	// Only the attributes actually queried get maps.
	if _, err := ms.SelectProject(column.NewRange(10, 20), "d"); err != nil {
		t.Fatal(err)
	}
	if got := ms.MaterializedMaps(); len(got) != 2 {
		t.Fatalf("materialised maps = %v", got)
	}
}

func TestMapBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := makeTable(rng, 200, 50)
	ms := newSet(t, tab, Options{MaxMaps: 1})
	if _, err := ms.SelectProject(column.NewRange(1, 10), "b"); err != nil {
		t.Fatal(err)
	}
	_, err := ms.SelectProject(column.NewRange(1, 10), "c")
	if !errors.Is(err, ErrMapBudgetExceeded) {
		t.Fatalf("expected ErrMapBudgetExceeded, got %v", err)
	}
	// The already materialised map keeps working.
	if _, err := ms.SelectProject(column.NewRange(5, 15), "b"); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := makeTable(rng, 100, 50)
	ms := newSet(t, tab, DefaultOptions())
	if _, err := ms.SelectProject(column.NewRange(1, 10), "nope"); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("expected ErrUnknownAttribute, got %v", err)
	}
}

func TestMismatchedColumnLengths(t *testing.T) {
	_, err := NewMapSet("a", []column.Value{1, 2, 3}, map[string][]column.Value{"b": {1, 2}}, DefaultOptions())
	if err == nil {
		t.Fatal("expected an error for mismatched column lengths")
	}
}

func TestSelectProjectMultiAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := makeTable(rng, 2000, 300)
	ms := newSet(t, tab, DefaultOptions())
	// Warm up the maps with different query histories so alignment has
	// real work to do: map b sees some queries, map c others.
	for q := 0; q < 20; q++ {
		lo := column.Value(rng.Intn(300))
		if _, err := ms.SelectProject(column.NewRange(lo, lo+15), "b"); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 20; q++ {
		lo := column.Value(rng.Intn(300))
		if _, err := ms.SelectProject(column.NewRange(lo, lo+25), "c"); err != nil {
			t.Fatal(err)
		}
	}
	// Now a multi-attribute query must return positionally aligned
	// projections.
	for q := 0; q < 30; q++ {
		lo := column.Value(rng.Intn(300))
		r := column.NewRange(lo, lo+40)
		rows, values, err := ms.SelectProjectMulti(r, []string{"b", "c", "d"})
		if err != nil {
			t.Fatal(err)
		}
		wantRows, wantB := tab.oracle(r, "b")
		_, wantC := tab.oracle(r, "c")
		_, wantD := tab.oracle(r, "d")
		if !rows.Equal(wantRows) {
			t.Fatalf("query %s: wrong row set", r)
		}
		for i, row := range rows {
			if values["b"][i] != wantB[row] || values["c"][i] != wantC[row] || values["d"][i] != wantD[row] {
				t.Fatalf("query %s: misaligned projection at position %d (row %d)", r, i, row)
			}
		}
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := makeTable(rng, 800, 100)
	ms := newSet(t, tab, DefaultOptions())
	r := column.NewRange(20, 60)
	rows, err := ms.SelectRows(r)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, _ := tab.oracle(r, "b")
	if !rows.Equal(wantRows) {
		t.Fatalf("got %d rows want %d", len(rows), len(wantRows))
	}
}

func TestAlignmentCatchesUpLazily(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab := makeTable(rng, 1000, 200)
	ms := newSet(t, tab, DefaultOptions())
	// Build history on map b only.
	for q := 0; q < 10; q++ {
		lo := column.Value(rng.Intn(200))
		if _, err := ms.SelectProject(column.NewRange(lo, lo+10), "b"); err != nil {
			t.Fatal(err)
		}
	}
	historyBefore := ms.HistoryLen()
	if historyBefore == 0 {
		t.Fatal("history must have accumulated")
	}
	// Map c materialises now and must catch up with that history before
	// answering, then produce correct results.
	r := column.NewRange(50, 90)
	proj, err := ms.SelectProject(r, "c")
	if err != nil {
		t.Fatal(err)
	}
	checkProjection(t, tab, r, "c", proj)
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceMakesProjectionCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := makeTable(rng, 100000, 1000000)
	ms := newSet(t, tab, DefaultOptions())
	r := column.NewRange(10000, 30000)
	before := ms.Cost().Total()
	if _, err := ms.SelectProject(r, "b"); err != nil {
		t.Fatal(err)
	}
	first := ms.Cost().Total() - before

	before = ms.Cost().Total()
	if _, err := ms.SelectProject(r, "b"); err != nil {
		t.Fatal(err)
	}
	repeat := ms.Cost().Total() - before
	if repeat*3 > first {
		t.Fatalf("repeat select-project should be much cheaper: first %d, repeat %d", first, repeat)
	}
}

// Property: on arbitrary small tables and query sequences, sideways
// cracking returns exactly the oracle projection.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(rawA, rawB []int16, seq []uint8) bool {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		a := make([]column.Value, n)
		b := make([]column.Value, n)
		for i := 0; i < n; i++ {
			a[i] = column.Value(rawA[i] % 64)
			b[i] = column.Value(rawB[i])
		}
		ms, err := NewMapSet("a", a, map[string][]column.Value{"b": b}, DefaultOptions())
		if err != nil {
			return false
		}
		tab := &table{a: a, b: b, c: make([]column.Value, n), d: make([]column.Value, n)}
		for _, q := range seq {
			lo := column.Value(int(q%64) - 32)
			r := column.NewRange(lo, lo+9)
			proj, err := ms.SelectProject(r, "b")
			if err != nil {
				return false
			}
			wantRows, wantVals := tab.oracle(r, "b")
			if !proj.Rows.Equal(wantRows) {
				return false
			}
			for i, row := range proj.Rows {
				if proj.Values[i] != wantVals[row] {
					return false
				}
			}
			if ms.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
