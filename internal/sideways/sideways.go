// Package sideways implements sideways (and partial) cracking:
// self-organizing tuple reconstruction in column stores (Idreos,
// Kersten, Manegold, SIGMOD 2009), as surveyed by the tutorial.
//
// Plain selection cracking reorganises a single column; answering a
// query that selects on attribute A but projects attributes B, C, ...
// then needs tuple reconstruction — fetching the projected values by
// row identifier, which degenerates into random access once A's cracker
// column has been reorganised. Sideways cracking solves this with
// cracker maps: for a selection attribute A and a projection attribute
// B, the map M(A→B) stores aligned (A value, B value, rowid) triples
// and is cracked on A's predicates, physically dragging the B values
// along. Qualifying tuples therefore end up contiguous in every map,
// and projection becomes a sequential copy.
//
// The package also implements the two refinements the paper and the
// tutorial highlight:
//
//   - Partial sideways cracking: maps are materialised lazily, only for
//     the projection attributes that queries actually use, respecting
//     storage bounds (MaxMaps).
//   - Adaptive alignment: every map records how much of the map set's
//     crack history it has applied; a map that was created late, or not
//     used for a while, catches up lazily the next time it is needed,
//     after which all maps of the set share an identical physical
//     order and can be combined positionally without reconstruction
//     joins.
package sideways

import (
	"errors"
	"fmt"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/crackeridx"
)

// Errors returned by the map set.
var (
	// ErrUnknownAttribute is returned when a projection attribute does
	// not exist in the table the map set was built over.
	ErrUnknownAttribute = errors.New("sideways: unknown attribute")
	// ErrMapBudgetExceeded is returned when materialising another map
	// would exceed the configured storage bound.
	ErrMapBudgetExceeded = errors.New("sideways: cracker map budget exceeded")
)

// Options configures a MapSet.
type Options struct {
	// MaxMaps bounds how many cracker maps may be materialised
	// (0 means unlimited). This models the storage bound that partial
	// sideways cracking respects.
	MaxMaps int
}

// DefaultOptions returns the configuration used by the canonical
// experiments: unlimited maps.
func DefaultOptions() Options {
	return Options{}
}

// entry is one aligned triple of a cracker map.
type entry struct {
	Head column.Value
	Tail column.Value
	Row  column.RowID
}

// crackerMap is the map M(head → tail) for one projection attribute.
type crackerMap struct {
	attr    string
	entries []entry
	idx     *crackeridx.Index
	// aligned is the number of crack-history operations already
	// applied to this map.
	aligned int
}

// MapSet is the collection of cracker maps for one selection attribute
// over one table. It is not safe for concurrent use.
type MapSet struct {
	headAttr string
	head     []column.Value
	tails    map[string][]column.Value
	// rows holds the global row identifier of each position of head
	// and the tails; nil means the identity mapping (position i is row
	// i), the common case of a map set over a full base table. A map
	// set rebuilt over the live rows of a table that has seen inserts
	// and deletes carries the survivors' original identifiers here.
	rows    []column.RowID
	maps    map[string]*crackerMap
	order   []string // materialisation order, for inspection
	history []crackOp
	opts    Options
	c       cost.Counters
}

// crackOp is one entry of the crack history shared by all maps of the
// set.
type crackOp struct {
	bound crackeridx.Bound
}

// NewMapSet creates the map set for selection attribute headAttr. head
// holds that attribute's base values; tails holds the base values of
// every attribute that may be projected (all slices must have the same
// length).
func NewMapSet(headAttr string, head []column.Value, tails map[string][]column.Value, opts Options) (*MapSet, error) {
	for attr, vals := range tails {
		if len(vals) != len(head) {
			return nil, fmt.Errorf("sideways: attribute %q has %d values, head %q has %d",
				attr, len(vals), headAttr, len(head))
		}
	}
	return &MapSet{
		headAttr: headAttr,
		head:     head,
		tails:    tails,
		maps:     make(map[string]*crackerMap),
		opts:     opts,
	}, nil
}

// NewMapSetRows creates a map set whose positions carry explicit
// global row identifiers: position i of head (and of every tail) is
// row rows[i]. This is the constructor for tables that have seen
// writes — head and tails hold the live tuples only, and rows maps
// them back to their stable identifiers.
func NewMapSetRows(headAttr string, head []column.Value, tails map[string][]column.Value, rows []column.RowID, opts Options) (*MapSet, error) {
	if len(rows) != len(head) {
		return nil, fmt.Errorf("sideways: %d row identifiers for %d head values", len(rows), len(head))
	}
	ms, err := NewMapSet(headAttr, head, tails, opts)
	if err != nil {
		return nil, err
	}
	ms.rows = rows
	return ms, nil
}

// rowAt returns the global row identifier of position i.
func (ms *MapSet) rowAt(i int) column.RowID {
	if ms.rows == nil {
		return column.RowID(i)
	}
	return ms.rows[i]
}

// HeadAttribute returns the selection attribute the set cracks on.
func (ms *MapSet) HeadAttribute() string { return ms.headAttr }

// Len returns the number of tuples.
func (ms *MapSet) Len() int { return len(ms.head) }

// Cost returns the cumulative logical work of the whole map set.
func (ms *MapSet) Cost() cost.Counters { return ms.c }

// MaterializedMaps returns the projection attributes for which cracker
// maps currently exist, in materialisation order.
func (ms *MapSet) MaterializedMaps() []string {
	return append([]string(nil), ms.order...)
}

// HistoryLen returns the number of crack operations recorded so far.
func (ms *MapSet) HistoryLen() int { return len(ms.history) }

// mapFor returns the cracker map for the given projection attribute,
// materialising it on demand (partial sideways cracking).
func (ms *MapSet) mapFor(attr string) (*crackerMap, error) {
	if m, ok := ms.maps[attr]; ok {
		return m, nil
	}
	tail, ok := ms.tails[attr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAttribute, attr)
	}
	if ms.opts.MaxMaps > 0 && len(ms.maps) >= ms.opts.MaxMaps {
		return nil, fmt.Errorf("%w: %d maps materialised, budget %d", ErrMapBudgetExceeded, len(ms.maps), ms.opts.MaxMaps)
	}
	m := &crackerMap{attr: attr, idx: crackeridx.New(), entries: make([]entry, len(ms.head))}
	for i := range ms.head {
		m.entries[i] = entry{Head: ms.head[i], Tail: tail[i], Row: ms.rowAt(i)}
	}
	ms.c.ValuesTouched += uint64(2 * len(ms.head))
	ms.c.TuplesCopied += uint64(len(ms.head))
	ms.maps[attr] = m
	ms.order = append(ms.order, attr)
	return m, nil
}

// crackMap partitions the map's entries around bound b and records the
// boundary, charging the work to the set.
func (ms *MapSet) crackMap(m *crackerMap, b crackeridx.Bound) int {
	n := len(m.entries)
	piece, pos, exact := m.idx.PieceFor(b, n)
	if exact {
		return pos
	}
	leftOf := func(v column.Value) bool {
		ms.c.Comparisons++
		ms.c.ValuesTouched++
		if b.Inclusive {
			return v <= b.Value
		}
		return v < b.Value
	}
	i, j := piece.Start, piece.End-1
	for i <= j {
		for i <= j && leftOf(m.entries[i].Head) {
			i++
		}
		for i <= j && !leftOf(m.entries[j].Head) {
			j--
		}
		if i < j {
			m.entries[i], m.entries[j] = m.entries[j], m.entries[i]
			ms.c.Swaps++
			i++
			j--
		}
	}
	m.idx.Insert(b, i)
	return i
}

// align replays every crack operation the map has not seen yet, so that
// its physical order matches every other map of the set.
func (ms *MapSet) align(m *crackerMap) {
	for ; m.aligned < len(ms.history); m.aligned++ {
		ms.crackMap(m, ms.history[m.aligned].bound)
	}
}

// boundsFor translates a range predicate into the crack operations it
// requires and the result interval accessor.
func boundsFor(r column.Range) (bounds []crackeridx.Bound) {
	if r.HasLow {
		bounds = append(bounds, core.LowerBound(r))
	}
	if r.HasHigh {
		bounds = append(bounds, core.UpperBound(r))
	}
	return bounds
}

// positionsFor returns the contiguous interval [start, end) of the
// (aligned, cracked) map that holds exactly the qualifying tuples.
func (ms *MapSet) positionsFor(m *crackerMap, r column.Range) (int, int) {
	n := len(m.entries)
	start, end := 0, n
	if r.HasLow {
		pos, ok := m.idx.Lookup(core.LowerBound(r))
		if !ok {
			pos = ms.crackMap(m, core.LowerBound(r))
		}
		start = pos
	}
	if r.HasHigh {
		pos, ok := m.idx.Lookup(core.UpperBound(r))
		if !ok {
			pos = ms.crackMap(m, core.UpperBound(r))
		}
		end = pos
	}
	if end < start {
		end = start
	}
	return start, end
}

// recordHistory appends the crack operations for predicate r to the
// shared history and marks map m as having applied them.
func (ms *MapSet) recordHistory(m *crackerMap, r column.Range) {
	for _, b := range boundsFor(r) {
		if _, exists := findOp(ms.history, b); !exists {
			ms.history = append(ms.history, crackOp{bound: b})
		}
	}
	m.aligned = len(ms.history)
}

func findOp(history []crackOp, b crackeridx.Bound) (int, bool) {
	for i, op := range history {
		if op.bound == b {
			return i, true
		}
	}
	return 0, false
}

// Projection is the result of a sideways-cracked select-project query
// for a single projection attribute: the qualifying tuples' row
// identifiers and, positionally aligned with them, the projected
// values.
type Projection struct {
	Rows   column.IDList
	Values []column.Value
}

// SelectProject answers "SELECT attr FROM t WHERE headAttr in r" using
// the cracker map M(head→attr): the map is materialised if necessary,
// aligned with the set's crack history, cracked on r, and the
// projected values are returned as one contiguous copy. Projecting the
// head attribute itself needs no dedicated map — every map carries the
// head value alongside its tail, so any map (an already materialised
// one when possible) answers it.
func (ms *MapSet) SelectProject(r column.Range, attr string) (Projection, error) {
	mapAttr, head := attr, attr == ms.headAttr
	if head {
		a, err := ms.anyAttr()
		if err != nil {
			return Projection{}, err
		}
		mapAttr = a
	}
	m, err := ms.mapFor(mapAttr)
	if err != nil {
		return Projection{}, err
	}
	if r.Empty() {
		return Projection{Rows: column.IDList{}, Values: []column.Value{}}, nil
	}
	ms.align(m)
	start, end := ms.positionsFor(m, r)
	ms.recordHistory(m, r)
	out := Projection{
		Rows:   make(column.IDList, 0, end-start),
		Values: make([]column.Value, 0, end-start),
	}
	for i := start; i < end; i++ {
		out.Rows = append(out.Rows, m.entries[i].Row)
		if head {
			out.Values = append(out.Values, m.entries[i].Head)
		} else {
			out.Values = append(out.Values, m.entries[i].Tail)
		}
	}
	ms.c.TuplesCopied += uint64(end - start)
	ms.c.ValuesTouched += uint64(end - start)
	return out, nil
}

// SelectProjectMulti answers a select-project query with several
// projection attributes. Because all maps of the set share the same
// base order and apply the same crack history, their physical orders
// are identical after alignment; the returned projections are therefore
// positionally aligned with each other and with Rows.
func (ms *MapSet) SelectProjectMulti(r column.Range, attrs []string) (column.IDList, map[string][]column.Value, error) {
	values := make(map[string][]column.Value, len(attrs))
	var rows column.IDList
	for i, attr := range attrs {
		proj, err := ms.SelectProject(r, attr)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			rows = proj.Rows
		} else if len(proj.Rows) != len(rows) {
			return nil, nil, fmt.Errorf("sideways: maps disagree on result size (%d vs %d)", len(proj.Rows), len(rows))
		}
		values[attr] = proj.Values
	}
	if rows == nil {
		rows = column.IDList{}
	}
	return rows, values, nil
}

// anyAttr picks the cheapest map to answer projection-less queries
// with: an already materialised map if one exists, otherwise the first
// projection attribute's map.
func (ms *MapSet) anyAttr() (string, error) {
	if len(ms.order) > 0 {
		return ms.order[0], nil
	}
	for a := range ms.tails {
		return a, nil
	}
	return "", fmt.Errorf("%w: map set has no attributes", ErrUnknownAttribute)
}

// SelectRows answers a pure selection on the head attribute (no
// projection).
func (ms *MapSet) SelectRows(r column.Range) (column.IDList, error) {
	attr, err := ms.anyAttr()
	if err != nil {
		return nil, err
	}
	proj, err := ms.SelectProject(r, attr)
	if err != nil {
		return nil, err
	}
	return proj.Rows, nil
}

// CountRows answers a pure count on the head attribute without
// materialising anything: after alignment and cracking, the qualifying
// tuples of a map are one contiguous interval, so the count is a
// position difference.
func (ms *MapSet) CountRows(r column.Range) (int, error) {
	attr, err := ms.anyAttr()
	if err != nil {
		return 0, err
	}
	m, err := ms.mapFor(attr)
	if err != nil {
		return 0, err
	}
	if r.Empty() {
		return 0, nil
	}
	ms.align(m)
	start, end := ms.positionsFor(m, r)
	ms.recordHistory(m, r)
	return end - start, nil
}

// NumPieces returns the total number of cracked pieces across every
// materialised map of the set.
func (ms *MapSet) NumPieces() int {
	total := 0
	for _, m := range ms.maps {
		total += len(m.idx.Pieces(len(m.entries)))
	}
	return total
}

// MapDump is the portable state of one cracker map: its entries in
// current physical order, the boundaries of its cracker index, and how
// much of the set's crack history it has applied.
type MapDump struct {
	Attr         string
	Heads, Tails []column.Value
	Rows         []column.RowID
	Boundaries   []crackeridx.Boundary
	Aligned      int
}

// Dump is the portable state of a whole map set, sufficient to rebuild
// it over the same base columns (see RestoreMapSet). It exists so the
// knowledge a workload has cracked into the maps can be persisted.
type Dump struct {
	History []crackeridx.Bound
	Maps    []MapDump
}

// Dump captures the map set's current state.
func (ms *MapSet) Dump() Dump {
	d := Dump{History: make([]crackeridx.Bound, 0, len(ms.history))}
	for _, op := range ms.history {
		d.History = append(d.History, op.bound)
	}
	for _, attr := range ms.order {
		m := ms.maps[attr]
		md := MapDump{
			Attr:       attr,
			Heads:      make([]column.Value, len(m.entries)),
			Tails:      make([]column.Value, len(m.entries)),
			Rows:       make([]column.RowID, len(m.entries)),
			Boundaries: m.idx.Boundaries(),
			Aligned:    m.aligned,
		}
		for i, e := range m.entries {
			md.Heads[i], md.Tails[i], md.Rows[i] = e.Head, e.Tail, e.Row
		}
		d.Maps = append(d.Maps, md)
	}
	return d
}

// RestoreMapSet rebuilds a map set from a dump over the same base
// columns the original was built on. The restored set is validated
// against the base data before it is returned, so a dump that does not
// belong to these columns is rejected instead of serving wrong answers.
func RestoreMapSet(headAttr string, head []column.Value, tails map[string][]column.Value, opts Options, d Dump) (*MapSet, error) {
	ms, err := NewMapSet(headAttr, head, tails, opts)
	if err != nil {
		return nil, err
	}
	for _, b := range d.History {
		ms.history = append(ms.history, crackOp{bound: b})
	}
	for _, md := range d.Maps {
		if _, ok := ms.tails[md.Attr]; !ok {
			return nil, fmt.Errorf("%w: dumped map %q", ErrUnknownAttribute, md.Attr)
		}
		if _, exists := ms.maps[md.Attr]; exists {
			return nil, fmt.Errorf("sideways: dump repeats map %q", md.Attr)
		}
		if len(md.Heads) != len(head) || len(md.Tails) != len(head) || len(md.Rows) != len(head) {
			return nil, fmt.Errorf("sideways: dumped map %q has %d/%d/%d entries, want %d",
				md.Attr, len(md.Heads), len(md.Tails), len(md.Rows), len(head))
		}
		if md.Aligned < 0 || md.Aligned > len(ms.history) {
			return nil, fmt.Errorf("sideways: dumped map %q applied %d history entries of %d",
				md.Attr, md.Aligned, len(ms.history))
		}
		m := &crackerMap{attr: md.Attr, idx: crackeridx.New(), entries: make([]entry, len(head)), aligned: md.Aligned}
		for i := range md.Heads {
			m.entries[i] = entry{Head: md.Heads[i], Tail: md.Tails[i], Row: md.Rows[i]}
		}
		for _, b := range md.Boundaries {
			if b.Pos < 0 || b.Pos > len(head) {
				return nil, fmt.Errorf("sideways: dumped map %q boundary position %d outside [0,%d]",
					md.Attr, b.Pos, len(head))
			}
			m.idx.Insert(b.Bound, b.Pos)
		}
		ms.maps[md.Attr] = m
		ms.order = append(ms.order, md.Attr)
	}
	if err := ms.Validate(); err != nil {
		return nil, fmt.Errorf("sideways: restored map set is invalid: %w", err)
	}
	return ms, nil
}

// Validate checks the invariants of every materialised map: the cracker
// index is structurally sound, every piece respects its bounds on the
// head values, each map still holds exactly the base tuples, and the
// head/tail pairing of every tuple is unchanged.
func (ms *MapSet) Validate() error {
	// posOf maps a global row identifier back to its position in the
	// base arrays, which is the identity unless explicit rows are set.
	posOf := func(row column.RowID) (int, bool) {
		i := int(row)
		return i, i < len(ms.head)
	}
	if ms.rows != nil {
		byRow := make(map[column.RowID]int, len(ms.rows))
		for i, row := range ms.rows {
			byRow[row] = i
		}
		posOf = func(row column.RowID) (int, bool) {
			i, ok := byRow[row]
			return i, ok
		}
	}
	for attr, m := range ms.maps {
		if err := m.idx.Validate(len(m.entries)); err != nil {
			return fmt.Errorf("map %q: %w", attr, err)
		}
		if len(m.entries) != len(ms.head) {
			return fmt.Errorf("map %q: %d entries, want %d", attr, len(m.entries), len(ms.head))
		}
		tail := ms.tails[attr]
		seen := make(map[column.RowID]bool, len(m.entries))
		for _, e := range m.entries {
			if seen[e.Row] {
				return fmt.Errorf("map %q: duplicate row %d", attr, e.Row)
			}
			seen[e.Row] = true
			pos, ok := posOf(e.Row)
			if !ok {
				return fmt.Errorf("map %q: unknown row %d", attr, e.Row)
			}
			if ms.head[pos] != e.Head {
				return fmt.Errorf("map %q: row %d head %d, want %d", attr, e.Row, e.Head, ms.head[pos])
			}
			if tail[pos] != e.Tail {
				return fmt.Errorf("map %q: row %d tail %d, want %d", attr, e.Row, e.Tail, tail[pos])
			}
		}
		for _, piece := range m.idx.Pieces(len(m.entries)) {
			for i := piece.Start; i < piece.End; i++ {
				v := m.entries[i].Head
				if piece.HasLower && leftOfBound(v, piece.Lower) {
					return fmt.Errorf("map %q: position %d violates lower bound %s", attr, i, piece.Lower)
				}
				if piece.HasUpper && !leftOfBound(v, piece.Upper) {
					return fmt.Errorf("map %q: position %d violates upper bound %s", attr, i, piece.Upper)
				}
			}
		}
	}
	return nil
}

func leftOfBound(v column.Value, b crackeridx.Bound) bool {
	if b.Inclusive {
		return v <= b.Value
	}
	return v < b.Value
}
