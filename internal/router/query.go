package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
)

// gathered is the outcome of one read fan-out.
type gathered struct {
	merged  shard.StripeResult
	path    string
	missing []int       // nodes skipped because they were already down
	failed  []nodeError // nodes believed up whose request failed
	badReq  *api.StatusError
	// spans holds each answering node's decoded trace root, indexed by
	// node, for traced queries.
	spans []*trace.Span
}

// queryNode runs one read against one node with bounded
// exponential-backoff retries — reads are idempotent, so retrying a
// timed-out request cannot double-apply anything.
func (r *Router) queryNode(ctx context.Context, nd *node, q api.QueryRequest) (*api.QueryResult, error) {
	backoff := r.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			select {
			case <-ctx.Done():
				return nil, lastErr
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		res, err := nd.client.Query(actx, q)
		cancel()
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// gather fans one read out to every serving node and merges the
// stripes. rec, when non-nil, must only be touched by this goroutine.
func (r *Router) gather(ctx context.Context, q api.QueryRequest, countOnly bool, rec *trace.Recorder) gathered {
	n := len(r.nodes)
	upstream := q
	upstream.Trace = rec != nil
	if rec != nil {
		rec.Begin(trace.PhaseNodeGather)
	}
	results := make([]*api.QueryResult, n)
	errs := make([]error, n)
	skipped := make([]bool, n)
	var wg sync.WaitGroup
	for i, nd := range r.nodes {
		if nd.state.Load() == stateDown {
			skipped[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, nd *node) {
			defer wg.Done()
			nd.queries.Add(1)
			results[i], errs[i] = r.queryNode(ctx, nd, upstream)
			if errs[i] != nil {
				nd.errors.Add(1)
			}
		}(i, nd)
	}
	wg.Wait()

	var g gathered
	for i, nd := range r.nodes {
		switch {
		case skipped[i]:
			g.missing = append(g.missing, i)
		case errs[i] != nil:
			var se *api.StatusError
			if errors.As(errs[i], &se) && se.Status < 500 {
				g.badReq = se
				continue
			}
			// A node we believed up failed the read: degrade it and
			// fail the whole request fast — silently answering without
			// a live stripe would turn a fault into wrong results.
			r.registerFailure(nd)
			g.failed = append(g.failed, nodeError{node: nd, err: errs[i]})
		}
	}
	if g.badReq != nil || len(g.failed) > 0 {
		if rec != nil {
			rec.End(trace.Work{})
		}
		return g
	}

	parts := make([]shard.StripeResult, n)
	for i, res := range results {
		if res == nil {
			continue // skipped node: its stripe contributes nothing
		}
		parts[i] = shard.StripeResult{Count: res.Count, Rows: res.Rows, Columns: res.Columns}
		if g.path == "" {
			g.path = res.Path
		}
	}
	g.merged = shard.MergeStriped(parts, q.Project, countOnly)
	g.missing = sortedInts(g.missing)

	if rec != nil {
		// Mirror shard.Cluster's gather-span contract: the node_gather
		// span's children are the slowest node's server-side phases (the
		// ones on the query's critical path) and its work delta is the
		// summed work of all nodes, so span work still reconciles with
		// the movement of the cluster's summed counters.
		g.spans = make([]*trace.Span, n)
		for i, res := range results {
			if res == nil || len(res.Trace) == 0 {
				continue
			}
			var root trace.Span
			if err := json.Unmarshal(res.Trace, &root); err == nil {
				g.spans[i] = &root
			}
		}
		var slowest *trace.Span
		var w trace.Work
		for _, sp := range g.spans {
			if sp == nil {
				continue
			}
			w.Add(sp.SumWork())
			if slowest == nil || sp.DurUs > slowest.DurUs {
				slowest = sp
			}
		}
		if slowest != nil {
			rec.Import(slowest.Spans)
		}
		rec.End(w)
	}
	return g
}

// gatherError formats the fail-fast 503 message for a lost node.
func gatherError(failed []nodeError) string {
	if len(failed) == 1 {
		f := failed[0]
		return fmt.Sprintf("node %d (%s) unreachable: %v", f.node.id, f.node.addr, f.err)
	}
	return fmt.Sprintf("%d nodes unreachable (first: node %d: %v)", len(failed), failed[0].node.id, failed[0].err)
}
