package router

import (
	"context"
	"fmt"
	"net/http"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/shard"
)

// writeError carries a write failure plus the applied prefix — ops
// apply in order and whatever was forwarded before the failure stays
// applied, so the client must get the assigned identifiers back.
type writeError struct {
	status   int
	msg      string
	nodes    []api.NodeError
	inserted []column.RowID
	deleted  int
}

func (e *writeError) Error() string { return e.msg }

// apply routes one update request's ops row by row to their owning
// nodes. The caller holds no locks; apply serialises on r.mu for the
// whole request so global row identifiers are assigned densely in
// submission order (the striping contract's append rule).
func (r *Router) apply(ctx context.Context, ops []api.WriteOp) (api.UpdateResponse, *writeError) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.nodes)
	var out api.UpdateResponse
	// pending tracks the last engine-wide buffered-update depth each
	// touched node reported, so the response can sum a consistent view.
	pending := make(map[int]api.UpdateResponse, n)
	fail := func(nd *node, status int, msg string) *writeError {
		we := &writeError{status: status, msg: msg, inserted: out.Inserted, deleted: out.Deleted}
		if nd != nil {
			we.nodes = r.errorBreakdown([]nodeError{{node: nd, err: fmt.Errorf("%s", msg)}})
		}
		return we
	}
	forward := func(nd *node, u api.UpdateRequest) (api.UpdateResponse, error) {
		actx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
		ur, err := nd.client.Update(actx, u)
		if err != nil {
			nd.errors.Add(1)
			return ur, err
		}
		pending[nd.id] = ur
		return ur, nil
	}
	for _, op := range ops {
		table := op.Table
		if table == "" {
			table = r.defaultTable
		}
		for _, row := range op.Insert {
			g, known := r.nrows[table]
			owner := 0
			if known {
				owner = shard.Owner(g, n)
			}
			// An unknown table routes to node 0, which produces the
			// canonical 400 for it.
			nd := r.nodes[owner]
			if nd.state.Load() == stateDown {
				return out, fail(nd, http.StatusServiceUnavailable,
					fmt.Sprintf("stripe owner node %d (%s) is down; insert refused", nd.id, nd.addr))
			}
			u, err := api.InsertOp(table, [][]column.Value{row})
			if err != nil {
				return out, fail(nil, http.StatusBadRequest, err.Error())
			}
			ur, err := forward(nd, u)
			if err != nil {
				// A failed write is NOT retried: the request may have
				// been applied before the response was lost, and
				// double-appending would shift the stripe forever.
				status := http.StatusServiceUnavailable
				if se, ok := err.(*api.StatusError); ok {
					status = se.Status
					if status < 500 {
						// The node's verdict on the request (unknown
						// table, wrong arity), not a node failure.
						return out, fail(nd, status, fmt.Sprintf("insert: %v", err))
					}
				}
				r.registerFailure(nd)
				return out, fail(nd, status,
					fmt.Sprintf("insert to node %d (%s) failed: %v", nd.id, nd.addr, err))
			}
			if len(ur.Inserted) != 1 || ur.Inserted[0] != column.RowID(shard.Local(g, n)) {
				return out, fail(nd, http.StatusInternalServerError,
					fmt.Sprintf("stripe invariant broken: table %q global row %d landed at local %v on node %d, want %d",
						table, g, ur.Inserted, nd.id, shard.Local(g, n)))
			}
			r.nrows[table] = g + 1
			sh := nd.shape[table]
			sh.rows++
			sh.live++
			nd.shape[table] = sh
			out.Inserted = append(out.Inserted, column.RowID(g))
		}
		for _, id := range op.Delete {
			owner := shard.Owner(int(id), n)
			nd := r.nodes[owner]
			if nd.state.Load() == stateDown {
				return out, fail(nd, http.StatusServiceUnavailable,
					fmt.Sprintf("stripe owner node %d (%s) is down; delete of row %d refused", nd.id, nd.addr, id))
			}
			u, err := api.DeleteOp(table, []column.RowID{id / column.RowID(n)})
			if err != nil {
				return out, fail(nil, http.StatusBadRequest, err.Error())
			}
			ur, err := forward(nd, u)
			if err != nil {
				status := http.StatusServiceUnavailable
				if se, ok := err.(*api.StatusError); ok {
					status = se.Status
					if status < 500 {
						// 400/404 are the node's verdict on the row, not
						// a node failure.
						return out, fail(nd, status, fmt.Sprintf("delete of row %d: %v", id, err))
					}
				}
				r.registerFailure(nd)
				return out, fail(nd, status,
					fmt.Sprintf("delete to node %d (%s) failed: %v", nd.id, nd.addr, err))
			}
			out.Deleted += ur.Deleted
			if ur.Deleted > 0 {
				sh := nd.shape[table]
				sh.live -= ur.Deleted
				nd.shape[table] = sh
			}
		}
	}
	for _, ur := range pending {
		out.PendingInserts += ur.PendingInserts
		out.PendingDeletes += ur.PendingDeletes
	}
	return out, nil
}
