package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/wire"
)

// Handler returns the router's HTTP surface — the same contract a
// single crackserve node speaks, so clients (crackload included) work
// unchanged against a cluster:
//
//	POST /query         scatter-gather one query across the nodes
//	POST /update        route inserts/deletes to their stripe owners
//	GET  /stats         merged cluster view (api.Stats + per-node rows)
//	GET  /metrics       Prometheus text exposition (crackrouter_*)
//	GET  /healthz       ready iff every node is up
//	GET  /fingerprint   fingerprint of the merged logical catalog
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", methodGate(http.MethodPost, r.handleQuery))
	mux.Handle("/update", methodGate(http.MethodPost, r.handleUpdate))
	mux.Handle("/stats", methodGate(http.MethodGet, r.handleStats))
	mux.Handle("/metrics", methodGate(http.MethodGet, r.handleMetrics))
	mux.Handle("/healthz", methodGate(http.MethodGet, r.handleHealthz))
	mux.Handle("/fingerprint", methodGate(http.MethodGet, func(w http.ResponseWriter, _ *http.Request) {
		st := r.clusterStats()
		writeJSON(w, http.StatusOK, api.FingerprintResponse{
			Fingerprint: api.CatalogFingerprint(st.Tables),
		})
	}))
	return mux
}

// methodGate rejects every method but the given one with 405 and an
// Allow header.
func methodGate(method string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != method {
			w.Header().Set("Allow", method)
			writeJSON(w, http.StatusMethodNotAllowed, api.ErrorResponse{Error: method + " required"})
			return
		}
		h(w, req)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("router: response encode failed: %v", err)
	}
}

// wantTrace mirrors the server's trace opt-in: "trace":true in the
// body or an X-Crack-Trace header.
func wantTrace(q api.QueryRequest, req *http.Request) bool {
	if q.Trace {
		return true
	}
	switch v := req.Header.Get("X-Crack-Trace"); v {
	case "", "0", "false":
		return false
	default:
		return true
	}
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	q, err := api.DecodeQuery(req.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: fmt.Sprintf("invalid query: %v", err)})
		return
	}
	countOnly := q.Op == "" || q.Op == "count"
	if !countOnly && q.Op != "select" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: fmt.Sprintf("unknown op %q (want count or select)", q.Op)})
		return
	}
	binary, blockRows := wire.Negotiate(req.Header.Get("Accept"))
	var rec *trace.Recorder
	if wantTrace(q, req) {
		rec = trace.NewRecorder()
		r.traced.Add(1)
	}
	r.queries.Add(1)
	start := time.Now()
	g := r.gather(req.Context(), q, countOnly, rec)
	switch {
	case g.badReq != nil:
		r.errs.Add(1)
		writeJSON(w, g.badReq.Status, api.ErrorResponse{Error: g.badReq.Resp.Error})
		return
	case len(g.failed) > 0:
		// Fail fast: a stripe owner we believed up is unreachable.
		r.errs.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{
			Error: gatherError(g.failed),
			Nodes: r.errorBreakdown(g.failed),
		})
		return
	case len(g.missing) == len(r.nodes):
		r.errs.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{
			Error: "all nodes down",
			Nodes: r.errorBreakdown(nil),
		})
		return
	}
	r.hist.Observe(time.Since(start))
	partial := len(g.missing) > 0
	if partial {
		r.partials.Add(1)
	}
	if binary && !partial {
		// Partial answers carry flags the binary format has no frame
		// for, so they fall back to JSON — like errors, they are for
		// clients that look, not for blind column decoders.
		r.writeBinary(w, q, g, blockRows, start, rec)
		return
	}
	resp := api.QueryResponse{
		Count:        g.merged.Count,
		Rows:         g.merged.Rows,
		Columns:      g.merged.Columns,
		Path:         g.path,
		LatencyUs:    time.Since(start).Microseconds(),
		Partial:      partial,
		MissingNodes: g.missing,
	}
	if rec != nil {
		rec.Begin(trace.PhaseEncode)
		rec.End(trace.Work{})
		root := rec.Finish()
		if spanJSON, err := json.Marshal(root); err == nil {
			resp.Trace = spanJSON
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeBinary streams one merged result in the binary columnar format,
// exactly as a single node would.
func (r *Router) writeBinary(w http.ResponseWriter, q api.QueryRequest, g gathered, blockRows int, start time.Time, rec *trace.Recorder) {
	w.Header().Set("Content-Type", wire.ContentType)
	enc := wire.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	if rec != nil {
		rec.Begin(trace.PhaseEncode)
	}
	h := wire.Header{Count: g.merged.Count, Path: g.path, Columns: q.Project}
	if err := enc.WriteHeader(h); err != nil {
		r.encFailed(err)
		return
	}
	res := engine.Result{Count: g.merged.Count, Rows: g.merged.Rows, Columns: g.merged.Columns}
	err := res.Blocks(q.Project, blockRows, func(rows column.IDList, cols [][]column.Value) error {
		if err := enc.WriteBlock(rows, cols); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		r.encFailed(err)
		return
	}
	if rec != nil {
		rec.End(trace.Work{})
		root := rec.Finish()
		spanJSON, err := json.Marshal(root)
		if err == nil {
			err = enc.WriteTrace(spanJSON)
		}
		if err != nil {
			r.encFailed(err)
			return
		}
	}
	f := wire.Footer{TotalRows: uint64(len(g.merged.Rows)), LatencyUs: uint64(time.Since(start).Microseconds())}
	if err := enc.WriteFooter(f); err != nil {
		r.encFailed(err)
	}
}

func (r *Router) encFailed(err error) {
	r.encFailures.Add(1)
	log.Printf("router: response encode failed: %v", err)
}

func (r *Router) handleUpdate(w http.ResponseWriter, req *http.Request) {
	u, err := api.DecodeUpdate(req.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: fmt.Sprintf("invalid update: %v", err)})
		return
	}
	ops, err := u.WriteOps()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: err.Error()})
		return
	}
	start := time.Now()
	reply, we := r.apply(req.Context(), ops)
	if we != nil {
		r.errs.Add(1)
		writeJSON(w, we.status, struct {
			api.ErrorResponse
			Inserted []column.RowID `json:"inserted,omitempty"`
			Deleted  int            `json:"deleted"`
		}{api.ErrorResponse{Error: we.msg, Nodes: we.nodes}, we.inserted, we.deleted})
		return
	}
	r.writes.Add(1)
	reply.LatencyUs = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, reply)
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var down []api.NodeError
	for _, nd := range r.nodes {
		if nd.state.Load() != stateUp {
			down = append(down, api.NodeError{Node: nd.id, Addr: nd.addr, State: nd.stateName()})
		}
	}
	body := struct {
		api.Health
		Nodes []api.NodeError `json:"nodes,omitempty"`
	}{api.Health{OK: true, Ready: len(down) == 0}, down}
	status := http.StatusOK
	if len(down) > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// clusterStats assembles the merged cluster view: per-up-node /stats
// fetched concurrently, tables and counters summed across stripes, and
// a per-node breakdown. Down nodes contribute the router's bookkeeping
// of their stripe (rows/live) but no live counters.
func (r *Router) clusterStats() api.Stats {
	n := len(r.nodes)
	stats := make([]*api.Stats, n)
	var wg sync.WaitGroup
	for i, nd := range r.nodes {
		if nd.state.Load() == stateDown {
			continue
		}
		wg.Add(1)
		go func(i int, nd *node) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
			defer cancel()
			if st, err := nd.client.Stats(ctx); err == nil {
				stats[i] = &st
			}
		}(i, nd)
	}
	wg.Wait()

	r.mu.Lock()
	tables := make([]api.TableStats, 0, len(r.tableOrder))
	for _, name := range r.tableOrder {
		t := api.TableStats{Table: name, Columns: r.columns[name], MergePolicy: r.mergePolicy[name]}
		for _, nd := range r.nodes {
			sh := nd.shape[name]
			t.Rows += sh.rows
			t.LiveRows += sh.live
		}
		tables = append(tables, t)
	}
	nodeRows := make([]api.NodeStats, n)
	for i, nd := range r.nodes {
		ns := api.NodeStats{
			Node: i, Addr: nd.addr, State: nd.stateName(),
			Queries: nd.queries.Load(), Errors: nd.errors.Load(),
		}
		for _, name := range r.tableOrder {
			sh := nd.shape[name]
			ns.Rows += sh.rows
			ns.LiveRows += sh.live
		}
		ns.Fingerprint = r.expectedFingerprint(nd)
		nodeRows[i] = ns
	}
	r.mu.Unlock()

	out := api.Stats{
		Tables:        tables,
		Mode:          "router",
		DefaultTable:  r.defaultTable,
		DefaultColumn: r.defaultCol,
		DefaultPath:   r.defaultPath,
		Queries:       r.queries.Load(),
		Writes:        r.writes.Load(),
		TracedQueries: r.traced.Load(),
		Latency:       r.hist.Snapshot(),
		Nodes:         nodeRows,
		UptimeSeconds: time.Since(r.started).Seconds(),
	}
	out.EncodeFailures = r.encFailures.Load()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out.Process = api.ProcessStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		GCPauseTotalUs: ms.PauseTotalNs / 1000,
		NumGC:          ms.NumGC,
	}
	for i, st := range stats {
		if st == nil {
			continue
		}
		out.WorkTotal += st.WorkTotal
		out.Shards += st.Shards
		out.Batches += st.Batches
		out.SharedScans += st.SharedScans
		out.Rejected += st.Rejected
		ws := st.WriteState
		out.WriteState.Inserts += ws.Inserts
		out.WriteState.Deletes += ws.Deletes
		out.WriteState.Invalidations += ws.Invalidations
		out.WriteState.PendingInserts += ws.PendingInserts
		out.WriteState.PendingDeletes += ws.PendingDeletes
		out.WriteState.MergedInserts += ws.MergedInserts
		out.WriteState.MergedDeletes += ws.MergedDeletes
		s := st.Structures
		out.Structures.Crackers += s.Crackers
		out.Structures.MapSets += s.MapSets
		out.Structures.Parallels += s.Parallels
		out.Structures.CrackerPieces += s.CrackerPieces
		out.Structures.MapPieces += s.MapPieces
		out.Structures.ParallelPieces += s.ParallelPieces
		out.Structures.Pieces += s.Pieces
		nodeRows[i].WorkTotal = st.WorkTotal
		if out.Planner == nil {
			// Every node sees the same query stream over the same data
			// distribution, so one node's planner is representative —
			// the same argument shard.Cluster makes for shard 0.
			out.Planner = st.Planner
		}
	}
	return out
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.clusterStats())
}

// handleMetrics renders the router's own counters plus the summed
// cluster view in the Prometheus text exposition, prefixed
// crackrouter_ so a scrape of router and nodes never collides.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := r.clusterStats()
	var b strings.Builder

	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(&b, "%s %s\n", name, promFloat(v))
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		fmt.Fprintf(&b, "%s %s\n", name, promFloat(v))
	}

	counter("crackrouter_queries_total", "Read queries routed.", float64(st.Queries))
	counter("crackrouter_writes_total", "Write requests routed.", float64(st.Writes))
	counter("crackrouter_errors_total", "Requests answered with an error.", float64(r.errs.Load()))
	counter("crackrouter_partials_total", "Reads answered without every stripe.", float64(r.partials.Load()))
	counter("crackrouter_retries_total", "Per-node read retries issued.", float64(r.retries.Load()))
	counter("crackrouter_readmissions_total", "Down nodes re-admitted after a matching fingerprint.", float64(r.readmits.Load()))
	counter("crackrouter_traced_queries_total", "Queries that requested span tracing.", float64(st.TracedQueries))
	counter("crackrouter_encode_failures_total", "Responses whose encode or write to the client failed.", float64(st.EncodeFailures))
	counter("crackrouter_cluster_work_units_total", "Cluster-wide cumulative logical work, summed over serving nodes.", float64(st.WorkTotal))

	up := 0
	for _, nd := range r.nodes {
		if nd.state.Load() == stateUp {
			up++
		}
	}
	gauge("crackrouter_nodes", "Backend nodes configured.", float64(len(r.nodes)))
	gauge("crackrouter_nodes_up", "Backend nodes currently up.", float64(up))
	gauge("crackrouter_cluster_shards", "Engine shards answering each query, summed over serving nodes.", float64(st.Shards))
	gauge("crackrouter_cluster_cracked_pieces", "Cracked pieces across serving nodes.", float64(st.Structures.Pieces))
	gauge("crackrouter_uptime_seconds", "Seconds since the router started.", st.UptimeSeconds)

	fmt.Fprintf(&b, "# HELP crackrouter_node_queries_total Reads fanned to each node.\n# TYPE crackrouter_node_queries_total counter\n")
	for _, ns := range st.Nodes {
		fmt.Fprintf(&b, "crackrouter_node_queries_total{node=%q} %d\n", strconv.Itoa(ns.Node), ns.Queries)
	}
	fmt.Fprintf(&b, "# HELP crackrouter_node_errors_total Failed requests per node.\n# TYPE crackrouter_node_errors_total counter\n")
	for _, ns := range st.Nodes {
		fmt.Fprintf(&b, "crackrouter_node_errors_total{node=%q} %d\n", strconv.Itoa(ns.Node), ns.Errors)
	}
	fmt.Fprintf(&b, "# HELP crackrouter_node_up Node state (1 up, 0.5 degraded, 0 down).\n# TYPE crackrouter_node_up gauge\n")
	for _, nd := range r.nodes {
		v := 0.0
		switch nd.state.Load() {
		case stateUp:
			v = 1
		case stateDegraded:
			v = 0.5
		}
		fmt.Fprintf(&b, "crackrouter_node_up{node=%q} %s\n", strconv.Itoa(nd.id), promFloat(v))
	}
	fmt.Fprintf(&b, "# HELP crackrouter_node_live_rows Live tuples in each node's stripe.\n# TYPE crackrouter_node_live_rows gauge\n")
	for _, ns := range st.Nodes {
		fmt.Fprintf(&b, "crackrouter_node_live_rows{node=%q} %d\n", strconv.Itoa(ns.Node), ns.LiveRows)
	}

	fmt.Fprintf(&b, "# HELP crackrouter_query_latency_seconds Router-side read latency, fan-out and merge included.\n# TYPE crackrouter_query_latency_seconds histogram\n")
	r.hist.WriteProm(&b, "crackrouter_query_latency_seconds", "")

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := io.WriteString(w, b.String()); err != nil {
		r.encFailed(err)
	}
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
