// Package router is the multi-node half of scale-out: a thin,
// stateless-by-design front that fans /query and /update out to N
// crackserve backend nodes, each hosting one row stripe of the same
// logical catalog, and merges the per-node answers into one.
//
// The striping contract is exactly internal/shard's, lifted over the
// wire: global row g lives on node g mod N at local identifier g div N,
// appends in global order land at the next local slot of the owning
// node, and N=1 is the identity — a router over one backend is
// byte-identical to that backend on every deterministic cost counter.
// Every read fans out to all nodes (a stripe holds a slice of every
// value range), counts are summed and ID-lists/projections gathered in
// node order by shard.MergeStriped; writes route to the single owning
// node, serialised by the router so the global row space stays densely
// striped.
//
// Robustness is first-class. Each node is health-probed on an interval
// and walks an up → degraded → down state machine: a failed probe (or
// data-path failure) degrades it, DownAfter consecutive failures take
// it down, and a recovered node is re-admitted only once its health
// probe passes AND its catalog fingerprint matches what the router
// expects its stripe to hold — which proves its v5 snapshot restored
// the rows it owned. Reads retry idempotently with bounded exponential
// backoff; a read that loses a node believed up fails fast with 503 and
// a per-node error breakdown, while nodes already marked down are
// skipped and the answer is explicitly partial. Writes to a down
// stripe owner are refused with 503 naming the node — never retried,
// never rerouted — so the fingerprint the router expects of the dead
// node stays valid until it returns.
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/server"
)

// Node states.
const (
	stateUp int32 = iota
	stateDegraded
	stateDown
)

func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// Config configures a Router.
type Config struct {
	// Nodes lists the backend crackserve addresses, in stripe order:
	// Nodes[s] owns global rows g with g mod N == s.
	Nodes []string
	// Proto is the router→backend query protocol: "json" (default) or
	// "binary"; Block is the streamed block size for binary.
	Proto string
	Block int
	// Sessions sizes each backend client's keep-alive pool (default 64).
	Sessions int
	// Timeout bounds each backend request (default 5s).
	Timeout time.Duration
	// Retries is how many times an idempotent read against one node is
	// retried after its first failure (default 2); RetryBackoff is the
	// initial backoff, doubled per retry (default 25ms).
	Retries      int
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe cadence (default 250ms);
	// DownAfter is how many consecutive probe failures take a degraded
	// node down (default 2).
	ProbeInterval time.Duration
	DownAfter     int
}

func (c Config) withDefaults() Config {
	if c.Proto == "" {
		c.Proto = "json"
	}
	if c.Sessions < 1 {
		c.Sessions = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.DownAfter < 1 {
		c.DownAfter = 2
	}
	return c
}

// tableShape is the router's bookkeeping for one table on one node:
// enough to recompute the node's catalog fingerprint locally.
type tableShape struct {
	rows int // row slots (tombstones included)
	live int // live tuples
}

// node is one backend and its health state.
type node struct {
	id     int
	addr   string
	client *api.Client

	state atomic.Int32
	fails atomic.Int32 // consecutive probe/data-path failures

	queries atomic.Uint64
	errors  atomic.Uint64

	// shape is the router's view of the node's stripe (guarded by the
	// router's mu): table name → row population. The expected
	// fingerprint for re-admission is computed from it, so it must
	// track every write the router routes to this node.
	shape map[string]tableShape
}

func (n *node) stateName() string { return stateName(n.state.Load()) }

// Router fans queries and updates out to N striped backends. Construct
// with New; the zero value is not usable. Safe for concurrent use:
// reads fan out concurrently, writes are serialised by an internal
// mutex (the global row space demands it), health probing runs in a
// background goroutine until Close.
type Router struct {
	cfg   Config
	nodes []*node

	// mu guards nrows, per-node shapes, and write forwarding: global
	// row identifiers are assigned g = nrows[table], nrows[table]+1, …
	// in submission order, so writes must not interleave.
	mu    sync.Mutex
	nrows map[string]int

	// Catalog facts learned at boot (schema is identical across nodes).
	columns      map[string][]string // table → column names
	mergePolicy  map[string]string
	tableOrder   []string
	defaultTable string
	defaultCol   string
	defaultPath  string

	hist        server.Histogram // client-observed read latency
	queries     atomic.Uint64
	writes      atomic.Uint64
	errs        atomic.Uint64
	partials    atomic.Uint64
	retries     atomic.Uint64
	readmits    atomic.Uint64
	encFailures atomic.Uint64
	traced      atomic.Uint64

	started  time.Time
	probeCtx context.Context
	stop     context.CancelFunc
	probes   sync.WaitGroup
}

// New connects to the configured backends, verifies they form a
// consistent striped cluster, and starts health probing. Every node
// must be up and ready at boot: the striping contract cannot be
// learned from a partial cluster.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("router: need at least one backend node")
	}
	r := &Router{
		cfg:         cfg,
		nrows:       make(map[string]int),
		columns:     make(map[string][]string),
		mergePolicy: make(map[string]string),
		started:     time.Now(),
	}
	n := len(cfg.Nodes)
	for i, addr := range cfg.Nodes {
		nd := &node{
			id:   i,
			addr: addr,
			client: api.NewClient(addr, api.ClientOptions{
				Proto: cfg.Proto, Block: cfg.Block,
				Sessions: cfg.Sessions, Timeout: cfg.Timeout,
			}),
			shape: make(map[string]tableShape),
		}
		r.nodes = append(r.nodes, nd)
	}
	// Learn each node's catalog and verify the cluster is consistent.
	for i, nd := range r.nodes {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
		h, err := nd.client.Health(ctx)
		if err == nil && !(h.OK && h.Ready) {
			err = fmt.Errorf("not ready")
		}
		var st api.Stats
		if err == nil {
			st, err = nd.client.Stats(ctx)
		}
		cancel()
		if err != nil {
			return nil, fmt.Errorf("router: node %d (%s): %w", i, nd.addr, err)
		}
		if i == 0 {
			r.defaultTable = st.DefaultTable
			r.defaultCol = st.DefaultColumn
			r.defaultPath = st.DefaultPath
			for _, t := range st.Tables {
				r.tableOrder = append(r.tableOrder, t.Table)
				r.columns[t.Table] = t.Columns
				r.mergePolicy[t.Table] = t.MergePolicy
			}
		}
		seen := make(map[string]bool, len(st.Tables))
		for _, t := range st.Tables {
			cols, ok := r.columns[t.Table]
			if !ok || len(cols) != len(t.Columns) {
				return nil, fmt.Errorf("router: node %d (%s) serves a different catalog (table %q)", i, nd.addr, t.Table)
			}
			for ci, c := range cols {
				if t.Columns[ci] != c {
					return nil, fmt.Errorf("router: node %d (%s) serves a different schema for table %q", i, nd.addr, t.Table)
				}
			}
			seen[t.Table] = true
			nd.shape[t.Table] = tableShape{rows: t.Rows, live: t.LiveRows}
			r.nrows[t.Table] += t.Rows
		}
		if len(seen) != len(r.tableOrder) {
			return nil, fmt.Errorf("router: node %d (%s) serves %d tables, node 0 serves %d", i, nd.addr, len(seen), len(r.tableOrder))
		}
	}
	// Verify the row populations actually form stripes of one global
	// space: node s must hold ceil((nr-s)/n) slots of each table.
	for _, name := range r.tableOrder {
		nr := r.nrows[name]
		for s, nd := range r.nodes {
			want := (nr - s + n - 1) / n
			if want < 0 {
				want = 0
			}
			if got := nd.shape[name].rows; got != want {
				return nil, fmt.Errorf("router: table %q: node %d holds %d row slots, want %d for stripe %d/%d — nodes are not stripes of one catalog (start each crackserve with -stripe s/%d over the same -tables)",
					name, s, got, want, s, n, n)
			}
		}
	}
	r.probeCtx, r.stop = context.WithCancel(context.Background())
	r.probes.Add(1)
	go r.probeLoop()
	return r, nil
}

// Close stops health probing. In-flight requests finish normally.
func (r *Router) Close() {
	r.stop()
	r.probes.Wait()
}

// Nodes returns the node count.
func (r *Router) Nodes() int { return len(r.nodes) }

// expectedFingerprint computes what a node's catalog fingerprint must
// be for its stripe, from the router's own write bookkeeping. Caller
// holds r.mu.
func (r *Router) expectedFingerprint(nd *node) string {
	tables := make([]api.TableStats, 0, len(r.tableOrder))
	for _, name := range r.tableOrder {
		sh := nd.shape[name]
		tables = append(tables, api.TableStats{
			Table: name, Rows: sh.rows, LiveRows: sh.live,
			Columns: r.columns[name],
		})
	}
	return api.CatalogFingerprint(tables)
}

// registerFailure records a data-path or probe failure against a node:
// an up node degrades immediately; DownAfter consecutive failures take
// it down.
func (r *Router) registerFailure(nd *node) {
	fails := nd.fails.Add(1)
	switch nd.state.Load() {
	case stateUp:
		nd.state.Store(stateDegraded)
	case stateDegraded:
		if int(fails) >= r.cfg.DownAfter {
			nd.state.Store(stateDown)
		}
	}
}

// probeLoop walks each node's health on the configured cadence.
func (r *Router) probeLoop() {
	defer r.probes.Done()
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.probeCtx.Done():
			return
		case <-ticker.C:
		}
		for _, nd := range r.nodes {
			r.probe(nd)
		}
	}
}

// probe checks one node and advances its state machine.
func (r *Router) probe(nd *node) {
	ctx, cancel := context.WithTimeout(r.probeCtx, r.cfg.Timeout)
	defer cancel()
	h, err := nd.client.Health(ctx)
	healthy := err == nil && h.OK && h.Ready
	if !healthy {
		if r.probeCtx.Err() != nil {
			return // shutting down, not a node failure
		}
		r.registerFailure(nd)
		return
	}
	switch nd.state.Load() {
	case stateUp, stateDegraded:
		nd.fails.Store(0)
		nd.state.Store(stateUp)
	case stateDown:
		// Re-admission: the probe passed, but the node must also prove
		// it restored the stripe it owned — its catalog fingerprint has
		// to match the router's bookkeeping. A node that came back
		// empty (lost its snapshot) stays out rather than serving holes.
		fp, err := nd.client.Fingerprint(ctx)
		if err != nil {
			return
		}
		r.mu.Lock()
		want := r.expectedFingerprint(nd)
		r.mu.Unlock()
		if fp != want {
			return
		}
		nd.fails.Store(0)
		nd.state.Store(stateUp)
		r.readmits.Add(1)
	}
}

// nodeError is one node's failure in a fan-out.
type nodeError struct {
	node *node
	err  error
}

// errorBreakdown renders the per-node state for a 503 body.
func (r *Router) errorBreakdown(failed []nodeError) []api.NodeError {
	byID := make(map[int]error, len(failed))
	for _, f := range failed {
		byID[f.node.id] = f.err
	}
	out := make([]api.NodeError, 0, len(r.nodes))
	for _, nd := range r.nodes {
		ne := api.NodeError{Node: nd.id, Addr: nd.addr, State: nd.stateName()}
		if err, ok := byID[nd.id]; ok && err != nil {
			ne.Error = err.Error()
		}
		out = append(out, ne)
	}
	return out
}

// retryable reports whether a read failure is worth retrying against
// the same node: transport errors and 5xx are; 4xx are deterministic
// client mistakes and are not.
func retryable(err error) bool {
	var se *api.StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return true
}

// sortedInts returns xs ascending (small helper for MissingNodes).
func sortedInts(xs []int) []int {
	sort.Ints(xs)
	return xs
}
