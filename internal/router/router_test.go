package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
)

// testNode hosts one in-process crackserve-equivalent: a server.Service
// over a striped catalog behind an httptest server whose handler can be
// "killed" (every request answered 503, which is how the router sees a
// dead backend after the transport gives up) and swapped (simulating a
// restart from — or without — the right snapshot).
type testNode struct {
	srv   *httptest.Server
	alive atomic.Bool

	mu  sync.Mutex
	svc *server.Service
}

func (tn *testNode) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !tn.alive.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"node killed"}`)
			return
		}
		tn.mu.Lock()
		h := tn.svc.Handler()
		tn.mu.Unlock()
		h.ServeHTTP(w, r)
	})
}

func (tn *testNode) swap(svc *server.Service) {
	tn.mu.Lock()
	old := tn.svc
	tn.svc = svc
	tn.mu.Unlock()
	old.Close()
}

// buildService builds one node's service over stripe s of n (n<2: the
// whole catalog) with the given number of in-process engine shards.
func buildService(t *testing.T, tables string, seed int64, s, n, shards int) *server.Service {
	t.Helper()
	specs, err := server.ParseTableSpecs(tables)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := server.BuildCatalog(specs, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n > 1 {
		if cat, err = shard.Stripe(cat, s, n); err != nil {
			t.Fatal(err)
		}
	}
	built, err := server.BuildExec(cat, server.EngineOptions{Shards: shards, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.NewService(server.Config{
		Exec:         built.Exec,
		DefaultTable: specs[0].Name,
		DefaultPath:  "auto",
		EventLog:     trace.NewLog(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// startCluster boots n striped nodes and a router over them, all
// in-process. Returned nodes can be killed and revived.
func startCluster(t *testing.T, tables string, seed int64, n int, cfg Config) (*Router, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, n)
	addrs := make([]string, n)
	for s := 0; s < n; s++ {
		tn := &testNode{svc: buildService(t, tables, seed, s, n, 1)}
		tn.alive.Store(true)
		tn.srv = httptest.NewServer(tn.handler())
		nodes[s] = tn
		addrs[s] = tn.srv.URL
		t.Cleanup(tn.srv.Close)
		t.Cleanup(func() { tn.mu.Lock(); defer tn.mu.Unlock(); tn.svc.Close() })
	}
	cfg.Nodes = addrs
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, nodes
}

// fastCfg keeps probe and retry cadences test-sized.
func fastCfg() Config {
	return Config{
		Timeout: 2 * time.Second, Retries: 1, RetryBackoff: 2 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond, DownAfter: 2,
	}
}

func countQuery(lo, hi int64) api.QueryRequest {
	return api.QueryRequest{Op: "count", Low: &lo, High: &hi}
}

func selectQuery(lo, hi int64, project ...string) api.QueryRequest {
	return api.QueryRequest{Op: "select", Low: &lo, High: &hi, Project: project}
}

func nodeState(rt *Router, id int) string { return rt.nodes[id].stateName() }

// canonical sorts a result's rows by global id, reordering any
// projected columns in lockstep. Two answers to the same query are the
// same result iff their canonical forms are equal — the engine's row
// order is scan/crack order, which legitimately drifts as the adaptive
// index reorganises between queries.
func canonical(res *api.QueryResult) (column.IDList, map[string][]column.Value) {
	idx := make([]int, len(res.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return res.Rows[idx[a]] < res.Rows[idx[b]] })
	rows := make(column.IDList, len(res.Rows))
	cols := make(map[string][]column.Value, len(res.Columns))
	for i, j := range idx {
		rows[i] = res.Rows[j]
	}
	for name, vals := range res.Columns {
		out := make([]column.Value, len(vals))
		for i, j := range idx {
			out[i] = vals[j]
		}
		cols[name] = out
	}
	return rows, cols
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSingleNodeIdentity pins the N=1 contract: a router over one
// backend returns the same rows and drives the same deterministic cost
// counters as querying that backend directly.
func TestSingleNodeIdentity(t *testing.T) {
	const tables = "data:20000:2"
	rt, _ := startCluster(t, tables, 7, 1, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	direct := buildService(t, tables, 7, 0, 1, 1)
	defer direct.Close()
	directSrv := httptest.NewServer(direct.Handler())
	defer directSrv.Close()

	rc := api.NewClient(front.URL, api.ClientOptions{})
	dc := api.NewClient(directSrv.URL, api.ClientOptions{})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		lo := int64(i * 400)
		q := selectQuery(lo, lo+900)
		rres, err := rc.Query(ctx, q)
		if err != nil {
			t.Fatalf("router query %d: %v", i, err)
		}
		dres, err := dc.Query(ctx, q)
		if err != nil {
			t.Fatalf("direct query %d: %v", i, err)
		}
		if rres.Count != dres.Count || !reflect.DeepEqual(rres.Rows, dres.Rows) {
			t.Fatalf("query %d: router (%d rows) != direct (%d rows)", i, rres.Count, dres.Count)
		}
	}
	rstats, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dstats, err := dc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.WorkTotal != dstats.WorkTotal {
		t.Fatalf("N=1 work diverged: router %d, direct %d", rstats.WorkTotal, dstats.WorkTotal)
	}
	if rstats.Mode != "router" {
		t.Fatalf("mode %q", rstats.Mode)
	}
}

// TestTwoNodesMatchShardedCluster pins the striping contract across the
// wire: a router over two striped backends answers exactly like one
// daemon running the same catalog with -shards 2 — same counts, same
// global row ids, same summed work counters.
func TestTwoNodesMatchShardedCluster(t *testing.T) {
	const tables = "data:20000:2"
	rt, _ := startCluster(t, tables, 7, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	direct := buildService(t, tables, 7, 0, 1, 2) // whole catalog, 2 engine shards
	defer direct.Close()
	directSrv := httptest.NewServer(direct.Handler())
	defer directSrv.Close()

	rc := api.NewClient(front.URL, api.ClientOptions{})
	dc := api.NewClient(directSrv.URL, api.ClientOptions{})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		lo := int64(i * 350)
		q := selectQuery(lo, lo+800)
		rres, err := rc.Query(ctx, q)
		if err != nil {
			t.Fatalf("router query %d: %v", i, err)
		}
		dres, err := dc.Query(ctx, q)
		if err != nil {
			t.Fatalf("direct query %d: %v", i, err)
		}
		if rres.Count != dres.Count {
			t.Fatalf("query %d: count %d != %d", i, rres.Count, dres.Count)
		}
		if !reflect.DeepEqual(rres.Rows, dres.Rows) {
			t.Fatalf("query %d: global row ids diverge", i)
		}
	}

	// Appends land at the same global identifiers on both.
	for i := 0; i < 5; i++ {
		row := [][]column.Value{{column.Value(10 + i), column.Value(20 + i)}}
		ru, err := api.InsertOp("data", row)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := rc.Update(ctx, ru)
		if err != nil {
			t.Fatalf("router insert: %v", err)
		}
		dres, err := dc.Update(ctx, ru)
		if err != nil {
			t.Fatalf("direct insert: %v", err)
		}
		if !reflect.DeepEqual(rres.Inserted, dres.Inserted) {
			t.Fatalf("insert %d: router assigned %v, sharded daemon %v", i, rres.Inserted, dres.Inserted)
		}
	}

	rstats, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dstats, err := dc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.WorkTotal != dstats.WorkTotal {
		t.Fatalf("work diverged: router cluster %d, sharded daemon %d", rstats.WorkTotal, dstats.WorkTotal)
	}
	if rstats.Tables[0].Rows != dstats.Tables[0].Rows {
		t.Fatalf("rows diverged: %d vs %d", rstats.Tables[0].Rows, dstats.Tables[0].Rows)
	}
}

// TestBinaryProtocol runs the same query over both response protocols
// through the router and expects identical payloads.
func TestBinaryProtocol(t *testing.T) {
	rt, _ := startCluster(t, "data:10000:2", 3, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	jc := api.NewClient(front.URL, api.ClientOptions{Proto: "json"})
	bc := api.NewClient(front.URL, api.ClientOptions{Proto: "binary", Block: 256})
	ctx := context.Background()
	q := selectQuery(100, 2000, "c0", "c1")
	jres, err := jc.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bc.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	jrows, jcols := canonical(jres)
	brows, bcols := canonical(bres)
	if jres.Count != bres.Count || !reflect.DeepEqual(jrows, brows) {
		t.Fatalf("binary result diverges from JSON: %d vs %d rows", len(jres.Rows), len(bres.Rows))
	}
	for _, c := range q.Project {
		if !reflect.DeepEqual(jcols[c], bcols[c]) {
			t.Fatalf("projection %s diverges across protocols", c)
		}
	}
}

// TestTraceGather checks a traced query through the router carries a
// node_gather span importing the slowest node's server-side phases.
func TestTraceGather(t *testing.T) {
	rt, _ := startCluster(t, "data:10000:2", 3, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := api.NewClient(front.URL, api.ClientOptions{})
	q := countQuery(100, 4000)
	q.Trace = true
	res, err := c.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace returned")
	}
	var root trace.Span
	if err := json.Unmarshal(res.Trace, &root); err != nil {
		t.Fatal(err)
	}
	var gather *trace.Span
	for _, sp := range root.Spans {
		if sp.Phase == trace.PhaseNodeGather {
			gather = sp
		}
	}
	if gather == nil {
		t.Fatalf("no node_gather span in %s", res.Trace)
	}
	if len(gather.Spans) == 0 {
		t.Fatal("node_gather span imported no server-side phases")
	}
}

// TestFailover is the kill/restart story: reads fail fast when a stripe
// owner is lost, turn partial once it is marked down, writes to the
// dead stripe are refused naming the node, and the revived node is
// re-admitted with byte-identical answers.
func TestFailover(t *testing.T) {
	rt, nodes := startCluster(t, "data:10000:2", 11, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := api.NewClient(front.URL, api.ClientOptions{})
	ctx := context.Background()

	q := selectQuery(500, 3000)
	baseline, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Partial {
		t.Fatal("baseline partial")
	}

	// Kill node 1. The router still believes it up: the next read must
	// fail fast with 503 and a per-node breakdown naming the node.
	nodes[1].alive.Store(false)
	_, err = c.Query(ctx, q)
	se := &api.StatusError{}
	if !asStatusError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("read against lost node: %v", err)
	}
	named := false
	for _, ne := range se.Resp.Nodes {
		if ne.Node == 1 && ne.Error != "" {
			named = true
		}
	}
	if !named {
		t.Fatalf("503 breakdown does not name node 1: %+v", se.Resp)
	}

	// Once probes take it down, reads answer from the surviving stripe,
	// explicitly partial.
	waitFor(t, "node 1 down", func() bool { return nodeState(rt, 1) == "down" })
	part, err := c.Query(ctx, q)
	if err != nil {
		t.Fatalf("partial read: %v", err)
	}
	if !part.Partial || len(part.MissingNodes) != 1 || part.MissingNodes[0] != 1 {
		t.Fatalf("partial flags wrong: partial=%v missing=%v", part.Partial, part.MissingNodes)
	}
	if part.Count >= baseline.Count {
		t.Fatalf("partial count %d not below full count %d", part.Count, baseline.Count)
	}
	for _, g := range part.Rows {
		if int(g)%2 == 1 {
			t.Fatalf("partial answer contains row %d of the dead stripe", g)
		}
	}

	// Writes: global row 10000's owner is node 0 (10000%2==0) — that
	// insert lands; the next global row 10001 belongs to the dead node
	// and must be refused with the node named.
	ins, err := api.InsertOp("data", [][]column.Value{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ur, err := c.Update(ctx, ins)
	if err != nil {
		t.Fatalf("insert owned by surviving node: %v", err)
	}
	if len(ur.Inserted) != 1 || ur.Inserted[0] != 10000 {
		t.Fatalf("inserted %v, want [10000]", ur.Inserted)
	}
	_, err = c.Update(ctx, ins)
	if !asStatusError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("insert to dead stripe: %v", err)
	}
	if !strings.Contains(se.Resp.Error, "node 1") {
		t.Fatalf("refusal does not name the dead node: %q", se.Resp.Error)
	}

	// Revive the node. Its stripe still holds exactly the rows the
	// router believes it owns, so the fingerprint matches and it is
	// re-admitted; the baseline query answers byte-identically again.
	nodes[1].alive.Store(true)
	waitFor(t, "node 1 re-admission", func() bool { return nodeState(rt, 1) == "up" })
	if rt.readmits.Load() == 0 {
		t.Fatal("re-admission not counted")
	}
	after, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Partial {
		t.Fatal("still partial after re-admission")
	}
	arows, _ := canonical(after)
	brows, _ := canonical(baseline)
	if after.Count != baseline.Count || !reflect.DeepEqual(arows, brows) {
		t.Fatalf("post-recovery answer diverges: %d vs %d rows", after.Count, baseline.Count)
	}
	// And the write the dead stripe refused now lands, at the id the
	// contract promised all along.
	ur, err = c.Update(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(ur.Inserted) != 1 || ur.Inserted[0] != 10001 {
		t.Fatalf("inserted %v, want [10001]", ur.Inserted)
	}
}

// TestMismatchedNodeStaysOut: a node that comes back without the rows
// it owned (lost snapshot) must not be re-admitted.
func TestMismatchedNodeStaysOut(t *testing.T) {
	rt, nodes := startCluster(t, "data:10000:2", 11, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := api.NewClient(front.URL, api.ClientOptions{})
	ctx := context.Background()

	// Grow node 0's stripe so a cold-rebuilt node 1 would still match —
	// then break node 1's expected shape instead by inserting a row it
	// owns, which a cold rebuild cannot have.
	for i := 0; i < 2; i++ {
		ins, err := api.InsertOp("data", [][]column.Value{{9, 9}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Update(ctx, ins); err != nil {
			t.Fatal(err)
		}
	}
	nodes[1].alive.Store(false)
	waitFor(t, "node 1 down", func() bool { return nodeState(rt, 1) == "down" })
	// "Restart" node 1 from scratch: the generated stripe without the
	// insert it owned. The probe passes but the fingerprint must not.
	nodes[1].swap(buildService(t, "data:10000:2", 11, 1, 2, 1))
	nodes[1].alive.Store(true)
	time.Sleep(150 * time.Millisecond) // several probe intervals
	if got := nodeState(rt, 1); got != "down" {
		t.Fatalf("node with missing rows re-admitted (state %q)", got)
	}
	if rt.readmits.Load() != 0 {
		t.Fatal("re-admission counted for a mismatched node")
	}
}

// TestAllNodesDown: a cluster with every stripe lost answers 503, not
// an empty 200.
func TestAllNodesDown(t *testing.T) {
	rt, nodes := startCluster(t, "data:4000:2", 5, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := api.NewClient(front.URL, api.ClientOptions{})
	for _, tn := range nodes {
		tn.alive.Store(false)
	}
	waitFor(t, "both nodes down", func() bool {
		return nodeState(rt, 0) == "down" && nodeState(rt, 1) == "down"
	})
	_, err := c.Query(context.Background(), countQuery(0, 100))
	se := &api.StatusError{}
	if !asStatusError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %v", err)
	}
}

// TestHealthzAndMetrics: the router's own health endpoint follows the
// cluster, and its merged /metrics pass the Prometheus lint.
func TestHealthzAndMetrics(t *testing.T) {
	rt, nodes := startCluster(t, "data:4000:2", 5, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := api.NewClient(front.URL, api.ClientOptions{})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || !h.OK || !h.Ready {
		t.Fatalf("healthy cluster reports %+v, %v", h, err)
	}
	if _, err := c.Query(ctx, countQuery(0, 500)); err != nil {
		t.Fatal(err)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if problems := trace.LintProm(strings.NewReader(body)); len(problems) > 0 {
		t.Fatalf("router /metrics fails lint: %v", problems)
	}
	if !strings.Contains(body, "crackrouter_nodes_up 2") {
		t.Fatalf("metrics missing nodes_up:\n%s", body)
	}

	nodes[1].alive.Store(false)
	waitFor(t, "node 1 down", func() bool { return nodeState(rt, 1) == "down" })
	if h, _ := c.Health(ctx); h.Ready {
		t.Fatal("router ready with a node down")
	}
}

// asStatusError unwraps err into *api.StatusError.
func asStatusError(err error, out **api.StatusError) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*api.StatusError)
	if ok {
		*out = se
	}
	return ok
}

// TestConcurrentMixedLoad exercises the router under -race: concurrent
// readers and one writer while a node flaps.
func TestConcurrentMixedLoad(t *testing.T) {
	rt, nodes := startCluster(t, "data:8000:2", 13, 2, fastCfg())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := api.NewClient(front.URL, api.ClientOptions{})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := int64((g*997 + i*131) % 7000)
				// Errors are expected while the node flaps; the race
				// detector is the assertion here.
				c.Query(ctx, countQuery(lo, lo+400)) //nolint:errcheck
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := api.NewClient(front.URL, api.ClientOptions{})
		for i := 0; i < 50; i++ {
			ins, _ := api.InsertOp("data", [][]column.Value{{column.Value(i), 1}})
			c.Update(ctx, ins) //nolint:errcheck
		}
	}()
	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(30 * time.Millisecond)
		nodes[1].alive.Store(false)
		time.Sleep(60 * time.Millisecond)
		nodes[1].alive.Store(true)
		waitFor(t, fmt.Sprintf("revival %d", cycle), func() bool { return nodeState(rt, 1) == "up" })
	}
	close(stop)
	wg.Wait()
}
