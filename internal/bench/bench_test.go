package bench

import (
	"strings"
	"testing"
	"time"

	"adaptiveindex/internal/baseline"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/workload"
)

// fakeIndex lets tests script exact per-query costs.
type fakeIndex struct {
	name  string
	costs []uint64
	i     int
	c     cost.Counters
}

func (f *fakeIndex) Name() string { return f.name }

func (f *fakeIndex) Count(column.Range) int {
	if f.i < len(f.costs) {
		f.c.Comparisons += f.costs[f.i]
	}
	f.i++
	return 1
}

func (f *fakeIndex) Cost() cost.Counters { return f.c }

func queriesOfLen(n int) []column.Range {
	qs := make([]column.Range, n)
	for i := range qs {
		qs[i] = column.NewRange(column.Value(i), column.Value(i+1))
	}
	return qs
}

func TestRunRecordsPerQueryDeltas(t *testing.T) {
	f := &fakeIndex{name: "fake", costs: []uint64{100, 50, 10, 10}}
	s := Run(f, queriesOfLen(4))
	if s.IndexName != "fake" || len(s.Stats) != 4 {
		t.Fatalf("series shape wrong: %+v", s)
	}
	want := []uint64{100, 50, 10, 10}
	got := s.PerQueryTotals()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("per-query totals = %v, want %v", got, want)
		}
	}
	cum := s.CumulativeTotals()
	if cum[3] != 170 {
		t.Fatalf("cumulative = %v", cum)
	}
	if s.TotalWork().Total() != 170 {
		t.Fatalf("total work = %d", s.TotalWork().Total())
	}
	if s.FirstQueryCost() != 100 {
		t.Fatalf("first query = %d", s.FirstQueryCost())
	}
}

func TestConvergenceMetric(t *testing.T) {
	f := &fakeIndex{costs: []uint64{100, 80, 30, 5, 5, 5}}
	s := Run(f, queriesOfLen(6))
	if got := s.Convergence(10); got != 3 {
		t.Fatalf("Convergence(10) = %d, want 3", got)
	}
	if got := s.Convergence(1000); got != 0 {
		t.Fatalf("Convergence(1000) = %d, want 0", got)
	}
	if got := s.Convergence(1); got != -1 {
		t.Fatalf("Convergence(1) = %d, want -1 (never)", got)
	}
	var empty Series
	if empty.FirstQueryCost() != 0 {
		t.Fatal("empty series first-query cost must be 0")
	}
}

func TestBreakEven(t *testing.T) {
	// a is expensive early, cheap later; b pays a lot up front.
	a := Run(&fakeIndex{costs: []uint64{50, 40, 5, 5, 5, 5}}, queriesOfLen(6))
	b := Run(&fakeIndex{costs: []uint64{200, 1, 1, 1, 1, 1}}, queriesOfLen(6))
	// Cumulative a: 50 90 95 100 105 110; b: 200 201 202 203 204 205.
	if got := a.BreakEven(b); got != 0 {
		t.Fatalf("a.BreakEven(b) = %d, want 0", got)
	}
	if got := b.BreakEven(a); got != -1 {
		t.Fatalf("b.BreakEven(a) = %d, want -1", got)
	}
	// Crossing case.
	c := Run(&fakeIndex{costs: []uint64{300, 1, 1, 1, 1, 1}}, queriesOfLen(6))
	d := Run(&fakeIndex{costs: []uint64{50, 50, 50, 50, 50, 60}}, queriesOfLen(6))
	// Cumulative c: 300..305; d: 50 100 150 200 250 310. c <= d from i=5.
	if got := c.BreakEven(d); got != 5 {
		t.Fatalf("c.BreakEven(d) = %d, want 5", got)
	}
}

func TestMaxAndTail(t *testing.T) {
	s := Run(&fakeIndex{costs: []uint64{5, 500, 10, 10, 10, 10, 10, 10, 10, 10}}, queriesOfLen(10))
	m, at := s.MaxQueryCost()
	if m != 500 || at != 1 {
		t.Fatalf("max = %d at %d", m, at)
	}
	if got := s.TailAverage(4); got != 10 {
		t.Fatalf("tail average = %d", got)
	}
	if got := s.TailAverage(0); got == 0 {
		t.Fatalf("tail average with zero window = %d", got)
	}
	var empty Series
	if empty.TailAverage(5) != 0 {
		t.Fatal("empty tail average must be 0")
	}
}

func TestSummarizeAndFormatTable(t *testing.T) {
	s := Run(&fakeIndex{name: "alpha", costs: []uint64{100, 10, 10}}, queriesOfLen(3))
	s2 := Run(&fakeIndex{name: "beta", costs: []uint64{10, 10, 10}}, queriesOfLen(3))
	rows := []Summary{s.Summarize(20), s2.Summarize(20)}
	out := FormatTable("experiment", rows)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "first-query") {
		t.Fatalf("table missing header:\n%s", out)
	}
	// beta has less total work, so it must be listed first.
	if strings.Index(out, "beta") > strings.Index(out, "alpha") {
		t.Fatalf("rows not sorted by total work:\n%s", out)
	}
	neverRow := Summary{IndexName: "gamma", Convergence: -1}
	if !strings.Contains(FormatTable("t", []Summary{neverRow}), "never") {
		t.Fatal("non-converging rows must print 'never'")
	}
}

func TestFormatCurve(t *testing.T) {
	s := Run(&fakeIndex{name: "alpha", costs: []uint64{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}}, queriesOfLen(10))
	out := FormatCurve(s, 5)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 || len(lines) > 7 {
		t.Fatalf("unexpected number of curve lines: %d\n%s", len(lines), out)
	}
	full := FormatCurve(s, 0)
	if len(strings.Split(strings.TrimSpace(full), "\n")) != 11 {
		t.Fatalf("full curve wrong:\n%s", full)
	}
}

// Integration: the harness applied to real indexes reproduces the
// headline cracking-vs-scan-vs-full-index shape on a small input.
func TestHarnessWithRealIndexes(t *testing.T) {
	vals := workload.DataUniform(1, 50000, 1000000)
	queries := workload.Queries(workload.NewUniform(2, 0, 1000000, 0.01), 300)

	crack := core.NewCrackerColumn(vals, core.DefaultOptions())
	scan := baseline.NewFullScan(vals)
	full := baseline.NewFullSortIndex(vals, false)

	sCrack := RunNamed(crack, "uniform", queries)
	sScan := RunNamed(scan, "uniform", queries)
	sFull := RunNamed(full, "uniform", queries)

	// Results must agree across access paths.
	for i := range queries {
		if sCrack.Stats[i].Result != sScan.Stats[i].Result || sFull.Stats[i].Result != sScan.Stats[i].Result {
			t.Fatalf("query %d: result mismatch crack=%d scan=%d full=%d",
				i, sCrack.Stats[i].Result, sScan.Stats[i].Result, sFull.Stats[i].Result)
		}
	}
	// Shape claims.
	if sCrack.FirstQueryCost() >= sFull.FirstQueryCost() {
		t.Fatalf("cracking's first query (%d) must be cheaper than building the full index (%d)",
			sCrack.FirstQueryCost(), sFull.FirstQueryCost())
	}
	if sCrack.TailAverage(30) >= sScan.TailAverage(30)/10 {
		t.Fatalf("cracking must converge to much cheaper queries than scanning: %d vs %d",
			sCrack.TailAverage(30), sScan.TailAverage(30))
	}
	if sCrack.TotalWork().Total() >= sScan.TotalWork().Total() {
		t.Fatal("cracking must beat scanning in total work over 300 queries")
	}
	if s := sCrack.TotalWall(); s <= 0 {
		t.Fatalf("wall time must be positive, got %v", s)
	}
	_ = time.Now()
}
