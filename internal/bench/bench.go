// Package bench is the experiment harness: it drives any index
// implementation through a query sequence, records per-query logical
// work and wall time, and computes the two metrics the adaptive
// indexing benchmark (TPCTC 2010) defines:
//
//  1. the initialization cost incurred by the first query, and
//  2. the number of queries that must be processed before a random
//     query benefits from the index structure without incurring any
//     further adaptation overhead (convergence).
//
// It also computes cumulative-cost curves and break-even points between
// strategies, which is how the cracking and hybrid papers present their
// results. The harness only depends on the small Index interface below,
// so every access path in this repository (and any future one) can be
// measured identically.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
)

// Index is the query surface the harness drives: the Count/Cost subset
// of the canonical contract (internal/index.Interface), so every access
// path in this repository — and anything else satisfying the contract —
// can be measured without adaptation.
type Index interface {
	// Name identifies the access path in reports.
	Name() string
	// Count answers a range predicate, performing whatever adaptation
	// the access path does as a side effect, and returns the number of
	// qualifying tuples.
	Count(column.Range) int
	// Cost returns the cumulative logical work performed so far.
	Cost() cost.Counters
}

// QueryStat records one query's outcome.
type QueryStat struct {
	// Seq is the zero-based position of the query in the sequence.
	Seq int
	// Query is the predicate that was executed.
	Query column.Range
	// Result is the number of qualifying tuples.
	Result int
	// Work is the logical work this query performed (delta of the
	// index's cumulative counters).
	Work cost.Counters
	// Wall is the wall-clock duration of the query.
	Wall time.Duration
}

// Series is the per-query record of one index over one workload.
type Series struct {
	IndexName string
	Workload  string
	Stats     []QueryStat
}

// Run drives the index through the query sequence and returns the
// per-query series.
func Run(ix Index, queries []column.Range) Series {
	return RunNamed(ix, "", queries)
}

// RunNamed is Run with an explicit workload label for reports.
func RunNamed(ix Index, workload string, queries []column.Range) Series {
	s := Series{IndexName: ix.Name(), Workload: workload, Stats: make([]QueryStat, 0, len(queries))}
	prev := ix.Cost()
	for i, q := range queries {
		start := time.Now()
		n := ix.Count(q)
		wall := time.Since(start)
		cur := ix.Cost()
		s.Stats = append(s.Stats, QueryStat{
			Seq:    i,
			Query:  q,
			Result: n,
			Work:   cur.Sub(prev),
			Wall:   wall,
		})
		prev = cur
	}
	return s
}

// PerQueryTotals returns the scalar work of every query in sequence
// order.
func (s Series) PerQueryTotals() []uint64 {
	out := make([]uint64, len(s.Stats))
	for i, st := range s.Stats {
		out[i] = st.Work.Total()
	}
	return out
}

// CumulativeTotals returns the running sum of scalar work after each
// query.
func (s Series) CumulativeTotals() []uint64 {
	out := make([]uint64, len(s.Stats))
	var sum uint64
	for i, st := range s.Stats {
		sum += st.Work.Total()
		out[i] = sum
	}
	return out
}

// TotalWork returns the work summed over the whole sequence.
func (s Series) TotalWork() cost.Counters {
	var c cost.Counters
	for _, st := range s.Stats {
		c.Add(st.Work)
	}
	return c
}

// TotalWall returns the wall time summed over the whole sequence.
func (s Series) TotalWall() time.Duration {
	var d time.Duration
	for _, st := range s.Stats {
		d += st.Wall
	}
	return d
}

// FirstQueryCost is TPCTC metric 1: the logical work charged to the
// first query (which includes any deferred initialization the access
// path performs on first use). It returns 0 for an empty series.
func (s Series) FirstQueryCost() uint64 {
	if len(s.Stats) == 0 {
		return 0
	}
	return s.Stats[0].Work.Total()
}

// Convergence is TPCTC metric 2: the index of the first query after
// which every remaining query's work stays at or below the threshold.
// It returns -1 if the series never converges within the sequence.
func (s Series) Convergence(threshold uint64) int {
	last := -1
	for i := len(s.Stats) - 1; i >= 0; i-- {
		if s.Stats[i].Work.Total() > threshold {
			last = i
			break
		}
	}
	switch {
	case last == -1:
		return 0
	case last == len(s.Stats)-1:
		return -1
	default:
		return last + 1
	}
}

// BreakEven returns the index of the first query at which this series'
// cumulative work drops to or below the other series' cumulative work
// and stays there for the rest of the sequence. It returns -1 if that
// never happens. It is used to answer "after how many queries has
// adaptive indexing paid off compared to building a full index".
func (s Series) BreakEven(other Series) int {
	a, b := s.CumulativeTotals(), other.CumulativeTotals()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	last := -1
	for i := n - 1; i >= 0; i-- {
		if a[i] > b[i] {
			last = i
			break
		}
	}
	switch {
	case last == -1:
		return 0
	case last == n-1:
		return -1
	default:
		return last + 1
	}
}

// MaxQueryCost returns the largest single-query work in the series and
// the query index where it occurred.
func (s Series) MaxQueryCost() (uint64, int) {
	var max uint64
	idx := -1
	for i, st := range s.Stats {
		if t := st.Work.Total(); t > max {
			max, idx = t, i
		}
	}
	return max, idx
}

// TailAverage returns the average per-query work of the final `window`
// queries (or all of them if the series is shorter). It approximates
// the converged per-query cost.
func (s Series) TailAverage(window int) uint64 {
	if len(s.Stats) == 0 {
		return 0
	}
	if window <= 0 || window > len(s.Stats) {
		window = len(s.Stats)
	}
	var sum uint64
	for _, st := range s.Stats[len(s.Stats)-window:] {
		sum += st.Work.Total()
	}
	return sum / uint64(window)
}

// Summary is one comparison row of an experiment report.
type Summary struct {
	IndexName    string
	FirstQuery   uint64
	TotalWork    uint64
	TailPerQuery uint64
	MaxQuery     uint64
	Convergence  int
	TotalWall    time.Duration
}

// Summarize produces a comparison row. convergenceThreshold is the
// per-query work level that counts as "no further adaptation overhead";
// callers usually pass a multiple of the fully-indexed per-query cost.
func (s Series) Summarize(convergenceThreshold uint64) Summary {
	maxCost, _ := s.MaxQueryCost()
	return Summary{
		IndexName:    s.IndexName,
		FirstQuery:   s.FirstQueryCost(),
		TotalWork:    s.TotalWork().Total(),
		TailPerQuery: s.TailAverage(max(1, len(s.Stats)/10)),
		MaxQuery:     maxCost,
		Convergence:  s.Convergence(convergenceThreshold),
		TotalWall:    s.TotalWall(),
	}
}

// FormatTable renders summaries as an aligned text table, sorted by
// total work. It is what cmd/aibench prints for every experiment.
func FormatTable(title string, rows []Summary) string {
	sort.Slice(rows, func(i, j int) bool { return rows[i].TotalWork < rows[j].TotalWork })
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %14s %14s %14s %14s %12s %12s\n",
		"index", "first-query", "total-work", "tail/query", "max-query", "converge@", "wall")
	for _, r := range rows {
		conv := fmt.Sprintf("%d", r.Convergence)
		if r.Convergence < 0 {
			conv = "never"
		}
		fmt.Fprintf(&b, "%-28s %14d %14d %14d %14d %12s %12s\n",
			r.IndexName, r.FirstQuery, r.TotalWork, r.TailPerQuery, r.MaxQuery, conv, r.TotalWall.Round(time.Microsecond))
	}
	return b.String()
}

// FormatCurve renders a per-query work curve as "seq<TAB>work" lines,
// downsampled to at most maxPoints rows, for plotting or eyeballing.
func FormatCurve(s Series, maxPoints int) string {
	totals := s.PerQueryTotals()
	if maxPoints <= 0 {
		maxPoints = len(totals)
	}
	step := 1
	if len(totals) > maxPoints {
		step = len(totals) / maxPoints
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s per-query work\n", s.IndexName)
	for i := 0; i < len(totals); i += step {
		fmt.Fprintf(&b, "%d\t%d\n", i, totals[i])
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
