// Epoch-pinned reads across the shard cluster.
//
// Each shard engine publishes its own epochs; the cluster lifts the
// same scatter-gather shape Run uses onto the epoch read path. A
// cluster epoch read pins the current epoch of every shard, answers
// the query against each pinned stripe concurrently, and merges the
// results exactly like Run's gather (global id = local*N + shard,
// shard-order concatenation) — but because epoch reads never touch the
// live engines, any number of cluster epoch reads may run concurrently
// with each other and with the single owner goroutine's writes,
// intents and publications.

package shard

import (
	"sync"

	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/trace"
)

// PublishEpoch publishes the next epoch on every shard, in shard
// order, and returns shard 0's epoch sequence number. Like every
// mutating call it belongs to the cluster's single owner goroutine.
func (c *Cluster) PublishEpoch() uint64 {
	var seq uint64
	for s, e := range c.shards {
		ep := e.PublishEpoch()
		if s == 0 {
			seq = ep.Seq
		}
	}
	return seq
}

// ApplyIntent applies one deferred crack intent on every shard: each
// stripe holds a slice of the predicate's value range, so every shard
// owes the same reorganisation. Runs on the owner goroutine.
func (c *Cluster) ApplyIntent(in engine.Intent) error {
	for _, e := range c.shards {
		if err := e.ApplyIntent(in); err != nil {
			return err
		}
	}
	return nil
}

// EpochRead answers one read-only query against every shard's pinned
// epoch concurrently and merges the per-shard results like Run's
// gather. Safe to call from any number of goroutines, concurrently
// with the owner goroutine's writes and reorganisation. The returned
// info's Release drops every shard's pin; NeedsReorg is the OR over
// shards; Seq is shard 0's.
func (c *Cluster) EpochRead(q engine.Query) (*engine.Result, engine.EpochInfo, error) {
	if len(c.shards) == 1 {
		return c.shards[0].EpochRead(q)
	}
	rec := q.Trace
	q.Trace = nil
	if rec != nil {
		rec.Begin(trace.PhaseEpochPin)
		defer rec.End(trace.Work{})
	}
	results := make([]*engine.Result, len(c.shards))
	infos := make([]engine.EpochInfo, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], infos[s], errs[s] = c.shards[s].EpochRead(q)
		}(s)
	}
	wg.Wait()
	release := func() {
		for s := range infos {
			if infos[s].Release != nil {
				infos[s].Release()
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			release()
			return nil, engine.EpochInfo{}, err
		}
	}
	info := engine.EpochInfo{Seq: infos[0].Seq, Release: release}
	for s := range infos {
		if infos[s].NeedsReorg {
			info.NeedsReorg = true
		}
	}
	parts := make([]StripeResult, len(results))
	for s, r := range results {
		parts[s] = StripeResult{Count: r.Count, Rows: r.Rows, Columns: r.Columns}
	}
	merged := MergeStriped(parts, q.Project, q.CountOnly)
	out := &engine.Result{
		Path: results[0].Path, Count: merged.Count,
		Rows: merged.Rows, Columns: merged.Columns,
	}
	return out, info, nil
}

// EpochStats sums the epoch machinery's counters over the shards;
// Seq and Pins report shard 0 (every shard publishes in lockstep, so
// shard 0 is representative).
func (c *Cluster) EpochStats() engine.EpochStats {
	var agg engine.EpochStats
	for s, e := range c.shards {
		st := e.EpochStats()
		if s == 0 {
			agg.Seq = st.Seq
			agg.Pins = st.Pins
		}
		agg.Published += st.Published
		agg.Retired += st.Retired
		agg.IntentsApplied += st.IntentsApplied
		agg.Reads += st.Reads
		agg.ReadWork += st.ReadWork
	}
	return agg
}
