package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/server"
	"adaptiveindex/internal/shard"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/wire"
	"adaptiveindex/internal/workload"
)

// testCatalog builds a deterministic two-table catalog. Both the
// baseline engine and the cluster under test get their own copy (the
// cluster only reads it, but the baseline engine cracks in place).
func testCatalog(t *testing.T, seed int64, n int) *engine.Catalog {
	t.Helper()
	specs := []server.TableSpec{
		{Name: "orders", Rows: n, Cols: 3},
		{Name: "events", Rows: n/2 + 7, Cols: 2},
	}
	cat, err := server.BuildCatalog(specs, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// selection is one query answer in comparable form: (row, projected
// values) tuples sorted by row identifier. Shards return rows in
// shard-concatenation order and a cracked single engine in cracked
// physical order, so only the set — with projections still aligned to
// their rows — is comparable.
type selection struct {
	rows []column.RowID
	cols map[string][]column.Value
}

func canonical(rows []column.RowID, cols map[string][]column.Value) selection {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rows[idx[a]] < rows[idx[b]] })
	out := selection{rows: make([]column.RowID, len(rows))}
	if len(cols) > 0 {
		out.cols = make(map[string][]column.Value, len(cols))
	}
	for name, vals := range cols {
		aligned := make([]column.Value, len(vals))
		for i, j := range idx {
			aligned[i] = vals[j]
		}
		out.cols[name] = aligned
	}
	for i, j := range idx {
		out.rows[i] = rows[j]
	}
	return out
}

func requireSameSelection(t *testing.T, label string, want, got selection) {
	t.Helper()
	if len(want.rows) != len(got.rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.rows), len(want.rows))
	}
	for i := range want.rows {
		if want.rows[i] != got.rows[i] {
			t.Fatalf("%s: row[%d] = %d, want %d", label, i, got.rows[i], want.rows[i])
		}
	}
	if len(want.cols) != len(got.cols) {
		t.Fatalf("%s: %d projected columns, want %d", label, len(got.cols), len(want.cols))
	}
	for name, wv := range want.cols {
		gv, ok := got.cols[name]
		if !ok || len(gv) != len(wv) {
			t.Fatalf("%s: projection %q: %d values, want %d", label, name, len(gv), len(wv))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("%s: projection %q[%d] = %d, want %d", label, name, i, gv[i], wv[i])
			}
		}
	}
}

// TestClusterMatchesEngineDirect is the core differential contract: a
// cluster of any shard count answers every query — counts, row sets,
// projections — identically to a single engine over the same data,
// including after interleaved inserts and deletes routed through the
// global row space.
func TestClusterMatchesEngineDirect(t *testing.T) {
	const n = 6000
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng := engine.New(testCatalog(t, 11, n), core.DefaultOptions())
			cl, err := shard.New(testCatalog(t, 11, n), shards, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(77))
			live := []column.RowID{}
			for g := 0; g < n; g++ {
				live = append(live, column.RowID(g))
			}
			for i := 0; i < 300; i++ {
				table, col := "orders", "c0"
				if i%3 == 1 {
					table, col = "events", "c1"
				}
				lo := column.Value(rng.Intn(n))
				hi := lo + column.Value(rng.Intn(n/20)+1)
				q := engine.Query{
					Table: table, Column: col,
					R:    column.Range{HasLow: true, Low: int64(lo), HasHigh: true, High: int64(hi), IncLow: true},
					Path: engine.PathCracking,
				}
				if i%4 == 0 {
					q.Project = []string{"c1"}
					if table == "events" {
						q.Project = []string{"c0"}
					}
				}
				if i%5 == 0 {
					q.Path = engine.PathAuto
				}
				want, err := eng.Run(q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cl.Run(q)
				if err != nil {
					t.Fatal(err)
				}
				if want.Count != got.Count {
					t.Fatalf("query %d: cluster count %d, engine count %d", i, got.Count, want.Count)
				}
				requireSameSelection(t, fmt.Sprintf("query %d", i),
					canonical(want.Rows, want.Columns), canonical(got.Rows, got.Columns))

				// Interleave writes: both sides must assign the same global
				// row identifiers and agree on every later answer.
				if i%7 == 3 {
					vals := []column.Value{column.Value(rng.Intn(n)), column.Value(rng.Intn(n)), column.Value(rng.Intn(n))}
					wr, err := eng.InsertRow("orders", vals)
					if err != nil {
						t.Fatal(err)
					}
					gr, err := cl.InsertRow("orders", vals)
					if err != nil {
						t.Fatal(err)
					}
					if wr != gr {
						t.Fatalf("insert %d: cluster assigned row %d, engine %d", i, gr, wr)
					}
					live = append(live, gr)
				}
				if i%11 == 5 && len(live) > 0 {
					j := rng.Intn(len(live))
					row := live[j]
					live = append(live[:j], live[j+1:]...)
					if err := eng.DeleteRow("orders", row); err != nil {
						t.Fatal(err)
					}
					if err := cl.DeleteRow("orders", row); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := cl.Validate(); err != nil {
				t.Fatal(err)
			}
			// The stripes must partition the global rows.
			et, ct := eng.Tables(), cl.Tables()
			for i := range et {
				if et[i].Rows != ct[i].Rows || et[i].LiveRows != ct[i].LiveRows {
					t.Fatalf("table %s: cluster %d/%d rows, engine %d/%d", et[i].Name,
						ct[i].Rows, ct[i].LiveRows, et[i].Rows, et[i].LiveRows)
				}
			}
		})
	}
}

// TestOneShardByteIdentical: a one-shard cluster is the identity — its
// deterministic work counters match a bare engine's exactly.
func TestOneShardByteIdentical(t *testing.T) {
	const n = 4000
	eng := engine.New(testCatalog(t, 3, n), core.DefaultOptions())
	cl, err := shard.New(testCatalog(t, 3, n), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range workload.Queries(workload.NewUniform(9, 0, n, 0.02), 150) {
		q := engine.Query{Table: "orders", Column: "c0", R: r, Path: engine.PathCracking}
		if _, err := eng.Run(q); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	if ec, cc := eng.Cost(), cl.Cost(); ec != cc {
		t.Fatalf("one-shard cluster counters %+v diverge from engine %+v", cc, ec)
	}
	if es, cs := eng.Structures(), cl.Structures(); es != cs {
		t.Fatalf("one-shard cluster structures %+v diverge from engine %+v", cs, es)
	}
}

// TestClusterTraceGather: a traced query against a multi-shard cluster
// reports the scatter-gather as a shard_gather span whose work delta
// matches the movement of the cluster's own counters.
func TestClusterTraceGather(t *testing.T) {
	const n = 3000
	cl, err := shard.New(testCatalog(t, 5, n), 4, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := cl.Cost().Total()
	rec := trace.NewRecorder()
	_, err = cl.Run(engine.Query{
		Table: "orders", Column: "c0",
		R:     column.Range{HasLow: true, Low: 100, HasHigh: true, High: 900, IncLow: true},
		Path:  engine.PathCracking,
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Finish()
	root := rec.Root()
	var gather *trace.Span
	for _, sp := range root.Spans {
		if sp.Phase == trace.PhaseShardGather {
			gather = sp
		}
	}
	if gather == nil {
		t.Fatalf("traced cluster query has no %s span; got %+v", trace.PhaseShardGather, root.Spans)
	}
	if len(gather.Spans) == 0 {
		t.Fatal("shard_gather span carries no per-shard engine phases")
	}
	moved := cl.Cost().Total() - before
	if got := gather.Work.Total; got != moved {
		t.Fatalf("shard_gather work %d, counters moved %d", got, moved)
	}
}

// TestClusterRestoreShardCountMismatch: per-shard snapshot segments
// only restore at the shard count that wrote them.
func TestClusterRestoreShardCountMismatch(t *testing.T) {
	const n = 1000
	cl2, err := shard.New(testCatalog(t, 7, n), 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	states := make([]engine.State, 0, 2)
	for _, e := range cl2.Engines() {
		states = append(states, e.Snapshot())
	}
	cl3, err := shard.New(testCatalog(t, 7, n), 3, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl3.Restore(states); err == nil {
		t.Fatal("restoring 2 shard states into 3 shards must fail")
	} else if want := "-shards 2"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("mismatch error must tell the operator to restart with %s, got: %v", want, err)
	}
}

// TestClusterRejectsDirtyCatalog: striping owns the global row space,
// so a catalog that already carries writes cannot be striped.
func TestClusterRejectsDirtyCatalog(t *testing.T) {
	const n = 500
	cat := testCatalog(t, 13, n)
	eng := engine.New(cat, core.DefaultOptions())
	if _, err := eng.InsertRow("orders", []column.Value{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.New(cat, 2, core.DefaultOptions()); err == nil {
		t.Fatal("striping a catalog with appended rows must fail")
	}
}

// httpPair hosts the same catalog behind a single-engine service and a
// sharded one, both in batched mode, for wire-level differential runs.
func httpPair(t *testing.T, seed int64, n, shards int) (base, sharded *httptest.Server) {
	t.Helper()
	mk := func(exec server.Exec, eng *engine.Engine) *httptest.Server {
		svc, err := server.NewService(server.Config{
			Exec:          exec,
			Engine:        eng,
			DefaultTable:  "orders",
			DefaultColumn: "c0",
			DefaultPath:   "cracking",
			MaxInFlight:   64,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { ts.Close(); svc.Close() })
		return ts
	}
	eng := engine.New(testCatalog(t, seed, n), core.DefaultOptions())
	cl, err := shard.New(testCatalog(t, seed, n), shards, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return mk(nil, eng), mk(cl, nil)
}

func postJSON(t *testing.T, url, path, body string) []byte {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d: %s", path, body, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

func postBinaryQuery(t *testing.T, url, body string) *wire.Result {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.AcceptValue(0))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("binary %s: status %d: %s", body, resp.StatusCode, buf.String())
	}
	res, err := wire.Decode(resp.Body)
	if err != nil {
		t.Fatalf("binary %s: decode: %v", body, err)
	}
	return res
}

// TestShardedServiceMatchesSingleHTTP replays one random query/update
// stream against a single-engine service and a sharded one over real
// HTTP — JSON and binary protocols interleaved — and requires
// identical answers from both, including identical assigned row
// identifiers for inserts.
func TestShardedServiceMatchesSingleHTTP(t *testing.T) {
	const n = 4000
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base, sharded := httpPair(t, 21, n, shards)
			rng := rand.New(rand.NewSource(31))
			for i := 0; i < 120; i++ {
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n/25) + 1
				table := "orders"
				if i%3 == 2 {
					table = "events"
				}
				proj := ""
				if i%2 == 0 {
					proj = `,"project":["c1"]`
				}
				body := fmt.Sprintf(`{"op":"select","table":%q,"column":"c0","low":%d,"high":%d%s}`,
					table, lo, hi, proj)
				if i%4 == 3 {
					// Binary protocol leg.
					wb, gb := postBinaryQuery(t, base.URL, body), postBinaryQuery(t, sharded.URL, body)
					if wb.Count != gb.Count {
						t.Fatalf("binary query %d: sharded count %d, single %d", i, gb.Count, wb.Count)
					}
					requireSameSelection(t, fmt.Sprintf("binary query %d", i),
						canonical(wb.Rows, wb.Columns), canonical(gb.Rows, gb.Columns))
				} else {
					var wr, gr server.QueryResponse
					if err := json.Unmarshal(postJSON(t, base.URL, "/query", body), &wr); err != nil {
						t.Fatal(err)
					}
					if err := json.Unmarshal(postJSON(t, sharded.URL, "/query", body), &gr); err != nil {
						t.Fatal(err)
					}
					if wr.Count != gr.Count {
						t.Fatalf("query %d: sharded count %d, single %d", i, gr.Count, wr.Count)
					}
					requireSameSelection(t, fmt.Sprintf("query %d", i),
						canonical(wr.Rows, wr.Columns), canonical(gr.Rows, gr.Columns))
				}
				if i%6 == 1 {
					up := fmt.Sprintf(`{"op":"insert","table":"orders","rows":[[%d,%d,%d]]}`,
						rng.Intn(n), rng.Intn(n), rng.Intn(n))
					var wu, gu server.UpdateResponse
					if err := json.Unmarshal(postJSON(t, base.URL, "/update", up), &wu); err != nil {
						t.Fatal(err)
					}
					if err := json.Unmarshal(postJSON(t, sharded.URL, "/update", up), &gu); err != nil {
						t.Fatal(err)
					}
					if len(wu.Inserted) != 1 || len(gu.Inserted) != 1 || wu.Inserted[0] != gu.Inserted[0] {
						t.Fatalf("update %d: sharded assigned %v, single %v", i, gu.Inserted, wu.Inserted)
					}
					if i%12 == 7 {
						del := fmt.Sprintf(`{"op":"delete","table":"orders","rows":[%d]}`, wu.Inserted[0])
						postJSON(t, base.URL, "/update", del)
						postJSON(t, sharded.URL, "/update", del)
					}
				}
			}

			// The sharded /stats must expose the per-shard breakdown and a
			// row partition that sums to the whole table.
			var st server.Stats
			resp, err := http.Get(sharded.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.Shards != shards || len(st.ShardStats) != shards {
				t.Fatalf("sharded stats: shards=%d with %d shard stats, want %d", st.Shards, len(st.ShardStats), shards)
			}
			rows := 0
			for _, ss := range st.ShardStats {
				rows += ss.Rows
			}
			total := 0
			for _, ts := range st.Tables {
				total += ts.Rows
			}
			if rows != total {
				t.Fatalf("shard stripes hold %d row slots, tables hold %d", rows, total)
			}

			// The sharded /metrics document must still lint clean.
			mresp, err := http.Get(sharded.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer mresp.Body.Close()
			if errs := trace.LintProm(mresp.Body); len(errs) != 0 {
				t.Fatalf("sharded /metrics fails lint: %v", errs)
			}
		})
	}
}
