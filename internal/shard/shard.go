// Package shard scales the adaptive execution engine across cores by
// hosting N independent engine.Engine shards, each owning a disjoint
// row stripe of every catalog table, behind one scatter-gather front.
//
// The source paper's cracking line deliberately keeps the core
// algorithm single-threaded — structure emerges from the query stream,
// and the stream is sequential — which is why the service layer funnels
// every query through one executor goroutine. internal/partition
// already showed that in-process sharding of a single index wins at
// multiple partitions; this package lifts the same idea to the whole
// engine. Rows are striped round-robin by row identifier: global row g
// lives on shard g mod N at local identifier g div N. The mapping is
// arithmetic in both directions, appends in global order always land
// at the next local slot of the owning shard (so inserts need no
// routing table), and N=1 is the identity — a one-shard cluster is
// byte-identical to a bare engine on every deterministic counter.
//
// Every read fans out to all N shards (a stripe holds a slice of every
// value range, so no shard can be pruned), runs the same query on each
// shard's 1/N-sized adaptive structures, and merges the per-shard
// counts, ID-lists and projections; each shard pays ~1/N of the
// single-engine cracking and materialisation work, concurrently.
// Writes route to the single owning shard. The per-shard engines stay
// single-threaded: a Cluster, like an Engine, is NOT safe for
// concurrent use — the batch scheduler in internal/server (or any
// other single caller) serialises operations against it, and each
// operation internally fans out to short-lived per-shard goroutines.
package shard

import (
	"fmt"
	"io"
	"sync"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/persist"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/updates"
)

// The striping contract, shared by the in-process Cluster and the
// multi-node router (internal/router), which applies the identical
// arithmetic over the wire: global row g lives on stripe g mod N at
// local identifier g div N, and appends in global order always land at
// the next local slot of the owning stripe.

// Owner returns the stripe owning global row g among n stripes.
func Owner(g, n int) int { return g % n }

// Local returns global row g's local identifier on its owning stripe.
func Local(g, n int) int { return g / n }

// Global maps a stripe-local row identifier back to the global space:
// global = local*N + stripe.
func Global(local column.RowID, stripe, n int) column.RowID {
	return local*column.RowID(n) + column.RowID(stripe)
}

// Globalize appends the global identifiers of one stripe's local rows
// to out, in order.
func Globalize(rows column.IDList, stripe, n int, out column.IDList) column.IDList {
	for _, l := range rows {
		out = append(out, Global(l, stripe, n))
	}
	return out
}

// Stripe extracts stripe s of n from cat's base data: each table keeps
// its schema, and stripe s owns global rows s, s+n, s+2n, … as its
// local rows 0, 1, 2, …. The catalog must be freshly built (no appended
// or deleted rows): writes belong to whoever owns the global row space.
// It is how Cluster builds its per-shard catalogs and how a crackserve
// node hosts one stripe of a multi-node cluster's logical catalog.
func Stripe(cat *engine.Catalog, s, n int) (*engine.Catalog, error) {
	if n < 1 || s < 0 || s >= n {
		return nil, fmt.Errorf("shard: stripe %d/%d out of range", s, n)
	}
	names := cat.Tables()
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: catalog has no tables")
	}
	out := engine.NewCatalog()
	for _, name := range names {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		if t.NumRows() != t.BaseRows() || len(t.DeletedRows()) > 0 {
			return nil, fmt.Errorf("shard: table %q already carries writes; stripe a fresh catalog", name)
		}
		nr := t.NumRows()
		st := engine.NewTable(name)
		cnt := (nr - s + n - 1) / n
		if cnt < 0 {
			cnt = 0
		}
		for _, col := range t.Columns() {
			vals, err := t.Column(col)
			if err != nil {
				return nil, err
			}
			stripe := make([]column.Value, 0, cnt)
			for g := s; g < nr; g += n {
				stripe = append(stripe, vals[g])
			}
			if err := st.AddColumn(col, stripe); err != nil {
				return nil, err
			}
		}
		if err := out.Register(st); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// StripeResult is one stripe's contribution to a scatter-gather read:
// the qualifying count, the stripe-local row identifiers, and the
// projected values aligned with them. It is deliberately minimal so
// both an in-process engine.Result and a decoded wire response can be
// merged by the same code.
type StripeResult struct {
	Count   int
	Rows    column.IDList
	Columns map[string][]column.Value
}

// MergeStriped merges per-stripe results (parts[s] is stripe s of
// len(parts)) into one global result: counts are summed, row
// identifiers are mapped to the global space and concatenated in
// stripe order, and projected columns follow their rows. countOnly
// skips row and projection assembly. A nil part contributes nothing —
// the router uses that for stripes whose node is down (the answer is
// then explicitly partial).
func MergeStriped(parts []StripeResult, project []string, countOnly bool) StripeResult {
	n := len(parts)
	var out StripeResult
	total := 0
	for _, p := range parts {
		out.Count += p.Count
		total += len(p.Rows)
	}
	if countOnly {
		return out
	}
	out.Rows = make(column.IDList, 0, total)
	for s, p := range parts {
		out.Rows = Globalize(p.Rows, s, n, out.Rows)
	}
	if len(project) > 0 {
		out.Columns = make(map[string][]column.Value, len(project))
		for _, col := range project {
			merged := make([]column.Value, 0, total)
			for _, p := range parts {
				merged = append(merged, p.Columns[col]...)
			}
			out.Columns[col] = merged
		}
	}
	return out
}

// Cluster fronts N row-striped engine shards. Construct it with New;
// the zero value is not usable. Not safe for concurrent use (see the
// package comment).
type Cluster struct {
	shards []*engine.Engine
	// nrows is the number of global row slots per table (tombstones
	// included): the next insert's global row identifier.
	nrows map[string]int
}

// New builds a cluster of n engine shards over cat's base data: each
// table is striped round-robin by row identifier, so shard s owns
// global rows s, s+n, s+2n, … as its local rows 0, 1, 2, …. The
// catalog must be freshly built (no appended or deleted rows): writes
// belong to the cluster, which owns the global row-identifier space
// from here on. cat itself is only read.
func New(cat *engine.Catalog, n int, opts core.Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	names := cat.Tables()
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: catalog has no tables")
	}
	nrows := make(map[string]int, len(names))
	for _, name := range names {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		nrows[name] = t.NumRows()
	}
	c := &Cluster{shards: make([]*engine.Engine, n), nrows: nrows}
	for s := range c.shards {
		part, err := Stripe(cat, s, n)
		if err != nil {
			return nil, err
		}
		c.shards[s] = engine.New(part, opts)
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Engines exposes the per-shard engines, in shard order, for snapshot
// plumbing and tests. Callers must respect the cluster's
// single-caller contract.
func (c *Cluster) Engines() []*engine.Engine { return c.shards }

// Run executes one query on every shard concurrently and merges the
// per-shard results: counts are summed, row identifiers are mapped
// back to the global space and concatenated in shard order, and
// projected columns follow their rows. A one-shard cluster delegates
// directly, so its results, spans and cost counters are byte-identical
// to a bare engine's. For traced queries the fan-out and merge are
// recorded as a shard_gather span whose children are the slowest
// shard's engine phases.
func (c *Cluster) Run(q engine.Query) (*engine.Result, error) {
	if len(c.shards) == 1 {
		return c.shards[0].Run(q)
	}
	rec := q.Trace
	q.Trace = nil
	var subRecs []*trace.Recorder
	if rec != nil {
		rec.Begin(trace.PhaseShardGather)
		subRecs = make([]*trace.Recorder, len(c.shards))
	}
	results := make([]*engine.Result, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sq := q
			if rec != nil {
				subRecs[s] = trace.NewRecorder()
				sq.Trace = subRecs[s]
			}
			results[s], errs[s] = c.shards[s].Run(sq)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if rec != nil {
				rec.End(trace.Work{})
			}
			return nil, err
		}
	}

	parts := make([]StripeResult, len(results))
	for s, r := range results {
		parts[s] = StripeResult{Count: r.Count, Rows: r.Rows, Columns: r.Columns}
	}
	merged := MergeStriped(parts, q.Project, q.CountOnly)
	out := &engine.Result{
		Path: results[0].Path, Count: merged.Count,
		Rows: merged.Rows, Columns: merged.Columns,
	}
	if rec != nil {
		// The gather span's children are the slowest shard's engine
		// phases — the ones on the query's critical path — and its work
		// delta is the summed work of all shards, so span work still
		// reconciles with the movement of the cluster's counters.
		slowest := 0
		for s := range subRecs {
			if subRecs[s].Root().ChildDurUs() > subRecs[slowest].Root().ChildDurUs() {
				slowest = s
			}
		}
		rec.Import(subRecs[slowest].Root().Spans)
		var w trace.Work
		for s := range subRecs {
			w.Add(subRecs[s].Root().SumWork())
		}
		rec.End(w)
	}
	return out, nil
}

// InsertRow appends one row to the table, returning its global row
// identifier. The row lands on shard g mod N, where g is the next
// global row slot; by the striping invariant the owning shard's local
// append position is exactly g div N.
func (c *Cluster) InsertRow(table string, vals []column.Value) (column.RowID, error) {
	g, ok := c.nrows[table]
	if !ok {
		// Unknown table: let a shard engine produce the canonical error.
		return c.shards[0].InsertRow(table, vals)
	}
	s := Owner(g, len(c.shards))
	local, err := c.shards[s].InsertRow(table, vals)
	if err != nil {
		return 0, err
	}
	c.nrows[table] = g + 1
	want := column.RowID(Local(g, len(c.shards)))
	if local != want {
		panic(fmt.Sprintf("shard: stripe invariant broken: table %q global row %d landed at local %d on shard %d, want %d",
			table, g, local, s, want))
	}
	return column.RowID(g), nil
}

// DeleteRow tombstones the global row on its owning shard.
func (c *Cluster) DeleteRow(table string, row column.RowID) error {
	n := column.RowID(len(c.shards))
	return c.shards[int(row%n)].DeleteRow(table, row/n)
}

// Tables aggregates the catalog summary across shards: row and
// live-row counts are summed over the stripes; schema and merge policy
// are identical on every shard and reported from shard 0.
func (c *Cluster) Tables() []engine.TableInfo {
	infos := c.shards[0].Tables()
	for s := 1; s < len(c.shards); s++ {
		for i, ti := range c.shards[s].Tables() {
			infos[i].Rows += ti.Rows
			infos[i].LiveRows += ti.LiveRows
		}
	}
	return infos
}

// Structures sums the adaptive-structure inventory over the shards.
func (c *Cluster) Structures() engine.StructureStats {
	var agg engine.StructureStats
	for _, e := range c.shards {
		s := e.Structures()
		agg.Crackers += s.Crackers
		agg.MapSets += s.MapSets
		agg.Parallels += s.Parallels
		agg.CrackerPieces += s.CrackerPieces
		agg.MapPieces += s.MapPieces
		agg.ParallelPieces += s.ParallelPieces
		agg.Pieces += s.Pieces
	}
	return agg
}

// PlanStats reports shard 0's planner state as the cluster's. Every
// shard sees the same query stream over the same data distribution, so
// the planners converge on the same choices; reporting one keeps the
// surface identical to a single engine's.
func (c *Cluster) PlanStats() []engine.PlanStats { return c.shards[0].PlanStats() }

// Cost sums the cumulative logical work over the shards, in shard
// order. Each shard's counters are deterministic for a given stream,
// so the sum is too — goroutine scheduling cannot move it.
func (c *Cluster) Cost() cost.Counters {
	var agg cost.Counters
	for _, e := range c.shards {
		agg.Add(e.Cost())
	}
	return agg
}

// WriteStats sums the write-path state over the shards.
func (c *Cluster) WriteStats() engine.WriteStats {
	var agg engine.WriteStats
	for _, e := range c.shards {
		ws := e.WriteStats()
		agg.Inserts += ws.Inserts
		agg.Deletes += ws.Deletes
		agg.Invalidations += ws.Invalidations
		agg.PendingInserts += ws.PendingInserts
		agg.PendingDeletes += ws.PendingDeletes
		agg.MergedInserts += ws.MergedInserts
		agg.MergedDeletes += ws.MergedDeletes
	}
	return agg
}

// ShardStats reports each shard's stripe size, logical work and
// pending-update depth, so stripe or write skew is visible.
func (c *Cluster) ShardStats() []engine.ShardStat {
	out := make([]engine.ShardStat, len(c.shards))
	for s, e := range c.shards {
		cc := e.Cost()
		ws := e.WriteStats()
		st := engine.ShardStat{
			Shard:          s,
			WorkTotal:      cc.Total(),
			MergeWork:      cc.MergeWork,
			PendingInserts: ws.PendingInserts,
			PendingDeletes: ws.PendingDeletes,
		}
		for _, ti := range e.Tables() {
			st.Rows += ti.Rows
			st.LiveRows += ti.LiveRows
		}
		out[s] = st
	}
	return out
}

// SetEventLog routes every shard's reorganisation events into the same
// log (trace.Log is internally synchronised, so concurrent shard
// executions may append to it).
func (c *Cluster) SetEventLog(l *trace.Log) {
	for _, e := range c.shards {
		e.SetEventLog(l)
	}
}

// SetMergePolicy sets the default write merge policy on every shard.
func (c *Cluster) SetMergePolicy(p updates.MergePolicy) {
	for _, e := range c.shards {
		e.SetMergePolicy(p)
	}
}

// SetTableMergePolicy overrides one table's merge policy on every
// shard.
func (c *Cluster) SetTableMergePolicy(table string, p updates.MergePolicy) error {
	for _, e := range c.shards {
		if err := e.SetTableMergePolicy(table, p); err != nil {
			return err
		}
	}
	return nil
}

// SetParallelPartitions configures the parallel access path on every
// shard.
func (c *Cluster) SetParallelPartitions(p int) {
	for _, e := range c.shards {
		e.SetParallelPartitions(p)
	}
}

// SetParallelWorkers configures the parallel access path's worker
// bound on every shard.
func (c *Cluster) SetParallelWorkers(w int) {
	for _, e := range c.shards {
		e.SetParallelWorkers(w)
	}
}

// SetPlannerOptions tunes the PathAuto planner on every shard.
func (c *Cluster) SetPlannerOptions(opts engine.PlannerOptions) {
	for _, e := range c.shards {
		e.SetPlannerOptions(opts)
	}
}

// Validate checks every shard's adaptive structures against its
// stripe.
func (c *Cluster) Validate() error {
	for s, e := range c.shards {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// SnapshotTo writes the cluster's adaptive state — one engine state
// per shard, in shard order — as a persist cluster snapshot.
func (c *Cluster) SnapshotTo(w io.Writer) error {
	states := make([]engine.State, len(c.shards))
	for s, e := range c.shards {
		states[s] = e.Snapshot()
	}
	return persist.SaveCluster(w, states)
}

// Restore applies per-shard engine states, as written by SnapshotTo,
// to a freshly built cluster over the same striped base data. The
// snapshot's shard count must match: re-striping cracked state across
// a different shard count would scramble the row identifier mapping.
func (c *Cluster) Restore(states []engine.State) error {
	if len(states) != len(c.shards) {
		return fmt.Errorf("shard: snapshot holds %d shard states, cluster has %d shards; restart with -shards %d or delete the snapshot",
			len(states), len(c.shards), len(states))
	}
	for s, e := range c.shards {
		if err := e.Restore(states[s]); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	// Appended rows arrived through the cluster's global row space:
	// recover each table's global slot count as the sum of the shard
	// slot counts (the stripes partition the global identifiers).
	for name := range c.nrows {
		total := 0
		for _, e := range c.shards {
			for _, ti := range e.Tables() {
				if ti.Name == name {
					total += ti.Rows
				}
			}
		}
		c.nrows[name] = total
	}
	return nil
}
