package workload

import (
	"testing"

	"adaptiveindex/internal/column"
)

func TestDataUniformDeterministic(t *testing.T) {
	a := DataUniform(1, 1000, 500)
	b := DataUniform(1, 1000, 500)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce identical data")
		}
		if a[i] < 0 || a[i] >= 500 {
			t.Fatalf("value %d outside domain", a[i])
		}
	}
	c := DataUniform(2, 1000, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

func TestDataSortedAndReversed(t *testing.T) {
	s := DataSorted(100)
	r := DataReversed(100)
	for i := 0; i < 100; i++ {
		if s[i] != column.Value(i) {
			t.Fatalf("sorted[%d] = %d", i, s[i])
		}
		if r[i] != column.Value(99-i) {
			t.Fatalf("reversed[%d] = %d", i, r[i])
		}
	}
}

func TestDataZipfSkew(t *testing.T) {
	vals := DataZipf(3, 10000, 10000, 1.5)
	low := 0
	for _, v := range vals {
		if v < 0 || v >= 10000 {
			t.Fatalf("value %d outside domain", v)
		}
		if v < 100 {
			low++
		}
	}
	// A Zipf distribution concentrates mass on small values.
	if low < len(vals)/2 {
		t.Fatalf("expected most values below 100, got %d of %d", low, len(vals))
	}
	// s <= 1 must be clamped, not panic.
	_ = DataZipf(3, 100, 100, 0.5)
}

func TestDataDuplicates(t *testing.T) {
	vals := DataDuplicates(4, 1000, 3)
	seen := map[column.Value]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) > 3 {
		t.Fatalf("expected at most 3 distinct values, got %d", len(seen))
	}
	_ = DataDuplicates(4, 10, 0) // clamped, must not panic
}

func TestUniformGenerator(t *testing.T) {
	g := NewUniform(5, 0, 10000, 0.1)
	if g.Name() != "uniform" {
		t.Fatal("name")
	}
	for i := 0; i < 500; i++ {
		r := g.Next()
		if !r.HasLow || !r.HasHigh {
			t.Fatal("uniform queries must be bounded")
		}
		if r.Low < 0 || r.High > 10000+1000 {
			t.Fatalf("query %s escapes the domain", r)
		}
		if width := r.High - r.Low; width != 1000 {
			t.Fatalf("width = %d, want 1000", width)
		}
	}
	// Determinism.
	g1, g2 := NewUniform(7, 0, 100, 0.2), NewUniform(7, 0, 100, 0.2)
	for i := 0; i < 50; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed must produce identical queries")
		}
	}
}

func TestUniformTinyDomain(t *testing.T) {
	g := NewUniform(6, 0, 1, 0.5)
	r := g.Next()
	if r.Empty() {
		t.Fatalf("query %s is empty", r)
	}
}

func TestSkewedGenerator(t *testing.T) {
	g := NewSkewed(8, 0, 100000, 0.01, 1.5)
	if g.Name() != "skewed" {
		t.Fatal("name")
	}
	hot := 0
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.Low < 0 || r.High > 100000 {
			t.Fatalf("query %s escapes the domain", r)
		}
		if r.Low < 10000 {
			hot++
		}
	}
	if hot < 600 {
		t.Fatalf("expected a hot region near the low end, got %d/1000 queries there", hot)
	}
	_ = NewSkewed(8, 0, 1, 0.5, 0.2) // degenerate parameters must not panic
}

func TestSequentialGenerator(t *testing.T) {
	g := NewSequential(0, 100, 0.1)
	if g.Name() != "sequential" {
		t.Fatal("name")
	}
	prev := column.Value(-1)
	wrapped := false
	for i := 0; i < 20; i++ {
		r := g.Next()
		if r.Low <= prev && !wrapped {
			if r.Low == 0 {
				wrapped = true
			} else {
				t.Fatalf("sequential generator went backwards: %d after %d", r.Low, prev)
			}
		}
		prev = r.Low
	}
	if !wrapped {
		t.Fatal("generator should have wrapped around within 20 steps of width 10")
	}
}

func TestShiftingGenerator(t *testing.T) {
	g := NewShifting(9, 0, 1000000, 0.001, 0.1, 50)
	if g.Name() != "shifting" {
		t.Fatal("name")
	}
	lo1, hi1 := g.CurrentFocus()
	for i := 0; i < 50; i++ {
		r := g.Next()
		if r.Low < lo1 || r.High > hi1 {
			t.Fatalf("query %s escapes focus [%d,%d)", r, lo1, hi1)
		}
	}
	// After shiftEvery queries the focus must (almost surely) move.
	g.Next()
	lo2, _ := g.CurrentFocus()
	if lo1 == lo2 {
		// One collision is possible but unlikely; try once more.
		for i := 0; i < 51; i++ {
			g.Next()
		}
		lo3, _ := g.CurrentFocus()
		if lo3 == lo1 {
			t.Fatal("focus did not shift after shiftEvery queries")
		}
	}
	_ = NewShifting(9, 0, 10, 0.5, 0, 0) // degenerate parameters must not panic
}

func TestPointGenerator(t *testing.T) {
	g := NewPoint(10, 0, 1000)
	if g.Name() != "point" {
		t.Fatal("name")
	}
	for i := 0; i < 100; i++ {
		r := g.Next()
		if !r.IncLow || !r.IncHigh || r.Low != r.High {
			t.Fatalf("point query %s is not an equality predicate", r)
		}
	}
}

func TestMixedGenerator(t *testing.T) {
	u := NewUniform(11, 0, 1000, 0.1)
	p := NewPoint(12, 0, 1000)
	m, err := NewMixed(13, []Generator{u, p}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mixed" {
		t.Fatal("name")
	}
	points, ranges := 0, 0
	for i := 0; i < 500; i++ {
		r := m.Next()
		if r.Low == r.High {
			points++
		} else {
			ranges++
		}
	}
	if points == 0 || ranges == 0 {
		t.Fatalf("mix is degenerate: %d points, %d ranges", points, ranges)
	}

	if _, err := NewMixed(1, nil, nil); err == nil {
		t.Fatal("empty mix must error")
	}
	if _, err := NewMixed(1, []Generator{u}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched weights must error")
	}
	if _, err := NewMixed(1, []Generator{u}, []float64{-1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := NewMixed(1, []Generator{u}, []float64{0}); err == nil {
		t.Fatal("all-zero weights must error")
	}
}

func TestQueriesHelper(t *testing.T) {
	g := NewUniform(14, 0, 100, 0.1)
	qs := Queries(g, 25)
	if len(qs) != 25 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, r := range qs {
		if r.Empty() {
			t.Fatalf("empty query %s", r)
		}
	}
}

func TestHotSetDrawsFromFixedPool(t *testing.T) {
	h := NewHotSet(21, 0, 100_000, 0.01, 16, 1.3)
	if h.Name() != "hotset" {
		t.Fatalf("name %q", h.Name())
	}
	if h.PoolSize() != 16 {
		t.Fatalf("pool size %d, want 16", h.PoolSize())
	}
	seen := make(map[column.Range]int)
	for i := 0; i < 2000; i++ {
		seen[h.Next()]++
	}
	if len(seen) > 16 {
		t.Fatalf("drew %d distinct ranges from a pool of 16", len(seen))
	}
	// Zipf popularity: the hottest range must dominate a uniform share.
	max := 0
	for _, n := range seen {
		if n > max {
			max = n
		}
	}
	if max <= 2000/16 {
		t.Fatalf("no hot range: max draws %d of 2000", max)
	}
}

func TestHotSetSharedPoolOverlaps(t *testing.T) {
	pool := Queries(NewUniform(5, 0, 10_000, 0.02), 8)
	a := NewHotSetFrom(pool, 1, 1.3)
	b := NewHotSetFrom(pool, 2, 1.3)
	inPool := func(r column.Range) bool {
		for _, p := range pool {
			if p == r {
				return true
			}
		}
		return false
	}
	for i := 0; i < 100; i++ {
		if !inPool(a.Next()) || !inPool(b.Next()) {
			t.Fatal("draw outside the shared pool")
		}
	}
}

func TestFromSpecBuildsEveryNamedShape(t *testing.T) {
	for _, name := range Names() {
		g, err := FromSpec(name, 11, 0, 50_000, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("FromSpec(%q) built generator named %q", name, g.Name())
		}
		for i := 0; i < 50; i++ {
			r := g.Next()
			if r.HasLow && r.HasHigh && r.Low > r.High {
				t.Fatalf("%s: inverted range %s", name, r)
			}
		}
	}
	if _, err := FromSpec("tsunami", 1, 0, 100, 0.1); err == nil {
		t.Fatal("unknown shape must error")
	}
}

func TestSessionGeneratorsShareHotSetPool(t *testing.T) {
	gens, err := SessionGenerators("hotset", 9, 4, 0, 10_000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 4 {
		t.Fatalf("%d generators, want 4", len(gens))
	}
	// All sessions must draw from one pool: the union of distinct
	// ranges across sessions stays within one pool's size.
	seen := make(map[column.Range]bool)
	for _, g := range gens {
		for i := 0; i < 200; i++ {
			seen[g.Next()] = true
		}
	}
	if len(seen) > 32 {
		t.Fatalf("sessions drew %d distinct ranges; hot-set sessions must share one pool", len(seen))
	}

	// Non-hot-set shapes get independent streams.
	uni, err := SessionGenerators("uniform", 9, 2, 0, 10_000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if uni[0].Next() == uni[1].Next() {
		t.Fatal("uniform sessions must not replay identical streams")
	}

	if _, err := SessionGenerators("tsunami", 1, 2, 0, 100, 0.1); err == nil {
		t.Fatal("unknown shape must error")
	}
}

func TestSessionGeneratorsStaggerSequentialPhases(t *testing.T) {
	gens, err := SessionGenerators("sequential", 1, 4, 0, 10_000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	firsts := make(map[column.Range]bool)
	for _, g := range gens {
		firsts[g.Next()] = true
	}
	if len(firsts) != 4 {
		t.Fatalf("sequential sessions must start at distinct phases, got %d distinct of 4", len(firsts))
	}
}

func TestFixedTargetCarriesTargetThrough(t *testing.T) {
	target := Target{Table: "orders", Column: "c0", Project: []string{"c1", "c2"}}
	g := NewFixedTarget(target, NewUniform(3, 0, 1000, 0.05))
	if g.Name() != "selectproject(uniform)" {
		t.Fatalf("name %q", g.Name())
	}
	ref := NewUniform(3, 0, 1000, 0.05)
	for i := 0; i < 50; i++ {
		q := g.NextQuery()
		if q.Table != "orders" || q.Column != "c0" || len(q.Project) != 2 {
			t.Fatalf("query %d lost its target: %+v", i, q)
		}
		if q.R != ref.Next() {
			t.Fatalf("query %d predicate differs from the wrapped generator", i)
		}
	}
	bare := NewFixedTarget(Target{Table: "orders", Column: "c0"}, NewUniform(4, 0, 1000, 0.05))
	if bare.Name() != "uniform" {
		t.Fatalf("projection-less target name %q", bare.Name())
	}
}

func TestMultiTableRoundRobins(t *testing.T) {
	a := NewFixedTarget(Target{Table: "a", Column: "c0"}, NewUniform(1, 0, 100, 0.1))
	b := NewFixedTarget(Target{Table: "b", Column: "c1"}, NewUniform(2, 0, 100, 0.1))
	m := NewMultiTable(a, b)
	for i := 0; i < 10; i++ {
		q := m.NextQuery()
		want := "a"
		if i%2 == 1 {
			want = "b"
		}
		if q.Table != want {
			t.Fatalf("query %d hit table %q, want %q", i, q.Table, want)
		}
	}
}

func TestSelectProjectSessionsShareAPool(t *testing.T) {
	target := Target{Table: "data", Column: "c0", Project: []string{"c1"}}
	gens := SelectProjectSessions(7, 4, target, 0, 10000, 0.01)
	if len(gens) != 4 {
		t.Fatalf("got %d sessions", len(gens))
	}
	seen := make(map[column.Range]int)
	for _, g := range gens {
		for i := 0; i < 100; i++ {
			q := g.NextQuery()
			if q.Table != "data" || len(q.Project) != 1 {
				t.Fatalf("query lost its target: %+v", q)
			}
			seen[q.R]++
		}
	}
	// All sessions draw from one 32-range pool, so the distinct
	// predicate count is bounded by it and overlap is guaranteed.
	if len(seen) > 32 {
		t.Fatalf("%d distinct predicates, want <= 32 (shared pool)", len(seen))
	}
	overlap := false
	for _, n := range seen {
		if n > 1 {
			overlap = true
			break
		}
	}
	if !overlap {
		t.Fatal("sessions never repeated a predicate; shared-scan batching has nothing to share")
	}
}

func TestMultiTableSessions(t *testing.T) {
	targets := []Target{
		{Table: "orders", Column: "c0", Project: []string{"c1"}},
		{Table: "events", Column: "c0"},
	}
	gens, err := MultiTableSessions("hotset", 5, 3, targets, 0, 10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("got %d sessions", len(gens))
	}
	tables := make(map[string]int)
	for _, g := range gens {
		if g.Name() != "multitable" {
			t.Fatalf("name %q", g.Name())
		}
		for i := 0; i < 40; i++ {
			q := g.NextQuery()
			tables[q.Table]++
			if q.Table == "orders" && len(q.Project) != 1 {
				t.Fatalf("orders query lost its projection: %+v", q)
			}
			if q.Table == "events" && len(q.Project) != 0 {
				t.Fatalf("events query grew a projection: %+v", q)
			}
		}
	}
	if tables["orders"] != tables["events"] || tables["orders"] == 0 {
		t.Fatalf("round robin uneven: %+v", tables)
	}
	if _, err := MultiTableSessions("hotset", 5, 3, nil, 0, 100, 0.1); err == nil {
		t.Fatal("no targets must fail")
	}
	if _, err := MultiTableSessions("no-such-shape", 5, 3, targets, 0, 100, 0.1); err == nil {
		t.Fatal("unknown shape must fail")
	}
}
