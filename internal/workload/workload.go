// Package workload provides deterministic data and query generators for
// the adaptive-indexing experiments.
//
// The adaptive indexing benchmark (Graefe, Idreos, Kuno, Manegold,
// TPCTC 2010) and the evaluations of the surveyed papers exercise the
// indexes with a handful of canonical workload shapes: uniformly random
// range queries of a fixed selectivity, skewed workloads that hammer a
// hot region, sequentially sliding ranges (cracking's worst case),
// periodically shifting focus (the dynamic-workload scenario that
// motivates adaptive indexing in the first place), point lookups and
// mixtures. All generators here are deterministic given their seed so
// experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"adaptiveindex/internal/column"
)

// Generator produces an endless, deterministic stream of range
// predicates.
type Generator interface {
	// Name identifies the workload shape in reports.
	Name() string
	// Next returns the next query predicate.
	Next() column.Range
}

// Queries drains n predicates from the generator into a slice.
func Queries(g Generator, n int) []column.Range {
	out := make([]column.Range, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// ---------------------------------------------------------------------------
// Data generators
// ---------------------------------------------------------------------------

// DataUniform returns n values drawn uniformly from [0, domain).
func DataUniform(seed int64, n, domain int) []column.Value {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return vals
}

// DataSorted returns the values 0..n-1 in order — the already-indexed
// best case.
func DataSorted(n int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(i)
	}
	return vals
}

// DataReversed returns the values n-1..0 — a fully inverted column.
func DataReversed(n int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(n - 1 - i)
	}
	return vals
}

// DataZipf returns n values skewed towards the low end of [0, domain)
// with Zipf parameter s (s > 1; larger is more skewed).
func DataZipf(seed int64, n, domain int, s float64) []column.Value {
	rng := rand.New(rand.NewSource(seed))
	if s <= 1 {
		s = 1.01
	}
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(z.Uint64())
	}
	return vals
}

// DataDuplicates returns n values drawn from only `distinct` different
// values, stressing duplicate handling.
func DataDuplicates(seed int64, n, distinct int) []column.Value {
	if distinct < 1 {
		distinct = 1
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(distinct))
	}
	return vals
}

// ---------------------------------------------------------------------------
// Query generators
// ---------------------------------------------------------------------------

// Uniform generates range queries whose low end is uniform over the
// domain and whose width corresponds to the requested selectivity.
type Uniform struct {
	rng        *rand.Rand
	domainLow  column.Value
	domainHigh column.Value
	width      column.Value
}

// NewUniform creates a uniform range-query generator over
// [domainLow, domainHigh) with the given selectivity (fraction of the
// domain covered by each query, e.g. 0.1 for 10%).
func NewUniform(seed int64, domainLow, domainHigh column.Value, selectivity float64) *Uniform {
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	return &Uniform{
		rng:        rand.New(rand.NewSource(seed)),
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
	}
}

// Name identifies the workload shape.
func (u *Uniform) Name() string { return "uniform" }

// Next returns the next query predicate.
func (u *Uniform) Next() column.Range {
	span := u.domainHigh - u.domainLow - u.width
	if span < 1 {
		span = 1
	}
	lo := u.domainLow + column.Value(u.rng.Int63n(int64(span)))
	return column.NewRange(lo, lo+u.width)
}

// Skewed generates range queries whose position is Zipf-distributed, so
// a small hot region receives most of the queries.
type Skewed struct {
	rng        *rand.Rand
	zipf       *rand.Zipf
	domainLow  column.Value
	domainHigh column.Value
	width      column.Value
}

// NewSkewed creates a skewed range-query generator; s controls the
// skew (s > 1, larger is more skewed).
func NewSkewed(seed int64, domainLow, domainHigh column.Value, selectivity, s float64) *Skewed {
	rng := rand.New(rand.NewSource(seed))
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	if s <= 1 {
		s = 1.3
	}
	span := uint64(domainHigh - domainLow)
	if span < 2 {
		span = 2
	}
	return &Skewed{
		rng:        rng,
		zipf:       rand.NewZipf(rng, s, 1, span-1),
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
	}
}

// Name identifies the workload shape.
func (s *Skewed) Name() string { return "skewed" }

// Next returns the next query predicate.
func (s *Skewed) Next() column.Range {
	lo := s.domainLow + column.Value(s.zipf.Uint64())
	hi := lo + s.width
	if hi > s.domainHigh {
		hi = s.domainHigh
	}
	return column.NewRange(lo, hi)
}

// Sequential generates ranges that slide monotonically through the
// domain, wrapping around at the end — the access pattern that defeats
// plain cracking's convergence and motivates stochastic pivots.
type Sequential struct {
	domainLow  column.Value
	domainHigh column.Value
	width      column.Value
	step       column.Value
	next       column.Value
}

// NewSequential creates a sliding-range generator with the given
// selectivity; each query advances by one query width.
func NewSequential(domainLow, domainHigh column.Value, selectivity float64) *Sequential {
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	return &Sequential{
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
		step:       width,
		next:       domainLow,
	}
}

// Name identifies the workload shape.
func (s *Sequential) Name() string { return "sequential" }

// Next returns the next query predicate.
func (s *Sequential) Next() column.Range {
	lo := s.next
	hi := lo + s.width
	if hi >= s.domainHigh {
		hi = s.domainHigh
		s.next = s.domainLow
	} else {
		s.next = lo + s.step
	}
	return column.NewRange(lo, hi)
}

// Shifting focuses all queries on one sub-domain for a while, then
// jumps to another sub-domain — the "workload change" scenario used to
// compare offline, online and adaptive indexing (experiment E8).
type Shifting struct {
	rng         *rand.Rand
	domainLow   column.Value
	domainHigh  column.Value
	width       column.Value
	focusFrac   float64
	shiftEvery  int
	issued      int
	focusOffset column.Value
	focusSpan   column.Value
}

// NewShifting creates a generator that confines its queries to a window
// covering focusFrac of the domain and moves that window every
// shiftEvery queries.
func NewShifting(seed int64, domainLow, domainHigh column.Value, selectivity, focusFrac float64, shiftEvery int) *Shifting {
	if shiftEvery < 1 {
		shiftEvery = 1
	}
	if focusFrac <= 0 || focusFrac > 1 {
		focusFrac = 0.2
	}
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	s := &Shifting{
		rng:        rand.New(rand.NewSource(seed)),
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
		focusFrac:  focusFrac,
		shiftEvery: shiftEvery,
	}
	s.pickFocus()
	return s
}

func (s *Shifting) pickFocus() {
	domain := s.domainHigh - s.domainLow
	s.focusSpan = column.Value(float64(domain) * s.focusFrac)
	if s.focusSpan <= s.width {
		s.focusSpan = s.width + 1
	}
	maxOffset := domain - s.focusSpan
	if maxOffset < 1 {
		maxOffset = 1
	}
	s.focusOffset = s.domainLow + column.Value(s.rng.Int63n(int64(maxOffset)))
}

// Name identifies the workload shape.
func (s *Shifting) Name() string { return "shifting" }

// Next returns the next query predicate.
func (s *Shifting) Next() column.Range {
	if s.issued > 0 && s.issued%s.shiftEvery == 0 {
		s.pickFocus()
	}
	s.issued++
	span := s.focusSpan - s.width
	if span < 1 {
		span = 1
	}
	lo := s.focusOffset + column.Value(s.rng.Int63n(int64(span)))
	return column.NewRange(lo, lo+s.width)
}

// CurrentFocus exposes the active focus window, used by tests.
func (s *Shifting) CurrentFocus() (column.Value, column.Value) {
	return s.focusOffset, s.focusOffset + s.focusSpan
}

// Point generates equality predicates uniformly over the domain.
type Point struct {
	rng        *rand.Rand
	domainLow  column.Value
	domainHigh column.Value
}

// NewPoint creates a point-query generator over [domainLow, domainHigh).
func NewPoint(seed int64, domainLow, domainHigh column.Value) *Point {
	return &Point{rng: rand.New(rand.NewSource(seed)), domainLow: domainLow, domainHigh: domainHigh}
}

// Name identifies the workload shape.
func (p *Point) Name() string { return "point" }

// Next returns the next query predicate.
func (p *Point) Next() column.Range {
	span := p.domainHigh - p.domainLow
	if span < 1 {
		span = 1
	}
	return column.Point(p.domainLow + column.Value(p.rng.Int63n(int64(span))))
}

// HotSet draws every query from a fixed pool of distinct ranges with
// Zipf-distributed popularity — the shape interactive exploration front
// ends produce (IDEBench): a dashboard's handful of filters re-issued
// by many concurrent sessions, a few of them far more often than the
// rest. It is the canonical overlapping workload for the query service
// layer's shared-scan batching, because concurrent sessions frequently
// ask for literally the same predicate inside one batch window.
type HotSet struct {
	pool []column.Range
	zipf *rand.Zipf
}

// NewHotSet creates a hot-set generator: poolSize distinct uniform
// ranges of the given selectivity over [domainLow, domainHigh), drawn
// with Zipf parameter s (s > 1, larger concentrates more queries on the
// hottest ranges).
func NewHotSet(seed int64, domainLow, domainHigh column.Value, selectivity float64, poolSize int, s float64) *HotSet {
	if poolSize < 2 {
		poolSize = 2
	}
	if s <= 1 {
		s = 1.3
	}
	pool := Queries(NewUniform(seed, domainLow, domainHigh, selectivity), poolSize)
	return NewHotSetFrom(pool, seed+1, s)
}

// NewHotSetFrom creates a hot-set generator drawing from an existing
// pool with its own draw sequence. Concurrent sessions exploring the
// same dashboard share one pool but draw independently — the
// cross-session overlap that makes shared-scan batching pay.
func NewHotSetFrom(pool []column.Range, seed int64, s float64) *HotSet {
	if s <= 1 {
		s = 1.3
	}
	rng := rand.New(rand.NewSource(seed))
	return &HotSet{pool: pool, zipf: rand.NewZipf(rng, s, 1, uint64(len(pool)-1))}
}

// Name identifies the workload shape.
func (h *HotSet) Name() string { return "hotset" }

// Next returns the next query predicate.
func (h *HotSet) Next() column.Range { return h.pool[h.zipf.Uint64()] }

// PoolSize returns the number of distinct ranges queries are drawn
// from.
func (h *HotSet) PoolSize() int { return len(h.pool) }

// Mixed interleaves several generators with the given weights.
type Mixed struct {
	rng     *rand.Rand
	gens    []Generator
	weights []float64
	total   float64
}

// NewMixed creates a generator that picks one of the given generators
// for every query, with probability proportional to its weight.
func NewMixed(seed int64, gens []Generator, weights []float64) (*Mixed, error) {
	if len(gens) == 0 || len(gens) != len(weights) {
		return nil, fmt.Errorf("workload: %d generators but %d weights", len(gens), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: all weights are zero")
	}
	return &Mixed{rng: rand.New(rand.NewSource(seed)), gens: gens, weights: weights, total: total}, nil
}

// Name identifies the workload shape.
func (m *Mixed) Name() string { return "mixed" }

// Next returns the next query predicate.
func (m *Mixed) Next() column.Range {
	x := m.rng.Float64() * m.total
	for i, w := range m.weights {
		if x < w {
			return m.gens[i].Next()
		}
		x -= w
	}
	return m.gens[len(m.gens)-1].Next()
}

// ---------------------------------------------------------------------------
// Named construction (flags and wire formats)
// ---------------------------------------------------------------------------

// Names lists the workload shapes FromSpec can build, for flag help
// texts and error messages.
func Names() []string {
	return []string{"uniform", "skewed", "sequential", "shifting", "point", "hotset"}
}

// FromSpec builds a generator from its wire/flag name, so the load
// generator and the query service daemon can replay any workload shape
// without compiling in per-shape plumbing. Shape parameters beyond the
// common (seed, domain, selectivity) triple use the same canonical
// values as the experiment suite.
func FromSpec(name string, seed int64, domainLow, domainHigh column.Value, selectivity float64) (Generator, error) {
	switch name {
	case "uniform":
		return NewUniform(seed, domainLow, domainHigh, selectivity), nil
	case "skewed":
		return NewSkewed(seed, domainLow, domainHigh, selectivity, 1.4), nil
	case "sequential":
		return NewSequential(domainLow, domainHigh, selectivity), nil
	case "shifting":
		return NewShifting(seed, domainLow, domainHigh, selectivity, 0.1, 200), nil
	case "point":
		return NewPoint(seed, domainLow, domainHigh), nil
	case "hotset":
		return NewHotSet(seed, domainLow, domainHigh, selectivity, 32, 1.3), nil
	default:
		return nil, fmt.Errorf("workload: unknown shape %q (have %s)", name, strings.Join(Names(), ", "))
	}
}

// SessionGenerators returns one generator per concurrent session, all
// replaying the named workload shape as independent users of the same
// exploration: hot-set sessions share one pool of ranges (and therefore
// overlap, the case shared-scan batching exists for), sequential
// sessions are phase-staggered evenly across the domain cycle (the
// generator is deterministic and seedless, so without the stagger every
// session would slide in lockstep), and the remaining shapes get
// per-session random streams.
func SessionGenerators(name string, seed int64, sessions int, domainLow, domainHigh column.Value, selectivity float64) ([]Generator, error) {
	if sessions < 1 {
		sessions = 1
	}
	gens := make([]Generator, sessions)
	if name == "hotset" {
		pool := Queries(NewUniform(seed, domainLow, domainHigh, selectivity), 32)
		for i := range gens {
			gens[i] = NewHotSetFrom(pool, seed+int64(i)+1, 1.3)
		}
		return gens, nil
	}
	// One full slide through the domain takes about 1/selectivity
	// queries.
	cycle := 1
	if selectivity > 0 && selectivity < 1 {
		cycle = int(1 / selectivity)
	}
	for i := range gens {
		g, err := FromSpec(name, seed+int64(i), domainLow, domainHigh, selectivity)
		if err != nil {
			return nil, err
		}
		if name == "sequential" {
			for skip := i * cycle / sessions; skip > 0; skip-- {
				g.Next()
			}
		}
		gens[i] = g
	}
	return gens, nil
}
