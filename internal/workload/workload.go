// Package workload provides deterministic data and query generators for
// the adaptive-indexing experiments.
//
// The adaptive indexing benchmark (Graefe, Idreos, Kuno, Manegold,
// TPCTC 2010) and the evaluations of the surveyed papers exercise the
// indexes with a handful of canonical workload shapes: uniformly random
// range queries of a fixed selectivity, skewed workloads that hammer a
// hot region, sequentially sliding ranges (cracking's worst case),
// periodically shifting focus (the dynamic-workload scenario that
// motivates adaptive indexing in the first place), point lookups and
// mixtures. All generators here are deterministic given their seed so
// experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"adaptiveindex/internal/column"
)

// Generator produces an endless, deterministic stream of range
// predicates.
type Generator interface {
	// Name identifies the workload shape in reports.
	Name() string
	// Next returns the next query predicate.
	Next() column.Range
}

// Queries drains n predicates from the generator into a slice.
func Queries(g Generator, n int) []column.Range {
	out := make([]column.Range, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// ---------------------------------------------------------------------------
// Data generators
// ---------------------------------------------------------------------------

// DataUniform returns n values drawn uniformly from [0, domain).
func DataUniform(seed int64, n, domain int) []column.Value {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(domain))
	}
	return vals
}

// DataSorted returns the values 0..n-1 in order — the already-indexed
// best case.
func DataSorted(n int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(i)
	}
	return vals
}

// DataReversed returns the values n-1..0 — a fully inverted column.
func DataReversed(n int) []column.Value {
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(n - 1 - i)
	}
	return vals
}

// DataZipf returns n values skewed towards the low end of [0, domain)
// with Zipf parameter s (s > 1; larger is more skewed).
func DataZipf(seed int64, n, domain int, s float64) []column.Value {
	rng := rand.New(rand.NewSource(seed))
	if s <= 1 {
		s = 1.01
	}
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(z.Uint64())
	}
	return vals
}

// DataDuplicates returns n values drawn from only `distinct` different
// values, stressing duplicate handling.
func DataDuplicates(seed int64, n, distinct int) []column.Value {
	if distinct < 1 {
		distinct = 1
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]column.Value, n)
	for i := range vals {
		vals[i] = column.Value(rng.Intn(distinct))
	}
	return vals
}

// ---------------------------------------------------------------------------
// Query generators
// ---------------------------------------------------------------------------

// Uniform generates range queries whose low end is uniform over the
// domain and whose width corresponds to the requested selectivity.
type Uniform struct {
	rng        *rand.Rand
	domainLow  column.Value
	domainHigh column.Value
	width      column.Value
}

// NewUniform creates a uniform range-query generator over
// [domainLow, domainHigh) with the given selectivity (fraction of the
// domain covered by each query, e.g. 0.1 for 10%).
func NewUniform(seed int64, domainLow, domainHigh column.Value, selectivity float64) *Uniform {
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	return &Uniform{
		rng:        rand.New(rand.NewSource(seed)),
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
	}
}

// Name identifies the workload shape.
func (u *Uniform) Name() string { return "uniform" }

// Next returns the next query predicate.
func (u *Uniform) Next() column.Range {
	span := u.domainHigh - u.domainLow - u.width
	if span < 1 {
		span = 1
	}
	lo := u.domainLow + column.Value(u.rng.Int63n(int64(span)))
	return column.NewRange(lo, lo+u.width)
}

// Skewed generates range queries whose position is Zipf-distributed, so
// a small hot region receives most of the queries.
type Skewed struct {
	rng        *rand.Rand
	zipf       *rand.Zipf
	domainLow  column.Value
	domainHigh column.Value
	width      column.Value
}

// NewSkewed creates a skewed range-query generator; s controls the
// skew (s > 1, larger is more skewed).
func NewSkewed(seed int64, domainLow, domainHigh column.Value, selectivity, s float64) *Skewed {
	rng := rand.New(rand.NewSource(seed))
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	if s <= 1 {
		s = 1.3
	}
	span := uint64(domainHigh - domainLow)
	if span < 2 {
		span = 2
	}
	return &Skewed{
		rng:        rng,
		zipf:       rand.NewZipf(rng, s, 1, span-1),
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
	}
}

// Name identifies the workload shape.
func (s *Skewed) Name() string { return "skewed" }

// Next returns the next query predicate.
func (s *Skewed) Next() column.Range {
	lo := s.domainLow + column.Value(s.zipf.Uint64())
	hi := lo + s.width
	if hi > s.domainHigh {
		hi = s.domainHigh
	}
	return column.NewRange(lo, hi)
}

// Sequential generates ranges that slide monotonically through the
// domain, wrapping around at the end — the access pattern that defeats
// plain cracking's convergence and motivates stochastic pivots.
type Sequential struct {
	domainLow  column.Value
	domainHigh column.Value
	width      column.Value
	step       column.Value
	next       column.Value
}

// NewSequential creates a sliding-range generator with the given
// selectivity; each query advances by one query width.
func NewSequential(domainLow, domainHigh column.Value, selectivity float64) *Sequential {
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	return &Sequential{
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
		step:       width,
		next:       domainLow,
	}
}

// Name identifies the workload shape.
func (s *Sequential) Name() string { return "sequential" }

// Next returns the next query predicate.
func (s *Sequential) Next() column.Range {
	lo := s.next
	hi := lo + s.width
	if hi >= s.domainHigh {
		hi = s.domainHigh
		s.next = s.domainLow
	} else {
		s.next = lo + s.step
	}
	return column.NewRange(lo, hi)
}

// Shifting focuses all queries on one sub-domain for a while, then
// jumps to another sub-domain — the "workload change" scenario used to
// compare offline, online and adaptive indexing (experiment E8).
type Shifting struct {
	rng         *rand.Rand
	domainLow   column.Value
	domainHigh  column.Value
	width       column.Value
	focusFrac   float64
	shiftEvery  int
	issued      int
	focusOffset column.Value
	focusSpan   column.Value
}

// NewShifting creates a generator that confines its queries to a window
// covering focusFrac of the domain and moves that window every
// shiftEvery queries.
func NewShifting(seed int64, domainLow, domainHigh column.Value, selectivity, focusFrac float64, shiftEvery int) *Shifting {
	if shiftEvery < 1 {
		shiftEvery = 1
	}
	if focusFrac <= 0 || focusFrac > 1 {
		focusFrac = 0.2
	}
	width := column.Value(float64(domainHigh-domainLow) * selectivity)
	if width < 1 {
		width = 1
	}
	s := &Shifting{
		rng:        rand.New(rand.NewSource(seed)),
		domainLow:  domainLow,
		domainHigh: domainHigh,
		width:      width,
		focusFrac:  focusFrac,
		shiftEvery: shiftEvery,
	}
	s.pickFocus()
	return s
}

func (s *Shifting) pickFocus() {
	domain := s.domainHigh - s.domainLow
	s.focusSpan = column.Value(float64(domain) * s.focusFrac)
	if s.focusSpan <= s.width {
		s.focusSpan = s.width + 1
	}
	maxOffset := domain - s.focusSpan
	if maxOffset < 1 {
		maxOffset = 1
	}
	s.focusOffset = s.domainLow + column.Value(s.rng.Int63n(int64(maxOffset)))
}

// Name identifies the workload shape.
func (s *Shifting) Name() string { return "shifting" }

// Next returns the next query predicate.
func (s *Shifting) Next() column.Range {
	if s.issued > 0 && s.issued%s.shiftEvery == 0 {
		s.pickFocus()
	}
	s.issued++
	span := s.focusSpan - s.width
	if span < 1 {
		span = 1
	}
	lo := s.focusOffset + column.Value(s.rng.Int63n(int64(span)))
	return column.NewRange(lo, lo+s.width)
}

// CurrentFocus exposes the active focus window, used by tests.
func (s *Shifting) CurrentFocus() (column.Value, column.Value) {
	return s.focusOffset, s.focusOffset + s.focusSpan
}

// Point generates equality predicates uniformly over the domain.
type Point struct {
	rng        *rand.Rand
	domainLow  column.Value
	domainHigh column.Value
}

// NewPoint creates a point-query generator over [domainLow, domainHigh).
func NewPoint(seed int64, domainLow, domainHigh column.Value) *Point {
	return &Point{rng: rand.New(rand.NewSource(seed)), domainLow: domainLow, domainHigh: domainHigh}
}

// Name identifies the workload shape.
func (p *Point) Name() string { return "point" }

// Next returns the next query predicate.
func (p *Point) Next() column.Range {
	span := p.domainHigh - p.domainLow
	if span < 1 {
		span = 1
	}
	return column.Point(p.domainLow + column.Value(p.rng.Int63n(int64(span))))
}

// HotSet draws every query from a fixed pool of distinct ranges with
// Zipf-distributed popularity — the shape interactive exploration front
// ends produce (IDEBench): a dashboard's handful of filters re-issued
// by many concurrent sessions, a few of them far more often than the
// rest. It is the canonical overlapping workload for the query service
// layer's shared-scan batching, because concurrent sessions frequently
// ask for literally the same predicate inside one batch window.
type HotSet struct {
	pool []column.Range
	zipf *rand.Zipf
}

// NewHotSet creates a hot-set generator: poolSize distinct uniform
// ranges of the given selectivity over [domainLow, domainHigh), drawn
// with Zipf parameter s (s > 1, larger concentrates more queries on the
// hottest ranges).
func NewHotSet(seed int64, domainLow, domainHigh column.Value, selectivity float64, poolSize int, s float64) *HotSet {
	if poolSize < 2 {
		poolSize = 2
	}
	if s <= 1 {
		s = 1.3
	}
	pool := Queries(NewUniform(seed, domainLow, domainHigh, selectivity), poolSize)
	return NewHotSetFrom(pool, seed+1, s)
}

// NewHotSetFrom creates a hot-set generator drawing from an existing
// pool with its own draw sequence. Concurrent sessions exploring the
// same dashboard share one pool but draw independently — the
// cross-session overlap that makes shared-scan batching pay.
func NewHotSetFrom(pool []column.Range, seed int64, s float64) *HotSet {
	if s <= 1 {
		s = 1.3
	}
	rng := rand.New(rand.NewSource(seed))
	return &HotSet{pool: pool, zipf: rand.NewZipf(rng, s, 1, uint64(len(pool)-1))}
}

// Name identifies the workload shape.
func (h *HotSet) Name() string { return "hotset" }

// Next returns the next query predicate.
func (h *HotSet) Next() column.Range { return h.pool[h.zipf.Uint64()] }

// PoolSize returns the number of distinct ranges queries are drawn
// from.
func (h *HotSet) PoolSize() int { return len(h.pool) }

// DriftingHotSet is a hot set whose pool periodically moves: every
// shiftEvery draws the pool is regenerated inside a new random focus
// window covering focusFrac of the domain. It models an interactive
// exploration session over time — a dashboard's filters are re-issued
// heavily (the hot set), and the user's focus drifts to a different
// part of the data every so often (the shift). It is the workload
// shape the access-path planner's drift handling is judged on.
type DriftingHotSet struct {
	rng         *rand.Rand
	domainLow   column.Value
	domainHigh  column.Value
	selectivity float64
	focusFrac   float64
	poolSize    int
	s           float64
	shiftEvery  int
	issued      int
	hot         *HotSet
}

// NewDriftingHotSet creates the generator: poolSize distinct ranges of
// the given selectivity inside a focus window covering focusFrac of
// [domainLow, domainHigh), re-rolled every shiftEvery queries, drawn
// with Zipf parameter s.
func NewDriftingHotSet(seed int64, domainLow, domainHigh column.Value, selectivity, focusFrac float64, poolSize int, s float64, shiftEvery int) *DriftingHotSet {
	if shiftEvery < 1 {
		shiftEvery = 1
	}
	if focusFrac <= 0 || focusFrac > 1 {
		focusFrac = 0.1
	}
	if poolSize < 2 {
		poolSize = 2
	}
	d := &DriftingHotSet{
		rng:         rand.New(rand.NewSource(seed)),
		domainLow:   domainLow,
		domainHigh:  domainHigh,
		selectivity: selectivity,
		focusFrac:   focusFrac,
		poolSize:    poolSize,
		s:           s,
		shiftEvery:  shiftEvery,
	}
	d.shift()
	return d
}

// shift rolls a new focus window and rebuilds the pool inside it.
func (d *DriftingHotSet) shift() {
	domain := d.domainHigh - d.domainLow
	span := column.Value(float64(domain) * d.focusFrac)
	if span < 2 {
		span = 2
	}
	maxOffset := domain - span
	if maxOffset < 1 {
		maxOffset = 1
	}
	lo := d.domainLow + column.Value(d.rng.Int63n(int64(maxOffset)))
	// The pool's selectivity is relative to the whole domain, so the
	// query width matches the non-drifting shapes.
	width := d.selectivity * float64(domain) / float64(span)
	pool := Queries(NewUniform(d.rng.Int63(), lo, lo+span, width), d.poolSize)
	d.hot = NewHotSetFrom(pool, d.rng.Int63(), d.s)
}

// Name identifies the workload shape.
func (d *DriftingHotSet) Name() string { return "drifting-hotset" }

// Next returns the next query predicate.
func (d *DriftingHotSet) Next() column.Range {
	if d.issued > 0 && d.issued%d.shiftEvery == 0 {
		d.shift()
	}
	d.issued++
	return d.hot.Next()
}

// Mixed interleaves several generators with the given weights.
type Mixed struct {
	rng     *rand.Rand
	gens    []Generator
	weights []float64
	total   float64
}

// NewMixed creates a generator that picks one of the given generators
// for every query, with probability proportional to its weight.
func NewMixed(seed int64, gens []Generator, weights []float64) (*Mixed, error) {
	if len(gens) == 0 || len(gens) != len(weights) {
		return nil, fmt.Errorf("workload: %d generators but %d weights", len(gens), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: all weights are zero")
	}
	return &Mixed{rng: rand.New(rand.NewSource(seed)), gens: gens, weights: weights, total: total}, nil
}

// Name identifies the workload shape.
func (m *Mixed) Name() string { return "mixed" }

// Next returns the next query predicate.
func (m *Mixed) Next() column.Range {
	x := m.rng.Float64() * m.total
	for i, w := range m.weights {
		if x < w {
			return m.gens[i].Next()
		}
		x -= w
	}
	return m.gens[len(m.gens)-1].Next()
}

// ---------------------------------------------------------------------------
// Table-aware generators (select-project and multi-table sessions)
// ---------------------------------------------------------------------------

// TableQuery is one select or select-project request against a named
// table: "SELECT Project FROM Table WHERE Column IN R". It is the
// query shape the catalog-hosting service layer accepts.
type TableQuery struct {
	Table   string
	Column  string
	R       column.Range
	Project []string
}

// TableGenerator produces an endless, deterministic stream of
// table-level queries, as Generator does for bare range predicates.
type TableGenerator interface {
	// Name identifies the workload shape in reports.
	Name() string
	// NextQuery returns the next query.
	NextQuery() TableQuery
}

// TableQueries drains n queries from the generator into a slice.
func TableQueries(g TableGenerator, n int) []TableQuery {
	out := make([]TableQuery, n)
	for i := range out {
		out[i] = g.NextQuery()
	}
	return out
}

// Target names the fixed part of a table-level query stream: the table,
// the selection column, and the projected columns (empty for pure
// selection).
type Target struct {
	Table   string
	Column  string
	Project []string
}

// FixedTarget binds a range generator to one target: every predicate
// the inner generator produces becomes a select(-project) against that
// table and column. This is the select-project session shape — one
// user exploring one table's selection column, repeatedly asking for
// the same projection set.
type FixedTarget struct {
	target Target
	gen    Generator
}

// NewFixedTarget creates the select-project wrapper.
func NewFixedTarget(target Target, g Generator) *FixedTarget {
	return &FixedTarget{target: target, gen: g}
}

// Name identifies the workload shape.
func (f *FixedTarget) Name() string {
	if len(f.target.Project) > 0 {
		return "selectproject(" + f.gen.Name() + ")"
	}
	return f.gen.Name()
}

// NextQuery returns the next query.
func (f *FixedTarget) NextQuery() TableQuery {
	return TableQuery{
		Table:   f.target.Table,
		Column:  f.target.Column,
		R:       f.gen.Next(),
		Project: f.target.Project,
	}
}

// MultiTable cycles deterministically across several table-level
// streams — a session whose exploration spans tables, the shape a
// multi-table catalog exists to serve.
type MultiTable struct {
	gens []TableGenerator
	next int
}

// NewMultiTable creates a round-robin interleaving of the given
// streams.
func NewMultiTable(gens ...TableGenerator) *MultiTable {
	return &MultiTable{gens: gens}
}

// Name identifies the workload shape.
func (m *MultiTable) Name() string { return "multitable" }

// NextQuery returns the next query.
func (m *MultiTable) NextQuery() TableQuery {
	g := m.gens[m.next%len(m.gens)]
	m.next++
	return g.NextQuery()
}

// SelectProjectSessions returns one select-project stream per
// concurrent session, all exploring the same target: the sessions share
// one hot-set pool of predicates (concurrent users of the same
// dashboard, each fetching the same projected columns), so their
// queries overlap — the case shared-scan batching exists for.
func SelectProjectSessions(seed int64, sessions int, target Target, domainLow, domainHigh column.Value, selectivity float64) []TableGenerator {
	if sessions < 1 {
		sessions = 1
	}
	pool := Queries(NewUniform(seed, domainLow, domainHigh, selectivity), 32)
	gens := make([]TableGenerator, sessions)
	for i := range gens {
		gens[i] = NewFixedTarget(target, NewHotSetFrom(pool, seed+int64(i)+1, 1.3))
	}
	return gens
}

// MultiTableSessions returns one multi-table stream per concurrent
// session: each session round-robins across the targets, replaying the
// named shape on every target. Hot-set streams share one pool per
// target across all sessions; other shapes get per-session seeds.
func MultiTableSessions(shape string, seed int64, sessions int, targets []Target, domainLow, domainHigh column.Value, selectivity float64) ([]TableGenerator, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("workload: multi-table sessions need at least one target")
	}
	if sessions < 1 {
		sessions = 1
	}
	out := make([]TableGenerator, sessions)
	perTarget := make([][]Generator, len(targets))
	for ti := range targets {
		gens, err := SessionGenerators(shape, seed+int64(ti)*101, sessions, domainLow, domainHigh, selectivity)
		if err != nil {
			return nil, err
		}
		perTarget[ti] = gens
	}
	for s := 0; s < sessions; s++ {
		streams := make([]TableGenerator, len(targets))
		for ti, target := range targets {
			streams[ti] = NewFixedTarget(target, perTarget[ti][s])
		}
		out[s] = NewMultiTable(streams...)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Mixed read/write op streams
// ---------------------------------------------------------------------------

// OpKind discriminates the operations of a mixed read/write stream.
type OpKind uint8

// Operation kinds.
const (
	// OpRead is a query (TableOp.Query is set).
	OpRead OpKind = iota
	// OpInsert inserts one row (TableOp.Values holds one value per
	// table column).
	OpInsert
	// OpDelete deletes one row the stream previously inserted. The
	// generator does not know which identifier the engine assigned, so
	// the op names no row: the driver deletes the oldest row of its own
	// inserts. A generator only emits OpDelete while it has emitted
	// more inserts than deletes, so the driver always has a victim.
	OpDelete
)

// TableOp is one operation of a mixed read/write session stream.
type TableOp struct {
	Kind   OpKind
	Query  TableQuery     // OpRead
	Table  string         // OpInsert, OpDelete
	Values []column.Value // OpInsert
}

// OpGenerator produces an endless, deterministic stream of read and
// write operations, as TableGenerator does for pure reads.
type OpGenerator interface {
	// Name identifies the workload shape in reports.
	Name() string
	// NextOp returns the next operation.
	NextOp() TableOp
}

// ReadOnlyOps adapts a TableGenerator to the OpGenerator interface.
type ReadOnlyOps struct {
	G TableGenerator
}

// Name identifies the workload shape.
func (r ReadOnlyOps) Name() string { return r.G.Name() }

// NextOp returns the next (always read) operation.
func (r ReadOnlyOps) NextOp() TableOp { return TableOp{Kind: OpRead, Query: r.G.NextQuery()} }

// MixedOps interleaves a read stream with writes at a configurable
// ratio — the evolving-workload shape IDEBench argues interactive
// systems must be evaluated under, and the stream the merge policies
// of internal/updates are compared on. Writes are inserts of uniform
// random rows and deletes of the stream's own earlier inserts.
type MixedOps struct {
	name       string
	reads      TableGenerator
	rng        *rand.Rand
	table      string
	cols       int
	domainLow  column.Value
	domainHigh column.Value
	writeRatio float64
	deleteFrac float64
	liveOwn    int
}

// NewMixedOps wraps the read stream: each op is a write with
// probability writeRatio; a write is a delete of an own earlier insert
// with probability deleteFrac (when one is live), an insert of a
// uniform random row over [domainLow, domainHigh) otherwise. cols is
// the width of inserted rows.
func NewMixedOps(name string, seed int64, reads TableGenerator, table string, cols int, domainLow, domainHigh column.Value, writeRatio, deleteFrac float64) *MixedOps {
	if cols < 1 {
		cols = 1
	}
	if writeRatio < 0 {
		writeRatio = 0
	}
	if writeRatio > 1 {
		writeRatio = 1
	}
	if deleteFrac < 0 || deleteFrac > 1 {
		deleteFrac = 0.5
	}
	return &MixedOps{
		name:       name,
		reads:      reads,
		rng:        rand.New(rand.NewSource(seed)),
		table:      table,
		cols:       cols,
		domainLow:  domainLow,
		domainHigh: domainHigh,
		writeRatio: writeRatio,
		deleteFrac: deleteFrac,
	}
}

// Name identifies the workload shape.
func (m *MixedOps) Name() string { return m.name }

// NextOp returns the next operation.
func (m *MixedOps) NextOp() TableOp {
	if m.rng.Float64() < m.writeRatio {
		if m.liveOwn > 0 && m.rng.Float64() < m.deleteFrac {
			m.liveOwn--
			return TableOp{Kind: OpDelete, Table: m.table}
		}
		span := int64(m.domainHigh - m.domainLow)
		if span < 1 {
			span = 1
		}
		vals := make([]column.Value, m.cols)
		for i := range vals {
			vals[i] = m.domainLow + column.Value(m.rng.Int63n(span))
		}
		m.liveOwn++
		return TableOp{Kind: OpInsert, Table: m.table, Values: vals}
	}
	return TableOp{Kind: OpRead, Query: m.reads.NextQuery()}
}

// MixedSessions returns one mixed read/write stream per concurrent
// session: the read side replays the named shape against the target
// (hot-set sessions share one pool, as in SessionGenerators), and each
// session writes independently at the given ratio. cols is the width
// of inserted rows; name labels the resulting shape in reports.
func MixedSessions(name, readShape string, seed int64, sessions int, target Target, cols int, domainLow, domainHigh column.Value, selectivity, writeRatio, deleteFrac float64) ([]OpGenerator, error) {
	gens, err := SessionGenerators(readShape, seed, sessions, domainLow, domainHigh, selectivity)
	if err != nil {
		return nil, err
	}
	out := make([]OpGenerator, len(gens))
	for i, g := range gens {
		out[i] = NewMixedOps(name, seed+int64(i)*53+1, NewFixedTarget(target, g),
			target.Table, cols, domainLow, domainHigh, writeRatio, deleteFrac)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Named construction (flags and wire formats)
// ---------------------------------------------------------------------------

// Names lists the workload shapes FromSpec can build, for flag help
// texts and error messages.
func Names() []string {
	return []string{"uniform", "skewed", "sequential", "shifting", "point", "hotset"}
}

// FromSpec builds a generator from its wire/flag name, so the load
// generator and the query service daemon can replay any workload shape
// without compiling in per-shape plumbing. Shape parameters beyond the
// common (seed, domain, selectivity) triple use the same canonical
// values as the experiment suite.
func FromSpec(name string, seed int64, domainLow, domainHigh column.Value, selectivity float64) (Generator, error) {
	switch name {
	case "uniform":
		return NewUniform(seed, domainLow, domainHigh, selectivity), nil
	case "skewed":
		return NewSkewed(seed, domainLow, domainHigh, selectivity, 1.4), nil
	case "sequential":
		return NewSequential(domainLow, domainHigh, selectivity), nil
	case "shifting":
		return NewShifting(seed, domainLow, domainHigh, selectivity, 0.1, 200), nil
	case "point":
		return NewPoint(seed, domainLow, domainHigh), nil
	case "hotset":
		return NewHotSet(seed, domainLow, domainHigh, selectivity, 32, 1.3), nil
	default:
		return nil, fmt.Errorf("workload: unknown shape %q (have %s)", name, strings.Join(Names(), ", "))
	}
}

// SessionGenerators returns one generator per concurrent session, all
// replaying the named workload shape as independent users of the same
// exploration: hot-set sessions share one pool of ranges (and therefore
// overlap, the case shared-scan batching exists for), sequential
// sessions are phase-staggered evenly across the domain cycle (the
// generator is deterministic and seedless, so without the stagger every
// session would slide in lockstep), and the remaining shapes get
// per-session random streams.
func SessionGenerators(name string, seed int64, sessions int, domainLow, domainHigh column.Value, selectivity float64) ([]Generator, error) {
	if sessions < 1 {
		sessions = 1
	}
	gens := make([]Generator, sessions)
	if name == "hotset" {
		pool := Queries(NewUniform(seed, domainLow, domainHigh, selectivity), 32)
		for i := range gens {
			gens[i] = NewHotSetFrom(pool, seed+int64(i)+1, 1.3)
		}
		return gens, nil
	}
	// One full slide through the domain takes about 1/selectivity
	// queries.
	cycle := 1
	if selectivity > 0 && selectivity < 1 {
		cycle = int(1 / selectivity)
	}
	for i := range gens {
		g, err := FromSpec(name, seed+int64(i), domainLow, domainHigh, selectivity)
		if err != nil {
			return nil, err
		}
		if name == "sequential" {
			for skip := i * cycle / sessions; skip > 0; skip-- {
				g.Next()
			}
		}
		gens[i] = g
	}
	return gens, nil
}
