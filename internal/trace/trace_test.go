package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"adaptiveindex/internal/cost"
)

func TestPhaseRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, err := ParsePhase(p.String())
		if err != nil {
			t.Fatalf("ParsePhase(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePhase(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePhase("nope"); err == nil {
		t.Fatal("ParsePhase accepted an unknown name")
	}
}

func TestRecorderNesting(t *testing.T) {
	r := NewRecorder()
	r.Begin(PhaseCrack)
	r.Begin(PhaseMergeFlush)
	r.End(Work{Total: 7, MergeWork: 7})
	r.End(Work{Total: 100, Recurring: 10})
	r.Begin(PhaseMaterialise)
	r.End(Work{Recurring: 30})
	root := r.Finish()

	if root.Phase != PhaseQuery {
		t.Fatalf("root phase = %v", root.Phase)
	}
	if len(root.Spans) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Spans))
	}
	crack := root.Spans[0]
	if crack.Phase != PhaseCrack || len(crack.Spans) != 1 || crack.Spans[0].Phase != PhaseMergeFlush {
		t.Fatalf("crack span misshapen: %+v", crack)
	}
	if crack.Work.Total != 100 || crack.Spans[0].Work.MergeWork != 7 {
		t.Fatalf("work deltas lost: %+v / %+v", crack.Work, crack.Spans[0].Work)
	}
	if root.ChildDurUs() > root.DurUs {
		t.Fatalf("children (%dus) exceed root (%dus)", root.ChildDurUs(), root.DurUs)
	}
}

func TestRecorderEndAtRootIsNoop(t *testing.T) {
	r := NewRecorder()
	r.End(Work{Total: 1}) // unbalanced; must not panic or attach work
	root := r.Finish()
	if len(root.Spans) != 0 || root.Work.Total != 0 {
		t.Fatalf("unbalanced End mutated the root: %+v", root)
	}
}

func TestRecorderAddBackfill(t *testing.T) {
	r := NewRecorder()
	r.Add(PhaseQueueWait, 5*time.Millisecond, Work{})
	root := r.Finish()
	if len(root.Spans) != 1 {
		t.Fatalf("children = %d, want 1", len(root.Spans))
	}
	qw := root.Spans[0]
	if qw.Phase != PhaseQueueWait || qw.DurUs != 5000 {
		t.Fatalf("back-filled span wrong: %+v", qw)
	}
	if qw.StartUs < 0 {
		t.Fatalf("StartUs clamped incorrectly: %d", qw.StartUs)
	}
}

func TestRecorderFinishClosesOpenSpans(t *testing.T) {
	r := NewRecorder()
	r.Begin(PhaseCrack)
	r.Begin(PhaseMergeFlush)
	root := r.Finish() // both still open
	if len(root.Spans) != 1 || len(root.Spans[0].Spans) != 1 {
		t.Fatalf("open spans not closed: %+v", root)
	}
	// Finish again after a late phase: the root must extend.
	first := root.DurUs
	r.Begin(PhaseEncode)
	time.Sleep(time.Millisecond)
	r.End(Work{})
	root = r.Finish()
	if root.DurUs < first {
		t.Fatalf("second Finish shrank the root: %d < %d", root.DurUs, first)
	}
	if len(root.Spans) != 2 || root.Spans[1].Phase != PhaseEncode {
		t.Fatalf("late encode span missing: %+v", root.Spans)
	}
}

func TestRecorderImportClones(t *testing.T) {
	shared := NewRecorder()
	n := shared.ChildCount()
	shared.Begin(PhaseCrack)
	shared.End(Work{Total: 42})
	produced := shared.ChildrenSince(n)
	if len(produced) != 1 {
		t.Fatalf("ChildrenSince = %d spans, want 1", len(produced))
	}

	other := NewRecorder()
	other.Import(produced)
	produced[0].Work.Total = 999 // mutate the original
	root := other.Finish()
	if len(root.Spans) != 1 || root.Spans[0].Work.Total != 42 {
		t.Fatalf("Import aliased instead of cloning: %+v", root.Spans)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := &Span{
		Phase: PhaseQuery, DurUs: 120,
		Spans: []*Span{
			{Phase: PhaseCrack, StartUs: 10, DurUs: 50, Work: Work{Total: 100, Recurring: 20, MergeWork: 5},
				Spans: []*Span{{Phase: PhaseMergeFlush, StartUs: 20, DurUs: 5, Work: Work{Total: 5, MergeWork: 5}}}},
			{Phase: PhaseMaterialise, StartUs: 60, DurUs: 40, Work: Work{Recurring: 40}},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// The work fields are inlined, not nested under a "Work" key.
	if strings.Contains(string(data), `"Work"`) {
		t.Fatalf("Work not inlined: %s", data)
	}
	if !strings.Contains(string(data), `"phase":"merge_flush"`) {
		t.Fatalf("phase names not used: %s", data)
	}
	var out Span
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Spans[0].Work.Total != 100 || out.Spans[0].Spans[0].Work.MergeWork != 5 {
		t.Fatalf("round trip lost work: %+v", out)
	}
	if out.Spans[1].Work.Recurring != 40 {
		t.Fatalf("round trip lost recurring: %+v", out.Spans[1])
	}
}

func TestWorkOf(t *testing.T) {
	c := cost.Counters{TuplesCopied: 10, RandomTouches: 2, MergeWork: 3, ValuesTouched: 100}
	w := WorkOf(c)
	if w.Total != c.Total() || w.Recurring != c.Recurring() || w.MergeWork != 3 {
		t.Fatalf("WorkOf mismatch: %+v vs %+v", w, c)
	}
}

func TestLogRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: "crack", Fields: map[string]float64{"i": float64(i)}})
	}
	if l.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", l.LastSeq())
	}
	events, dropped := l.Since(0, 0)
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(events) != 4 || events[0].Seq != 7 || events[3].Seq != 10 {
		t.Fatalf("ring contents wrong: %+v", events)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("events out of sequence: %+v", events)
		}
	}
}

func TestLogSinceCursor(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: "plan_exploit"})
	}
	// Two clients polling independently see the same sequence.
	for _, start := range []uint64{0, 3} {
		events, dropped := l.Since(start, 0)
		if dropped != 0 {
			t.Fatalf("unexpected drop from seq %d", start)
		}
		want := 6 - int(start)
		if len(events) != want || events[0].Seq != start+1 {
			t.Fatalf("Since(%d) = %d events starting %d", start, len(events), events[0].Seq)
		}
	}
	// Caught-up cursor yields nothing.
	if events, _ := l.Since(6, 0); events != nil {
		t.Fatalf("caught-up cursor returned %+v", events)
	}
	// max limits the page size without advancing past it.
	events, _ := l.Since(0, 2)
	if len(events) != 2 || events[1].Seq != 2 {
		t.Fatalf("paged read wrong: %+v", events)
	}
}

func TestLogConcurrentAppendAndRead(t *testing.T) {
	l := NewLog(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			l.Append(Event{Kind: "crack"})
		}
	}()
	var cursor uint64
	for {
		events, _ := l.Since(cursor, 0)
		for _, ev := range events {
			if ev.Seq <= cursor {
				t.Errorf("sequence went backwards: %d after %d", ev.Seq, cursor)
			}
			cursor = ev.Seq
		}
		select {
		case <-done:
			// One final drain: the writer may have finished entirely
			// between our last poll and this check.
			events, _ := l.Since(cursor, 0)
			for _, ev := range events {
				if ev.Seq <= cursor {
					t.Errorf("sequence went backwards: %d after %d", ev.Seq, cursor)
				}
				cursor = ev.Seq
			}
			if cursor == 0 {
				t.Fatal("reader saw nothing")
			}
			return
		default:
		}
	}
}

const cleanExposition = `# HELP crack_queries_total Queries served.
# TYPE crack_queries_total counter
crack_queries_total 42
# HELP crack_phase_duration_us Per-phase latency.
# TYPE crack_phase_duration_us histogram
crack_phase_duration_us_bucket{phase="crack",le="1"} 1
crack_phase_duration_us_bucket{phase="crack",le="2"} 3
crack_phase_duration_us_bucket{phase="crack",le="+Inf"} 5
crack_phase_duration_us_sum{phase="crack"} 123
crack_phase_duration_us_count{phase="crack"} 5
# HELP crack_uptime_seconds Uptime.
# TYPE crack_uptime_seconds gauge
crack_uptime_seconds 9.5
`

func TestLintPromClean(t *testing.T) {
	if errs := LintProm(strings.NewReader(cleanExposition)); len(errs) != 0 {
		t.Fatalf("clean document flagged: %v", errs)
	}
}

func TestLintPromCatches(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"counter suffix", "# HELP x Q.\n# TYPE x counter\nx 1\n", "_total"},
		{"sample before type", "orphan_metric 3\n", "before its TYPE"},
		{"type without help", "# TYPE x_total counter\nx_total 1\n", "without HELP"},
		{"non-monotonic buckets", `# HELP h H.
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`, "not monotonic"},
		{"missing inf", `# HELP h H.
# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`, "+Inf"},
		{"inf count mismatch", `# HELP h H.
# TYPE h histogram
h_bucket{le="+Inf"} 4
h_sum 1
h_count 5
`, "!= _count"},
		{"bad value", "# HELP x_total Q.\n# TYPE x_total counter\nx_total banana\n", "bad value"},
		{"bad label", "# HELP x_total Q.\n# TYPE x_total counter\nx_total{9bad=\"v\"} 1\n", "label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintProm(strings.NewReader(tc.doc))
			if len(errs) == 0 {
				t.Fatalf("lint passed a bad document")
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}
