package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintProm validates a Prometheus text-exposition document the way
// `promtool check metrics` would, without the dependency: line syntax,
// metric and label naming, TYPE/HELP placement, counter naming, and —
// the part a hand-rolled renderer most easily gets wrong — histogram
// consistency: cumulative bucket monotonicity over ascending `le`
// bounds, a mandatory `+Inf` bucket, and agreement between the +Inf
// bucket and `_count`. It returns every problem found (nil when the
// document is clean).
func LintProm(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := make(map[string]string)   // metric family -> declared type
	helped := make(map[string]bool)    // family -> HELP seen
	sampled := make(map[string]bool)   // family -> first sample seen
	hists := make(map[string]*histDoc) // family -> histogram accumulation

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			family, kind, ok := parseMeta(line)
			if !ok {
				fail(n, "malformed comment line %q (want # HELP/# TYPE)", line)
				continue
			}
			if kind == "" { // HELP
				helped[family] = true
				continue
			}
			if !validType(kind) {
				fail(n, "metric %s: unknown type %q", family, kind)
			}
			if prev, dup := types[family]; dup && prev != kind {
				fail(n, "metric %s: conflicting TYPE %q after %q", family, kind, prev)
			}
			if sampled[family] {
				fail(n, "metric %s: TYPE after its first sample", family)
			}
			types[family] = kind
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		family := familyOf(name)
		sampled[family] = true
		if !metricName.MatchString(name) {
			fail(n, "invalid metric name %q", name)
		}
		if t, ok := types[family]; ok {
			if t == "counter" && !strings.HasSuffix(family, "_total") {
				fail(n, "counter %s should end in _total", family)
			}
			if t == "histogram" {
				h := hists[family]
				if h == nil {
					h = &histDoc{buckets: make(map[string][]bucket)}
					hists[family] = h
				}
				h.observe(name, family, labels, value, n, fail)
			}
		} else {
			fail(n, "sample %s before its TYPE line", name)
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %w", err))
	}
	for family := range types {
		if !helped[family] {
			errs = append(errs, fmt.Errorf("metric %s: TYPE without HELP", family))
		}
	}
	for family, h := range hists {
		h.check(family, &errs)
	}
	return errs
}

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func validType(t string) bool {
	switch t {
	case "counter", "gauge", "histogram", "summary", "untyped":
		return true
	}
	return false
}

// parseMeta parses "# HELP name text" and "# TYPE name type" lines;
// kind is "" for HELP lines. Other comments are rejected (the
// renderer never emits them, so one appearing is a bug).
func parseMeta(line string) (family, kind string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", false
	}
	switch fields[1] {
	case "HELP":
		return fields[2], "", true
	case "TYPE":
		if len(fields) != 4 {
			return "", "", false
		}
		return fields[2], fields[3], true
	}
	return "", "", false
}

// familyOf strips the histogram sample suffixes so `x_bucket`,
// `x_sum` and `x_count` all belong to family `x` when `x` declared
// itself a histogram; for plain metrics the name is the family.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

func familyOf(name string) string {
	for _, suf := range histSuffixes {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseSample splits `name{l1="v1",...} value` into its parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	labels = make(map[string]string)
	if brace >= 0 {
		name = rest[:brace]
		close := strings.LastIndexByte(rest, '}')
		if close < brace {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		body := rest[brace+1 : close]
		rest = strings.TrimSpace(rest[close+1:])
		for _, pair := range splitLabels(body) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			ln, lv := pair[:eq], pair[eq+1:]
			if !labelName.MatchString(ln) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", ln)
			}
			unq, uerr := strconv.Unquote(lv)
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("label %s value %s not quoted: %v", ln, lv, uerr)
			}
			labels[ln] = unq
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	// A timestamp may follow the value; the renderer never emits one,
	// but tolerate it like promtool does.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if part := strings.TrimSpace(body[start:i]); part != "" {
					out = append(out, part)
				}
				start = i + 1
			}
		}
	}
	if part := strings.TrimSpace(body[start:]); part != "" {
		out = append(out, part)
	}
	return out
}

// bucket is one histogram bucket sample.
type bucket struct {
	le    float64
	count float64
	line  int
}

// histDoc accumulates one histogram family's samples, keyed by the
// non-le label set (one series per phase, for example).
type histDoc struct {
	buckets map[string][]bucket
	counts  map[string]float64
	sums    map[string]bool
}

// seriesKey canonicalises the non-le labels of a histogram sample.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

func (h *histDoc) observe(name, family string, labels map[string]string, value float64, line int, fail func(int, string, ...any)) {
	key := seriesKey(labels)
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le, ok := labels["le"]
		if !ok {
			fail(line, "histogram %s bucket without le label", family)
			return
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				fail(line, "histogram %s: bad le %q", family, le)
				return
			}
		}
		h.buckets[key] = append(h.buckets[key], bucket{le: bound, count: value, line: line})
	case strings.HasSuffix(name, "_count"):
		if h.counts == nil {
			h.counts = make(map[string]float64)
		}
		h.counts[key] = value
	case strings.HasSuffix(name, "_sum"):
		if h.sums == nil {
			h.sums = make(map[string]bool)
		}
		h.sums[key] = true
	default:
		fail(line, "histogram %s: bare sample %s (want _bucket/_sum/_count)", family, name)
	}
}

// check validates each accumulated series: ascending le bounds,
// non-decreasing cumulative counts, +Inf present and equal to _count.
func (h *histDoc) check(family string, errs *[]error) {
	for key, bs := range h.buckets {
		where := family
		if key != "" {
			where = family + "{" + strings.TrimSuffix(key, ",") + "}"
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].le == bs[i-1].le {
				*errs = append(*errs, fmt.Errorf("histogram %s: duplicate le=%g", where, bs[i].le))
			}
			if bs[i].count < bs[i-1].count {
				*errs = append(*errs, fmt.Errorf("histogram %s: bucket counts not monotonic at le=%g (%g after %g)",
					where, bs[i].le, bs[i].count, bs[i-1].count))
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			*errs = append(*errs, fmt.Errorf("histogram %s: missing +Inf bucket", where))
			continue
		}
		count, ok := h.counts[key]
		if !ok {
			*errs = append(*errs, fmt.Errorf("histogram %s: missing _count", where))
		} else if count != last.count {
			*errs = append(*errs, fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", where, last.count, count))
		}
		if !h.sums[key] {
			*errs = append(*errs, fmt.Errorf("histogram %s: missing _sum", where))
		}
	}
}
