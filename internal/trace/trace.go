// Package trace is the adaptive-work observability layer: per-query
// phase spans, a bounded reorganisation event log, and a lint for the
// Prometheus text exposition the service renders from them.
//
// Database cracking's defining property is that index structure
// emerges as a side effect of queries — which means a query's latency
// is not one number but a composition: time spent waiting in the
// scheduler queue, time coalescing into a batch, time reorganising
// (cracking) the column, time ripple-merging pending writes the
// predicate touched, time materialising results, and time encoding
// them onto the wire. A Recorder collects those phases as a span tree
// for one query; a Log records the discrete reorganisation events
// (crack splits, structure rebuilds, merge flushes, planner decisions)
// so convergence can be watched live instead of inferred from
// end-state piece counts.
//
// Tracing is strictly opt-in and must be free when off: every hook in
// the engine and the update layer is gated on a nil Recorder, and no
// part of this package ever mutates the deterministic cost counters —
// spans carry cost *deltas* read from them, which is what lets a
// span's crack/merge work be reconciled against /stats counter
// movements.
package trace

import (
	"encoding/json"
	"fmt"
	"time"

	"adaptiveindex/internal/cost"
)

// Phase names one timed section of a query's execution.
type Phase uint8

// The canonical phases, in the order a query passes through them.
// PhaseQuery is the root span covering the whole request.
const (
	PhaseQuery Phase = iota
	// PhaseQueueWait is the time between a request's admission and the
	// executor dequeuing it (in direct mode: the service-latch wait).
	PhaseQueueWait
	// PhaseBatchAssembly is the time a dequeued request spends waiting
	// for its batch's coalescing window to close.
	PhaseBatchAssembly
	// PhaseShardGather is the scatter-gather of one query across the
	// engine shards of a cluster: the fan-out, the slowest shard's
	// execution, and the merge of per-shard ID-lists and projections
	// back into one result. Each shard's own engine phases (crack,
	// materialise) nest inside it.
	PhaseShardGather
	// PhaseCrack is the selection execution: evaluating the predicate
	// and, as a side effect, physically reorganising the adaptive
	// structure (the crack). For sideways cracking's fused
	// select-project operator it covers the fused execution.
	PhaseCrack
	// PhaseMergeFlush is the ripple-merge of pending buffered writes
	// the query's predicate touched, nested inside PhaseCrack.
	PhaseMergeFlush
	// PhaseMaterialise is late tuple reconstruction: gathering the
	// projected attribute values by qualifying row identifier.
	PhaseMaterialise
	// PhaseEncode is the wire encoding of the response body (JSON
	// marshalling or binary block packing).
	PhaseEncode
	// PhaseEpochPin is an epoch-mode read: pinning the current epoch,
	// running the query against its immutable piece catalog, and
	// patching pending writes in — no reorganisation happens inside it.
	PhaseEpochPin
	// PhaseReorgApply is one background-reorganiser step: applying a
	// queued crack intent (the deferred crack plus any merge flush it
	// pulls in) and publishing the next epoch.
	PhaseReorgApply
	// PhaseNodeGather is the scatter-gather of one query across the
	// backend nodes of a multi-node cluster (crackrouter): the fan-out
	// over the wire, the slowest node's whole server-side execution, and
	// the merge of per-node ID-lists and projections back into one
	// result. The slowest node's own span tree nests inside it.
	PhaseNodeGather
	// NumPhases bounds arrays indexed by Phase.
	NumPhases
)

// phaseNames maps phases to their wire names.
var phaseNames = [NumPhases]string{
	"query", "queue_wait", "batch_assembly", "shard_gather", "crack",
	"merge_flush", "materialise", "wire_encode", "epoch_pin", "reorg_apply",
	"node_gather",
}

// String returns the phase's wire name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// ParsePhase converts a wire name back to the phase.
func ParsePhase(s string) (Phase, error) {
	for p, name := range phaseNames {
		if name == s {
			return Phase(p), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown phase %q", s)
}

// MarshalJSON renders the phase as its wire name.
func (p Phase) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON parses a wire name.
func (p *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParsePhase(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Work is the logical-work delta a span observed: the cost model's
// scalar total, its recurring (materialisation) component, and the
// share re-attributed to write-caused merging. Spans carry deltas, so
// summing them over a query reconciles with the movement of the
// engine's cumulative counters.
type Work struct {
	Total     uint64 `json:"work,omitempty"`
	Recurring uint64 `json:"recurring,omitempty"`
	MergeWork uint64 `json:"merge_work,omitempty"`
}

// WorkOf extracts the span-level view of a cost-counter delta.
func WorkOf(c cost.Counters) Work {
	return Work{Total: c.Total(), Recurring: c.Recurring(), MergeWork: c.MergeWork}
}

// Add accumulates other into w.
func (w *Work) Add(other Work) {
	w.Total += other.Total
	w.Recurring += other.Recurring
	w.MergeWork += other.MergeWork
}

// Span is one timed phase of a query, with optional nested phases.
// StartUs is the offset from the root span's start, so a tree is
// self-contained without absolute timestamps.
type Span struct {
	Phase   Phase   `json:"phase"`
	StartUs int64   `json:"start_us"`
	DurUs   int64   `json:"dur_us"`
	Work    Work    `json:"-"`
	Spans   []*Span `json:"spans,omitempty"`
}

// spanJSON is the wire form of a span: the Work fields are inlined so
// the JSON stays flat and omits zeroes.
type spanJSON struct {
	Phase     Phase   `json:"phase"`
	StartUs   int64   `json:"start_us"`
	DurUs     int64   `json:"dur_us"`
	Total     uint64  `json:"work,omitempty"`
	Recurring uint64  `json:"recurring,omitempty"`
	MergeWork uint64  `json:"merge_work,omitempty"`
	Spans     []*Span `json:"spans,omitempty"`
}

// MarshalJSON inlines the work fields.
func (s *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanJSON{
		Phase: s.Phase, StartUs: s.StartUs, DurUs: s.DurUs,
		Total: s.Work.Total, Recurring: s.Work.Recurring, MergeWork: s.Work.MergeWork,
		Spans: s.Spans,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Span) UnmarshalJSON(b []byte) error {
	var sj spanJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return err
	}
	*s = Span{
		Phase: sj.Phase, StartUs: sj.StartUs, DurUs: sj.DurUs,
		Work:  Work{Total: sj.Total, Recurring: sj.Recurring, MergeWork: sj.MergeWork},
		Spans: sj.Spans,
	}
	return nil
}

// Clone deep-copies the span tree, so a shared execution's spans can
// be fanned out to several responses without aliasing.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	out := *s
	if len(s.Spans) > 0 {
		out.Spans = make([]*Span, len(s.Spans))
		for i, child := range s.Spans {
			out.Spans[i] = child.Clone()
		}
	}
	return &out
}

// SumWork returns the accumulated work of the span's direct children
// (each child already includes its own descendants' work in its
// delta).
func (s *Span) SumWork() Work {
	var w Work
	for _, child := range s.Spans {
		w.Add(child.Work)
	}
	return w
}

// ChildDurUs returns the summed durations of the span's direct
// children — by construction disjoint, so the sum never exceeds the
// span's own duration beyond clock-resolution slack.
func (s *Span) ChildDurUs() int64 {
	var d int64
	for _, child := range s.Spans {
		d += child.DurUs
	}
	return d
}

// Recorder collects the span tree of one query. It is used by exactly
// one goroutine at a time and handed off through channels (the HTTP
// goroutine enqueues it, the executor records into it, the HTTP
// goroutine renders it), which establishes the necessary
// happens-before edges; it needs no internal locking.
type Recorder struct {
	start time.Time
	root  *Span
	stack []*Span
}

// NewRecorder starts a recorder whose root span begins now.
func NewRecorder() *Recorder {
	root := &Span{Phase: PhaseQuery}
	return &Recorder{start: time.Now(), root: root, stack: []*Span{root}}
}

// cur returns the innermost open span.
func (r *Recorder) cur() *Span { return r.stack[len(r.stack)-1] }

// Begin opens a nested phase under the current span.
func (r *Recorder) Begin(p Phase) {
	s := &Span{Phase: p, StartUs: time.Since(r.start).Microseconds()}
	cur := r.cur()
	cur.Spans = append(cur.Spans, s)
	r.stack = append(r.stack, s)
}

// End closes the innermost open phase, attaching the observed work
// delta. Ending with only the root open is a no-op (defensive; it
// means Begin/End were unbalanced).
func (r *Recorder) End(w Work) {
	if len(r.stack) <= 1 {
		return
	}
	s := r.cur()
	r.stack = r.stack[:len(r.stack)-1]
	s.DurUs = time.Since(r.start).Microseconds() - s.StartUs
	if s.DurUs < 0 {
		s.DurUs = 0
	}
	s.Work = w
}

// Add records an already-elapsed phase of duration d ending now, as a
// child of the current span. It is how the scheduler back-fills
// queue-wait and batch-assembly time it measured before the recorder
// crossed into the executor.
func (r *Recorder) Add(p Phase, d time.Duration, w Work) {
	end := time.Since(r.start).Microseconds()
	s := &Span{Phase: p, StartUs: end - d.Microseconds(), DurUs: d.Microseconds(), Work: w}
	if s.StartUs < 0 {
		s.StartUs = 0
	}
	cur := r.cur()
	cur.Spans = append(cur.Spans, s)
}

// ChildCount returns how many direct children the current span has —
// a bookmark for ChildrenSince.
func (r *Recorder) ChildCount() int { return len(r.cur().Spans) }

// ChildrenSince returns the direct children appended after the
// bookmark, i.e. the spans one shared execution produced.
func (r *Recorder) ChildrenSince(n int) []*Span {
	children := r.cur().Spans
	if n < 0 || n > len(children) {
		return nil
	}
	return children[n:]
}

// Import deep-copies completed spans from another recorder into the
// current span: a query whose execution was coalesced with an
// identical one inherits the shared execution's phases.
func (r *Recorder) Import(spans []*Span) {
	cur := r.cur()
	for _, s := range spans {
		cur.Spans = append(cur.Spans, s.Clone())
	}
}

// Finish closes every open span and stamps the root's total duration.
// It may be called again after appending late phases (the wire-encode
// span lands after the response body is produced); each call extends
// the root duration to now.
func (r *Recorder) Finish() *Span {
	for len(r.stack) > 1 {
		r.End(Work{})
	}
	r.root.DurUs = time.Since(r.start).Microseconds()
	return r.root
}

// Root returns the root span without finishing the recorder.
func (r *Recorder) Root() *Span { return r.root }
