package trace

import (
	"sync"
	"time"
)

// Event is one structured reorganisation event: the moment the
// "index builds itself" property became physically visible. Kinds in
// use:
//
//	build            an adaptive structure was first built for a column
//	rebuild          a write-invalidated structure was rebuilt
//	crack            a query split cracked pieces (piece count grew)
//	pieces_threshold the piece count crossed a power-of-two threshold
//	merge_flush      pending buffered writes ripple-merged into a column
//	plan_explore     the planner opened (or re-opened) path exploration
//	plan_exploit     the planner chose a path, with per-path scores
//	plan_reexplore   sustained drift re-opened exploration
type Event struct {
	// Seq is the log-assigned monotonically increasing sequence
	// number; /debug/events cursors are expressed in it.
	Seq uint64 `json:"seq"`
	// UnixMicros is the wall-clock append time.
	UnixMicros int64 `json:"unix_micros"`
	// Kind names the event (see above).
	Kind string `json:"kind"`
	// Table, Column and Path locate the structure the event concerns.
	Table  string `json:"table,omitempty"`
	Column string `json:"column,omitempty"`
	Path   string `json:"path,omitempty"`
	// Fields carries the event's numeric payload (piece counts, merge
	// sizes, planner scores).
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Log is a bounded in-memory ring of events. Appends come from the
// engine's executor; reads come from concurrent /debug/events
// handlers, so the ring is guarded by a mutex — never on a query hot
// path unless an event actually fired.
type Log struct {
	mu   sync.Mutex
	buf  []Event
	size int
	next uint64 // next sequence number to assign (first is 1)
}

// DefaultLogSize is the ring capacity used when none is given.
const DefaultLogSize = 1024

// NewLog creates a ring holding the most recent capacity events
// (DefaultLogSize when capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultLogSize
	}
	return &Log{buf: make([]Event, 0, capacity), size: capacity, next: 1}
}

// Append stamps the event with the next sequence number and the
// current time, stores it (evicting the oldest when full), and
// returns the assigned sequence number.
func (l *Log) Append(ev Event) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Seq = l.next
	ev.UnixMicros = time.Now().UnixMicro()
	l.next++
	if len(l.buf) < l.size {
		l.buf = append(l.buf, ev)
	} else {
		// Ring: slot for seq s is (s-1) % size.
		l.buf[(ev.Seq-1)%uint64(l.size)] = ev
	}
	return ev.Seq
}

// LastSeq returns the sequence number of the newest event (0 when the
// log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Capacity returns the ring size.
func (l *Log) Capacity() int { return l.size }

// Since returns up to max events with Seq > since, in sequence order,
// plus the number of matching events that had already been evicted
// from the ring (a non-zero dropped count tells a poller it fell
// behind). max <= 0 means no limit.
func (l *Log) Since(since uint64, max int) (events []Event, dropped uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	last := l.next - 1
	if last == 0 || since >= last {
		return nil, 0
	}
	oldest := uint64(1)
	if last > uint64(l.size) {
		oldest = last - uint64(l.size) + 1
	}
	first := since + 1
	if first < oldest {
		dropped = oldest - first
		first = oldest
	}
	n := int(last - first + 1)
	if max > 0 && n > max {
		n = max
	}
	events = make([]Event, 0, n)
	for seq := first; seq < first+uint64(n); seq++ {
		events = append(events, l.buf[(seq-1)%uint64(l.size)])
	}
	return events, dropped
}
