// Package concurrent adds concurrency control to database cracking,
// one of the open topics the tutorial highlights (and the subject of
// the follow-up work on concurrency control for adaptive indexing).
//
// The difficulty is that under adaptive indexing every reader is
// potentially a writer: a SELECT may physically reorganise the column.
// The key observation is that this reorganisation changes only the
// physical order, never the logical contents, so it needs short-term
// latches rather than transactional locks. This package implements that
// scheme at a pragmatic granularity:
//
//   - A query whose bounds are already boundaries of the cracker index
//     runs entirely under a shared latch: it probes the index and copies
//     the qualifying, already-contiguous result region. Many such
//     readers proceed in parallel.
//   - A query that still needs to crack acquires the exclusive latch,
//     re-validates (another query may have cracked the same bound in
//     the meantime), reorganises, and releases.
//
// As the workload converges, more and more queries take the shared
// path, so contention disappears together with the adaptation overhead
// — the concurrency behaviour mirrors the convergence behaviour.
package concurrent

import (
	"sync"
	"sync/atomic"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/index"
)

// Index is a cracker column safe for concurrent use by multiple
// goroutines.
type Index struct {
	mu sync.RWMutex
	cc *core.CrackerColumn

	// Read-path work is tracked separately with atomics because shared
	// readers must not mutate the cracker column's counters.
	readTouched atomic.Uint64
	readCopied  atomic.Uint64

	// sharedHits / exclusiveHits record how many queries took each
	// path, for observability and tests.
	sharedHits    atomic.Uint64
	exclusiveHits atomic.Uint64
}

var _ index.Interface = (*Index)(nil)

// New creates a concurrent cracker column over the base values.
func New(vals []column.Value, opts core.Options) *Index {
	return &Index{cc: core.NewCrackerColumn(vals, opts)}
}

// Name identifies the access path to the benchmark harness.
func (ix *Index) Name() string { return "cracking-concurrent" }

// Len returns the number of tuples.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cc.Len()
}

// SharedQueries returns the number of queries answered entirely under
// the shared latch.
func (ix *Index) SharedQueries() uint64 { return ix.sharedHits.Load() }

// ExclusiveQueries returns the number of queries that had to take the
// exclusive latch to crack.
func (ix *Index) ExclusiveQueries() uint64 { return ix.exclusiveHits.Load() }

// Cost returns the cumulative logical work, including the work of
// shared-path reads.
func (ix *Index) Cost() cost.Counters {
	ix.mu.RLock()
	c := ix.cc.Cost()
	ix.mu.RUnlock()
	c.ValuesTouched += ix.readTouched.Load()
	c.TuplesCopied += ix.readCopied.Load()
	return c
}

// tryPositions attempts to resolve the predicate's position interval
// using only boundaries that already exist. It must be called with at
// least the shared latch held.
func (ix *Index) tryPositions(r column.Range) (int, int, bool) {
	n := ix.cc.Len()
	start, end := 0, n
	if r.HasLow {
		pos, ok := ix.cc.Index().Lookup(core.LowerBound(r))
		if !ok {
			return 0, 0, false
		}
		start = pos
	}
	if r.HasHigh {
		pos, ok := ix.cc.Index().Lookup(core.UpperBound(r))
		if !ok {
			return 0, 0, false
		}
		end = pos
	}
	if end < start {
		end = start
	}
	return start, end, true
}

// collect copies the row identifiers of the position interval with one
// bulk copy. Must be called with at least the shared latch held.
func (ix *Index) collect(start, end int) column.IDList {
	if start == end {
		return nil
	}
	out := make(column.IDList, end-start)
	core.MaterializeRows(out, ix.cc.Pairs()[start:end])
	ix.readTouched.Add(uint64(end - start))
	ix.readCopied.Add(uint64(end - start))
	return out
}

// Select returns the row identifiers of qualifying tuples. Queries
// whose bounds are already indexed proceed concurrently; queries that
// need to crack serialise on the exclusive latch.
func (ix *Index) Select(r column.Range) column.IDList {
	if r.Empty() {
		return nil
	}
	// Fast path: shared latch only.
	ix.mu.RLock()
	if start, end, ok := ix.tryPositions(r); ok {
		out := ix.collect(start, end)
		ix.mu.RUnlock()
		ix.sharedHits.Add(1)
		return out
	}
	ix.mu.RUnlock()

	// Slow path: crack under the exclusive latch. Another goroutine may
	// have cracked the same bounds between the latches; SelectPositions
	// handles that naturally (exact boundaries are just looked up).
	ix.mu.Lock()
	start, end := ix.cc.SelectPositions(r)
	out := ix.collect(start, end)
	ix.mu.Unlock()
	ix.exclusiveHits.Add(1)
	return out
}

// Count returns the number of qualifying tuples.
func (ix *Index) Count(r column.Range) int {
	if r.Empty() {
		return 0
	}
	ix.mu.RLock()
	if start, end, ok := ix.tryPositions(r); ok {
		ix.mu.RUnlock()
		ix.sharedHits.Add(1)
		return end - start
	}
	ix.mu.RUnlock()

	ix.mu.Lock()
	start, end := ix.cc.SelectPositions(r)
	ix.mu.Unlock()
	ix.exclusiveHits.Add(1)
	return end - start
}

// Insert adds a tuple under the exclusive latch (ripple insertion).
func (ix *Index) Insert(p column.Pair) {
	ix.mu.Lock()
	ix.cc.RippleInsert(p)
	ix.mu.Unlock()
}

// Delete removes a tuple under the exclusive latch (ripple deletion).
func (ix *Index) Delete(row column.RowID, val column.Value) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.cc.RippleDelete(row, val)
}

// NumPieces returns the current piece count.
func (ix *Index) NumPieces() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cc.NumPieces()
}

// Validate checks the underlying cracker column's invariants.
func (ix *Index) Validate() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.cc.Validate()
}
