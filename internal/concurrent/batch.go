package concurrent

import (
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/index"
)

var (
	_ index.Batcher       = (*Index)(nil)
	_ index.SelectBatcher = (*Index)(nil)
)

// CountBatch answers a batch of predicates with at most two latch
// acquisitions instead of one per query: a first pass under the shared
// latch answers every predicate whose bounds are already boundaries,
// then the remainder cracks under a single exclusive latch acquisition,
// in recursive-median order. Per-query dispatch pays the latch
// handshake — and, for cracking queries, the writer convoy behind the
// exclusive latch — once per query; the batch pays it once per batch.
//
// Writers (Insert/Delete) may interleave between the shared and
// exclusive passes, so two predicates of one batch can observe
// different logical contents — the same visibility a sequence of
// individual Counts has.
func (ix *Index) CountBatch(rs []column.Range) []int {
	out := make([]int, len(rs))
	pending := ix.sharedPass(rs, out, nil)
	if len(pending) == 0 {
		return out
	}
	ix.mu.Lock()
	for _, i := range pending {
		start, end := ix.cc.SelectPositions(rs[i])
		out[i] = end - start
	}
	ix.mu.Unlock()
	ix.exclusiveHits.Add(uint64(len(pending)))
	return out
}

// SelectBatch is CountBatch with materialised selection vectors.
func (ix *Index) SelectBatch(rs []column.Range) []column.IDList {
	rows := make([]column.IDList, len(rs))
	out := make([]int, len(rs))
	pending := ix.sharedPass(rs, out, rows)
	if len(pending) == 0 {
		return rows
	}
	ix.mu.Lock()
	for _, i := range pending {
		start, end := ix.cc.SelectPositions(rs[i])
		rows[i] = ix.collect(start, end)
	}
	ix.mu.Unlock()
	ix.exclusiveHits.Add(uint64(len(pending)))
	return rows
}

// sharedPass answers every predicate resolvable from existing
// boundaries under one shared latch acquisition, and returns the
// indices still needing to crack, in pivot order. rows is nil for
// count-only batches.
func (ix *Index) sharedPass(rs []column.Range, out []int, rows []column.IDList) []int {
	var pending []int
	shared := uint64(0)
	ix.mu.RLock()
	for _, i := range index.BatchOrder(rs) {
		r := rs[i]
		if r.Empty() {
			shared++
			continue
		}
		if start, end, ok := ix.tryPositions(r); ok {
			out[i] = end - start
			if rows != nil {
				rows[i] = ix.collect(start, end)
			}
			shared++
			continue
		}
		pending = append(pending, i)
	}
	ix.mu.RUnlock()
	ix.sharedHits.Add(shared)
	return pending
}
