package concurrent

import (
	"math/rand"
	"sync"
	"testing"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/core"
	"adaptiveindex/internal/workload"
)

func scanOracle(vals []column.Value, r column.Range) column.IDList {
	var out column.IDList
	for i, v := range vals {
		if r.Contains(v) {
			out = append(out, column.RowID(i))
		}
	}
	return out
}

func TestSequentialCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := workload.DataUniform(1, 3000, 600)
	ix := New(vals, core.DefaultOptions())
	for q := 0; q < 200; q++ {
		lo := column.Value(rng.Intn(620) - 10)
		r := column.NewRange(lo, lo+column.Value(rng.Intn(60)))
		got := ix.Select(r)
		want := scanOracle(vals, r)
		if !got.Equal(want) {
			t.Fatalf("query %d %s: got %d rows want %d", q, r, len(got), len(want))
		}
		if c := ix.Count(r); c != len(want) {
			t.Fatalf("Count(%s) = %d want %d", r, c, len(want))
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.Cost().IsZero() {
		t.Fatal("work must be recorded")
	}
}

func TestEmptyPredicate(t *testing.T) {
	ix := New([]column.Value{1, 2, 3}, core.DefaultOptions())
	if got := ix.Select(column.NewRange(5, 5)); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if ix.Count(column.NewRange(9, 3)) != 0 {
		t.Fatal("inverted range must be empty")
	}
}

func TestSharedPathUsedAfterConvergence(t *testing.T) {
	vals := workload.DataUniform(2, 10000, 10000)
	ix := New(vals, core.DefaultOptions())
	r := column.NewRange(100, 300)
	ix.Count(r) // cracks: exclusive
	before := ix.SharedQueries()
	for i := 0; i < 10; i++ {
		ix.Count(r) // bounds exist: shared
	}
	if ix.SharedQueries()-before != 10 {
		t.Fatalf("repeat queries should take the shared path, shared=%d", ix.SharedQueries()-before)
	}
	if ix.ExclusiveQueries() == 0 {
		t.Fatal("the first query must have taken the exclusive path")
	}
}

func TestConcurrentQueriesMatchOracle(t *testing.T) {
	vals := workload.DataUniform(3, 50000, 100000)
	ix := New(vals, core.DefaultOptions())

	const goroutines = 8
	const perGoroutine = 200
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < perGoroutine; q++ {
				// Draw from a bounded set of distinct predicates so that
				// goroutines repeat each other's queries and exercise the
				// shared (read-only) path as the index converges.
				lo := column.Value(rng.Intn(50) * 2000)
				r := column.NewRange(lo, lo+1500)
				got := ix.Select(r)
				// Verify every returned row satisfies the predicate and
				// the count matches an independent scan.
				for _, row := range got {
					if !r.Contains(vals[row]) {
						errs <- "returned row does not satisfy predicate"
						return
					}
				}
				if want := scanOracle(vals, r); len(got) != len(want) {
					errs <- "result cardinality mismatch"
					return
				}
			}
		}(int64(g + 10))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	total := ix.SharedQueries() + ix.ExclusiveQueries()
	if total != goroutines*perGoroutine {
		t.Fatalf("query accounting lost queries: %d of %d", total, goroutines*perGoroutine)
	}
	if ix.SharedQueries() == 0 {
		t.Fatal("expected at least some queries to take the shared path")
	}
}

func TestConcurrentQueriesWithUpdates(t *testing.T) {
	vals := workload.DataUniform(4, 20000, 50000)
	ix := New(vals, core.DefaultOptions())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer goroutine: inserts and deletes its own tuples.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		next := column.RowID(1_000_000)
		var mine []column.Pair
		for i := 0; i < 2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if len(mine) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(mine))
				if err := ix.Delete(mine[k].Row, mine[k].Val); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
				mine = append(mine[:k], mine[k+1:]...)
				continue
			}
			p := column.Pair{Val: column.Value(rng.Intn(50000)), Row: next}
			next++
			ix.Insert(p)
			mine = append(mine, p)
		}
	}()
	// Reader goroutines: results must always be internally consistent
	// (every returned row satisfies the predicate).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 500; q++ {
				lo := column.Value(rng.Intn(50000))
				r := column.NewRange(lo, lo+500)
				n := ix.Count(r)
				if n < 0 {
					t.Error("negative count")
					return
				}
			}
		}(int64(200 + g))
	}
	wg.Wait()
	close(stop)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNameAndPieces(t *testing.T) {
	ix := New([]column.Value{5, 1, 9, 3}, core.DefaultOptions())
	if ix.Name() != "cracking-concurrent" {
		t.Fatalf("Name = %q", ix.Name())
	}
	if ix.NumPieces() != 1 {
		t.Fatalf("fresh column pieces = %d", ix.NumPieces())
	}
	ix.Count(column.NewRange(2, 6))
	if ix.NumPieces() < 2 {
		t.Fatalf("pieces after a query = %d", ix.NumPieces())
	}
}
