package server

import (
	"runtime"
	"time"

	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/trace"
)

// TableStats describes one catalog table. Rows counts row slots
// (tombstones included — it is one past the largest row identifier);
// LiveRows counts live tuples. MergePolicy names when buffered writes
// merge into the table's cracked columns.
type TableStats struct {
	Table       string   `json:"table"`
	Rows        int      `json:"rows"`
	LiveRows    int      `json:"live_rows"`
	Columns     []string `json:"columns"`
	MergePolicy string   `json:"merge_policy"`
}

// PhaseStats is the latency summary of one execution phase, aggregated
// over traced queries.
type PhaseStats struct {
	Phase   string       `json:"phase"`
	Latency LatencyStats `json:"latency"`
}

// ProcessStats is process-level health: scheduler pressure and memory
// behaviour that no query counter exposes.
type ProcessStats struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	GCPauseTotalUs uint64 `json:"gc_pause_total_us"`
	NumGC          uint32 `json:"num_gc"`
	// SnapshotAgeSeconds is how old the restored snapshot is (zero when
	// the engine started cold) — a proxy for how much adaptive
	// convergence was inherited rather than earned by this process.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
}

// EventLogStats describes the reorganisation event ring served at
// /debug/events. LastSeq is also the total number of events ever
// appended, so its rate is the reorganisation rate.
type EventLogStats struct {
	LastSeq  uint64 `json:"last_seq"`
	Capacity int    `json:"capacity"`
}

// Stats is the service's observable state, served by /stats.
type Stats struct {
	// Tables lists the hosted catalog; Structures counts the adaptive
	// structures (and cracked pieces) the workload has built so far;
	// Planner is the per-column PathAuto state; WorkTotal is the
	// engine's cumulative logical work.
	Tables     []TableStats          `json:"tables"`
	Structures engine.StructureStats `json:"structures"`
	Planner    []engine.PlanStats    `json:"planner"`
	WorkTotal  uint64                `json:"work_total"`

	// WriteState is the engine's write-path state: applied and merged
	// update counts plus the current pending-buffer depth.
	WriteState engine.WriteStats `json:"write_state"`

	// DefaultTable, DefaultColumn and DefaultPath echo what queries get
	// when they omit the fields.
	DefaultTable  string `json:"default_table"`
	DefaultColumn string `json:"default_column"`
	DefaultPath   string `json:"default_path"`

	// Mode is "batched" or "direct"; BatchWindowUs and MaxBatch echo
	// the scheduler configuration.
	Mode          string `json:"mode"`
	BatchWindowUs int64  `json:"batch_window_us"`
	MaxBatch      int    `json:"max_batch"`

	// Queries is the number of answered queries; Writes the number of
	// applied write requests; Rejected counts admissions refused at the
	// in-flight limit.
	Queries  uint64 `json:"queries"`
	Writes   uint64 `json:"writes"`
	Rejected uint64 `json:"rejected"`
	// Batches is the number of executed batches; SharedScans counts
	// queries answered by an execution shared with an identical query
	// in the same batch; MaxBatchSeen is the largest batch executed so
	// far.
	Batches      uint64 `json:"batches"`
	SharedScans  uint64 `json:"shared_scans"`
	MaxBatchSeen int64  `json:"max_batch_seen"`
	// EncodeFailures counts responses (JSON or binary) whose encode or
	// write back to the client failed; those clients saw a truncated or
	// empty body, not the result.
	EncodeFailures uint64 `json:"encode_failures"`

	// InFlight and MaxInFlight describe the admission state.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`

	Latency LatencyStats `json:"latency"`

	// TracedQueries counts queries that asked for span tracing; Phases
	// aggregates their per-phase durations (phases never observed are
	// omitted).
	TracedQueries uint64       `json:"traced_queries"`
	Phases        []PhaseStats `json:"phases,omitempty"`

	// Shards is the number of engine shards answering each query (1 for
	// a single-engine service); ShardStats breaks the adaptive state
	// down per shard when the service fronts a cluster.
	Shards     int                `json:"shards"`
	ShardStats []engine.ShardStat `json:"shard_stats,omitempty"`

	// Readers is the epoch read concurrency (0 or 1: every query on the
	// serialised executor); Reorg describes the epoch read machinery
	// when Readers > 1.
	Readers int         `json:"readers"`
	Reorg   *ReorgStats `json:"reorg,omitempty"`

	Process  ProcessStats  `json:"process"`
	EventLog EventLogStats `json:"event_log"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReorgStats describes the epoch read machinery behind Readers > 1:
// the epoch lifecycle counters, the crack-intent queue, and the
// reorganiser's lag behind the readers.
type ReorgStats struct {
	// Epoch is the executor's epoch lifecycle state (publications,
	// retirements, applied intents, epoch reads and their summed work).
	Epoch engine.EpochStats `json:"epoch"`
	// Backlog is the current depth of the crack-intent queue;
	// IntentsQueued and IntentsDropped count enqueues and queue-full
	// drops over the service's lifetime.
	Backlog        int    `json:"backlog"`
	IntentsQueued  uint64 `json:"intents_queued"`
	IntentsDropped uint64 `json:"intents_dropped"`
	// LagUs is the queue delay of the most recently applied intent, in
	// microseconds — how far the reorganiser runs behind the readers.
	LagUs uint64 `json:"lag_us"`
}

// statsLocked assembles a Stats snapshot; the executor portion requires
// the caller to have safe access to the executor (the executor
// goroutine in batched mode, s.mu in direct mode).
func (s *Service) statsLocked() Stats {
	mode := "direct"
	if s.batched {
		mode = "batched"
	}
	infos := s.exec.Tables()
	tables := make([]TableStats, 0, len(infos))
	for _, ti := range infos {
		tables = append(tables, TableStats{
			Table:       ti.Name,
			Rows:        ti.Rows,
			LiveRows:    ti.LiveRows,
			Columns:     ti.Columns,
			MergePolicy: ti.MergePolicy,
		})
	}
	var phases []PhaseStats
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		ls := s.phases[p].snapshot()
		if ls.Count == 0 {
			continue
		}
		phases = append(phases, PhaseStats{Phase: p.String(), Latency: ls})
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	proc := ProcessStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		GCPauseTotalUs: ms.PauseTotalNs / 1000,
		NumGC:          ms.NumGC,
	}
	if !s.cfg.SnapshotTime.IsZero() {
		proc.SnapshotAgeSeconds = time.Since(s.cfg.SnapshotTime).Seconds()
	}
	var reorg *ReorgStats
	if s.readers > 1 {
		reorg = &ReorgStats{
			Epoch:          s.exec.EpochStats(),
			Backlog:        len(s.intents),
			IntentsQueued:  s.intentsQueued.Load(),
			IntentsDropped: s.intentsDropped.Load(),
			LagUs:          s.reorgLagUs.Load(),
		}
	}
	return Stats{
		Tables:         tables,
		Structures:     s.exec.Structures(),
		Planner:        s.exec.PlanStats(),
		WorkTotal:      s.exec.Cost().Total(),
		WriteState:     s.exec.WriteStats(),
		DefaultTable:   s.cfg.DefaultTable,
		DefaultColumn:  s.cfg.DefaultColumn,
		DefaultPath:    s.defaultPath.String(),
		Mode:           mode,
		BatchWindowUs:  s.cfg.BatchWindow.Microseconds(),
		MaxBatch:       s.cfg.MaxBatch,
		Queries:        s.queries.Load(),
		Writes:         s.writes.Load(),
		Rejected:       s.rejected.Load(),
		Batches:        s.batches.Load(),
		SharedScans:    s.shared.Load(),
		MaxBatchSeen:   s.maxBatch.Load(),
		EncodeFailures: s.encodeFailures.Load(),
		InFlight:       s.inFlight.Load(),
		MaxInFlight:    s.cfg.MaxInFlight,
		Latency:        s.hist.snapshot(),
		TracedQueries:  s.traced.Load(),
		Phases:         phases,
		Shards:         s.exec.Shards(),
		ShardStats:     s.exec.ShardStats(),
		Readers:        s.readers,
		Reorg:          reorg,
		Process:        proc,
		EventLog:       EventLogStats{LastSeq: s.events.LastSeq(), Capacity: s.events.Capacity()},
		UptimeSeconds:  time.Since(s.started).Seconds(),
	}
}

// Stats returns an observable snapshot of the service, its catalog,
// structures and planner state. In batched mode the snapshot is taken
// by the executor between batches, so the engine portion is consistent;
// admission is bypassed so stats stay available under overload.
func (s *Service) Stats() Stats {
	select {
	case <-s.closed:
		// Closed and drained: the engine is quiescent.
		<-s.drained
		return s.statsLocked()
	default:
	}
	if s.batched {
		req := &request{op: opStats, enqueued: time.Now(), resp: make(chan result, 1)}
		select {
		case s.queue <- req:
		case <-s.closed:
			<-s.drained
			return s.statsLocked()
		}
		select {
		case res := <-req.resp:
			if res.stats != nil {
				return *res.stats
			}
		case <-s.drained:
			select {
			case res := <-req.resp:
				if res.stats != nil {
					return *res.stats
				}
			default:
			}
		}
		<-s.drained
		return s.statsLocked()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}
