package server

import (
	"runtime"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/trace"
)

// The /stats payload shapes live in internal/api (the shared wire
// contract); the server aliases them so existing call sites and tests
// keep compiling against server.Stats and friends.
type (
	// TableStats describes one catalog table.
	TableStats = api.TableStats
	// PhaseStats is the latency summary of one execution phase.
	PhaseStats = api.PhaseStats
	// ProcessStats is process-level health.
	ProcessStats = api.ProcessStats
	// EventLogStats describes the reorganisation event ring.
	EventLogStats = api.EventLogStats
	// Stats is the service's observable state, served by /stats.
	Stats = api.Stats
	// ReorgStats describes the epoch read machinery behind Readers > 1.
	ReorgStats = api.ReorgStats
	// LatencyStats summarises a latency distribution.
	LatencyStats = api.LatencyStats
)

// statsLocked assembles a Stats snapshot; the executor portion requires
// the caller to have safe access to the executor (the executor
// goroutine in batched mode, s.mu in direct mode).
func (s *Service) statsLocked() Stats {
	mode := "direct"
	if s.batched {
		mode = "batched"
	}
	infos := s.exec.Tables()
	tables := make([]TableStats, 0, len(infos))
	for _, ti := range infos {
		tables = append(tables, TableStats{
			Table:       ti.Name,
			Rows:        ti.Rows,
			LiveRows:    ti.LiveRows,
			Columns:     ti.Columns,
			MergePolicy: ti.MergePolicy,
		})
	}
	var phases []PhaseStats
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		ls := s.phases[p].snapshot()
		if ls.Count == 0 {
			continue
		}
		phases = append(phases, PhaseStats{Phase: p.String(), Latency: ls})
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	proc := ProcessStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		GCPauseTotalUs: ms.PauseTotalNs / 1000,
		NumGC:          ms.NumGC,
	}
	if !s.cfg.SnapshotTime.IsZero() {
		proc.SnapshotAgeSeconds = time.Since(s.cfg.SnapshotTime).Seconds()
	}
	var reorg *ReorgStats
	if s.readers > 1 {
		reorg = &ReorgStats{
			Epoch:          s.exec.EpochStats(),
			Backlog:        len(s.intents),
			IntentsQueued:  s.intentsQueued.Load(),
			IntentsDropped: s.intentsDropped.Load(),
			LagUs:          s.reorgLagUs.Load(),
		}
	}
	return Stats{
		Tables:         tables,
		Structures:     s.exec.Structures(),
		Planner:        s.exec.PlanStats(),
		WorkTotal:      s.exec.Cost().Total(),
		WriteState:     s.exec.WriteStats(),
		DefaultTable:   s.cfg.DefaultTable,
		DefaultColumn:  s.cfg.DefaultColumn,
		DefaultPath:    s.defaultPath.String(),
		Mode:           mode,
		BatchWindowUs:  s.cfg.BatchWindow.Microseconds(),
		MaxBatch:       s.cfg.MaxBatch,
		Queries:        s.queries.Load(),
		Writes:         s.writes.Load(),
		Rejected:       s.rejected.Load(),
		Batches:        s.batches.Load(),
		SharedScans:    s.shared.Load(),
		MaxBatchSeen:   s.maxBatch.Load(),
		EncodeFailures: s.encodeFailures.Load(),
		InFlight:       s.inFlight.Load(),
		MaxInFlight:    s.cfg.MaxInFlight,
		Latency:        s.hist.snapshot(),
		TracedQueries:  s.traced.Load(),
		Phases:         phases,
		Shards:         s.exec.Shards(),
		ShardStats:     s.exec.ShardStats(),
		Readers:        s.readers,
		Reorg:          reorg,
		Process:        proc,
		EventLog:       EventLogStats{LastSeq: s.events.LastSeq(), Capacity: s.events.Capacity()},
		UptimeSeconds:  time.Since(s.started).Seconds(),
	}
}

// Stats returns an observable snapshot of the service, its catalog,
// structures and planner state. In batched mode the snapshot is taken
// by the executor between batches, so the engine portion is consistent;
// admission is bypassed so stats stay available under overload.
func (s *Service) Stats() Stats {
	select {
	case <-s.closed:
		// Closed and drained: the engine is quiescent.
		<-s.drained
		return s.statsLocked()
	default:
	}
	if s.batched {
		req := &request{op: opStats, enqueued: time.Now(), resp: make(chan result, 1)}
		select {
		case s.queue <- req:
		case <-s.closed:
			<-s.drained
			return s.statsLocked()
		}
		select {
		case res := <-req.resp:
			if res.stats != nil {
				return *res.stats
			}
		case <-s.drained:
			select {
			case res := <-req.resp:
				if res.stats != nil {
					return *res.stats
				}
			default:
			}
		}
		<-s.drained
		return s.statsLocked()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}
