package server

import (
	"time"

	"adaptiveindex/internal/index"
	"adaptiveindex/internal/partition"
)

// pairBytes is the logical footprint of one indexed tuple: an 8-byte
// value plus a 4-byte row identifier.
const pairBytes = 12

// IndexStats describes the hosted index's current state.
type IndexStats struct {
	// Kind is the configured index kind; Name is what the index calls
	// itself in reports.
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Len is the number of indexed tuples, Bytes their logical
	// footprint (value + rowid pairs).
	Len   int    `json:"len"`
	Bytes uint64 `json:"bytes"`
	// Partitions is the shard count of a partitioned index (1
	// otherwise).
	Partitions int `json:"partitions"`
	// Cracks is the total number of cracked pieces across the index
	// (0 for non-cracking kinds that do not expose pieces).
	Cracks int `json:"cracks"`
	// WorkTotal is the index's cumulative logical work (cost model
	// scalar).
	WorkTotal uint64 `json:"work_total"`
}

// Stats is the service's observable state, served by /stats.
type Stats struct {
	Index IndexStats `json:"index"`

	// Mode is "batched" or "direct"; BatchWindowUs and MaxBatch echo
	// the scheduler configuration.
	Mode          string `json:"mode"`
	BatchWindowUs int64  `json:"batch_window_us"`
	MaxBatch      int    `json:"max_batch"`

	// Queries is the number of answered queries; Rejected counts
	// admissions refused at the in-flight limit.
	Queries  uint64 `json:"queries"`
	Rejected uint64 `json:"rejected"`
	// Batches is the number of executed batches; SharedScans counts
	// queries answered by an execution shared with an identical
	// predicate in the same batch; MaxBatchSeen is the largest batch
	// executed so far.
	Batches      uint64 `json:"batches"`
	SharedScans  uint64 `json:"shared_scans"`
	MaxBatchSeen int64  `json:"max_batch_seen"`

	// InFlight and MaxInFlight describe the admission state.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`

	Latency LatencyStats `json:"latency"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// piecer is the optional piece-count surface cracker-style indexes
// expose.
type piecer interface{ NumPieces() int }

// indexStats introspects the hosted index. Callers must hold whatever
// access the index requires (the executor goroutine in batched mode,
// s.mu in direct mode over a non-concurrency-safe index).
func (s *Service) indexStats() IndexStats {
	ix := s.cfg.Index
	st := IndexStats{
		Kind:       s.cfg.Kind,
		Name:       ix.Name(),
		Len:        ix.Len(),
		Bytes:      uint64(ix.Len()) * pairBytes,
		Partitions: 1,
		WorkTotal:  ix.Cost().Total(),
	}
	// Probe the innermost implementation: a Rename-style wrapper must
	// not hide the piece or partition counters.
	switch t := index.Unwrap(ix).(type) {
	case *partition.Index:
		st.Partitions = t.NumPartitions()
		for _, p := range t.PartitionStats() {
			st.Cracks += p.Pieces
		}
	case piecer:
		st.Cracks = t.NumPieces()
	}
	return st
}

// statsLocked assembles a Stats snapshot; the index portion requires
// the caller to have safe access to the index.
func (s *Service) statsLocked() Stats {
	mode := "direct"
	if s.batched {
		mode = "batched"
	}
	return Stats{
		Index:         s.indexStats(),
		Mode:          mode,
		BatchWindowUs: s.cfg.BatchWindow.Microseconds(),
		MaxBatch:      s.cfg.MaxBatch,
		Queries:       s.queries.Load(),
		Rejected:      s.rejected.Load(),
		Batches:       s.batches.Load(),
		SharedScans:   s.shared.Load(),
		MaxBatchSeen:  s.maxBatch.Load(),
		InFlight:      s.inFlight.Load(),
		MaxInFlight:   s.cfg.MaxInFlight,
		Latency:       s.hist.snapshot(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
}

// Stats returns an observable snapshot of the service and its index.
// In batched mode the snapshot is taken by the executor between
// batches, so the index portion is consistent; admission is bypassed so
// stats stay available under overload.
func (s *Service) Stats() Stats {
	select {
	case <-s.closed:
		// Closed and drained: the index is quiescent.
		<-s.drained
		return s.statsLocked()
	default:
	}
	if s.batched {
		req := &request{op: opStats, enqueued: time.Now(), resp: make(chan result, 1)}
		select {
		case s.queue <- req:
		case <-s.closed:
			<-s.drained
			return s.statsLocked()
		}
		select {
		case res := <-req.resp:
			if res.stats != nil {
				return *res.stats
			}
		case <-s.drained:
			select {
			case res := <-req.resp:
				if res.stats != nil {
					return *res.stats
				}
			default:
			}
		}
		<-s.drained
		return s.statsLocked()
	}
	if !s.cfg.ConcurrencySafe {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.statsLocked()
}
