package server

import (
	"sort"
	"time"

	"adaptiveindex/internal/engine"
)

// TableStats describes one catalog table. Rows counts row slots
// (tombstones included — it is one past the largest row identifier);
// LiveRows counts live tuples. MergePolicy names when buffered writes
// merge into the table's cracked columns.
type TableStats struct {
	Table       string   `json:"table"`
	Rows        int      `json:"rows"`
	LiveRows    int      `json:"live_rows"`
	Columns     []string `json:"columns"`
	MergePolicy string   `json:"merge_policy"`
}

// Stats is the service's observable state, served by /stats.
type Stats struct {
	// Tables lists the hosted catalog; Structures counts the adaptive
	// structures (and cracked pieces) the workload has built so far;
	// Planner is the per-column PathAuto state; WorkTotal is the
	// engine's cumulative logical work.
	Tables     []TableStats          `json:"tables"`
	Structures engine.StructureStats `json:"structures"`
	Planner    []engine.PlanStats    `json:"planner"`
	WorkTotal  uint64                `json:"work_total"`

	// WriteState is the engine's write-path state: applied and merged
	// update counts plus the current pending-buffer depth.
	WriteState engine.WriteStats `json:"write_state"`

	// DefaultTable, DefaultColumn and DefaultPath echo what queries get
	// when they omit the fields.
	DefaultTable  string `json:"default_table"`
	DefaultColumn string `json:"default_column"`
	DefaultPath   string `json:"default_path"`

	// Mode is "batched" or "direct"; BatchWindowUs and MaxBatch echo
	// the scheduler configuration.
	Mode          string `json:"mode"`
	BatchWindowUs int64  `json:"batch_window_us"`
	MaxBatch      int    `json:"max_batch"`

	// Queries is the number of answered queries; Writes the number of
	// applied write requests; Rejected counts admissions refused at the
	// in-flight limit.
	Queries  uint64 `json:"queries"`
	Writes   uint64 `json:"writes"`
	Rejected uint64 `json:"rejected"`
	// Batches is the number of executed batches; SharedScans counts
	// queries answered by an execution shared with an identical query
	// in the same batch; MaxBatchSeen is the largest batch executed so
	// far.
	Batches      uint64 `json:"batches"`
	SharedScans  uint64 `json:"shared_scans"`
	MaxBatchSeen int64  `json:"max_batch_seen"`
	// EncodeFailures counts responses (JSON or binary) whose encode or
	// write back to the client failed; those clients saw a truncated or
	// empty body, not the result.
	EncodeFailures uint64 `json:"encode_failures"`

	// InFlight and MaxInFlight describe the admission state.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`

	Latency LatencyStats `json:"latency"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// statsLocked assembles a Stats snapshot; the engine portion requires
// the caller to have safe access to the engine (the executor goroutine
// in batched mode, s.mu in direct mode).
func (s *Service) statsLocked() Stats {
	mode := "direct"
	if s.batched {
		mode = "batched"
	}
	eng := s.cfg.Engine
	cat := eng.Catalog()
	names := cat.Tables()
	sort.Strings(names)
	tables := make([]TableStats, 0, len(names))
	for _, name := range names {
		t, err := cat.Table(name)
		if err != nil {
			continue
		}
		tables = append(tables, TableStats{
			Table:       name,
			Rows:        t.NumRows(),
			LiveRows:    t.LiveRows(),
			Columns:     t.Columns(),
			MergePolicy: eng.MergePolicyFor(name).String(),
		})
	}
	return Stats{
		Tables:         tables,
		Structures:     eng.Structures(),
		Planner:        eng.PlanStats(),
		WorkTotal:      eng.Cost().Total(),
		WriteState:     eng.WriteStats(),
		DefaultTable:   s.cfg.DefaultTable,
		DefaultColumn:  s.cfg.DefaultColumn,
		DefaultPath:    s.defaultPath.String(),
		Mode:           mode,
		BatchWindowUs:  s.cfg.BatchWindow.Microseconds(),
		MaxBatch:       s.cfg.MaxBatch,
		Queries:        s.queries.Load(),
		Writes:         s.writes.Load(),
		Rejected:       s.rejected.Load(),
		Batches:        s.batches.Load(),
		SharedScans:    s.shared.Load(),
		MaxBatchSeen:   s.maxBatch.Load(),
		EncodeFailures: s.encodeFailures.Load(),
		InFlight:       s.inFlight.Load(),
		MaxInFlight:    s.cfg.MaxInFlight,
		Latency:        s.hist.snapshot(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
	}
}

// Stats returns an observable snapshot of the service, its catalog,
// structures and planner state. In batched mode the snapshot is taken
// by the executor between batches, so the engine portion is consistent;
// admission is bypassed so stats stay available under overload.
func (s *Service) Stats() Stats {
	select {
	case <-s.closed:
		// Closed and drained: the engine is quiescent.
		<-s.drained
		return s.statsLocked()
	default:
	}
	if s.batched {
		req := &request{op: opStats, enqueued: time.Now(), resp: make(chan result, 1)}
		select {
		case s.queue <- req:
		case <-s.closed:
			<-s.drained
			return s.statsLocked()
		}
		select {
		case res := <-req.resp:
			if res.stats != nil {
				return *res.stats
			}
		case <-s.drained:
			select {
			case res := <-req.resp:
				if res.stats != nil {
					return *res.stats
				}
			default:
			}
		}
		<-s.drained
		return s.statsLocked()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}
