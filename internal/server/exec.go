package server

import (
	"io"

	"adaptiveindex/internal/column"
	"adaptiveindex/internal/cost"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/persist"
	"adaptiveindex/internal/trace"
)

// Exec is what the service hosts: a query/write executor over a
// catalog. A bare engine.Engine (wrapped by singleExec) and a
// shard-per-core cluster (internal/shard.Cluster) both satisfy it.
// Implementations are not required to be concurrency-safe; the service
// serialises every call — the executor goroutine owns the Exec in
// batched mode, the service latch does in direct mode — exactly as it
// always did for the bare engine.
type Exec interface {
	// Run executes one query.
	Run(q engine.Query) (*engine.Result, error)
	// InsertRow appends a row, returning its (global) row identifier;
	// DeleteRow tombstones one.
	InsertRow(table string, vals []column.Value) (column.RowID, error)
	DeleteRow(table string, row column.RowID) error
	// Tables summarises the hosted catalog, sorted by table name.
	Tables() []engine.TableInfo
	// Structures, PlanStats, Cost and WriteStats are the observable
	// adaptive state behind /stats and /metrics.
	Structures() engine.StructureStats
	PlanStats() []engine.PlanStats
	Cost() cost.Counters
	WriteStats() engine.WriteStats
	// SetEventLog routes reorganisation events into the service's ring.
	SetEventLog(l *trace.Log)
	// Shards is the number of engine shards answering each query (1
	// for a bare engine); ShardStats breaks the state down per shard
	// (nil for a bare engine).
	Shards() int
	ShardStats() []engine.ShardStat
	// SnapshotTo persists the executor's adaptive state through
	// internal/persist. Only called on a quiescent executor.
	SnapshotTo(w io.Writer) error
	// PublishEpoch captures the executor's state as the next immutable
	// epoch and returns its sequence number. Owner-goroutine only,
	// like every mutating call.
	PublishEpoch() uint64
	// EpochRead answers one read-only query against the current epoch
	// without touching live state; safe from any goroutine, concurrent
	// with the owner's writes and reorganisation. The caller must
	// invoke the returned info's Release exactly once.
	EpochRead(q engine.Query) (*engine.Result, engine.EpochInfo, error)
	// ApplyIntent applies one deferred crack intent (owner-goroutine
	// only); EpochStats reports the epoch machinery's counters (safe
	// from any goroutine).
	ApplyIntent(in engine.Intent) error
	EpochStats() engine.EpochStats
}

// singleExec adapts a bare engine to the Exec surface.
type singleExec struct {
	eng *engine.Engine
}

func (x singleExec) Run(q engine.Query) (*engine.Result, error) { return x.eng.Run(q) }

func (x singleExec) InsertRow(table string, vals []column.Value) (column.RowID, error) {
	return x.eng.InsertRow(table, vals)
}

func (x singleExec) DeleteRow(table string, row column.RowID) error {
	return x.eng.DeleteRow(table, row)
}

func (x singleExec) Tables() []engine.TableInfo        { return x.eng.Tables() }
func (x singleExec) Structures() engine.StructureStats { return x.eng.Structures() }
func (x singleExec) PlanStats() []engine.PlanStats     { return x.eng.PlanStats() }
func (x singleExec) Cost() cost.Counters               { return x.eng.Cost() }
func (x singleExec) WriteStats() engine.WriteStats     { return x.eng.WriteStats() }
func (x singleExec) SetEventLog(l *trace.Log)          { x.eng.SetEventLog(l) }
func (x singleExec) Shards() int                       { return 1 }
func (x singleExec) ShardStats() []engine.ShardStat    { return nil }

func (x singleExec) SnapshotTo(w io.Writer) error { return persist.SaveEngine(w, x.eng) }

func (x singleExec) PublishEpoch() uint64 { return x.eng.PublishEpoch().Seq }

func (x singleExec) EpochRead(q engine.Query) (*engine.Result, engine.EpochInfo, error) {
	return x.eng.EpochRead(q)
}

func (x singleExec) ApplyIntent(in engine.Intent) error { return x.eng.ApplyIntent(in) }
func (x singleExec) EpochStats() engine.EpochStats      { return x.eng.EpochStats() }
