package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"adaptiveindex/internal/column"
)

// QueryRequest is the wire form of one range query.
//
//	POST /query {"op":"count","low":10,"high":20}
//
// Omitted bounds are unbounded; incLow defaults to true and incHigh to
// false, so {low, high} is the canonical half-open interval [low, high).
type QueryRequest struct {
	// Op is "count" (default) or "select".
	Op      string `json:"op,omitempty"`
	Low     *int64 `json:"low,omitempty"`
	High    *int64 `json:"high,omitempty"`
	IncLow  *bool  `json:"incLow,omitempty"`
	IncHigh *bool  `json:"incHigh,omitempty"`
}

// Range converts the wire form to the internal predicate.
func (q QueryRequest) Range() column.Range {
	r := column.Range{IncLow: true}
	if q.Low != nil {
		r.HasLow, r.Low = true, *q.Low
	}
	if q.High != nil {
		r.HasHigh, r.High = true, *q.High
	}
	if q.IncLow != nil {
		r.IncLow = *q.IncLow
	}
	if q.IncHigh != nil {
		r.IncHigh = *q.IncHigh
	}
	return r
}

// QueryResponse is the wire form of a query result.
type QueryResponse struct {
	Count int `json:"count"`
	// Rows carries the qualifying row identifiers for select queries.
	Rows []column.RowID `json:"rows,omitempty"`
	// LatencyUs is the server-side latency of this query, queueing
	// included.
	LatencyUs int64 `json:"latency_us"`
}

// errorResponse is the wire form of a failure.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP surface:
//
//	POST /query   answer one range query (see QueryRequest)
//	GET  /stats   observable service + index state (see Stats)
//	GET  /healthz liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var q QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid query: %v", err)})
		return
	}
	start := time.Now()
	var resp QueryResponse
	var err error
	switch q.Op {
	case "", "count":
		resp.Count, err = s.Count(q.Range())
	case "select":
		var rows column.IDList
		rows, err = s.Select(q.Range())
		resp.Count, resp.Rows = len(rows), rows
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown op %q (want count or select)", q.Op)})
		return
	}
	if err != nil {
		status := http.StatusServiceUnavailable
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrClosed) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	resp.LatencyUs = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
