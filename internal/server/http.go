package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"adaptiveindex/internal/api"
	"adaptiveindex/internal/column"
	"adaptiveindex/internal/engine"
	"adaptiveindex/internal/trace"
	"adaptiveindex/internal/wire"
)

// The wire DTOs live in internal/api — the shared, versioned contract
// every HTTP consumer (this server, crackload, the multi-node router)
// speaks. The server aliases them so existing call sites and tests
// keep compiling against server.QueryRequest and friends.
type (
	// QueryRequest is the wire form of one query (see api.QueryRequest).
	QueryRequest = api.QueryRequest
	// QueryResponse is the wire form of a query result.
	QueryResponse = api.QueryResponse
	// UpdateOp is the wire form of one mutation.
	UpdateOp = api.UpdateOp
	// UpdateRequest is the wire form of one write request.
	UpdateRequest = api.UpdateRequest
	// UpdateResponse is the wire form of a write result.
	UpdateResponse = api.UpdateResponse
)

// errorResponse is the wire form of a failure.
type errorResponse = api.ErrorResponse

// toQuery converts the wire form to the service-level query.
func toQuery(q QueryRequest) Query {
	return Query{Table: q.Table, Column: q.Column, R: q.Range(), Project: q.Project, Path: q.Path}
}

// Handler returns the service's HTTP surface:
//
//	POST /query         answer one query (see QueryRequest)
//	POST /update        apply inserts/deletes (see UpdateRequest)
//	GET  /stats         observable service + catalog + planner state (see Stats)
//	GET  /metrics       Prometheus text exposition of the same counters
//	GET  /debug/events  reorganisation event log (cursor: ?since=seq)
//	GET  /healthz       liveness + readiness probe
//	GET  /fingerprint   stable hash of the catalog shape and row counts
//
// Every route answers the wrong method with 405 and an Allow header.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/query", s.methodGate(http.MethodPost, s.handleQuery))
	mux.Handle("/update", s.methodGate(http.MethodPost, s.handleUpdate))
	mux.Handle("/stats", s.methodGate(http.MethodGet, s.handleStats))
	mux.Handle("/metrics", s.methodGate(http.MethodGet, s.handleMetrics))
	mux.Handle("/debug/events", s.methodGate(http.MethodGet, s.handleEvents))
	mux.Handle("/healthz", s.methodGate(http.MethodGet, func(w http.ResponseWriter, _ *http.Request) {
		// A running Service is by definition restored and serving; the
		// not-ready half of the probe lives in the daemon's boot gate,
		// which answers 503 {"ok":true,"ready":false} until the engine
		// is up and swaps this handler in.
		s.writeJSON(w, http.StatusOK, api.Health{OK: true, Ready: true})
	}))
	mux.Handle("/fingerprint", s.methodGate(http.MethodGet, func(w http.ResponseWriter, _ *http.Request) {
		// The fingerprint hashes schema + row population, so a router
		// can verify a restarted node restored the stripe it owned.
		s.writeJSON(w, http.StatusOK, api.FingerprintResponse{
			Fingerprint: api.CatalogFingerprint(s.Stats().Tables),
		})
	}))
	return mux
}

// methodGate rejects every method but the given one with 405 and an
// Allow header, per RFC 9110 §15.5.6.
func (s *Service) methodGate(method string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: method + " required"})
			return
		}
		h(w, r)
	})
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	u, err := api.DecodeUpdate(r.Body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid update: %v", err)})
		return
	}
	ops, err := u.WriteOps()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	start := time.Now()
	reply, err := s.Apply(ops)
	if err != nil {
		// Ops apply in order and the failed request's applied prefix
		// stays applied (see Apply), so the error response must carry
		// it — a client that loses the assigned row identifiers can
		// never reconcile its bookkeeping with the server again.
		s.writeJSON(w, statusFor(err), struct {
			errorResponse
			Inserted []column.RowID `json:"inserted,omitempty"`
			Deleted  int            `json:"deleted"`
		}{errorResponse{Error: err.Error()}, reply.Inserted, reply.Deleted})
		return
	}
	s.writeJSON(w, http.StatusOK, UpdateResponse{
		Inserted:       reply.Inserted,
		Deleted:        reply.Deleted,
		PendingInserts: reply.PendingInserts,
		PendingDeletes: reply.PendingDeletes,
		LatencyUs:      time.Since(start).Microseconds(),
	})
}

// wantTrace reports whether the request asked for a phase span tree:
// "trace":true in the body, or an X-Crack-Trace header (any value but
// "0" and "false").
func wantTrace(q QueryRequest, r *http.Request) bool {
	if q.Trace {
		return true
	}
	switch v := r.Header.Get("X-Crack-Trace"); v {
	case "", "0", "false":
		return false
	default:
		return true
	}
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := api.DecodeQuery(r.Body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid query: %v", err)})
		return
	}
	binary, blockRows := wire.Negotiate(r.Header.Get("Accept"))
	var rec *trace.Recorder
	if wantTrace(q, r) {
		rec = trace.NewRecorder()
	}
	start := time.Now()
	var reply Reply
	switch q.Op {
	case "", "count":
		reply, err = s.do(opCount, toQuery(q), rec)
	case "select":
		reply, err = s.do(opSelect, toQuery(q), rec)
	default:
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown op %q (want count or select)", q.Op)})
		return
	}
	if err != nil {
		// Failures are always JSON, whatever the client negotiated:
		// error bodies are for humans and logs, not column decoders.
		s.writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	if reply.Done != nil {
		// Epoch-pinned replies stay pinned until the response — every
		// streamed frame included — has been handed to the client.
		defer reply.Done()
	}
	if binary {
		s.writeBinary(w, q, reply, blockRows, start, rec)
		return
	}
	resp := QueryResponse{
		Count:     reply.Count,
		Rows:      reply.Rows,
		Columns:   reply.Columns,
		Path:      reply.Path.String(),
		LatencyUs: time.Since(start).Microseconds(),
	}
	if rec == nil {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	// The payload encode happens inside the wire_encode span, so the
	// span tree can only be serialised afterwards: marshal the response
	// without the trace, then splice the tree in as the final field.
	rec.Begin(trace.PhaseEncode)
	body, err := json.Marshal(resp)
	rec.End(trace.Work{})
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	root := rec.Finish()
	s.observePhases(root)
	spanJSON, err := json.Marshal(root)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	spliced := make([]byte, 0, len(body)+len(spanJSON)+16)
	spliced = append(spliced, body[:len(body)-1]...) // drop the closing brace
	spliced = append(spliced, `,"trace":`...)
	spliced = append(spliced, spanJSON...)
	spliced = append(spliced, '}')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(spliced); err != nil {
		s.encodeFailed("json", err)
	}
}

// writeBinary streams one successful query result in the binary
// columnar format: a header frame, the rows and projected columns in
// blocks of blockRows rows (one block when zero), and a footer. Each
// frame is written — and, when the ResponseWriter supports it, flushed
// — as a unit, so clients see complete frames as soon as the data
// plane produces them instead of waiting for a fully materialised
// body. Column vectors are sliced straight out of the engine result;
// nothing is re-marshalled per value.
//
// For traced queries (rec non-nil) the header and block encoding is
// timed as the wire_encode phase and the finished span tree rides in a
// trace frame between the last block and the footer.
func (s *Service) writeBinary(w http.ResponseWriter, q QueryRequest, reply Reply, blockRows int, start time.Time, rec *trace.Recorder) {
	w.Header().Set("Content-Type", wire.ContentType)
	enc := wire.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	if rec != nil {
		rec.Begin(trace.PhaseEncode)
	}
	h := wire.Header{Count: reply.Count, Path: reply.Path.String(), Columns: q.Project}
	if err := enc.WriteHeader(h); err != nil {
		s.encodeFailed("binary", err)
		return
	}
	res := engine.Result{Count: reply.Count, Rows: reply.Rows, Columns: reply.Columns}
	err := res.Blocks(q.Project, blockRows, func(rows column.IDList, cols [][]column.Value) error {
		if err := enc.WriteBlock(rows, cols); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		s.encodeFailed("binary", err)
		return
	}
	if rec != nil {
		rec.End(trace.Work{})
		root := rec.Finish()
		s.observePhases(root)
		spanJSON, err := json.Marshal(root)
		if err == nil {
			err = enc.WriteTrace(spanJSON)
		}
		if err != nil {
			s.encodeFailed("binary", err)
			return
		}
	}
	f := wire.Footer{TotalRows: uint64(len(reply.Rows)), LatencyUs: uint64(time.Since(start).Microseconds())}
	if err := enc.WriteFooter(f); err != nil {
		s.encodeFailed("binary", err)
	}
}

// statusFor maps service errors to HTTP statuses: client mistakes
// (unknown tables, columns, paths) are 400s, backpressure and shutdown
// are 503s, anything else is a 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, engine.ErrUnknownTable),
		errors.Is(err, engine.ErrUnknownColumn),
		errors.Is(err, engine.ErrUnknownPath),
		errors.Is(err, engine.ErrRowArity),
		errors.Is(err, ErrProjectWithCount),
		errors.Is(err, ErrEmptyWrite):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrRowNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// eventsResponse is the wire form of one /debug/events poll. Clients
// replay the log by polling with since=<last seen seq>; Dropped warns
// when the ring evicted events the cursor never saw.
type eventsResponse struct {
	Events   []trace.Event `json:"events"`
	LastSeq  uint64        `json:"last_seq"`
	Dropped  uint64        `json:"dropped"`
	Capacity int           `json:"capacity"`
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	var max int
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid since: %v", err)})
			return
		}
		since = n
	}
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid max: want a non-negative integer"})
			return
		}
		max = n
	}
	events, dropped := s.events.Since(since, max)
	if events == nil {
		events = []trace.Event{} // "[]", not "null": the poll loop is cursor arithmetic
	}
	s.writeJSON(w, http.StatusOK, eventsResponse{
		Events:   events,
		LastSeq:  s.events.LastSeq(),
		Dropped:  dropped,
		Capacity: s.events.Capacity(),
	})
}

func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeFailed("json", err)
	}
}

// encodeFailed records a response that could not be encoded or written
// back to the client. The status line is usually gone by the time the
// failure surfaces, so all that is left is to count it (encode_failures
// in /stats) and log it — silently dropping the error would make a
// flapping client or a marshalling bug invisible.
func (s *Service) encodeFailed(proto string, err error) {
	s.encodeFailures.Add(1)
	log.Printf("server: %s response encode failed: %v", proto, err)
}
