package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds durations in [2^(i-1), 2^i) microseconds, so 48 buckets cover
// sub-microsecond up to hours.
const histBuckets = 48

// histogram is a lock-free log-scale latency histogram. Percentiles are
// resolved to a bucket's upper bound, which is exact enough for the
// p50/p95/p99 service metrics (one power of two of resolution) and
// keeps the query hot path to a single atomic increment.
type histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // microseconds
	max     atomic.Uint64 // microseconds
}

func (h *histogram) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := bits.Len64(us)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		prev := h.max.Load()
		if us <= prev || h.max.CompareAndSwap(prev, us) {
			return
		}
	}
}

// percentile returns the upper bound of the bucket holding the p-th
// percentile observation (0 < p <= 1), in microseconds.
func (h *histogram) percentile(p float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 1
			}
			return uint64(1) << i
		}
	}
	return h.max.Load()
}

// Histogram is the exported face of the latency histogram, for
// front-ends (the multi-node router) that aggregate the same latency
// shape without hosting a Service. The zero value is ready to use.
type Histogram struct{ h histogram }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) { h.h.observe(d) }

// Snapshot summarises the samples so far.
func (h *Histogram) Snapshot() LatencyStats { return h.h.snapshot() }

func (h *histogram) snapshot() LatencyStats {
	count := h.count.Load()
	sum := h.sum.Load()
	st := LatencyStats{
		Count:   count,
		P50Us:   h.percentile(0.50),
		P95Us:   h.percentile(0.95),
		P99Us:   h.percentile(0.99),
		MaxUs:   h.max.Load(),
		TotalUs: sum,
	}
	if count > 0 {
		st.MeanUs = sum / count
	}
	return st
}
